#pragma once
/// \file arrivals.hpp
/// Open-loop request arrival generation for the serving simulator.
///
/// Two sources, both producing absolute arrival times in seconds:
///   * a deterministic-seed Poisson process (exponential inter-arrivals
///     drawn from util::Xoshiro256, so every run is reproducible
///     bit-for-bit), and
///   * a CSV trace replayer (columns `arrival_s[,tenant]`) for serving
///     recorded production traffic through the simulator.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/serving_spec.hpp"

namespace optiplet::serve {

/// `count` arrival times of a Poisson process with rate `rate_rps`
/// [requests/s], starting at t=0 (the first arrival is one inter-arrival
/// in). Same (rate, count, seed) -> identical sequence.
[[nodiscard]] std::vector<double> poisson_arrivals(double rate_rps,
                                                   std::uint64_t count,
                                                   std::uint64_t seed);

/// One replayed arrival: absolute time plus the tenant it belongs to
/// (empty when the trace has no `tenant` column) and, for autoregressive
/// traces, the request's token geometry ({0, 0} when the trace has no
/// token columns).
struct TraceEvent {
  double arrival_s = 0.0;
  std::string tenant;
  RequestShape shape;
};

/// Load an arrival trace CSV. The header must contain `arrival_s`; a
/// `tenant` column and a `prefill_tokens`/`decode_tokens` column pair are
/// optional. Events are returned sorted by arrival time (stable, so
/// equal-time events keep file order). Throws std::invalid_argument on a
/// missing file, missing column, an unparseable arrival time or token
/// count, or when only one of the two token columns is present.
[[nodiscard]] std::vector<TraceEvent> load_arrival_trace(
    const std::string& path);

/// Filter `events` down to the arrival times of `tenant`. Events with an
/// empty tenant label match every tenant (single-stream traces feed all).
[[nodiscard]] std::vector<double> trace_arrivals_for(
    const std::vector<TraceEvent>& events, const std::string& tenant);

/// The request shapes of `tenant`'s events, aligned index-for-index with
/// trace_arrivals_for (same filter, same order).
[[nodiscard]] std::vector<RequestShape> trace_shapes_for(
    const std::vector<TraceEvent>& events, const std::string& tenant);

}  // namespace optiplet::serve
