#include "serve/elastic.hpp"

#include <exception>
#include <sstream>
#include <string>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace optiplet::serve {

namespace {

std::string fmt(double value) {
  if (std::isinf(value)) {
    return value > 0.0 ? "inf" : "-inf";
  }
  return util::format_general(value, 17);
}

bool parse_double(const std::string& text, double& out) {
  if (text == "inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  try {
    std::size_t pos = 0;
    out = std::stod(text, &pos);
    return pos == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_int(const std::string& text, int& out) {
  try {
    std::size_t pos = 0;
    out = std::stoi(text, &pos);
    return pos == text.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_unsigned(const std::string& text, unsigned& out) {
  int value = 0;
  if (!parse_int(text, value) || value < 0) {
    return false;
  }
  out = static_cast<unsigned>(value);
  return true;
}

}  // namespace

bool ElasticSpec::any_fault_armed() const {
  for (const FaultSpec& fault : faults) {
    if (fault.armed()) {
      return true;
    }
  }
  return false;
}

bool ElasticSpec::enabled() const { return !(*this == ElasticSpec{}); }

std::string to_string(const ElasticSpec& spec) {
  const ElasticSpec defaults;
  std::vector<std::string> parts;
  if (std::isfinite(spec.shift_threshold)) {
    parts.push_back("shift=" + fmt(spec.shift_threshold));
  }
  if (spec.ema_tau_s != defaults.ema_tau_s) {
    parts.push_back("tau=" + fmt(spec.ema_tau_s));
  }
  if (spec.cooldown_s != defaults.cooldown_s) {
    parts.push_back("cool=" + fmt(spec.cooldown_s));
  }
  if (spec.gate) {
    parts.push_back("gate=" + fmt(spec.gate_after_s) + ':' + fmt(spec.wake_s));
  }
  if (spec.retry_max_attempts > 0) {
    parts.push_back("retry=" + std::to_string(spec.retry_max_attempts) + ':' +
                    fmt(spec.retry_backoff_s));
  }
  if (spec.curve_bucket_s > 0.0) {
    parts.push_back("bucket=" + fmt(spec.curve_bucket_s));
  }
  if (spec.carbon_base_gpkwh != defaults.carbon_base_gpkwh ||
      spec.carbon_amplitude != defaults.carbon_amplitude ||
      spec.carbon_period_s != defaults.carbon_period_s) {
    parts.push_back("carbon=" + fmt(spec.carbon_base_gpkwh) + ':' +
                    fmt(spec.carbon_amplitude) + ':' +
                    fmt(spec.carbon_period_s));
  }
  for (const FaultSpec& fault : spec.faults) {
    parts.push_back("fault=" + fmt(fault.time_s) + ':' +
                    std::to_string(fault.chiplet) + ':' +
                    fmt(fault.bandwidth_derate) + ':' +
                    std::to_string(fault.package));
  }
  if (parts.empty()) {
    return "static";
  }
  return util::join(parts, "/");
}

std::optional<ElasticSpec> elastic_from_string(std::string_view text) {
  ElasticSpec spec;
  if (text.empty() || text == "static") {
    return spec;
  }
  for (const std::string& part : util::split(text, '/')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      return std::nullopt;
    }
    const std::string key = part.substr(0, eq);
    const std::vector<std::string> vals = util::split(part.substr(eq + 1), ':');
    if (key == "shift" && vals.size() == 1) {
      if (!parse_double(vals[0], spec.shift_threshold)) {
        return std::nullopt;
      }
    } else if (key == "tau" && vals.size() == 1) {
      if (!parse_double(vals[0], spec.ema_tau_s)) {
        return std::nullopt;
      }
    } else if (key == "cool" && vals.size() == 1) {
      if (!parse_double(vals[0], spec.cooldown_s)) {
        return std::nullopt;
      }
    } else if (key == "gate" && vals.size() == 2) {
      spec.gate = true;
      if (!parse_double(vals[0], spec.gate_after_s) ||
          !parse_double(vals[1], spec.wake_s)) {
        return std::nullopt;
      }
    } else if (key == "retry" && vals.size() == 2) {
      if (!parse_unsigned(vals[0], spec.retry_max_attempts) ||
          !parse_double(vals[1], spec.retry_backoff_s)) {
        return std::nullopt;
      }
    } else if (key == "bucket" && vals.size() == 1) {
      if (!parse_double(vals[0], spec.curve_bucket_s)) {
        return std::nullopt;
      }
    } else if (key == "carbon" && vals.size() == 3) {
      if (!parse_double(vals[0], spec.carbon_base_gpkwh) ||
          !parse_double(vals[1], spec.carbon_amplitude) ||
          !parse_double(vals[2], spec.carbon_period_s)) {
        return std::nullopt;
      }
    } else if (key == "fault" && vals.size() == 4) {
      FaultSpec fault;
      if (!parse_double(vals[0], fault.time_s) ||
          !parse_int(vals[1], fault.chiplet) ||
          !parse_double(vals[2], fault.bandwidth_derate) ||
          !parse_int(vals[3], fault.package)) {
        return std::nullopt;
      }
      spec.faults.push_back(fault);
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

}  // namespace optiplet::serve
