#pragma once
/// \file batching.hpp
/// Per-tenant admission/batching queue.
///
/// The queue owns the policy decision only — *when* is a batch ready and
/// *which* requests form it — so the three policies are unit-testable
/// without the event loop. The serving simulator polls `ready()` whenever
/// the tenant's executor goes idle or a request arrives, and uses
/// `next_deadline()` to arm the kDeadline dispatch timer.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "serve/serving_spec.hpp"

namespace optiplet::serve {

/// One queued inference request.
struct Request {
  std::uint64_t id = 0;
  double arrival_s = 0.0;
  /// Token geometry for autoregressive tenants; {0, 0} for fixed-shape.
  RequestShape shape;
};

struct BatchingConfig {
  BatchPolicy policy = BatchPolicy::kNone;
  /// Batch size: exact for kFixedSize, upper bound for kDeadline; kNone
  /// always dispatches singletons.
  unsigned max_batch = 8;
  /// kDeadline: maximum wait of the oldest queued request [s].
  double max_wait_s = 1.0e-3;
};

class BatchQueue {
 public:
  explicit BatchQueue(const BatchingConfig& config);

  void push(const Request& request) { queue_.push_back(request); }

  /// True when the policy would dispatch a batch at time `now`.
  /// `arrivals_done` marks the end of the tenant's arrival stream: every
  /// policy then flushes whatever is queued (a fixed-size batcher must not
  /// hold a partial batch forever).
  [[nodiscard]] bool ready(double now, bool arrivals_done) const;

  /// The absolute time at which the queue becomes ready by timeout alone
  /// (kDeadline with a non-empty queue); nullopt when no timer is needed.
  [[nodiscard]] std::optional<double> next_deadline() const;

  /// Pop the requests of one batch in FIFO order. Call only when ready().
  [[nodiscard]] std::vector<Request> take(bool arrivals_done);

  /// The oldest queued request; call only when !empty(). The continuous
  /// engine peeks it to test the KV-budget fit before admitting.
  [[nodiscard]] const Request& front() const { return queue_.front(); }

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] const BatchingConfig& config() const { return config_; }

 private:
  /// Requests the policy would put in the next batch.
  [[nodiscard]] std::size_t batch_size(bool arrivals_done) const;

  BatchingConfig config_;
  std::deque<Request> queue_;
};

}  // namespace optiplet::serve
