#include "serve/serving_simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "dnn/zoo.hpp"
#include "obs/recorder.hpp"
#include "serve/arrivals.hpp"
#include "serve/colocation.hpp"
#include "serve/service_time.hpp"
#include "sim/event_queue.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace optiplet::serve {
namespace {

constexpr std::size_t kNoTenant = static_cast<std::size_t>(-1);

/// One pipeline stage resolved against the engine's resource table:
/// a maximal run of consecutive layers whose chiplet group maps to one
/// exclusive resource (an owned group, or the shared-serial pool).
struct ExecStage {
  std::size_t resource = 0;
  bool shared = false;
  /// Prefix offsets within the batch (see serve::PipelineStage): an
  /// unstalled chain telescopes exactly to the batch-granular end time.
  double start_offset_s = 0.0;
  double end_offset_s = 0.0;
  std::size_t first_layer = 0;
  std::size_t layer_count = 0;
};

/// One batch advancing through its stage chain in layer-granular mode.
struct InFlightBatch {
  std::size_t tenant = 0;
  std::uint64_t id = 0;  ///< per-tenant dispatch sequence
  std::vector<Request> requests;
  const std::vector<ExecStage>* stages = nullptr;  ///< engine-cached
  std::size_t stage = 0;
  /// Start of stage 0 after ReSiPI adjustment: the anchor every
  /// unstalled stage's end time telescopes from.
  double batch_start_s = 0.0;
  double wait_since_s = 0.0;  ///< when it queued on the current resource
};

/// An exclusive, FIFO-granted chiplet-group resource (layer mode).
struct Resource {
  bool busy = false;
  bool shared = false;
  std::vector<std::size_t> chiplets;  ///< pool-global ids
  std::deque<std::shared_ptr<InFlightBatch>> waiters;
  /// Last tenant that executed on this resource — a different acquirer
  /// pays the cross-tenant handoff retune (shared resources only).
  std::size_t last_tenant = kNoTenant;
};

/// Mutable per-tenant simulation state.
struct TenantState {
  BatchQueue queue;
  std::vector<double> arrivals;  ///< absolute times, ascending
  std::size_t next_arrival = 0;
  std::uint64_t next_id = 0;
  bool arrivals_done = false;
  bool busy = false;
  bool timer_armed = false;

  // --- closed-loop client pool ---
  bool closed_loop = false;
  std::uint64_t issue_budget = 0;  ///< total requests the users may issue
  std::uint64_t issued = 0;        ///< think timers started (<= budget)
  std::uint64_t arrived = 0;       ///< issued requests that have arrived
  double think_mean_s = 0.0;
  util::Xoshiro256 think_rng{0};

  // --- admission control / priority ---
  AdmissionPolicy admission = AdmissionPolicy::kAdmitAll;
  unsigned priority = 0;
  /// When the executor is expected to accept its next batch — the
  /// oracle-backed backlog estimate kSlaShed's shed decision runs on.
  double est_free_s = 0.0;
  /// Inter-arrival EMA [s] feeding the shed estimate's batch-fill-wait
  /// term; 0 until two arrivals have been observed.
  double interarrival_ema_s = 0.0;
  double last_arrival_s = -1.0;
  /// Batch formed but waiting for the shared-serial chiplets.
  std::vector<Request> pending;
  double pending_since = 0.0;
  bool needs_shared = false;
  std::vector<std::size_t> occupancy;
  std::vector<double> latencies;
  TenantReport report;

  // --- layer-granular mode ---
  /// Owned-group resource ids by MAC kind (shared kinds resolve to the
  /// pool-global shared resource instead).
  std::vector<std::pair<accel::MacKind, std::size_t>> kind_resource;
  /// Resolved stage chains per batch size (pointers into this map are
  /// handed to in-flight batches; std::map keeps them stable).
  std::map<unsigned, std::vector<ExecStage>> stage_cache;
  /// Batches in flight; bounded by the stage chain's distinct resources.
  std::size_t inflight = 0;
  std::size_t pipeline_depth = 1;
  std::uint64_t batch_seq = 0;

  explicit TenantState(const BatchingConfig& batching) : queue(batching) {}
};

/// The event-driven serving engine: all state one simulate() call touches.
struct Engine {
  const ServingConfig& config;
  ServiceTimeOracle& oracle;
  const ColocationPlan& plan;
  sim::EventQueue events;
  std::vector<TenantState> tenants;
  ServingReport report;

  // Shared-serial chiplet pool: exclusive, FIFO-granted.
  bool shared_busy = false;
  std::deque<std::size_t> shared_waiters;

  // ReSiPI serialization: one reconfiguration window at a time on the
  // shared interposer; a tenant never conflicts with itself (its own
  // reconfigurations are part of its serialized batches).
  std::size_t resipi_holder = kNoTenant;
  double resipi_free_at = 0.0;

  // Layer-granular mode: exclusive chiplet-group resources. Index 0 is
  // the shared-serial pool; owned groups follow per tenant.
  std::vector<Resource> resources;

  double last_completion_s = 0.0;
  /// Time of the first request to actually arrive, from any source — the
  /// start of the measured serving window.
  double first_arrival_s = std::numeric_limits<double>::infinity();
  /// When the shared-serial chiplet group is expected to free up — feeds
  /// the cross-tenant contention term of the kSlaShed backlog estimate.
  double shared_est_free_s = 0.0;

  // --- observability (null = disabled; every hook is one branch) ---
  obs::Recorder* rec = nullptr;
  int pid = 0;
  std::vector<std::uint64_t> tenant_tracks;
  std::vector<std::uint64_t> exec_tracks;      ///< batch-granular executors
  std::vector<std::uint64_t> resource_tracks;  ///< layer-granular groups
  std::uint64_t resipi_track = 0;

  Engine(const ServingConfig& cfg, ServiceTimeOracle& orc,
         const ColocationPlan& pln)
      : config(cfg), oracle(orc), plan(pln) {}

  /// Shed trace span (zero duration, tagged with the shed reason) and
  /// counter. kSlaShed has exactly one reject reason today; the tag keeps
  /// the trace self-describing if more are added.
  void record_shed(std::size_t t, double now) {
    if (rec->metering()) {
      rec->metrics().add("serve.shed");
    }
    if (rec->tracing()) {
      rec->trace().add_complete(
          "request", "request", now, now, pid, tenant_tracks[t],
          {obs::arg("tenant", tenants[t].report.name),
           obs::arg("outcome", "shed"),
           obs::arg("shed_reason", "predicted_sla_miss")});
    }
  }

  void record_resipi_conflict(double wait_s) {
    if (rec != nullptr && rec->metering()) {
      rec->metrics().add("resipi.conflicts");
      rec->metrics().add("resipi.wait_s", wait_s);
    }
  }

  /// Request spans ([arrival, completion], one per request) plus the
  /// latency histograms (global and per priority class).
  void record_completions(std::size_t t, const std::vector<Request>& batch,
                          double now) {
    TenantState& ts = tenants[t];
    if (rec->metering()) {
      obs::MetricsRegistry& m = rec->metrics();
      m.add("serve.completed", static_cast<double>(batch.size()));
      const std::string cls =
          "serve.class" + std::to_string(ts.priority) + ".latency";
      for (const Request& r : batch) {
        m.observe("serve.latency", now - r.arrival_s);
        m.observe(cls, now - r.arrival_s);
      }
    }
    if (rec->tracing()) {
      obs::TraceBuffer& tb = rec->trace();
      for (const Request& r : batch) {
        tb.add_complete("request", "request", r.arrival_s, now, pid,
                        tenant_tracks[t],
                        {obs::arg("tenant", ts.report.name),
                         obs::arg("request", r.id),
                         obs::arg("outcome", "completed"),
                         obs::arg("latency_s", now - r.arrival_s)});
      }
    }
  }

  /// Per-dispatch metrics shared by both pipeline modes (`run` is the
  /// batch's oracle result, in scope only at dispatch).
  void record_dispatch_metrics(unsigned batch_size,
                               const core::RunResult& run) {
    if (rec->metering()) {
      obs::MetricsRegistry& m = rec->metrics();
      m.add("serve.batches");
      m.observe("serve.batch_size", static_cast<double>(batch_size));
      m.set("resipi.active_gateways", run.mean_active_gateways);
      m.add("serve.energy_j", run.energy_j);
    }
  }

  /// Batch-granular trace: per-request queue spans closing at the batch
  /// start, the batch span on the tenant's executor track, and the ReSiPI
  /// window on the interposer track.
  void record_batch_trace(std::size_t t, const std::vector<Request>& batch,
                          double start, double end, double resipi_window_s) {
    if (!rec->tracing()) {
      return;
    }
    TenantState& ts = tenants[t];
    obs::TraceBuffer& tb = rec->trace();
    for (const Request& r : batch) {
      tb.add_complete("queue", "queue", r.arrival_s, start, pid,
                      tenant_tracks[t], {obs::arg("request", r.id)});
    }
    tb.add_complete(
        "batch", "exec", start, end, pid, exec_tracks[t],
        {obs::arg("tenant", ts.report.name),
         obs::arg("batch", ts.report.batches - 1),
         obs::arg("size", static_cast<std::uint64_t>(batch.size()))});
    if (resipi_window_s > 0.0) {
      tb.add_complete("retune", "resipi", start, start + resipi_window_s,
                      pid, resipi_track,
                      {obs::arg("tenant", ts.report.name),
                       obs::arg("kind", "batch_window")});
    }
  }

  /// Layer-granular trace: stage spans live on their chiplet-group track
  /// (exclusive FIFO resources, so spans never overlap within a track);
  /// stage 0 also closes the batch's queue spans.
  void record_stage_trace(const InFlightBatch& b, const ExecStage& s,
                          double start, double end, double resipi_window_s,
                          double handoff_s) {
    if (!rec->tracing()) {
      return;
    }
    const TenantState& ts = tenants[b.tenant];
    obs::TraceBuffer& tb = rec->trace();
    if (b.stage == 0) {
      for (const Request& r : b.requests) {
        tb.add_complete("queue", "queue", r.arrival_s, start, pid,
                        tenant_tracks[b.tenant], {obs::arg("request", r.id)});
      }
    }
    tb.add_complete(
        "stage", "exec", start, end, pid, resource_tracks[s.resource],
        {obs::arg("tenant", ts.report.name), obs::arg("batch", b.id),
         obs::arg("size", static_cast<std::uint64_t>(b.requests.size())),
         obs::arg("first_layer", static_cast<std::uint64_t>(s.first_layer)),
         obs::arg("layer_count",
                  static_cast<std::uint64_t>(s.layer_count))});
    if (resipi_window_s > 0.0) {
      tb.add_complete(
          "retune", "resipi", start, start + resipi_window_s, pid,
          resipi_track,
          {obs::arg("tenant", ts.report.name),
           obs::arg("kind", handoff_s > 0.0 ? "handoff" : "batch_window")});
    }
  }

  /// Periodic metric snapshot: sample the queue-depth / in-flight gauges
  /// and emit one row per live series, re-arming while any tenant is
  /// active. Read-only observer — it never touches engine state, so an
  /// attached recorder cannot change simulation results.
  void metrics_tick(double period_s) {
    bool active = false;
    std::size_t depth = 0;
    std::size_t inflight = 0;
    for (const TenantState& ts : tenants) {
      depth += ts.queue.size();
      inflight += (ts.busy ? 1 : 0) + ts.inflight;
      active = active || !ts.arrivals_done || ts.busy || ts.inflight > 0 ||
               ts.queue.size() > 0 || !ts.pending.empty();
    }
    obs::MetricsRegistry& m = rec->metrics();
    m.set("serve.queue_depth", static_cast<double>(depth));
    m.set("serve.inflight_batches", static_cast<double>(inflight));
    m.snapshot(events.now());
    if (active) {
      events.schedule_in(period_s,
                         [this, period_s] { metrics_tick(period_s); });
    }
  }

  /// One request reaches the tenant: count it, run admission, enqueue or
  /// shed, and poke the dispatcher. Shared by every arrival source.
  void arrive(std::size_t t) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    first_arrival_s = std::min(first_arrival_s, now);
    const Request request{ts.next_id++, now};
    ts.report.offered += 1;
    if (rec != nullptr && rec->metering()) {
      rec->metrics().add("serve.offered");
    }
    if (ts.last_arrival_s >= 0.0) {
      const double gap = now - ts.last_arrival_s;
      ts.interarrival_ema_s = ts.interarrival_ema_s == 0.0
                                  ? gap
                                  : 0.25 * gap + 0.75 * ts.interarrival_ema_s;
    }
    ts.last_arrival_s = now;
    if (ts.admission == AdmissionPolicy::kSlaShed && !admit(t)) {
      ts.report.shed += 1;
      if (rec != nullptr) {
        record_shed(t, now);
      }
      issue_closed(t);  // the user gets its rejection notice immediately
      return;
    }
    ts.queue.push(request);
    try_dispatch(t);
  }

  /// kSlaShed's enqueue-time prediction: serve the backlog ahead of this
  /// request at the policy's dispatch size and see whether its completion
  /// can still make the tenant's SLA. Service times come from the
  /// memoized ServiceTimeOracle; layer-granular mode amortizes the queued
  /// batches over the pipeline depth (the steady-state inter-completion
  /// time), so the estimate is honest about overlap. Two refinements keep
  /// the estimate honest *below* the knee, where false sheds cost goodput:
  ///   * batching tenants charge the batch-fill wait (inter-arrival EMA
  ///     times the seats left in the tail batch, capped by the deadline
  ///     policy's max wait) and price the request's own batch at its
  ///     *expected* dispatch size instead of always max_batch;
  ///   * tenants on the scarce shared-serial group start their backlog at
  ///     the group's expected free time when another tenant holds it.
  [[nodiscard]] bool admit(std::size_t t) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    const BatchingConfig& batching = ts.queue.config();
    const unsigned cap =
        batching.policy == BatchPolicy::kNone ? 1 : batching.max_batch;
    const double batch_s = oracle.batch_run(t, cap).latency_s;
    const double amortized_s =
        config.pipeline == PipelineMode::kLayerGranular
            ? batch_s / static_cast<double>(
                            std::max<std::size_t>(ts.pipeline_depth, 1))
            : batch_s;
    const auto queued_batches = static_cast<double>(ts.queue.size() / cap);
    double backlog_start_s = ts.est_free_s;
    if (ts.needs_shared) {
      backlog_start_s = std::max(backlog_start_s, shared_est_free_s);
    }
    // The request joins the tail partial batch at `position`; `need` more
    // arrivals fill it.
    const auto position = static_cast<unsigned>(ts.queue.size() % cap) + 1;
    const unsigned need = cap - position;
    const double gap = ts.interarrival_ema_s;
    double fill_s = 0.0;
    unsigned dispatch_size = cap;
    if (batching.policy == BatchPolicy::kDeadline) {
      const double fill_eta_s =
          gap > 0.0 ? static_cast<double>(need) * gap
                    : std::numeric_limits<double>::infinity();
      if (fill_eta_s <= batching.max_wait_s) {
        fill_s = fill_eta_s;
      } else {
        // The deadline fires first: the batch goes out partial.
        fill_s = batching.max_wait_s;
        dispatch_size =
            position +
            (gap > 0.0
                 ? static_cast<unsigned>(batching.max_wait_s / gap)
                 : 0);
      }
    } else if (batching.policy == BatchPolicy::kFixedSize) {
      fill_s = gap > 0.0 ? static_cast<double>(need) * gap : 0.0;
    }
    const double own_batch_s =
        dispatch_size == cap ? batch_s
                             : oracle.batch_run(t, dispatch_size).latency_s;
    const double predicted_latency_s = std::max(backlog_start_s - now, 0.0) +
                                       queued_batches * amortized_s +
                                       fill_s + own_batch_s;
    return predicted_latency_s <= ts.report.sla_s;
  }

  /// Closed loop: one user draws its think time and schedules its next
  /// request, spending one unit of the tenant's issue budget. No-op for
  /// open-loop tenants and once the budget is spent.
  void issue_closed(std::size_t t) {
    TenantState& ts = tenants[t];
    if (!ts.closed_loop || ts.issued >= ts.issue_budget) {
      return;
    }
    ts.issued += 1;
    const double think_s = ts.think_rng.next_exponential(ts.think_mean_s);
    events.schedule_in(think_s, [this, t] {
      TenantState& state = tenants[t];
      state.arrived += 1;
      // The last budgeted issue has arrived: flush partial batches.
      if (state.issued >= state.issue_budget &&
          state.arrived == state.issued) {
        state.arrivals_done = true;
      }
      arrive(t);
    });
  }

  void schedule_arrival(std::size_t t) {
    TenantState& ts = tenants[t];
    const std::size_t i = ts.next_arrival;
    events.schedule_at(ts.arrivals[i], [this, t, i] {
      TenantState& state = tenants[t];
      state.next_arrival = i + 1;
      if (state.next_arrival < state.arrivals.size()) {
        schedule_arrival(t);
      } else {
        state.arrivals_done = true;
      }
      arrive(t);
    });
  }

  void try_dispatch(std::size_t t) {
    if (config.pipeline == PipelineMode::kLayerGranular) {
      try_dispatch_layer(t);
    } else {
      try_dispatch_batch(t);
    }
  }

  /// Arm the kDeadline timeout dispatch for the queue head, if needed.
  void arm_deadline_timer(std::size_t t) {
    TenantState& ts = tenants[t];
    const auto deadline = ts.queue.next_deadline();
    if (deadline && !ts.timer_armed) {
      ts.timer_armed = true;
      events.schedule_at(std::max(*deadline, events.now()), [this, t] {
        tenants[t].timer_armed = false;
        try_dispatch(t);
      });
    }
  }

  void try_dispatch_batch(std::size_t t) {
    TenantState& ts = tenants[t];
    if (ts.busy) {
      return;
    }
    const double now = events.now();
    if (!ts.queue.ready(now, ts.arrivals_done)) {
      arm_deadline_timer(t);
      return;
    }
    std::vector<Request> batch = ts.queue.take(ts.arrivals_done);
    ts.busy = true;
    if (ts.needs_shared) {
      if (shared_busy) {
        ts.pending = std::move(batch);
        ts.pending_since = now;
        shared_waiters.push_back(t);
        return;
      }
      shared_busy = true;
    }
    begin_execution(t, std::move(batch));
  }

  void begin_execution(std::size_t t, std::vector<Request> batch) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    const auto batch_size = static_cast<unsigned>(batch.size());
    const core::RunResult& run = oracle.batch_run(t, batch_size);

    double start = now;
    double resipi_window_s = 0.0;
    if (config.arch == accel::Architecture::kSiph2p5D &&
        run.resipi_reconfigurations > 0) {
      if (resipi_holder != t && resipi_free_at > start) {
        const double wait = resipi_free_at - start;
        start += wait;
        ts.report.resipi_wait_s += wait;
        ts.report.resipi_conflicts += 1;
        record_resipi_conflict(wait);
      }
      // The PCM writes happen inside the run (they are charged in its
      // latency); the window only excludes *other* tenants' writes.
      resipi_window_s =
          std::min(run.latency_s,
                   static_cast<double>(run.resipi_reconfigurations) *
                       config.system.tech.photonic.pcm.write_time_s);
      resipi_holder = t;
      resipi_free_at = start + resipi_window_s;
    }
    const double end = start + run.latency_s;
    ts.est_free_s = end;
    if (ts.needs_shared) {
      shared_est_free_s = std::max(shared_est_free_s, end);
    }

    for (const std::size_t c : ts.occupancy) {
      report.chiplet_busy_s[c] += end - start;
    }
    ts.report.busy_s += end - start;
    ts.report.energy_j += run.energy_j;
    ts.report.batches += 1;
    report.ledger.merge(run.ledger);
    if (config.record_batches) {
      BatchTrace trace;
      trace.tenant = t;
      trace.size = batch_size;
      trace.start_s = start;
      trace.end_s = end;
      trace.chiplets = ts.occupancy;
      trace.resipi_start_s = start;
      trace.resipi_end_s = start + resipi_window_s;
      report.batches.push_back(std::move(trace));
    }
    if (rec != nullptr) {
      record_dispatch_metrics(batch_size, run);
      record_batch_trace(t, batch, start, end, resipi_window_s);
    }
    events.schedule_at(end, [this, t, b = std::move(batch)] {
      complete(t, b);
    });
  }

  /// Iterator to the next waiter to grant: highest priority class first
  /// (lowest number wins; strict <, so FIFO within a class — a
  /// single-class run grants in exactly the arrival order it always
  /// did). `tenant_of` projects a waiter entry to its tenant index.
  template <typename Deque, typename Proj>
  auto best_waiter(Deque& waiters, Proj tenant_of) {
    auto best = waiters.begin();
    for (auto it = std::next(best); it != waiters.end(); ++it) {
      if (tenants[tenant_of(*it)].priority <
          tenants[tenant_of(*best)].priority) {
        best = it;
      }
    }
    return best;
  }

  std::size_t pop_shared_waiter() {
    const auto best =
        best_waiter(shared_waiters, [](std::size_t t) { return t; });
    const std::size_t w = *best;
    shared_waiters.erase(best);
    return w;
  }

  void complete(std::size_t t, const std::vector<Request>& batch) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    for (const Request& r : batch) {
      ts.latencies.push_back(now - r.arrival_s);
    }
    ts.report.completed += batch.size();
    if (rec != nullptr) {
      record_completions(t, batch, now);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      issue_closed(t);  // each response frees one closed-loop user
    }
    ts.busy = false;
    last_completion_s = std::max(last_completion_s, now);
    if (ts.needs_shared) {
      // Release the shared pool; grant priority-first (FIFO in class).
      if (shared_waiters.empty()) {
        shared_busy = false;
      } else {
        const std::size_t w = pop_shared_waiter();
        TenantState& waiter = tenants[w];
        waiter.report.shared_wait_s += now - waiter.pending_since;
        begin_execution(w, std::move(waiter.pending));
        waiter.pending.clear();
      }
    }
    try_dispatch(t);
  }

  // ------------------------------------------------------------------
  // Layer-granular (SET-style pipelined) execution.

  /// Resolve and cache the stage chain of one (tenant, batch-size) point:
  /// the oracle's per-group pipeline stages mapped onto engine resources,
  /// with consecutive same-resource stages merged so a batch never
  /// re-acquires the lock it just released.
  const std::vector<ExecStage>& exec_stages(std::size_t t, unsigned batch) {
    TenantState& ts = tenants[t];
    if (const auto it = ts.stage_cache.find(batch);
        it != ts.stage_cache.end()) {
      return it->second;
    }
    const LayerSchedule& schedule = oracle.layer_schedule(t, batch);
    const auto& shared_kinds = plan.tenants[t].shared_kinds;
    std::vector<ExecStage> stages;
    for (const PipelineStage& ps : schedule.stages) {
      const bool shared =
          std::find(shared_kinds.begin(), shared_kinds.end(), ps.group) !=
          shared_kinds.end();
      std::size_t resource = 0;
      if (!shared) {
        const auto it = std::find_if(
            ts.kind_resource.begin(), ts.kind_resource.end(),
            [&ps](const auto& kr) { return kr.first == ps.group; });
        OPTIPLET_ASSERT(it != ts.kind_resource.end(),
                        "pipeline stage on a group the tenant neither owns "
                        "nor shares");
        resource = it->second;
      }
      if (!stages.empty() && stages.back().resource == resource) {
        // Adjacent oracle stages always differ in group, so this merge
        // only fires for shared kinds collapsing onto the shared pool.
        ExecStage& merged = stages.back();
        merged.end_offset_s = ps.end_offset_s;
        merged.layer_count += ps.layer_count;
      } else {
        ExecStage stage;
        stage.resource = resource;
        stage.shared = shared;
        stage.start_offset_s = ps.start_offset_s;
        stage.end_offset_s = ps.end_offset_s;
        stage.first_layer = ps.first_layer;
        stage.layer_count = ps.layer_count;
        stages.push_back(stage);
      }
    }
    return ts.stage_cache.emplace(batch, std::move(stages)).first->second;
  }

  /// Distinct resources across a stage chain: the tenant's useful
  /// pipeline depth (how many batches can make progress at once).
  static std::size_t distinct_resources(const std::vector<ExecStage>& s) {
    std::vector<std::size_t> seen;
    for (const ExecStage& stage : s) {
      if (std::find(seen.begin(), seen.end(), stage.resource) ==
          seen.end()) {
        seen.push_back(stage.resource);
      }
    }
    return std::max<std::size_t>(seen.size(), 1);
  }

  void try_dispatch_layer(std::size_t t) {
    TenantState& ts = tenants[t];
    while (ts.inflight < ts.pipeline_depth) {
      const double now = events.now();
      if (!ts.queue.ready(now, ts.arrivals_done)) {
        arm_deadline_timer(t);
        return;
      }
      std::vector<Request> batch = ts.queue.take(ts.arrivals_done);
      const auto batch_size = static_cast<unsigned>(batch.size());
      auto b = std::make_shared<InFlightBatch>();
      b->tenant = t;
      b->id = ts.batch_seq++;
      b->requests = std::move(batch);
      b->stages = &exec_stages(t, batch_size);
      ts.inflight += 1;
      request_stage(std::move(b));
    }
  }

  void request_stage(std::shared_ptr<InFlightBatch> b) {
    Resource& r = resources[(*b->stages)[b->stage].resource];
    if (r.busy) {
      b->wait_since_s = events.now();
      r.waiters.push_back(std::move(b));
      return;
    }
    r.busy = true;
    start_stage(std::move(b));
  }

  /// Run one granted stage: apply ReSiPI serialization (the batch window
  /// at stage 0, a retune window on every cross-tenant shared handoff),
  /// charge busy/energy accounting, and schedule the stage-end event.
  void start_stage(std::shared_ptr<InFlightBatch> b) {
    const std::size_t t = b->tenant;
    TenantState& ts = tenants[t];
    const ExecStage& s = (*b->stages)[b->stage];
    Resource& r = resources[s.resource];
    const auto batch_size = static_cast<unsigned>(b->requests.size());
    const bool siph = config.arch == accel::Architecture::kSiph2p5D;

    double start = events.now();
    double resipi_window_s = 0.0;
    if (b->stage == 0) {
      const core::RunResult& run = oracle.batch_run(t, batch_size);
      // The batch's own reconfiguration window, as in batch-granular mode:
      // the PCM writes are charged inside the run's latency; the window
      // only excludes *other* tenants' writes.
      if (siph && run.resipi_reconfigurations > 0) {
        if (resipi_holder != t && resipi_free_at > start) {
          const double wait = resipi_free_at - start;
          start += wait;
          ts.report.resipi_wait_s += wait;
          ts.report.resipi_conflicts += 1;
          record_resipi_conflict(wait);
        }
        resipi_window_s =
            std::min(run.latency_s,
                     static_cast<double>(run.resipi_reconfigurations) *
                         config.system.tech.photonic.pcm.write_time_s);
        resipi_holder = t;
        // Several of this tenant's batches can be in flight: never roll
        // an earlier, longer reservation backwards.
        resipi_free_at = std::max(resipi_free_at, start + resipi_window_s);
      }
      ts.report.energy_j += run.energy_j;
      ts.report.batches += 1;
      report.ledger.merge(run.ledger);
      if (rec != nullptr) {
        record_dispatch_metrics(batch_size, run);
      }
      // Admission estimate: with the pipeline full, completions are one
      // bottleneck-amortized interval apart.
      ts.est_free_s =
          std::max(ts.est_free_s, start) +
          run.latency_s / static_cast<double>(
                              std::max<std::size_t>(ts.pipeline_depth, 1));
    }
    double handoff_s = 0.0;
    if (s.shared && siph && r.last_tenant != kNoTenant &&
        r.last_tenant != t) {
      // Cross-tenant handoff of the scarce group: retune its gateways for
      // the new tenant — one PCM write window, serialized on the shared
      // interposer like any other reconfiguration.
      if (resipi_holder != t && resipi_free_at > start) {
        const double wait = resipi_free_at - start;
        start += wait;
        ts.report.resipi_wait_s += wait;
        ts.report.resipi_conflicts += 1;
        record_resipi_conflict(wait);
      }
      handoff_s = config.system.tech.photonic.pcm.write_time_s;
      resipi_holder = t;
      // A stage-0 shared handoff may follow the batch window set above;
      // the interposer stays reserved until the *later* of the two.
      resipi_free_at = std::max(resipi_free_at, start + handoff_s);
      ts.report.shared_handoffs += 1;
      ts.report.handoff_resipi_s += handoff_s;
      if (rec != nullptr && rec->metering()) {
        rec->metrics().add("resipi.handoffs");
      }
      resipi_window_s = std::max(resipi_window_s, handoff_s);
    }
    if (s.shared) {
      r.last_tenant = t;
    }
    if (b->stage == 0) {
      b->batch_start_s = start;
    }
    // An unstalled chain telescopes through the schedule's exact prefix
    // offsets, so a lone batch completes bit-for-bit at the
    // batch-granular time; a stalled or handed-off stage falls back to
    // duration arithmetic from its actual start.
    const double expected = b->batch_start_s + s.start_offset_s;
    const double end =
        (handoff_s == 0.0 && start == expected)
            ? b->batch_start_s + s.end_offset_s
            : start + (s.end_offset_s - s.start_offset_s) + handoff_s;
    if (s.shared) {
      // Feed the admission estimate's cross-tenant contention term.
      shared_est_free_s = std::max(shared_est_free_s, end);
    }

    // Busy accounting keeps batch-granular executor semantics (the whole
    // occupancy is "this tenant's executor working"), so utilization is
    // comparable across modes; the trace below audits the stage's actual
    // physical lock instead.
    for (const std::size_t c : ts.occupancy) {
      report.chiplet_busy_s[c] += end - start;
    }
    ts.report.busy_s += end - start;
    if (config.record_batches) {
      BatchTrace trace;
      trace.tenant = t;
      trace.size = batch_size;
      trace.start_s = start;
      trace.end_s = end;
      trace.chiplets = r.chiplets;
      trace.resipi_start_s = start;
      trace.resipi_end_s = start + resipi_window_s;
      trace.first_layer = s.first_layer;
      trace.layer_count = s.layer_count;
      trace.batch_id = b->id;
      report.batches.push_back(std::move(trace));
    }
    if (rec != nullptr) {
      record_stage_trace(*b, s, start, end, resipi_window_s, handoff_s);
    }
    events.schedule_at(end, [this, b = std::move(b)]() mutable {
      end_stage(std::move(b));
    });
  }

  void end_stage(std::shared_ptr<InFlightBatch> b) {
    const ExecStage& s = (*b->stages)[b->stage];
    release_resource(s.resource);
    b->stage += 1;
    if (b->stage < b->stages->size()) {
      request_stage(std::move(b));
    } else {
      complete_layer_batch(std::move(b));
    }
  }

  void release_resource(std::size_t id) {
    Resource& r = resources[id];
    if (r.waiters.empty()) {
      r.busy = false;
      return;
    }
    const auto best = best_waiter(
        r.waiters, [](const std::shared_ptr<InFlightBatch>& b) {
          return b->tenant;
        });
    std::shared_ptr<InFlightBatch> next = std::move(*best);
    r.waiters.erase(best);
    if (r.shared) {
      tenants[next->tenant].report.shared_wait_s +=
          events.now() - next->wait_since_s;
    }
    start_stage(std::move(next));  // the resource stays busy
  }

  void complete_layer_batch(std::shared_ptr<InFlightBatch> b) {
    TenantState& ts = tenants[b->tenant];
    const double now = events.now();
    for (const Request& r : b->requests) {
      ts.latencies.push_back(now - r.arrival_s);
    }
    ts.report.completed += b->requests.size();
    if (rec != nullptr) {
      record_completions(b->tenant, b->requests, now);
    }
    for (std::size_t i = 0; i < b->requests.size(); ++i) {
      issue_closed(b->tenant);  // each response frees one closed-loop user
    }
    ts.inflight -= 1;
    last_completion_s = std::max(last_completion_s, now);
    try_dispatch(b->tenant);
  }
};

/// Shared-everything plan for the monolithic die: every tenant serializes
/// on the whole chip (there is no chiplet pool to partition).
ColocationPlan monolithic_plan(const core::SystemConfig& system,
                               const std::vector<TenantDemand>& demands) {
  ColocationPlan plan;
  plan.tenants.resize(demands.size());
  const accel::PlatformSpec spec =
      accel::make_monolithic_spec(system.monolithic_scale_divisor);
  std::size_t id = 0;
  for (const auto& group : spec.groups) {
    const accel::ComputeChiplet model(group.chiplet, system.tech);
    for (std::size_t c = 0; c < group.chiplet_count; ++c) {
      plan.shared_chiplets.push_back(id++);
      plan.chiplet_active_power_w.push_back(model.active_power_w());
    }
  }
  for (std::size_t t = 0; t < demands.size(); ++t) {
    plan.tenants[t].shared_kinds = demands[t].needed_kinds;
    plan.tenants[t].platform = spec;
  }
  return plan;
}

void finalize_tenant(TenantState& ts, double makespan_s) {
  TenantReport& r = ts.report;
  if (makespan_s > 0.0) {
    r.throughput_rps = static_cast<double>(r.completed) / makespan_s;
    // Layer-granular overlap sums concurrent stage intervals into busy_s,
    // so the executor's busy fraction saturates at 1 (mirrors the
    // per-chiplet clamp in the pool metric).
    r.utilization = std::min(r.busy_s, makespan_s) / makespan_s;
  }
  std::uint64_t violations = 0;
  if (!ts.latencies.empty()) {
    double sum = 0.0;
    for (const double l : ts.latencies) {
      sum += l;
      r.max_latency_s = std::max(r.max_latency_s, l);
      violations += l > r.sla_s ? 1 : 0;
    }
    r.mean_latency_s = sum / static_cast<double>(ts.latencies.size());
    r.p50_s = exact_quantile(ts.latencies, 0.50);
    r.p95_s = exact_quantile(ts.latencies, 0.95);
    r.p99_s = exact_quantile(ts.latencies, 0.99);
    r.sla_violation_rate = static_cast<double>(violations) /
                           static_cast<double>(ts.latencies.size());
  }
  if (makespan_s > 0.0) {
    // Every completion records one latency, so completed - violations is
    // exactly the SLA-met count.
    r.goodput_rps =
        static_cast<double>(r.completed - violations) / makespan_s;
  }
  if (r.completed > 0) {
    r.energy_per_request_j = r.energy_j / static_cast<double>(r.completed);
    r.mean_batch = static_cast<double>(r.completed) /
                   static_cast<double>(std::max<std::uint64_t>(r.batches, 1));
  }
}

}  // namespace

ColocatedSetup make_colocated_setup(const core::SystemConfig& system,
                                    accel::Architecture arch,
                                    const std::vector<std::string>& model_names,
                                    const std::vector<double>& weights) {
  OPTIPLET_REQUIRE(weights.empty() || weights.size() == model_names.size(),
                   "weights must be empty or match the model list");
  ColocatedSetup setup;
  std::vector<TenantDemand> demands;
  setup.models.reserve(model_names.size());
  for (std::size_t t = 0; t < model_names.size(); ++t) {
    setup.models.push_back(dnn::zoo::by_name(model_names[t]));
    TenantDemand demand;
    demand.needed_kinds = needed_kinds(
        dnn::compute_workload(setup.models.back(), system.parameter_bits));
    demand.weight = weights.empty() ? 1.0 : weights[t];
    demands.push_back(std::move(demand));
  }

  const bool monolithic = arch == accel::Architecture::kMonolithicCrossLight;
  setup.plan = monolithic
                   ? monolithic_plan(system, demands)
                   : partition_pool(system.compute_2p5d, demands, system.tech);

  // Service-time oracle: each tenant simulates on its own partition.
  setup.oracle_tenants.reserve(model_names.size());
  for (std::size_t t = 0; t < model_names.size(); ++t) {
    ServiceTimeOracle::Tenant ot{setup.models[t], system};
    if (!monolithic) {
      ot.config.compute_2p5d = setup.plan.tenants[t].platform;
    }
    setup.oracle_tenants.push_back(std::move(ot));
  }
  return setup;
}

ServingReport simulate(const ServingConfig& config) {
  OPTIPLET_REQUIRE(!config.tenants.empty(), "serving needs >= 1 tenant");
  const auto wall_t0 = std::chrono::steady_clock::now();

  std::vector<std::string> model_names;
  std::vector<double> weights;
  for (const auto& setup : config.tenants) {
    model_names.push_back(setup.model);
    weights.push_back(setup.weight);
  }
  ColocatedSetup setup =
      make_colocated_setup(config.system, config.arch, model_names, weights);
  const ColocationPlan& plan = setup.plan;
  ServiceTimeOracle oracle(std::move(setup.oracle_tenants), config.arch);

  Engine engine(config, oracle, plan);
  engine.report.chiplet_busy_s.assign(plan.chiplet_active_power_w.size(),
                                      0.0);
  engine.tenants.reserve(config.tenants.size());
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    const TenantSetup& setup = config.tenants[t];
    TenantState state(setup.batching);
    state.closed_loop = setup.source == ArrivalSource::kClosedLoop;
    if (state.closed_loop) {
      OPTIPLET_REQUIRE(!setup.replay_trace,
                       "closed-loop arrivals cannot replay a trace");
      OPTIPLET_REQUIRE(setup.users >= 1, "closed loop needs >= 1 user");
      OPTIPLET_REQUIRE(setup.think_s >= 0.0, "negative think time");
      state.issue_budget = setup.requests;
      state.think_mean_s = setup.think_s;
      state.think_rng = util::Xoshiro256(setup.seed);
      state.arrivals_done = state.issue_budget == 0;
    } else {
      state.arrivals =
          setup.replay_trace
              ? setup.trace_arrivals
              : poisson_arrivals(setup.arrival_rps, setup.requests,
                                 setup.seed);
      state.arrivals_done = state.arrivals.empty();
    }
    state.admission = setup.admission;
    state.priority = setup.priority;
    state.needs_shared = !plan.tenants[t].shared_kinds.empty();
    state.occupancy = plan.occupancy(t);
    state.report.name = setup.name.empty() ? setup.model : setup.name;
    state.report.model = setup.model;
    state.report.priority = setup.priority;
    // The batch-1 run pins the effective SLA (and pre-warms the cache with
    // the reference service time).
    state.report.sla_s = setup.sla_s > 0.0
                             ? setup.sla_s
                             : 10.0 * oracle.batch_run(t, 1).latency_s;
    engine.tenants.push_back(std::move(state));
  }
  if (config.pipeline == PipelineMode::kLayerGranular) {
    // Build the exclusive chiplet-group resource table: the shared-serial
    // pool first, then every tenant's owned groups.
    Resource shared;
    shared.shared = true;
    shared.chiplets = plan.shared_chiplets;
    engine.resources.push_back(std::move(shared));
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
      TenantState& ts = engine.tenants[t];
      for (const auto& [kind, ids] : plan.tenants[t].owned_by_kind) {
        const auto it = std::find_if(
            ts.kind_resource.begin(), ts.kind_resource.end(),
            [kind = kind](const auto& kr) { return kr.first == kind; });
        if (it != ts.kind_resource.end()) {
          // A pool with two groups of one kind folds into one resource.
          auto& chiplets = engine.resources[it->second].chiplets;
          chiplets.insert(chiplets.end(), ids.begin(), ids.end());
          continue;
        }
        Resource owned;
        owned.chiplets = ids;
        ts.kind_resource.emplace_back(kind, engine.resources.size());
        engine.resources.push_back(std::move(owned));
      }
      // The stage structure is batch-size independent, so batch 1 (already
      // simulated for the SLA) pins the tenant's pipeline depth.
      ts.pipeline_depth =
          Engine::distinct_resources(engine.exec_stages(t, 1));
    }
  }
  obs::Recorder* const rec = config.recorder;
  if (rec != nullptr) {
    engine.rec = rec;
    engine.pid = rec->pid();
    if (rec->tracing()) {
      obs::TraceBuffer& tb = rec->trace();
      tb.set_process_name(engine.pid,
                          rec->options().process_name.empty()
                              ? "serving"
                              : rec->options().process_name);
      // Track allocation order is fixed (tenants, then executors/groups,
      // then the interposer), so identical configs always produce
      // identical tids.
      for (const TenantState& ts : engine.tenants) {
        engine.tenant_tracks.push_back(
            tb.track(engine.pid, "tenant:" + ts.report.name));
      }
      if (config.pipeline == PipelineMode::kLayerGranular) {
        for (std::size_t r = 0; r < engine.resources.size(); ++r) {
          engine.resource_tracks.push_back(
              tb.track(engine.pid, r == 0 ? std::string("group:shared")
                                          : "group:" + std::to_string(r)));
        }
      } else {
        for (const TenantState& ts : engine.tenants) {
          engine.exec_tracks.push_back(
              tb.track(engine.pid, "exec:" + ts.report.name));
        }
      }
      engine.resipi_track = tb.track(engine.pid, "resipi");
    }
  }
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    TenantState& ts = engine.tenants[t];
    if (ts.closed_loop) {
      // Every user starts in a think phase, so the pool desynchronizes
      // naturally; issue_closed() stops at the tenant's budget.
      for (unsigned u = 0; u < config.tenants[t].users; ++u) {
        engine.issue_closed(t);
      }
    } else if (!ts.arrivals.empty()) {
      engine.schedule_arrival(t);
    }
  }
  if (rec != nullptr && rec->metering()) {
    // Snapshot cadence: the option, or ~64 snapshots across the known
    // arrival span (closed-loop runs have no precomputed span — fall back
    // to the largest SLA, a natural timescale for queue dynamics).
    double first = std::numeric_limits<double>::infinity();
    double last = 0.0;
    double max_sla_s = 0.0;
    for (const TenantState& ts : engine.tenants) {
      if (!ts.arrivals.empty()) {
        first = std::min(first, ts.arrivals.front());
        last = std::max(last, ts.arrivals.back());
      }
      max_sla_s = std::max(max_sla_s, ts.report.sla_s);
    }
    double period_s = rec->options().snapshot_period_s;
    if (period_s <= 0.0) {
      const double span_s =
          std::isfinite(first) && last > first ? last - first : 0.0;
      period_s =
          span_s > 0.0 ? span_s / 64.0 : std::max(max_sla_s, 1e-6);
    }
    const double start_s = std::isfinite(first) ? first : 0.0;
    engine.events.schedule_at(start_s + period_s, [&engine, period_s] {
      engine.metrics_tick(period_s);
    });
  }

  engine.events.run();
  OPTIPLET_ASSERT(engine.shared_waiters.empty(),
                  "serving drained with tenants still queued on the pool");
  for (const Resource& resource : engine.resources) {
    OPTIPLET_ASSERT(!resource.busy && resource.waiters.empty(),
                    "serving drained with a chiplet group still held");
  }
  for (const TenantState& ts : engine.tenants) {
    OPTIPLET_ASSERT(ts.inflight == 0,
                    "serving drained with batches still in flight");
  }

  // --- assemble the report ---
  // The measured window runs from the first arrival to the last
  // completion: replayed traces may start at an arbitrary absolute time,
  // which must not count as idle serving time. Closed-loop arrivals have
  // no precomputed arrival vector, so the engine tracks the first actual
  // arrival event for every source.
  const double first_arrival = std::isfinite(engine.first_arrival_s)
                                   ? engine.first_arrival_s
                                   : engine.last_completion_s;
  ServingReport out = std::move(engine.report);
  const double makespan =
      std::max(engine.last_completion_s - first_arrival, 0.0);
  ServingMetrics& m = out.metrics;
  m.makespan_s = makespan;
  m.first_arrival_abs_s = first_arrival;
  m.last_completion_abs_s = engine.last_completion_s;
  m.sim_events = engine.events.processed();
  m.sim_event_queue_peak = engine.events.peak_size();

  std::vector<double> all_latencies;
  std::uint64_t violations = 0;
  std::uint64_t batches = 0;
  std::map<unsigned, ClassReport> classes;
  std::map<unsigned, std::vector<double>> class_latencies;
  std::map<unsigned, std::uint64_t> class_violations;
  for (std::size_t t = 0; t < engine.tenants.size(); ++t) {
    TenantState& ts = engine.tenants[t];
    finalize_tenant(ts, makespan);
    m.offered += ts.report.offered;
    m.completed += ts.report.completed;
    m.shed += ts.report.shed;
    m.energy_j += ts.report.energy_j;
    m.resipi_conflicts += ts.report.resipi_conflicts;
    m.resipi_wait_s += ts.report.resipi_wait_s;
    m.shared_handoffs += ts.report.shared_handoffs;
    m.handoff_resipi_s += ts.report.handoff_resipi_s;
    batches += ts.report.batches;
    ClassReport& cls = classes[ts.priority];
    cls.priority = ts.priority;
    cls.offered += ts.report.offered;
    cls.completed += ts.report.completed;
    cls.shed += ts.report.shed;
    std::vector<double>& cls_lat = class_latencies[ts.priority];
    cls_lat.insert(cls_lat.end(), ts.latencies.begin(), ts.latencies.end());
    for (const double l : ts.latencies) {
      const std::uint64_t violated = l > ts.report.sla_s ? 1 : 0;
      violations += violated;
      class_violations[ts.priority] += violated;
    }
    all_latencies.insert(all_latencies.end(), ts.latencies.begin(),
                         ts.latencies.end());
    out.tenants.push_back(ts.report);
    out.tenant_latencies.push_back(std::move(ts.latencies));
  }
  OPTIPLET_ASSERT(m.offered == m.completed + m.shed,
                  "serving lost requests: offered != completed + shed");
  for (auto& [priority, cls] : classes) {
    const std::vector<double>& lat = class_latencies[priority];
    if (!lat.empty()) {
      cls.p99_s = exact_quantile(lat, 0.99);
      cls.sla_violation_rate =
          static_cast<double>(class_violations[priority]) /
          static_cast<double>(lat.size());
    }
    if (makespan > 0.0) {
      cls.goodput_rps = static_cast<double>(cls.completed -
                                            class_violations[priority]) /
                        makespan;
    }
    out.classes.push_back(cls);  // std::map iterates classes ascending
  }
  if (!out.classes.empty()) {
    m.p99_hi_s = out.classes.front().p99_s;
    m.p99_lo_s = out.classes.back().p99_s;
  }
  if (!all_latencies.empty()) {
    double sum = 0.0;
    for (const double l : all_latencies) {
      sum += l;
      m.max_latency_s = std::max(m.max_latency_s, l);
    }
    m.mean_latency_s = sum / static_cast<double>(all_latencies.size());
    m.p50_s = exact_quantile(all_latencies, 0.50);
    m.p95_s = exact_quantile(all_latencies, 0.95);
    m.p99_s = exact_quantile(all_latencies, 0.99);
    m.sla_violation_rate = static_cast<double>(violations) /
                           static_cast<double>(all_latencies.size());
  }
  if (makespan > 0.0) {
    m.throughput_rps = static_cast<double>(m.completed) / makespan;
    m.goodput_rps = static_cast<double>(m.completed - violations) / makespan;
    // Idle static burn of the whole pool between batches.
    double busy_fraction_sum = 0.0;
    for (std::size_t c = 0; c < out.chiplet_busy_s.size(); ++c) {
      const double busy = std::min(out.chiplet_busy_s[c], makespan);
      busy_fraction_sum += busy / makespan;
      out.ledger.charge_power_for("serving.idle",
                                  plan.chiplet_active_power_w[c] *
                                      config.system.idle_power_fraction,
                                  makespan - busy);
    }
    if (!out.chiplet_busy_s.empty()) {
      m.utilization =
          busy_fraction_sum / static_cast<double>(out.chiplet_busy_s.size());
    }
  }
  const auto idle_it = out.ledger.entries().find("serving.idle");
  if (idle_it != out.ledger.entries().end()) {
    m.energy_j += idle_it->second.dynamic_energy_j;
  }
  if (m.completed > 0) {
    m.energy_per_request_j = m.energy_j / static_cast<double>(m.completed);
    m.mean_batch = static_cast<double>(m.completed) /
                   static_cast<double>(std::max<std::uint64_t>(batches, 1));
  }
  m.service_cache_hits = oracle.cache_hits();
  m.service_cache_misses = oracle.cache_misses();
  if (rec != nullptr) {
    if (rec->metering()) {
      // Final snapshot closing the run (the queue is drained by now).
      rec->metrics().set("serve.queue_depth", 0.0);
      rec->metrics().set("serve.inflight_batches", 0.0);
      rec->metrics().snapshot(
          std::max(engine.last_completion_s, engine.events.now()));
    }
    if (rec->tracing()) {
      // One summary event per process: tools/check_trace_json.py
      // reconciles span counts against these totals (offered == request
      // spans == completed + shed).
      rec->trace().add_instant(
          "serving_totals", "summary", engine.last_completion_s, engine.pid,
          rec->trace().track(engine.pid, "summary"),
          {obs::arg("offered", m.offered), obs::arg("completed", m.completed),
           obs::arg("shed", m.shed)});
    }
  }
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_t0)
                   .count();
  return out;
}

ServingConfig make_serving_config(const core::SystemConfig& base,
                                  accel::Architecture arch,
                                  const ServingSpec& spec) {
  ServingConfig config;
  config.system = base;
  config.arch = arch;
  config.pipeline = spec.pipeline;

  const std::vector<std::string> mix = spec.tenants();
  OPTIPLET_REQUIRE(!mix.empty(), "empty tenant mix");
  const auto n = mix.size();
  const std::vector<unsigned> priorities = spec.priorities();

  OPTIPLET_REQUIRE(spec.source != ArrivalSource::kClosedLoop ||
                       spec.trace_path.empty(),
                   "closed-loop arrivals cannot replay a trace");
  std::vector<TraceEvent> trace;
  if (!spec.trace_path.empty()) {
    trace = load_arrival_trace(spec.trace_path);
  }

  for (std::size_t i = 0; i < n; ++i) {
    TenantSetup tenant;
    tenant.model = mix[i];
    // A model appearing more than once gets "#<mix-index>" appended to
    // *every* occurrence, so trace `tenant` labels can address each copy
    // unambiguously ("LeNet5#0", "LeNet5#1").
    tenant.name = mix[i];
    const auto copies =
        static_cast<std::size_t>(std::count(mix.begin(), mix.end(), mix[i]));
    if (copies > 1) {
      tenant.name += "#" + std::to_string(i);
    }
    tenant.arrival_rps = spec.arrival_rps / static_cast<double>(n);
    tenant.requests =
        spec.requests / n + (i < spec.requests % n ? 1 : 0);
    tenant.seed = spec.seed + i;
    tenant.source = spec.source;
    tenant.users = spec.users;
    tenant.think_s = spec.think_s;
    tenant.batching.policy = spec.policy;
    tenant.batching.max_batch = spec.max_batch;
    tenant.batching.max_wait_s = spec.max_wait_s;
    tenant.admission = spec.admission;
    tenant.priority = priorities[i];
    tenant.sla_s = spec.sla_s;
    if (!spec.trace_path.empty()) {
      tenant.replay_trace = true;
      tenant.trace_arrivals = trace_arrivals_for(trace, tenant.name);
    }
    config.tenants.push_back(std::move(tenant));
  }
  if (!spec.trace_path.empty()) {
    // A trace that feeds nobody is a labeling mistake (e.g. rows labeled
    // "LeNet5" against the duplicate-mix names "LeNet5#0"/"LeNet5#1"):
    // fail loud instead of serving an empty run.
    std::size_t fed = 0;
    std::vector<std::string> names;
    for (const auto& tenant : config.tenants) {
      fed += tenant.trace_arrivals.empty() ? 0 : 1;
      names.push_back(tenant.name);
    }
    if (fed == 0) {
      std::string message =
          "arrival trace feeds no tenant (tenant labels must be empty or "
          "match one of:";
      for (const auto& name : names) {
        message += " " + name;
      }
      throw std::invalid_argument(message + "): " + spec.trace_path);
    }
  }
  return config;
}

}  // namespace optiplet::serve
