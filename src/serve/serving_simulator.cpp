#include "serve/serving_simulator.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "dnn/zoo.hpp"
#include "serve/arrivals.hpp"
#include "serve/colocation.hpp"
#include "serve/service_time.hpp"
#include "sim/event_queue.hpp"
#include "util/require.hpp"

namespace optiplet::serve {
namespace {

constexpr std::size_t kNoTenant = static_cast<std::size_t>(-1);

/// Mutable per-tenant simulation state.
struct TenantState {
  BatchQueue queue;
  std::vector<double> arrivals;  ///< absolute times, ascending
  std::size_t next_arrival = 0;
  std::uint64_t next_id = 0;
  bool arrivals_done = false;
  bool busy = false;
  bool timer_armed = false;
  /// Batch formed but waiting for the shared-serial chiplets.
  std::vector<Request> pending;
  double pending_since = 0.0;
  bool needs_shared = false;
  std::vector<std::size_t> occupancy;
  std::vector<double> latencies;
  TenantReport report;

  explicit TenantState(const BatchingConfig& batching) : queue(batching) {}
};

/// The event-driven serving engine: all state one simulate() call touches.
struct Engine {
  const ServingConfig& config;
  ServiceTimeOracle& oracle;
  const ColocationPlan& plan;
  sim::EventQueue events;
  std::vector<TenantState> tenants;
  ServingReport report;

  // Shared-serial chiplet pool: exclusive, FIFO-granted.
  bool shared_busy = false;
  std::deque<std::size_t> shared_waiters;

  // ReSiPI serialization: one reconfiguration window at a time on the
  // shared interposer; a tenant never conflicts with itself (its own
  // reconfigurations are part of its serialized batches).
  std::size_t resipi_holder = kNoTenant;
  double resipi_free_at = 0.0;

  double last_completion_s = 0.0;

  Engine(const ServingConfig& cfg, ServiceTimeOracle& orc,
         const ColocationPlan& pln)
      : config(cfg), oracle(orc), plan(pln) {}

  void schedule_arrival(std::size_t t) {
    TenantState& ts = tenants[t];
    const std::size_t i = ts.next_arrival;
    events.schedule_at(ts.arrivals[i], [this, t, i] {
      TenantState& state = tenants[t];
      state.queue.push(Request{state.next_id++, events.now()});
      state.report.offered += 1;
      state.next_arrival = i + 1;
      if (state.next_arrival < state.arrivals.size()) {
        schedule_arrival(t);
      } else {
        state.arrivals_done = true;
      }
      try_dispatch(t);
    });
  }

  void try_dispatch(std::size_t t) {
    TenantState& ts = tenants[t];
    if (ts.busy) {
      return;
    }
    const double now = events.now();
    if (!ts.queue.ready(now, ts.arrivals_done)) {
      // kDeadline: arm the timeout dispatch for the queue head.
      const auto deadline = ts.queue.next_deadline();
      if (deadline && !ts.timer_armed) {
        ts.timer_armed = true;
        events.schedule_at(std::max(*deadline, now), [this, t] {
          tenants[t].timer_armed = false;
          try_dispatch(t);
        });
      }
      return;
    }
    std::vector<Request> batch = ts.queue.take(ts.arrivals_done);
    ts.busy = true;
    if (ts.needs_shared) {
      if (shared_busy) {
        ts.pending = std::move(batch);
        ts.pending_since = now;
        shared_waiters.push_back(t);
        return;
      }
      shared_busy = true;
    }
    begin_execution(t, std::move(batch));
  }

  void begin_execution(std::size_t t, std::vector<Request> batch) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    const auto batch_size = static_cast<unsigned>(batch.size());
    const core::RunResult& run = oracle.batch_run(t, batch_size);

    double start = now;
    double resipi_window_s = 0.0;
    if (config.arch == accel::Architecture::kSiph2p5D &&
        run.resipi_reconfigurations > 0) {
      if (resipi_holder != t && resipi_free_at > start) {
        const double wait = resipi_free_at - start;
        start += wait;
        ts.report.resipi_wait_s += wait;
        ts.report.resipi_conflicts += 1;
      }
      // The PCM writes happen inside the run (they are charged in its
      // latency); the window only excludes *other* tenants' writes.
      resipi_window_s =
          std::min(run.latency_s,
                   static_cast<double>(run.resipi_reconfigurations) *
                       config.system.tech.photonic.pcm.write_time_s);
      resipi_holder = t;
      resipi_free_at = start + resipi_window_s;
    }
    const double end = start + run.latency_s;

    for (const std::size_t c : ts.occupancy) {
      report.chiplet_busy_s[c] += end - start;
    }
    ts.report.busy_s += end - start;
    ts.report.energy_j += run.energy_j;
    ts.report.batches += 1;
    report.ledger.merge(run.ledger);
    if (config.record_batches) {
      BatchTrace trace;
      trace.tenant = t;
      trace.size = batch_size;
      trace.start_s = start;
      trace.end_s = end;
      trace.chiplets = ts.occupancy;
      trace.resipi_start_s = start;
      trace.resipi_end_s = start + resipi_window_s;
      report.batches.push_back(std::move(trace));
    }
    events.schedule_at(end, [this, t, b = std::move(batch)] {
      complete(t, b);
    });
  }

  void complete(std::size_t t, const std::vector<Request>& batch) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    for (const Request& r : batch) {
      ts.latencies.push_back(now - r.arrival_s);
    }
    ts.report.completed += batch.size();
    ts.busy = false;
    last_completion_s = std::max(last_completion_s, now);
    if (ts.needs_shared) {
      // Release the shared pool; grant FIFO to the next waiting tenant.
      if (shared_waiters.empty()) {
        shared_busy = false;
      } else {
        const std::size_t w = shared_waiters.front();
        shared_waiters.pop_front();
        TenantState& waiter = tenants[w];
        waiter.report.shared_wait_s += now - waiter.pending_since;
        begin_execution(w, std::move(waiter.pending));
        waiter.pending.clear();
      }
    }
    try_dispatch(t);
  }
};

/// Shared-everything plan for the monolithic die: every tenant serializes
/// on the whole chip (there is no chiplet pool to partition).
ColocationPlan monolithic_plan(const core::SystemConfig& system,
                               const std::vector<TenantDemand>& demands) {
  ColocationPlan plan;
  plan.tenants.resize(demands.size());
  const accel::PlatformSpec spec =
      accel::make_monolithic_spec(system.monolithic_scale_divisor);
  std::size_t id = 0;
  for (const auto& group : spec.groups) {
    const accel::ComputeChiplet model(group.chiplet, system.tech);
    for (std::size_t c = 0; c < group.chiplet_count; ++c) {
      plan.shared_chiplets.push_back(id++);
      plan.chiplet_active_power_w.push_back(model.active_power_w());
    }
  }
  for (std::size_t t = 0; t < demands.size(); ++t) {
    plan.tenants[t].shared_kinds = demands[t].needed_kinds;
    plan.tenants[t].platform = spec;
  }
  return plan;
}

void finalize_tenant(TenantState& ts, double makespan_s) {
  TenantReport& r = ts.report;
  if (makespan_s > 0.0) {
    r.throughput_rps = static_cast<double>(r.completed) / makespan_s;
    r.utilization = r.busy_s / makespan_s;
  }
  if (!ts.latencies.empty()) {
    double sum = 0.0;
    std::uint64_t violations = 0;
    for (const double l : ts.latencies) {
      sum += l;
      r.max_latency_s = std::max(r.max_latency_s, l);
      violations += l > r.sla_s ? 1 : 0;
    }
    r.mean_latency_s = sum / static_cast<double>(ts.latencies.size());
    r.p50_s = exact_quantile(ts.latencies, 0.50);
    r.p95_s = exact_quantile(ts.latencies, 0.95);
    r.p99_s = exact_quantile(ts.latencies, 0.99);
    r.sla_violation_rate = static_cast<double>(violations) /
                           static_cast<double>(ts.latencies.size());
  }
  if (r.completed > 0) {
    r.energy_per_request_j = r.energy_j / static_cast<double>(r.completed);
    r.mean_batch = static_cast<double>(r.completed) /
                   static_cast<double>(std::max<std::uint64_t>(r.batches, 1));
  }
}

}  // namespace

ServingReport simulate(const ServingConfig& config) {
  OPTIPLET_REQUIRE(!config.tenants.empty(), "serving needs >= 1 tenant");

  // Resolve models and resource demands.
  std::vector<dnn::Model> models;
  std::vector<TenantDemand> demands;
  models.reserve(config.tenants.size());
  for (const auto& setup : config.tenants) {
    models.push_back(dnn::zoo::by_name(setup.model));
    TenantDemand demand;
    demand.needed_kinds = needed_kinds(
        dnn::compute_workload(models.back(), config.system.parameter_bits));
    demand.weight = setup.weight;
    demands.push_back(std::move(demand));
  }

  const bool monolithic =
      config.arch == accel::Architecture::kMonolithicCrossLight;
  const ColocationPlan plan =
      monolithic ? monolithic_plan(config.system, demands)
                 : partition_pool(config.system.compute_2p5d, demands,
                                  config.system.tech);

  // Service-time oracle: each tenant simulates on its own partition.
  std::vector<ServiceTimeOracle::Tenant> oracle_tenants;
  oracle_tenants.reserve(config.tenants.size());
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    ServiceTimeOracle::Tenant ot{models[t], config.system};
    if (!monolithic) {
      ot.config.compute_2p5d = plan.tenants[t].platform;
    }
    oracle_tenants.push_back(std::move(ot));
  }
  ServiceTimeOracle oracle(std::move(oracle_tenants), config.arch);

  Engine engine(config, oracle, plan);
  engine.report.chiplet_busy_s.assign(plan.chiplet_active_power_w.size(),
                                      0.0);
  engine.tenants.reserve(config.tenants.size());
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    const TenantSetup& setup = config.tenants[t];
    TenantState state(setup.batching);
    state.arrivals = setup.replay_trace
                         ? setup.trace_arrivals
                         : poisson_arrivals(setup.arrival_rps, setup.requests,
                                            setup.seed);
    state.arrivals_done = state.arrivals.empty();
    state.needs_shared = !plan.tenants[t].shared_kinds.empty();
    state.occupancy = plan.occupancy(t);
    state.report.name = setup.name.empty() ? setup.model : setup.name;
    state.report.model = setup.model;
    // The batch-1 run pins the effective SLA (and pre-warms the cache with
    // the reference service time).
    state.report.sla_s = setup.sla_s > 0.0
                             ? setup.sla_s
                             : 10.0 * oracle.batch_run(t, 1).latency_s;
    engine.tenants.push_back(std::move(state));
  }
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    if (!engine.tenants[t].arrivals.empty()) {
      engine.schedule_arrival(t);
    }
  }

  engine.events.run();
  OPTIPLET_ASSERT(engine.shared_waiters.empty(),
                  "serving drained with tenants still queued on the pool");

  // --- assemble the report ---
  // The measured window runs from the first arrival to the last
  // completion: replayed traces may start at an arbitrary absolute time,
  // which must not count as idle serving time.
  double first_arrival = engine.last_completion_s;
  for (const TenantState& ts : engine.tenants) {
    if (!ts.arrivals.empty()) {
      first_arrival = std::min(first_arrival, ts.arrivals.front());
    }
  }
  ServingReport out = std::move(engine.report);
  const double makespan =
      std::max(engine.last_completion_s - first_arrival, 0.0);
  ServingMetrics& m = out.metrics;
  m.makespan_s = makespan;

  std::vector<double> all_latencies;
  std::uint64_t violations = 0;
  std::uint64_t batches = 0;
  for (std::size_t t = 0; t < engine.tenants.size(); ++t) {
    TenantState& ts = engine.tenants[t];
    finalize_tenant(ts, makespan);
    m.offered += ts.report.offered;
    m.completed += ts.report.completed;
    m.energy_j += ts.report.energy_j;
    m.resipi_conflicts += ts.report.resipi_conflicts;
    m.resipi_wait_s += ts.report.resipi_wait_s;
    batches += ts.report.batches;
    for (const double l : ts.latencies) {
      violations += l > ts.report.sla_s ? 1 : 0;
    }
    all_latencies.insert(all_latencies.end(), ts.latencies.begin(),
                         ts.latencies.end());
    out.tenants.push_back(ts.report);
  }
  if (!all_latencies.empty()) {
    double sum = 0.0;
    for (const double l : all_latencies) {
      sum += l;
      m.max_latency_s = std::max(m.max_latency_s, l);
    }
    m.mean_latency_s = sum / static_cast<double>(all_latencies.size());
    m.p50_s = exact_quantile(all_latencies, 0.50);
    m.p95_s = exact_quantile(all_latencies, 0.95);
    m.p99_s = exact_quantile(all_latencies, 0.99);
    m.sla_violation_rate = static_cast<double>(violations) /
                           static_cast<double>(all_latencies.size());
  }
  if (makespan > 0.0) {
    m.throughput_rps = static_cast<double>(m.completed) / makespan;
    // Idle static burn of the whole pool between batches.
    double busy_fraction_sum = 0.0;
    for (std::size_t c = 0; c < out.chiplet_busy_s.size(); ++c) {
      const double busy = std::min(out.chiplet_busy_s[c], makespan);
      busy_fraction_sum += busy / makespan;
      out.ledger.charge_power_for("serving.idle",
                                  plan.chiplet_active_power_w[c] *
                                      config.system.idle_power_fraction,
                                  makespan - busy);
    }
    if (!out.chiplet_busy_s.empty()) {
      m.utilization =
          busy_fraction_sum / static_cast<double>(out.chiplet_busy_s.size());
    }
  }
  const auto idle_it = out.ledger.entries().find("serving.idle");
  if (idle_it != out.ledger.entries().end()) {
    m.energy_j += idle_it->second.dynamic_energy_j;
  }
  if (m.completed > 0) {
    m.energy_per_request_j = m.energy_j / static_cast<double>(m.completed);
    m.mean_batch = static_cast<double>(m.completed) /
                   static_cast<double>(std::max<std::uint64_t>(batches, 1));
  }
  m.service_cache_hits = oracle.cache_hits();
  m.service_cache_misses = oracle.cache_misses();
  return out;
}

ServingConfig make_serving_config(const core::SystemConfig& base,
                                  accel::Architecture arch,
                                  const ServingSpec& spec) {
  ServingConfig config;
  config.system = base;
  config.arch = arch;

  const std::vector<std::string> mix = spec.tenants();
  OPTIPLET_REQUIRE(!mix.empty(), "empty tenant mix");
  const auto n = mix.size();

  std::vector<TraceEvent> trace;
  if (!spec.trace_path.empty()) {
    trace = load_arrival_trace(spec.trace_path);
  }

  for (std::size_t i = 0; i < n; ++i) {
    TenantSetup tenant;
    tenant.model = mix[i];
    // A model appearing more than once gets "#<mix-index>" appended to
    // *every* occurrence, so trace `tenant` labels can address each copy
    // unambiguously ("LeNet5#0", "LeNet5#1").
    tenant.name = mix[i];
    const auto copies =
        static_cast<std::size_t>(std::count(mix.begin(), mix.end(), mix[i]));
    if (copies > 1) {
      tenant.name += "#" + std::to_string(i);
    }
    tenant.arrival_rps = spec.arrival_rps / static_cast<double>(n);
    tenant.requests =
        spec.requests / n + (i < spec.requests % n ? 1 : 0);
    tenant.seed = spec.seed + i;
    tenant.batching.policy = spec.policy;
    tenant.batching.max_batch = spec.max_batch;
    tenant.batching.max_wait_s = spec.max_wait_s;
    tenant.sla_s = spec.sla_s;
    if (!spec.trace_path.empty()) {
      tenant.replay_trace = true;
      tenant.trace_arrivals = trace_arrivals_for(trace, tenant.name);
    }
    config.tenants.push_back(std::move(tenant));
  }
  if (!spec.trace_path.empty()) {
    // A trace that feeds nobody is a labeling mistake (e.g. rows labeled
    // "LeNet5" against the duplicate-mix names "LeNet5#0"/"LeNet5#1"):
    // fail loud instead of serving an empty run.
    std::size_t fed = 0;
    std::vector<std::string> names;
    for (const auto& tenant : config.tenants) {
      fed += tenant.trace_arrivals.empty() ? 0 : 1;
      names.push_back(tenant.name);
    }
    if (fed == 0) {
      std::string message =
          "arrival trace feeds no tenant (tenant labels must be empty or "
          "match one of:";
      for (const auto& name : names) {
        message += " " + name;
      }
      throw std::invalid_argument(message + "): " + spec.trace_path);
    }
  }
  return config;
}

}  // namespace optiplet::serve
