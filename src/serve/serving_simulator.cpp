#include "serve/serving_simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "dnn/registry.hpp"
#include "dnn/transformer.hpp"
#include "dnn/zoo.hpp"
#include "obs/recorder.hpp"
#include "serve/arrivals.hpp"
#include "serve/colocation.hpp"
#include "serve/service_time.hpp"
#include "sim/event_queue.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace optiplet::serve {
namespace {

constexpr std::size_t kNoTenant = static_cast<std::size_t>(-1);

/// One pipeline stage resolved against the engine's resource table:
/// a maximal run of consecutive layers whose chiplet group maps to one
/// exclusive resource (an owned group, or the shared-serial pool).
struct ExecStage {
  std::size_t resource = 0;
  bool shared = false;
  /// Prefix offsets within the batch (see serve::PipelineStage): an
  /// unstalled chain telescopes exactly to the batch-granular end time.
  double start_offset_s = 0.0;
  double end_offset_s = 0.0;
  std::size_t first_layer = 0;
  std::size_t layer_count = 0;
};

/// One batch advancing through its stage chain in layer-granular mode.
struct InFlightBatch {
  std::size_t tenant = 0;
  std::uint64_t id = 0;  ///< per-tenant dispatch sequence
  std::vector<Request> requests;
  const std::vector<ExecStage>* stages = nullptr;  ///< engine-cached
  std::size_t stage = 0;
  /// Start of stage 0 after ReSiPI adjustment: the anchor every
  /// unstalled stage's end time telescopes from.
  double batch_start_s = 0.0;
  double wait_since_s = 0.0;  ///< when it queued on the current resource
};

/// An exclusive, FIFO-granted chiplet-group resource (layer mode).
struct Resource {
  bool busy = false;
  bool shared = false;
  std::vector<std::size_t> chiplets;  ///< pool-global ids
  std::deque<std::shared_ptr<InFlightBatch>> waiters;
  /// Tenant-level waiters (variable-length tenants serving batch-granular
  /// or continuous iterations under layer mode): whole units of work
  /// queued on this resource alongside the stage waiters above.
  std::deque<std::size_t> tenant_waiters;
  /// Last tenant that executed on this resource — a different acquirer
  /// pays the cross-tenant handoff retune (shared resources only).
  std::size_t last_tenant = kNoTenant;
};

/// One admitted request in a continuous tenant's running set.
struct ActiveSeq {
  Request request;
  std::uint32_t decode_left = 0;
  /// Tokens resident in the KV cache: 0 until the prefill iteration lands
  /// the whole prompt, then +1 per decode step.
  std::uint32_t kv_tokens = 0;
};

/// Mutable per-tenant simulation state.
struct TenantState {
  BatchQueue queue;
  std::vector<double> arrivals;  ///< absolute times, ascending
  std::size_t next_arrival = 0;
  std::uint64_t next_id = 0;
  bool arrivals_done = false;
  bool busy = false;
  bool timer_armed = false;

  // --- closed-loop client pool ---
  bool closed_loop = false;
  std::uint64_t issue_budget = 0;  ///< total requests the users may issue
  std::uint64_t issued = 0;        ///< think timers started (<= budget)
  std::uint64_t arrived = 0;       ///< issued requests that have arrived
  double think_mean_s = 0.0;
  util::Xoshiro256 think_rng{0};

  // --- admission control / priority ---
  AdmissionPolicy admission = AdmissionPolicy::kAdmitAll;
  unsigned priority = 0;
  /// When the executor is expected to accept its next batch — the
  /// oracle-backed backlog estimate kSlaShed's shed decision runs on.
  double est_free_s = 0.0;
  /// Inter-arrival EMA [s] feeding the shed estimate's batch-fill-wait
  /// term; 0 until two arrivals have been observed.
  double interarrival_ema_s = 0.0;
  double last_arrival_s = -1.0;
  /// Batch formed but waiting for the shared-serial chiplets.
  std::vector<Request> pending;
  double pending_since = 0.0;
  bool needs_shared = false;
  std::vector<std::size_t> occupancy;
  std::vector<double> latencies;
  TenantReport report;

  // --- elastic operation ---
  /// Whether this tenant currently holds the shared pool. Releases key on
  /// this, not needs_shared: a re-partition can flip needs_shared while a
  /// batch dispatched under the old plan still holds the lock.
  bool holds_shared = false;
  /// Owned (non-shared) chiplets — the power-gating scope; shared
  /// chiplets never gate because another tenant may be using them.
  std::vector<std::size_t> owned;
  /// Tau-weighted interarrival EMA: the sustained-load signal driving
  /// re-partitioning (separate from interarrival_ema_s, whose fixed
  /// smoothing feeds the admission estimate).
  double gap_ema_s = 0.0;
  double ema_last_s = -1.0;
  /// Gating: when the executor went idle (<0 = busy or gating off).
  double idle_since_s = -1.0;
  /// Retry backoff jitter; isolated stream (seed ^ "retry") so retries
  /// never perturb the arrival/think/shape draws.
  util::Xoshiro256 retry_rng{0};

  // --- variable-length (transformer) serving ---
  /// Requests carry token shapes and are priced per phase (prefill +
  /// decode steps) instead of through the fixed-shape batch run.
  bool var_length = false;
  /// Mean token lengths (synthetic draws and the admission estimate).
  std::uint32_t prefill_mean = 0;
  std::uint32_t decode_mean = 0;
  double token_spread = 0.0;
  util::Xoshiro256 shape_rng{0};
  /// Replayed per-request shapes, consumed in arrival order.
  std::vector<RequestShape> trace_shapes;
  std::uint64_t shape_cursor = 0;
  std::uint64_t kv_bytes_per_token = 0;
  std::uint64_t kv_budget_bytes = 0;
  /// Final-context footprint reserved by every in-flight request; the
  /// budget bound is enforced on this reservation, so actual occupancy
  /// (which only grows token by token) can never exceed it.
  std::uint64_t kv_reserved_bytes = 0;
  std::uint64_t kv_peak_bytes = 0;
  std::uint64_t decode_tokens_done = 0;
  std::vector<double> ttfts;  ///< arrival -> prefill end, per request
  /// Memoized mean-shape batch service time by batch size (admission).
  std::map<unsigned, double> nominal_cache;

  // --- continuous (iteration-level) batching ---
  bool continuous = false;
  /// Concurrent decode slots the KV budget and max_batch allow (the
  /// admission estimate's amortization factor).
  unsigned cont_slots = 1;
  std::vector<ActiveSeq> active;  ///< the running decode set
  bool iter_running = false;
  bool iter_waiting_shared = false;
  /// Busy-period anchor + running accumulator: iteration k ends at
  /// exactly origin + (accum += dt_k), so an unstalled single-request
  /// period telescopes bit-for-bit to the static whole-request price.
  double origin_s = 0.0;
  double accum_s = 0.0;
  /// Per-busy-period energy accumulator, flushed into report.energy_j at
  /// the next re-anchor (and at finalize): the report total is then the
  /// same per-period left-to-right fold begin_execution_tokens performs,
  /// so the single-user degeneracy holds for energy bit-for-bit too.
  double energy_accum_j = 0.0;

  // --- layer-granular mode ---
  /// Owned-group resource ids by MAC kind (shared kinds resolve to the
  /// pool-global shared resource instead).
  std::vector<std::pair<accel::MacKind, std::size_t>> kind_resource;
  /// Resolved stage chains per batch size (pointers into this map are
  /// handed to in-flight batches; std::map keeps them stable).
  std::map<unsigned, std::vector<ExecStage>> stage_cache;
  /// Batches in flight; bounded by the stage chain's distinct resources.
  std::size_t inflight = 0;
  std::size_t pipeline_depth = 1;
  std::uint64_t batch_seq = 0;

  explicit TenantState(const BatchingConfig& batching) : queue(batching) {}
};

/// The event-driven serving engine: all state one simulate() call touches.
struct Engine {
  const ServingConfig& config;
  /// Current-generation oracle/plan. Generation 0 lives in simulate()'s
  /// frame; elastic re-partitions push new generations onto gen_oracles /
  /// gen_plans and swap these pointers (all generations stay alive, so
  /// in-flight callbacks and cached references never dangle).
  ServiceTimeOracle* oracle;
  const ColocationPlan* plan;
  sim::EventQueue events;
  std::vector<TenantState> tenants;
  ServingReport report;

  // Shared-serial chiplet pool: exclusive, FIFO-granted.
  bool shared_busy = false;
  std::deque<std::size_t> shared_waiters;

  // ReSiPI serialization: one reconfiguration window at a time on the
  // shared interposer; a tenant never conflicts with itself (its own
  // reconfigurations are part of its serialized batches).
  std::size_t resipi_holder = kNoTenant;
  double resipi_free_at = 0.0;

  // Layer-granular mode: exclusive chiplet-group resources. Index 0 is
  // the shared-serial pool; owned groups follow per tenant.
  std::vector<Resource> resources;

  double last_completion_s = 0.0;
  /// Time of the first request to actually arrive, from any source — the
  /// start of the measured serving window.
  double first_arrival_s = std::numeric_limits<double>::infinity();
  /// When the shared-serial chiplet group is expected to free up, per
  /// priority class — the cross-tenant contention term of the kSlaShed
  /// backlog estimate. Kept per class so a high-priority tenant's
  /// estimate only counts equal-or-higher-priority occupancy: the
  /// priority-first grant order means lower-priority backlog cannot delay
  /// it, and charging it anyway over-sheds co-located below-knee streams.
  std::map<unsigned, double> shared_est_free_by_class;
  /// Total KV bytes reserved across tenants (the serve.kv_bytes gauge).
  std::uint64_t kv_total_bytes = 0;

  // --- elastic operation (all inert when config.elastic is default) ---
  /// Later oracle/plan generations created by re-partitions (generation 0
  /// is owned by simulate()'s frame).
  std::vector<std::unique_ptr<ServiceTimeOracle>> gen_oracles;
  std::vector<std::unique_ptr<ColocationPlan>> gen_plans;
  /// Immutable per-tenant demand skeleton + models; re-partitions only
  /// recompute the weights. Populated when the pool can change.
  std::vector<TenantDemand> base_demands;
  std::vector<dnn::Model> base_models;
  /// Current partition weights and their normalized shares (the EMA drift
  /// signal compares demand shares against alloc_share).
  std::vector<double> cur_weights;
  std::vector<double> alloc_share;
  /// <0 until the first arrival; the cooldown doubles as EMA warm-up.
  double last_repartition_s = -1.0;
  /// Pool-global fault state (char: vector<bool> has no data()).
  std::vector<char> chiplet_dead;
  std::vector<double> dead_since;
  /// Gated idle seconds per pool chiplet, subtracted from the idle burn.
  std::vector<double> chiplet_gated_s;
  /// Drifted-microring service-latency multiplier (>= 1; exact 1.0 when
  /// no derate fault fired, so `latency * derate_mult` is bit-exact).
  double derate_mult = 1.0;

  // --- observability (null = disabled; every hook is one branch) ---
  obs::Recorder* rec = nullptr;
  int pid = 0;
  std::vector<std::uint64_t> tenant_tracks;
  std::vector<std::uint64_t> exec_tracks;      ///< batch-granular executors
  std::vector<std::uint64_t> resource_tracks;  ///< layer-granular groups
  std::uint64_t resipi_track = 0;

  Engine(const ServingConfig& cfg, ServiceTimeOracle& orc,
         const ColocationPlan& pln)
      : config(cfg), oracle(&orc), plan(&pln) {}

  /// Shed trace span (zero duration, tagged with the shed reason) and
  /// counter. kSlaShed has exactly one reject reason today; the tag keeps
  /// the trace self-describing if more are added.
  void record_shed(std::size_t t, double now) {
    if (rec->metering()) {
      rec->metrics().add("serve.shed");
    }
    if (rec->tracing()) {
      rec->trace().add_complete(
          "request", "request", now, now, pid, tenant_tracks[t],
          {obs::arg("tenant", tenants[t].report.name),
           obs::arg("outcome", "shed"),
           obs::arg("shed_reason", "predicted_sla_miss")});
    }
  }

  void record_resipi_conflict(double wait_s) {
    if (rec != nullptr && rec->metering()) {
      rec->metrics().add("resipi.conflicts");
      rec->metrics().add("resipi.wait_s", wait_s);
    }
  }

  [[nodiscard]] bool layer_mode() const {
    return config.pipeline == PipelineMode::kLayerGranular;
  }

  /// Record that a tenant of `priority` holds shared-serial capacity
  /// until `end` (feeds the class-aware admission estimate).
  void note_shared_busy_until(unsigned priority, double end) {
    double& est = shared_est_free_by_class[priority];
    est = std::max(est, end);
  }

  /// Expected shared-pool free time as seen by a tenant of `priority`:
  /// only equal-or-higher-priority occupancy counts (grants are
  /// priority-first, so lower-priority backlog never delays this tenant
  /// beyond the batch already executing).
  [[nodiscard]] double shared_est_for(unsigned priority) const {
    double est = 0.0;
    for (const auto& [cls, end] : shared_est_free_by_class) {
      if (cls <= priority) {
        est = std::max(est, end);
      }
    }
    return est;
  }

  [[nodiscard]] std::uint64_t footprint_bytes(const TenantState& ts,
                                              const RequestShape& shape) {
    return shape.total_tokens() * ts.kv_bytes_per_token;
  }

  /// Reserve (+) or release (-) KV bytes for tenant `t`, tracking the
  /// per-tenant peak and the serve.kv_bytes gauge.
  void kv_update(std::size_t t, std::uint64_t bytes, bool reserve) {
    TenantState& ts = tenants[t];
    if (reserve) {
      ts.kv_reserved_bytes += bytes;
      kv_total_bytes += bytes;
      ts.kv_peak_bytes = std::max(ts.kv_peak_bytes, ts.kv_reserved_bytes);
    } else {
      OPTIPLET_ASSERT(ts.kv_reserved_bytes >= bytes && kv_total_bytes >= bytes,
                      "KV release exceeds the outstanding reservation");
      ts.kv_reserved_bytes -= bytes;
      kv_total_bytes -= bytes;
    }
    if (rec != nullptr && rec->metering()) {
      rec->metrics().set("serve.kv_bytes",
                         static_cast<double>(kv_total_bytes));
    }
  }

  /// Mean-shape batch service time of a variable-length tenant at batch
  /// size `batch` (padding semantics: prefill at the mean prompt, one
  /// decode step per mean generated token). Feeds the kSlaShed estimate
  /// and the derived SLA; memoized per batch size.
  double nominal_batch_s(std::size_t t, unsigned batch) {
    TenantState& ts = tenants[t];
    if (const auto it = ts.nominal_cache.find(batch);
        it != ts.nominal_cache.end()) {
      return it->second;
    }
    const std::uint32_t pm = std::max<std::uint32_t>(ts.prefill_mean, 1);
    double total = oracle->prefill_run(t, batch, pm).latency_s;
    for (std::uint32_t k = 0; k < ts.decode_mean; ++k) {
      total += oracle->decode_run(t, batch, pm + k).latency_s;
    }
    ts.nominal_cache.emplace(batch, total);
    return total;
  }

  /// Acquire the shared-serial pool for tenant-level work (a
  /// variable-length batch or a continuous iteration); false = queued.
  /// Batch mode uses the batch engine's lock; layer mode queues on the
  /// shared Resource so stage-granular tenants and whole-batch tenants
  /// contend on the same physical chiplets.
  [[nodiscard]] bool acquire_shared_for_tenant(std::size_t t) {
    if (layer_mode()) {
      Resource& r = resources[0];
      if (r.busy) {
        r.tenant_waiters.push_back(t);
        return false;
      }
      r.busy = true;
      return true;
    }
    if (shared_busy) {
      shared_waiters.push_back(t);
      return false;
    }
    shared_busy = true;
    return true;
  }

  /// Hand the (still-held) shared pool to a tenant-level waiter.
  void grant_tenant_shared(std::size_t w, double now) {
    TenantState& waiter = tenants[w];
    waiter.holds_shared = true;
    waiter.report.shared_wait_s += now - waiter.pending_since;
    if (waiter.iter_waiting_shared) {
      waiter.iter_waiting_shared = false;
      continuous_iterate(w);
    } else {
      std::vector<Request> pending = std::move(waiter.pending);
      waiter.pending.clear();
      begin_execution(w, std::move(pending));
    }
  }

  /// Release the shared pool after tenant-level work (batch mode lock, or
  /// the layer-mode shared Resource), granting priority-first.
  void release_shared_from_tenant(double now) {
    if (layer_mode()) {
      release_resource(0);
      return;
    }
    if (shared_waiters.empty()) {
      shared_busy = false;
      return;
    }
    grant_tenant_shared(pop_shared_waiter(), now);
  }

  /// Per-phase spans of a variable-length batch on the tenant's executor
  /// track: the MAC-bound prefill and the bandwidth-bound decode tail.
  void record_phase_spans(std::size_t t, double start, double prefill_end,
                          double end) {
    if (!rec->tracing()) {
      return;
    }
    obs::TraceBuffer& tb = rec->trace();
    tb.add_complete("prefill", "phase", start, prefill_end, pid,
                    exec_tracks[t],
                    {obs::arg("tenant", tenants[t].report.name)});
    if (end > prefill_end) {
      tb.add_complete("decode", "phase", prefill_end, end, pid,
                      exec_tracks[t],
                      {obs::arg("tenant", tenants[t].report.name)});
    }
  }

  /// Request spans ([arrival, completion], one per request) plus the
  /// latency histograms (global and per priority class).
  void record_completions(std::size_t t, const std::vector<Request>& batch,
                          double now) {
    TenantState& ts = tenants[t];
    if (rec->metering()) {
      obs::MetricsRegistry& m = rec->metrics();
      m.add("serve.completed", static_cast<double>(batch.size()));
      const std::string cls =
          "serve.class" + std::to_string(ts.priority) + ".latency";
      for (const Request& r : batch) {
        m.observe("serve.latency", now - r.arrival_s);
        m.observe(cls, now - r.arrival_s);
      }
    }
    if (rec->tracing()) {
      obs::TraceBuffer& tb = rec->trace();
      for (const Request& r : batch) {
        tb.add_complete("request", "request", r.arrival_s, now, pid,
                        tenant_tracks[t],
                        {obs::arg("tenant", ts.report.name),
                         obs::arg("request", r.id),
                         obs::arg("outcome", "completed"),
                         obs::arg("latency_s", now - r.arrival_s)});
      }
    }
  }

  /// Per-dispatch metrics shared by both pipeline modes (`run` is the
  /// batch's oracle result, in scope only at dispatch).
  void record_dispatch_metrics(unsigned batch_size,
                               const core::RunResult& run) {
    if (rec->metering()) {
      obs::MetricsRegistry& m = rec->metrics();
      m.add("serve.batches");
      m.observe("serve.batch_size", static_cast<double>(batch_size));
      m.set("resipi.active_gateways", run.mean_active_gateways);
      m.add("serve.energy_j", run.energy_j);
    }
  }

  /// Batch-granular trace: per-request queue spans closing at the batch
  /// start, the batch span on the tenant's executor track, and the ReSiPI
  /// window on the interposer track.
  void record_batch_trace(std::size_t t, const std::vector<Request>& batch,
                          double start, double end, double resipi_window_s) {
    if (!rec->tracing()) {
      return;
    }
    TenantState& ts = tenants[t];
    obs::TraceBuffer& tb = rec->trace();
    for (const Request& r : batch) {
      tb.add_complete("queue", "queue", r.arrival_s, start, pid,
                      tenant_tracks[t], {obs::arg("request", r.id)});
    }
    tb.add_complete(
        "batch", "exec", start, end, pid, exec_tracks[t],
        {obs::arg("tenant", ts.report.name),
         obs::arg("batch", ts.report.batches - 1),
         obs::arg("size", static_cast<std::uint64_t>(batch.size()))});
    if (resipi_window_s > 0.0) {
      tb.add_complete("retune", "resipi", start, start + resipi_window_s,
                      pid, resipi_track,
                      {obs::arg("tenant", ts.report.name),
                       obs::arg("kind", "batch_window")});
    }
  }

  /// Layer-granular trace: stage spans live on their chiplet-group track
  /// (exclusive FIFO resources, so spans never overlap within a track);
  /// stage 0 also closes the batch's queue spans.
  void record_stage_trace(const InFlightBatch& b, const ExecStage& s,
                          double start, double end, double resipi_window_s,
                          double handoff_s) {
    if (!rec->tracing()) {
      return;
    }
    const TenantState& ts = tenants[b.tenant];
    obs::TraceBuffer& tb = rec->trace();
    if (b.stage == 0) {
      for (const Request& r : b.requests) {
        tb.add_complete("queue", "queue", r.arrival_s, start, pid,
                        tenant_tracks[b.tenant], {obs::arg("request", r.id)});
      }
    }
    tb.add_complete(
        "stage", "exec", start, end, pid, resource_tracks[s.resource],
        {obs::arg("tenant", ts.report.name), obs::arg("batch", b.id),
         obs::arg("size", static_cast<std::uint64_t>(b.requests.size())),
         obs::arg("first_layer", static_cast<std::uint64_t>(s.first_layer)),
         obs::arg("layer_count",
                  static_cast<std::uint64_t>(s.layer_count))});
    if (resipi_window_s > 0.0) {
      tb.add_complete(
          "retune", "resipi", start, start + resipi_window_s, pid,
          resipi_track,
          {obs::arg("tenant", ts.report.name),
           obs::arg("kind", handoff_s > 0.0 ? "handoff" : "batch_window")});
    }
  }

  /// Periodic metric snapshot: sample the queue-depth / in-flight gauges
  /// and emit one row per live series, re-arming while any tenant is
  /// active. Read-only observer — it never touches engine state, so an
  /// attached recorder cannot change simulation results.
  void metrics_tick(double period_s) {
    bool active = false;
    std::size_t depth = 0;
    std::size_t inflight = 0;
    for (const TenantState& ts : tenants) {
      depth += ts.queue.size();
      inflight += (ts.busy ? 1 : 0) + ts.inflight;
      active = active || !ts.arrivals_done || ts.busy || ts.inflight > 0 ||
               ts.queue.size() > 0 || !ts.pending.empty() ||
               !ts.active.empty() || ts.iter_running ||
               ts.iter_waiting_shared;
    }
    obs::MetricsRegistry& m = rec->metrics();
    m.set("serve.queue_depth", static_cast<double>(depth));
    m.set("serve.inflight_batches", static_cast<double>(inflight));
    m.snapshot(events.now());
    if (active) {
      events.schedule_in(period_s,
                         [this, period_s] { metrics_tick(period_s); });
    }
  }

  // ------------------------------------------------------------------
  // Elastic operation (docs/elastic-operation.md). Every hook below is a
  // no-op branch when config.elastic is the inert default — the static
  // code path is bit-identical (degeneracy-tested).

  /// Day-curve bucket covering time `t`, growing the curve as needed;
  /// null when the curve is disabled.
  DayPoint* curve_bucket(double t) {
    const double bucket_s = config.elastic.curve_bucket_s;
    if (bucket_s <= 0.0) {
      return nullptr;
    }
    const auto idx =
        static_cast<std::size_t>(std::max(t, 0.0) / bucket_s);
    OPTIPLET_REQUIRE(idx < (std::size_t{1} << 22),
                     "day-curve bucket index exploded (curve_bucket_s is "
                     "too small for the trace span)");
    if (report.day_curve.size() <= idx) {
      const std::size_t old_size = report.day_curve.size();
      report.day_curve.resize(idx + 1);
      for (std::size_t i = old_size; i < report.day_curve.size(); ++i) {
        report.day_curve[i].t0_s = static_cast<double>(i) * bucket_s;
        report.day_curve[i].dt_s = bucket_s;
      }
    }
    return &report.day_curve[idx];
  }

  /// Rebuild the live pool minus dead chiplets. `id_map` maps the reduced
  /// pool-global ids the new plan uses back to original ids (valid because
  /// partition ids are assigned sequentially over groups in group order,
  /// and removing chiplets preserves that order).
  [[nodiscard]] accel::PlatformSpec alive_platform(
      std::vector<std::size_t>& id_map) const {
    accel::PlatformSpec spec = config.system.compute_2p5d;
    id_map.clear();
    std::size_t id = 0;
    for (auto& group : spec.groups) {
      std::size_t alive = 0;
      for (std::size_t c = 0; c < group.chiplet_count; ++c, ++id) {
        if (id >= chiplet_dead.size() || chiplet_dead[id] == 0) {
          id_map.push_back(id);
          ++alive;
        }
      }
      group.chiplet_count = alive;
    }
    return spec;
  }

  static std::vector<std::size_t> remap_ids(
      std::vector<std::size_t> ids, const std::vector<std::size_t>& id_map) {
    for (std::size_t& id : ids) {
      id = id_map[id];
    }
    return ids;
  }

  /// Re-partition the (alive) pool at the given weights and swap in a new
  /// oracle/plan generation. Charges exactly one serialized ReSiPI
  /// PCM-write window on the interposer per call, plus write energy for
  /// every chiplet that changed hands.
  void repartition(double now, const std::vector<double>& weights,
                   const char* reason) {
    last_repartition_s = now;
    cur_weights = weights;
    double total_w = 0.0;
    for (const double w : weights) {
      total_w += w;
    }
    std::vector<std::size_t> id_map;
    const accel::PlatformSpec alive = alive_platform(id_map);
    std::vector<TenantDemand> demands = base_demands;
    for (std::size_t t = 0; t < demands.size(); ++t) {
      demands[t].weight = weights[t];
      alloc_share[t] = weights[t] / total_w;
    }
    // Throws when a dead chiplet emptied a kind some tenant still needs —
    // the pool can no longer serve that model at all.
    auto next = std::make_unique<ColocationPlan>(
        partition_pool(alive, demands, config.system.tech));
    std::vector<ServiceTimeOracle::Tenant> oracle_tenants;
    oracle_tenants.reserve(tenants.size());
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      ServiceTimeOracle::Tenant ot{base_models[t], config.system};
      ot.config.compute_2p5d = next->tenants[t].platform;
      ot.transformer = oracle->transformer(t);
      oracle_tenants.push_back(std::move(ot));
    }
    gen_oracles.push_back(std::make_unique<ServiceTimeOracle>(
        std::move(oracle_tenants), config.arch));
    // Close open gating gaps against the outgoing ownership before the
    // owned sets change underneath them.
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      close_gate_gap(t, now);
    }
    std::vector<std::size_t> owner(chiplet_dead.size(), kNoTenant);
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      for (const std::size_t c : tenants[t].owned) {
        owner[c] = t;
      }
    }
    std::uint64_t rewritten = 0;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      TenantState& ts = tenants[t];
      ts.occupancy = remap_ids(next->occupancy(t), id_map);
      ts.owned = remap_ids(next->tenants[t].owned_chiplets, id_map);
      ts.needs_shared = !next->tenants[t].shared_kinds.empty();
      ts.nominal_cache.clear();
      for (const std::size_t c : ts.owned) {
        if (owner[c] != t) {
          rewritten += 1;  // this gateway retunes for a new tenant
        }
      }
    }
    gen_plans.push_back(std::move(next));
    plan = gen_plans.back().get();
    oracle = gen_oracles.back().get();
    // One PCM-write window, serialized on the shared interposer exactly
    // like a batch reconfiguration: every tenant's next retune waits.
    const double write_s = config.system.tech.photonic.pcm.write_time_s;
    resipi_free_at = std::max(resipi_free_at, now) + write_s;
    resipi_holder = kNoTenant;
    report.metrics.repartitions += 1;
    report.metrics.repartition_resipi_s += write_s;
    report.ledger.charge_energy(
        "serving.repartition",
        static_cast<double>(rewritten) *
            config.system.tech.photonic.pcm.write_energy_j);
    if (rec != nullptr) {
      if (rec->metering()) {
        rec->metrics().add("elastic.repartitions");
      }
      if (rec->tracing()) {
        rec->trace().add_complete("repartition", "resipi", now,
                                  now + write_s, pid, resipi_track,
                                  {obs::arg("reason", std::string(reason)),
                                   obs::arg("rewritten", rewritten)});
      }
    }
  }

  /// Update the EMA load signal on an arrival and trigger a re-partition
  /// once the demand shares drift past the threshold (cooldown-limited).
  void elastic_observe_arrival(std::size_t t, double now) {
    TenantState& ts = tenants[t];
    if (ts.ema_last_s >= 0.0) {
      const double gap = now - ts.ema_last_s;
      if (ts.gap_ema_s <= 0.0) {
        ts.gap_ema_s = gap;
      } else {
        // Irregular-sample EMA: weight decays with the elapsed gap.
        const double alpha = 1.0 - std::exp(-gap / config.elastic.ema_tau_s);
        ts.gap_ema_s = alpha * gap + (1.0 - alpha) * ts.gap_ema_s;
      }
    }
    ts.ema_last_s = now;
    if (last_repartition_s < 0.0) {
      last_repartition_s = now;  // cooldown clock starts at first arrival
      return;
    }
    if (tenants.size() < 2 ||
        now - last_repartition_s < config.elastic.cooldown_s) {
      return;
    }
    double total_rate = 0.0;
    std::vector<double> rate(tenants.size(), 0.0);
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      if (tenants[i].gap_ema_s <= 0.0) {
        return;  // no signal from every tenant yet
      }
      rate[i] = 1.0 / tenants[i].gap_ema_s;
      total_rate += rate[i];
    }
    double drift = 0.0;
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      drift = std::max(drift,
                       std::abs(rate[i] / total_rate - alloc_share[i]));
    }
    if (drift <= config.elastic.shift_threshold) {
      return;
    }
    // Quantize demand shares to sixteenths (min one) so near-identical
    // signals hit the same partition and the plan does not churn.
    std::vector<double> weights(tenants.size());
    for (std::size_t i = 0; i < tenants.size(); ++i) {
      weights[i] = static_cast<double>(std::max<long>(
          1, std::lround(16.0 * rate[i] / total_rate)));
    }
    if (weights == cur_weights) {
      last_repartition_s = now;  // evaluated; nothing would change
      return;
    }
    repartition(now, weights, "load_shift");
  }

  /// Inject one armed fault: apply the bandwidth derate, kill the
  /// chiplet, and re-partition around the dead hardware (ignoring the
  /// policy cooldown — a fault is not a load shift).
  void apply_fault(const FaultSpec& fault) {
    const double now = events.now();
    report.metrics.faults_injected += 1;
    if (fault.bandwidth_derate < 1.0) {
      derate_mult /= fault.bandwidth_derate;
    }
    bool killed = false;
    const auto c = static_cast<std::size_t>(fault.chiplet);
    if (fault.chiplet >= 0 && chiplet_dead[c] == 0) {
      chiplet_dead[c] = 1;
      dead_since[c] = now;
      killed = true;
    }
    if (rec != nullptr) {
      if (rec->metering()) {
        rec->metrics().add("elastic.faults");
      }
      if (rec->tracing()) {
        rec->trace().add_instant(
            "fault", "fault", now, pid, resipi_track,
            {obs::arg("chiplet", static_cast<double>(fault.chiplet)),
             obs::arg("derate", fault.bandwidth_derate)});
      }
    }
    if (killed) {
      repartition(now, cur_weights, "fault");
    }
  }

  /// Close a tenant's open gating gap at `now`: the idle time beyond
  /// gate_after_s was spent with its owned lasers/gateways dark. Returns
  /// the gated wall-seconds (0 when the gap never crossed the threshold).
  /// Lazy — no timer events, so an inert run's event count is untouched.
  double close_gate_gap(std::size_t t, double now) {
    TenantState& ts = tenants[t];
    if (!config.elastic.gate || ts.idle_since_s < 0.0) {
      return 0.0;
    }
    const double gated = now - ts.idle_since_s - config.elastic.gate_after_s;
    ts.idle_since_s = now;  // continuing idleness re-measures from here
    if (gated <= 0.0) {
      return 0.0;
    }
    ts.report.gate_events += 1;
    ts.report.gated_idle_s += gated * static_cast<double>(ts.owned.size());
    for (const std::size_t c : ts.owned) {
      chiplet_gated_s[c] += gated;
    }
    if (rec != nullptr) {
      if (rec->metering()) {
        rec->metrics().add("elastic.gate_events");
        rec->metrics().add("elastic.gated_idle_s", gated);
      }
      if (rec->tracing()) {
        rec->trace().add_complete("gated", "gate", now - gated, now, pid,
                                  tenant_tracks[t],
                                  {obs::arg("tenant", ts.report.name)});
      }
    }
    return gated;
  }

  /// Gating hook at dispatch: returns the batch's start time, delayed by
  /// the wake latency when the tenant's hardware had gated.
  double elastic_wake(std::size_t t, double now) {
    TenantState& ts = tenants[t];
    if (!config.elastic.gate) {
      return now;
    }
    const double gated = close_gate_gap(t, now);
    ts.idle_since_s = -1.0;  // busy again
    return gated > 0.0 ? now + config.elastic.wake_s : now;
  }

  /// Abandoned-request span (retry budget exhausted) and counter.
  void record_abandoned(std::size_t t, const Request& r, double now) {
    if (rec->metering()) {
      rec->metrics().add("serve.abandoned");
    }
    if (rec->tracing()) {
      rec->trace().add_complete(
          "request", "request", r.arrival_s, now, pid, tenant_tracks[t],
          {obs::arg("tenant", tenants[t].report.name),
           obs::arg("outcome", "abandoned"),
           obs::arg("attempts",
                    static_cast<std::uint64_t>(
                        config.elastic.retry_max_attempts))});
    }
  }

  /// One request reaches the tenant: count it, run admission, enqueue or
  /// shed, and poke the dispatcher. Shared by every arrival source.
  void arrive(std::size_t t) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    first_arrival_s = std::min(first_arrival_s, now);
    Request request{ts.next_id++, now};
    if (ts.var_length) {
      // Replayed shapes are consumed in arrival-event order; rows without
      // token columns (and synthetic arrivals) draw around the means.
      if (ts.shape_cursor < ts.trace_shapes.size()) {
        request.shape = ts.trace_shapes[ts.shape_cursor++];
      }
      if (!request.shape.variable_length()) {
        request.shape = draw_request_shape(ts.prefill_mean, ts.decode_mean,
                                           ts.token_spread, ts.shape_rng);
      }
      OPTIPLET_REQUIRE(request.shape.variable_length(),
                       "variable-length tenant received a request without "
                       "a prompt: " +
                           ts.report.name);
    }
    ts.report.offered += 1;
    if (rec != nullptr && rec->metering()) {
      rec->metrics().add("serve.offered");
    }
    if (DayPoint* bucket = curve_bucket(now)) {
      bucket->offered += 1;
    }
    if (ts.last_arrival_s >= 0.0) {
      const double gap = now - ts.last_arrival_s;
      ts.interarrival_ema_s = ts.interarrival_ema_s == 0.0
                                  ? gap
                                  : 0.25 * gap + 0.75 * ts.interarrival_ema_s;
    }
    ts.last_arrival_s = now;
    if (config.elastic.repartitioning()) {
      elastic_observe_arrival(t, now);
    }
    offer(t, std::move(request), 0);
  }

  /// Admission + enqueue for a fresh arrival (attempt 0) or a backoff
  /// re-offer. A shed with retry budget left defers and re-offers the
  /// same request (same id/arrival/shape — no extra arrival or token RNG
  /// draws); an exhausted budget abandons it.
  void offer(std::size_t t, Request request, unsigned attempt) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    if (ts.admission == AdmissionPolicy::kSlaShed && !admit(t)) {
      if (attempt < config.elastic.retry_max_attempts) {
        // Seeded exponential backoff with jitter: attempt k re-offers
        // after backoff * 2^k * U[1, 2).
        const double backoff = config.elastic.retry_backoff_s *
                               std::ldexp(1.0, static_cast<int>(attempt)) *
                               (1.0 + ts.retry_rng.next_double());
        ts.report.retries += 1;
        if (rec != nullptr && rec->metering()) {
          rec->metrics().add("serve.retries");
        }
        events.schedule_in(
            backoff, [this, t, r = std::move(request), attempt]() mutable {
              offer(t, std::move(r), attempt + 1);
            });
        return;
      }
      if (config.elastic.retrying()) {
        ts.report.abandoned += 1;
        if (rec != nullptr) {
          record_abandoned(t, request, now);
        }
      } else {
        ts.report.shed += 1;
        if (rec != nullptr) {
          record_shed(t, now);
        }
      }
      issue_closed(t);  // the user gets its rejection notice immediately
      return;
    }
    ts.queue.push(request);
    try_dispatch(t);
  }

  /// kSlaShed's enqueue-time prediction: serve the backlog ahead of this
  /// request at the policy's dispatch size and see whether its completion
  /// can still make the tenant's SLA. Service times come from the
  /// memoized ServiceTimeOracle; layer-granular mode amortizes the queued
  /// batches over the pipeline depth (the steady-state inter-completion
  /// time), so the estimate is honest about overlap. Two refinements keep
  /// the estimate honest *below* the knee, where false sheds cost goodput:
  ///   * batching tenants charge the batch-fill wait (inter-arrival EMA
  ///     times the seats left in the tail batch, capped by the deadline
  ///     policy's max wait) and price the request's own batch at its
  ///     *expected* dispatch size instead of always max_batch;
  ///   * tenants on the scarce shared-serial group start their backlog at
  ///     the group's expected free time when another tenant holds it.
  [[nodiscard]] bool admit(std::size_t t) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    const BatchingConfig& batching = ts.queue.config();
    const unsigned cap = batching.policy == BatchPolicy::kNone ||
                                 batching.policy == BatchPolicy::kContinuous
                             ? 1
                             : batching.max_batch;
    const double batch_s = (ts.var_length
                                ? nominal_batch_s(t, cap)
                                : oracle->batch_run(t, cap).latency_s) *
                           derate_mult;
    double amortized_s =
        config.pipeline == PipelineMode::kLayerGranular && !ts.var_length
            ? batch_s / static_cast<double>(
                            std::max<std::size_t>(ts.pipeline_depth, 1))
            : batch_s;
    if (ts.continuous) {
      // Continuous batching drains the queue at slot parallelism: queued
      // requests complete one amortized service apart, not back to back.
      amortized_s =
          batch_s / static_cast<double>(std::max<unsigned>(ts.cont_slots, 1));
    }
    const auto queued_batches = static_cast<double>(ts.queue.size() / cap);
    double backlog_start_s = ts.est_free_s;
    if (ts.needs_shared) {
      backlog_start_s = std::max(backlog_start_s, shared_est_for(ts.priority));
    }
    // The request joins the tail partial batch at `position`; `need` more
    // arrivals fill it.
    const auto position = static_cast<unsigned>(ts.queue.size() % cap) + 1;
    const unsigned need = cap - position;
    const double gap = ts.interarrival_ema_s;
    double fill_s = 0.0;
    unsigned dispatch_size = cap;
    if (batching.policy == BatchPolicy::kDeadline) {
      const double fill_eta_s =
          gap > 0.0 ? static_cast<double>(need) * gap
                    : std::numeric_limits<double>::infinity();
      if (fill_eta_s <= batching.max_wait_s) {
        fill_s = fill_eta_s;
      } else {
        // The deadline fires first: the batch goes out partial.
        fill_s = batching.max_wait_s;
        dispatch_size =
            position +
            (gap > 0.0
                 ? static_cast<unsigned>(batching.max_wait_s / gap)
                 : 0);
      }
    } else if (batching.policy == BatchPolicy::kFixedSize) {
      fill_s = gap > 0.0 ? static_cast<double>(need) * gap : 0.0;
    }
    const double own_batch_s =
        dispatch_size == cap
            ? batch_s
            : (ts.var_length ? nominal_batch_s(t, dispatch_size)
                             : oracle->batch_run(t, dispatch_size).latency_s) *
                  derate_mult;
    const double predicted_latency_s = std::max(backlog_start_s - now, 0.0) +
                                       queued_batches * amortized_s +
                                       fill_s + own_batch_s;
    return predicted_latency_s <= ts.report.sla_s;
  }

  /// Closed loop: one user draws its think time and schedules its next
  /// request, spending one unit of the tenant's issue budget. No-op for
  /// open-loop tenants and once the budget is spent.
  void issue_closed(std::size_t t) {
    TenantState& ts = tenants[t];
    if (!ts.closed_loop || ts.issued >= ts.issue_budget) {
      return;
    }
    ts.issued += 1;
    const double think_s = ts.think_rng.next_exponential(ts.think_mean_s);
    events.schedule_in(think_s, [this, t] {
      TenantState& state = tenants[t];
      state.arrived += 1;
      // The last budgeted issue has arrived: flush partial batches.
      if (state.issued >= state.issue_budget &&
          state.arrived == state.issued) {
        state.arrivals_done = true;
      }
      arrive(t);
    });
  }

  void schedule_arrival(std::size_t t) {
    TenantState& ts = tenants[t];
    const std::size_t i = ts.next_arrival;
    events.schedule_at(ts.arrivals[i], [this, t, i] {
      TenantState& state = tenants[t];
      state.next_arrival = i + 1;
      if (state.next_arrival < state.arrivals.size()) {
        schedule_arrival(t);
      } else {
        state.arrivals_done = true;
      }
      arrive(t);
    });
  }

  void try_dispatch(std::size_t t) {
    TenantState& ts = tenants[t];
    if (ts.continuous) {
      continuous_step(t);
    } else if (config.pipeline == PipelineMode::kLayerGranular &&
               !ts.var_length) {
      try_dispatch_layer(t);
    } else {
      // Batch-granular — including variable-length tenants under layer
      // mode: their dense-affine stage chain collapses to one stage, so
      // whole-batch execution is the pipelined schedule.
      try_dispatch_batch(t);
    }
  }

  /// Arm the kDeadline timeout dispatch for the queue head, if needed.
  void arm_deadline_timer(std::size_t t) {
    TenantState& ts = tenants[t];
    const auto deadline = ts.queue.next_deadline();
    if (deadline && !ts.timer_armed) {
      ts.timer_armed = true;
      events.schedule_at(std::max(*deadline, events.now()), [this, t] {
        tenants[t].timer_armed = false;
        try_dispatch(t);
      });
    }
  }

  void try_dispatch_batch(std::size_t t) {
    TenantState& ts = tenants[t];
    if (ts.busy) {
      return;
    }
    const double now = events.now();
    if (!ts.queue.ready(now, ts.arrivals_done)) {
      arm_deadline_timer(t);
      return;
    }
    std::vector<Request> batch = ts.queue.take(ts.arrivals_done);
    ts.busy = true;
    if (ts.needs_shared) {
      if (!acquire_shared_for_tenant(t)) {
        ts.pending = std::move(batch);
        ts.pending_since = now;
        return;
      }
      ts.holds_shared = true;
    }
    begin_execution(t, std::move(batch));
  }

  void begin_execution(std::size_t t, std::vector<Request> batch) {
    TenantState& ts = tenants[t];
    if (ts.var_length) {
      begin_execution_tokens(t, std::move(batch));
      return;
    }
    const double now = events.now();
    const auto batch_size = static_cast<unsigned>(batch.size());
    const core::RunResult& run = oracle->batch_run(t, batch_size);

    double start = elastic_wake(t, now);
    double resipi_window_s = 0.0;
    if (config.arch == accel::Architecture::kSiph2p5D &&
        run.resipi_reconfigurations > 0) {
      if (resipi_holder != t && resipi_free_at > start) {
        const double wait = resipi_free_at - start;
        start += wait;
        ts.report.resipi_wait_s += wait;
        ts.report.resipi_conflicts += 1;
        record_resipi_conflict(wait);
      }
      // The PCM writes happen inside the run (they are charged in its
      // latency); the window only excludes *other* tenants' writes.
      resipi_window_s =
          std::min(run.latency_s,
                   static_cast<double>(run.resipi_reconfigurations) *
                       config.system.tech.photonic.pcm.write_time_s);
      resipi_holder = t;
      resipi_free_at = start + resipi_window_s;
    }
    // derate_mult is exactly 1.0 unless a drift fault fired, so the
    // multiply is bit-exact on the static path.
    const double end = start + run.latency_s * derate_mult;
    ts.est_free_s = end;
    if (ts.needs_shared) {
      note_shared_busy_until(ts.priority, end);
    }

    for (const std::size_t c : ts.occupancy) {
      report.chiplet_busy_s[c] += end - start;
    }
    ts.report.busy_s += end - start;
    ts.report.energy_j += run.energy_j;
    ts.report.batches += 1;
    report.ledger.merge(run.ledger);
    if (DayPoint* bucket = curve_bucket(start)) {
      bucket->energy_j += run.energy_j;
    }
    if (config.record_batches) {
      BatchTrace trace;
      trace.tenant = t;
      trace.size = batch_size;
      trace.start_s = start;
      trace.end_s = end;
      trace.chiplets = ts.occupancy;
      trace.resipi_start_s = start;
      trace.resipi_end_s = start + resipi_window_s;
      report.batches.push_back(std::move(trace));
    }
    if (rec != nullptr) {
      record_dispatch_metrics(batch_size, run);
      record_batch_trace(t, batch, start, end, resipi_window_s);
    }
    events.schedule_at(end, [this, t, b = std::move(batch)] {
      complete(t, b);
    });
  }

  /// Variable-length counterpart of begin_execution: the batch is priced
  /// per phase with padding semantics — one prefill at the longest prompt
  /// (weights amortize over the batch exactly as in a fixed-shape run),
  /// then one decode step per generated token up to the longest
  /// generation, each step attending the padded KV length. The total
  /// accumulates left-to-right over (prefill, d1, d2, ...) — the same
  /// fold the continuous engine's per-iteration accumulator performs — so
  /// a single-request kNone batch and an unstalled continuous busy period
  /// complete at bit-identical times. ReSiPI derives from the prefill run
  /// only: decode steps re-stream the same weights through the same
  /// gateway configuration, so nothing retunes between iterations.
  void begin_execution_tokens(std::size_t t, std::vector<Request> batch) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    const auto batch_size = static_cast<unsigned>(batch.size());
    std::uint32_t pmax = 1;
    std::uint32_t dmax = 0;
    std::uint64_t footprint = 0;
    for (const Request& r : batch) {
      pmax = std::max(pmax, r.shape.prefill_tokens);
      dmax = std::max(dmax, r.shape.decode_tokens);
      footprint += footprint_bytes(ts, r.shape);
    }
    const core::RunResult& pre = oracle->prefill_run(t, batch_size, pmax);

    double start = elastic_wake(t, now);
    double resipi_window_s = 0.0;
    if (config.arch == accel::Architecture::kSiph2p5D &&
        pre.resipi_reconfigurations > 0) {
      if (resipi_holder != t && resipi_free_at > start) {
        const double wait = resipi_free_at - start;
        start += wait;
        ts.report.resipi_wait_s += wait;
        ts.report.resipi_conflicts += 1;
        record_resipi_conflict(wait);
      }
      resipi_window_s =
          std::min(pre.latency_s,
                   static_cast<double>(pre.resipi_reconfigurations) *
                       config.system.tech.photonic.pcm.write_time_s);
      resipi_holder = t;
      resipi_free_at = start + resipi_window_s;
    }

    double total_s = pre.latency_s;
    double energy_j = pre.energy_j;
    report.ledger.merge(pre.ledger);
    for (std::uint32_t k = 0; k < dmax; ++k) {
      const core::RunResult& step = oracle->decode_run(t, batch_size, pmax + k);
      total_s += step.latency_s;
      energy_j += step.energy_j;
      report.ledger.merge(step.ledger);
    }
    const double end = start + total_s * derate_mult;
    const double prefill_end = start + pre.latency_s * derate_mult;
    ts.est_free_s = end;
    if (ts.needs_shared) {
      note_shared_busy_until(ts.priority, end);
    }
    kv_update(t, footprint, true);
    for (const Request& r : batch) {
      ts.ttfts.push_back(prefill_end - r.arrival_s);
      if (rec != nullptr && rec->metering()) {
        rec->metrics().observe("serve.ttft", prefill_end - r.arrival_s);
      }
    }

    for (const std::size_t c : ts.occupancy) {
      report.chiplet_busy_s[c] += end - start;
    }
    ts.report.busy_s += end - start;
    ts.report.energy_j += energy_j;
    ts.report.batches += 1;
    if (DayPoint* bucket = curve_bucket(start)) {
      bucket->energy_j += energy_j;
    }
    if (config.record_batches) {
      BatchTrace trace;
      trace.tenant = t;
      trace.size = batch_size;
      trace.start_s = start;
      trace.end_s = end;
      trace.chiplets = ts.occupancy;
      trace.resipi_start_s = start;
      trace.resipi_end_s = start + resipi_window_s;
      report.batches.push_back(std::move(trace));
    }
    if (rec != nullptr) {
      record_dispatch_metrics(batch_size, pre);
      record_batch_trace(t, batch, start, end, resipi_window_s);
      record_phase_spans(t, start, prefill_end, end);
    }
    events.schedule_at(end, [this, t, b = std::move(batch)] {
      complete(t, b);
    });
  }

  /// Iterator to the next waiter to grant: highest priority class first
  /// (lowest number wins; strict <, so FIFO within a class — a
  /// single-class run grants in exactly the arrival order it always
  /// did). `tenant_of` projects a waiter entry to its tenant index.
  template <typename Deque, typename Proj>
  auto best_waiter(Deque& waiters, Proj tenant_of) {
    auto best = waiters.begin();
    for (auto it = std::next(best); it != waiters.end(); ++it) {
      if (tenants[tenant_of(*it)].priority <
          tenants[tenant_of(*best)].priority) {
        best = it;
      }
    }
    return best;
  }

  std::size_t pop_shared_waiter() {
    const auto best =
        best_waiter(shared_waiters, [](std::size_t t) { return t; });
    const std::size_t w = *best;
    shared_waiters.erase(best);
    return w;
  }

  void complete(std::size_t t, const std::vector<Request>& batch) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    for (const Request& r : batch) {
      ts.latencies.push_back(now - r.arrival_s);
    }
    ts.report.completed += batch.size();
    if (DayPoint* bucket = curve_bucket(now)) {
      bucket->completed += batch.size();
    }
    if (ts.var_length) {
      std::uint64_t footprint = 0;
      for (const Request& r : batch) {
        footprint += footprint_bytes(ts, r.shape);
        ts.decode_tokens_done += r.shape.decode_tokens;
      }
      kv_update(t, footprint, false);
    }
    if (rec != nullptr) {
      record_completions(t, batch, now);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      issue_closed(t);  // each response frees one closed-loop user
    }
    ts.busy = false;
    if (config.elastic.gate) {
      ts.idle_since_s = now;  // closed (or re-measured) at the next dispatch
    }
    last_completion_s = std::max(last_completion_s, now);
    if (ts.holds_shared) {
      // Release the shared pool; grant priority-first (FIFO in class).
      // Keyed on holds_shared, not needs_shared: a re-partition may have
      // flipped needs_shared while this batch held the lock.
      ts.holds_shared = false;
      release_shared_from_tenant(now);
    }
    try_dispatch(t);
  }

  // ------------------------------------------------------------------
  // Continuous (iteration-level) batching: the tenant advances one
  // iteration at a time — a prefill iteration lands newly admitted
  // prompts, a decode iteration generates one token for every running
  // sequence — and requests join/leave the set only at these token
  // boundaries. Admission reserves each request's final-context KV
  // footprint against the tenant's budget, so concurrent decode slots
  // are capped by the activation buffer, not just max_batch.

  /// Token-boundary scheduler: admit what fits, then run an iteration
  /// (unless one is already in flight or queued on the shared pool).
  void continuous_step(std::size_t t) {
    TenantState& ts = tenants[t];
    if (ts.iter_running || ts.iter_waiting_shared) {
      return;
    }
    const double now = events.now();
    while (!ts.queue.empty() &&
           ts.active.size() < ts.queue.config().max_batch) {
      const Request& head = ts.queue.front();
      const std::uint64_t footprint = footprint_bytes(ts, head.shape);
      if (ts.kv_reserved_bytes + footprint > ts.kv_budget_bytes) {
        break;  // joins once completions release KV slots
      }
      const std::vector<Request> one = ts.queue.take(ts.arrivals_done);
      OPTIPLET_ASSERT(one.size() == 1,
                      "continuous admission takes one request at a time");
      kv_update(t, footprint, true);
      ActiveSeq seq;
      seq.request = one.front();
      seq.decode_left = seq.request.shape.decode_tokens;
      ts.active.push_back(seq);
      if (rec != nullptr && rec->tracing()) {
        rec->trace().add_complete("queue", "queue", seq.request.arrival_s,
                                  now, pid, tenant_tracks[t],
                                  {obs::arg("request", seq.request.id)});
      }
    }
    if (ts.active.empty()) {
      if (config.elastic.gate && ts.idle_since_s < 0.0) {
        ts.idle_since_s = now;  // busy period over: hardware may gate
      }
      return;  // busy period over; the next arrival restarts it
    }
    if (ts.needs_shared) {
      if (!acquire_shared_for_tenant(t)) {
        ts.iter_waiting_shared = true;
        ts.pending_since = now;
        return;
      }
      ts.holds_shared = true;
    }
    continuous_iterate(t);
  }

  /// Compose and run one iteration over the current set: a prefill
  /// iteration when any admitted sequence has not prefilled yet (its
  /// prompt is landed into the bubble before decoding resumes), a decode
  /// iteration otherwise.
  void continuous_iterate(std::size_t t) {
    TenantState& ts = tenants[t];
    std::vector<std::size_t> fresh;
    for (std::size_t i = 0; i < ts.active.size(); ++i) {
      if (ts.active[i].kv_tokens == 0) {
        fresh.push_back(i);
      }
    }
    run_cont_iteration(t, std::move(fresh));
  }

  /// Price and schedule one iteration. `fresh` names the sequences of a
  /// prefill iteration (empty = decode iteration over the whole set).
  /// Iteration ends accumulate as origin + (accum += dt): the identical
  /// left-to-right fold begin_execution_tokens performs, so a lone
  /// request's completion matches the static kNone price bit-for-bit.
  void run_cont_iteration(std::size_t t, std::vector<std::size_t> fresh) {
    TenantState& ts = tenants[t];
    const bool prefill_phase = !fresh.empty();
    double start = elastic_wake(t, events.now());
    const core::RunResult* run = nullptr;
    double resipi_window_s = 0.0;
    if (prefill_phase) {
      std::uint32_t pmax = 1;
      for (const std::size_t i : fresh) {
        pmax = std::max(pmax, ts.active[i].request.shape.prefill_tokens);
      }
      run = &oracle->prefill_run(t, static_cast<unsigned>(fresh.size()),
                                pmax);
      // The prefill retunes gateways exactly like a batch dispatch;
      // decode iterations reuse the configuration and never retune.
      if (config.arch == accel::Architecture::kSiph2p5D &&
          run->resipi_reconfigurations > 0) {
        if (resipi_holder != t && resipi_free_at > start) {
          const double wait = resipi_free_at - start;
          start += wait;
          ts.report.resipi_wait_s += wait;
          ts.report.resipi_conflicts += 1;
          record_resipi_conflict(wait);
        }
        resipi_window_s =
            std::min(run->latency_s,
                     static_cast<double>(run->resipi_reconfigurations) *
                         config.system.tech.photonic.pcm.write_time_s);
        resipi_holder = t;
        resipi_free_at = start + resipi_window_s;
      }
      ts.report.batches += 1;  // one dispatch group per prefill iteration
      if (rec != nullptr) {
        record_dispatch_metrics(static_cast<unsigned>(fresh.size()), *run);
      }
    } else {
      std::uint32_t kv_max = 0;
      for (const ActiveSeq& seq : ts.active) {
        kv_max = std::max(kv_max, seq.kv_tokens);
      }
      run = &oracle->decode_run(t, static_cast<unsigned>(ts.active.size()),
                               kv_max);
    }
    // Busy-period anchoring: contiguous iterations telescope through the
    // accumulator; any stall (idle gap, shared wait, ReSiPI wait)
    // re-anchors the origin at the actual start.
    if (start != ts.origin_s + ts.accum_s) {
      ts.origin_s = start;
      ts.accum_s = 0.0;
      ts.report.energy_j += ts.energy_accum_j;
      ts.energy_accum_j = 0.0;
    }
    ts.accum_s += run->latency_s * derate_mult;
    const double end = ts.origin_s + ts.accum_s;
    ts.est_free_s = end;
    if (ts.needs_shared) {
      // Only the current iteration is committed shared occupancy —
      // admission control must not charge other tenants for this
      // tenant's whole open-ended decode horizon.
      note_shared_busy_until(ts.priority, end);
    }
    for (const std::size_t c : ts.occupancy) {
      report.chiplet_busy_s[c] += end - start;
    }
    ts.report.busy_s += end - start;
    ts.energy_accum_j += run->energy_j;
    report.ledger.merge(run->ledger);
    if (DayPoint* bucket = curve_bucket(start)) {
      bucket->energy_j += run->energy_j;
    }
    if (config.record_batches) {
      BatchTrace trace;
      trace.tenant = t;
      trace.size = static_cast<unsigned>(prefill_phase ? fresh.size()
                                                       : ts.active.size());
      trace.start_s = start;
      trace.end_s = end;
      trace.chiplets = ts.occupancy;
      trace.resipi_start_s = start;
      trace.resipi_end_s = start + resipi_window_s;
      report.batches.push_back(std::move(trace));
    }
    if (rec != nullptr && rec->tracing()) {
      rec->trace().add_complete(
          prefill_phase ? "prefill" : "decode", "phase", start, end, pid,
          exec_tracks[t],
          {obs::arg("tenant", ts.report.name),
           obs::arg("size", static_cast<std::uint64_t>(
                                prefill_phase ? fresh.size()
                                              : ts.active.size()))});
      if (resipi_window_s > 0.0) {
        rec->trace().add_complete("retune", "resipi", start,
                                  start + resipi_window_s, pid, resipi_track,
                                  {obs::arg("tenant", ts.report.name),
                                   obs::arg("kind", "batch_window")});
      }
    }
    ts.iter_running = true;
    events.schedule_at(end, [this, t, f = std::move(fresh)] {
      end_cont_iteration(t, f);
    });
  }

  /// Token boundary: land the iteration's tokens, retire finished
  /// sequences, release/grant the shared pool, and schedule the next
  /// iteration.
  void end_cont_iteration(std::size_t t,
                          const std::vector<std::size_t>& fresh) {
    TenantState& ts = tenants[t];
    const double now = events.now();
    ts.iter_running = false;
    if (!fresh.empty()) {
      for (const std::size_t i : fresh) {
        ActiveSeq& seq = ts.active[i];
        seq.kv_tokens = seq.request.shape.prefill_tokens;
        ts.ttfts.push_back(now - seq.request.arrival_s);
        if (rec != nullptr && rec->metering()) {
          rec->metrics().observe("serve.ttft",
                                 now - seq.request.arrival_s);
        }
      }
    } else {
      for (ActiveSeq& seq : ts.active) {
        seq.kv_tokens += 1;
        seq.decode_left -= 1;
        ts.decode_tokens_done += 1;
      }
    }
    std::vector<Request> done;
    std::uint64_t released = 0;
    for (std::size_t i = 0; i < ts.active.size();) {
      const ActiveSeq& seq = ts.active[i];
      if (seq.kv_tokens >= seq.request.shape.prefill_tokens &&
          seq.decode_left == 0) {
        done.push_back(seq.request);
        released += footprint_bytes(ts, seq.request.shape);
        ts.active.erase(ts.active.begin() +
                        static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    if (!done.empty()) {
      for (const Request& r : done) {
        ts.latencies.push_back(now - r.arrival_s);
      }
      ts.report.completed += done.size();
      if (DayPoint* bucket = curve_bucket(now)) {
        bucket->completed += done.size();
      }
      kv_update(t, released, false);
      if (rec != nullptr) {
        record_completions(t, done, now);
      }
      for (std::size_t i = 0; i < done.size(); ++i) {
        issue_closed(t);  // each response frees one closed-loop user
      }
      last_completion_s = std::max(last_completion_s, now);
    }
    if (ts.holds_shared) {
      ts.holds_shared = false;
      release_shared_from_tenant(now);
    }
    continuous_step(t);
  }

  // ------------------------------------------------------------------
  // Layer-granular (SET-style pipelined) execution.

  /// Resolve and cache the stage chain of one (tenant, batch-size) point:
  /// the oracle's per-group pipeline stages mapped onto engine resources,
  /// with consecutive same-resource stages merged so a batch never
  /// re-acquires the lock it just released.
  const std::vector<ExecStage>& exec_stages(std::size_t t, unsigned batch) {
    TenantState& ts = tenants[t];
    if (const auto it = ts.stage_cache.find(batch);
        it != ts.stage_cache.end()) {
      return it->second;
    }
    const LayerSchedule& schedule = oracle->layer_schedule(t, batch);
    const auto& shared_kinds = plan->tenants[t].shared_kinds;
    std::vector<ExecStage> stages;
    for (const PipelineStage& ps : schedule.stages) {
      const bool shared =
          std::find(shared_kinds.begin(), shared_kinds.end(), ps.group) !=
          shared_kinds.end();
      std::size_t resource = 0;
      if (!shared) {
        const auto it = std::find_if(
            ts.kind_resource.begin(), ts.kind_resource.end(),
            [&ps](const auto& kr) { return kr.first == ps.group; });
        OPTIPLET_ASSERT(it != ts.kind_resource.end(),
                        "pipeline stage on a group the tenant neither owns "
                        "nor shares");
        resource = it->second;
      }
      if (!stages.empty() && stages.back().resource == resource) {
        // Adjacent oracle stages always differ in group, so this merge
        // only fires for shared kinds collapsing onto the shared pool.
        ExecStage& merged = stages.back();
        merged.end_offset_s = ps.end_offset_s;
        merged.layer_count += ps.layer_count;
      } else {
        ExecStage stage;
        stage.resource = resource;
        stage.shared = shared;
        stage.start_offset_s = ps.start_offset_s;
        stage.end_offset_s = ps.end_offset_s;
        stage.first_layer = ps.first_layer;
        stage.layer_count = ps.layer_count;
        stages.push_back(stage);
      }
    }
    return ts.stage_cache.emplace(batch, std::move(stages)).first->second;
  }

  /// Distinct resources across a stage chain: the tenant's useful
  /// pipeline depth (how many batches can make progress at once).
  static std::size_t distinct_resources(const std::vector<ExecStage>& s) {
    std::vector<std::size_t> seen;
    for (const ExecStage& stage : s) {
      if (std::find(seen.begin(), seen.end(), stage.resource) ==
          seen.end()) {
        seen.push_back(stage.resource);
      }
    }
    return std::max<std::size_t>(seen.size(), 1);
  }

  void try_dispatch_layer(std::size_t t) {
    TenantState& ts = tenants[t];
    while (ts.inflight < ts.pipeline_depth) {
      const double now = events.now();
      if (!ts.queue.ready(now, ts.arrivals_done)) {
        arm_deadline_timer(t);
        return;
      }
      std::vector<Request> batch = ts.queue.take(ts.arrivals_done);
      const auto batch_size = static_cast<unsigned>(batch.size());
      auto b = std::make_shared<InFlightBatch>();
      b->tenant = t;
      b->id = ts.batch_seq++;
      b->requests = std::move(batch);
      b->stages = &exec_stages(t, batch_size);
      ts.inflight += 1;
      request_stage(std::move(b));
    }
  }

  void request_stage(std::shared_ptr<InFlightBatch> b) {
    Resource& r = resources[(*b->stages)[b->stage].resource];
    if (r.busy) {
      b->wait_since_s = events.now();
      r.waiters.push_back(std::move(b));
      return;
    }
    r.busy = true;
    start_stage(std::move(b));
  }

  /// Run one granted stage: apply ReSiPI serialization (the batch window
  /// at stage 0, a retune window on every cross-tenant shared handoff),
  /// charge busy/energy accounting, and schedule the stage-end event.
  void start_stage(std::shared_ptr<InFlightBatch> b) {
    const std::size_t t = b->tenant;
    TenantState& ts = tenants[t];
    const ExecStage& s = (*b->stages)[b->stage];
    Resource& r = resources[s.resource];
    const auto batch_size = static_cast<unsigned>(b->requests.size());
    const bool siph = config.arch == accel::Architecture::kSiph2p5D;

    double start = events.now();
    double resipi_window_s = 0.0;
    if (b->stage == 0) {
      const core::RunResult& run = oracle->batch_run(t, batch_size);
      // The batch's own reconfiguration window, as in batch-granular mode:
      // the PCM writes are charged inside the run's latency; the window
      // only excludes *other* tenants' writes.
      if (siph && run.resipi_reconfigurations > 0) {
        if (resipi_holder != t && resipi_free_at > start) {
          const double wait = resipi_free_at - start;
          start += wait;
          ts.report.resipi_wait_s += wait;
          ts.report.resipi_conflicts += 1;
          record_resipi_conflict(wait);
        }
        resipi_window_s =
            std::min(run.latency_s,
                     static_cast<double>(run.resipi_reconfigurations) *
                         config.system.tech.photonic.pcm.write_time_s);
        resipi_holder = t;
        // Several of this tenant's batches can be in flight: never roll
        // an earlier, longer reservation backwards.
        resipi_free_at = std::max(resipi_free_at, start + resipi_window_s);
      }
      ts.report.energy_j += run.energy_j;
      ts.report.batches += 1;
      report.ledger.merge(run.ledger);
      if (DayPoint* bucket = curve_bucket(start)) {
        bucket->energy_j += run.energy_j;
      }
      if (rec != nullptr) {
        record_dispatch_metrics(batch_size, run);
      }
      // Admission estimate: with the pipeline full, completions are one
      // bottleneck-amortized interval apart.
      ts.est_free_s =
          std::max(ts.est_free_s, start) +
          run.latency_s / static_cast<double>(
                              std::max<std::size_t>(ts.pipeline_depth, 1));
    }
    double handoff_s = 0.0;
    if (s.shared && siph && r.last_tenant != kNoTenant &&
        r.last_tenant != t) {
      // Cross-tenant handoff of the scarce group: retune its gateways for
      // the new tenant — one PCM write window, serialized on the shared
      // interposer like any other reconfiguration.
      if (resipi_holder != t && resipi_free_at > start) {
        const double wait = resipi_free_at - start;
        start += wait;
        ts.report.resipi_wait_s += wait;
        ts.report.resipi_conflicts += 1;
        record_resipi_conflict(wait);
      }
      handoff_s = config.system.tech.photonic.pcm.write_time_s;
      resipi_holder = t;
      // A stage-0 shared handoff may follow the batch window set above;
      // the interposer stays reserved until the *later* of the two.
      resipi_free_at = std::max(resipi_free_at, start + handoff_s);
      ts.report.shared_handoffs += 1;
      ts.report.handoff_resipi_s += handoff_s;
      if (rec != nullptr && rec->metering()) {
        rec->metrics().add("resipi.handoffs");
      }
      resipi_window_s = std::max(resipi_window_s, handoff_s);
    }
    if (s.shared) {
      r.last_tenant = t;
    }
    if (b->stage == 0) {
      b->batch_start_s = start;
    }
    // An unstalled chain telescopes through the schedule's exact prefix
    // offsets, so a lone batch completes bit-for-bit at the
    // batch-granular time; a stalled or handed-off stage falls back to
    // duration arithmetic from its actual start.
    const double expected = b->batch_start_s + s.start_offset_s;
    const double end =
        (handoff_s == 0.0 && start == expected)
            ? b->batch_start_s + s.end_offset_s
            : start + (s.end_offset_s - s.start_offset_s) + handoff_s;
    if (s.shared) {
      // Feed the admission estimate's cross-tenant contention term.
      note_shared_busy_until(ts.priority, end);
    }

    // Busy accounting keeps batch-granular executor semantics (the whole
    // occupancy is "this tenant's executor working"), so utilization is
    // comparable across modes; the trace below audits the stage's actual
    // physical lock instead.
    for (const std::size_t c : ts.occupancy) {
      report.chiplet_busy_s[c] += end - start;
    }
    ts.report.busy_s += end - start;
    if (config.record_batches) {
      BatchTrace trace;
      trace.tenant = t;
      trace.size = batch_size;
      trace.start_s = start;
      trace.end_s = end;
      trace.chiplets = r.chiplets;
      trace.resipi_start_s = start;
      trace.resipi_end_s = start + resipi_window_s;
      trace.first_layer = s.first_layer;
      trace.layer_count = s.layer_count;
      trace.batch_id = b->id;
      report.batches.push_back(std::move(trace));
    }
    if (rec != nullptr) {
      record_stage_trace(*b, s, start, end, resipi_window_s, handoff_s);
    }
    events.schedule_at(end, [this, b = std::move(b)]() mutable {
      end_stage(std::move(b));
    });
  }

  void end_stage(std::shared_ptr<InFlightBatch> b) {
    const ExecStage& s = (*b->stages)[b->stage];
    release_resource(s.resource);
    b->stage += 1;
    if (b->stage < b->stages->size()) {
      request_stage(std::move(b));
    } else {
      complete_layer_batch(std::move(b));
    }
  }

  void release_resource(std::size_t id) {
    Resource& r = resources[id];
    if (r.waiters.empty() && r.tenant_waiters.empty()) {
      r.busy = false;
      return;
    }
    // Arbitrate across both waiter queues — stage-granular batches and
    // whole-batch variable-length tenants contend on the same physical
    // chiplets. Best priority class wins; stage waiters win ties (they
    // hold upstream pipeline resources a stalled chain would deadlock).
    const auto best_stage =
        r.waiters.empty()
            ? r.waiters.end()
            : best_waiter(r.waiters,
                          [](const std::shared_ptr<InFlightBatch>& b) {
                            return b->tenant;
                          });
    const auto best_tenant =
        r.tenant_waiters.empty()
            ? r.tenant_waiters.end()
            : best_waiter(r.tenant_waiters,
                          [](std::size_t t) { return t; });
    const bool take_tenant =
        best_stage == r.waiters.end() ||
        (best_tenant != r.tenant_waiters.end() &&
         tenants[*best_tenant].priority <
             tenants[(*best_stage)->tenant].priority);
    if (take_tenant) {
      const std::size_t w = *best_tenant;
      r.tenant_waiters.erase(best_tenant);
      grant_tenant_shared(w, events.now());  // the resource stays busy
      return;
    }
    std::shared_ptr<InFlightBatch> next = std::move(*best_stage);
    r.waiters.erase(best_stage);
    if (r.shared) {
      tenants[next->tenant].report.shared_wait_s +=
          events.now() - next->wait_since_s;
    }
    start_stage(std::move(next));  // the resource stays busy
  }

  void complete_layer_batch(std::shared_ptr<InFlightBatch> b) {
    TenantState& ts = tenants[b->tenant];
    const double now = events.now();
    for (const Request& r : b->requests) {
      ts.latencies.push_back(now - r.arrival_s);
    }
    ts.report.completed += b->requests.size();
    if (DayPoint* bucket = curve_bucket(now)) {
      bucket->completed += b->requests.size();
    }
    if (rec != nullptr) {
      record_completions(b->tenant, b->requests, now);
    }
    for (std::size_t i = 0; i < b->requests.size(); ++i) {
      issue_closed(b->tenant);  // each response frees one closed-loop user
    }
    ts.inflight -= 1;
    last_completion_s = std::max(last_completion_s, now);
    try_dispatch(b->tenant);
  }
};

/// Shared-everything plan for the monolithic die: every tenant serializes
/// on the whole chip (there is no chiplet pool to partition).
ColocationPlan monolithic_plan(const core::SystemConfig& system,
                               const std::vector<TenantDemand>& demands) {
  ColocationPlan plan;
  plan.tenants.resize(demands.size());
  const accel::PlatformSpec spec =
      accel::make_monolithic_spec(system.monolithic_scale_divisor);
  std::size_t id = 0;
  for (const auto& group : spec.groups) {
    const accel::ComputeChiplet model(group.chiplet, system.tech);
    for (std::size_t c = 0; c < group.chiplet_count; ++c) {
      plan.shared_chiplets.push_back(id++);
      plan.chiplet_active_power_w.push_back(model.active_power_w());
    }
  }
  for (std::size_t t = 0; t < demands.size(); ++t) {
    plan.tenants[t].shared_kinds = demands[t].needed_kinds;
    plan.tenants[t].platform = spec;
  }
  return plan;
}

void finalize_tenant(TenantState& ts, double makespan_s) {
  TenantReport& r = ts.report;
  r.energy_j += ts.energy_accum_j;  // the still-open busy period's fold
  ts.energy_accum_j = 0.0;
  if (makespan_s > 0.0) {
    r.throughput_rps = static_cast<double>(r.completed) / makespan_s;
    // Layer-granular overlap sums concurrent stage intervals into busy_s,
    // so the executor's busy fraction saturates at 1 (mirrors the
    // per-chiplet clamp in the pool metric).
    r.utilization = std::min(r.busy_s, makespan_s) / makespan_s;
  }
  std::uint64_t violations = 0;
  if (!ts.latencies.empty()) {
    double sum = 0.0;
    for (const double l : ts.latencies) {
      sum += l;
      r.max_latency_s = std::max(r.max_latency_s, l);
      violations += l > r.sla_s ? 1 : 0;
    }
    r.mean_latency_s = sum / static_cast<double>(ts.latencies.size());
    r.p50_s = exact_quantile(ts.latencies, 0.50);
    r.p95_s = exact_quantile(ts.latencies, 0.95);
    r.p99_s = exact_quantile(ts.latencies, 0.99);
    r.sla_violation_rate = static_cast<double>(violations) /
                           static_cast<double>(ts.latencies.size());
  }
  if (makespan_s > 0.0) {
    // Every completion records one latency, so completed - violations is
    // exactly the SLA-met count.
    r.goodput_rps =
        static_cast<double>(r.completed - violations) / makespan_s;
  }
  if (r.completed > 0) {
    r.energy_per_request_j = r.energy_j / static_cast<double>(r.completed);
    r.mean_batch = static_cast<double>(r.completed) /
                   static_cast<double>(std::max<std::uint64_t>(r.batches, 1));
  }
  if (ts.var_length) {
    r.ttft_p99_s = exact_quantile(ts.ttfts, 0.99);
    if (makespan_s > 0.0) {
      r.decode_tps =
          static_cast<double>(ts.decode_tokens_done) / makespan_s;
    }
    r.kv_peak_bytes = ts.kv_peak_bytes;
  }
}

}  // namespace

ColocatedSetup make_colocated_setup(const core::SystemConfig& system,
                                    accel::Architecture arch,
                                    const std::vector<std::string>& model_names,
                                    const std::vector<double>& weights) {
  OPTIPLET_REQUIRE(weights.empty() || weights.size() == model_names.size(),
                   "weights must be empty or match the model list");
  ColocatedSetup setup;
  std::vector<TenantDemand> demands;
  setup.models.reserve(model_names.size());
  for (std::size_t t = 0; t < model_names.size(); ++t) {
    setup.models.push_back(dnn::zoo::by_name(model_names[t]));
    TenantDemand demand;
    demand.needed_kinds = needed_kinds(
        dnn::compute_workload(setup.models.back(), system.parameter_bits));
    demand.weight = weights.empty() ? 1.0 : weights[t];
    demands.push_back(std::move(demand));
  }

  const bool monolithic = arch == accel::Architecture::kMonolithicCrossLight;
  setup.plan = monolithic
                   ? monolithic_plan(system, demands)
                   : partition_pool(system.compute_2p5d, demands, system.tech);

  // Service-time oracle: each tenant simulates on its own partition.
  setup.oracle_tenants.reserve(model_names.size());
  for (std::size_t t = 0; t < model_names.size(); ++t) {
    ServiceTimeOracle::Tenant ot{setup.models[t], system};
    if (!monolithic) {
      ot.config.compute_2p5d = setup.plan.tenants[t].platform;
    }
    // Transformer models carry their spec so the oracle can price
    // variable-length phases (prefill/decode graphs per token count).
    ot.transformer =
        dnn::ModelRegistry::instance().at(model_names[t]).transformer;
    setup.oracle_tenants.push_back(std::move(ot));
  }
  return setup;
}

ServingReport simulate(const ServingConfig& config) {
  OPTIPLET_REQUIRE(!config.tenants.empty(), "serving needs >= 1 tenant");
  const auto wall_t0 = std::chrono::steady_clock::now();

  const ElasticSpec& elastic = config.elastic;
  OPTIPLET_REQUIRE(elastic.ema_tau_s > 0.0, "elastic ema_tau_s must be > 0");
  OPTIPLET_REQUIRE(elastic.cooldown_s >= 0.0 && elastic.gate_after_s >= 0.0 &&
                       elastic.wake_s >= 0.0 &&
                       elastic.retry_backoff_s >= 0.0 &&
                       elastic.curve_bucket_s >= 0.0,
                   "elastic durations must be non-negative");
  OPTIPLET_REQUIRE(elastic.carbon_base_gpkwh >= 0.0 &&
                       elastic.carbon_amplitude >= 0.0 &&
                       elastic.carbon_amplitude <= 1.0 &&
                       elastic.carbon_period_s > 0.0,
                   "carbon proxy needs base >= 0, amplitude in [0, 1], "
                   "period > 0");
  bool pool_elastic = elastic.repartitioning();
  bool any_armed = false;
  for (const FaultSpec& fault : elastic.faults) {
    OPTIPLET_REQUIRE(
        fault.bandwidth_derate > 0.0 && fault.bandwidth_derate <= 1.0,
        "fault bandwidth_derate must be in (0, 1]");
    if (fault.armed()) {
      any_armed = true;
      if (fault.chiplet >= 0) {
        pool_elastic = true;
      }
    }
  }
  // Re-partitioning and faults need batch-granular dispatch: the
  // layer-granular resource table and stage chains are built once and
  // cannot follow a mid-run ownership change.
  OPTIPLET_REQUIRE(
      (!pool_elastic && !any_armed) ||
          config.pipeline == PipelineMode::kBatchGranular,
      "elastic re-partitioning and fault injection require batch-granular "
      "pipeline mode");
  OPTIPLET_REQUIRE(!pool_elastic ||
                       config.arch != accel::Architecture::kMonolithicCrossLight,
                   "elastic re-partitioning needs the 2.5D chiplet pool");

  std::vector<std::string> model_names;
  std::vector<double> weights;
  for (const auto& setup : config.tenants) {
    model_names.push_back(setup.model);
    weights.push_back(setup.weight);
  }
  ColocatedSetup setup =
      make_colocated_setup(config.system, config.arch, model_names, weights);
  const ColocationPlan& plan = setup.plan;
  ServiceTimeOracle oracle(std::move(setup.oracle_tenants), config.arch);

  Engine engine(config, oracle, plan);
  engine.report.chiplet_busy_s.assign(plan.chiplet_active_power_w.size(),
                                      0.0);
  engine.chiplet_dead.assign(plan.chiplet_active_power_w.size(), 0);
  engine.dead_since.assign(plan.chiplet_active_power_w.size(), 0.0);
  engine.chiplet_gated_s.assign(plan.chiplet_active_power_w.size(), 0.0);
  engine.cur_weights = weights;
  {
    double total_w = 0.0;
    for (const double w : weights) {
      total_w += w;
    }
    engine.alloc_share.resize(weights.size());
    for (std::size_t t = 0; t < weights.size(); ++t) {
      engine.alloc_share[t] = weights[t] / total_w;
    }
  }
  if (pool_elastic) {
    // Keep the demand skeleton so re-partitions only swap the weights.
    for (std::size_t t = 0; t < setup.models.size(); ++t) {
      TenantDemand demand;
      demand.needed_kinds = needed_kinds(dnn::compute_workload(
          setup.models[t], config.system.parameter_bits));
      demand.weight = weights[t];
      engine.base_demands.push_back(std::move(demand));
    }
    engine.base_models = std::move(setup.models);
  }
  engine.tenants.reserve(config.tenants.size());
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    const TenantSetup& setup = config.tenants[t];
    const std::optional<dnn::TransformerSpec>& tspec = oracle.transformer(t);
    const bool traced_shapes =
        std::any_of(setup.trace_shapes.begin(), setup.trace_shapes.end(),
                    [](const RequestShape& s) { return s.variable_length(); });
    const bool var = setup.prefill_tokens > 0 || traced_shapes;
    BatchingConfig batching = setup.batching;
    std::uint32_t prefill_mean = setup.prefill_tokens;
    std::uint32_t decode_mean = setup.decode_tokens;
    std::uint64_t kv_per_token = 0;
    std::uint64_t kv_budget = 0;
    if (var) {
      OPTIPLET_REQUIRE(tspec.has_value(),
                       "token geometry on a fixed-shape model: " +
                           setup.model);
      OPTIPLET_REQUIRE(
          setup.token_spread >= 0.0 && setup.token_spread < 1.0,
          "token_spread must be in [0, 1)");
      OPTIPLET_REQUIRE(setup.kv_cache_mb > 0.0, "kv_cache_mb must be > 0");
      OPTIPLET_REQUIRE(
          setup.trace_shapes.empty() ||
              setup.trace_shapes.size() == setup.trace_arrivals.size(),
          "trace_shapes must align one-to-one with trace_arrivals");
      // Worst-case per-request context (tokens resident at completion):
      // the trace maximum when shapes are replayed, the top of the uniform
      // spread when drawn. It must fit the model's context window, and it
      // sizes the KV reservation that caps concurrent decode slots.
      std::uint64_t worst_total = 0;
      if (!setup.trace_shapes.empty()) {
        std::uint64_t prefill_sum = 0;
        std::uint64_t decode_sum = 0;
        for (const RequestShape& s : setup.trace_shapes) {
          worst_total = std::max(worst_total, s.total_tokens());
          prefill_sum += s.prefill_tokens;
          decode_sum += s.decode_tokens;
        }
        if (prefill_mean == 0) {
          const auto n_shapes =
              static_cast<double>(setup.trace_shapes.size());
          prefill_mean = static_cast<std::uint32_t>(std::max<long>(
              1, std::lround(static_cast<double>(prefill_sum) / n_shapes)));
          decode_mean = static_cast<std::uint32_t>(std::lround(
              static_cast<double>(decode_sum) / n_shapes));
        }
      } else {
        const auto worst_of = [&](std::uint32_t mean) {
          return static_cast<std::uint64_t>(
              std::ceil(mean * (1.0 + setup.token_spread)));
        };
        worst_total = worst_of(prefill_mean) + worst_of(decode_mean);
      }
      OPTIPLET_REQUIRE(
          worst_total <= tspec->max_context,
          "request tokens exceed the model's max_context: " + setup.model);
      kv_per_token =
          dnn::kv_bytes_per_token(*tspec, config.system.parameter_bits);
      kv_budget = static_cast<std::uint64_t>(setup.kv_cache_mb * 1024.0 *
                                             1024.0);
      const std::uint64_t slots =
          kv_budget / std::max<std::uint64_t>(kv_per_token * worst_total, 1);
      OPTIPLET_REQUIRE(slots >= 1,
                       "kv_cache_mb cannot hold one worst-case request: " +
                           setup.model);
      // The KV budget caps concurrent sequences for every policy: static
      // batches clamp their size, continuous batching clamps its slot
      // count (and re-tests the fit per admitted request).
      batching.max_batch = static_cast<unsigned>(std::min<std::uint64_t>(
          batching.max_batch, slots));
    } else {
      OPTIPLET_REQUIRE(setup.decode_tokens == 0,
                       "decode_tokens without prefill_tokens: " +
                           setup.model);
      OPTIPLET_REQUIRE(
          batching.policy != BatchPolicy::kContinuous,
          "kContinuous needs token geometry (prefill_tokens > 0): " +
              setup.model);
    }
    TenantState state(batching);
    state.closed_loop = setup.source == ArrivalSource::kClosedLoop;
    if (state.closed_loop) {
      OPTIPLET_REQUIRE(!setup.replay_trace,
                       "closed-loop arrivals cannot replay a trace");
      OPTIPLET_REQUIRE(setup.users >= 1, "closed loop needs >= 1 user");
      OPTIPLET_REQUIRE(setup.think_s >= 0.0, "negative think time");
      state.issue_budget = setup.requests;
      state.think_mean_s = setup.think_s;
      state.think_rng = util::Xoshiro256(setup.seed);
      state.arrivals_done = state.issue_budget == 0;
    } else {
      state.arrivals =
          setup.replay_trace
              ? setup.trace_arrivals
              : poisson_arrivals(setup.arrival_rps, setup.requests,
                                 setup.seed);
      state.arrivals_done = state.arrivals.empty();
    }
    state.admission = setup.admission;
    state.priority = setup.priority;
    state.needs_shared = !plan.tenants[t].shared_kinds.empty();
    state.occupancy = plan.occupancy(t);
    state.owned = plan.tenants[t].owned_chiplets;
    state.retry_rng = util::Xoshiro256(setup.seed ^ 0x7265747279ULL);
    state.report.name = setup.name.empty() ? setup.model : setup.name;
    state.report.model = setup.model;
    state.report.priority = setup.priority;
    if (var) {
      state.var_length = true;
      state.prefill_mean = prefill_mean;
      state.decode_mean = decode_mean;
      state.token_spread = setup.token_spread;
      state.shape_rng = util::Xoshiro256(setup.seed ^ 0x746f6b656eULL);
      state.trace_shapes = setup.trace_shapes;
      state.kv_bytes_per_token = kv_per_token;
      state.kv_budget_bytes = kv_budget;
      state.continuous = batching.policy == BatchPolicy::kContinuous;
      state.cont_slots = batching.max_batch;
      // The mean-shape single-request price pins the effective SLA (and
      // pre-warms the phase cache with the reference service times).
      const std::uint32_t pm = std::max<std::uint32_t>(prefill_mean, 1);
      double nominal_s = oracle.prefill_run(t, 1, pm).latency_s;
      for (std::uint32_t k = 0; k < decode_mean; ++k) {
        nominal_s += oracle.decode_run(t, 1, pm + k).latency_s;
      }
      state.report.sla_s =
          setup.sla_s > 0.0 ? setup.sla_s : 10.0 * nominal_s;
    } else {
      // The batch-1 run pins the effective SLA (and pre-warms the cache
      // with the reference service time).
      state.report.sla_s = setup.sla_s > 0.0
                               ? setup.sla_s
                               : 10.0 * oracle.batch_run(t, 1).latency_s;
    }
    engine.tenants.push_back(std::move(state));
  }
  if (config.pipeline == PipelineMode::kLayerGranular) {
    // Build the exclusive chiplet-group resource table: the shared-serial
    // pool first, then every tenant's owned groups.
    Resource shared;
    shared.shared = true;
    shared.chiplets = plan.shared_chiplets;
    engine.resources.push_back(std::move(shared));
    for (std::size_t t = 0; t < config.tenants.size(); ++t) {
      TenantState& ts = engine.tenants[t];
      for (const auto& [kind, ids] : plan.tenants[t].owned_by_kind) {
        const auto it = std::find_if(
            ts.kind_resource.begin(), ts.kind_resource.end(),
            [kind = kind](const auto& kr) { return kr.first == kind; });
        if (it != ts.kind_resource.end()) {
          // A pool with two groups of one kind folds into one resource.
          auto& chiplets = engine.resources[it->second].chiplets;
          chiplets.insert(chiplets.end(), ids.begin(), ids.end());
          continue;
        }
        Resource owned;
        owned.chiplets = ids;
        ts.kind_resource.emplace_back(kind, engine.resources.size());
        engine.resources.push_back(std::move(owned));
      }
      // The stage structure is batch-size independent, so batch 1 (already
      // simulated for the SLA) pins the tenant's pipeline depth.
      // Variable-length tenants are dense-affine throughout — their stage
      // chain collapses to one group — so they serve batch-granular with
      // depth 1 (no stage schedule to build).
      ts.pipeline_depth =
          ts.var_length
              ? 1
              : Engine::distinct_resources(engine.exec_stages(t, 1));
    }
  }
  obs::Recorder* const rec = config.recorder;
  if (rec != nullptr) {
    engine.rec = rec;
    engine.pid = rec->pid();
    if (rec->tracing()) {
      obs::TraceBuffer& tb = rec->trace();
      tb.set_process_name(engine.pid,
                          rec->options().process_name.empty()
                              ? "serving"
                              : rec->options().process_name);
      // Track allocation order is fixed (tenants, then executors/groups,
      // then the interposer), so identical configs always produce
      // identical tids.
      for (const TenantState& ts : engine.tenants) {
        engine.tenant_tracks.push_back(
            tb.track(engine.pid, "tenant:" + ts.report.name));
      }
      if (config.pipeline == PipelineMode::kLayerGranular) {
        for (std::size_t r = 0; r < engine.resources.size(); ++r) {
          engine.resource_tracks.push_back(
              tb.track(engine.pid, r == 0 ? std::string("group:shared")
                                          : "group:" + std::to_string(r)));
        }
        // Variable-length tenants serve batch-granular even in layer mode
        // and emit phase spans on executor tracks.
        const bool any_var = std::any_of(
            engine.tenants.begin(), engine.tenants.end(),
            [](const TenantState& ts) { return ts.var_length; });
        if (any_var) {
          for (const TenantState& ts : engine.tenants) {
            engine.exec_tracks.push_back(
                tb.track(engine.pid, "exec:" + ts.report.name));
          }
        }
      } else {
        for (const TenantState& ts : engine.tenants) {
          engine.exec_tracks.push_back(
              tb.track(engine.pid, "exec:" + ts.report.name));
        }
      }
      engine.resipi_track = tb.track(engine.pid, "resipi");
    }
  }
  for (std::size_t t = 0; t < config.tenants.size(); ++t) {
    TenantState& ts = engine.tenants[t];
    if (ts.closed_loop) {
      // Every user starts in a think phase, so the pool desynchronizes
      // naturally; issue_closed() stops at the tenant's budget.
      for (unsigned u = 0; u < config.tenants[t].users; ++u) {
        engine.issue_closed(t);
      }
    } else if (!ts.arrivals.empty()) {
      engine.schedule_arrival(t);
    }
  }
  if (rec != nullptr && rec->metering()) {
    // Snapshot cadence: the option, or ~64 snapshots across the known
    // arrival span (closed-loop runs have no precomputed span — fall back
    // to the largest SLA, a natural timescale for queue dynamics).
    double first = std::numeric_limits<double>::infinity();
    double last = 0.0;
    double max_sla_s = 0.0;
    for (const TenantState& ts : engine.tenants) {
      if (!ts.arrivals.empty()) {
        first = std::min(first, ts.arrivals.front());
        last = std::max(last, ts.arrivals.back());
      }
      max_sla_s = std::max(max_sla_s, ts.report.sla_s);
    }
    double period_s = rec->options().snapshot_period_s;
    if (period_s <= 0.0) {
      const double span_s =
          std::isfinite(first) && last > first ? last - first : 0.0;
      period_s =
          span_s > 0.0 ? span_s / 64.0 : std::max(max_sla_s, 1e-6);
    }
    const double start_s = std::isfinite(first) ? first : 0.0;
    engine.events.schedule_at(start_s + period_s, [&engine, period_s] {
      engine.metrics_tick(period_s);
    });
  }

  for (const FaultSpec& fault : config.elastic.faults) {
    if (!fault.armed()) {
      continue;  // t = inf (or a no-op spec) schedules nothing: inert.
    }
    OPTIPLET_REQUIRE(
        fault.chiplet < static_cast<int>(plan.chiplet_active_power_w.size()),
        "fault chiplet id out of the pool");
    engine.events.schedule_at(fault.time_s, [&engine, fault] {
      engine.apply_fault(fault);
    });
  }

  engine.events.run();
  if (config.elastic.gate) {
    // Close every open idle gap at the measured-window end so tail idle
    // past the gate threshold is gated like any interior gap.
    for (std::size_t t = 0; t < engine.tenants.size(); ++t) {
      engine.close_gate_gap(t, engine.last_completion_s);
    }
  }
  OPTIPLET_ASSERT(engine.shared_waiters.empty(),
                  "serving drained with tenants still queued on the pool");
  for (const Resource& resource : engine.resources) {
    OPTIPLET_ASSERT(!resource.busy && resource.waiters.empty() &&
                        resource.tenant_waiters.empty(),
                    "serving drained with a chiplet group still held");
  }
  for (const TenantState& ts : engine.tenants) {
    OPTIPLET_ASSERT(ts.inflight == 0,
                    "serving drained with batches still in flight");
    OPTIPLET_ASSERT(ts.active.empty() && !ts.iter_running &&
                        !ts.iter_waiting_shared,
                    "serving drained with sequences still decoding");
  }

  // --- assemble the report ---
  // The measured window runs from the first arrival to the last
  // completion: replayed traces may start at an arbitrary absolute time,
  // which must not count as idle serving time. Closed-loop arrivals have
  // no precomputed arrival vector, so the engine tracks the first actual
  // arrival event for every source.
  const double first_arrival = std::isfinite(engine.first_arrival_s)
                                   ? engine.first_arrival_s
                                   : engine.last_completion_s;
  ServingReport out = std::move(engine.report);
  const double makespan =
      std::max(engine.last_completion_s - first_arrival, 0.0);
  ServingMetrics& m = out.metrics;
  m.makespan_s = makespan;
  m.first_arrival_abs_s = first_arrival;
  m.last_completion_abs_s = engine.last_completion_s;
  m.sim_events = engine.events.processed();
  m.sim_event_queue_peak = engine.events.peak_size();

  std::vector<double> all_latencies;
  std::vector<double> all_ttfts;
  std::uint64_t violations = 0;
  std::uint64_t batches = 0;
  std::map<unsigned, ClassReport> classes;
  std::map<unsigned, std::vector<double>> class_latencies;
  std::map<unsigned, std::uint64_t> class_violations;
  for (std::size_t t = 0; t < engine.tenants.size(); ++t) {
    TenantState& ts = engine.tenants[t];
    finalize_tenant(ts, makespan);
    m.offered += ts.report.offered;
    m.completed += ts.report.completed;
    m.shed += ts.report.shed;
    m.energy_j += ts.report.energy_j;
    m.resipi_conflicts += ts.report.resipi_conflicts;
    m.resipi_wait_s += ts.report.resipi_wait_s;
    m.shared_handoffs += ts.report.shared_handoffs;
    m.handoff_resipi_s += ts.report.handoff_resipi_s;
    m.decode_tps += ts.report.decode_tps;
    m.kv_peak_bytes = std::max(m.kv_peak_bytes, ts.report.kv_peak_bytes);
    m.abandoned += ts.report.abandoned;
    m.retries += ts.report.retries;
    m.gate_events += ts.report.gate_events;
    m.gated_idle_s += ts.report.gated_idle_s;
    all_ttfts.insert(all_ttfts.end(), ts.ttfts.begin(), ts.ttfts.end());
    batches += ts.report.batches;
    ClassReport& cls = classes[ts.priority];
    cls.priority = ts.priority;
    cls.offered += ts.report.offered;
    cls.completed += ts.report.completed;
    cls.shed += ts.report.shed;
    cls.abandoned += ts.report.abandoned;
    std::vector<double>& cls_lat = class_latencies[ts.priority];
    cls_lat.insert(cls_lat.end(), ts.latencies.begin(), ts.latencies.end());
    for (const double l : ts.latencies) {
      const std::uint64_t violated = l > ts.report.sla_s ? 1 : 0;
      violations += violated;
      class_violations[ts.priority] += violated;
    }
    all_latencies.insert(all_latencies.end(), ts.latencies.begin(),
                         ts.latencies.end());
    out.tenants.push_back(ts.report);
    out.tenant_latencies.push_back(std::move(ts.latencies));
  }
  // Every offered request is completed, shed outright, or abandoned after
  // its capped retry budget — the drain identity the property tests pin.
  OPTIPLET_ASSERT(
      m.offered == m.completed + m.shed + m.abandoned,
      "serving lost requests: offered != completed + shed + abandoned");
  for (auto& [priority, cls] : classes) {
    const std::vector<double>& lat = class_latencies[priority];
    if (!lat.empty()) {
      cls.p99_s = exact_quantile(lat, 0.99);
      cls.sla_violation_rate =
          static_cast<double>(class_violations[priority]) /
          static_cast<double>(lat.size());
    }
    if (makespan > 0.0) {
      cls.goodput_rps = static_cast<double>(cls.completed -
                                            class_violations[priority]) /
                        makespan;
    }
    out.classes.push_back(cls);  // std::map iterates classes ascending
  }
  if (!out.classes.empty()) {
    m.p99_hi_s = out.classes.front().p99_s;
    m.p99_lo_s = out.classes.back().p99_s;
  }
  if (!all_latencies.empty()) {
    double sum = 0.0;
    for (const double l : all_latencies) {
      sum += l;
      m.max_latency_s = std::max(m.max_latency_s, l);
    }
    m.mean_latency_s = sum / static_cast<double>(all_latencies.size());
    m.p50_s = exact_quantile(all_latencies, 0.50);
    m.p95_s = exact_quantile(all_latencies, 0.95);
    m.p99_s = exact_quantile(all_latencies, 0.99);
    m.sla_violation_rate = static_cast<double>(violations) /
                           static_cast<double>(all_latencies.size());
  }
  if (!all_ttfts.empty()) {
    m.ttft_p99_s = exact_quantile(std::move(all_ttfts), 0.99);
  }
  if (makespan > 0.0) {
    m.throughput_rps = static_cast<double>(m.completed) / makespan;
    m.goodput_rps = static_cast<double>(m.completed - violations) / makespan;
    // Idle static burn of the whole pool between batches.
    double busy_fraction_sum = 0.0;
    for (std::size_t c = 0; c < out.chiplet_busy_s.size(); ++c) {
      const double busy = std::min(out.chiplet_busy_s[c], makespan);
      busy_fraction_sum += busy / makespan;
      // Dark time draws no idle burn: seconds the chiplet's lasers were
      // power-gated, plus everything after a dead chiplet's fault time.
      // `dark_s - 0.0` stays IEEE-exact when the elastic policy is inert.
      double dark_s = engine.chiplet_gated_s[c];
      if (engine.chiplet_dead[c] != 0) {
        dark_s += std::max(engine.last_completion_s -
                               std::max(engine.dead_since[c], first_arrival),
                           0.0);
      }
      dark_s = std::min(dark_s, makespan - busy);
      out.ledger.charge_power_for("serving.idle",
                                  plan.chiplet_active_power_w[c] *
                                      config.system.idle_power_fraction,
                                  makespan - busy - dark_s);
    }
    if (!out.chiplet_busy_s.empty()) {
      m.utilization =
          busy_fraction_sum / static_cast<double>(out.chiplet_busy_s.size());
    }
  }
  const auto idle_it = out.ledger.entries().find("serving.idle");
  if (idle_it != out.ledger.entries().end()) {
    m.energy_j += idle_it->second.dynamic_energy_j;
  }
  if (m.completed > 0) {
    m.energy_per_request_j = m.energy_j / static_cast<double>(m.completed);
    m.mean_batch = static_cast<double>(m.completed) /
                   static_cast<double>(std::max<std::uint64_t>(batches, 1));
  }
  // Carbon proxy: total energy priced at the grid intensity [g CO2/kWh],
  // optionally sinusoidal over the diurnal period (J -> kWh is / 3.6e6).
  const auto intensity_gpkwh = [&config](double t) {
    const ElasticSpec& e = config.elastic;
    if (e.carbon_amplitude <= 0.0) {
      return e.carbon_base_gpkwh;
    }
    constexpr double kTau = 6.283185307179586;  // 2*pi
    return e.carbon_base_gpkwh *
           (1.0 + e.carbon_amplitude * std::sin(kTau * t / e.carbon_period_s));
  };
  if (!out.day_curve.empty()) {
    // Batch energy landed in its dispatch bucket; the pool's idle burn is
    // apportioned by each bucket's overlap with the measured window. Each
    // bucket then prices at its midpoint intensity, so the curve exposes
    // when the energy was drawn, not just how much.
    const double idle_j = idle_it != out.ledger.entries().end()
                              ? idle_it->second.dynamic_energy_j
                              : 0.0;
    const double window_s = engine.last_completion_s - first_arrival;
    for (DayPoint& p : out.day_curve) {
      const double lo = std::max(p.t0_s, first_arrival);
      const double hi =
          std::min(p.t0_s + p.dt_s, engine.last_completion_s);
      if (window_s > 0.0 && hi > lo) {
        p.energy_j += idle_j * (hi - lo) / window_s;
      }
      if (p.completed > 0) {
        p.energy_per_request_j =
            p.energy_j / static_cast<double>(p.completed);
      }
      p.carbon_g =
          p.energy_j / 3.6e6 * intensity_gpkwh(p.t0_s + 0.5 * p.dt_s);
      m.carbon_g += p.carbon_g;
    }
  } else {
    // No curve: price the whole run flat at the base intensity.
    m.carbon_g = m.energy_j / 3.6e6 * config.elastic.carbon_base_gpkwh;
  }
  m.service_cache_hits = oracle.cache_hits();
  m.service_cache_misses = oracle.cache_misses();
  for (const auto& gen : engine.gen_oracles) {
    m.service_cache_hits += gen->cache_hits();
    m.service_cache_misses += gen->cache_misses();
  }
  if (rec != nullptr) {
    if (rec->metering()) {
      // Final snapshot closing the run (the queue is drained by now).
      rec->metrics().set("serve.queue_depth", 0.0);
      rec->metrics().set("serve.inflight_batches", 0.0);
      rec->metrics().snapshot(
          std::max(engine.last_completion_s, engine.events.now()));
    }
    if (rec->tracing()) {
      // One summary event per process: tools/check_trace_json.py
      // reconciles span counts against these totals (offered == request
      // spans == completed + shed).
      rec->trace().add_instant(
          "serving_totals", "summary", engine.last_completion_s, engine.pid,
          rec->trace().track(engine.pid, "summary"),
          {obs::arg("offered", m.offered), obs::arg("completed", m.completed),
           obs::arg("shed", m.shed), obs::arg("abandoned", m.abandoned)});
    }
  }
  out.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_t0)
                   .count();
  return out;
}

ServingConfig make_serving_config(const core::SystemConfig& base,
                                  accel::Architecture arch,
                                  const ServingSpec& spec) {
  ServingConfig config;
  config.system = base;
  config.arch = arch;
  config.pipeline = spec.pipeline;
  config.elastic = spec.elastic;

  const std::vector<std::string> mix = spec.tenants();
  OPTIPLET_REQUIRE(!mix.empty(), "empty tenant mix");
  const auto n = mix.size();
  const std::vector<unsigned> priorities = spec.priorities();

  OPTIPLET_REQUIRE(spec.source != ArrivalSource::kClosedLoop ||
                       spec.trace_path.empty(),
                   "closed-loop arrivals cannot replay a trace");
  std::vector<TraceEvent> trace;
  if (!spec.trace_path.empty()) {
    trace = load_arrival_trace(spec.trace_path);
  }

  for (std::size_t i = 0; i < n; ++i) {
    TenantSetup tenant;
    tenant.model = mix[i];
    // A model appearing more than once gets "#<mix-index>" appended to
    // *every* occurrence, so trace `tenant` labels can address each copy
    // unambiguously ("LeNet5#0", "LeNet5#1").
    tenant.name = mix[i];
    const auto copies =
        static_cast<std::size_t>(std::count(mix.begin(), mix.end(), mix[i]));
    if (copies > 1) {
      tenant.name += "#" + std::to_string(i);
    }
    tenant.arrival_rps = spec.arrival_rps / static_cast<double>(n);
    tenant.requests =
        spec.requests / n + (i < spec.requests % n ? 1 : 0);
    tenant.seed = spec.seed + i;
    tenant.source = spec.source;
    tenant.users = spec.users;
    tenant.think_s = spec.think_s;
    tenant.batching.policy = spec.policy;
    tenant.batching.max_batch = spec.max_batch;
    tenant.batching.max_wait_s = spec.max_wait_s;
    tenant.admission = spec.admission;
    tenant.priority = priorities[i];
    tenant.sla_s = spec.sla_s;
    tenant.prefill_tokens = spec.prefill_tokens;
    tenant.decode_tokens = spec.decode_tokens;
    tenant.token_spread = spec.token_spread;
    tenant.kv_cache_mb = spec.kv_cache_mb;
    if (!spec.trace_path.empty()) {
      tenant.replay_trace = true;
      tenant.trace_arrivals = trace_arrivals_for(trace, tenant.name);
      tenant.trace_shapes = trace_shapes_for(trace, tenant.name);
    }
    config.tenants.push_back(std::move(tenant));
  }
  if (!spec.trace_path.empty()) {
    // A trace that feeds nobody is a labeling mistake (e.g. rows labeled
    // "LeNet5" against the duplicate-mix names "LeNet5#0"/"LeNet5#1"):
    // fail loud instead of serving an empty run.
    std::size_t fed = 0;
    std::vector<std::string> names;
    for (const auto& tenant : config.tenants) {
      fed += tenant.trace_arrivals.empty() ? 0 : 1;
      names.push_back(tenant.name);
    }
    if (fed == 0) {
      std::string message =
          "arrival trace feeds no tenant (tenant labels must be empty or "
          "match one of:";
      for (const auto& name : names) {
        message += " " + name;
      }
      throw std::invalid_argument(message + "): " + spec.trace_path);
    }
  }
  return config;
}

}  // namespace optiplet::serve
