#include "serve/tracegen.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace optiplet::serve {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Thin a homogeneous Poisson candidate stream at `peak_rps` down to the
/// instantaneous rate: an exact non-homogeneous Poisson sample as long as
/// rate(t) <= peak_rps everywhere.
std::vector<double> thinned_arrivals(
    double peak_rps, double duration_s, util::Xoshiro256& rng,
    const std::function<double(double)>& rate) {
  std::vector<double> times;
  double t = 0.0;
  for (;;) {
    t += rng.next_exponential(1.0 / peak_rps);
    if (t >= duration_s) {
      return times;
    }
    if (rng.next_double() * peak_rps < rate(t)) {
      times.push_back(t);
    }
  }
}

/// Half-open [start, end) episodes, sorted by start; lookup walks a
/// cursor because thinning queries strictly increasing times.
class EpisodeTimeline {
 public:
  explicit EpisodeTimeline(std::vector<std::pair<double, double>> episodes)
      : episodes_(std::move(episodes)) {}

  bool contains(double t) {
    while (cursor_ < episodes_.size() && episodes_[cursor_].second <= t) {
      ++cursor_;
    }
    return cursor_ < episodes_.size() && episodes_[cursor_].first <= t;
  }

 private:
  std::vector<std::pair<double, double>> episodes_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::optional<TraceProfile> trace_profile_from_string(std::string_view name) {
  if (name == "diurnal" || name == "sinusoid") {
    return TraceProfile::kDiurnal;
  }
  if (name == "bursts" || name == "burst") {
    return TraceProfile::kBursts;
  }
  if (name == "mmpp" || name == "onoff") {
    return TraceProfile::kMmpp;
  }
  return std::nullopt;
}

std::vector<TraceEvent> generate_trace(const TraceGenSpec& spec) {
  OPTIPLET_REQUIRE(spec.base_rps > 0.0, "base rate must be positive");
  OPTIPLET_REQUIRE(spec.duration_s > 0.0, "duration must be positive");
  util::Xoshiro256 rng(spec.seed);

  std::vector<double> times;
  switch (spec.profile) {
    case TraceProfile::kDiurnal: {
      const double period =
          spec.period_s > 0.0 ? spec.period_s : spec.duration_s;
      const double amplitude = spec.amplitude;
      OPTIPLET_REQUIRE(amplitude >= 0.0 && amplitude <= 1.0,
                       "diurnal amplitude must be in [0, 1]");
      const double base = spec.base_rps;
      times = thinned_arrivals(
          base * (1.0 + amplitude), spec.duration_s, rng,
          [base, amplitude, period](double t) {
            return base * (1.0 + amplitude * std::sin(2.0 * kPi * t / period));
          });
      break;
    }
    case TraceProfile::kBursts: {
      OPTIPLET_REQUIRE(spec.burst_multiplier >= 1.0,
                       "burst multiplier must be >= 1");
      const double gap =
          spec.burst_gap_s > 0.0 ? spec.burst_gap_s : spec.duration_s / 10.0;
      const double len =
          spec.burst_len_s > 0.0 ? spec.burst_len_s : spec.duration_s / 50.0;
      // Burst starts are their own Poisson process; episodes may overlap,
      // in which case the rate stays at one multiplier (not stacked).
      std::vector<std::pair<double, double>> episodes;
      double start = 0.0;
      for (;;) {
        start += rng.next_exponential(gap);
        if (start >= spec.duration_s) {
          break;
        }
        episodes.emplace_back(start, start + rng.next_exponential(len));
      }
      // Merge overlaps so the cursor lookup sees disjoint episodes.
      std::vector<std::pair<double, double>> merged;
      for (const auto& e : episodes) {
        if (!merged.empty() && e.first <= merged.back().second) {
          merged.back().second = std::max(merged.back().second, e.second);
        } else {
          merged.push_back(e);
        }
      }
      EpisodeTimeline timeline(std::move(merged));
      const double base = spec.base_rps;
      const double burst = base * spec.burst_multiplier;
      times = thinned_arrivals(burst, spec.duration_s, rng,
                               [base, burst, &timeline](double t) {
                                 return timeline.contains(t) ? burst : base;
                               });
      break;
    }
    case TraceProfile::kMmpp: {
      const double on_rps =
          spec.on_rps >= 0.0 ? spec.on_rps : 2.0 * spec.base_rps;
      const double off_rps =
          spec.off_rps >= 0.0 ? spec.off_rps : spec.base_rps / 10.0;
      OPTIPLET_REQUIRE(on_rps > 0.0 || off_rps > 0.0,
                       "mmpp needs a positive rate in some state");
      const double on_mean =
          spec.on_s > 0.0 ? spec.on_s : spec.duration_s / 10.0;
      const double off_mean =
          spec.off_s > 0.0 ? spec.off_s : spec.duration_s / 10.0;
      // Alternate exponential sojourns, starting in the on state; record
      // the on intervals and thin against the peak of the two rates.
      std::vector<std::pair<double, double>> on_intervals;
      double t = 0.0;
      bool on = true;
      while (t < spec.duration_s) {
        const double sojourn = rng.next_exponential(on ? on_mean : off_mean);
        if (on) {
          on_intervals.emplace_back(t, t + sojourn);
        }
        t += sojourn;
        on = !on;
      }
      EpisodeTimeline timeline(std::move(on_intervals));
      times = thinned_arrivals(std::max(on_rps, off_rps), spec.duration_s,
                               rng, [on_rps, off_rps, &timeline](double t2) {
                                 return timeline.contains(t2) ? on_rps
                                                              : off_rps;
                               });
      break;
    }
  }

  std::vector<TraceEvent> events;
  events.reserve(times.size());
  for (const double time : times) {
    TraceEvent e;
    e.arrival_s = time;
    if (!spec.tenants.empty()) {
      e.tenant = spec.tenants[rng.next_below(spec.tenants.size())];
    }
    if (spec.prefill_tokens > 0) {
      e.shape = draw_request_shape(spec.prefill_tokens, spec.decode_tokens,
                                   spec.token_spread, rng);
    } else {
      OPTIPLET_REQUIRE(spec.decode_tokens == 0,
                       "decode_tokens requires a positive prefill_tokens");
    }
    events.push_back(std::move(e));
  }
  return events;
}

bool write_arrival_trace(const std::string& path,
                         const std::vector<TraceEvent>& events) {
  const bool labeled =
      std::any_of(events.begin(), events.end(),
                  [](const TraceEvent& e) { return !e.tenant.empty(); });
  const bool shaped = std::any_of(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return e.shape.variable_length(); });
  std::vector<std::string> header = {"arrival_s"};
  if (labeled) {
    header.push_back("tenant");
  }
  if (shaped) {
    header.push_back("prefill_tokens");
    header.push_back("decode_tokens");
  }
  util::CsvWriter csv(path, header);
  if (!csv.ok()) {
    return false;
  }
  for (const TraceEvent& e : events) {
    std::vector<std::string> row = {util::format_general(e.arrival_s, 17)};
    if (labeled) {
      row.push_back(e.tenant);
    }
    if (shaped) {
      row.push_back(std::to_string(e.shape.prefill_tokens));
      row.push_back(std::to_string(e.shape.decode_tokens));
    }
    csv.add_row(row);
  }
  return true;
}

}  // namespace optiplet::serve
