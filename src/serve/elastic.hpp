#pragma once
/// \file elastic.hpp
/// Runtime-elasticity policy knobs for the serving simulator.
///
/// `ElasticSpec` bundles the four elastic-operation mechanisms added on top
/// of the static co-location plan (see docs/elastic-operation.md):
///
///  1. **Re-partitioning** — when the per-tenant EMA load signal drifts far
///     enough from the current chiplet allocation, the pool is re-partitioned
///     and every affected gateway pays a ReSiPI PCM-write retune through the
///     same serialized interposer window batches use.
///  2. **Idle power-gating** — owned lasers/gateways go dark in measured
///     idle gaps longer than `gate_after_s`; the gated seconds are removed
///     from the `EnergyLedger` idle burn and the next batch pays `wake_s`.
///  3. **Fault injection** — `FaultSpec` kills a chiplet or derates link
///     bandwidth at a wall-clock time, shrinking the live partition pool
///     mid-run and forcing a re-partition around the dead hardware.
///  4. **Client retry** — requests shed under `kSlaShed` admission are
///     re-offered with seeded exponential backoff, up to a capped number of
///     attempts, after which they count as `abandoned`.
///
/// The default-constructed spec is *provably inert*: an infinite shift
/// threshold never triggers a re-partition, gating is off, the retry budget
/// is zero, and no fault is armed — the simulator takes the exact static
/// code path, bit for bit (degeneracy-tested).

#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace optiplet::serve {

/// One injected hardware fault. A fault is *armed* only when `time_s` is
/// finite; `time_s = inf` (the default) schedules nothing and is
/// bit-identical to no fault at all.
struct FaultSpec {
  /// Absolute simulation time the fault strikes [s]. Infinite = never.
  double time_s = std::numeric_limits<double>::infinity();
  /// Pool-global chiplet id that dies (-1 = no dead chiplet). The chiplet is
  /// removed from the live partition pool and a re-partition is forced.
  int chiplet = -1;
  /// Drifted-microring bandwidth derate in (0, 1]; service latency is
  /// multiplied by 1/derate from the fault time on. 1.0 = no drift.
  double bandwidth_derate = 1.0;
  /// Cluster scope: package index the fault applies to, or -1 for every
  /// package. Ignored by single-package `serve::simulate`.
  int package = -1;

  /// True when the fault will actually fire (finite time and some effect).
  [[nodiscard]] bool armed() const {
    return std::isfinite(time_s) && (chiplet >= 0 || bandwidth_derate < 1.0);
  }

  bool operator==(const FaultSpec&) const = default;
};

/// Elastic-operation policy. All features default off (see file comment).
struct ElasticSpec {
  // --- Re-partitioning ------------------------------------------------
  /// Trigger threshold on the max per-tenant |demand share - allocation
  /// share| drift, in absolute share units [0, 1]. Infinite = static.
  double shift_threshold = std::numeric_limits<double>::infinity();
  /// Time constant of the per-tenant interarrival EMA load signal [s].
  double ema_tau_s = 10.0;
  /// Minimum time between policy-triggered re-partitions [s]; also acts as
  /// the warm-up before the first one. Faults ignore the cooldown.
  double cooldown_s = 60.0;

  // --- Idle power-gating ----------------------------------------------
  /// Gate owned lasers/gateways in idle gaps (off by default).
  bool gate = false;
  /// Idle time before the gate closes [s]; the gap below this threshold
  /// still burns normal idle power.
  double gate_after_s = 1.0e-3;
  /// Wake latency charged to the first batch after a gated gap [s].
  double wake_s = 100.0e-6;

  // --- Client retry ---------------------------------------------------
  /// Max re-offers for a shed request (0 = shed immediately, no retry).
  unsigned retry_max_attempts = 0;
  /// Base backoff [s]; attempt k waits retry_backoff_s * 2^k * U[1,2).
  double retry_backoff_s = 1.0e-3;

  // --- Day curves / carbon proxy --------------------------------------
  /// Bucket width for the energy-per-request day curve [s]; 0 = no curve.
  double curve_bucket_s = 0.0;
  /// Mean grid carbon intensity [gCO2 / kWh] for the carbon proxy.
  double carbon_base_gpkwh = 400.0;
  /// Sinusoidal swing of the grid intensity (0 = flat).
  double carbon_amplitude = 0.0;
  /// Period of the grid-intensity sinusoid [s] (one day).
  double carbon_period_s = 86400.0;

  // --- Faults ---------------------------------------------------------
  std::vector<FaultSpec> faults;

  /// True when the EMA policy can trigger re-partitions.
  [[nodiscard]] bool repartitioning() const {
    return std::isfinite(shift_threshold);
  }
  /// True when shed requests are re-offered instead of dropped.
  [[nodiscard]] bool retrying() const { return retry_max_attempts > 0; }
  /// True when at least one fault will fire.
  [[nodiscard]] bool any_fault_armed() const;
  /// True when any elastic mechanism differs from the inert default.
  [[nodiscard]] bool enabled() const;

  bool operator==(const ElasticSpec&) const = default;
};

/// Canonical text form, round-trippable through `elastic_from_string` and
/// stable enough for `ScenarioSpec::key()`. The inert default encodes as
/// "static"; otherwise '/'-separated `k=v` fields, e.g.
/// `shift=0.2/tau=60/cool=600/gate=0.001:0.0001/retry=4:0.002/bucket=3600/`
/// `carbon=400:0.5:86400/fault=3600:2:1:-1`.
[[nodiscard]] std::string to_string(const ElasticSpec& spec);

/// Parse the `to_string` form (also accepts "static" / "" for the default).
/// Returns nullopt on malformed input.
[[nodiscard]] std::optional<ElasticSpec> elastic_from_string(
    std::string_view text);

}  // namespace optiplet::serve
