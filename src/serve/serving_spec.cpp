#include "serve/serving_spec.hpp"

#include <cmath>
#include <stdexcept>

#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace optiplet::serve {

namespace {

std::uint32_t draw_token_count(std::uint32_t mean, double spread,
                               util::Xoshiro256& rng) {
  if (mean == 0) {
    return 0;
  }
  const double u = 2.0 * rng.next_double() - 1.0;  // uniform in [-1, 1)
  const double drawn = static_cast<double>(mean) * (1.0 + spread * u);
  const auto rounded = static_cast<std::uint32_t>(std::lround(drawn));
  return rounded < 1 ? 1 : rounded;
}

}  // namespace

RequestShape draw_request_shape(std::uint32_t prefill_mean,
                                std::uint32_t decode_mean, double spread,
                                util::Xoshiro256& rng) {
  OPTIPLET_REQUIRE(spread >= 0.0 && spread < 1.0,
                   "token_spread must be in [0, 1)");
  OPTIPLET_REQUIRE(prefill_mean > 0 || decode_mean == 0,
                   "decode_tokens requires a positive prefill_tokens");
  RequestShape shape{prefill_mean, decode_mean};
  if (spread > 0.0) {
    shape.prefill_tokens = draw_token_count(prefill_mean, spread, rng);
    shape.decode_tokens = draw_token_count(decode_mean, spread, rng);
  }
  return shape;
}

std::optional<BatchPolicy> batch_policy_from_string(std::string_view name) {
  if (name == "none" || name == "fifo" || name == "no-batch") {
    return BatchPolicy::kNone;
  }
  if (name == "size" || name == "fixed" || name == "fixed-size") {
    return BatchPolicy::kFixedSize;
  }
  if (name == "deadline" || name == "dynamic") {
    return BatchPolicy::kDeadline;
  }
  if (name == "cont" || name == "continuous") {
    return BatchPolicy::kContinuous;
  }
  return std::nullopt;
}

const char* batch_policy_choices() { return "none, size, deadline, cont"; }

std::optional<PipelineMode> pipeline_mode_from_string(std::string_view name) {
  if (name == "batch" || name == "blocked") {
    return PipelineMode::kBatchGranular;
  }
  if (name == "layer" || name == "pipelined") {
    return PipelineMode::kLayerGranular;
  }
  return std::nullopt;
}

const char* pipeline_mode_choices() { return "batch, layer"; }

std::optional<ArrivalSource> arrival_source_from_string(
    std::string_view name) {
  if (name == "open" || name == "poisson") {
    return ArrivalSource::kOpenLoop;
  }
  if (name == "closed" || name == "closed-loop") {
    return ArrivalSource::kClosedLoop;
  }
  return std::nullopt;
}

const char* arrival_source_choices() { return "open, closed"; }

std::optional<AdmissionPolicy> admission_policy_from_string(
    std::string_view name) {
  if (name == "all" || name == "none" || name == "admit-all") {
    return AdmissionPolicy::kAdmitAll;
  }
  if (name == "shed" || name == "sla-shed") {
    return AdmissionPolicy::kSlaShed;
  }
  return std::nullopt;
}

const char* admission_policy_choices() { return "all, shed"; }

std::vector<std::string> split_mix(std::string_view mix) {
  return util::split(mix, '+');
}

std::vector<std::string> ServingSpec::tenants() const {
  return split_mix(tenant_mix);
}

std::vector<unsigned> ServingSpec::priorities() const {
  const std::size_t n = tenants().size();
  if (priority_mix.empty()) {
    return std::vector<unsigned>(n, 0u);
  }
  const std::vector<std::string> parts = util::split(priority_mix, '+');
  if (parts.size() != n) {
    throw std::invalid_argument(
        "priority_mix \"" + priority_mix + "\" names " +
        std::to_string(parts.size()) + " classes for " + std::to_string(n) +
        " tenants");
  }
  std::vector<unsigned> classes;
  classes.reserve(n);
  for (const auto& part : parts) {
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(part, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != part.size() || part.empty() || value > 0xffffffffUL) {
      throw std::invalid_argument("bad priority class in priority_mix: \"" +
                                  part + "\"");
    }
    classes.push_back(static_cast<unsigned>(value));
  }
  return classes;
}

}  // namespace optiplet::serve
