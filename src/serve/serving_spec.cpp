#include "serve/serving_spec.hpp"

#include "util/strings.hpp"

namespace optiplet::serve {

std::optional<BatchPolicy> batch_policy_from_string(std::string_view name) {
  if (name == "none" || name == "fifo" || name == "no-batch") {
    return BatchPolicy::kNone;
  }
  if (name == "size" || name == "fixed" || name == "fixed-size") {
    return BatchPolicy::kFixedSize;
  }
  if (name == "deadline" || name == "dynamic") {
    return BatchPolicy::kDeadline;
  }
  return std::nullopt;
}

std::optional<PipelineMode> pipeline_mode_from_string(std::string_view name) {
  if (name == "batch" || name == "blocked") {
    return PipelineMode::kBatchGranular;
  }
  if (name == "layer" || name == "pipelined") {
    return PipelineMode::kLayerGranular;
  }
  return std::nullopt;
}

std::vector<std::string> split_mix(std::string_view mix) {
  return util::split(mix, '+');
}

std::vector<std::string> ServingSpec::tenants() const {
  return split_mix(tenant_mix);
}

}  // namespace optiplet::serve
