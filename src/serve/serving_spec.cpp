#include "serve/serving_spec.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace optiplet::serve {

std::optional<BatchPolicy> batch_policy_from_string(std::string_view name) {
  if (name == "none" || name == "fifo" || name == "no-batch") {
    return BatchPolicy::kNone;
  }
  if (name == "size" || name == "fixed" || name == "fixed-size") {
    return BatchPolicy::kFixedSize;
  }
  if (name == "deadline" || name == "dynamic") {
    return BatchPolicy::kDeadline;
  }
  return std::nullopt;
}

std::optional<PipelineMode> pipeline_mode_from_string(std::string_view name) {
  if (name == "batch" || name == "blocked") {
    return PipelineMode::kBatchGranular;
  }
  if (name == "layer" || name == "pipelined") {
    return PipelineMode::kLayerGranular;
  }
  return std::nullopt;
}

std::optional<ArrivalSource> arrival_source_from_string(
    std::string_view name) {
  if (name == "open" || name == "poisson") {
    return ArrivalSource::kOpenLoop;
  }
  if (name == "closed" || name == "closed-loop") {
    return ArrivalSource::kClosedLoop;
  }
  return std::nullopt;
}

std::optional<AdmissionPolicy> admission_policy_from_string(
    std::string_view name) {
  if (name == "all" || name == "none" || name == "admit-all") {
    return AdmissionPolicy::kAdmitAll;
  }
  if (name == "shed" || name == "sla-shed") {
    return AdmissionPolicy::kSlaShed;
  }
  return std::nullopt;
}

std::vector<std::string> split_mix(std::string_view mix) {
  return util::split(mix, '+');
}

std::vector<std::string> ServingSpec::tenants() const {
  return split_mix(tenant_mix);
}

std::vector<unsigned> ServingSpec::priorities() const {
  const std::size_t n = tenants().size();
  if (priority_mix.empty()) {
    return std::vector<unsigned>(n, 0u);
  }
  const std::vector<std::string> parts = util::split(priority_mix, '+');
  if (parts.size() != n) {
    throw std::invalid_argument(
        "priority_mix \"" + priority_mix + "\" names " +
        std::to_string(parts.size()) + " classes for " + std::to_string(n) +
        " tenants");
  }
  std::vector<unsigned> classes;
  classes.reserve(n);
  for (const auto& part : parts) {
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(part, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != part.size() || part.empty() || value > 0xffffffffUL) {
      throw std::invalid_argument("bad priority class in priority_mix: \"" +
                                  part + "\"");
    }
    classes.push_back(static_cast<unsigned>(value));
  }
  return classes;
}

}  // namespace optiplet::serve
