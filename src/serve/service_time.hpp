#pragma once
/// \file service_time.hpp
/// Memoized batch service-time oracle over core::SystemSimulator.
///
/// A serving simulation asks for the same (tenant, batch-size) service
/// time millions of times; the underlying full-system simulation is a pure
/// function of (tenant platform, model, batch, fidelity), so each distinct
/// point is simulated exactly once and the cached core::RunResult —
/// latency, energy ledger, ReSiPI reconfiguration count — is reused. This
/// is what keeps million-request serving runs fast even at cycle-accurate
/// fidelity.
///
/// Batch semantics come from SystemConfig::batch_size: weights stream once
/// per batch while compute and activation traffic scale with it, so batch
/// service time grows sublinearly — the amortization every batching policy
/// trades latency for.
///
/// Besides the whole-batch RunResult, the oracle exposes the run's
/// per-layer decomposition as a LayerSchedule: per-layer latency/energy
/// segments plus the merged per-group pipeline stages the layer-granular
/// serving engine executes (SET-style inter-layer pipelining).

#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "core/system_config.hpp"
#include "core/system_simulator.hpp"
#include "dnn/graph.hpp"
#include "dnn/transformer.hpp"

namespace optiplet::serve {

/// One layer of a batch's per-layer service schedule.
struct LayerSegment {
  std::size_t layer_index = 0;  ///< index into Model::layers()
  accel::MacKind group = accel::MacKind::kConv3;
  double latency_s = 0.0;
  /// The batch's energy apportioned by layer time (sums to the run total).
  double energy_j = 0.0;
};

/// A maximal run of consecutive layers on one chiplet group — the stage
/// granularity at which the layer-granular serving engine acquires and
/// releases resources.
struct PipelineStage {
  accel::MacKind group = accel::MacKind::kConv3;
  std::size_t first_layer = 0;  ///< index into LayerSchedule::layers
  std::size_t layer_count = 0;
  double latency_s = 0.0;  ///< sum of the member layers
  double energy_j = 0.0;
  /// Prefix offsets within the batch. start_offset_s of stage k is exactly
  /// end_offset_s of stage k-1, and the last stage's end_offset_s is
  /// exactly the batch run's latency_s, so an unstalled stage chain
  /// telescopes bit-for-bit to the batch-granular completion time.
  double start_offset_s = 0.0;
  double end_offset_s = 0.0;
};

/// Per-layer decomposition of one (tenant, batch) service time, derived
/// from the full-system run's per-layer breakdown at either fidelity.
struct LayerSchedule {
  std::vector<LayerSegment> layers;
  std::vector<PipelineStage> stages;
  double total_latency_s = 0.0;  ///< == batch_run(...).latency_s exactly
  double total_energy_j = 0.0;   ///< == batch_run(...).energy_j
};

class ServiceTimeOracle {
 public:
  /// One tenant the oracle can serve: its model plus the SystemConfig the
  /// batch runs use (the tenant's partitioned `compute_2p5d` already
  /// applied). The config's batch_size field is overridden per lookup.
  /// Autoregressive tenants additionally carry their TransformerSpec,
  /// enabling the per-phase prefill/decode lookups below.
  struct Tenant {
    dnn::Model model;
    core::SystemConfig config;
    std::optional<dnn::TransformerSpec> transformer;
  };

  ServiceTimeOracle(std::vector<Tenant> tenants, accel::Architecture arch);

  /// Service profile of one batch of `batch` requests on `tenant`
  /// (simulating on first use, cached thereafter). The reference stays
  /// valid for the oracle's lifetime.
  [[nodiscard]] const core::RunResult& batch_run(std::size_t tenant,
                                                 unsigned batch);

  /// Per-layer schedule of the same batch run (built from batch_run's
  /// per-layer breakdown on first use, cached thereafter). The reference
  /// stays valid for the oracle's lifetime. Throws std::invalid_argument
  /// for a run without a per-layer breakdown — it has no layer boundaries
  /// to pipeline on and must serve batch-granular.
  [[nodiscard]] const LayerSchedule& layer_schedule(std::size_t tenant,
                                                    unsigned batch);

  /// Service profile of one MAC-bound prefill over `tokens` prompt tokens
  /// at batch size `batch` (weights stream once per batch, so prefill
  /// amortizes exactly like a fixed-shape batch). Requires the tenant to
  /// be a transformer. Cached per (tenant, batch, tokens).
  [[nodiscard]] const core::RunResult& prefill_run(std::size_t tenant,
                                                   unsigned batch,
                                                   std::uint32_t tokens);

  /// Service profile of one bandwidth-bound decode step — a single fresh
  /// token per sequence attending a KV cache of `kv_tokens` — at batch
  /// size `batch`. The KV length is bucketed (kv_bucket) before
  /// simulation so a growing cache hits a bounded number of distinct
  /// simulations; pass the raw length. Requires a transformer tenant.
  [[nodiscard]] const core::RunResult& decode_run(std::size_t tenant,
                                                  unsigned batch,
                                                  std::uint32_t kv_tokens);

  /// Per-layer schedule of a prefill/decode phase run, for layer-granular
  /// execution (transformer compute is dense-affine throughout, so these
  /// collapse to one kDense100 stage).
  [[nodiscard]] const LayerSchedule& prefill_schedule(std::size_t tenant,
                                                      unsigned batch,
                                                      std::uint32_t tokens);
  [[nodiscard]] const LayerSchedule& decode_schedule(std::size_t tenant,
                                                     unsigned batch,
                                                     std::uint32_t kv_tokens);

  /// The memoization bucket a raw KV length prices at for `tenant`: the
  /// length rounded up to a multiple of 64, clamped into the model's
  /// context window ([0, max_context - 1]). Monotone in kv_tokens, so
  /// bucketed decode cost stays non-decreasing in context length.
  [[nodiscard]] std::uint32_t kv_bucket(std::size_t tenant,
                                        std::uint32_t kv_tokens) const;

  /// The tenant's TransformerSpec, or nullopt for fixed-shape tenants.
  [[nodiscard]] const std::optional<dnn::TransformerSpec>& transformer(
      std::size_t tenant) const;

  [[nodiscard]] accel::Architecture arch() const { return arch_; }
  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  /// Lookups served from the cache / simulated fresh, across all tenants.
  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }

 private:
  /// (tenant, phase, batch, tokens): phase 0 = prefill, 1 = decode;
  /// tokens is the prompt length (prefill) or KV bucket (decode).
  using PhaseKey = std::tuple<std::size_t, int, unsigned, std::uint32_t>;

  [[nodiscard]] const core::RunResult& phase_run(std::size_t tenant,
                                                 int phase, unsigned batch,
                                                 std::uint32_t tokens);
  [[nodiscard]] static LayerSchedule build_schedule(
      const core::RunResult& run);

  std::vector<Tenant> tenants_;
  accel::Architecture arch_;
  std::map<std::pair<std::size_t, unsigned>, core::RunResult> cache_;
  std::map<std::pair<std::size_t, unsigned>, LayerSchedule> schedules_;
  std::map<PhaseKey, core::RunResult> phase_cache_;
  std::map<PhaseKey, LayerSchedule> phase_schedules_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace optiplet::serve
