#pragma once
/// \file service_time.hpp
/// Memoized batch service-time oracle over core::SystemSimulator.
///
/// A serving simulation asks for the same (tenant, batch-size) service
/// time millions of times; the underlying full-system simulation is a pure
/// function of (tenant platform, model, batch, fidelity), so each distinct
/// point is simulated exactly once and the cached core::RunResult —
/// latency, energy ledger, ReSiPI reconfiguration count — is reused. This
/// is what keeps million-request serving runs fast even at cycle-accurate
/// fidelity.
///
/// Batch semantics come from SystemConfig::batch_size: weights stream once
/// per batch while compute and activation traffic scale with it, so batch
/// service time grows sublinearly — the amortization every batching policy
/// trades latency for.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "core/system_config.hpp"
#include "core/system_simulator.hpp"
#include "dnn/graph.hpp"

namespace optiplet::serve {

class ServiceTimeOracle {
 public:
  /// One tenant the oracle can serve: its model plus the SystemConfig the
  /// batch runs use (the tenant's partitioned `compute_2p5d` already
  /// applied). The config's batch_size field is overridden per lookup.
  struct Tenant {
    dnn::Model model;
    core::SystemConfig config;
  };

  ServiceTimeOracle(std::vector<Tenant> tenants, accel::Architecture arch);

  /// Service profile of one batch of `batch` requests on `tenant`
  /// (simulating on first use, cached thereafter). The reference stays
  /// valid for the oracle's lifetime.
  [[nodiscard]] const core::RunResult& batch_run(std::size_t tenant,
                                                 unsigned batch);

  [[nodiscard]] accel::Architecture arch() const { return arch_; }
  [[nodiscard]] std::size_t tenant_count() const { return tenants_.size(); }
  /// Lookups served from the cache / simulated fresh, across all tenants.
  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }

 private:
  std::vector<Tenant> tenants_;
  accel::Architecture arch_;
  std::map<std::pair<std::size_t, unsigned>, core::RunResult> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace optiplet::serve
