#include "serve/arrivals.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace optiplet::serve {

std::vector<double> poisson_arrivals(double rate_rps, std::uint64_t count,
                                     std::uint64_t seed) {
  OPTIPLET_REQUIRE(rate_rps > 0.0, "arrival rate must be positive");
  util::Xoshiro256 rng(seed);
  std::vector<double> arrivals;
  arrivals.reserve(count);
  double t = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    t += rng.next_exponential(1.0 / rate_rps);
    arrivals.push_back(t);
  }
  return arrivals;
}

namespace {

/// Strict non-negative integer parse for trace token columns.
std::uint32_t parse_token_count(const std::string& text) {
  unsigned long value = 0;
  std::size_t used = 0;
  try {
    value = std::stoul(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty() || value > 0xffffffffUL) {
    throw std::invalid_argument("bad token count in trace: \"" + text +
                                "\"");
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

std::vector<TraceEvent> load_arrival_trace(const std::string& path) {
  const auto doc = util::read_csv_file(path);
  if (!doc) {
    throw std::invalid_argument("cannot read arrival trace: " + path);
  }
  const auto time_col = doc->column("arrival_s");
  if (!time_col) {
    throw std::invalid_argument("arrival trace missing arrival_s column: " +
                                path);
  }
  const auto tenant_col = doc->column("tenant");
  const auto prefill_col = doc->column("prefill_tokens");
  const auto decode_col = doc->column("decode_tokens");
  if (prefill_col.has_value() != decode_col.has_value()) {
    throw std::invalid_argument(
        "arrival trace must carry both prefill_tokens and decode_tokens "
        "or neither: " +
        path);
  }
  std::vector<TraceEvent> events;
  events.reserve(doc->rows.size());
  for (const auto& row : doc->rows) {
    if (row.size() <= *time_col) {
      throw std::invalid_argument("short row in arrival trace: " + path);
    }
    TraceEvent e;
    try {
      std::size_t used = 0;
      e.arrival_s = std::stod(row[*time_col], &used);
      if (used != row[*time_col].size()) {
        throw std::invalid_argument("trailing characters");
      }
    } catch (const std::exception&) {
      throw std::invalid_argument("bad arrival_s value in trace: \"" +
                                  row[*time_col] + "\"");
    }
    if (e.arrival_s < 0.0) {
      throw std::invalid_argument("negative arrival_s in trace: " + path);
    }
    if (tenant_col && row.size() > *tenant_col) {
      e.tenant = row[*tenant_col];
    }
    if (prefill_col) {
      if (row.size() <= *prefill_col || row.size() <= *decode_col) {
        throw std::invalid_argument("short row in arrival trace: " + path);
      }
      e.shape.prefill_tokens = parse_token_count(row[*prefill_col]);
      e.shape.decode_tokens = parse_token_count(row[*decode_col]);
      if (e.shape.decode_tokens > 0 && e.shape.prefill_tokens == 0) {
        throw std::invalid_argument(
            "trace row generates tokens from an empty prompt: " + path);
      }
    }
    events.push_back(std::move(e));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  return events;
}

std::vector<double> trace_arrivals_for(const std::vector<TraceEvent>& events,
                                       const std::string& tenant) {
  std::vector<double> arrivals;
  for (const auto& e : events) {
    if (e.tenant.empty() || e.tenant == tenant) {
      arrivals.push_back(e.arrival_s);
    }
  }
  return arrivals;
}

std::vector<RequestShape> trace_shapes_for(
    const std::vector<TraceEvent>& events, const std::string& tenant) {
  std::vector<RequestShape> shapes;
  for (const auto& e : events) {
    if (e.tenant.empty() || e.tenant == tenant) {
      shapes.push_back(e.shape);
    }
  }
  return shapes;
}

}  // namespace optiplet::serve
