#include "serve/service_time.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace optiplet::serve {

ServiceTimeOracle::ServiceTimeOracle(std::vector<Tenant> tenants,
                                     accel::Architecture arch)
    : tenants_(std::move(tenants)), arch_(arch) {
  OPTIPLET_REQUIRE(!tenants_.empty(), "oracle needs at least one tenant");
}

LayerSchedule ServiceTimeOracle::build_schedule(const core::RunResult& run) {
  LayerSchedule schedule;
  schedule.total_latency_s = run.latency_s;
  schedule.total_energy_j = run.energy_j;

  double layer_sum = 0.0;
  for (const auto& lr : run.layers) {
    layer_sum += lr.total_s;
  }
  // A run without a usable per-layer breakdown has no layer boundaries to
  // pipeline on; fabricating a whole-batch stage would pin it to one
  // arbitrary chiplet group. Fail loud — such runs must serve
  // batch-granular.
  OPTIPLET_REQUIRE(!run.layers.empty() && layer_sum > 0.0,
                   "layer schedule needs a per-layer breakdown: " +
                       run.model_name);
  for (const auto& lr : run.layers) {
    LayerSegment segment;
    segment.layer_index = lr.layer_index;
    segment.group = lr.group;
    segment.latency_s = lr.total_s;
    // Energy is apportioned by layer time; any run-level residual (e.g.
    // the monolithic die's I/O epilogue) lands in the last stage via the
    // end-offset pin below.
    segment.energy_j = run.energy_j * (lr.total_s / layer_sum);
    schedule.layers.push_back(segment);
  }

  // Stages: maximal runs of consecutive layers on one chiplet group.
  for (std::size_t i = 0; i < schedule.layers.size(); ++i) {
    const LayerSegment& segment = schedule.layers[i];
    if (schedule.stages.empty() ||
        schedule.stages.back().group != segment.group) {
      PipelineStage stage;
      stage.group = segment.group;
      stage.first_layer = i;
      schedule.stages.push_back(stage);
    }
    PipelineStage& stage = schedule.stages.back();
    stage.layer_count += 1;
    stage.latency_s += segment.latency_s;
    stage.energy_j += segment.energy_j;
  }
  double offset = 0.0;
  for (PipelineStage& stage : schedule.stages) {
    stage.start_offset_s = offset;
    offset += stage.latency_s;
    stage.end_offset_s = offset;
  }
  // Pin the chain's end to the run latency exactly: an unstalled stage
  // chain must complete at batch_start + latency_s bit-for-bit.
  schedule.stages.back().end_offset_s = run.latency_s;
  return schedule;
}

const LayerSchedule& ServiceTimeOracle::layer_schedule(std::size_t tenant,
                                                       unsigned batch) {
  const auto key = std::make_pair(tenant, batch);
  if (const auto it = schedules_.find(key); it != schedules_.end()) {
    return it->second;
  }
  return schedules_.emplace(key, build_schedule(batch_run(tenant, batch)))
      .first->second;
}

const core::RunResult& ServiceTimeOracle::batch_run(std::size_t tenant,
                                                    unsigned batch) {
  OPTIPLET_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  OPTIPLET_REQUIRE(batch >= 1, "batch must be >= 1");
  const auto key = std::make_pair(tenant, batch);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  core::SystemConfig config = tenants_[tenant].config;
  config.batch_size = batch;
  const core::SystemSimulator simulator(config);
  return cache_.emplace(key, simulator.run(tenants_[tenant].model, arch_))
      .first->second;
}

std::uint32_t ServiceTimeOracle::kv_bucket(std::size_t tenant,
                                           std::uint32_t kv_tokens) const {
  OPTIPLET_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  const auto& spec = tenants_[tenant].transformer;
  OPTIPLET_REQUIRE(spec.has_value(),
                   "kv_bucket on a fixed-shape tenant: " +
                       tenants_[tenant].model.name());
  constexpr std::uint32_t kBucket = 64;
  const std::uint64_t rounded =
      (static_cast<std::uint64_t>(kv_tokens) + kBucket - 1) / kBucket *
      kBucket;
  // The decode graph prices 1 fresh token over `kv` past ones, so the
  // bucket must leave room for the fresh token in the context window.
  const std::uint64_t cap = spec->max_context - 1;
  return static_cast<std::uint32_t>(std::min(rounded, cap));
}

const std::optional<dnn::TransformerSpec>& ServiceTimeOracle::transformer(
    std::size_t tenant) const {
  OPTIPLET_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  return tenants_[tenant].transformer;
}

const core::RunResult& ServiceTimeOracle::phase_run(std::size_t tenant,
                                                    int phase, unsigned batch,
                                                    std::uint32_t tokens) {
  OPTIPLET_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  OPTIPLET_REQUIRE(batch >= 1, "batch must be >= 1");
  const auto& spec = tenants_[tenant].transformer;
  OPTIPLET_REQUIRE(spec.has_value(),
                   "phase pricing on a fixed-shape tenant: " +
                       tenants_[tenant].model.name());
  const PhaseKey key{tenant, phase, batch, tokens};
  if (const auto it = phase_cache_.find(key); it != phase_cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const dnn::Model model = phase == 0
                               ? dnn::make_prefill_graph(*spec, tokens)
                               : dnn::make_decode_graph(*spec, tokens);
  core::SystemConfig config = tenants_[tenant].config;
  config.batch_size = batch;
  const core::SystemSimulator simulator(config);
  return phase_cache_.emplace(key, simulator.run(model, arch_))
      .first->second;
}

const core::RunResult& ServiceTimeOracle::prefill_run(std::size_t tenant,
                                                      unsigned batch,
                                                      std::uint32_t tokens) {
  OPTIPLET_REQUIRE(tokens >= 1, "prefill needs at least one token");
  return phase_run(tenant, 0, batch, tokens);
}

const core::RunResult& ServiceTimeOracle::decode_run(
    std::size_t tenant, unsigned batch, std::uint32_t kv_tokens) {
  return phase_run(tenant, 1, batch, kv_bucket(tenant, kv_tokens));
}

const LayerSchedule& ServiceTimeOracle::prefill_schedule(
    std::size_t tenant, unsigned batch, std::uint32_t tokens) {
  const PhaseKey key{tenant, 0, batch, tokens};
  if (const auto it = phase_schedules_.find(key);
      it != phase_schedules_.end()) {
    return it->second;
  }
  return phase_schedules_
      .emplace(key, build_schedule(prefill_run(tenant, batch, tokens)))
      .first->second;
}

const LayerSchedule& ServiceTimeOracle::decode_schedule(
    std::size_t tenant, unsigned batch, std::uint32_t kv_tokens) {
  const std::uint32_t bucket = kv_bucket(tenant, kv_tokens);
  const PhaseKey key{tenant, 1, batch, bucket};
  if (const auto it = phase_schedules_.find(key);
      it != phase_schedules_.end()) {
    return it->second;
  }
  return phase_schedules_
      .emplace(key, build_schedule(decode_run(tenant, batch, bucket)))
      .first->second;
}

}  // namespace optiplet::serve
