#include "serve/service_time.hpp"

#include "util/require.hpp"

namespace optiplet::serve {

ServiceTimeOracle::ServiceTimeOracle(std::vector<Tenant> tenants,
                                     accel::Architecture arch)
    : tenants_(std::move(tenants)), arch_(arch) {
  OPTIPLET_REQUIRE(!tenants_.empty(), "oracle needs at least one tenant");
}

const core::RunResult& ServiceTimeOracle::batch_run(std::size_t tenant,
                                                    unsigned batch) {
  OPTIPLET_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  OPTIPLET_REQUIRE(batch >= 1, "batch must be >= 1");
  const auto key = std::make_pair(tenant, batch);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  core::SystemConfig config = tenants_[tenant].config;
  config.batch_size = batch;
  const core::SystemSimulator simulator(config);
  return cache_.emplace(key, simulator.run(tenants_[tenant].model, arch_))
      .first->second;
}

}  // namespace optiplet::serve
