#include "serve/service_time.hpp"

#include "util/require.hpp"

namespace optiplet::serve {

ServiceTimeOracle::ServiceTimeOracle(std::vector<Tenant> tenants,
                                     accel::Architecture arch)
    : tenants_(std::move(tenants)), arch_(arch) {
  OPTIPLET_REQUIRE(!tenants_.empty(), "oracle needs at least one tenant");
}

const LayerSchedule& ServiceTimeOracle::layer_schedule(std::size_t tenant,
                                                       unsigned batch) {
  const auto key = std::make_pair(tenant, batch);
  if (const auto it = schedules_.find(key); it != schedules_.end()) {
    return it->second;
  }
  const core::RunResult& run = batch_run(tenant, batch);

  LayerSchedule schedule;
  schedule.total_latency_s = run.latency_s;
  schedule.total_energy_j = run.energy_j;

  double layer_sum = 0.0;
  for (const auto& lr : run.layers) {
    layer_sum += lr.total_s;
  }
  // A run without a usable per-layer breakdown has no layer boundaries to
  // pipeline on; fabricating a whole-batch stage would pin it to one
  // arbitrary chiplet group. Fail loud — such runs must serve
  // batch-granular.
  OPTIPLET_REQUIRE(!run.layers.empty() && layer_sum > 0.0,
                   "layer schedule needs a per-layer breakdown: " +
                       run.model_name);
  for (const auto& lr : run.layers) {
    LayerSegment segment;
    segment.layer_index = lr.layer_index;
    segment.group = lr.group;
    segment.latency_s = lr.total_s;
    // Energy is apportioned by layer time; any run-level residual (e.g.
    // the monolithic die's I/O epilogue) lands in the last stage via the
    // end-offset pin below.
    segment.energy_j = run.energy_j * (lr.total_s / layer_sum);
    schedule.layers.push_back(segment);
  }

  // Stages: maximal runs of consecutive layers on one chiplet group.
  for (std::size_t i = 0; i < schedule.layers.size(); ++i) {
    const LayerSegment& segment = schedule.layers[i];
    if (schedule.stages.empty() ||
        schedule.stages.back().group != segment.group) {
      PipelineStage stage;
      stage.group = segment.group;
      stage.first_layer = i;
      schedule.stages.push_back(stage);
    }
    PipelineStage& stage = schedule.stages.back();
    stage.layer_count += 1;
    stage.latency_s += segment.latency_s;
    stage.energy_j += segment.energy_j;
  }
  double offset = 0.0;
  for (PipelineStage& stage : schedule.stages) {
    stage.start_offset_s = offset;
    offset += stage.latency_s;
    stage.end_offset_s = offset;
  }
  // Pin the chain's end to the run latency exactly: an unstalled stage
  // chain must complete at batch_start + latency_s bit-for-bit.
  schedule.stages.back().end_offset_s = run.latency_s;
  return schedules_.emplace(key, std::move(schedule)).first->second;
}

const core::RunResult& ServiceTimeOracle::batch_run(std::size_t tenant,
                                                    unsigned batch) {
  OPTIPLET_REQUIRE(tenant < tenants_.size(), "unknown tenant index");
  OPTIPLET_REQUIRE(batch >= 1, "batch must be >= 1");
  const auto key = std::make_pair(tenant, batch);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  core::SystemConfig config = tenants_[tenant].config;
  config.batch_size = batch;
  const core::SystemSimulator simulator(config);
  return cache_.emplace(key, simulator.run(tenants_[tenant].model, arch_))
      .first->second;
}

}  // namespace optiplet::serve
