#pragma once
/// \file colocation.hpp
/// Chiplet-pool partitioning for multi-model co-location.
///
/// Concurrently resident models split the Table-1 compute pool at chiplet
/// granularity. For each MAC-kind group the scheduler looks at which
/// tenants actually need the kind (from the model's layer affinities):
///
///   * enough chiplets for every needing tenant -> the group is split into
///     disjoint *owned* slices (everyone gets at least one; the remainder
///     goes by tenant weight, largest remainder first);
///   * more needing tenants than chiplets (e.g. the single 7x7 chiplet
///     under two ResNet-class tenants) -> the whole group becomes a
///     *shared-serial* resource: batches that touch it hold an exclusive
///     lock for their service time, so the chiplets are never double-booked.
///
/// Each tenant's effective platform (owned slices + shared groups it
/// needs) is what the service-time oracle simulates; kinds the model never
/// uses are simply absent from the tenant's spec.

#include <cstddef>
#include <utility>
#include <vector>

#include "accel/platform.hpp"
#include "dnn/workload.hpp"

namespace optiplet::serve {

/// One tenant's resource demand: which MAC kinds its model exercises, and
/// its share weight for splitting contended groups.
struct TenantDemand {
  std::vector<accel::MacKind> needed_kinds;
  double weight = 1.0;
};

/// MAC kinds `workload` exercises, in first-use order.
[[nodiscard]] std::vector<accel::MacKind> needed_kinds(
    const dnn::Workload& workload);

/// One tenant's slice of the pool.
struct TenantPartition {
  /// Pool-global chiplet ids this tenant owns exclusively.
  std::vector<std::size_t> owned_chiplets;
  /// The owned ids broken out per MAC kind (first-use order) — the
  /// resource granularity the layer-granular serving engine locks at.
  std::vector<std::pair<accel::MacKind, std::vector<std::size_t>>>
      owned_by_kind;
  /// Shared-serial kinds this tenant's batches must lock.
  std::vector<accel::MacKind> shared_kinds;
  /// Owned groups + needed shared groups: the PlatformSpec the tenant's
  /// service-time oracle runs against.
  accel::PlatformSpec platform;
};

/// The whole pool split: per-tenant partitions plus the shared-serial pool.
struct ColocationPlan {
  std::vector<TenantPartition> tenants;
  /// Pool-global ids of every shared-serial chiplet.
  std::vector<std::size_t> shared_chiplets;
  /// Active power [W] of each pool chiplet, indexed by pool-global id
  /// (for idle-power accounting in the serving ledger).
  std::vector<double> chiplet_active_power_w;

  /// Chiplets a batch of `tenant` occupies: its owned set, plus the shared
  /// pool when the tenant has shared kinds.
  [[nodiscard]] std::vector<std::size_t> occupancy(std::size_t tenant) const;
};

/// Partition `pool` among `demands` (tenant order is preserved and ties
/// break toward earlier tenants, so the plan is deterministic). Throws
/// std::invalid_argument when a tenant needs a kind the pool lacks.
[[nodiscard]] ColocationPlan partition_pool(
    const accel::PlatformSpec& pool, const std::vector<TenantDemand>& demands,
    const power::TechParams& tech);

}  // namespace optiplet::serve
