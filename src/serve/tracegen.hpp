#pragma once
/// \file tracegen.hpp
/// Synthetic arrival-trace generation for the serving simulator.
///
/// Three load shapes, all seeded and deterministic, all emitted in the
/// exact CSV format (`arrival_s[,tenant]`) the replayer in arrivals.hpp
/// consumes — the interchange contract documented in
/// docs/serving-model.md:
///   * **diurnal** — a non-homogeneous Poisson process whose rate follows
///     a sinusoid, `base * (1 + amplitude * sin(2*pi*t / period))`: the
///     day/night swing of interactive traffic, compressed to simulation
///     time;
///   * **bursts** — a homogeneous Poisson floor with Poisson-seeded burst
///     episodes (exponential gaps and lengths) during which the rate
///     multiplies: flash crowds over steady background load;
///   * **mmpp** — a two-state Markov-modulated Poisson process
///     alternating exponential on/off sojourns at two rates: the
///     classical bursty-traffic model (starts in the on state).
///
/// Generation is by thinning against the profile's peak rate, so every
/// profile is an exact non-homogeneous Poisson sample. When tenant
/// labels are given, each event is assigned one uniformly at random
/// (seeded), so a multi-tenant mix replays with per-tenant streams.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/arrivals.hpp"

namespace optiplet::serve {

/// Which synthetic load shape to generate.
enum class TraceProfile { kDiurnal, kBursts, kMmpp };

[[nodiscard]] constexpr const char* to_string(TraceProfile p) {
  switch (p) {
    case TraceProfile::kDiurnal:
      return "diurnal";
    case TraceProfile::kBursts:
      return "bursts";
    case TraceProfile::kMmpp:
      return "mmpp";
  }
  return "?";
}

/// Accepts "diurnal"/"sinusoid", "bursts"/"burst", "mmpp"/"onoff".
[[nodiscard]] std::optional<TraceProfile> trace_profile_from_string(
    std::string_view name);

/// One fully-resolved trace-generation experiment. Fields defaulted to
/// <= 0 derive from `duration_s`/`base_rps` (see each comment), so the
/// common case only sets profile, rate, duration, and seed.
struct TraceGenSpec {
  TraceProfile profile = TraceProfile::kDiurnal;
  /// Mean (diurnal), floor (bursts), or reference (mmpp defaults) rate
  /// [requests/s]; must be positive.
  double base_rps = 1000.0;
  /// Trace length [s]; events land in [0, duration_s).
  double duration_s = 1.0;
  std::uint64_t seed = 42;
  /// Tenant labels assigned uniformly at random per event; empty emits
  /// unlabeled rows (which feed every tenant on replay).
  std::vector<std::string> tenants;

  // --- token geometry (autoregressive tenants) ---
  /// Mean prompt length [tokens]. Zero (the default) emits fixed-shape
  /// events and keeps the CSV schema byte-identical to the pre-token
  /// format (no token columns, no extra RNG draws).
  std::uint32_t prefill_tokens = 0;
  /// Mean generated-token count; requires prefill_tokens > 0 when set.
  std::uint32_t decode_tokens = 0;
  /// Relative half-width of the per-event uniform token draw in [0, 1):
  /// lengths land in mean*(1 ± spread). Zero emits the exact means.
  double token_spread = 0.0;

  // --- diurnal ---
  /// Sinusoid period [s]; <= 0 derives one full cycle over duration_s.
  double period_s = 0.0;
  /// Relative swing around base_rps, in [0, 1].
  double amplitude = 0.8;

  // --- bursts ---
  /// Rate multiplier inside a burst episode (>= 1).
  double burst_multiplier = 8.0;
  /// Mean gap between burst starts [s]; <= 0 derives duration_s / 10.
  double burst_gap_s = 0.0;
  /// Mean burst length [s]; <= 0 derives duration_s / 50.
  double burst_len_s = 0.0;

  // --- mmpp ---
  /// On-state rate [requests/s]; < 0 derives 2 * base_rps (exactly 0 is
  /// honored: arrivals only during off sojourns).
  double on_rps = -1.0;
  /// Off-state rate [requests/s]; < 0 derives base_rps / 10 (exactly 0 is
  /// honored: fully silent off periods).
  double off_rps = -1.0;
  /// Mean on / off sojourn [s]; <= 0 derives duration_s / 10 each.
  double on_s = 0.0;
  double off_s = 0.0;
};

/// Generate the trace: events sorted by arrival time, all in
/// [0, duration_s). Same spec -> identical events, bit-for-bit. Throws
/// std::invalid_argument on out-of-range knobs.
[[nodiscard]] std::vector<TraceEvent> generate_trace(
    const TraceGenSpec& spec);

/// Write `events` in the replayer's CSV format: header `arrival_s` plus a
/// `tenant` column when any event is labeled and a
/// `prefill_tokens`/`decode_tokens` pair when any event is
/// variable-length; times at 17 significant digits so
/// load_arrival_trace() round-trips them bit-exactly. Returns false when
/// the file cannot be opened.
[[nodiscard]] bool write_arrival_trace(const std::string& path,
                                       const std::vector<TraceEvent>& events);

}  // namespace optiplet::serve
