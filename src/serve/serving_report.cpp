#include "serve/serving_report.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace optiplet::serve {

double exact_quantile(std::vector<double> values, double q) {
  OPTIPLET_REQUIRE(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
  if (values.empty()) {
    return 0.0;
  }
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  const std::size_t index = std::min(values.size(), std::max<std::size_t>(
                                                        rank, 1)) -
                            1;
  std::nth_element(values.begin(), values.begin() + index, values.end());
  return values[index];
}

}  // namespace optiplet::serve
