#include "serve/batching.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace optiplet::serve {

BatchQueue::BatchQueue(const BatchingConfig& config) : config_(config) {
  OPTIPLET_REQUIRE(config.max_batch >= 1, "max_batch must be >= 1");
  OPTIPLET_REQUIRE(config.max_wait_s >= 0.0, "max_wait_s must be >= 0");
}

bool BatchQueue::ready(double now, bool arrivals_done) const {
  if (queue_.empty()) {
    return false;
  }
  if (arrivals_done) {
    return true;  // end-of-stream flush, every policy
  }
  switch (config_.policy) {
    case BatchPolicy::kNone:
    case BatchPolicy::kContinuous:
      // Continuous batching admits from the queue at token boundaries;
      // the queue itself is ready whenever it holds a request (and a
      // fixed-shape tenant under kContinuous degrades to kNone).
      return true;
    case BatchPolicy::kFixedSize:
      return queue_.size() >= config_.max_batch;
    case BatchPolicy::kDeadline:
      // Written as `now >= arrival + wait` — the exact expression
      // next_deadline() returns — so the dispatch timer's firing time
      // satisfies it bit-for-bit (a - b >= w can round short of w).
      return queue_.size() >= config_.max_batch ||
             now >= queue_.front().arrival_s + config_.max_wait_s;
  }
  return false;
}

std::optional<double> BatchQueue::next_deadline() const {
  if (config_.policy != BatchPolicy::kDeadline || queue_.empty()) {
    return std::nullopt;
  }
  return queue_.front().arrival_s + config_.max_wait_s;
}

std::size_t BatchQueue::batch_size(bool arrivals_done) const {
  const std::size_t cap = config_.policy == BatchPolicy::kNone ||
                                  config_.policy == BatchPolicy::kContinuous
                              ? 1
                              : config_.max_batch;
  if (arrivals_done) {
    return std::min(queue_.size(), cap);
  }
  switch (config_.policy) {
    case BatchPolicy::kNone:
    case BatchPolicy::kContinuous:
      return 1;
    case BatchPolicy::kFixedSize:
      return config_.max_batch;
    case BatchPolicy::kDeadline:
      return std::min(queue_.size(), cap);
  }
  return 1;
}

std::vector<Request> BatchQueue::take(bool arrivals_done) {
  const std::size_t n = batch_size(arrivals_done);
  OPTIPLET_REQUIRE(n >= 1 && n <= queue_.size(),
                   "take() called on a queue that is not ready");
  std::vector<Request> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    batch.push_back(queue_.front());
    queue_.pop_front();
  }
  return batch;
}

}  // namespace optiplet::serve
