#pragma once
/// \file serving_simulator.hpp
/// Discrete-event request-level serving simulator.
///
/// The simulator closes the loop the ROADMAP asks for: instead of scoring
/// one inference, it serves an open-loop request stream against the 2.5D
/// SiPh platform. It runs on sim::EventQueue and uses core::SystemSimulator
/// (through the memoized serve::ServiceTimeOracle) as its service-time
/// oracle, so both fidelities — analytical and cycle-accurate — serve
/// transparently.
///
/// Mechanics per tenant:
///   * arrivals — seeded Poisson, a replayed CSV trace, or a closed-loop
///     client pool (ArrivalSource::kClosedLoop: N users that think for an
///     exponential time and reissue only after their response returns) —
///     feed a serve::BatchQueue running one of three policies;
///   * AdmissionPolicy::kSlaShed rejects an arrival at enqueue time when
///     a ServiceTimeOracle-based backlog estimate predicts its completion
///     past the tenant's SLA deadline (shed requests are counted, never
///     executed, and — closed loop — return to their user immediately);
///   * contended shared resources grant priority-class first (lower class
///     wins, FIFO within a class);
///   * the tenant's executor is its chiplet partition
///     (serve::partition_pool): one batch in flight at a time, service
///     time = the oracle's batched full-system run (weights amortized,
///     activations scaled);
///   * shared-serial chiplet groups (kinds too scarce to split) are an
///     exclusive FIFO-granted lock, so no chiplet is ever double-booked;
///   * ReSiPI reconfigurations of different tenants on the shared
///     interposer are serialized: a batch that reconfigures gateways waits
///     for any other tenant's in-flight reconfiguration window.
///
/// PipelineMode::kLayerGranular replaces the single batch-completion event
/// with a layer-advance event chain (SET-style inter-layer pipelining):
///   * a batch advances through the oracle's LayerSchedule stages, holding
///     only the chiplet group of its current stage, so layer k of batch i
///     overlaps layer k+1 of batch i-1 within a tenant (up to the model's
///     distinct-group pipeline depth) and co-resident tenants overlap on
///     disjoint groups;
///   * scarce shared-serial groups are handed off between tenants at layer
///     boundaries instead of locking for a whole batch; each cross-tenant
///     handoff charges a ReSiPI retuning window (one PCM write time) that
///     serializes on the shared interposer like any other reconfiguration.
///
/// Transformer tenants (TenantSetup::prefill_tokens > 0, or a trace with
/// token columns) serve variable-length requests priced per phase through
/// the oracle: a MAC-bound prefill over the prompt (batch-amortized like
/// any fixed-shape batch) followed by one bandwidth-bound decode step per
/// generated token, each re-streaming the weights and reading the growing
/// KV cache. The per-tenant KV budget (kv_cache_mb) bounds the token
/// footprint reserved by in-flight requests — the activation-buffer
/// constraint that caps concurrent decode slots. Static policies batch
/// with padding semantics (the batch prefills at the longest prompt and
/// decodes for the longest generation); BatchPolicy::kContinuous replaces
/// whole-batch dispatch with iteration-level scheduling — requests join
/// and leave the running decode batch at token boundaries, and waiting
/// prefills are admitted into the bubbles completions free. Transformer
/// compute is dense-affine throughout, so its stage chain collapses to a
/// single kDense100 stage and layer-granular mode serves these tenants
/// batch-granular (through the same shared-group locks).
///
/// The report carries throughput, utilization, p50/p95/p99 latency,
/// SLA-violation rate, and energy per request (batch energies plus the
/// pool's idle static burn) through power::EnergyLedger.

#include <cstdint>
#include <string>
#include <vector>

#include "accel/platform.hpp"
#include "core/system_config.hpp"
#include "serve/batching.hpp"
#include "serve/colocation.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_report.hpp"
#include "serve/serving_spec.hpp"

namespace optiplet::obs {
class Recorder;
}  // namespace optiplet::obs

namespace optiplet::serve {

/// One resident model and its traffic.
struct TenantSetup {
  std::string name;   ///< defaults to the model name when empty
  std::string model;  ///< Table-2 name (dnn::zoo)
  /// Poisson arrival rate [requests/s]; used when `trace_arrivals` is
  /// empty.
  double arrival_rps = 100.0;
  /// Arrivals to generate for the Poisson process — or, closed-loop, the
  /// total request issue budget across the tenant's users.
  std::uint64_t requests = 1000;
  /// Seed of this tenant's arrival process (closed-loop: its think-time
  /// draws).
  std::uint64_t seed = 42;
  /// Replay mode: `trace_arrivals` is the tenant's entire arrival stream
  /// (authoritative even when empty — a tenant absent from the trace
  /// serves nothing; it never falls back to the Poisson process).
  bool replay_trace = false;
  std::vector<double> trace_arrivals;
  /// Open-loop (Poisson/trace) or closed-loop (client pool). kClosedLoop
  /// is incompatible with `replay_trace` and ignores `arrival_rps`.
  ArrivalSource source = ArrivalSource::kOpenLoop;
  /// kClosedLoop: concurrent users; each issues, waits for its response
  /// (or shed notice), thinks, and reissues until `requests` is spent.
  unsigned users = 16;
  /// kClosedLoop: mean exponential think time [s].
  double think_s = 10.0e-3;
  BatchingConfig batching;
  /// Mean token geometry for transformer tenants (0 = fixed-shape; the
  /// only valid setting for CNN tenants). When positive, every request
  /// carries a RequestShape and is priced per phase: a MAC-bound prefill
  /// plus `decode_tokens` bandwidth-bound decode steps.
  std::uint32_t prefill_tokens = 0;
  std::uint32_t decode_tokens = 0;
  /// Relative half-width of the per-request uniform token draw in [0, 1);
  /// 0 = every request exactly the mean.
  double token_spread = 0.0;
  /// Per-tenant KV-cache (activation-buffer) budget [MiB]: bounds the
  /// token footprint resident in the tenant's decode working set, which
  /// caps its concurrent decode slots.
  double kv_cache_mb = 256.0;
  /// Replay mode: per-request shapes aligned with `trace_arrivals`
  /// (empty = draw from the means above).
  std::vector<RequestShape> trace_shapes;
  /// Admit-all or SLA-aware shedding at enqueue time.
  AdmissionPolicy admission = AdmissionPolicy::kAdmitAll;
  /// Priority class (lower = more important): orders grants of the
  /// shared-serial pool and of layer-mode shared-group handoffs.
  unsigned priority = 0;
  /// Latency SLA [s]; <= 0 derives 10x the tenant's batch-1 service time.
  double sla_s = 0.0;
  /// Share weight for splitting contended chiplet groups.
  double weight = 1.0;
};

struct ServingConfig {
  /// Base system (Table 1 by default); fidelity and photonic shape are
  /// honored, batch_size is overridden per dispatched batch.
  core::SystemConfig system;
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  std::vector<TenantSetup> tenants;
  /// Batch-granular (blocked, the validated baseline) or layer-granular
  /// (SET-style pipelined) execution — see the header comment.
  PipelineMode pipeline = PipelineMode::kBatchGranular;
  /// Record the per-batch (per-stage, in layer-granular mode) execution
  /// trace (occupancy, reconfiguration windows) into the report — for
  /// tests; costs memory on long runs.
  bool record_batches = false;
  /// Runtime-elasticity policy: EMA-driven re-partitioning, idle
  /// power-gating, fault injection, and client retry (see elastic.hpp).
  /// The default is inert — bit-identical to the static run.
  ElasticSpec elastic;
  /// Observability sink (request-lifecycle trace spans + metric
  /// snapshots). Null disables observability at near-zero cost; attaching
  /// a recorder never changes the simulation's results. Not owned; must
  /// outlive simulate(). See obs/recorder.hpp for the threading contract.
  obs::Recorder* recorder = nullptr;
};

/// The co-location wiring simulate() runs on, exposed so benches and
/// tools can anchor capacity numbers against the *exact* partitions the
/// simulator serves: models resolved by name, the pool split by MAC-kind
/// demand, and one oracle tenant per model with its partitioned platform
/// applied (monolithic: every tenant on the shared die).
struct ColocatedSetup {
  std::vector<dnn::Model> models;
  ColocationPlan plan;
  std::vector<ServiceTimeOracle::Tenant> oracle_tenants;
};

/// Resolve `model_names` against the system's pool. `weights` sets the
/// contended-group split shares (empty = all 1.0).
[[nodiscard]] ColocatedSetup make_colocated_setup(
    const core::SystemConfig& system, accel::Architecture arch,
    const std::vector<std::string>& model_names,
    const std::vector<double>& weights = {});

/// Run one serving simulation to completion (all arrivals served).
[[nodiscard]] ServingReport simulate(const ServingConfig& config);

/// Resolve a sweepable ServingSpec against a base system configuration:
/// tenants from the mix (equal load/request split, per-tenant seeds
/// seed+i), the spec's batching policy on every tenant, and the trace
/// loaded/partitioned when `trace_path` is set.
[[nodiscard]] ServingConfig make_serving_config(
    const core::SystemConfig& base, accel::Architecture arch,
    const ServingSpec& spec);

}  // namespace optiplet::serve
