#pragma once
/// \file serving_simulator.hpp
/// Discrete-event request-level serving simulator.
///
/// The simulator closes the loop the ROADMAP asks for: instead of scoring
/// one inference, it serves an open-loop request stream against the 2.5D
/// SiPh platform. It runs on sim::EventQueue and uses core::SystemSimulator
/// (through the memoized serve::ServiceTimeOracle) as its service-time
/// oracle, so both fidelities — analytical and cycle-accurate — serve
/// transparently.
///
/// Mechanics per tenant:
///   * arrivals (seeded Poisson or a replayed CSV trace) feed a
///     serve::BatchQueue running one of three policies;
///   * the tenant's executor is its chiplet partition
///     (serve::partition_pool): one batch in flight at a time, service
///     time = the oracle's batched full-system run (weights amortized,
///     activations scaled);
///   * shared-serial chiplet groups (kinds too scarce to split) are an
///     exclusive FIFO-granted lock, so no chiplet is ever double-booked;
///   * ReSiPI reconfigurations of different tenants on the shared
///     interposer are serialized: a batch that reconfigures gateways waits
///     for any other tenant's in-flight reconfiguration window.
///
/// The report carries throughput, utilization, p50/p95/p99 latency,
/// SLA-violation rate, and energy per request (batch energies plus the
/// pool's idle static burn) through power::EnergyLedger.

#include <cstdint>
#include <string>
#include <vector>

#include "accel/platform.hpp"
#include "core/system_config.hpp"
#include "serve/batching.hpp"
#include "serve/serving_report.hpp"
#include "serve/serving_spec.hpp"

namespace optiplet::serve {

/// One resident model and its traffic.
struct TenantSetup {
  std::string name;   ///< defaults to the model name when empty
  std::string model;  ///< Table-2 name (dnn::zoo)
  /// Poisson arrival rate [requests/s]; used when `trace_arrivals` is
  /// empty.
  double arrival_rps = 100.0;
  /// Arrivals to generate for the Poisson process.
  std::uint64_t requests = 1000;
  /// Seed of this tenant's arrival process.
  std::uint64_t seed = 42;
  /// Replay mode: `trace_arrivals` is the tenant's entire arrival stream
  /// (authoritative even when empty — a tenant absent from the trace
  /// serves nothing; it never falls back to the Poisson process).
  bool replay_trace = false;
  std::vector<double> trace_arrivals;
  BatchingConfig batching;
  /// Latency SLA [s]; <= 0 derives 10x the tenant's batch-1 service time.
  double sla_s = 0.0;
  /// Share weight for splitting contended chiplet groups.
  double weight = 1.0;
};

struct ServingConfig {
  /// Base system (Table 1 by default); fidelity and photonic shape are
  /// honored, batch_size is overridden per dispatched batch.
  core::SystemConfig system;
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  std::vector<TenantSetup> tenants;
  /// Record the per-batch execution trace (occupancy, reconfiguration
  /// windows) into the report — for tests; costs memory on long runs.
  bool record_batches = false;
};

/// Run one serving simulation to completion (all arrivals served).
[[nodiscard]] ServingReport simulate(const ServingConfig& config);

/// Resolve a sweepable ServingSpec against a base system configuration:
/// tenants from the mix (equal load/request split, per-tenant seeds
/// seed+i), the spec's batching policy on every tenant, and the trace
/// loaded/partitioned when `trace_path` is set.
[[nodiscard]] ServingConfig make_serving_config(
    const core::SystemConfig& base, accel::Architecture arch,
    const ServingSpec& spec);

}  // namespace optiplet::serve
