#pragma once
/// \file serving_report.hpp
/// Result types of a serving simulation: per-tenant and aggregate
/// tail-latency/throughput/energy metrics, plus the optional per-batch
/// execution trace the co-location invariant tests consume.

#include <cstdint>
#include <string>
#include <vector>

#include "power/energy_ledger.hpp"

namespace optiplet::serve {

/// Compact aggregate metrics — the engine/CSV face of a serving run.
struct ServingMetrics {
  std::uint64_t offered = 0;    ///< requests that arrived
  std::uint64_t completed = 0;  ///< requests that finished
  /// Requests rejected at admission (SLA-aware shedding); every offered
  /// request is either completed or shed, so offered == completed + shed.
  std::uint64_t shed = 0;
  double makespan_s = 0.0;      ///< first arrival to last completion
  double throughput_rps = 0.0;
  /// Completions that met their tenant's SLA, per second of makespan —
  /// the rate the operator actually gets paid for. goodput <= throughput.
  double goodput_rps = 0.0;
  double mean_latency_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_latency_s = 0.0;
  /// Fraction of completed requests whose latency exceeded their tenant's
  /// SLA deadline.
  double sla_violation_rate = 0.0;
  double mean_batch = 0.0;
  /// Mean chiplet-pool busy fraction over the makespan (executor-busy
  /// semantics in both pipeline modes; per-chiplet fractions clamp at 1
  /// when layer-granular overlap keeps an executor saturated).
  double utilization = 0.0;
  /// Total energy [J]: every batch's full-system energy plus the idle
  /// static burn of the pool between batches.
  double energy_j = 0.0;
  double energy_per_request_j = 0.0;
  /// Cross-tenant ReSiPI reconfigurations that had to wait their turn.
  std::uint64_t resipi_conflicts = 0;
  double resipi_wait_s = 0.0;
  /// Layer-granular mode: cross-tenant handoffs of a shared-serial group
  /// at layer boundaries, and the ReSiPI retuning latency they charged.
  std::uint64_t shared_handoffs = 0;
  double handoff_resipi_s = 0.0;
  /// Service-time oracle cache behavior.
  std::uint64_t service_cache_hits = 0;
  std::uint64_t service_cache_misses = 0;
  /// p99 of the most-important (lowest-numbered) and least-important
  /// priority classes present; equal when every tenant shares one class.
  double p99_hi_s = 0.0;
  double p99_lo_s = 0.0;
  /// Absolute simulation times bounding the measured window (both 0 when
  /// nothing arrived). `makespan_s` is their difference; the rack engine
  /// needs the absolute endpoints to merge windows across packages whose
  /// traces start at different times.
  double first_arrival_abs_s = 0.0;
  double last_completion_abs_s = 0.0;
  /// Simulator self-profiling: events the discrete-event kernel executed
  /// and its peak heap depth. Deterministic (pure functions of the
  /// schedule) — though attaching an obs::Recorder adds its snapshot
  /// events to the count. Rack runs sum events and take the max peak
  /// across packages.
  std::uint64_t sim_events = 0;
  std::uint64_t sim_event_queue_peak = 0;
  /// Variable-length (transformer) serving; all zero on fixed-shape runs.
  /// p99 time-to-first-token: arrival to the end of the request's prefill
  /// phase, pooled across tenants.
  double ttft_p99_s = 0.0;
  /// Generated tokens per second of makespan, summed over tenants.
  double decode_tps = 0.0;
  /// Peak KV-cache bytes reserved by any single tenant (each request
  /// reserves its final-context footprint while in flight); always <=
  /// the largest per-tenant kv_cache_mb budget.
  std::uint64_t kv_peak_bytes = 0;
  /// Elastic operation (see docs/elastic-operation.md); all zero when the
  /// elastic policy is inert. With retries enabled the drain identity
  /// widens to offered == completed + shed + abandoned.
  /// Shed requests whose capped retry budget ran out.
  std::uint64_t abandoned = 0;
  /// Backoff re-offers of shed requests (<= offered * retry_max_attempts).
  std::uint64_t retries = 0;
  /// Pool re-partitions executed (EMA load shifts plus fault-forced).
  std::uint64_t repartitions = 0;
  /// ReSiPI PCM-write time serialized on the interposer for re-partitions:
  /// exactly one write window per repartition event.
  double repartition_resipi_s = 0.0;
  /// Idle gaps long enough that a tenant's owned lasers/gateways gated.
  std::uint64_t gate_events = 0;
  /// Chiplet-seconds of idle time spent gated (removed from the ledger's
  /// "serving.idle" burn).
  double gated_idle_s = 0.0;
  /// FaultSpec events that fired during the run.
  std::uint64_t faults_injected = 0;
  /// Carbon proxy: total energy priced at the (optionally sinusoidal)
  /// grid intensity [g CO2].
  double carbon_g = 0.0;
};

/// Aggregate outcome of one priority class (tenants grouped by their
/// `priority` value; sorted ascending — class 0 is the most important).
struct ClassReport {
  unsigned priority = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t abandoned = 0;
  double p99_s = 0.0;
  double sla_violation_rate = 0.0;
  double goodput_rps = 0.0;
};

/// Per-tenant serving outcome.
struct TenantReport {
  std::string name;
  std::string model;
  /// Priority class (lower = more important) — orders grants of contended
  /// shared resources.
  unsigned priority = 0;
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  /// Arrivals rejected by SLA-aware admission control.
  std::uint64_t shed = 0;
  std::uint64_t batches = 0;
  double throughput_rps = 0.0;
  /// SLA-met completions per second of makespan.
  double goodput_rps = 0.0;
  double mean_latency_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_latency_s = 0.0;
  double sla_s = 0.0;  ///< effective deadline (auto-derived when spec <= 0)
  double sla_violation_rate = 0.0;
  double mean_batch = 0.0;
  double busy_s = 0.0;        ///< executor busy time
  double utilization = 0.0;   ///< busy_s / makespan
  double energy_j = 0.0;      ///< sum of the tenant's batch energies
  double energy_per_request_j = 0.0;
  double shared_wait_s = 0.0;  ///< waiting on the shared-serial chiplets
  double resipi_wait_s = 0.0;  ///< waiting on another tenant's reconfig
  std::uint64_t resipi_conflicts = 0;
  /// Layer-granular mode: shared-group handoffs this tenant paid for, and
  /// the per-handoff ReSiPI retuning time charged to its layers.
  std::uint64_t shared_handoffs = 0;
  double handoff_resipi_s = 0.0;
  /// Variable-length (transformer) serving; all zero for fixed-shape
  /// tenants. See ServingMetrics for the field semantics.
  double ttft_p99_s = 0.0;
  double decode_tps = 0.0;
  std::uint64_t kv_peak_bytes = 0;
  /// Elastic operation (all zero when the policy is inert).
  std::uint64_t abandoned = 0;
  std::uint64_t retries = 0;
  std::uint64_t gate_events = 0;
  double gated_idle_s = 0.0;  ///< chiplet-seconds of gated idle
};

/// One executed batch — or, in layer-granular mode, one pipeline stage of
/// a batch — recorded when ServingConfig::record_batches: enough to audit
/// chiplet occupancy and reconfiguration serialization.
struct BatchTrace {
  std::size_t tenant = 0;
  unsigned size = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Pool-global ids actually locked for [start_s, end_s): the batch's
  /// whole occupancy in batch-granular mode, the stage's chiplet group in
  /// layer-granular mode.
  std::vector<std::size_t> chiplets;
  /// ReSiPI reconfiguration window ([0,0) when the batch reconfigured
  /// nothing).
  double resipi_start_s = 0.0;
  double resipi_end_s = 0.0;
  /// Layer-granular mode: which consecutive slice of the model's layers
  /// this stage ran (layer_count == 0 means the whole batch).
  std::size_t first_layer = 0;
  std::size_t layer_count = 0;
  std::uint64_t batch_id = 0;  ///< per-tenant dispatch sequence number
};

/// One bucket of the energy-per-request day curve (elastic operation;
/// produced only when ElasticSpec::curve_bucket_s > 0).
struct DayPoint {
  double t0_s = 0.0;  ///< bucket start (absolute simulation time)
  double dt_s = 0.0;  ///< bucket width
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;
  /// Batch energy dispatched in the bucket plus the bucket's share of the
  /// pool's idle static burn.
  double energy_j = 0.0;
  double energy_per_request_j = 0.0;  ///< energy_j / completed (0 if none)
  /// Bucket energy priced at the grid intensity at the bucket midpoint.
  double carbon_g = 0.0;
};

/// Everything a serving simulation produces.
struct ServingReport {
  ServingMetrics metrics;
  std::vector<TenantReport> tenants;
  /// Per-priority-class aggregates, sorted by class (ascending). Always
  /// populated; a single-class run has exactly one entry.
  std::vector<ClassReport> classes;
  /// Serving-level energy ledger: every batch's ledger merged, plus the
  /// "serving.idle" category for the pool's idle static burn.
  power::EnergyLedger ledger;
  /// Busy seconds per pool chiplet (pool-global id order).
  std::vector<double> chiplet_busy_s;
  /// Raw completion latencies per tenant (tenant order, completion order)
  /// — the samples behind the percentile metrics, exported so rack-level
  /// reports can pool them and recompute exact quantiles.
  std::vector<std::vector<double>> tenant_latencies;
  /// Per-batch execution trace; empty unless record_batches was set.
  std::vector<BatchTrace> batches;
  /// Energy-per-request / carbon day curve; empty unless the elastic spec
  /// set curve_bucket_s > 0.
  std::vector<DayPoint> day_curve;
  /// Wall-clock the simulate() call took. *Not* deterministic — kept out
  /// of ServingMetrics so determinism tests never compare it.
  double wall_s = 0.0;
};

/// Exact nearest-rank quantile of `values` (copied and sorted internally);
/// q in (0, 1]. Returns 0 for an empty sample.
[[nodiscard]] double exact_quantile(std::vector<double> values, double q);

}  // namespace optiplet::serve
