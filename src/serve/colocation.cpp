#include "serve/colocation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "accel/mapper.hpp"
#include "util/require.hpp"

namespace optiplet::serve {

std::vector<accel::MacKind> needed_kinds(const dnn::Workload& workload) {
  std::vector<accel::MacKind> kinds;
  for (const auto& layer : workload.layers) {
    const accel::MacKind k = accel::affinity(layer);
    if (std::find(kinds.begin(), kinds.end(), k) == kinds.end()) {
      kinds.push_back(k);
    }
  }
  return kinds;
}

std::vector<std::size_t> ColocationPlan::occupancy(std::size_t tenant) const {
  const TenantPartition& p = tenants.at(tenant);
  std::vector<std::size_t> ids = p.owned_chiplets;
  if (!p.shared_kinds.empty()) {
    ids.insert(ids.end(), shared_chiplets.begin(), shared_chiplets.end());
  }
  return ids;
}

ColocationPlan partition_pool(const accel::PlatformSpec& pool,
                              const std::vector<TenantDemand>& demands,
                              const power::TechParams& tech) {
  OPTIPLET_REQUIRE(!demands.empty(), "co-location needs at least one tenant");
  ColocationPlan plan;
  plan.tenants.resize(demands.size());

  const auto needs = [&](std::size_t t, accel::MacKind k) {
    const auto& kinds = demands[t].needed_kinds;
    return std::find(kinds.begin(), kinds.end(), k) != kinds.end();
  };

  // Validate demand against the pool before assigning anything.
  for (std::size_t t = 0; t < demands.size(); ++t) {
    for (const accel::MacKind k : demands[t].needed_kinds) {
      const bool provisioned = std::any_of(
          pool.groups.begin(), pool.groups.end(),
          [k](const accel::ChipletGroup& g) { return g.chiplet.kind == k; });
      if (!provisioned) {
        throw std::invalid_argument(
            std::string("tenant needs MAC kind the pool lacks: ") +
            accel::to_string(k));
      }
    }
  }

  // Per-tenant owned chiplet count for each pool group, filled below.
  std::vector<std::vector<std::size_t>> owned_counts(
      pool.groups.size(), std::vector<std::size_t>(demands.size(), 0));
  std::vector<bool> group_shared(pool.groups.size(), false);

  std::size_t next_id = 0;
  for (std::size_t gi = 0; gi < pool.groups.size(); ++gi) {
    const accel::ChipletGroup& group = pool.groups[gi];
    const std::size_t n = group.chiplet_count;
    const std::size_t first_id = next_id;
    next_id += n;

    std::vector<std::size_t> needing;
    for (std::size_t t = 0; t < demands.size(); ++t) {
      if (needs(t, group.chiplet.kind)) {
        needing.push_back(t);
      }
    }
    if (needing.empty()) {
      continue;  // nobody maps here; the chiplets sit idle
    }
    if (needing.size() > n) {
      // Scarce group: shared-serial access for every needing tenant.
      group_shared[gi] = true;
      for (std::size_t c = 0; c < n; ++c) {
        plan.shared_chiplets.push_back(first_id + c);
      }
      for (const std::size_t t : needing) {
        plan.tenants[t].shared_kinds.push_back(group.chiplet.kind);
      }
      continue;
    }
    // Exclusive split: one chiplet each, remainder by weight with largest
    // remainder (ties toward earlier tenants for determinism).
    std::vector<std::size_t> quota(needing.size(), 1);
    std::size_t remaining = n - needing.size();
    if (remaining > 0) {
      double total_weight = 0.0;
      for (const std::size_t t : needing) {
        total_weight += std::max(demands[t].weight, 0.0);
      }
      std::vector<double> remainder(needing.size(), 0.0);
      std::size_t handed = 0;
      for (std::size_t i = 0; i < needing.size(); ++i) {
        const double w = std::max(demands[needing[i]].weight, 0.0);
        const double share =
            total_weight > 0.0
                ? static_cast<double>(remaining) * w / total_weight
                : static_cast<double>(remaining) /
                      static_cast<double>(needing.size());
        const auto whole = static_cast<std::size_t>(std::floor(share));
        quota[i] += whole;
        handed += whole;
        remainder[i] = share - static_cast<double>(whole);
      }
      while (handed < remaining) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < needing.size(); ++i) {
          if (remainder[i] > remainder[best]) {
            best = i;
          }
        }
        quota[best] += 1;
        remainder[best] = -1.0;
        ++handed;
      }
    }
    std::size_t cursor = first_id;
    for (std::size_t i = 0; i < needing.size(); ++i) {
      const std::size_t t = needing[i];
      owned_counts[gi][t] = quota[i];
      std::vector<std::size_t> ids;
      for (std::size_t c = 0; c < quota[i]; ++c) {
        ids.push_back(cursor++);
      }
      plan.tenants[t].owned_chiplets.insert(
          plan.tenants[t].owned_chiplets.end(), ids.begin(), ids.end());
      plan.tenants[t].owned_by_kind.emplace_back(group.chiplet.kind,
                                                 std::move(ids));
    }
    OPTIPLET_ASSERT(cursor == first_id + n, "partition must cover the group");
  }

  // Per-chiplet active power for idle accounting (pool-global id order).
  for (const auto& group : pool.groups) {
    const accel::ComputeChiplet model(group.chiplet, tech);
    for (std::size_t c = 0; c < group.chiplet_count; ++c) {
      plan.chiplet_active_power_w.push_back(model.active_power_w());
    }
  }

  // Assemble each tenant's effective platform spec.
  for (std::size_t t = 0; t < demands.size(); ++t) {
    TenantPartition& part = plan.tenants[t];
    for (std::size_t gi = 0; gi < pool.groups.size(); ++gi) {
      const accel::ChipletGroup& group = pool.groups[gi];
      if (owned_counts[gi][t] > 0) {
        accel::ChipletGroup slice = group;
        slice.chiplet_count = owned_counts[gi][t];
        part.platform.groups.push_back(slice);
      } else if (group_shared[gi] && needs(t, group.chiplet.kind)) {
        part.platform.groups.push_back(group);  // full group, lock-guarded
      }
    }
    part.platform.monolithic_memory_bandwidth_bps =
        pool.monolithic_memory_bandwidth_bps;
  }
  return plan;
}

}  // namespace optiplet::serve
