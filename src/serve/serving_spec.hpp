#pragma once
/// \file serving_spec.hpp
/// The sweepable description of one request-level serving experiment.
///
/// A `ServingSpec` is to the serving simulator what the photonic-shape
/// fields of an `engine::ScenarioSpec` are to a single inference: a compact
/// value type naming every input that changes the outcome — offered load,
/// batching policy, the co-located tenant mix, request count, seed, and the
/// SLA — so two equal specs are by construction the same simulation. The
/// engine embeds it as an optional block on `ScenarioSpec` and folds it
/// into the scenario key.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "serve/elastic.hpp"

namespace optiplet::util {
class Xoshiro256;
}

namespace optiplet::serve {

/// Admission/batching policy of one tenant's queue.
enum class BatchPolicy {
  /// FIFO, one request per batch: the latency-optimal policy at low load.
  kNone,
  /// Wait for exactly `max_batch` requests (flushing the remainder when the
  /// arrival stream ends): the throughput-optimal policy under saturation.
  kFixedSize,
  /// Deadline-bounded dynamic batching: dispatch when `max_batch` requests
  /// are queued or the oldest has waited `max_wait_s`, whichever first.
  kDeadline,
  /// Continuous (iteration-level) batching for autoregressive tenants:
  /// requests join and leave the running decode batch at token
  /// boundaries, and waiting prefills are admitted into the bubbles
  /// freed by completions. Requires token geometry (prefill_tokens > 0);
  /// fixed-shape tenants are rejected at setup.
  kContinuous,
};

[[nodiscard]] constexpr const char* to_string(BatchPolicy p) {
  switch (p) {
    case BatchPolicy::kNone:
      return "none";
    case BatchPolicy::kFixedSize:
      return "size";
    case BatchPolicy::kDeadline:
      return "deadline";
    case BatchPolicy::kContinuous:
      return "cont";
  }
  return "?";
}

/// Accepts "none"/"fifo", "size"/"fixed", "deadline"/"dynamic",
/// "cont"/"continuous".
[[nodiscard]] std::optional<BatchPolicy> batch_policy_from_string(
    std::string_view name);

/// Canonical comma-joined choice list for CLI help and fail-fast
/// messages ("none, size, deadline, cont").
[[nodiscard]] const char* batch_policy_choices();

/// Execution granularity of a tenant's batches on its chiplet partition.
enum class PipelineMode {
  /// A batch occupies the whole partition (and any shared-serial group)
  /// for its full service time — the validated baseline.
  kBatchGranular,
  /// SET-style inter-layer pipelining: a batch advances through per-layer
  /// stages, so layer k of batch i overlaps layer k+1 of batch i-1 on
  /// disjoint chiplet groups, and scarce shared-serial groups are handed
  /// off between tenants at layer boundaries.
  kLayerGranular,
};

[[nodiscard]] constexpr const char* to_string(PipelineMode m) {
  switch (m) {
    case PipelineMode::kBatchGranular:
      return "batch";
    case PipelineMode::kLayerGranular:
      return "layer";
  }
  return "?";
}

/// Accepts "batch"/"blocked" and "layer"/"pipelined".
[[nodiscard]] std::optional<PipelineMode> pipeline_mode_from_string(
    std::string_view name);

/// Canonical choice list ("batch, layer").
[[nodiscard]] const char* pipeline_mode_choices();

/// How a tenant's request stream is generated.
enum class ArrivalSource {
  /// Open loop: a seeded Poisson process (or a replayed trace) issues
  /// requests regardless of how the system is doing — load never
  /// self-throttles, so queues grow without bound past saturation.
  kOpenLoop,
  /// Closed loop: a pool of `users` concurrent clients per tenant. Each
  /// user thinks for an exponential time (mean `think_s`), issues one
  /// request, and only thinks again after its response (or shed notice)
  /// returns — interactive traffic whose offered load flattens at
  /// saturation instead of blowing the queue up.
  kClosedLoop,
};

[[nodiscard]] constexpr const char* to_string(ArrivalSource s) {
  switch (s) {
    case ArrivalSource::kOpenLoop:
      return "open";
    case ArrivalSource::kClosedLoop:
      return "closed";
  }
  return "?";
}

/// Accepts "open"/"poisson" and "closed"/"closed-loop".
[[nodiscard]] std::optional<ArrivalSource> arrival_source_from_string(
    std::string_view name);

/// Canonical choice list ("open, closed").
[[nodiscard]] const char* arrival_source_choices();

/// What happens to a request at enqueue time.
enum class AdmissionPolicy {
  /// Every arrival joins the queue — the validated baseline; SLA
  /// violations are reported but never acted on.
  kAdmitAll,
  /// SLA-aware shedding: an arrival whose completion the service-time
  /// oracle predicts past the tenant's SLA deadline is rejected
  /// immediately (counted as shed, never executed), keeping the admitted
  /// tail bounded the way a real operator's load shedder would.
  kSlaShed,
};

[[nodiscard]] constexpr const char* to_string(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kAdmitAll:
      return "all";
    case AdmissionPolicy::kSlaShed:
      return "shed";
  }
  return "?";
}

/// Accepts "all"/"none"/"admit-all" and "shed"/"sla-shed".
[[nodiscard]] std::optional<AdmissionPolicy> admission_policy_from_string(
    std::string_view name);

/// Canonical choice list ("all, shed").
[[nodiscard]] const char* admission_policy_choices();

/// Variable-length request geometry of an autoregressive tenant: prompt
/// tokens costed in the MAC-bound prefill phase, generated tokens costed
/// one bandwidth-bound decode step each. `{0, 0}` marks a fixed-shape
/// (CNN) request.
struct RequestShape {
  std::uint32_t prefill_tokens = 0;
  std::uint32_t decode_tokens = 0;

  [[nodiscard]] bool variable_length() const { return prefill_tokens > 0; }
  [[nodiscard]] std::uint64_t total_tokens() const {
    return static_cast<std::uint64_t>(prefill_tokens) + decode_tokens;
  }
  [[nodiscard]] bool operator==(const RequestShape&) const = default;
};

/// Draw one request shape around the mean token counts: each count lands
/// uniformly in mean*(1 ± spread), rounded to the nearest token and
/// clamped to >= 1 when its mean is positive. `spread == 0` returns the
/// exact means *without consuming the RNG* — bit-exact degeneracy tests
/// and pre-token trace reproducibility rely on both properties. Shared by
/// the trace generator and the simulator's synthetic arrival paths so a
/// generated trace and an in-process draw price identically.
[[nodiscard]] RequestShape draw_request_shape(std::uint32_t prefill_mean,
                                              std::uint32_t decode_mean,
                                              double spread,
                                              util::Xoshiro256& rng);

/// One fully-resolved serving experiment point.
struct ServingSpec {
  /// Aggregate offered load across all tenants [requests/s]; split evenly
  /// over the tenant mix. Ignored when `trace_path` is set.
  double arrival_rps = 200.0;
  BatchPolicy policy = BatchPolicy::kNone;
  /// Batch-granular (blocked) or layer-granular (pipelined) execution.
  PipelineMode pipeline = PipelineMode::kBatchGranular;
  /// Batch-size bound for kFixedSize (exact) and kDeadline (upper bound).
  unsigned max_batch = 8;
  /// kDeadline only: the oldest queued request's maximum wait [s].
  double max_wait_s = 1.0e-3;
  /// Co-located tenants as '+'-joined Table-2 model names ("LeNet5+VGG16").
  /// Each tenant owns a disjoint slice of the chiplet pool (see
  /// serve::partition_pool) and an equal share of the offered load.
  std::string tenant_mix = "LeNet5";
  /// Total request arrivals across the mix (split evenly; remainder to the
  /// earlier tenants).
  std::uint64_t requests = 2000;
  /// Seed of the deterministic Poisson arrival processes (tenant i draws
  /// from seed + i).
  std::uint64_t seed = 42;
  /// Per-request latency SLA [s]; <= 0 derives 10x the tenant's batch-1
  /// service time (a conventional "10x isolated latency" serving SLO).
  double sla_s = 0.0;
  /// Optional CSV arrival trace replayed instead of the Poisson processes
  /// (columns: arrival_s[,tenant]); see serve::load_arrival_trace.
  std::string trace_path;
  /// Open-loop (Poisson/trace) or closed-loop (client pool) arrivals.
  /// kClosedLoop is incompatible with `trace_path` and ignores
  /// `arrival_rps`; `requests` stays the total issue budget.
  ArrivalSource source = ArrivalSource::kOpenLoop;
  /// kClosedLoop: concurrent users per tenant.
  unsigned users = 16;
  /// kClosedLoop: mean exponential think time between a user's response
  /// and its next request [s].
  double think_s = 10.0e-3;
  /// Admit-all baseline or SLA-aware shedding at enqueue time.
  AdmissionPolicy admission = AdmissionPolicy::kAdmitAll;
  /// '+'-joined per-tenant priority classes aligned with `tenant_mix`
  /// ("0+1"); lower is more important. Empty = every tenant class 0.
  /// Priority orders grants of contended shared resources (the
  /// shared-serial chiplet pool and layer-mode group handoffs).
  std::string priority_mix;
  /// Mean prompt length for transformer tenants [tokens]. Zero (the
  /// default) keeps every request fixed-shape, which is the only valid
  /// setting for CNN tenants — scenario keys and CSV rows are then
  /// byte-identical to the pre-token schema.
  std::uint32_t prefill_tokens = 0;
  /// Mean generated-token count for transformer tenants. Zero with
  /// positive `prefill_tokens` prices requests as pure prefill.
  std::uint32_t decode_tokens = 0;
  /// Relative half-width of the per-request uniform token-count draw in
  /// [0, 1): request lengths land in mean*(1 ± spread), seeded per
  /// tenant. Zero makes every request exactly the mean (bit-exact
  /// degeneracy tests rely on this).
  double token_spread = 0.0;
  /// Per-tenant KV-cache (activation-buffer) budget [MiB]. Bounds the
  /// tokens resident in a tenant's decode working set and thereby caps
  /// its concurrent decode slots.
  double kv_cache_mb = 256.0;
  /// Runtime-elasticity policy (re-partitioning, power-gating, faults,
  /// retry). The default is provably inert — see elastic.hpp.
  ElasticSpec elastic;

  /// Tenant model names of `tenant_mix`, in order ("A+B" -> {"A", "B"}).
  [[nodiscard]] std::vector<std::string> tenants() const;

  /// Per-tenant priority classes resolved against `tenant_mix`: the parsed
  /// `priority_mix`, or all zeros when it is empty. Throws
  /// std::invalid_argument on a length mismatch or an unparseable class.
  [[nodiscard]] std::vector<unsigned> priorities() const;
};

/// Split a '+'-joined mix string into its tenant model names.
[[nodiscard]] std::vector<std::string> split_mix(std::string_view mix);

}  // namespace optiplet::serve
