#pragma once
/// \file resipi_controller.hpp
/// ReSiPI epoch-based gateway reconfiguration controller (paper §IV, [37]).
///
/// The controller monitors each chiplet's inter-chiplet traffic demand in
/// fixed time epochs and sets the number of *active* writer gateways per
/// chiplet for the next epoch. Gateways are (de)activated by writing the
/// PCM couplers that feed them laser light, and the laser's wavelength
/// channels are scaled accordingly — active gateways burn static power
/// (ring tuning, clocks, laser share); parked gateways burn none, because
/// PCM states are non-volatile.

#include <cstdint>
#include <vector>

#include "photonics/pcm_coupler.hpp"
#include "util/units.hpp"

namespace optiplet::obs {
class Recorder;
}  // namespace optiplet::obs

namespace optiplet::noc {

struct ResipiConfig {
  /// Monitoring epoch length [s]. ReSiPI reconfigures at epoch boundaries.
  double epoch_s = 5.0 * units::us;
  /// Minimum active gateways per chiplet (keep-alive channel for control).
  std::size_t min_active_gateways = 1;
  /// Utilization headroom: demand is provisioned at demand/headroom so a
  /// gateway saturating at 100% does not throttle the epoch (0 < h <= 1).
  double target_utilization = 0.85;
  /// Hysteresis: deactivate only when the lower-count config would still run
  /// below `downshift_utilization` (avoids thrash between epochs).
  double downshift_utilization = 0.6;
};

/// Per-chiplet gateway activation decision and bookkeeping.
class ResipiController {
 public:
  /// \param chiplet_count   number of managed chiplets
  /// \param gateways_per_chiplet maximum gateways a chiplet can activate
  /// \param gateway_bandwidth_bps serialization bandwidth of one gateway
  ResipiController(const ResipiConfig& config, std::size_t chiplet_count,
                   std::size_t gateways_per_chiplet,
                   double gateway_bandwidth_bps,
                   const photonics::PcmCouplerDesign& pcm_design);

  /// Feed the controller one epoch's demand [bit/s] for every chiplet and
  /// advance the configuration. Returns the number of gateway state changes
  /// performed (PCMC writes).
  std::size_t observe_epoch(const std::vector<double>& demand_bps);

  /// Gateways required for a given demand under the config's utilization
  /// targets (pure function; used by observe_epoch and by the transaction
  /// simulator's per-layer provisioning).
  [[nodiscard]] std::size_t required_gateways(double demand_bps) const;

  /// Currently active gateways on `chiplet`.
  [[nodiscard]] std::size_t active_gateways(std::size_t chiplet) const;

  /// Sum of active gateways over all chiplets.
  [[nodiscard]] std::size_t total_active_gateways() const;

  /// Total PCMC write energy spent on reconfiguration so far [J].
  [[nodiscard]] double reconfiguration_energy_j() const;

  /// Number of reconfiguration events (PCMC writes) so far.
  [[nodiscard]] std::uint64_t reconfiguration_count() const {
    return reconfigurations_;
  }

  [[nodiscard]] const ResipiConfig& config() const { return config_; }
  [[nodiscard]] std::size_t gateways_per_chiplet() const {
    return gateways_per_chiplet_;
  }
  [[nodiscard]] double gateway_bandwidth_bps() const {
    return gateway_bandwidth_bps_;
  }

  /// Attach an observability sink: every observe_epoch() then records the
  /// epoch's PCMC writes and the resulting activation level (series
  /// `noc.resipi.*`). Null detaches. Not owned; must outlive the
  /// controller's use.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 private:
  ResipiConfig config_;
  std::size_t gateways_per_chiplet_;
  double gateway_bandwidth_bps_;
  photonics::PcmCouplerDesign pcm_design_;
  std::vector<std::size_t> active_;
  double pcm_write_energy_j_ = 0.0;
  std::uint64_t reconfigurations_ = 0;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace optiplet::noc
