#include "noc/dnn_trace.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace optiplet::noc {

namespace {

/// Append `total_bits` from src to dst as max_message_bits chunks.
void append_chunks(std::vector<TraceMessage>& trace, NodeId src, NodeId dst,
                   std::uint64_t total_bits, std::uint32_t max_message_bits) {
  while (total_bits > 0) {
    const auto chunk = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(total_bits, max_message_bits));
    trace.push_back(TraceMessage{src, dst, chunk});
    total_bits -= chunk;
  }
}

}  // namespace

std::vector<TraceMessage> build_layer_trace(const dnn::LayerWork& layer,
                                            std::size_t chiplets_used,
                                            const MeshPlacement& placement,
                                            std::uint64_t subsample,
                                            std::uint32_t max_message_bits) {
  OPTIPLET_REQUIRE(chiplets_used >= 1, "layer needs at least one chiplet");
  OPTIPLET_REQUIRE(chiplets_used <= placement.compute_nodes.size(),
                   "more chiplets than mesh placement provides");
  OPTIPLET_REQUIRE(subsample >= 1, "subsample must be >= 1");
  OPTIPLET_REQUIRE(max_message_bits >= 1, "empty message chunks");

  std::vector<TraceMessage> trace;
  const std::uint64_t weight_shard =
      std::max<std::uint64_t>(1, layer.weight_bits / subsample /
                                     chiplets_used);
  const std::uint64_t input_copy =
      std::max<std::uint64_t>(1, layer.input_bits / subsample);
  const std::uint64_t output_shard =
      std::max<std::uint64_t>(1, layer.output_bits / subsample /
                                     chiplets_used);

  for (std::size_t c = 0; c < chiplets_used; ++c) {
    const NodeId node = placement.compute_nodes[c];
    // Reads: the chiplet's weight shard plus a full input copy (output-
    // channel data parallelism needs the whole input map on every chiplet).
    append_chunks(trace, placement.memory_node, node, weight_shard,
                  max_message_bits);
    append_chunks(trace, placement.memory_node, node, input_copy,
                  max_message_bits);
    // Writes: the chiplet's output shard back to memory.
    append_chunks(trace, node, placement.memory_node, output_shard,
                  max_message_bits);
  }
  return trace;
}

TraceReplayResult replay_trace(ElectricalMesh& mesh,
                               const std::vector<TraceMessage>& trace,
                               std::uint64_t max_cycles) {
  OPTIPLET_REQUIRE(!trace.empty(), "empty trace");
  const std::uint64_t start_cycle = mesh.cycle();
  const std::uint64_t packets_before = mesh.stats().packets_ejected;
  const double latency_sum_before = mesh.stats().packet_latency_cycles.sum();

  std::uint64_t bits = 0;
  for (const auto& msg : trace) {
    mesh.inject(msg.src, msg.dst, msg.bits);
    bits += msg.bits;
  }
  const bool drained = mesh.run_until_drained(max_cycles);
  OPTIPLET_REQUIRE(drained, "trace replay did not drain within the budget");

  TraceReplayResult result;
  result.cycles = mesh.cycle() - start_cycle;
  result.packets = mesh.stats().packets_ejected - packets_before;
  const double latency_sum =
      mesh.stats().packet_latency_cycles.sum() - latency_sum_before;
  result.mean_packet_latency_cycles =
      result.packets ? latency_sum / static_cast<double>(result.packets)
                     : 0.0;
  result.delivered_bits_per_cycle =
      result.cycles ? static_cast<double>(bits) /
                          static_cast<double>(result.cycles)
                    : 0.0;
  return result;
}

}  // namespace optiplet::noc
