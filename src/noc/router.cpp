#include "noc/router.hpp"

#include "util/require.hpp"

namespace optiplet::noc {

Router::Router(NodeId id, std::uint16_t mesh_width, std::uint16_t mesh_height,
               const RouterConfig& config)
    : id_(id), width_(mesh_width), height_(mesh_height), config_(config) {
  OPTIPLET_REQUIRE(config.vc_count >= 1, "router needs at least one VC");
  OPTIPLET_REQUIRE(config.vc_depth >= 1, "VC depth must be at least one flit");
  OPTIPLET_REQUIRE(mesh_width >= 1 && mesh_height >= 1, "empty mesh");
  for (std::size_t p = 0; p < kPortCount; ++p) {
    input_[p].resize(config.vc_count);
    credits_[p].assign(config.vc_count, config.vc_depth);
    out_vc_busy_[p].assign(config.vc_count, false);
  }
}

void Router::receive_flit(std::uint8_t port, std::uint8_t vc,
                          const Flit& flit) {
  OPTIPLET_ASSERT(port < kPortCount && vc < config_.vc_count,
                  "port/vc out of range");
  auto& in = input_[port][vc];
  OPTIPLET_ASSERT(in.fifo.size() < config_.vc_depth,
                  "input FIFO overflow: credit protocol violated");
  in.fifo.push_back(flit);
}

void Router::receive_credit(std::uint8_t port, std::uint8_t vc) {
  OPTIPLET_ASSERT(port < kPortCount && vc < config_.vc_count,
                  "credit port/vc out of range");
  OPTIPLET_ASSERT(credits_[port][vc] < config_.vc_depth,
                  "credit overflow: more credits than buffer slots");
  ++credits_[port][vc];
}

std::uint8_t Router::route(NodeId dst) const {
  const int my_x = id_ % width_;
  const int my_y = id_ / width_;
  const int dst_x = dst % width_;
  const int dst_y = dst / width_;
  // Dimension-order: correct X first, then Y (deadlock-free on meshes).
  if (dst_x > my_x) {
    return kEast;
  }
  if (dst_x < my_x) {
    return kWest;
  }
  if (dst_y > my_y) {
    return kSouth;
  }
  if (dst_y < my_y) {
    return kNorth;
  }
  return kLocal;
}

std::optional<std::uint8_t> Router::allocate_output_vc(std::uint8_t out_port) {
  for (std::uint8_t v = 0; v < config_.vc_count; ++v) {
    if (!out_vc_busy_[out_port][v]) {
      return v;
    }
  }
  return std::nullopt;
}

void Router::tick(std::vector<StagedFlit>& staged_flits,
                  std::vector<StagedCredit>& staged_credits) {
  // --- Stage 1: route computation + output-VC allocation for head flits ---
  for (std::uint8_t p = 0; p < kPortCount; ++p) {
    for (std::uint8_t v = 0; v < config_.vc_count; ++v) {
      auto& in = input_[p][v];
      if (in.fifo.empty()) {
        continue;
      }
      const Flit& f = in.fifo.front();
      if (f.head && !in.routed) {
        in.out_port = route(f.dst);
        in.routed = true;
      }
      if (in.routed && !in.vc_allocated) {
        if (auto out_vc = allocate_output_vc(in.out_port)) {
          in.out_vc = *out_vc;
          in.vc_allocated = true;
          out_vc_busy_[in.out_port][*out_vc] = true;
        }
      }
    }
  }

  // --- Stage 2: switch allocation (one winner per output port) ---
  const std::uint32_t slots = kPortCount * config_.vc_count;
  for (std::uint8_t out = 0; out < kPortCount; ++out) {
    // Round-robin over all (in_port, in_vc) pairs starting after the last
    // winner for fairness.
    for (std::uint32_t k = 0; k < slots; ++k) {
      const std::uint32_t slot = (rr_pointer_[out] + 1 + k) % slots;
      const auto p = static_cast<std::uint8_t>(slot / config_.vc_count);
      const auto v = static_cast<std::uint8_t>(slot % config_.vc_count);
      auto& in = input_[p][v];
      if (in.fifo.empty() || !in.vc_allocated || in.out_port != out) {
        continue;
      }
      // Local ejection needs no downstream credit (the NI sinks at line
      // rate); other ports need a free slot downstream.
      if (out != kLocal && credits_[out][in.out_vc] == 0) {
        continue;
      }
      // Winner: traverse the crossbar.
      Flit f = in.fifo.front();
      in.fifo.pop_front();
      if (out != kLocal) {
        --credits_[out][in.out_vc];
      }
      staged_flits.push_back(StagedFlit{f, out, in.out_vc});
      // Freeing one input slot: return a credit upstream (the mesh routes
      // it; local-port credits go to the NI which tracks them too).
      staged_credits.push_back(StagedCredit{p, v});
      ++crossbar_traversals_;
      if (f.tail) {
        out_vc_busy_[out][in.out_vc] = false;
        in.routed = false;
        in.vc_allocated = false;
      }
      rr_pointer_[out] = slot;
      break;  // one flit per output port per cycle
    }
  }
}

std::size_t Router::buffered_flits() const {
  std::size_t n = 0;
  for (const auto& port : input_) {
    for (const auto& vc : port) {
      n += vc.fifo.size();
    }
  }
  return n;
}

}  // namespace optiplet::noc
