#pragma once
/// \file flit.hpp
/// Packet and flit types for the cycle-accurate electrical NoC.
///
/// A packet is segmented into link-width flits; the head flit carries the
/// route, the tail flit releases the wormhole. Single-flit packets are both
/// head and tail.

#include <cstdint>

namespace optiplet::noc {

/// Node index inside a mesh (row-major).
using NodeId = std::uint16_t;

/// One network packet (message) before segmentation.
struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t size_bits = 0;
  std::uint64_t inject_cycle = 0;  ///< cycle the packet entered the source NI
};

/// One flit in flight.
struct Flit {
  std::uint64_t packet_id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  bool head = false;
  bool tail = false;
  std::uint32_t seq = 0;           ///< flit index within the packet
  std::uint64_t inject_cycle = 0;  ///< copied from the packet
};

/// Number of flits a packet of `size_bits` occupies on `link_width_bits`
/// links (header folded into the first flit; always at least one flit).
[[nodiscard]] constexpr std::uint32_t flits_for(std::uint32_t size_bits,
                                                std::uint32_t link_width_bits) {
  const std::uint32_t n = (size_bits + link_width_bits - 1) / link_width_bits;
  return n == 0 ? 1 : n;
}

}  // namespace optiplet::noc
