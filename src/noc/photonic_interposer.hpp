#pragma once
/// \file photonic_interposer.hpp
/// The silicon-photonic interposer network (paper §V, Fig. 6).
///
/// Topology (passive, route-fixed):
///   * one SWMR broadcast waveguide: the memory chiplet's writer gateway
///     modulates all WDM channels; every compute chiplet's reader gateway
///     taps the waveguide and filter-drops the channels addressed to it;
///   * one SWSR waveguide per compute gateway back to the memory chiplet,
///     whose MRG holds one filter row per compute gateway (Fig. 6: MRGm).
///
/// The model sizes the laser from device-level link budgets (photonics::
/// LinkBudget over the actual waveguide geometry and MRG ring responses) and
/// answers bandwidth/latency/energy queries for the transaction-level system
/// simulator. Gateway activation is managed externally by ResipiController;
/// this class exposes power as a function of the active configuration.

#include <cstdint>
#include <vector>

#include "noc/photonic_gateway.hpp"
#include "noc/resipi_controller.hpp"
#include "photonics/link_budget.hpp"
#include "photonics/modulation.hpp"
#include "photonics/wavelength.hpp"
#include "power/energy_ledger.hpp"
#include "power/tech_params.hpp"

namespace optiplet::noc {

struct PhotonicInterposerConfig {
  std::size_t compute_chiplets = 8;
  std::size_t gateways_per_chiplet = 4;
  /// WDM channels system-wide (Table 1: 64). Divided evenly over a
  /// chiplet's gateways (DESIGN.md §9).
  std::size_t total_wavelengths = 64;
  /// Per-wavelength symbol rate (Table 1: 12 Gb/s at OOK = 12 GBd).
  double data_rate_per_wavelength_bps = 12.0 * units::Gbps;
  /// Line coding: OOK (paper default) or PAM-4 (paper §II option [44]),
  /// which doubles bits per wavelength at a ~6 dB receiver penalty and a
  /// second cascaded modulator ring per channel.
  photonics::ModulationFormat modulation = photonics::ModulationFormat::kOok;
  /// Gateway digital clock (Table 1: 2 GHz).
  double gateway_clock_hz = 2.0 * units::GHz;
  /// Interposer edge length [m]; chiplet sites are spread along the
  /// broadcast bus, so the worst-case waveguide path scales with this.
  double interposer_span_m = 40.0 * units::mm;
  /// Broadcast-bus length as a multiple of the span (the SWMR waveguide
  /// snakes past every compute chiplet's gateways).
  double broadcast_path_factor = 3.75;
  /// Waveguide crossings on the worst-case path (the broadcast bus crosses
  /// every gateway's SWSR return waveguide).
  std::size_t worst_case_crossings = 32;
};

/// Static + per-transfer characterization of the photonic interposer.
class PhotonicInterposer {
 public:
  PhotonicInterposer(const PhotonicInterposerConfig& config,
                     const power::PhotonicTech& tech);

  // ---- bandwidth ----

  /// Broadcast (memory->compute) bandwidth with `active_wavelengths` lit
  /// [bit/s]. The SWMR medium is shared by all read flows.
  [[nodiscard]] double swmr_bandwidth_bps(
      std::size_t active_wavelengths) const;

  /// Write (compute->memory) bandwidth of one chiplet with
  /// `active_gateways` of its gateways lit [bit/s].
  [[nodiscard]] double swsr_bandwidth_bps(std::size_t active_gateways) const;

  /// Wavelengths allotted to one gateway.
  [[nodiscard]] std::size_t wavelengths_per_gateway() const;

  /// Serialization bandwidth of a single gateway [bit/s].
  [[nodiscard]] double gateway_bandwidth_bps() const;

  // ---- timing ----

  /// End-to-end latency for a `bits`-sized transfer at `bandwidth_bps`
  /// [s]: gateway store-and-forward + serialization + time of flight.
  [[nodiscard]] double transfer_latency_s(std::uint64_t bits,
                                          double bandwidth_bps) const;

  /// Worst-case photon time of flight across the interposer [s].
  [[nodiscard]] double time_of_flight_s() const;

  // ---- link budgets / laser ----

  /// Link budget of the SWMR broadcast path to the farthest reader.
  [[nodiscard]] const photonics::LinkBudget& swmr_budget() const {
    return swmr_budget_;
  }

  /// Link budget of the longest SWSR write path.
  [[nodiscard]] const photonics::LinkBudget& swsr_budget() const {
    return swsr_budget_;
  }

  /// True when every link budget closes within a realizable per-channel
  /// laser power. Infeasible configurations arise when a gateway's MRG row
  /// spans more than the microring free spectral range (rows alias onto
  /// distant channels and the through-loss diverges) — the physical reason
  /// the Table-1 design splits 64 wavelengths into 16-channel sub-bands.
  [[nodiscard]] bool link_budget_feasible(double max_loss_db = 45.0) const;

  /// Required on-chip optical power per wavelength for the broadcast [W].
  [[nodiscard]] double swmr_laser_power_per_wavelength_w() const;

  /// Required optical power per wavelength for one write path [W].
  [[nodiscard]] double swsr_laser_power_per_wavelength_w() const;

  /// Electrical laser power with the given active configuration [W]:
  /// the memory broadcast keeps `active_broadcast_wavelengths` channels lit
  /// and each active compute gateway lights its write sub-band.
  [[nodiscard]] double laser_electrical_power_w(
      std::size_t active_broadcast_wavelengths,
      std::size_t total_active_compute_gateways) const;

  // ---- power / energy ----

  /// Static power of the interposer network for a configuration [W]:
  /// laser + active gateways (rings, clocks) + controller.
  [[nodiscard]] double network_static_power_w(
      std::size_t active_broadcast_wavelengths,
      std::size_t total_active_compute_gateways) const;

  /// Dynamic energy to move `bits` across one writer->reader hop [J]
  /// (transmit + receive sides).
  [[nodiscard]] double transfer_energy_j(std::uint64_t bits) const;

  /// A representative compute-chiplet gateway (1 modulator + 1 filter row).
  [[nodiscard]] const PhotonicGateway& compute_gateway() const {
    return compute_gateway_;
  }

  /// The memory chiplet gateway (1 modulator row + one filter row per
  /// compute gateway, Fig. 6).
  [[nodiscard]] const PhotonicGateway& memory_gateway() const {
    return memory_gateway_;
  }

  [[nodiscard]] std::size_t total_compute_gateways() const {
    return config_.compute_chiplets * config_.gateways_per_chiplet;
  }

  [[nodiscard]] const PhotonicInterposerConfig& config() const {
    return config_;
  }
  [[nodiscard]] const photonics::WdmGrid& grid() const { return grid_; }

 private:
  void build_budgets();

  PhotonicInterposerConfig config_;
  power::PhotonicTech tech_;
  photonics::WdmGrid grid_;
  PhotonicGateway compute_gateway_;
  PhotonicGateway memory_gateway_;
  photonics::LinkBudget swmr_budget_;
  photonics::LinkBudget swsr_budget_;
  double swmr_crosstalk_db_ = 0.0;
  double swsr_crosstalk_db_ = 0.0;
};

}  // namespace optiplet::noc
