#pragma once
/// \file dnn_trace.hpp
/// DNN-layer message traces for the cycle-accurate mesh.
///
/// Converts one compute layer's dataflow into the message sequence the
/// electrical interposer would carry — weight shards and replicated input
/// activations from the memory node to each assigned compute node, output
/// activations back — and replays it on noc::ElectricalMesh. This is the
/// strongest grounding for the transaction-level electrical model: instead
/// of synthetic traffic, the cycle simulator chews the *actual* per-layer
/// volumes of the Table-2 models (subsampled; full inferences move ~10^8
/// bits and would take minutes per run at flit granularity).

#include <cstdint>
#include <vector>

#include "dnn/workload.hpp"
#include "noc/mesh.hpp"

namespace optiplet::noc {

/// One message of a layer trace.
struct TraceMessage {
  NodeId src = 0;
  NodeId dst = 0;
  std::uint32_t bits = 0;
};

/// Placement of the accelerator on the mesh: which node hosts the memory
/// chiplet and which nodes host the layer's compute chiplets.
struct MeshPlacement {
  NodeId memory_node = 4;  ///< center of the default 3x3 mesh
  std::vector<NodeId> compute_nodes{0, 1, 2, 3, 5, 6, 7, 8};
};

/// Build the message trace of one layer, scaled down by `subsample`
/// (every message volume is divided by it; >= 1). Weights are sharded
/// across the `chiplets_used` first compute nodes, inputs are replicated
/// to each of them, outputs return to memory. Messages are chunked to
/// `max_message_bits` (DMA burst granularity).
[[nodiscard]] std::vector<TraceMessage> build_layer_trace(
    const dnn::LayerWork& layer, std::size_t chiplets_used,
    const MeshPlacement& placement, std::uint64_t subsample,
    std::uint32_t max_message_bits = 4096);

/// Result of replaying a trace on the mesh.
struct TraceReplayResult {
  std::uint64_t cycles = 0;
  std::uint64_t packets = 0;
  double mean_packet_latency_cycles = 0.0;
  /// Delivered bandwidth [bits/cycle] over the replay.
  double delivered_bits_per_cycle = 0.0;
};

/// Inject the whole trace at cycle 0 and run the mesh until drained.
/// Returns the replay statistics; throws if the mesh fails to drain within
/// `max_cycles`.
TraceReplayResult replay_trace(ElectricalMesh& mesh,
                               const std::vector<TraceMessage>& trace,
                               std::uint64_t max_cycles = 50'000'000);

}  // namespace optiplet::noc
