#include "noc/photonic_interposer.hpp"

#include <cmath>

#include "photonics/waveguide.hpp"
#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::noc {

namespace {

GatewayConfig make_gateway_config(const PhotonicInterposerConfig& c) {
  GatewayConfig g;
  OPTIPLET_REQUIRE(c.gateways_per_chiplet >= 1, "need at least one gateway");
  OPTIPLET_REQUIRE(c.total_wavelengths % c.gateways_per_chiplet == 0,
                   "wavelengths must divide evenly across gateways");
  g.wavelength_count = c.total_wavelengths / c.gateways_per_chiplet;
  g.data_rate_per_wavelength_bps =
      photonics::line_rate_bps(c.modulation, c.data_rate_per_wavelength_bps);
  g.clock_hz = c.gateway_clock_hz;
  return g;
}

GatewayConfig make_memory_gateway_config(const PhotonicInterposerConfig& c) {
  GatewayConfig g;
  g.wavelength_count = c.total_wavelengths;  // broadcast row covers the grid
  g.data_rate_per_wavelength_bps =
      photonics::line_rate_bps(c.modulation, c.data_rate_per_wavelength_bps);
  g.clock_hz = c.gateway_clock_hz;
  return g;
}

}  // namespace

PhotonicInterposer::PhotonicInterposer(const PhotonicInterposerConfig& config,
                                       const power::PhotonicTech& tech)
    : config_(config),
      tech_(tech),
      grid_(photonics::make_cband_grid(config.total_wavelengths)),
      compute_gateway_(make_gateway_config(config), tech, grid_, 0,
                       photonics::modulator_rings_per_channel(
                           config.modulation),
                       /*filter_rows=*/1),
      memory_gateway_(make_memory_gateway_config(config), tech, grid_, 0,
                      photonics::modulator_rings_per_channel(
                          config.modulation),
                      /*filter_rows=*/config.compute_chiplets *
                          config.gateways_per_chiplet) {
  OPTIPLET_REQUIRE(config.compute_chiplets >= 1, "need compute chiplets");
  OPTIPLET_REQUIRE(config.total_wavelengths >= 1, "need wavelengths");
  OPTIPLET_REQUIRE(config.interposer_span_m > 0.0,
                   "interposer span must be positive");
  build_budgets();
}

void PhotonicInterposer::build_budgets() {
  using photonics::Waveguide;

  // --- SWMR broadcast: memory modulator row -> farthest compute reader ---
  // The broadcast bus snakes past every compute chiplet; the farthest reader
  // sees the full span. Optical power is shared by all listening readers
  // (power-splitting taps), charged as 10*log10(N_readers).
  const Waveguide swmr_path(config_.broadcast_path_factor *
                                config_.interposer_span_m,
                            /*bends=*/config_.compute_chiplets * 2,
                            config_.worst_case_crossings, tech_.waveguide);
  swmr_budget_ = photonics::LinkBudget{};
  swmr_budget_.add_loss("laser-to-chip coupler", tech_.laser.coupling_loss_db);
  swmr_budget_.add_loss("modulator insertion",
                        memory_gateway_.mrg().drop_loss_db() * 0.5);
  swmr_budget_.add_loss("waveguide propagation",
                        swmr_path.insertion_loss_db());
  // Passing the MRGs of the other readers off-resonance.
  swmr_budget_.add_loss(
      "through intermediate MRGs",
      compute_gateway_.mrg().through_loss_db() *
          static_cast<double>(config_.compute_chiplets - 1));
  swmr_budget_.add_loss(
      "broadcast power split",
      10.0 * std::log10(static_cast<double>(config_.compute_chiplets)));
  swmr_budget_.add_loss("reader filter drop",
                        compute_gateway_.mrg().drop_loss_db());

  swmr_crosstalk_db_ = photonics::LinkBudget::crosstalk_penalty_db(
      compute_gateway_.mrg().reference_ring(), grid_,
      /*reader_channel=*/grid_.channel_count() / 2,
      /*active_channels=*/grid_.channel_count());

  // --- SWSR write: compute modulator row -> memory filter row ---
  const Waveguide swsr_path(config_.interposer_span_m,
                            /*bends=*/4, config_.worst_case_crossings / 2,
                            tech_.waveguide);
  swsr_budget_ = photonics::LinkBudget{};
  swsr_budget_.add_loss("laser-to-chip coupler", tech_.laser.coupling_loss_db);
  swsr_budget_.add_loss("PCMC gateway feed",
                        tech_.pcm.insertion_loss_crystalline_db);
  swsr_budget_.add_loss("modulator insertion",
                        compute_gateway_.mrg().drop_loss_db() * 0.5);
  swsr_budget_.add_loss("waveguide propagation",
                        swsr_path.insertion_loss_db());
  swsr_budget_.add_loss("memory filter drop",
                        memory_gateway_.mrg().drop_loss_db());

  swsr_crosstalk_db_ = photonics::LinkBudget::crosstalk_penalty_db(
      memory_gateway_.mrg().reference_ring(), grid_,
      grid_.channel_count() / 2, wavelengths_per_gateway());
}

std::size_t PhotonicInterposer::wavelengths_per_gateway() const {
  return config_.total_wavelengths / config_.gateways_per_chiplet;
}

double PhotonicInterposer::gateway_bandwidth_bps() const {
  return static_cast<double>(wavelengths_per_gateway()) *
         photonics::line_rate_bps(config_.modulation,
                                  config_.data_rate_per_wavelength_bps);
}

double PhotonicInterposer::swmr_bandwidth_bps(
    std::size_t active_wavelengths) const {
  OPTIPLET_REQUIRE(active_wavelengths <= config_.total_wavelengths,
                   "more active wavelengths than the grid has");
  return static_cast<double>(active_wavelengths) *
         photonics::line_rate_bps(config_.modulation,
                                  config_.data_rate_per_wavelength_bps);
}

double PhotonicInterposer::swsr_bandwidth_bps(
    std::size_t active_gateways) const {
  OPTIPLET_REQUIRE(active_gateways <= config_.gateways_per_chiplet,
                   "more active gateways than the chiplet has");
  return static_cast<double>(active_gateways) * gateway_bandwidth_bps();
}

double PhotonicInterposer::time_of_flight_s() const {
  const photonics::Waveguide path(
      config_.broadcast_path_factor * config_.interposer_span_m, 0, 0,
      tech_.waveguide);
  return path.time_of_flight_s();
}

double PhotonicInterposer::transfer_latency_s(std::uint64_t bits,
                                              double bandwidth_bps) const {
  OPTIPLET_REQUIRE(bandwidth_bps > 0.0, "bandwidth must be positive");
  return compute_gateway_.store_forward_latency_s() +
         static_cast<double>(bits) / bandwidth_bps + time_of_flight_s();
}

bool PhotonicInterposer::link_budget_feasible(double max_loss_db) const {
  // Spectral fit: a gateway row must sit inside one ring FSR, with one
  // guard channel, or its rings alias onto foreign channels.
  const auto& ring = compute_gateway_.mrg().reference_ring();
  const double row_span =
      static_cast<double>(wavelengths_per_gateway()) *
      grid_.channel_spacing_m();
  if (row_span >= ring.fsr_m()) {
    return false;
  }
  return swmr_budget_.total_loss_db() + swmr_crosstalk_db_ <= max_loss_db &&
         swsr_budget_.total_loss_db() + swsr_crosstalk_db_ <= max_loss_db;
}

double PhotonicInterposer::swmr_laser_power_per_wavelength_w() const {
  // PD noise scales with the symbol rate; multi-level formats then add
  // their eye-closure penalty on top.
  const double sensitivity_dbm =
      photonics::Photodetector(tech_.photodetector)
          .sensitivity_dbm(config_.data_rate_per_wavelength_bps) +
      photonics::receiver_penalty_db(config_.modulation);
  return swmr_budget_.required_laser_power_w(
      sensitivity_dbm, swmr_crosstalk_db_, tech_.system_margin_db);
}

double PhotonicInterposer::swsr_laser_power_per_wavelength_w() const {
  const double sensitivity_dbm =
      photonics::Photodetector(tech_.photodetector)
          .sensitivity_dbm(config_.data_rate_per_wavelength_bps) +
      photonics::receiver_penalty_db(config_.modulation);
  return swsr_budget_.required_laser_power_w(
      sensitivity_dbm, swsr_crosstalk_db_, tech_.system_margin_db);
}

double PhotonicInterposer::laser_electrical_power_w(
    std::size_t active_broadcast_wavelengths,
    std::size_t total_active_compute_gateways) const {
  OPTIPLET_REQUIRE(
      total_active_compute_gateways <= total_compute_gateways(),
      "more active gateways than the platform has");
  const double optical =
      static_cast<double>(active_broadcast_wavelengths) *
          swmr_laser_power_per_wavelength_w() +
      static_cast<double>(total_active_compute_gateways) *
          static_cast<double>(wavelengths_per_gateway()) *
          swsr_laser_power_per_wavelength_w();
  const double coupling = util::from_db(tech_.laser.coupling_loss_db);
  const double bias = (active_broadcast_wavelengths +
                       total_active_compute_gateways) > 0
                          ? tech_.laser.bias_overhead_w
                          : 0.0;
  return optical * coupling / tech_.laser.wall_plug_efficiency + bias;
}

double PhotonicInterposer::network_static_power_w(
    std::size_t active_broadcast_wavelengths,
    std::size_t total_active_compute_gateways) const {
  const double laser = laser_electrical_power_w(
      active_broadcast_wavelengths, total_active_compute_gateways);
  // The memory gateway is always on (it serves every read); compute
  // gateways contribute only when active. Parked gateways are dark: their
  // PCMC feed is non-volatile and their rings are detuned (no hold power).
  const double gateways =
      memory_gateway_.active_static_power_w() +
      static_cast<double>(total_active_compute_gateways) *
          compute_gateway_.active_static_power_w();
  return laser + gateways + tech_.controller_static_w;
}

double PhotonicInterposer::transfer_energy_j(std::uint64_t bits) const {
  return compute_gateway_.transmit_energy_j(bits) +
         compute_gateway_.receive_energy_j(bits);
}

}  // namespace optiplet::noc
