#include "noc/mesh.hpp"

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::noc {

ElectricalMesh::ElectricalMesh(const MeshConfig& config,
                               const power::ElectricalTech& tech)
    : config_(config), tech_(tech) {
  OPTIPLET_REQUIRE(config.width >= 1 && config.height >= 1, "empty mesh");
  OPTIPLET_REQUIRE(config.link_width_bits >= 1, "link width must be >= 1");
  OPTIPLET_REQUIRE(config.clock_hz > 0.0, "clock must be positive");
  const std::size_t n = node_count();
  routers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    routers_.emplace_back(static_cast<NodeId>(i), config.width, config.height,
                          config.router);
  }
  channels_.resize(n * kPortCount);
  nis_.resize(n);
  for (auto& ni : nis_) {
    ni.credits.assign(config.router.vc_count, config.router.vc_depth);
  }
}

NodeId ElectricalMesh::neighbour(NodeId node, std::uint8_t port) const {
  const int x = node % config_.width;
  const int y = node / config_.width;
  switch (port) {
    case kNorth:
      return static_cast<NodeId>(node - config_.width);
    case kSouth:
      return static_cast<NodeId>(node + config_.width);
    case kEast:
      return static_cast<NodeId>(node + 1);
    case kWest:
      return static_cast<NodeId>(node - 1);
    default:
      break;
  }
  (void)x;
  (void)y;
  OPTIPLET_ASSERT(false, "no neighbour on local port");
  return node;
}

std::uint8_t ElectricalMesh::opposite(std::uint8_t port) {
  switch (port) {
    case kNorth:
      return kSouth;
    case kSouth:
      return kNorth;
    case kEast:
      return kWest;
    case kWest:
      return kEast;
    default:
      return kLocal;
  }
}

std::size_t ElectricalMesh::channel_index(NodeId node,
                                          std::uint8_t out_port) const {
  return static_cast<std::size_t>(node) * kPortCount + out_port;
}

std::uint32_t ElectricalMesh::hop_distance(NodeId a, NodeId b) const {
  const int ax = a % config_.width;
  const int ay = a / config_.width;
  const int bx = b % config_.width;
  const int by = b / config_.width;
  return static_cast<std::uint32_t>(std::abs(ax - bx) + std::abs(ay - by));
}

void ElectricalMesh::inject(NodeId src, NodeId dst, std::uint32_t size_bits) {
  OPTIPLET_REQUIRE(src < node_count() && dst < node_count(),
                   "node id out of range");
  OPTIPLET_REQUIRE(size_bits >= 1, "empty packet");
  Packet p;
  p.id = next_packet_id_++;
  p.src = src;
  p.dst = dst;
  p.size_bits = size_bits;
  p.inject_cycle = cycle_;
  nis_[src].pending.push_back(p);
  ++stats_.packets_injected;
}

void ElectricalMesh::step() {
  const std::uint64_t hop_delay =
      config_.router_pipeline_cycles + config_.link_latency_cycles;

  // --- 1. NI injection: one flit per cycle into the router local port. ---
  for (std::size_t node = 0; node < nis_.size(); ++node) {
    auto& ni = nis_[node];
    if (ni.pending.empty()) {
      continue;
    }
    Packet& pkt = ni.pending.front();
    const std::uint32_t total_flits =
        flits_for(pkt.size_bits, config_.link_width_bits);
    // Wormhole: the whole packet uses one VC; pick it at the head flit.
    if (ni.flits_sent_of_current == 0) {
      // Find a VC with a full window free to start a packet (head flit just
      // needs one credit; using round-robin start VC spreads load).
      bool found = false;
      for (std::uint32_t k = 0; k < config_.router.vc_count; ++k) {
        const auto v = static_cast<std::uint8_t>(
            (ni.next_vc + k) % config_.router.vc_count);
        if (ni.credits[v] > 0) {
          ni.next_vc = v;
          found = true;
          break;
        }
      }
      if (!found) {
        continue;
      }
    } else if (ni.credits[ni.next_vc] == 0) {
      continue;
    }
    Flit f;
    f.packet_id = pkt.id;
    f.src = pkt.src;
    f.dst = pkt.dst;
    f.seq = ni.flits_sent_of_current;
    f.head = ni.flits_sent_of_current == 0;
    f.tail = ni.flits_sent_of_current + 1 == total_flits;
    f.inject_cycle = pkt.inject_cycle;
    --ni.credits[ni.next_vc];
    // NI->router wire: 1 cycle.
    auto& ch = channels_[channel_index(static_cast<NodeId>(node), kLocal)];
    ch.flits.push_back(InFlight{cycle_ + 1, f, ni.next_vc});
    ++ni.flits_sent_of_current;
    if (f.tail) {
      ni.pending.pop_front();
      ni.flits_sent_of_current = 0;
      ni.next_vc = static_cast<std::uint8_t>((ni.next_vc + 1) %
                                             config_.router.vc_count);
    }
  }

  // --- 2. Routers arbitrate and stage outputs. ---
  for (auto& router : routers_) {
    scratch_flits_.clear();
    scratch_credits_.clear();
    router.tick(scratch_flits_, scratch_credits_);
    const NodeId node = router.id();

    for (const auto& sf : scratch_flits_) {
      if (sf.out_port == kLocal) {
        // Ejection: consumed by the sink NI after one cycle.
        ++stats_.flits_ejected;
        if (sf.flit.tail) {
          ++stats_.packets_ejected;
          stats_.packet_latency_cycles.add(
              static_cast<double>(cycle_ + 1 - sf.flit.inject_cycle));
        }
        continue;
      }
      auto& ch = channels_[channel_index(node, sf.out_port)];
      ch.flits.push_back(InFlight{cycle_ + hop_delay, sf.flit, sf.out_vc});
      ++stats_.link_traversals;
    }

    for (const auto& sc : scratch_credits_) {
      if (sc.in_port == kLocal) {
        // Credit back to this node's NI (1 cycle).
        auto& ch = channels_[channel_index(node, kLocal)];
        ch.credits.push_back(CreditInFlight{cycle_ + 1, sc.vc});
        continue;
      }
      // Credit to the upstream neighbour that feeds (node, in_port): that
      // neighbour's output port is opposite(in_port). Credit wires take one
      // cycle.
      const NodeId up = neighbour(node, sc.in_port);
      auto& ch = channels_[channel_index(up, opposite(sc.in_port))];
      ch.credits.push_back(CreditInFlight{cycle_ + 1, sc.vc});
    }
  }
  stats_.flit_hops = 0;
  for (const auto& r : routers_) {
    stats_.flit_hops += r.crossbar_traversals();
  }

  ++cycle_;

  // --- 3. Deliver channel traffic that has completed its flight. ---
  for (std::size_t node = 0; node < node_count(); ++node) {
    for (std::uint8_t port = 0; port < kPortCount; ++port) {
      auto& ch = channels_[channel_index(static_cast<NodeId>(node), port)];
      while (!ch.flits.empty() && ch.flits.front().deliver_cycle <= cycle_) {
        const InFlight in = ch.flits.front();
        ch.flits.pop_front();
        if (port == kLocal) {
          // NI -> router local input of the same node.
          routers_[node].receive_flit(kLocal, in.vc, in.flit);
        } else {
          const NodeId down = neighbour(static_cast<NodeId>(node), port);
          routers_[down].receive_flit(opposite(port), in.vc, in.flit);
        }
      }
      while (!ch.credits.empty() &&
             ch.credits.front().deliver_cycle <= cycle_) {
        const CreditInFlight cr = ch.credits.front();
        ch.credits.pop_front();
        if (port == kLocal) {
          ++nis_[node].credits[cr.vc];
        } else {
          routers_[node].receive_credit(port, cr.vc);
        }
      }
    }
  }

  stats_.cycles = cycle_;
}

bool ElectricalMesh::drained() const {
  for (const auto& ni : nis_) {
    if (!ni.pending.empty()) {
      return false;
    }
  }
  for (const auto& ch : channels_) {
    if (!ch.flits.empty()) {
      return false;
    }
  }
  for (const auto& r : routers_) {
    if (r.buffered_flits() != 0) {
      return false;
    }
  }
  return true;
}

bool ElectricalMesh::run_until_drained(std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  while (n < max_cycles && !drained()) {
    step();
    ++n;
  }
  return drained();
}

power::EnergyLedger ElectricalMesh::energy() const {
  power::EnergyLedger ledger;
  const double bits_per_flit = config_.link_width_bits;
  ledger.charge_energy("noc.router",
                       static_cast<double>(stats_.flit_hops) * bits_per_flit *
                           tech_.router_energy_per_bit_j);
  ledger.charge_energy("noc.link",
                       static_cast<double>(stats_.link_traversals) *
                           bits_per_flit * tech_.wire_energy_per_bit_per_m *
                           config_.hop_distance_m);
  ledger.add_static_power("noc.router_static",
                          tech_.router_static_w *
                              static_cast<double>(node_count()));
  return ledger;
}

std::uint64_t ElectricalMesh::zero_load_latency_cycles(
    std::uint32_t size_bits, std::uint32_t hops) const {
  const std::uint64_t serialization =
      flits_for(size_bits, config_.link_width_bits);
  const std::uint64_t per_hop =
      config_.router_pipeline_cycles + config_.link_latency_cycles;
  // NI->router (1) + hops * (router+link) + final router traversal modeled
  // inside the last hop + ejection (1) + serialization of the body.
  return 1 + hops * per_hop + 1 + (serialization - 1);
}

}  // namespace optiplet::noc
