#pragma once
/// \file elec_interposer_model.hpp
/// Transaction-level model of the active electrical mesh interposer
/// (2.5D-CrossLight-Elec-Interposer baseline).
///
/// Derived from the cycle-accurate noc::ElectricalMesh (DESIGN.md §3): the
/// bandwidth term uses the NI port rate scaled by a hotspot efficiency that
/// the cycle simulator calibrates (all DNN read traffic radiates from the
/// single memory chiplet, so its injection port is the bottleneck), and the
/// latency term uses the mesh's zero-load per-hop pipeline.
/// `tests/core/calibration_test.cpp` cross-checks both terms against the
/// cycle simulator on identical traces.

#include <cstdint>

#include "noc/mesh.hpp"
#include "power/energy_ledger.hpp"
#include "power/tech_params.hpp"

namespace optiplet::noc {

struct ElecInterposerModelConfig {
  MeshConfig mesh{};
  /// Fraction of the memory port's raw bandwidth deliverable under the
  /// all-nodes-read-from-memory hotspot (protocol + arbitration overhead;
  /// calibrated against the cycle simulator).
  double hotspot_efficiency = 0.62;
  /// Average hop count between the memory chiplet and a compute chiplet
  /// (memory sits mid-edge on a 3x3 mesh: hops in {1,2,3}, mean ~2).
  double average_hops = 2.0;
  /// Outstanding read words (of link width) a chiplet's NI keeps in flight.
  /// The electrical interposer lacks the photonic gateways' store-and-
  /// forward DMA buffers (Fig. 5 gives those to the SiPh design only), so
  /// reads are blocking request-response at word granularity (1.0 = one
  /// word in flight per chiplet). This is the dominant term behind the
  /// paper's reported 34x latency gap; EXPERIMENTS.md carries the
  /// sensitivity analysis (0.5 -> ~30x, 1.0 -> ~15x, 2.0 -> ~8x).
  double outstanding_read_words = 1.0;
  /// Limited gateway buffering forces store-and-forward at layer
  /// granularity: communication does not overlap compute (paper §VI notes
  /// the electrical interposer "suffers due to the significantly higher
  /// latency of metallic interconnects").
  bool overlaps_compute = false;
};

/// Analytic electrical-interposer characterization.
class ElecInterposerModel {
 public:
  ElecInterposerModel(const ElecInterposerModelConfig& config,
                      const power::ElectricalTech& tech);

  /// Raw NI port bandwidth [bit/s] = link width * clock.
  [[nodiscard]] double port_bandwidth_bps() const;

  /// Deliverable read bandwidth out of the memory chiplet under the DNN
  /// hotspot pattern [bit/s].
  [[nodiscard]] double effective_read_bandwidth_bps() const;

  /// Round-trip time of one request/response word read over `hops` [s].
  [[nodiscard]] double read_round_trip_s(double hops) const;

  /// Read bandwidth one chiplet sustains with the configured outstanding
  /// word reads over `hops` [bit/s] (MSHR-limited request-response).
  [[nodiscard]] double chiplet_read_bandwidth_bps(double hops) const;

  /// Aggregate read bandwidth for a layer striped over `chiplets` readers:
  /// min(port limit, sum of per-chiplet MSHR-limited rates).
  [[nodiscard]] double layer_read_bandwidth_bps(std::size_t chiplets,
                                                double hops) const;

  /// Latency of a `bits` transfer over `hops` mesh hops [s]
  /// (zero-load pipeline + serialization at the effective rate).
  [[nodiscard]] double transfer_latency_s(std::uint64_t bits,
                                          double hops) const;

  /// Dynamic energy to move `bits` over `hops` hops [J]: router + wire +
  /// chiplet-boundary PHY crossings at both ends.
  [[nodiscard]] double transfer_energy_j(std::uint64_t bits,
                                         double hops) const;

  /// Static power of the interposer mesh [W] (routers + clocking).
  [[nodiscard]] double static_power_w() const;

  [[nodiscard]] const ElecInterposerModelConfig& config() const {
    return config_;
  }

 private:
  ElecInterposerModelConfig config_;
  power::ElectricalTech tech_;
};

}  // namespace optiplet::noc
