#pragma once
/// \file router.hpp
/// Credit-based wormhole virtual-channel router for a 2-D mesh.
///
/// Standard input-queued microarchitecture (BookSim lineage):
///   * 5 ports (North, East, South, West, Local), V virtual channels per
///     input port, each a FIFO of `vc_depth` flits;
///   * XY dimension-order routing (deadlock-free on meshes);
///   * per-output-VC allocation held for a whole packet (wormhole);
///   * switch allocation: round-robin arbitration per output port, one flit
///     per output per cycle;
///   * credit-based backpressure toward the upstream router.
///
/// The router never touches other routers directly: all exchange goes through
/// noc::Link objects owned by the mesh, so stepping routers in any order is
/// deterministic (see mesh.hpp).

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "noc/flit.hpp"

namespace optiplet::noc {

/// Mesh port directions. kLocal attaches the network interface.
enum Port : std::uint8_t {
  kNorth = 0,
  kEast = 1,
  kSouth = 2,
  kWest = 3,
  kLocal = 4,
  kPortCount = 5,
};

struct RouterConfig {
  std::uint32_t vc_count = 2;
  /// Flits per VC FIFO. Must cover the credit round trip (send + link
  /// pipeline + downstream forward + credit wire ~ 8 cycles at the default
  /// hop latency) or a single wormhole cannot sustain full link rate.
  std::uint32_t vc_depth = 8;
};

/// Staged transfer from a router toward one neighbour (collected by Mesh).
struct StagedFlit {
  Flit flit;
  std::uint8_t out_port = 0;
  std::uint8_t out_vc = 0;
};

/// Credit returned to the upstream router on (in_port, vc).
struct StagedCredit {
  std::uint8_t in_port = 0;
  std::uint8_t vc = 0;
};

class Router {
 public:
  Router(NodeId id, std::uint16_t mesh_width, std::uint16_t mesh_height,
         const RouterConfig& config);

  /// Deliver a flit arriving on (port, vc) — called by Mesh when a link
  /// output reaches this router. The FIFO must have space (guaranteed by
  /// credits; violation indicates a protocol bug).
  void receive_flit(std::uint8_t port, std::uint8_t vc, const Flit& flit);

  /// Deliver a returned credit for (out_port, out_vc).
  void receive_credit(std::uint8_t port, std::uint8_t vc);

  /// One cycle of route computation, VC allocation, and switch allocation.
  /// Winning flits are appended to `staged_flits`; freed input slots emit
  /// credits into `staged_credits` (addressed to the upstream router).
  void tick(std::vector<StagedFlit>& staged_flits,
            std::vector<StagedCredit>& staged_credits);

  /// Flits currently buffered (for drain detection).
  [[nodiscard]] std::size_t buffered_flits() const;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const RouterConfig& config() const { return config_; }

  /// Count of flits that traversed this router's crossbar.
  [[nodiscard]] std::uint64_t crossbar_traversals() const {
    return crossbar_traversals_;
  }

 private:
  struct InputVc {
    std::deque<Flit> fifo;
    bool routed = false;      ///< head flit's route computed
    std::uint8_t out_port = 0;
    bool vc_allocated = false;
    std::uint8_t out_vc = 0;
  };

  /// XY dimension-order route for `dst` from this router.
  [[nodiscard]] std::uint8_t route(NodeId dst) const;

  /// Try to allocate a free VC on `out_port`; returns the VC or nullopt.
  [[nodiscard]] std::optional<std::uint8_t> allocate_output_vc(
      std::uint8_t out_port);

  NodeId id_;
  std::uint16_t width_;
  std::uint16_t height_;
  RouterConfig config_;

  /// input_[port][vc]
  std::array<std::vector<InputVc>, kPortCount> input_;
  /// credits_[port][vc]: free downstream slots on each output.
  std::array<std::vector<std::uint32_t>, kPortCount> credits_;
  /// out_vc_busy_[port][vc]: output VC currently owned by a packet.
  std::array<std::vector<bool>, kPortCount> out_vc_busy_;
  /// Round-robin pointers per output port over (in_port * V + in_vc).
  std::array<std::uint32_t, kPortCount> rr_pointer_{};

  std::uint64_t crossbar_traversals_ = 0;
};

}  // namespace optiplet::noc
