#include "noc/elec_interposer_model.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace optiplet::noc {

ElecInterposerModel::ElecInterposerModel(
    const ElecInterposerModelConfig& config,
    const power::ElectricalTech& tech)
    : config_(config), tech_(tech) {
  OPTIPLET_REQUIRE(config.hotspot_efficiency > 0.0 &&
                       config.hotspot_efficiency <= 1.0,
                   "hotspot efficiency must be in (0,1]");
  OPTIPLET_REQUIRE(config.average_hops >= 1.0, "average hops must be >= 1");
}

double ElecInterposerModel::port_bandwidth_bps() const {
  return static_cast<double>(config_.mesh.link_width_bits) *
         config_.mesh.clock_hz;
}

double ElecInterposerModel::effective_read_bandwidth_bps() const {
  return port_bandwidth_bps() * config_.hotspot_efficiency;
}

double ElecInterposerModel::read_round_trip_s(double hops) const {
  const double cycle_s = 1.0 / config_.mesh.clock_hz;
  const double per_hop = static_cast<double>(
      config_.mesh.router_pipeline_cycles + config_.mesh.link_latency_cycles);
  // Request traverses `hops`, memory turnaround ~4 cycles, response returns.
  return (2.0 * (2.0 + hops * per_hop) + 4.0) * cycle_s;
}

double ElecInterposerModel::chiplet_read_bandwidth_bps(double hops) const {
  const double word_bits =
      static_cast<double>(config_.mesh.link_width_bits);
  return config_.outstanding_read_words * word_bits /
         read_round_trip_s(hops);
}

double ElecInterposerModel::layer_read_bandwidth_bps(std::size_t chiplets,
                                                     double hops) const {
  OPTIPLET_REQUIRE(chiplets >= 1, "layer needs at least one reader");
  const double mshr_limit =
      static_cast<double>(chiplets) * chiplet_read_bandwidth_bps(hops);
  return std::min(mshr_limit, effective_read_bandwidth_bps());
}

double ElecInterposerModel::transfer_latency_s(std::uint64_t bits,
                                               double hops) const {
  const double cycle_s = 1.0 / config_.mesh.clock_hz;
  const double per_hop = static_cast<double>(
      config_.mesh.router_pipeline_cycles + config_.mesh.link_latency_cycles);
  const double pipeline_s = (2.0 + hops * per_hop) * cycle_s;
  const double serialization_s =
      static_cast<double>(bits) / effective_read_bandwidth_bps();
  return pipeline_s + serialization_s;
}

double ElecInterposerModel::transfer_energy_j(std::uint64_t bits,
                                              double hops) const {
  const double b = static_cast<double>(bits);
  return b * (hops * tech_.router_energy_per_bit_j +
              hops * tech_.wire_energy_per_bit_per_m *
                  config_.mesh.hop_distance_m +
              2.0 * tech_.phy_energy_per_bit_j);
}

double ElecInterposerModel::static_power_w() const {
  const double nodes = static_cast<double>(config_.mesh.width) *
                       static_cast<double>(config_.mesh.height);
  return nodes * tech_.router_static_w;
}

}  // namespace optiplet::noc
