#pragma once
/// \file mesh.hpp
/// Cycle-accurate 2-D mesh NoC: routers + pipelined links + network
/// interfaces, with latency statistics and energy accounting.
///
/// This is the model behind the 2.5D-CrossLight-Elec-Interposer: an active
/// electrical interposer mesh with one router per chiplet site (128-bit
/// links at 2 GHz per Table 1). It also calibrates the transaction-level
/// electrical model used by the full-system simulator (DESIGN.md §3).
///
/// Timing model per hop: `router_pipeline_cycles` (RC/VA/SA/ST) +
/// `link_latency_cycles` (pipelined interposer wire). The router itself
/// resolves in one tick; the remaining pipeline depth is folded into the
/// link delay, which reproduces the standard per-hop latency without
/// simulating each pipeline register.

#include <cstdint>
#include <deque>
#include <vector>

#include "noc/flit.hpp"
#include "noc/router.hpp"
#include "power/energy_ledger.hpp"
#include "power/tech_params.hpp"
#include "sim/stats.hpp"
#include "util/units.hpp"

namespace optiplet::noc {

struct MeshConfig {
  std::uint16_t width = 3;
  std::uint16_t height = 3;
  RouterConfig router{};
  /// Link (and NI port) width [bits] — Table 1: 128.
  std::uint32_t link_width_bits = 128;
  /// NoC clock [Hz] — Table 1: 2 GHz.
  double clock_hz = 2.0 * units::GHz;
  /// Wire pipeline stages per hop.
  std::uint32_t link_latency_cycles = 2;
  /// Router pipeline depth (total per-hop latency adds link_latency).
  std::uint32_t router_pipeline_cycles = 4;
  /// Physical distance per hop on the interposer [m] (energy model).
  double hop_distance_m = 5.0 * units::mm;
};

/// Latency/throughput results of a mesh run.
struct MeshStats {
  sim::RunningStat packet_latency_cycles;
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_ejected = 0;
  std::uint64_t flits_ejected = 0;
  std::uint64_t flit_hops = 0;      ///< crossbar traversals
  std::uint64_t link_traversals = 0;
  std::uint64_t cycles = 0;

  /// Delivered throughput [flits/node/cycle].
  [[nodiscard]] double throughput_flits_per_node_cycle(
      std::size_t node_count) const {
    if (cycles == 0 || node_count == 0) {
      return 0.0;
    }
    return static_cast<double>(flits_ejected) /
           (static_cast<double>(cycles) * static_cast<double>(node_count));
  }
};

/// The mesh simulator.
class ElectricalMesh {
 public:
  ElectricalMesh(const MeshConfig& config,
                 const power::ElectricalTech& tech);

  /// Queue a packet at its source NI. `size_bits` is segmented into
  /// link-width flits. Injection begins at the next step().
  void inject(NodeId src, NodeId dst, std::uint32_t size_bits);

  /// Advance one clock cycle.
  void step();

  /// Run until all queued traffic has drained or `max_cycles` elapse;
  /// returns true when drained.
  bool run_until_drained(std::uint64_t max_cycles);

  /// True when no packet or flit is anywhere in the network.
  [[nodiscard]] bool drained() const;

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] std::size_t node_count() const {
    return static_cast<std::size_t>(config_.width) * config_.height;
  }
  [[nodiscard]] const MeshConfig& config() const { return config_; }
  [[nodiscard]] const MeshStats& stats() const { return stats_; }

  /// Energy spent so far, per the ElectricalTech constants.
  [[nodiscard]] power::EnergyLedger energy() const;

  /// Zero-load latency for a `size_bits` packet over `hops` hops [cycles]:
  /// per-hop pipeline + serialization. Used by tests and by the
  /// transaction-level calibration.
  [[nodiscard]] std::uint64_t zero_load_latency_cycles(
      std::uint32_t size_bits, std::uint32_t hops) const;

  /// Minimal hop count between two nodes.
  [[nodiscard]] std::uint32_t hop_distance(NodeId a, NodeId b) const;

 private:
  struct InFlight {
    std::uint64_t deliver_cycle = 0;
    Flit flit;
    std::uint8_t vc = 0;
  };
  struct CreditInFlight {
    std::uint64_t deliver_cycle = 0;
    std::uint8_t vc = 0;
  };
  /// One directed channel between a router output and a neighbour input
  /// (or between NI and router local port).
  struct Channel {
    std::deque<InFlight> flits;
    std::deque<CreditInFlight> credits;
  };
  struct NetworkInterface {
    std::deque<Packet> pending;
    std::uint32_t flits_sent_of_current = 0;
    std::vector<std::uint32_t> credits;  ///< toward router local port, per VC
    std::uint8_t next_vc = 0;
  };

  [[nodiscard]] NodeId neighbour(NodeId node, std::uint8_t port) const;
  [[nodiscard]] static std::uint8_t opposite(std::uint8_t port);
  [[nodiscard]] std::size_t channel_index(NodeId node,
                                          std::uint8_t out_port) const;

  MeshConfig config_;
  power::ElectricalTech tech_;
  std::vector<Router> routers_;
  /// channels_[node * kPortCount + out_port]: the channel leaving `node`
  /// through `out_port` (kLocal = ejection toward the NI sink).
  std::vector<Channel> channels_;
  std::vector<NetworkInterface> nis_;
  std::uint64_t cycle_ = 0;
  std::uint64_t next_packet_id_ = 0;
  MeshStats stats_;
  std::vector<StagedFlit> scratch_flits_;
  std::vector<StagedCredit> scratch_credits_;
};

}  // namespace optiplet::noc
