#pragma once
/// \file photonic_gateway.hpp
/// Photonic gateway model (paper §V, Fig. 5).
///
/// A gateway is the electrical/optical boundary of a chiplet: electronic
/// buffering + SerDes on the chiplet, microbumps down to a Microring
/// Resonator Group (MRG) on the interposer. A writer gateway modulates its
/// wavelength sub-band onto its waveguide; a reader gateway filters and
/// detects. The model answers: serialization bandwidth, store-and-forward
/// latency, and energy per transferred bit.

#include <cstdint>

#include "photonics/microring_group.hpp"
#include "photonics/photodetector.hpp"
#include "power/tech_params.hpp"
#include "util/units.hpp"

namespace optiplet::noc {

struct GatewayConfig {
  /// Wavelengths this gateway modulates/filters (its WDM sub-band).
  std::size_t wavelength_count = 16;
  /// Per-wavelength modulation rate [bit/s] — Table 1: 12 Gb/s.
  double data_rate_per_wavelength_bps = 12.0 * units::Gbps;
  /// Gateway digital clock [Hz] — Table 1: 2 GHz.
  double clock_hz = 2.0 * units::GHz;
  /// Store-and-forward buffer depth [bits] (sets the chunk the gateway
  /// accumulates before modulating; 2 KB typical).
  std::uint64_t buffer_bits = 16'384;
};

/// One gateway (electrical half + interposer MRG half).
class PhotonicGateway {
 public:
  PhotonicGateway(const GatewayConfig& config,
                  const power::PhotonicTech& tech,
                  const photonics::WdmGrid& grid, std::size_t channel_offset,
                  std::size_t modulator_rows, std::size_t filter_rows);

  /// Peak serialization bandwidth [bit/s] = wavelengths * rate.
  [[nodiscard]] double bandwidth_bps() const;

  /// Store-and-forward latency for one buffered chunk [s]: buffer fill at
  /// the digital clock + E/O + O/E conversion margins.
  [[nodiscard]] double store_forward_latency_s() const;

  /// Time to push `bits` through this gateway at full rate [s].
  [[nodiscard]] double serialization_time_s(std::uint64_t bits) const;

  /// Dynamic energy to transmit `bits` (serializer + modulators + gateway
  /// digital back-end) [J].
  [[nodiscard]] double transmit_energy_j(std::uint64_t bits) const;

  /// Dynamic energy to receive `bits` (PD/TIA + deserializer + digital) [J].
  [[nodiscard]] double receive_energy_j(std::uint64_t bits) const;

  /// Static power while the gateway is active [W]: MRG ring tuning + clock.
  [[nodiscard]] double active_static_power_w() const;

  /// The interposer-side ring bank.
  [[nodiscard]] const photonics::MicroringGroup& mrg() const { return mrg_; }

  [[nodiscard]] const GatewayConfig& config() const { return config_; }

 private:
  GatewayConfig config_;
  power::PhotonicTech tech_;
  photonics::MicroringGroup mrg_;
  photonics::Photodetector pd_;
};

}  // namespace optiplet::noc
