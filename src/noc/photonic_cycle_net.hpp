#pragma once
/// \file photonic_cycle_net.hpp
/// Cycle-accurate photonic interposer network (paper §V, Fig. 6) on the
/// two-phase sim::CycleEngine — the high-fidelity counterpart of the
/// closed-form PhotonicInterposer transaction model.
///
/// What the analytical model cannot see, this one simulates per gateway
/// clock cycle:
///   * **SWMR broadcast arbitration** — the memory writer serializes read
///     transfers onto the shared WDM medium; each transfer is granted a
///     wavelength slice bounded by the destination reader's active filter
///     rows (active_gateways * wavelengths_per_gateway) and by the channels
///     still free on the bus, so contention at reader gateways queues
///     transfers instead of averaging them away;
///   * **SWSR return channels** — one dedicated waveguide per compute
///     chiplet back to the memory chiplet, serialized at the chiplet's
///     currently active gateway bandwidth;
///   * **serialization** at the configured symbol rate and modulation
///     (line_rate / gateway_clock bits per channel per cycle), plus
///     store-and-forward buffering and photon time of flight;
///   * **ReSiPI epochs in-cycle** — the embedded ResipiController observes
///     real injected demand at epoch boundaries; gateway activation changes
///     take effect at the epoch commit and stall the affected chiplet's
///     gateways for the PCM write latency (the reconfiguration transient).
///
/// Determinism: no randomness, fixed iteration orders, and the two-phase
/// evaluate/commit contract — results are bit-identical for any component
/// registration order and across SweepRunner thread counts.

#include <cstdint>
#include <vector>

#include "noc/photonic_interposer.hpp"
#include "noc/resipi_controller.hpp"
#include "power/tech_params.hpp"
#include "sim/cycle_engine.hpp"
#include "sim/stats.hpp"

namespace optiplet::noc {

struct PhotonicCycleNetConfig {
  PhotonicInterposerConfig interposer{};
  ResipiConfig resipi{};
  /// Chiplets managed as read/write endpoints (defaults to
  /// interposer.compute_chiplets when 0).
  std::size_t chiplet_count = 0;
  /// When false, every gateway is pinned active and no epochs run — the
  /// pure-medium characterization mode used by the traffic bench.
  bool resipi_enabled = true;
  /// Observability sink, forwarded to the embedded ResipiController
  /// (`noc.resipi.*` series) and used for per-epoch trace spans on an
  /// "epoch" track plus a metrics snapshot at every epoch boundary. Null
  /// disables observability. Not owned; must outlive the net.
  obs::Recorder* recorder = nullptr;
};

/// One retired transfer, for per-layer latency accounting.
struct CompletedTransfer {
  std::uint64_t id = 0;
  bool is_write = false;
  std::uint64_t inject_cycle = 0;
  std::uint64_t done_cycle = 0;  ///< delivery incl. time of flight
};

/// Aggregate statistics over the run so far.
struct PhotonicCycleNetStats {
  sim::RunningStat read_latency_cycles;
  sim::RunningStat write_latency_cycles;
  std::uint64_t read_bits_delivered = 0;
  std::uint64_t write_bits_delivered = 0;
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t epochs = 0;
  /// Cycles during which at least one chiplet was stalled on a PCM write.
  std::uint64_t stall_cycles = 0;
};

/// The cycle-accurate photonic interposer.
class PhotonicCycleNet {
 public:
  PhotonicCycleNet(const PhotonicCycleNetConfig& config,
                   const power::PhotonicTech& tech);

  // ---- traffic ----

  /// Queue a memory->chiplet read transfer; returns its id.
  std::uint64_t inject_read(std::size_t chiplet, std::uint64_t bits);

  /// Queue one broadcast read transfer delivered to every chiplet in
  /// `targets` simultaneously (the SWMR input broadcast); returns its id.
  std::uint64_t inject_broadcast(const std::vector<std::size_t>& targets,
                                 std::uint64_t bits);

  /// Queue a chiplet->memory write transfer; returns its id.
  std::uint64_t inject_write(std::size_t chiplet, std::uint64_t bits);

  // ---- simulation ----

  /// Advance one gateway clock cycle (both engine phases).
  void step();

  /// True when no transfer is queued or in flight.
  [[nodiscard]] bool drained() const;

  /// Run until drained or `max_cycles` elapse; returns true when drained.
  bool run_until_drained(std::uint64_t max_cycles);

  /// Fast-forward `cycles` of traffic-free time (compute phases between
  /// layers): epoch boundaries still fire — with whatever demand the
  /// partial epoch accumulated, then zero — so ReSiPI downshifts exactly as
  /// it would under per-cycle stepping, without stepping per cycle.
  /// Requires drained().
  void advance_idle(std::uint64_t cycles);

  /// advance_idle() in seconds of the gateway clock domain.
  void advance_idle_s(double seconds);

  /// Sampled-fidelity fast-forward support: book one layer's per-chiplet
  /// traffic demand (as inject_* would) and advance its wall-clock
  /// duration without simulating the transfers. Epoch boundaries fire on
  /// the real clock-aligned grid with real cross-layer demand carry, so
  /// the embedded ReSiPI controller marches through the demand history of
  /// layers the caller simulated analytically and a later cycle-simulated
  /// window starts from the same activation state a continuous cycle run
  /// would have reached (instead of a stale configuration that inflates
  /// the window's measured transfer time). Requires drained();
  /// reconfiguration counts/energy accrue to the controller as usual.
  void warm_layer(const std::vector<std::uint64_t>& demand_bits,
                  double duration_s);

  // ---- observability ----

  [[nodiscard]] std::uint64_t cycle() const { return now_; }
  [[nodiscard]] double clock_hz() const {
    return config_.interposer.gateway_clock_hz;
  }
  [[nodiscard]] double time_s() const {
    return static_cast<double>(now_) / clock_hz();
  }
  [[nodiscard]] const PhotonicCycleNetStats& stats() const { return stats_; }
  /// Retired transfers in completion order (grows monotonically; callers
  /// track their own read index for windowed accounting).
  [[nodiscard]] const std::vector<CompletedTransfer>& completed() const {
    return completed_;
  }
  [[nodiscard]] const ResipiController& controller() const {
    return controller_;
  }
  /// Sum over elapsed cycles of total active gateways (time-weighted
  /// activation integral, for static-power accounting).
  [[nodiscard]] std::uint64_t gateway_cycle_weight() const {
    return gateway_cycle_weight_;
  }
  [[nodiscard]] std::size_t chiplet_count() const { return chiplets_.size(); }
  [[nodiscard]] double bits_per_cycle_per_channel() const {
    return bits_per_cycle_per_channel_;
  }
  [[nodiscard]] std::uint64_t store_forward_cycles() const {
    return store_forward_cycles_;
  }
  [[nodiscard]] std::uint64_t time_of_flight_cycles() const {
    return tof_cycles_;
  }
  [[nodiscard]] std::uint64_t epoch_cycles() const { return epoch_cycles_; }
  [[nodiscard]] const PhotonicCycleNetConfig& config() const {
    return config_;
  }
  /// True while `chiplet`'s gateways are dark mid-PCM-write.
  [[nodiscard]] bool stalled(std::size_t chiplet) const;

 private:
  struct ReadTransfer {
    std::uint64_t id = 0;
    std::vector<std::size_t> targets;
    std::uint64_t payload_bits = 0;
    double remaining_bits = 0.0;
    std::uint64_t inject_cycle = 0;
    std::uint64_t eligible_cycle = 0;  ///< after store-and-forward fill
    std::size_t channels = 0;          ///< granted wavelength slice
    bool granted = false;
  };
  struct WriteTransfer {
    std::uint64_t id = 0;
    std::uint64_t payload_bits = 0;
    double remaining_bits = 0.0;
    std::uint64_t inject_cycle = 0;
    std::uint64_t eligible_cycle = 0;
  };
  struct ChipletState {
    std::vector<WriteTransfer> write_queue;  ///< FIFO, head serializing
    std::size_t read_channels_in_use = 0;
    std::uint64_t stall_until_cycle = 0;
    std::uint64_t epoch_demand_bits = 0;
  };

  /// Phase hooks for the three engine components. The net is the single
  /// owner of all state; the component objects only dispatch into it.
  void evaluate_broadcast();
  void commit_broadcast();
  void evaluate_returns();
  void commit_returns();
  void commit_epoch();

  void run_epoch_boundary(std::uint64_t boundary_cycle);
  [[nodiscard]] std::size_t reader_capacity(std::size_t chiplet) const;
  [[nodiscard]] std::size_t active_gateways(std::size_t chiplet) const;
  void retire(std::uint64_t id, bool is_write, std::uint64_t inject_cycle,
              std::uint64_t bits);

  /// Adapter binding one evaluate/commit pair to the engine.
  class Component : public sim::CycleComponent {
   public:
    using Hook = void (PhotonicCycleNet::*)();
    Component(PhotonicCycleNet& net, Hook evaluate, Hook commit)
        : net_(net), evaluate_(evaluate), commit_(commit) {}
    void evaluate(std::uint64_t) override {
      if (evaluate_ != nullptr) (net_.*evaluate_)();
    }
    void commit(std::uint64_t) override {
      if (commit_ != nullptr) (net_.*commit_)();
    }

   private:
    PhotonicCycleNet& net_;
    Hook evaluate_;
    Hook commit_;
  };

  PhotonicCycleNetConfig config_;
  PhotonicInterposer interposer_;
  ResipiController controller_;
  sim::CycleEngine engine_;
  Component broadcast_component_;
  Component return_component_;
  Component epoch_component_;

  // Derived timing constants (gateway clock domain).
  double bits_per_cycle_per_channel_ = 0.0;
  std::uint64_t store_forward_cycles_ = 0;
  std::uint64_t tof_cycles_ = 0;
  std::uint64_t epoch_cycles_ = 0;
  std::uint64_t pcm_write_cycles_ = 0;

  /// The authoritative clock: engine cycles plus idle fast-forward. All
  /// transfer timing uses this so advance_idle() keeps epochs and
  /// latencies aligned (engine_.cycle() lags it after a fast-forward).
  std::uint64_t now_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t free_channels_ = 0;

  std::vector<ReadTransfer> reads_;  ///< FIFO: granted + waiting
  std::vector<ChipletState> chiplets_;

  // Staged during evaluate, applied at commit (two-phase contract).
  std::vector<std::size_t> retired_read_slots_;
  std::vector<std::size_t> granted_read_slots_;
  std::vector<std::size_t> granted_read_channels_;
  std::vector<std::size_t> retired_write_chiplets_;

  std::vector<CompletedTransfer> completed_;
  PhotonicCycleNetStats stats_;
  std::uint64_t gateway_cycle_weight_ = 0;

  /// Trace track for epoch spans (allocated once when config_.recorder
  /// traces; 0 otherwise).
  std::uint64_t epoch_track_ = 0;
};

}  // namespace optiplet::noc
