#include "noc/traffic.hpp"

#include "util/require.hpp"

namespace optiplet::noc {

SyntheticTrafficHarness::SyntheticTrafficHarness(
    ElectricalMesh& mesh, const SyntheticTrafficConfig& config)
    : mesh_(mesh), config_(config), rng_(config.seed) {
  OPTIPLET_REQUIRE(config.injection_rate > 0.0 && config.injection_rate <= 1.0,
                   "injection rate must be in (0,1]");
  OPTIPLET_REQUIRE(config.packet_bits >= 1, "empty packets");
  OPTIPLET_REQUIRE(config.hotspot < mesh.node_count(),
                   "hotspot node out of range");
  flits_per_packet_ = static_cast<double>(
      flits_for(config.packet_bits, mesh.config().link_width_bits));
}

NodeId SyntheticTrafficHarness::pick_destination(NodeId src) {
  const auto n = static_cast<NodeId>(mesh_.node_count());
  const std::uint16_t w = mesh_.config().width;
  const std::uint16_t h = mesh_.config().height;
  switch (config_.pattern) {
    case TrafficPattern::kUniformRandom: {
      NodeId dst = src;
      while (dst == src) {
        dst = static_cast<NodeId>(rng_.next_below(n));
      }
      return dst;
    }
    case TrafficPattern::kHotspotReads:
      // handled in inject_cycle_traffic (single source)
      return config_.hotspot;
    case TrafficPattern::kHotspotWrites:
      return config_.hotspot;
    case TrafficPattern::kTranspose: {
      const NodeId x = src % w;
      const NodeId y = src / w;
      // Transpose is defined on square meshes; clamp otherwise.
      const NodeId tx = static_cast<NodeId>(y % w);
      const NodeId ty = static_cast<NodeId>(x % h);
      return static_cast<NodeId>(ty * w + tx);
    }
    case TrafficPattern::kBitComplement:
      return static_cast<NodeId>(n - 1 - src);
    case TrafficPattern::kNearestNeighbour: {
      const NodeId x = src % w;
      return static_cast<NodeId>((src / w) * w + ((x + 1) % w));
    }
  }
  return src;
}

void SyntheticTrafficHarness::inject_cycle_traffic() {
  const double packet_rate = config_.injection_rate / flits_per_packet_;
  if (config_.pattern == TrafficPattern::kHotspotReads) {
    // All traffic originates at the hot node (memory chiplet broadcastless
    // reads): aggregate injection is rate * (n-1) packets worth of flits.
    const auto n = mesh_.node_count();
    for (std::size_t k = 0; k + 1 < n; ++k) {
      if (rng_.next_bool(packet_rate)) {
        NodeId dst = config_.hotspot;
        while (dst == config_.hotspot) {
          dst = static_cast<NodeId>(rng_.next_below(n));
        }
        mesh_.inject(config_.hotspot, dst, config_.packet_bits);
      }
    }
    return;
  }
  for (NodeId src = 0; src < mesh_.node_count(); ++src) {
    if (config_.pattern == TrafficPattern::kHotspotWrites &&
        src == config_.hotspot) {
      continue;
    }
    if (rng_.next_bool(packet_rate)) {
      const NodeId dst = pick_destination(src);
      if (dst != src) {
        mesh_.inject(src, dst, config_.packet_bits);
      }
    }
  }
}

void SyntheticTrafficHarness::run(std::uint64_t warmup_cycles,
                                  std::uint64_t measure_cycles,
                                  std::uint64_t drain_limit_cycles) {
  for (std::uint64_t c = 0; c < warmup_cycles; ++c) {
    inject_cycle_traffic();
    mesh_.step();
  }
  const auto& stats = mesh_.stats();
  const double latency_sum_before = stats.packet_latency_cycles.sum();
  const std::uint64_t packets_before = stats.packet_latency_cycles.count();
  const std::uint64_t flits_before = stats.flits_ejected;

  for (std::uint64_t c = 0; c < measure_cycles; ++c) {
    inject_cycle_traffic();
    mesh_.step();
  }
  flits_delivered_window_ = stats.flits_ejected - flits_before;
  measure_start_cycle_ = warmup_cycles;
  measure_end_cycle_ = warmup_cycles + measure_cycles;

  // Drain: stop injecting, let in-flight packets finish (bounded).
  std::uint64_t drained = 0;
  while (!mesh_.drained() && drained < drain_limit_cycles) {
    mesh_.step();
    ++drained;
  }

  measured_packets_ = stats.packet_latency_cycles.count() - packets_before;
  latency_sum_ = stats.packet_latency_cycles.sum() - latency_sum_before;
  latency_mean_ =
      measured_packets_ ? latency_sum_ / static_cast<double>(measured_packets_)
                        : 0.0;
}

double SyntheticTrafficHarness::mean_latency_cycles() const {
  return latency_mean_;
}

double SyntheticTrafficHarness::throughput_flits_per_node_cycle() const {
  const std::uint64_t window = measure_end_cycle_ - measure_start_cycle_;
  if (window == 0) {
    return 0.0;
  }
  return static_cast<double>(flits_delivered_window_) /
         (static_cast<double>(window) *
          static_cast<double>(mesh_.node_count()));
}

}  // namespace optiplet::noc
