#include "noc/photonic_gateway.hpp"

#include "util/require.hpp"

namespace optiplet::noc {

namespace {

photonics::MicroringGroupConfig make_mrg_config(
    const GatewayConfig& config, const power::PhotonicTech& tech,
    std::size_t modulator_rows, std::size_t filter_rows) {
  photonics::MicroringGroupConfig mrg;
  mrg.wavelengths_per_row = config.wavelength_count;
  mrg.modulator_rows = modulator_rows;
  mrg.filter_rows = filter_rows;
  mrg.ring_design = tech.ring;
  mrg.ring_tuning = tech.tuning;
  return mrg;
}

}  // namespace

PhotonicGateway::PhotonicGateway(const GatewayConfig& config,
                                 const power::PhotonicTech& tech,
                                 const photonics::WdmGrid& grid,
                                 std::size_t channel_offset,
                                 std::size_t modulator_rows,
                                 std::size_t filter_rows)
    : config_(config),
      tech_(tech),
      mrg_(make_mrg_config(config, tech, modulator_rows, filter_rows), grid,
           channel_offset),
      pd_(tech.photodetector) {
  OPTIPLET_REQUIRE(config.wavelength_count >= 1,
                   "gateway needs at least one wavelength");
  OPTIPLET_REQUIRE(config.data_rate_per_wavelength_bps > 0.0,
                   "data rate must be positive");
  OPTIPLET_REQUIRE(config.clock_hz > 0.0, "clock must be positive");
  OPTIPLET_REQUIRE(
      pd_.supports_rate(config.data_rate_per_wavelength_bps),
      "photodetector bandwidth cannot sustain the per-wavelength rate");
}

double PhotonicGateway::bandwidth_bps() const {
  return static_cast<double>(config_.wavelength_count) *
         config_.data_rate_per_wavelength_bps;
}

double PhotonicGateway::store_forward_latency_s() const {
  // The electronic half accumulates a buffer chunk at the gateway clock
  // (paper: "buffers to store and forward data"), then launches it; E/O and
  // O/E conversions add a handful of cycles each.
  const double fill_s = static_cast<double>(config_.buffer_bits) /
                        (config_.clock_hz * 128.0);  // 128-bit datapath
  const double conversion_s = 8.0 / config_.clock_hz;  // 4 cycles each side
  return fill_s + conversion_s;
}

double PhotonicGateway::serialization_time_s(std::uint64_t bits) const {
  return static_cast<double>(bits) / bandwidth_bps();
}

double PhotonicGateway::transmit_energy_j(std::uint64_t bits) const {
  return mrg_.modulation_energy_j(bits) +
         static_cast<double>(bits) *
             (tech_.serializer_energy_per_bit_j +
              tech_.gateway_digital_energy_per_bit_j);
}

double PhotonicGateway::receive_energy_j(std::uint64_t bits) const {
  return pd_.receive_energy_j(bits) +
         static_cast<double>(bits) * tech_.gateway_digital_energy_per_bit_j;
}

double PhotonicGateway::active_static_power_w() const {
  return mrg_.static_tuning_power_w() + tech_.gateway_static_w;
}

}  // namespace optiplet::noc
