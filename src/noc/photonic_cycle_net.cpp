#include "noc/photonic_cycle_net.hpp"

#include <algorithm>
#include <cmath>

#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace optiplet::noc {

namespace {

PhotonicCycleNetConfig resolve_config(PhotonicCycleNetConfig config) {
  if (config.chiplet_count == 0) {
    config.chiplet_count = config.interposer.compute_chiplets;
  }
  return config;
}

std::uint64_t cycles_for(double seconds, double clock_hz) {
  return static_cast<std::uint64_t>(std::ceil(seconds * clock_hz - 1e-9));
}

/// Serialization progress below this many bits counts as done (guards the
/// floating-point remainder of fractional bits-per-cycle rates).
constexpr double kRemainderTolerance = 1e-6;

}  // namespace

PhotonicCycleNet::PhotonicCycleNet(const PhotonicCycleNetConfig& config,
                                   const power::PhotonicTech& tech)
    : config_(resolve_config(config)),
      interposer_(config_.interposer, tech),
      controller_(config_.resipi, config_.chiplet_count,
                  config_.interposer.gateways_per_chiplet,
                  interposer_.gateway_bandwidth_bps(), tech.pcm),
      engine_(config_.interposer.gateway_clock_hz),
      broadcast_component_(*this, &PhotonicCycleNet::evaluate_broadcast,
                           &PhotonicCycleNet::commit_broadcast),
      return_component_(*this, &PhotonicCycleNet::evaluate_returns,
                        &PhotonicCycleNet::commit_returns),
      epoch_component_(*this, nullptr, &PhotonicCycleNet::commit_epoch),
      chiplets_(config_.chiplet_count) {
  const double clock = config_.interposer.gateway_clock_hz;
  bits_per_cycle_per_channel_ =
      photonics::line_rate_bps(config_.interposer.modulation,
                               config_.interposer
                                   .data_rate_per_wavelength_bps) /
      clock;
  OPTIPLET_REQUIRE(bits_per_cycle_per_channel_ > 0.0,
                   "line rate must be positive");
  store_forward_cycles_ =
      cycles_for(interposer_.compute_gateway().store_forward_latency_s(),
                 clock);
  tof_cycles_ = cycles_for(interposer_.time_of_flight_s(), clock);
  epoch_cycles_ = std::max<std::uint64_t>(
      1, cycles_for(config_.resipi.epoch_s, clock));
  pcm_write_cycles_ = cycles_for(tech.pcm.write_time_s, clock);
  free_channels_ = config_.interposer.total_wavelengths;

  engine_.register_component(broadcast_component_);
  engine_.register_component(return_component_);
  engine_.register_component(epoch_component_);

  controller_.set_recorder(config_.recorder);
  if (config_.recorder != nullptr && config_.recorder->tracing()) {
    obs::Recorder& rec = *config_.recorder;
    rec.trace().set_process_name(rec.pid(), "noc");
    epoch_track_ = rec.trace().track(rec.pid(), "resipi");
  }
}

std::size_t PhotonicCycleNet::active_gateways(std::size_t chiplet) const {
  return config_.resipi_enabled ? controller_.active_gateways(chiplet)
                                : config_.interposer.gateways_per_chiplet;
}

std::size_t PhotonicCycleNet::reader_capacity(std::size_t chiplet) const {
  return active_gateways(chiplet) * interposer_.wavelengths_per_gateway();
}

bool PhotonicCycleNet::stalled(std::size_t chiplet) const {
  OPTIPLET_REQUIRE(chiplet < chiplets_.size(), "chiplet index out of range");
  return chiplets_[chiplet].stall_until_cycle > now_;
}

std::uint64_t PhotonicCycleNet::inject_read(std::size_t chiplet,
                                            std::uint64_t bits) {
  return inject_broadcast({chiplet}, bits);
}

std::uint64_t PhotonicCycleNet::inject_broadcast(
    const std::vector<std::size_t>& targets, std::uint64_t bits) {
  OPTIPLET_REQUIRE(!targets.empty(), "broadcast needs at least one target");
  OPTIPLET_REQUIRE(bits >= 1, "empty transfer");
  ReadTransfer t;
  t.id = next_id_++;
  t.targets = targets;
  for (const std::size_t c : t.targets) {
    OPTIPLET_REQUIRE(c < chiplets_.size(), "chiplet index out of range");
    chiplets_[c].epoch_demand_bits += bits;
  }
  t.payload_bits = bits;
  t.remaining_bits = static_cast<double>(bits);
  t.inject_cycle = now_;
  t.eligible_cycle = now_ + store_forward_cycles_;
  reads_.push_back(std::move(t));
  return reads_.back().id;
}

std::uint64_t PhotonicCycleNet::inject_write(std::size_t chiplet,
                                             std::uint64_t bits) {
  OPTIPLET_REQUIRE(chiplet < chiplets_.size(), "chiplet index out of range");
  OPTIPLET_REQUIRE(bits >= 1, "empty transfer");
  WriteTransfer t;
  t.id = next_id_++;
  t.payload_bits = bits;
  t.remaining_bits = static_cast<double>(bits);
  t.inject_cycle = now_;
  t.eligible_cycle = now_ + store_forward_cycles_;
  chiplets_[chiplet].epoch_demand_bits += bits;
  chiplets_[chiplet].write_queue.push_back(std::move(t));
  return chiplets_[chiplet].write_queue.back().id;
}

void PhotonicCycleNet::retire(std::uint64_t id, bool is_write,
                              std::uint64_t inject_cycle, std::uint64_t bits) {
  CompletedTransfer done;
  done.id = id;
  done.is_write = is_write;
  done.inject_cycle = inject_cycle;
  done.done_cycle = now_ + 1 + tof_cycles_;
  const auto latency = static_cast<double>(done.done_cycle - inject_cycle);
  if (is_write) {
    stats_.write_latency_cycles.add(latency);
    stats_.write_bits_delivered += bits;
    ++stats_.writes_completed;
  } else {
    stats_.read_latency_cycles.add(latency);
    stats_.read_bits_delivered += bits;
    ++stats_.reads_completed;
  }
  completed_.push_back(done);
}

// ---- SWMR broadcast (memory -> chiplets) -----------------------------------

void PhotonicCycleNet::evaluate_broadcast() {
  retired_read_slots_.clear();
  granted_read_slots_.clear();
  granted_read_channels_.clear();

  // 1. Progress granted transfers whose every target is unstalled; stage
  //    retirements. A stalled reader pauses the transfer: its filter rows
  //    are dark while the PCM write is in flight.
  for (std::size_t i = 0; i < reads_.size(); ++i) {
    ReadTransfer& t = reads_[i];
    if (!t.granted) {
      continue;
    }
    const bool paused = std::any_of(
        t.targets.begin(), t.targets.end(),
        [this](std::size_t c) { return stalled(c); });
    if (paused) {
      continue;
    }
    t.remaining_bits -= static_cast<double>(t.channels) *
                        bits_per_cycle_per_channel_;
    if (t.remaining_bits <= kRemainderTolerance) {
      retired_read_slots_.push_back(i);
    }
  }

  // 2. Grant waiting transfers in FIFO order. Each grant takes a fixed
  //    wavelength slice bounded by the medium's free channels and by every
  //    target reader's free filter capacity; transfers that cannot get a
  //    single channel wait, but later transfers to other readers may still
  //    grant (no head-of-line blocking across destinations). Channels freed
  //    by this cycle's retirements become grantable next cycle (filter-row
  //    re-tuning turnaround).
  std::size_t medium_free = free_channels_;
  std::vector<std::size_t> staged_in_use(chiplets_.size(), 0);
  for (std::size_t i = 0; i < reads_.size() && medium_free > 0; ++i) {
    const ReadTransfer& t = reads_[i];
    if (t.granted || now_ < t.eligible_cycle) {
      continue;
    }
    bool blocked = false;
    std::size_t cap = medium_free;
    for (const std::size_t c : t.targets) {
      if (stalled(c)) {
        blocked = true;
        break;
      }
      const std::size_t used =
          chiplets_[c].read_channels_in_use + staged_in_use[c];
      const std::size_t capacity = reader_capacity(c);
      if (used >= capacity) {
        blocked = true;
        break;
      }
      cap = std::min(cap, capacity - used);
    }
    if (blocked || cap == 0) {
      continue;
    }
    for (const std::size_t c : t.targets) {
      staged_in_use[c] += cap;
    }
    medium_free -= cap;
    granted_read_slots_.push_back(i);
    granted_read_channels_.push_back(cap);
  }
}

void PhotonicCycleNet::commit_broadcast() {
  for (std::size_t g = 0; g < granted_read_slots_.size(); ++g) {
    ReadTransfer& t = reads_[granted_read_slots_[g]];
    t.granted = true;
    t.channels = granted_read_channels_[g];
    free_channels_ -= t.channels;
    for (const std::size_t c : t.targets) {
      chiplets_[c].read_channels_in_use += t.channels;
    }
  }
  // Erase retired slots back to front so earlier indices stay valid.
  for (auto it = retired_read_slots_.rbegin();
       it != retired_read_slots_.rend(); ++it) {
    const ReadTransfer& t = reads_[*it];
    free_channels_ += t.channels;
    for (const std::size_t c : t.targets) {
      chiplets_[c].read_channels_in_use -= t.channels;
    }
    retire(t.id, /*is_write=*/false, t.inject_cycle, t.payload_bits);
    reads_.erase(reads_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
}

// ---- SWSR returns (chiplet -> memory) --------------------------------------

void PhotonicCycleNet::evaluate_returns() {
  retired_write_chiplets_.clear();
  for (std::size_t c = 0; c < chiplets_.size(); ++c) {
    ChipletState& state = chiplets_[c];
    if (state.write_queue.empty() || stalled(c)) {
      continue;
    }
    WriteTransfer& head = state.write_queue.front();
    // One cycle of modulator-row turnaround after eligibility, mirroring
    // the read path's grant cycle.
    if (now_ <= head.eligible_cycle) {
      continue;
    }
    // The dedicated return waveguide serializes at the chiplet's currently
    // active modulator bandwidth; activation changes apply per cycle.
    head.remaining_bits -= static_cast<double>(reader_capacity(c)) *
                           bits_per_cycle_per_channel_;
    if (head.remaining_bits <= kRemainderTolerance) {
      retired_write_chiplets_.push_back(c);
    }
  }
}

void PhotonicCycleNet::commit_returns() {
  for (const std::size_t c : retired_write_chiplets_) {
    ChipletState& state = chiplets_[c];
    const WriteTransfer head = state.write_queue.front();
    state.write_queue.erase(state.write_queue.begin());
    retire(head.id, /*is_write=*/true, head.inject_cycle, head.payload_bits);
  }
}

// ---- ReSiPI epochs ---------------------------------------------------------

void PhotonicCycleNet::commit_epoch() {
  std::uint64_t active = 0;
  bool any_stalled = false;
  for (std::size_t c = 0; c < chiplets_.size(); ++c) {
    active += active_gateways(c);
    any_stalled = any_stalled || stalled(c);
  }
  gateway_cycle_weight_ += active;
  if (any_stalled) {
    ++stats_.stall_cycles;
  }
  if (config_.resipi_enabled && (now_ + 1) % epoch_cycles_ == 0) {
    run_epoch_boundary(now_ + 1);
  }
}

void PhotonicCycleNet::run_epoch_boundary(std::uint64_t boundary_cycle) {
  std::vector<double> demands(chiplets_.size(), 0.0);
  for (std::size_t c = 0; c < chiplets_.size(); ++c) {
    demands[c] = static_cast<double>(chiplets_[c].epoch_demand_bits) /
                 config_.resipi.epoch_s;
  }
  std::vector<std::size_t> before(chiplets_.size(), 0);
  for (std::size_t c = 0; c < chiplets_.size(); ++c) {
    before[c] = controller_.active_gateways(c);
  }
  const std::size_t writes = controller_.observe_epoch(demands);
  for (std::size_t c = 0; c < chiplets_.size(); ++c) {
    chiplets_[c].epoch_demand_bits = 0;
    if (controller_.active_gateways(c) != before[c]) {
      // The PCM write gates this chiplet's gateways for the write latency:
      // the activation change commits now, the light comes back after it.
      chiplets_[c].stall_until_cycle = boundary_cycle + pcm_write_cycles_;
    }
  }
  ++stats_.epochs;
  if (config_.recorder != nullptr) {
    obs::Recorder& rec = *config_.recorder;
    const double end_s = static_cast<double>(boundary_cycle) / clock_hz();
    if (rec.tracing()) {
      const double start_s =
          static_cast<double>(boundary_cycle - epoch_cycles_) / clock_hz();
      rec.trace().add_complete(
          "epoch", "noc", start_s, end_s, rec.pid(), epoch_track_,
          {obs::arg("writes", static_cast<std::uint64_t>(writes)),
           obs::arg("active_gateways", static_cast<std::uint64_t>(
                                           controller_
                                               .total_active_gateways()))});
    }
    if (rec.metering()) {
      rec.metrics().snapshot(end_s);
    }
  }
}

// ---- driving ---------------------------------------------------------------

void PhotonicCycleNet::step() {
  engine_.step();
  ++now_;
}

bool PhotonicCycleNet::drained() const {
  if (!reads_.empty()) {
    return false;
  }
  for (const auto& c : chiplets_) {
    if (!c.write_queue.empty()) {
      return false;
    }
  }
  return true;
}

bool PhotonicCycleNet::run_until_drained(std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  while (n < max_cycles && !drained()) {
    step();
    ++n;
  }
  return drained();
}

void PhotonicCycleNet::advance_idle(std::uint64_t cycles) {
  OPTIPLET_REQUIRE(drained(), "advance_idle requires a drained network");
  const std::uint64_t end = now_ + cycles;
  while (now_ < end) {
    std::uint64_t next = end;
    if (config_.resipi_enabled) {
      const std::uint64_t boundary =
          (now_ / epoch_cycles_ + 1) * epoch_cycles_;
      next = std::min(next, boundary);
    }
    std::uint64_t active = 0;
    std::uint64_t stall_until_max = 0;
    for (std::size_t c = 0; c < chiplets_.size(); ++c) {
      active += active_gateways(c);
      stall_until_max =
          std::max(stall_until_max, chiplets_[c].stall_until_cycle);
    }
    gateway_cycle_weight_ += active * (next - now_);
    // Chunks run boundary to boundary, so every live stall window started
    // at or before now_: the stalled span inside this chunk is contiguous.
    if (stall_until_max > now_) {
      stats_.stall_cycles += std::min(next, stall_until_max) - now_;
    }
    now_ = next;
    if (config_.resipi_enabled && now_ % epoch_cycles_ == 0) {
      run_epoch_boundary(now_);
    }
  }
}

void PhotonicCycleNet::advance_idle_s(double seconds) {
  OPTIPLET_REQUIRE(seconds >= 0.0, "idle time must be non-negative");
  advance_idle(cycles_for(seconds, clock_hz()));
}

void PhotonicCycleNet::warm_layer(const std::vector<std::uint64_t>& demand_bits,
                                  double duration_s) {
  OPTIPLET_REQUIRE(drained(), "warm_layer requires a drained network");
  OPTIPLET_REQUIRE(demand_bits.size() == chiplets_.size(),
                   "warm_layer demand vector size mismatch");
  OPTIPLET_REQUIRE(duration_s >= 0.0, "layer duration must be non-negative");
  // Book the layer's traffic exactly as inject_* would, then fast-forward
  // its wall time: epoch boundaries fire on the real (clock-aligned) grid
  // with real cross-layer demand carry, so the controller upshifts,
  // downshifts, and hysteresis-holds through the fast-forwarded span just
  // as it would in a continuous cycle run.
  for (std::size_t c = 0; c < chiplets_.size(); ++c) {
    chiplets_[c].epoch_demand_bits += demand_bits[c];
  }
  advance_idle_s(duration_s);
}

}  // namespace optiplet::noc
