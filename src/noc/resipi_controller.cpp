#include "noc/resipi_controller.hpp"

#include <algorithm>
#include <cmath>

#include "obs/recorder.hpp"
#include "util/require.hpp"

namespace optiplet::noc {

ResipiController::ResipiController(
    const ResipiConfig& config, std::size_t chiplet_count,
    std::size_t gateways_per_chiplet, double gateway_bandwidth_bps,
    const photonics::PcmCouplerDesign& pcm_design)
    : config_(config),
      gateways_per_chiplet_(gateways_per_chiplet),
      gateway_bandwidth_bps_(gateway_bandwidth_bps),
      pcm_design_(pcm_design),
      active_(chiplet_count, config.min_active_gateways) {
  OPTIPLET_REQUIRE(chiplet_count >= 1, "controller needs chiplets");
  OPTIPLET_REQUIRE(gateways_per_chiplet >= 1,
                   "chiplets need at least one gateway");
  OPTIPLET_REQUIRE(config.min_active_gateways >= 1 &&
                       config.min_active_gateways <= gateways_per_chiplet,
                   "min active gateways out of range");
  OPTIPLET_REQUIRE(gateway_bandwidth_bps > 0.0,
                   "gateway bandwidth must be positive");
  OPTIPLET_REQUIRE(config.target_utilization > 0.0 &&
                       config.target_utilization <= 1.0,
                   "target utilization must be in (0,1]");
  OPTIPLET_REQUIRE(config.epoch_s > 0.0, "epoch must be positive");
}

std::size_t ResipiController::required_gateways(double demand_bps) const {
  OPTIPLET_REQUIRE(demand_bps >= 0.0, "demand must be non-negative");
  const double provisioned =
      demand_bps / (gateway_bandwidth_bps_ * config_.target_utilization);
  const auto needed =
      static_cast<std::size_t>(std::ceil(provisioned - 1e-12));
  return std::clamp(needed, config_.min_active_gateways,
                    gateways_per_chiplet_);
}

std::size_t ResipiController::observe_epoch(
    const std::vector<double>& demand_bps) {
  OPTIPLET_REQUIRE(demand_bps.size() == active_.size(),
                   "demand vector size must match chiplet count");
  std::size_t changes = 0;
  for (std::size_t c = 0; c < active_.size(); ++c) {
    const std::size_t needed = required_gateways(demand_bps[c]);
    std::size_t next = active_[c];
    if (needed > active_[c]) {
      next = needed;  // upshift immediately: latency matters under load
    } else if (needed < active_[c]) {
      // Hysteresis: only downshift when the smaller configuration would
      // still run comfortably below the downshift threshold.
      const double util_at_needed =
          demand_bps[c] /
          (static_cast<double>(needed) * gateway_bandwidth_bps_);
      if (util_at_needed <= config_.downshift_utilization) {
        next = needed;
      }
    }
    if (next != active_[c]) {
      const std::size_t delta =
          next > active_[c] ? next - active_[c] : active_[c] - next;
      changes += delta;
      // One PCMC write per gateway whose laser feed changes state.
      pcm_write_energy_j_ +=
          static_cast<double>(delta) * pcm_design_.write_energy_j;
      reconfigurations_ += delta;
      active_[c] = next;
    }
  }
  if (recorder_ != nullptr && recorder_->metering()) {
    obs::MetricsRegistry& m = recorder_->metrics();
    m.add("noc.resipi.epochs");
    m.add("noc.resipi.writes", static_cast<double>(changes));
    m.set("noc.resipi.active_gateways",
          static_cast<double>(total_active_gateways()));
  }
  return changes;
}

std::size_t ResipiController::active_gateways(std::size_t chiplet) const {
  OPTIPLET_REQUIRE(chiplet < active_.size(), "chiplet index out of range");
  return active_[chiplet];
}

std::size_t ResipiController::total_active_gateways() const {
  std::size_t n = 0;
  for (std::size_t a : active_) {
    n += a;
  }
  return n;
}

double ResipiController::reconfiguration_energy_j() const {
  return pcm_write_energy_j_;
}

}  // namespace optiplet::noc
