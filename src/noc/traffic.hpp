#pragma once
/// \file traffic.hpp
/// Synthetic and trace traffic for the cycle-accurate mesh.
///
/// Synthetic patterns are the standard NoC evaluation set (uniform random,
/// hotspot, transpose, bit-complement, nearest-neighbour); the hotspot
/// pattern with the memory chiplet as the hot node is the one that matches
/// the DNN accelerator's read traffic and is used for calibrating the
/// transaction-level electrical model.

#include <cstdint>
#include <vector>

#include "noc/mesh.hpp"
#include "util/rng.hpp"

namespace optiplet::noc {

enum class TrafficPattern {
  kUniformRandom,
  kHotspotReads,     ///< all nodes receive from one hot source (DNN reads)
  kHotspotWrites,    ///< all nodes send to one hot sink (DNN writes)
  kTranspose,
  kBitComplement,
  kNearestNeighbour,
};

struct SyntheticTrafficConfig {
  TrafficPattern pattern = TrafficPattern::kUniformRandom;
  /// Offered load [flits/node/cycle] in (0, 1].
  double injection_rate = 0.1;
  /// Packet payload [bits].
  std::uint32_t packet_bits = 512;
  /// Hot node for the hotspot patterns.
  NodeId hotspot = 0;
  std::uint64_t seed = 0x5eed;
};

/// Drives an ElectricalMesh with a synthetic workload and collects steady-
/// state statistics with warmup exclusion.
class SyntheticTrafficHarness {
 public:
  SyntheticTrafficHarness(ElectricalMesh& mesh,
                          const SyntheticTrafficConfig& config);

  /// Run `warmup + measure` cycles of injection, then drain (bounded).
  /// Statistics cover packets injected during the measurement window.
  void run(std::uint64_t warmup_cycles, std::uint64_t measure_cycles,
           std::uint64_t drain_limit_cycles = 2'000'000);

  /// Mean packet latency over measured packets [cycles].
  [[nodiscard]] double mean_latency_cycles() const;

  /// Delivered throughput over the measurement window [flits/node/cycle].
  [[nodiscard]] double throughput_flits_per_node_cycle() const;

  [[nodiscard]] std::uint64_t measured_packets() const {
    return measured_packets_;
  }

 private:
  /// Destination for a packet from `src` under the configured pattern.
  [[nodiscard]] NodeId pick_destination(NodeId src);

  void inject_cycle_traffic();

  ElectricalMesh& mesh_;
  SyntheticTrafficConfig config_;
  util::Xoshiro256 rng_;
  double flits_per_packet_;
  std::uint64_t measured_packets_ = 0;
  double latency_sum_ = 0.0;
  std::uint64_t measure_start_cycle_ = 0;
  std::uint64_t measure_end_cycle_ = 0;
  std::uint64_t ejected_before_ = 0;
  std::uint64_t ejected_after_ = 0;
  double latency_mean_ = 0.0;
  std::uint64_t flits_delivered_window_ = 0;
};

}  // namespace optiplet::noc
