#include "core/system_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "noc/photonic_cycle_net.hpp"
#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::core {

namespace {

/// DDR access energy for the monolithic chip's off-package memory [J/bit]
/// (DDR4-class; the 2.5D platforms use the HBM chiplet instead).
constexpr double kDdrEnergyPerBit = 15.0e-12;

/// Closed-form SiPh layer estimate: what the analytical path charges for
/// one layer. Under kSampled this is evaluated for *every* layer (keeping
/// the estimator's ReSiPI controller marching through a continuous demand
/// history) and doubles as the denominator of the correction ratio.
struct SiphEstimate {
  double read_s = 0.0;
  double write_s = 0.0;
  double overhead_s = 0.0;
  std::size_t gateways = 0;      ///< active per assigned chiplet
  std::size_t total_active = 0;  ///< across all chiplets
};

}  // namespace

SystemSimulator::SystemSimulator(const SystemConfig& config)
    : config_(config) {
  OPTIPLET_REQUIRE(config.parameter_bits >= 1, "parameter bits must be >= 1");
  OPTIPLET_REQUIRE(config.monolithic_memory_bandwidth_bps > 0.0,
                   "monolithic memory bandwidth must be positive");
  OPTIPLET_REQUIRE(config.batch_size >= 1, "batch size must be >= 1");
}

dnn::Workload SystemSimulator::batched_workload(
    const dnn::Model& model) const {
  dnn::Workload w = dnn::compute_workload(model, config_.parameter_bits);
  if (config_.batch_size == 1) {
    return w;
  }
  // Weights stream once per batch; compute and activations scale with the
  // batch. (MR weight banks hold the layer's kernel while the batch's
  // activation windows slide through — the broadcast-and-weight reuse.)
  const std::uint64_t n = config_.batch_size;
  w.total_macs = 0;
  w.total_activation_bits = 0;
  for (auto& layer : w.layers) {
    layer.macs *= n;
    layer.input_bits *= n;
    layer.output_bits *= n;
    layer.dot_count *= n;
    w.total_macs += layer.macs;
    w.total_activation_bits += layer.input_bits + layer.output_bits;
  }
  return w;
}

RunResult SystemSimulator::run(const dnn::Model& model,
                               accel::Architecture arch) const {
  if (arch == accel::Architecture::kMonolithicCrossLight) {
    return run_monolithic(model);
  }
  return run_2p5d(model, arch);
}

void SystemSimulator::charge_compute(
    power::EnergyLedger& ledger, const accel::Platform& platform,
    const accel::LayerAssignment& assignment, std::uint64_t macs,
    double layer_s) const {
  // Compute chiplet lasers cannot be duty-cycled at layer granularity
  // (settling is orders of magnitude slower than a layer): every chiplet
  // holds its optical bias for the whole inference, on all architectures.
  // What ReSiPI gates dynamically is the interposer network, charged in
  // run_2p5d. Dynamic (DAC/ADC/buffer) energy follows the work.
  for (const auto& group : platform.groups()) {
    const bool assigned = group.chiplet.kind() == assignment.group;
    const double chiplets = static_cast<double>(group.chiplet_count);
    ledger.charge_power_for(
        "compute.laser",
        group.chiplet.laser_electrical_power_w() * chiplets, layer_s);
    ledger.charge_power_for(
        "compute.rings", group.chiplet.ring_tuning_power_w() * chiplets,
        layer_s);
    ledger.charge_power_for(
        "compute.electronics",
        group.chiplet.electronics_static_power_w() * chiplets, layer_s);
    if (assigned) {
      ledger.charge_energy("compute.dynamic",
                           group.chiplet.dynamic_energy_j(macs));
    }
  }
}

RunResult SystemSimulator::run_monolithic(const dnn::Model& model) const {
  RunResult result;
  result.model_name = model.name();
  result.arch = accel::Architecture::kMonolithicCrossLight;

  const dnn::Workload workload =
      batched_workload(model);
  const accel::Platform platform(
      accel::make_monolithic_spec(config_.monolithic_scale_divisor),
      config_.tech);
  const auto assignments = accel::map_layers(workload, platform);

  // The monolithic die shares one laser distribution across all unit
  // groups: it cannot be gated per layer, so the whole die's static power
  // burns for the full inference (the §V energy-efficiency argument).
  const double die_static_w = platform.peak_compute_power_w();

  // Small models live entirely in the die's global SRAM buffer: weights
  // stay resident across inferences and activations never leave the chip.
  const bool resident =
      workload.total_weight_bits <= config_.monolithic_onchip_buffer_bits;

  for (std::size_t i = 0; i < workload.layers.size(); ++i) {
    const dnn::LayerWork& lw = workload.layers[i];
    const accel::LayerAssignment& a = assignments[i];

    LayerResult lr;
    lr.layer_index = lw.layer_index;
    lr.group = a.group;
    lr.chiplets_used = 1;
    lr.compute_s = static_cast<double>(lw.macs) / a.macs_per_s;
    const std::uint64_t reads = resident ? 0 : lw.weight_bits + lw.input_bits;
    const std::uint64_t writes = resident ? 0 : lw.output_bits;
    lr.read_s = static_cast<double>(reads) /
                config_.monolithic_memory_bandwidth_bps;
    lr.write_s = static_cast<double>(writes) /
                 config_.monolithic_memory_bandwidth_bps;
    lr.overhead_s = config_.layer_overhead_monolithic_s;
    // Reads and writes share the single DDR port; the stream overlaps
    // compute through the on-die double buffers.
    lr.total_s =
        std::max(lr.compute_s, lr.read_s + lr.write_s) + lr.overhead_s;
    result.latency_s += lr.total_s;

    result.ledger.charge_power_for("compute.die_static", die_static_w,
                                   lr.total_s);
    result.ledger.charge_energy(
        "compute.dynamic",
        platform.group_for(a.group).chiplet.dynamic_energy_j(lw.macs));
    result.ledger.charge_energy(
        "memory.ddr_access",
        static_cast<double>(reads + writes) * kDdrEnergyPerBit);
    result.layers.push_back(lr);
  }
  if (resident) {
    // Resident models still move the input image in and the result out.
    const double io_s = static_cast<double>(
                            workload.layers.front().input_bits +
                            workload.layers.back().output_bits) /
                        config_.monolithic_memory_bandwidth_bps;
    result.latency_s += io_s;
    result.ledger.charge_power_for("compute.die_static", die_static_w, io_s);
  }
  result.ledger.charge_power_for("memory.interface_static",
                                 config_.tech.compute.hbm_static_w,
                                 result.latency_s);

  result.traffic_bits = workload.total_traffic_bits();
  result.energy_j = result.ledger.total_energy_j(result.latency_s);
  result.average_power_w = result.energy_j / result.latency_s;
  result.epb_j_per_bit =
      result.energy_j / static_cast<double>(result.traffic_bits);
  return result;
}

RunResult SystemSimulator::run_2p5d(const dnn::Model& model,
                                    accel::Architecture arch) const {
  OPTIPLET_REQUIRE(arch == accel::Architecture::kElec2p5D ||
                       arch == accel::Architecture::kSiph2p5D,
                   "run_2p5d expects a 2.5D architecture");
  RunResult result;
  result.model_name = model.name();
  result.arch = arch;

  const dnn::Workload workload =
      batched_workload(model);
  const accel::Platform platform(config_.compute_2p5d, config_.tech);
  const auto assignments = accel::map_layers(workload, platform);

  const bool siph = arch == accel::Architecture::kSiph2p5D;
  const noc::PhotonicInterposer interposer(config_.photonic,
                                           config_.tech.photonic);
  const noc::ElecInterposerModel elec(config_.electrical,
                                      config_.tech.electrical);

  // Chiplet indexing for the ReSiPI controller: platform groups in order.
  std::size_t chiplet_count = platform.total_chiplets();
  noc::ResipiController controller(
      config_.resipi, chiplet_count, config_.photonic.gateways_per_chiplet,
      interposer.gateway_bandwidth_bps(), config_.tech.photonic.pcm);

  // High-fidelity photonic path: drive transfers through the
  // cycle-accurate interposer; its embedded controller sees real demand at
  // real epoch boundaries. kCycleAccurate routes every layer through it
  // (the outer `controller` then stays unused); kSampled routes the seeded
  // window subset and fast-forwards the rest on the analytical estimator.
  const bool cycle_siph =
      siph && config_.fidelity.mode == Fidelity::kCycleAccurate;
  const bool sampled_siph =
      siph && config_.fidelity.mode == Fidelity::kSampled;
  const std::vector<bool> sample_mask =
      sampled_siph ? sampled_layer_mask(workload.layers.size(),
                                        config_.fidelity, config_.batch_size)
                   : std::vector<bool>(workload.layers.size(), false);
  const bool any_sampled =
      std::find(sample_mask.begin(), sample_mask.end(), true) !=
      sample_mask.end();
  std::optional<noc::PhotonicCycleNet> net;
  if (cycle_siph || any_sampled) {
    noc::PhotonicCycleNetConfig net_cfg;
    net_cfg.interposer = config_.photonic;
    net_cfg.resipi = config_.resipi;
    net_cfg.chiplet_count = chiplet_count;
    net.emplace(net_cfg, config_.tech.photonic);
  }

  // First chiplet index of each group (groups are laid out contiguously).
  std::vector<std::size_t> group_first_chiplet;
  {
    std::size_t base = 0;
    for (const auto& g : platform.groups()) {
      group_first_chiplet.push_back(base);
      base += g.chiplet_count;
    }
  }

  double gateway_time_weight = 0.0;  // sum over layers of gw_active * t

  // Closed-form SiPh communication time for one layer at a given gateway
  // provisioning (pure function of the layer and the activation state).
  // Shared by the analytical estimate and by the sampled mode, which
  // re-evaluates it at the cycle net's own activation state so
  // fast-forwarded layers see the provisioning a continuous cycle run
  // would actually have reached.
  const auto siph_comm_at = [&](const dnn::LayerWork& lw,
                                const accel::LayerAssignment& a,
                                std::size_t gateways) {
    const double chiplets = static_cast<double>(a.chiplets_used);
    const std::uint64_t reads = lw.weight_bits + lw.input_bits;
    const std::uint64_t writes = lw.output_bits;
    const double chiplet_recv_bw = interposer.swsr_bandwidth_bps(gateways);
    const double read_bw =
        std::min(interposer.swmr_bandwidth_bps(
                     config_.photonic.total_wavelengths),
                 chiplets * chiplet_recv_bw);
    // Broadcast medium carries reads once; each chiplet's filter rows
    // must also keep up with its share + the broadcast inputs.
    const double per_chiplet_read_bits =
        static_cast<double>(lw.weight_bits) / chiplets +
        static_cast<double>(lw.input_bits);
    const double read_s = std::max(
        interposer.transfer_latency_s(reads, read_bw),
        interposer.transfer_latency_s(
            static_cast<std::uint64_t>(per_chiplet_read_bits),
            chiplet_recv_bw));
    const double write_s = interposer.transfer_latency_s(
        static_cast<std::uint64_t>(static_cast<double>(writes) / chiplets),
        chiplet_recv_bw);
    return std::make_pair(read_s, write_s);
  };

  // Closed-form SiPh layer estimate. Marches the outer `controller`
  // through the layer's epoch-averaged demand; pure computation otherwise
  // — no ledger charges — so the sampled mode can also evaluate it for
  // cycle-simulated layers (keeping the estimator's demand history
  // continuous) without double-charging energy.
  const auto estimate_siph_layer =
      [&](const dnn::LayerWork& lw, const accel::LayerAssignment& a,
          std::size_t group_index) -> SiphEstimate {
    const double chiplets = static_cast<double>(a.chiplets_used);
    const double compute_s = static_cast<double>(lw.macs) / a.macs_per_s;
    const std::uint64_t writes = lw.output_bits;
    // ReSiPI provisioning: demand per assigned chiplet if the layer ran at
    // compute speed (weights striped, inputs broadcast). The controller
    // sees epoch-averaged demand: layers shorter than an epoch cannot
    // justify more bandwidth than their bits spread over one epoch (this
    // is what keeps small models at minimum gateways).
    const double per_chiplet_bits =
        static_cast<double>(lw.weight_bits) / chiplets +
        static_cast<double>(lw.input_bits) +
        static_cast<double>(writes) / chiplets;
    const double demand_bps =
        per_chiplet_bits / std::max(compute_s, config_.resipi.epoch_s);
    std::vector<double> demands(chiplet_count, 0.0);
    for (std::size_t c = 0;
         c < platform.groups()[group_index].chiplet_count; ++c) {
      demands[group_first_chiplet[group_index] + c] = demand_bps;
    }
    const std::size_t changes = controller.observe_epoch(demands);
    SiphEstimate est;
    est.gateways =
        controller.active_gateways(group_first_chiplet[group_index]);
    est.total_active = controller.total_active_gateways();
    std::tie(est.read_s, est.write_s) = siph_comm_at(lw, a, est.gateways);
    // Epoch quantization: a configuration change takes effect at the next
    // epoch boundary; charge the expected half-epoch lag.
    est.overhead_s = config_.layer_overhead_2p5d_s +
                     (changes > 0 ? config_.resipi.epoch_s / 2.0 : 0.0);
    return est;
  };

  // Sampled-mode stitching state: running cycle/analytical ratio-of-sums
  // corrections (exactly 1.0 until the first sample lands, so zero-window
  // plans reproduce the analytical mode bit-for-bit) plus Welford moments
  // of the per-layer comm ratios for the confidence band. Ratio-of-sums
  // rather than a per-layer mean: it estimates the *time-weighted* ratio,
  // so heavyweight layers dominate the calibration the same way they
  // dominate the latency being corrected. Both the denominator here and
  // the fast-forward estimates are evaluated at the cycle net's own
  // gateway activation state (kept marching by warm_layer), so the
  // correction measures residual serialization/arbitration error rather
  // than provisioning mismatch. Comm and overhead calibrate separately
  // because the cycle net folds reconfiguration transients into the
  // measured transfer time while the analytical model charges them as a
  // half-epoch stall in the layer overhead.
  double sampled_cycle_comm_s = 0.0;
  double sampled_est_comm_s = 0.0;
  double sampled_cycle_overhead_s = 0.0;
  double sampled_est_overhead_s = 0.0;
  std::size_t ratio_count = 0;
  double ratio_mean = 0.0;
  double ratio_m2 = 0.0;
  const auto comm_correction = [&] {
    return sampled_est_comm_s > 0.0
               ? sampled_cycle_comm_s / sampled_est_comm_s
               : 1.0;
  };
  const auto overhead_correction = [&] {
    return sampled_est_overhead_s > 0.0
               ? sampled_cycle_overhead_s / sampled_est_overhead_s
               : 1.0;
  };

  for (std::size_t i = 0; i < workload.layers.size(); ++i) {
    const dnn::LayerWork& lw = workload.layers[i];
    const accel::LayerAssignment& a = assignments[i];
    const double chiplets = static_cast<double>(a.chiplets_used);

    LayerResult lr;
    lr.layer_index = lw.layer_index;
    lr.group = a.group;
    lr.chiplets_used = a.chiplets_used;
    lr.compute_s = static_cast<double>(lw.macs) / a.macs_per_s;

    const std::uint64_t reads = lw.weight_bits + lw.input_bits;
    const std::uint64_t writes = lw.output_bits;

    std::size_t group_index = 0;
    for (std::size_t g = 0; g < platform.groups().size(); ++g) {
      if (platform.groups()[g].chiplet.kind() == a.group) {
        group_index = g;
        break;
      }
    }

    if (cycle_siph || sample_mask[i]) {
      // --- Cycle-accurate photonic path: inject the layer's transfers and
      // let the interposer arbitrate them. Weights are striped (one read
      // per assigned chiplet), inputs broadcast once over the SWMR medium,
      // writes return per chiplet over the SWSR waveguides.
      std::optional<SiphEstimate> est;
      double den_read_s = 0.0;
      double den_write_s = 0.0;
      if (sampled_siph) {
        est = estimate_siph_layer(lw, a, group_index);
        // Calibration denominator: the closed-form comm at the net's
        // activation state on window entry — the same state
        // fast-forwarded layers are estimated at.
        std::tie(den_read_s, den_write_s) =
            siph_comm_at(lw, a,
                         net->controller().active_gateways(
                             group_first_chiplet[group_index]));
      }
      const std::uint64_t cycle0 = net->cycle();
      const std::size_t completed0 = net->completed().size();
      std::vector<std::size_t> targets;
      targets.reserve(a.chiplets_used);
      for (std::size_t c = 0; c < a.chiplets_used; ++c) {
        targets.push_back(group_first_chiplet[group_index] + c);
      }
      const std::uint64_t weight_slice =
          (lw.weight_bits + a.chiplets_used - 1) / a.chiplets_used;
      const std::uint64_t write_slice =
          (writes + a.chiplets_used - 1) / a.chiplets_used;
      for (const std::size_t t : targets) {
        if (weight_slice > 0) {
          net->inject_read(t, weight_slice);
        }
        if (write_slice > 0) {
          net->inject_write(t, write_slice);
        }
      }
      if (lw.input_bits > 0) {
        net->inject_broadcast(targets, lw.input_bits);
      }
      // Drain bound: the whole layer at the minimum single-gateway rate,
      // with slack for store-and-forward and reconfiguration stalls.
      const double min_rate = static_cast<double>(
                                  interposer.wavelengths_per_gateway()) *
                              net->bits_per_cycle_per_channel();
      const auto drain_limit = static_cast<std::uint64_t>(
          4.0 * static_cast<double>(reads + writes) / min_rate + 1e6);
      OPTIPLET_REQUIRE(net->run_until_drained(drain_limit),
                       "photonic cycle net failed to drain a layer");
      // Wall-clock read/write completion, measured from comm start and
      // including photon time of flight.
      double read_done_cycles = 0.0;
      double write_done_cycles = 0.0;
      for (std::size_t k = completed0; k < net->completed().size(); ++k) {
        const auto& done = net->completed()[k];
        const auto rel = static_cast<double>(done.done_cycle - cycle0);
        if (done.is_write) {
          write_done_cycles = std::max(write_done_cycles, rel);
        } else {
          read_done_cycles = std::max(read_done_cycles, rel);
        }
      }
      lr.read_s = read_done_cycles / net->clock_hz();
      lr.write_s = write_done_cycles / net->clock_hz();
      const double comm_s = std::max(lr.read_s, lr.write_s);
      // Epoch transients (PCM write stalls, provisioning lag) are already
      // inside comm_s; only the layer barrier overhead remains.
      lr.overhead_s = config_.layer_overhead_2p5d_s;
      lr.total_s = std::max(lr.compute_s, comm_s) + lr.overhead_s;

      const std::size_t gw = net->controller().active_gateways(
          group_first_chiplet[group_index]);
      lr.gateways_per_chiplet = gw;

      // Static power in two phases with consistent (time, activation)
      // pairs: the comm phase at the drain-time configuration, then the
      // network-idle compute tail — fast-forwarded so ReSiPI sees the
      // low-demand epochs — at the post-downshift configuration. (Within
      // each phase the activation is an epoch-granular snapshot.)
      const auto charge_static = [&](std::size_t chiplet_gw,
                                     std::size_t total_gw, double seconds) {
        const auto active_lambda = std::clamp<std::size_t>(
            chiplet_gw * interposer.wavelengths_per_gateway(), 1,
            config_.photonic.total_wavelengths);
        result.ledger.charge_power_for(
            "network.static",
            interposer.network_static_power_w(active_lambda, total_gw),
            seconds);
        gateway_time_weight += static_cast<double>(total_gw) * seconds;
      };
      const double elapsed_s =
          static_cast<double>(net->cycle() - cycle0) / net->clock_hz();
      const double comm_phase_s = std::min(elapsed_s, lr.total_s);
      charge_static(gw, net->controller().total_active_gateways(),
                    comm_phase_s);
      if (lr.total_s > elapsed_s) {
        net->advance_idle_s(lr.total_s - elapsed_s);
        charge_static(net->controller().active_gateways(
                          group_first_chiplet[group_index]),
                      net->controller().total_active_gateways(),
                      lr.total_s - elapsed_s);
      }
      result.ledger.charge_energy("network.transfer",
                                  interposer.transfer_energy_j(
                                      reads + writes));
      if (est) {
        // Calibrate the stitching corrections: accumulate the sampled
        // cycle-vs-analytical comm and overhead times (their ratio-of-sums
        // is the applied correction), with per-layer Welford moments of
        // the comm ratio for the band.
        const double analytic_comm = std::max(den_read_s, den_write_s);
        const double cycle_comm = std::max(lr.read_s, lr.write_s);
        if (analytic_comm > 0.0 && cycle_comm > 0.0) {
          sampled_cycle_comm_s += cycle_comm;
          sampled_est_comm_s += analytic_comm;
          const double ratio = cycle_comm / analytic_comm;
          ++ratio_count;
          const double delta = ratio - ratio_mean;
          ratio_mean += delta / static_cast<double>(ratio_count);
          ratio_m2 += delta * (ratio - ratio_mean);
        }
        if (est->overhead_s > 0.0 && lr.overhead_s > 0.0) {
          sampled_cycle_overhead_s += lr.overhead_s;
          sampled_est_overhead_s += est->overhead_s;
        }
        ++result.sampled_layers;
      }
    } else if (siph) {
      // --- Analytical photonic path (every layer at kAnalytical; the
      // fast-forwarded layers at kSampled, with the sampled correction
      // applied — an exact identity until the first sample lands).
      const SiphEstimate est = estimate_siph_layer(lw, a, group_index);
      std::size_t gw = est.gateways;
      std::size_t total_gw = est.total_active;
      double read_raw = est.read_s;
      double write_raw = est.write_s;
      if (sampled_siph && net) {
        // Fast-forward at the cycle net's *own* activation state — the
        // provisioning a continuous cycle run would actually be at, which
        // the estimator's one-epoch-per-layer self-model systematically
        // over-provisions. Zero-window plans never construct the net and
        // all-window plans never reach this branch, so both degeneracies
        // stay bit-exact.
        gw = net->controller().active_gateways(
            group_first_chiplet[group_index]);
        total_gw = net->controller().total_active_gateways();
        std::tie(read_raw, write_raw) = siph_comm_at(lw, a, gw);
      }
      lr.gateways_per_chiplet = gw;
      lr.read_s = read_raw * comm_correction();
      lr.write_s = write_raw * comm_correction();

      // Reads and writes ride different waveguides: they overlap.
      const double comm_s = std::max(lr.read_s, lr.write_s);
      lr.overhead_s = est.overhead_s * overhead_correction();
      lr.total_s = std::max(lr.compute_s, comm_s) + lr.overhead_s;

      if (sampled_siph && net) {
        // Book the layer's traffic into the net's epoch accounting and
        // fast-forward its wall time: the embedded controller marches
        // through the same clock-aligned epoch grid (upshifts, idle
        // downshifts, cross-layer demand carry) as a continuous cycle
        // run, so the next sampled window opens at realistic provisioning
        // instead of a stale configuration that would poison the
        // calibration.
        std::vector<std::uint64_t> demand_bits(chiplet_count, 0);
        const std::uint64_t weight_slice =
            (lw.weight_bits + a.chiplets_used - 1) / a.chiplets_used;
        const std::uint64_t write_slice =
            (writes + a.chiplets_used - 1) / a.chiplets_used;
        for (std::size_t c = 0; c < a.chiplets_used; ++c) {
          demand_bits[group_first_chiplet[group_index] + c] =
              weight_slice + write_slice + lw.input_bits;
        }
        net->warm_layer(demand_bits, lr.total_s);
      }

      // --- network energy ---
      // ReSiPI gates gateways, not wavelengths: the broadcast keeps lit the
      // sub-bands of the most-provisioned active reader (each gateway
      // listens on wavelengths_per_gateway channels of the shared grid).
      const auto active_lambda = std::clamp<std::size_t>(
          gw * interposer.wavelengths_per_gateway(), 1,
          config_.photonic.total_wavelengths);
      result.ledger.charge_power_for(
          "network.static",
          interposer.network_static_power_w(active_lambda, total_gw),
          lr.total_s);
      result.ledger.charge_energy("network.transfer",
                                  interposer.transfer_energy_j(
                                      reads + writes));
      gateway_time_weight += static_cast<double>(total_gw) * lr.total_s;
    } else {
      // --- Electrical mesh interposer: weights striped, inputs replicated
      // to every assigned chiplet (no broadcast on a mesh), word-granular
      // request-response reads with a small MSHR pool, writes posted
      // through the shared memory port. Limited gateway buffering: the
      // transfer does not overlap compute (store-and-forward per layer).
      const double read_volume =
          static_cast<double>(lw.weight_bits) +
          static_cast<double>(lw.input_bits) * chiplets;
      const double read_bw = elec.layer_read_bandwidth_bps(
          a.chiplets_used, config_.electrical.average_hops);
      lr.read_s = read_volume / read_bw +
                  elec.read_round_trip_s(config_.electrical.average_hops);
      lr.write_s = static_cast<double>(writes) /
                   elec.effective_read_bandwidth_bps();
      lr.overhead_s = config_.layer_overhead_2p5d_s;
      lr.total_s = lr.read_s + lr.write_s + lr.compute_s + lr.overhead_s;

      result.ledger.charge_power_for("network.static", elec.static_power_w(),
                                     lr.total_s);
      result.ledger.charge_energy(
          "network.transfer",
          elec.transfer_energy_j(
              static_cast<std::uint64_t>(read_volume) + writes,
              config_.electrical.average_hops));
    }

    charge_compute(result.ledger, platform, a, lw.macs, lr.total_s);
    result.ledger.charge_energy(
        "memory.hbm_access",
        static_cast<double>(reads + writes) *
            config_.tech.compute.hbm_energy_per_bit_j);

    result.latency_s += lr.total_s;
    result.layers.push_back(lr);
  }

  result.ledger.charge_power_for("memory.interface_static",
                                 config_.tech.compute.hbm_static_w,
                                 result.latency_s);
  if (siph) {
    // The net's controller executed every layer it exists for: real epochs
    // under cycle-simulated layers and warm_layer epochs under
    // fast-forwarded ones — a single continuous trajectory. Zero-window
    // plans (and pure analytical) have no net, so the estimator's totals
    // stand — which keeps all-window plans bit-identical to
    // kCycleAccurate and zero-window plans bit-identical to kAnalytical.
    const noc::ResipiController& resipi =
        net ? net->controller() : controller;
    result.resipi_reconfigurations = resipi.reconfiguration_count();
    result.resipi_energy_j = resipi.reconfiguration_energy_j();
    result.ledger.charge_energy("network.pcm_reconfig",
                                result.resipi_energy_j);
    result.mean_active_gateways =
        result.latency_s > 0.0 ? gateway_time_weight / result.latency_s : 0.0;
  }
  if (sampled_siph) {
    result.correction_factor = comm_correction();
    result.overhead_correction = overhead_correction();
    result.correction_lo = result.correction_factor;
    result.correction_hi = result.correction_factor;
    if (ratio_count > 1) {
      // Normal-quantile band from the Welford moments of the observed
      // per-layer ratios, centered on the applied (ratio-of-sums)
      // correction.
      const double z =
          util::normal_quantile(0.5 + config_.fidelity.confidence / 2.0);
      const double se =
          std::sqrt(ratio_m2 / (static_cast<double>(ratio_count) *
                                static_cast<double>(ratio_count - 1)));
      result.correction_lo = result.correction_factor - z * se;
      result.correction_hi = result.correction_factor + z * se;
    }
  }

  result.traffic_bits = workload.total_traffic_bits();
  result.energy_j = result.ledger.total_energy_j(result.latency_s);
  result.average_power_w = result.energy_j / result.latency_s;
  result.epb_j_per_bit =
      result.energy_j / static_cast<double>(result.traffic_bits);
  return result;
}

}  // namespace optiplet::core
