#include "core/dse.hpp"

#include "core/report.hpp"
#include "dnn/zoo.hpp"
#include "noc/photonic_interposer.hpp"
#include "util/require.hpp"

namespace optiplet::core {

std::vector<DsePoint> explore(const DseOptions& options,
                              const SystemConfig& base) {
  OPTIPLET_REQUIRE(!options.wavelengths.empty(), "empty wavelength axis");
  OPTIPLET_REQUIRE(!options.gateways_per_chiplet.empty(),
                   "empty gateway axis");
  OPTIPLET_REQUIRE(!options.modulations.empty(), "empty modulation axis");

  const std::vector<std::string> model_names =
      options.models.empty() ? dnn::zoo::model_names() : options.models;
  std::vector<dnn::Model> models;
  models.reserve(model_names.size());
  for (const auto& name : model_names) {
    models.push_back(dnn::zoo::by_name(name));
  }

  std::vector<DsePoint> points;
  for (const std::size_t wavelengths : options.wavelengths) {
    for (const std::size_t gateways : options.gateways_per_chiplet) {
      if (gateways == 0 || wavelengths % gateways != 0) {
        continue;
      }
      for (const auto modulation : options.modulations) {
        SystemConfig cfg = base;
        cfg.photonic.total_wavelengths = wavelengths;
        cfg.photonic.gateways_per_chiplet = gateways;
        cfg.photonic.modulation = modulation;
        const noc::PhotonicInterposer probe(cfg.photonic,
                                            cfg.tech.photonic);
        if (!probe.link_budget_feasible()) {
          continue;
        }
        const SystemSimulator sim(cfg);
        std::vector<RunResult> runs;
        runs.reserve(models.size());
        for (const auto& model : models) {
          runs.push_back(sim.run(model, options.arch));
        }
        const auto avg = average_runs("dse", runs);
        DsePoint p;
        p.wavelengths = wavelengths;
        p.gateways_per_chiplet = gateways;
        p.modulation = modulation;
        p.latency_s = avg.latency_s;
        p.power_w = avg.power_w;
        p.epb_j_per_bit = avg.epb_j_per_bit;
        points.push_back(p);
      }
    }
  }
  mark_pareto(points);
  return points;
}

void mark_pareto(std::vector<DsePoint>& points) {
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& other : points) {
      const bool dominates =
          other.latency_s <= p.latency_s && other.power_w <= p.power_w &&
          (other.latency_s < p.latency_s || other.power_w < p.power_w);
      if (dominates) {
        p.pareto = false;
        break;
      }
    }
  }
}

}  // namespace optiplet::core
