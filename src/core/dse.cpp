#include "core/dse.hpp"

#include "core/report.hpp"
#include "dnn/zoo.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "noc/photonic_interposer.hpp"
#include "util/require.hpp"

namespace optiplet::core {

std::vector<DsePoint> explore(const DseOptions& options,
                              const SystemConfig& base) {
  OPTIPLET_REQUIRE(!options.wavelengths.empty(), "empty wavelength axis");
  OPTIPLET_REQUIRE(!options.gateways_per_chiplet.empty(),
                   "empty gateway axis");
  OPTIPLET_REQUIRE(!options.modulations.empty(), "empty modulation axis");

  const std::vector<std::string> model_names =
      options.models.empty() ? dnn::zoo::model_names() : options.models;

  // Enumerate the feasible (wavelengths, gateways, modulation) combos in
  // nested-loop order; each combo fans out into one scenario per model.
  struct Combo {
    std::size_t wavelengths;
    std::size_t gateways;
    photonics::ModulationFormat modulation;
  };
  std::vector<Combo> combos;
  std::vector<engine::ScenarioSpec> specs;
  for (const std::size_t wavelengths : options.wavelengths) {
    for (const std::size_t gateways : options.gateways_per_chiplet) {
      if (gateways == 0 || wavelengths % gateways != 0) {
        continue;
      }
      for (const auto modulation : options.modulations) {
        engine::ScenarioSpec spec;
        spec.arch = options.arch;
        spec.batch_size = base.batch_size;
        spec.wavelengths = wavelengths;
        spec.gateways_per_chiplet = gateways;
        spec.modulation = modulation;
        // DSE discards spectrally infeasible interposer shapes for every
        // architecture option, matching the pre-engine behavior.
        SystemConfig probe_cfg = base;
        spec.apply(probe_cfg);
        const noc::PhotonicInterposer probe(probe_cfg.photonic,
                                            probe_cfg.tech.photonic);
        if (!probe.link_budget_feasible()) {
          continue;
        }
        combos.push_back(Combo{wavelengths, gateways, modulation});
        for (const auto& name : model_names) {
          spec.model = name;
          specs.push_back(spec);
        }
      }
    }
  }

  engine::SweepOptions sweep_options;
  sweep_options.threads = options.threads;
  engine::SweepRunner runner(base, sweep_options);
  const auto results = runner.run(specs);

  // Results come back in submission order: one models-sized block per
  // feasible combo.
  std::vector<DsePoint> points;
  points.reserve(combos.size());
  for (std::size_t c = 0; c < combos.size(); ++c) {
    std::vector<RunResult> runs;
    runs.reserve(model_names.size());
    for (std::size_t m = 0; m < model_names.size(); ++m) {
      runs.push_back(results[c * model_names.size() + m].run);
    }
    const auto avg = average_runs("dse", runs);
    DsePoint p;
    p.wavelengths = combos[c].wavelengths;
    p.gateways_per_chiplet = combos[c].gateways;
    p.modulation = combos[c].modulation;
    p.latency_s = avg.latency_s;
    p.power_w = avg.power_w;
    p.epb_j_per_bit = avg.epb_j_per_bit;
    points.push_back(p);
  }
  mark_pareto(points);
  return points;
}

void mark_pareto(std::vector<DsePoint>& points) {
  for (auto& p : points) {
    p.pareto = true;
    for (const auto& other : points) {
      const bool dominates =
          other.latency_s <= p.latency_s && other.power_w <= p.power_w &&
          (other.latency_s < p.latency_s || other.power_w < p.power_w);
      if (dominates) {
        p.pareto = false;
        break;
      }
    }
  }
}

}  // namespace optiplet::core
