#include "core/fidelity.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/strings.hpp"

namespace optiplet::core {
namespace {

/// Shortest %g spelling that parses back to exactly `value` — canonical
/// (one spelling per double) without dragging 17-digit noise into keys
/// and CSV cells for round knob values like 0.95.
std::string format_shortest(double value) {
  char buf[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    try {
      if (std::stod(buf) == value) {
        return buf;
      }
    } catch (const std::exception&) {
      break;
    }
  }
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) {
      return std::nullopt;  // overflow
    }
    value = value * 10 + digit;
  }
  return value;
}

std::optional<double> parse_unit_interval(std::string_view text) {
  try {
    std::size_t used = 0;
    const std::string owned(text);
    const double value = std::stod(owned, &used);
    if (used != owned.size() || !(value > 0.0) || !(value < 1.0)) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool is_sampling_knob(std::string_view name) {
  return name == "windows" || name == "w" || name == "layers" ||
         name == "l" || name == "seed" || name == "s" || name == "conf" ||
         name == "confidence";
}

/// Apply one `knob=value` pair; false on unknown knob or bad value.
bool apply_knob(FidelitySpec& spec, std::string_view name,
                std::string_view value) {
  if (name == "windows" || name == "w") {
    const auto v = parse_u64(value);
    if (!v || *v > 1u << 20) {
      return false;
    }
    spec.windows = static_cast<unsigned>(*v);
    return true;
  }
  if (name == "layers" || name == "l") {
    const auto v = parse_u64(value);
    if (!v || *v == 0 || *v > 1u << 20) {
      return false;
    }
    spec.window_layers = static_cast<unsigned>(*v);
    return true;
  }
  if (name == "seed" || name == "s") {
    const auto v = parse_u64(value);
    if (!v) {
      return false;
    }
    spec.seed = *v;
    return true;
  }
  if (name == "conf" || name == "confidence") {
    const auto v = parse_unit_interval(value);
    if (!v) {
      return false;
    }
    spec.confidence = *v;
    return true;
  }
  return false;
}

}  // namespace

std::string to_string(const FidelitySpec& spec) {
  if (spec.mode != Fidelity::kSampled) {
    return to_string(spec.mode);
  }
  std::ostringstream os;
  os << "sampled:windows=" << spec.windows << ",layers=" << spec.window_layers
     << ",seed=" << spec.seed << ",conf=" << format_shortest(spec.confidence);
  return os.str();
}

std::optional<FidelitySpec> fidelity_from_string(std::string_view name) {
  const std::size_t colon = name.find(':');
  const std::string_view head =
      colon == std::string_view::npos ? name : name.substr(0, colon);
  const std::string_view knobs =
      colon == std::string_view::npos ? std::string_view{}
                                      : name.substr(colon + 1);
  if (head == "analytical" || head == "tlm") {
    return colon == std::string_view::npos
               ? std::optional<FidelitySpec>{Fidelity::kAnalytical}
               : std::nullopt;  // knobs only exist on the sampled mode
  }
  if (head == "cycle" || head == "cycle-accurate") {
    return colon == std::string_view::npos
               ? std::optional<FidelitySpec>{Fidelity::kCycleAccurate}
               : std::nullopt;
  }
  if (head != "sampled") {
    return std::nullopt;
  }
  FidelitySpec spec(Fidelity::kSampled);
  if (colon == std::string_view::npos) {
    return spec;  // all knobs default
  }
  if (knobs.empty()) {
    return std::nullopt;  // "sampled:" with nothing after the colon
  }
  for (const auto& pair : util::split(std::string(knobs), ',')) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos ||
        !apply_knob(spec, std::string_view(pair).substr(0, eq),
                    std::string_view(pair).substr(eq + 1))) {
      return std::nullopt;
    }
  }
  return spec;
}

std::vector<std::string> split_fidelity_list(std::string_view text) {
  std::vector<std::string> out;
  for (const auto& part : util::split(std::string(text), ',')) {
    const std::size_t eq = part.find('=');
    const bool continues_sampled =
        !out.empty() && out.back().rfind("sampled", 0) == 0 &&
        eq != std::string::npos &&
        is_sampling_knob(std::string_view(part).substr(0, eq));
    if (continues_sampled) {
      // A knob token belongs to the sampled entry before it; re-attach
      // with ':' when the entry has no knob list yet.
      out.back() += out.back().find(':') == std::string::npos ? ':' : ',';
      out.back() += part;
    } else {
      out.push_back(part);
    }
  }
  return out;
}

std::vector<bool> sampled_layer_mask(std::size_t layer_count,
                                     const FidelitySpec& spec,
                                     std::uint64_t salt) {
  std::vector<bool> mask(layer_count, false);
  if (spec.mode != Fidelity::kSampled || layer_count == 0 ||
      spec.windows == 0) {
    return mask;
  }
  const std::size_t span = spec.window_layers;
  const std::size_t windows = spec.windows;
  if (windows * span >= layer_count) {
    mask.assign(layer_count, true);
    return mask;
  }
  // One window per equal stratum of the layer range; the start lands on a
  // seeded draw within the stratum, clamped so the window fits.
  util::SplitMix64 mixer(spec.seed);
  util::Xoshiro256 rng(mixer.next() ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                       (static_cast<std::uint64_t>(layer_count) << 20));
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t lo = w * layer_count / windows;
    const std::size_t hi = (w + 1) * layer_count / windows;
    std::size_t start = lo + rng.next_below(hi - lo);
    start = std::min(start, layer_count - span);
    for (std::size_t k = start; k < start + span; ++k) {
      mask[k] = true;
    }
  }
  return mask;
}

}  // namespace optiplet::core
