#pragma once
/// \file dse.hpp
/// Design-space exploration over the photonic interposer (paper §VII, open
/// challenge 3: "the architecture requires design-space exploration, e.g.,
/// in terms of the number of wavelengths, number of gateways per chiplet,
/// and number of MACs per chiplet").
///
/// `explore()` sweeps interposer configurations, discards spectrally
/// infeasible ones (MRG rows that exceed the ring FSR), evaluates the rest
/// across a model set, and `mark_pareto()` flags the latency/power
/// efficient frontier. examples/design_space_exploration.cpp is a thin
/// client of this API.

#include <cstddef>
#include <vector>

#include "core/system_simulator.hpp"
#include "photonics/modulation.hpp"

namespace optiplet::core {

/// One evaluated interposer design point.
struct DsePoint {
  std::size_t wavelengths = 64;
  std::size_t gateways_per_chiplet = 4;
  photonics::ModulationFormat modulation =
      photonics::ModulationFormat::kOok;
  /// Averages across the evaluated model set.
  double latency_s = 0.0;
  double power_w = 0.0;
  double epb_j_per_bit = 0.0;
  /// On the latency/power Pareto frontier (set by mark_pareto).
  bool pareto = false;
};

/// Sweep axes. Empty vectors keep the base configuration's value.
struct DseOptions {
  std::vector<std::size_t> wavelengths{16, 32, 64, 128};
  std::vector<std::size_t> gateways_per_chiplet{1, 2, 4, 8};
  std::vector<photonics::ModulationFormat> modulations{
      photonics::ModulationFormat::kOok};
  /// Model names to average over (Table-2 names); empty = all five.
  std::vector<std::string> models{};
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  /// Worker threads for the sweep (0 = hardware concurrency). Results are
  /// deterministic and identical for any thread count.
  std::size_t threads = 0;
};

/// Evaluate every feasible combination of the sweep axes on top of `base`.
/// Combinations where the wavelengths do not divide across the gateways,
/// or whose link budget cannot close, are skipped. Runs on the
/// engine::SweepRunner worker pool; point order is the deterministic
/// nested-loop order (wavelengths, then gateways, then modulation)
/// regardless of thread count.
[[nodiscard]] std::vector<DsePoint> explore(const DseOptions& options,
                                            const SystemConfig& base);

/// Flag the points not dominated on (latency_s, power_w): a point is
/// dominated when another is at least as good on both axes and strictly
/// better on one.
void mark_pareto(std::vector<DsePoint>& points);

}  // namespace optiplet::core
