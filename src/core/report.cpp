#include "core/report.hpp"

#include <map>

#include "util/require.hpp"

namespace optiplet::core {

std::vector<NormalizedPoint> normalize_to_monolithic(
    const std::vector<RunResult>& runs) {
  std::map<std::string, const RunResult*> mono;
  for (const auto& r : runs) {
    if (r.arch == accel::Architecture::kMonolithicCrossLight) {
      mono[r.model_name] = &r;
    }
  }
  std::vector<NormalizedPoint> points;
  points.reserve(runs.size());
  for (const auto& r : runs) {
    const auto it = mono.find(r.model_name);
    OPTIPLET_REQUIRE(it != mono.end(),
                     "no monolithic baseline run for model " + r.model_name);
    const RunResult& base = *it->second;
    NormalizedPoint p;
    p.model = r.model_name;
    p.arch = r.arch;
    p.power = r.average_power_w / base.average_power_w;
    p.latency = r.latency_s / base.latency_s;
    p.epb = r.epb_j_per_bit / base.epb_j_per_bit;
    points.push_back(p);
  }
  return points;
}

PlatformAverages average_runs(const std::string& name,
                              const std::vector<RunResult>& runs) {
  OPTIPLET_REQUIRE(!runs.empty(), "cannot average zero runs");
  PlatformAverages avg;
  avg.platform = name;
  for (const auto& r : runs) {
    avg.power_w += r.average_power_w;
    avg.latency_s += r.latency_s;
    avg.epb_j_per_bit += r.epb_j_per_bit;
  }
  const double n = static_cast<double>(runs.size());
  avg.power_w /= n;
  avg.latency_s /= n;
  avg.epb_j_per_bit /= n;
  return avg;
}

}  // namespace optiplet::core
