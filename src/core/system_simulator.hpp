#pragma once
/// \file system_simulator.hpp
/// Transaction-level full-system simulator (the paper's experiment engine).
///
/// For a (model, architecture) pair the simulator:
///   1. builds the platform (Table-1 chiplets or the monolithic die),
///   2. maps every compute layer to its affinity chiplet group,
///   3. walks the layers in execution order, computing per-layer compute
///      time, read/write communication time over the architecture's
///      interconnect model, ReSiPI gateway provisioning (SiPh), and
///      per-layer overheads,
///   4. charges every energy consumer into a power::EnergyLedger
///      (laser, rings, DAC/ADC, gateways, routers, HBM, controller),
///   5. reports average power, end-to-end latency, and energy-per-bit —
///      the three metrics of Fig. 7 and Table 3.
///
/// Communication time honors SystemConfig::fidelity: the analytical path
/// uses the closed-form interposer models; at Fidelity::kCycleAccurate the
/// SiPh transfers are injected into noc::PhotonicCycleNet and measured
/// cycle by cycle (ReSiPI epochs, PCM stalls, and reader-gateway
/// contention included). Fidelity::kSampled interleaves the two: a seeded
/// subset of layer windows (core::sampled_layer_mask) runs on the cycle
/// net while the rest fast-forward analytically, scaled by a calibrated
/// cycle/analytical correction factor whose confidence band lands in
/// RunResult — the Sniper-style sampling that makes cycle-quality sweeps
/// affordable.

#include <string>
#include <vector>

#include "accel/mapper.hpp"
#include "core/system_config.hpp"
#include "dnn/graph.hpp"
#include "dnn/workload.hpp"
#include "power/energy_ledger.hpp"

namespace optiplet::core {

/// Per-layer timing/provisioning breakdown.
struct LayerResult {
  std::size_t layer_index = 0;       ///< index into Model::layers()
  accel::MacKind group = accel::MacKind::kConv3;
  std::size_t chiplets_used = 1;
  double compute_s = 0.0;
  double read_s = 0.0;
  double write_s = 0.0;
  double overhead_s = 0.0;
  double total_s = 0.0;
  /// Active gateways per assigned chiplet (SiPh; 0 for other archs).
  std::size_t gateways_per_chiplet = 0;
};

/// Whole-inference result for one (model, architecture) pair.
struct RunResult {
  std::string model_name;
  accel::Architecture arch = accel::Architecture::kSiph2p5D;

  double latency_s = 0.0;
  double energy_j = 0.0;
  double average_power_w = 0.0;
  /// Useful bits moved per inference (weights + activations, identical
  /// across architectures for a given model — the EPB denominator).
  std::uint64_t traffic_bits = 0;
  double epb_j_per_bit = 0.0;

  power::EnergyLedger ledger;
  std::vector<LayerResult> layers;

  /// ReSiPI activity (SiPh only).
  std::uint64_t resipi_reconfigurations = 0;
  double resipi_energy_j = 0.0;
  double mean_active_gateways = 0.0;  ///< time-weighted, across all chiplets

  /// Sampled-fidelity stitching telemetry (Fidelity::kSampled on the SiPh
  /// architecture only; defaults otherwise). The correction factor is the
  /// ratio-of-sums of sampled cycle-vs-analytical communication times — a
  /// time-weighted estimate, so heavyweight layers dominate the
  /// calibration the same way they dominate the latency it corrects —
  /// applied to fast-forwarded layers; [lo, hi] is its
  /// FidelitySpec::confidence normal-quantile band over the per-layer
  /// ratio samples.
  std::size_t sampled_layers = 0;
  double correction_factor = 1.0;
  double correction_lo = 1.0;
  double correction_hi = 1.0;
  /// Ratio-of-sums of sampled cycle-vs-analytical layer overheads (the
  /// cycle net folds reconfiguration transients into measured transfer
  /// time, so its per-layer overhead is the bare barrier while the
  /// analytical model charges a half-epoch stall — this factor reconciles
  /// the two).
  double overhead_correction = 1.0;
};

/// The simulator. Stateless across runs; all state lives in the RunResult.
class SystemSimulator {
 public:
  explicit SystemSimulator(const SystemConfig& config);

  /// Simulate one inference of `model` on `arch`.
  [[nodiscard]] RunResult run(const dnn::Model& model,
                              accel::Architecture arch) const;

  [[nodiscard]] const SystemConfig& config() const { return config_; }

 private:
  RunResult run_monolithic(const dnn::Model& model) const;
  RunResult run_2p5d(const dnn::Model& model, accel::Architecture arch) const;

  /// Workload scaled to the configured batch size (weights stream once per
  /// batch; compute and activations scale with it).
  [[nodiscard]] dnn::Workload batched_workload(const dnn::Model& model) const;

  /// Compute-side energy shared by all architectures: assigned chiplets at
  /// active power for the layer duration, idle chiplets at the idle
  /// fraction, plus dynamic MAC energy.
  void charge_compute(power::EnergyLedger& ledger,
                      const accel::Platform& platform,
                      const accel::LayerAssignment& assignment,
                      std::uint64_t macs, double layer_s) const;

  SystemConfig config_;
};

}  // namespace optiplet::core
