#pragma once
/// \file report.hpp
/// Result aggregation and normalization helpers used by the benches:
/// Fig. 7 normalizes each metric per model to a reference architecture, and
/// Table 3 averages power/latency/EPB across the five models.

#include <string>
#include <vector>

#include "core/system_simulator.hpp"

namespace optiplet::core {

/// One Fig. 7 data point: a metric for (model, architecture), normalized to
/// the monolithic CrossLight value for the same model.
struct NormalizedPoint {
  std::string model;
  accel::Architecture arch = accel::Architecture::kMonolithicCrossLight;
  double power = 1.0;
  double latency = 1.0;
  double epb = 1.0;
};

/// Normalize a set of runs (grouped by model) to the monolithic entry of
/// each model. The input must contain a monolithic run for every model.
[[nodiscard]] std::vector<NormalizedPoint> normalize_to_monolithic(
    const std::vector<RunResult>& runs);

/// Table-3 row: per-architecture averages across models.
struct PlatformAverages {
  std::string platform;
  double power_w = 0.0;
  double latency_s = 0.0;
  double epb_j_per_bit = 0.0;
};

/// Average power/latency/EPB of `runs` belonging to one architecture
/// (arithmetic means across models, as Table 3 reports).
[[nodiscard]] PlatformAverages average_runs(const std::string& name,
                                            const std::vector<RunResult>& runs);

}  // namespace optiplet::core
