#pragma once
/// \file system_config.hpp
/// Top-level system configuration — the programmatic form of Table 1, plus
/// the modeling knobs DESIGN.md documents. Every bench builds a SystemConfig
/// (usually the default) and hands it to core::SystemSimulator.

#include <cstdint>

#include "accel/platform.hpp"
#include "core/fidelity.hpp"
#include "noc/elec_interposer_model.hpp"
#include "noc/photonic_interposer.hpp"
#include "noc/resipi_controller.hpp"
#include "power/tech_params.hpp"
#include "util/units.hpp"

namespace optiplet::core {

struct SystemConfig {
  power::TechParams tech{};

  /// Interconnect fidelity for SystemSimulator runs: the mode (analytical /
  /// cycle / sampled) plus the sampling knobs — see core/fidelity.hpp.
  FidelitySpec fidelity = Fidelity::kAnalytical;

  /// Photonic interposer (Table 1: 64 wavelengths at 12 Gb/s, 2 GHz
  /// gateways; 8 compute chiplets x 4 gateways).
  noc::PhotonicInterposerConfig photonic{};

  /// Electrical interposer baseline (Table 1: 128-bit links at 2 GHz,
  /// 3x3 mesh hosting 8 compute chiplets + 1 memory chiplet).
  noc::ElecInterposerModelConfig electrical{};

  /// ReSiPI controller (10 us epochs; see DESIGN.md calibration notes).
  noc::ResipiConfig resipi{.epoch_s = 10.0 * units::us};

  /// Table-1 compute complement for the 2.5D variants.
  accel::PlatformSpec compute_2p5d = accel::make_table1_spec();

  /// Monolithic CrossLight keeps the full unit complement on one die
  /// (make_monolithic_spec with divisor 1) but is fed by DDR-class memory:
  /// the HBM chiplet is precisely what the 2.5D integration adds (§I, §V).
  unsigned monolithic_scale_divisor = 1;
  /// Effective streaming bandwidth of the monolithic chip's DDR4 interface
  /// under accelerator access patterns (dual-channel class).
  double monolithic_memory_bandwidth_bps = 44.0 * units::Gbps;

  /// The monolithic die's global on-chip SRAM [bits] (CrossLight's global
  /// buffer). Models whose weights fit stay resident on die — LeNet5 does,
  /// the other four Table-2 models do not. The chipletized designs moved
  /// this capacity into the HBM chiplet, so every layer crosses the
  /// interposer; that asymmetry is what inverts the LeNet5 comparison
  /// (paper §VI).
  std::uint64_t monolithic_onchip_buffer_bits = 2ULL * 1024 * 1024 * 8;

  /// Parameter/activation precision (CrossLight quantization).
  unsigned parameter_bits = 8;

  /// Images per inference batch. Weights stream once per batch (held in
  /// the MR banks while the batch's activations slide through), so larger
  /// batches amortize weight traffic at the cost of per-image latency.
  /// The paper evaluates single-image inference (batch 1).
  unsigned batch_size = 1;

  /// Per-layer pipeline-setup overheads [s]: on-die handoff for the
  /// monolithic chip; for the 2.5D variants, the memory chiplet must
  /// barrier-synchronize the assigned compute chiplets over the interposer
  /// before each layer (control messages + gateway store-and-forward).
  double layer_overhead_monolithic_s = 0.2 * units::us;
  double layer_overhead_2p5d_s = 2.0 * units::us;

  /// Fraction of a chiplet's active power burned while power-gated idle.
  double idle_power_fraction = 0.03;
};

/// The default configuration reproduces Table 1 exactly.
[[nodiscard]] inline SystemConfig default_system_config() {
  return SystemConfig{};
}

}  // namespace optiplet::core
