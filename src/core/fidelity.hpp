#pragma once
/// \file fidelity.hpp
/// Interconnect modeling fidelity: the mode enum, the FidelitySpec value
/// type carrying the sampling knobs, and their string encodings.
///
/// Three modes:
///   * kAnalytical — closed-form transaction-level interconnect models
///     (fast, contention-free).
///   * kCycleAccurate — every SiPh transfer drives noc::PhotonicCycleNet,
///     making reader-gateway contention and ReSiPI epoch transients
///     visible (slow: the per-layer cycle loop dominates wall-clock).
///   * kSampled — interval sampling in the Sniper/Virtuoso style: a
///     seeded, deterministic subset of layer windows runs cycle-accurate,
///     the rest fast-forward analytically with a calibrated cycle/
///     analytical correction factor applied at stitch time. The knobs
///     below (windows, layers per window, seed, confidence) parameterize
///     the sampling plan, which is why the bare enum grew into a spec.
///
/// Architectures without a cycle model (monolithic, electrical 2.5D)
/// always run the analytical path regardless of mode.
///
/// String encodings are canonical and round-trip through
/// fidelity_from_string: "analytical" and "cycle" spell exactly what the
/// bare enum used to (ScenarioSpec keys and CSV rows for those modes are
/// byte-identical to the pre-FidelitySpec schema), and kSampled spells
/// "sampled:windows=W,layers=L,seed=S,conf=C".

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace optiplet::core {

enum class Fidelity {
  kAnalytical,
  kCycleAccurate,
  kSampled,
};

[[nodiscard]] constexpr const char* to_string(Fidelity f) {
  switch (f) {
    case Fidelity::kAnalytical:
      return "analytical";
    case Fidelity::kCycleAccurate:
      return "cycle";
    case Fidelity::kSampled:
      return "sampled";
  }
  return "?";
}

/// Fidelity mode plus the sampling knobs kSampled needs. Implicitly
/// constructible from the bare enum so `config.fidelity = kCycleAccurate`
/// keeps working; the knobs only participate in identity (operator==,
/// to_string, ScenarioSpec keys) when mode == kSampled.
struct FidelitySpec {
  Fidelity mode = Fidelity::kAnalytical;

  /// Number of sampled layer windows per run. Zero degenerates to a pure
  /// analytical run (bit-for-bit); windows * window_layers covering every
  /// layer degenerates to a pure cycle-accurate run (bit-for-bit).
  unsigned windows = 8;
  /// Consecutive layers simulated cycle-accurate per window.
  unsigned window_layers = 1;
  /// Seed for the stratified window placement (util::Xoshiro256).
  std::uint64_t seed = 1;
  /// Two-sided confidence level for the correction-factor band reported
  /// in RunResult (e.g. 0.95 -> a normal-quantile 95% band).
  double confidence = 0.95;

  constexpr FidelitySpec() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): intentional migration path.
  constexpr FidelitySpec(Fidelity m) : mode(m) {}

  /// Equal specs name identical simulations: the sampling knobs are
  /// compared only under kSampled, matching the to_string encoding.
  [[nodiscard]] friend constexpr bool operator==(const FidelitySpec& a,
                                                 const FidelitySpec& b) {
    if (a.mode != b.mode) {
      return false;
    }
    if (a.mode != Fidelity::kSampled) {
      return true;
    }
    return a.windows == b.windows && a.window_layers == b.window_layers &&
           a.seed == b.seed && a.confidence == b.confidence;
  }
};

/// Canonical spelling: "analytical" / "cycle" for the pure modes (exactly
/// the bare-enum encoding), "sampled:windows=W,layers=L,seed=S,conf=C"
/// for kSampled.
[[nodiscard]] std::string to_string(const FidelitySpec& spec);

/// Parse a fidelity spelling. Accepts the canonical names, the legacy
/// aliases "tlm" (analytical) and "cycle-accurate" (cycle), and
/// "sampled[:knob=value,...]" with knobs windows/w, layers/l, seed/s,
/// conf/confidence (unset knobs keep their defaults). nullopt on unknown
/// names, unknown knobs, or out-of-range values.
[[nodiscard]] std::optional<FidelitySpec> fidelity_from_string(
    std::string_view name);

/// Split a comma-separated fidelity list, folding `knob=value` tokens back
/// onto a preceding "sampled" entry — commas separate both list elements
/// and sampling knobs, so "analytical,sampled:windows=4,seed=7,cycle"
/// splits into {"analytical", "sampled:windows=4,seed=7", "cycle"}.
[[nodiscard]] std::vector<std::string> split_fidelity_list(
    std::string_view text);

/// The deterministic sampling plan: which of `layer_count` layers run
/// cycle-accurate under `spec`. Window starts are stratified (one window
/// per equal stratum of the layer range) and placed by a Xoshiro256 draw
/// seeded from (spec.seed, salt, layer_count), so the same spec on the
/// same workload always samples the same layers regardless of thread
/// count or evaluation order. Non-sampled modes return an all-false mask.
[[nodiscard]] std::vector<bool> sampled_layer_mask(std::size_t layer_count,
                                                   const FidelitySpec& spec,
                                                   std::uint64_t salt);

}  // namespace optiplet::core
