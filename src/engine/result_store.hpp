#pragma once
/// \file result_store.hpp
/// Aggregation and CSV export for sweep results. The store keeps results
/// in insertion (= submission) order, offers the Table-3-style
/// per-architecture averages, picks winners by an arbitrary metric, and
/// dumps the full grid through util::CsvWriter for plotting.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "engine/sweep_runner.hpp"

namespace optiplet::engine {

class ResultStore {
 public:
  ResultStore() = default;
  explicit ResultStore(std::vector<ScenarioResult> results)
      : results_(std::move(results)) {}

  void add(ScenarioResult result) { results_.push_back(std::move(result)); }
  void add_all(const std::vector<ScenarioResult>& results);

  [[nodiscard]] const std::vector<ScenarioResult>& results() const {
    return results_;
  }
  [[nodiscard]] std::size_t size() const { return results_.size(); }
  [[nodiscard]] bool empty() const { return results_.empty(); }

  /// Per-architecture averages across every stored result of that
  /// architecture (Table-3 semantics), in first-seen order.
  [[nodiscard]] std::vector<core::PlatformAverages> by_architecture() const;

  /// The stored result minimizing `metric`; nullptr when empty. Ties keep
  /// the earliest (submission order), so the winner is deterministic.
  [[nodiscard]] const ScenarioResult* best_by(
      const std::function<double(const ScenarioResult&)>& metric) const;

  /// CSV schema: one row per scenario, spec columns then metric columns.
  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] static std::vector<std::string> csv_row(
      const ScenarioResult& result);

  /// Write all results to `path`; false when the file cannot be opened.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<ScenarioResult> results_;
};

}  // namespace optiplet::engine
