#include "engine/result_store.hpp"

#include <map>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace optiplet::engine {
namespace {

std::string overrides_to_string(const ScenarioSpec& spec) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : spec.overrides) {
    if (!first) {
      os << ' ';
    }
    os << name << '=' << value;
    first = false;
  }
  return os.str();
}

}  // namespace

void ResultStore::add_all(const std::vector<ScenarioResult>& results) {
  results_.insert(results_.end(), results.begin(), results.end());
}

std::vector<core::PlatformAverages> ResultStore::by_architecture() const {
  std::vector<accel::Architecture> order;
  std::map<accel::Architecture, std::vector<core::RunResult>> groups;
  for (const auto& r : results_) {
    if (groups.find(r.spec.arch) == groups.end()) {
      order.push_back(r.spec.arch);
    }
    groups[r.spec.arch].push_back(r.run);
  }
  std::vector<core::PlatformAverages> averages;
  averages.reserve(order.size());
  for (const auto arch : order) {
    averages.push_back(
        core::average_runs(accel::to_string(arch), groups.at(arch)));
  }
  return averages;
}

const ScenarioResult* ResultStore::best_by(
    const std::function<double(const ScenarioResult&)>& metric) const {
  const ScenarioResult* best = nullptr;
  double best_value = 0.0;
  for (const auto& r : results_) {
    const double value = metric(r);
    if (best == nullptr || value < best_value) {
      best = &r;
      best_value = value;
    }
  }
  return best;
}

std::vector<std::string> ResultStore::csv_header() {
  return {"model",
          "architecture",
          "batch_size",
          "wavelengths",
          "gateways_per_chiplet",
          "modulation",
          "fidelity",
          "overrides",
          "latency_s",
          "power_w",
          "energy_j",
          "epb_j_per_bit",
          "traffic_bits",
          "resipi_reconfigurations",
          "mean_active_gateways",
          // Serving columns; empty for single-inference rows.
          "serving",
          "arrival_rps",
          "batch_policy",
          "pipeline",
          "max_batch",
          "tenant_mix",
          "requests",
          "throughput_rps",
          "mean_latency_s",
          "p50_s",
          "p95_s",
          "p99_s",
          "sla_violation_rate",
          "mean_batch",
          "utilization",
          "energy_per_request_j",
          // Arrival-source / admission-control columns (PR 5). users and
          // think_s are only populated for closed-loop rows (open-loop
          // specs ignore them).
          "arrival_source",
          "users",
          "think_s",
          "admission",
          "priority_mix",
          "shed",
          "goodput_rps",
          "p99_hi_s",
          "p99_lo_s",
          // Transformer serving columns; empty for fixed-shape rows.
          "prefill_tokens",
          "decode_tokens",
          "ttft_p99_s",
          "decode_tps",
          "kv_peak_bytes",
          // Rack scale-out columns (PR 6); empty for non-cluster rows.
          "packages",
          "balancer",
          "replication",
          "transfers",
          "transfer_latency_s",
          "transfer_energy_j",
          // Elastic-operation columns (PR 10): the policy codec string plus
          // its counters. "static" with zero counters when the policy is
          // inert; empty for single-inference rows.
          "elastic",
          "repartitions",
          "repartition_resipi_s",
          "gate_events",
          "gated_idle_s",
          "retries",
          "abandoned",
          "carbon_g",
          // Self-profiling columns (PR 8). eval_wall_s and from_cache are
          // populated for every row; the simulator-internals columns only
          // for serving/cluster rows. eval_wall_s is NOT deterministic.
          "eval_wall_s",
          "from_cache",
          "sim_events",
          "event_queue_peak",
          "oracle_cache_hits",
          "oracle_cache_misses"};
}

std::vector<std::string> ResultStore::csv_row(const ScenarioResult& result) {
  const auto& s = result.spec;
  const auto& r = result.run;
  std::vector<std::string> row = {
      s.model,
      accel::to_string(s.arch),
      std::to_string(s.batch_size),
      std::to_string(s.wavelengths),
      std::to_string(s.gateways_per_chiplet),
      photonics::to_string(s.modulation),
      core::to_string(s.fidelity),
      overrides_to_string(s),
      util::format_general(r.latency_s),
      util::format_general(r.average_power_w),
      util::format_general(r.energy_j),
      util::format_general(r.epb_j_per_bit),
      std::to_string(r.traffic_bits),
      std::to_string(r.resipi_reconfigurations),
      util::format_general(r.mean_active_gateways)};
  if (s.serving && result.serving) {
    const auto& spec = *s.serving;
    const auto& m = *result.serving;
    row.insert(row.end(),
               {"1",
                util::format_general(spec.arrival_rps),
                serve::to_string(spec.policy),
                serve::to_string(spec.pipeline),
                std::to_string(spec.max_batch),
                spec.tenant_mix,
                std::to_string(spec.requests),
                util::format_general(m.throughput_rps),
                util::format_general(m.mean_latency_s),
                util::format_general(m.p50_s),
                util::format_general(m.p95_s),
                util::format_general(m.p99_s),
                util::format_general(m.sla_violation_rate),
                util::format_general(m.mean_batch),
                util::format_general(m.utilization),
                util::format_general(m.energy_per_request_j)});
    const bool closed = spec.source == serve::ArrivalSource::kClosedLoop;
    row.insert(row.end(),
               {serve::to_string(spec.source),
                closed ? std::to_string(spec.users) : std::string(),
                closed ? util::format_general(spec.think_s) : std::string(),
                serve::to_string(spec.admission),
                spec.priority_mix,
                std::to_string(m.shed),
                util::format_general(m.goodput_rps),
                util::format_general(m.p99_hi_s),
                util::format_general(m.p99_lo_s)});
    if (spec.prefill_tokens > 0) {
      row.insert(row.end(),
                 {std::to_string(spec.prefill_tokens),
                  std::to_string(spec.decode_tokens),
                  util::format_general(m.ttft_p99_s),
                  util::format_general(m.decode_tps),
                  std::to_string(m.kv_peak_bytes)});
    } else {
      row.insert(row.end(), 5, "");
    }
    if (s.cluster && result.cluster) {
      const auto& cs = *s.cluster;
      const auto& cm = *result.cluster;
      row.insert(row.end(),
                 {std::to_string(cs.packages),
                  std::string(cluster::to_string(cs.balancer)),
                  cs.replication_mix.empty() ? std::to_string(cs.replication)
                                             : cs.replication_mix,
                  std::to_string(cm.transfers),
                  util::format_general(cm.transfer_latency_s),
                  util::format_general(cm.transfer_energy_j)});
    } else {
      row.insert(row.end(), 6, "");  // the elastic block follows
    }
    row.insert(row.end(),
               {serve::to_string(spec.elastic),
                std::to_string(m.repartitions),
                util::format_general(m.repartition_resipi_s),
                std::to_string(m.gate_events),
                util::format_general(m.gated_idle_s),
                std::to_string(m.retries),
                std::to_string(m.abandoned),
                util::format_general(m.carbon_g)});
  } else {
    row.push_back("0");  // "serving" flag column
  }
  // Pad non-cluster rows up to the trailing self-profiling block, which
  // applies to every row.
  static const std::size_t kColumns = csv_header().size();
  row.insert(row.end(), kColumns - 6 - row.size(), "");
  row.push_back(util::format_general(result.eval_wall_s));
  row.push_back(result.from_cache ? "1" : "0");
  if (result.serving) {
    const auto& m = *result.serving;
    row.push_back(std::to_string(m.sim_events));
    row.push_back(std::to_string(m.sim_event_queue_peak));
    row.push_back(std::to_string(m.service_cache_hits));
    row.push_back(std::to_string(m.service_cache_misses));
  } else {
    row.insert(row.end(), 4, "");
  }
  return row;
}

bool ResultStore::write_csv(const std::string& path) const {
  util::CsvWriter csv(path, csv_header());
  if (!csv.ok()) {
    return false;
  }
  for (const auto& r : results_) {
    csv.add_row(csv_row(r));
  }
  return true;
}

}  // namespace optiplet::engine
