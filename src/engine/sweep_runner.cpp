#include "engine/sweep_runner.hpp"

#include <chrono>
#include <exception>
#include <future>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "cluster/cluster_simulator.hpp"
#include "dnn/zoo.hpp"
#include "engine/thread_pool.hpp"
#include "serve/serving_simulator.hpp"

namespace optiplet::engine {

SweepRunner::SweepRunner(core::SystemConfig base, SweepOptions options)
    : base_(std::move(base)),
      options_(std::move(options)),
      threads_(ThreadPool::resolve_threads(options_.threads)) {}

SweepRunner::EvalOutcome SweepRunner::evaluate_outcome(
    const core::SystemConfig& base, const ScenarioSpec& spec) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  EvalOutcome outcome = evaluate_untimed(base, spec);
  outcome.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_t0)
                       .count();
  return outcome;
}

SweepRunner::EvalOutcome SweepRunner::evaluate_untimed(
    const core::SystemConfig& base, const ScenarioSpec& spec) {
  core::SystemConfig cfg = base;
  spec.apply(cfg);
  EvalOutcome outcome;
  if (spec.cluster) {
    if (!spec.serving) {
      throw std::invalid_argument(
          "cluster scenario requires a serving block");
    }
    // Rack workers stay at 1 here: the SweepRunner already parallelizes
    // across scenarios, and cluster::simulate is thread-count invariant.
    const cluster::ClusterReport report = cluster::simulate(
        cluster::ClusterConfig{cfg, spec.arch, *spec.serving, *spec.cluster,
                               /*threads=*/1});
    outcome.serving = report.metrics.rack;
    outcome.cluster = report.metrics;
    outcome.run.model_name = spec.model;
    outcome.run.arch = spec.arch;
    outcome.run.latency_s = report.metrics.rack.mean_latency_s;
    outcome.run.energy_j = report.metrics.rack.energy_j;
    outcome.run.average_power_w =
        report.metrics.rack.makespan_s > 0.0
            ? report.metrics.rack.energy_j / report.metrics.rack.makespan_s
            : 0.0;
    return outcome;
  }
  if (spec.serving) {
    const serve::ServingReport report =
        serve::simulate(serve::make_serving_config(cfg, spec.arch,
                                                   *spec.serving));
    outcome.serving = report.metrics;
    // Summary view so architecture averages and best_by() stay usable:
    // latency = mean request latency, energy/power over the makespan.
    outcome.run.model_name = spec.model;
    outcome.run.arch = spec.arch;
    outcome.run.latency_s = report.metrics.mean_latency_s;
    outcome.run.energy_j = report.metrics.energy_j;
    outcome.run.average_power_w =
        report.metrics.makespan_s > 0.0
            ? report.metrics.energy_j / report.metrics.makespan_s
            : 0.0;
    outcome.run.ledger = report.ledger;
    return outcome;
  }
  const core::SystemSimulator sim(cfg);
  outcome.run = sim.run(dnn::zoo::by_name(spec.model), spec.arch);
  return outcome;
}

core::RunResult SweepRunner::evaluate(const core::SystemConfig& base,
                                      const ScenarioSpec& spec) {
  return evaluate_outcome(base, spec).run;
}

std::vector<ScenarioResult> SweepRunner::run(
    const std::vector<ScenarioSpec>& specs) {
  const std::size_t total = specs.size();
  std::vector<ScenarioResult> results(total);
  if (total == 0) {
    return results;
  }

  // One evaluation per distinct uncached key; duplicates and prior-run
  // repeats ride along as cache hits.
  struct Pending {
    std::string key;
    const ScenarioSpec* spec = nullptr;
    std::size_t rider_count = 1;  // specs resolved by this evaluation
    std::future<EvalOutcome> future;
  };

  std::vector<std::string> keys;
  keys.reserve(total);
  std::vector<bool> from_cache(total, false);
  std::vector<Pending> pending;
  std::unordered_map<std::string, std::size_t> pending_index;
  std::vector<std::size_t> resolved_upfront;  // served by a prior run()
  for (std::size_t i = 0; i < total; ++i) {
    keys.push_back(specs[i].key());
    if (cache_.count(keys[i]) != 0) {
      from_cache[i] = true;
      ++cache_hits_;
      resolved_upfront.push_back(i);
      continue;
    }
    if (const auto it = pending_index.find(keys[i]);
        it != pending_index.end()) {
      ++pending[it->second].rider_count;
      from_cache[i] = true;
      ++cache_hits_;
      continue;
    }
    pending_index.emplace(keys[i], pending.size());
    pending.push_back(Pending{keys[i], &specs[i], 1, {}});
  }

  std::mutex progress_mutex;
  std::size_t done = 0;
  const auto report = [&](std::size_t increment, const std::string& key,
                          double wall_s, bool hit) {
    if (!options_.progress && !options_.scenario_progress) {
      return;
    }
    const std::lock_guard<std::mutex> lock(progress_mutex);
    done += increment;
    if (options_.progress) {
      options_.progress(done, total);
    }
    if (options_.scenario_progress) {
      ScenarioProgress p;
      p.done = done;
      p.total = total;
      p.key = key;
      p.wall_s = wall_s;
      p.from_cache = hit;
      options_.scenario_progress(p);
    }
  };

  // Prior-run cache hits report one at a time so scenario_progress sees
  // every key (a single bulk increment used to hide which scenarios were
  // memoized).
  for (const std::size_t i : resolved_upfront) {
    report(1, keys[i], /*wall_s=*/0.0, /*hit=*/true);
  }
  {
    ThreadPool pool(threads_);
    for (auto& p : pending) {
      const ScenarioSpec* spec = p.spec;
      const std::string* key = &p.key;
      // In-batch duplicates resolve with their evaluation.
      const std::size_t increment = p.rider_count;
      p.future = pool.submit([this, spec, key, increment, &report] {
        try {
          EvalOutcome outcome = evaluate_outcome(base_, *spec);
          report(increment, *key, outcome.wall_s, /*hit=*/false);
          return outcome;
        } catch (...) {
          report(increment, *key, /*wall_s=*/0.0, /*hit=*/false);
          throw;
        }
      });
    }
  }  // pool joins here; every future below is ready

  // Settle every in-flight evaluation, then surface the first failure in
  // submission order (failed scenarios are not cached).
  std::exception_ptr first_error;
  for (auto& p : pending) {
    try {
      cache_.emplace(p.key,
                     std::make_shared<const EvalOutcome>(p.future.get()));
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }

  for (std::size_t i = 0; i < total; ++i) {
    results[i].spec = specs[i];
    results[i].from_cache = from_cache[i];
    const EvalOutcome& outcome = *cache_.at(keys[i]);
    results[i].run = outcome.run;
    results[i].serving = outcome.serving;
    results[i].cluster = outcome.cluster;
    results[i].eval_wall_s = outcome.wall_s;
  }
  return results;
}

std::vector<ScenarioResult> SweepRunner::run(const ScenarioGrid& grid) {
  return run(grid.expand(base_));
}

}  // namespace optiplet::engine
