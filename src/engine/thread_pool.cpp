#include "engine/thread_pool.hpp"

namespace optiplet::engine {

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = resolve_threads(threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures any exception into the future
  }
}

}  // namespace optiplet::engine
