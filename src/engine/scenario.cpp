#include "engine/scenario.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <sstream>

#include "dnn/zoo.hpp"
#include "noc/photonic_interposer.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace optiplet::engine {
namespace {

struct OverrideEntry {
  const char* name;
  void (*set)(core::SystemConfig&, double);
};

/// Registry of sweepable SystemConfig fields, sorted by name. Values are
/// doubles; integral fields round via static_cast after a range check is
/// left to OPTIPLET_REQUIRE in the consumers.
constexpr std::array<OverrideEntry, 12> kOverrides{{
    {"idle_power_fraction",
     [](core::SystemConfig& c, double v) { c.idle_power_fraction = v; }},
    {"layer_overhead_2p5d_s",
     [](core::SystemConfig& c, double v) { c.layer_overhead_2p5d_s = v; }},
    {"layer_overhead_monolithic_s",
     [](core::SystemConfig& c, double v) {
       c.layer_overhead_monolithic_s = v;
     }},
    {"monolithic_memory_bandwidth_bps",
     [](core::SystemConfig& c, double v) {
       c.monolithic_memory_bandwidth_bps = v;
     }},
    {"monolithic_onchip_buffer_bits",
     [](core::SystemConfig& c, double v) {
       c.monolithic_onchip_buffer_bits = static_cast<std::uint64_t>(v);
     }},
    {"parameter_bits",
     [](core::SystemConfig& c, double v) {
       c.parameter_bits = static_cast<unsigned>(v);
     }},
    {"photonic.data_rate_per_wavelength_bps",
     [](core::SystemConfig& c, double v) {
       c.photonic.data_rate_per_wavelength_bps = v;
     }},
    {"photonic.gateway_clock_hz",
     [](core::SystemConfig& c, double v) {
       c.photonic.gateway_clock_hz = v;
     }},
    {"photonic.interposer_span_m",
     [](core::SystemConfig& c, double v) {
       c.photonic.interposer_span_m = v;
     }},
    {"resipi.epoch_s",
     [](core::SystemConfig& c, double v) { c.resipi.epoch_s = v; }},
    {"resipi.min_active_gateways",
     [](core::SystemConfig& c, double v) {
       c.resipi.min_active_gateways = static_cast<std::size_t>(v);
     }},
    {"resipi.target_utilization",
     [](core::SystemConfig& c, double v) {
       c.resipi.target_utilization = v;
     }},
}};

}  // namespace

bool apply_override(core::SystemConfig& config, const std::string& name,
                    double value) {
  for (const auto& entry : kOverrides) {
    if (name == entry.name) {
      entry.set(config, value);
      return true;
    }
  }
  return false;
}

std::vector<std::string> override_keys() {
  std::vector<std::string> keys;
  keys.reserve(kOverrides.size());
  for (const auto& entry : kOverrides) {
    keys.emplace_back(entry.name);
  }
  return keys;
}

void ScenarioSpec::apply(core::SystemConfig& config) const {
  config.photonic.total_wavelengths = wavelengths;
  config.photonic.gateways_per_chiplet = gateways_per_chiplet;
  config.photonic.modulation = modulation;
  config.fidelity = fidelity;
  config.batch_size = batch_size;
  for (const auto& [name, value] : overrides) {
    OPTIPLET_REQUIRE(apply_override(config, name, value),
                     "unknown SystemConfig override key: " + name);
  }
}

std::string ScenarioSpec::key() const {
  // Collapse duplicate override keys to the last occurrence first — the
  // effective value under apply()'s last-write-wins — then sort, so the
  // key never conflates specs whose application order differs.
  std::vector<std::pair<std::string, double>> sorted;
  for (const auto& entry : overrides) {
    const auto it =
        std::find_if(sorted.begin(), sorted.end(), [&entry](const auto& e) {
          return e.first == entry.first;
        });
    if (it != sorted.end()) {
      it->second = entry.second;
    } else {
      sorted.push_back(entry);
    }
  }
  std::sort(sorted.begin(), sorted.end());
  std::ostringstream os;
  os << "model=" << model << ";arch=" << accel::to_string(arch)
     << ";batch=" << batch_size << ";wl=" << wavelengths
     << ";gw=" << gateways_per_chiplet
     << ";mod=" << photonics::to_string(modulation)
     << ";fid=" << core::to_string(fidelity);
  for (const auto& [name, value] : sorted) {
    // 17 significant digits round-trip the double, keeping the key exact.
    os << ';' << name << '=' << util::format_general(value, 17);
  }
  if (serving) {
    os << ";serve.policy=" << serve::to_string(serving->policy)
       << ";serve.pipe=" << serve::to_string(serving->pipeline)
       << ";serve.batch=" << serving->max_batch
       << ";serve.wait=" << util::format_general(serving->max_wait_s, 17)
       << ";serve.mix=" << serving->tenant_mix
       << ";serve.sla=" << util::format_general(serving->sla_s, 17)
       << ";serve.adm=" << serve::to_string(serving->admission);
    if (serving->elastic.enabled()) {
      // Inert elastic policies add nothing: pre-elastic keys stay
      // byte-identical so existing memo caches and goldens survive.
      os << ";serve.elastic=" << serve::to_string(serving->elastic);
    }
    if (!serving->priority_mix.empty()) {
      // Empty means "all class 0"; an explicit mix is part of the
      // experiment identity (priority orders shared-resource grants).
      os << ";serve.prio=" << serving->priority_mix;
    }
    if (serving->prefill_tokens > 0) {
      // Token geometry only exists for variable-length (transformer)
      // scenarios; fixed-shape keys stay byte-identical to the pre-token
      // schema so existing memo caches and goldens survive.
      os << ";serve.prefill=" << serving->prefill_tokens
         << ";serve.decode=" << serving->decode_tokens
         << ";serve.spread="
         << util::format_general(serving->token_spread, 17)
         << ";serve.kv_mb="
         << util::format_general(serving->kv_cache_mb, 17);
    }
    if (!serving->trace_path.empty()) {
      // A replayed trace fully determines the arrivals: rate, request
      // count, and seed are ignored, so they must not split the memo
      // key. The source is NOT ignored — trace + closed loop is
      // *rejected* at evaluation — so it stays in the key lest an
      // invalid spec ride a valid spec's cached result (or vice versa,
      // order-dependently).
      os << ";serve.trace=" << serving->trace_path;
      if (serving->source != serve::ArrivalSource::kOpenLoop) {
        os << ";serve.src=" << serve::to_string(serving->source);
      }
    } else if (serving->source == serve::ArrivalSource::kClosedLoop) {
      // Closed loop ignores the offered rate: load is users/think-time.
      os << ";serve.src=closed;serve.users=" << serving->users
         << ";serve.think=" << util::format_general(serving->think_s, 17)
         << ";serve.n=" << serving->requests
         << ";serve.seed=" << serving->seed;
    } else {
      os << ";serve.rate=" << util::format_general(serving->arrival_rps, 17)
         << ";serve.n=" << serving->requests
         << ";serve.seed=" << serving->seed;
    }
  }
  if (cluster) {
    os << ";cluster.pkgs=" << cluster->packages
       << ";cluster.bal=" << cluster::to_string(cluster->balancer)
       << ";cluster.rep=" << cluster->replication
       << ";cluster.len=" << util::format_general(cluster->link_length_m, 17)
       << ";cluster.linkwl=" << cluster->link_wavelengths;
    if (!cluster->replication_mix.empty()) {
      // An explicit per-tenant mix overrides the scalar factor, so it is
      // part of the experiment identity.
      os << ";cluster.repmix=" << cluster->replication_mix;
    }
  }
  return os.str();
}

std::uint64_t ScenarioSpec::hash() const {
  // FNV-1a, 64-bit.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : key()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool feasible(const ScenarioSpec& spec, const core::SystemConfig& base) {
  if (spec.gateways_per_chiplet == 0 ||
      spec.wavelengths % spec.gateways_per_chiplet != 0) {
    return false;
  }
  if (spec.arch != accel::Architecture::kSiph2p5D) {
    return true;  // the photonic link budget only gates the SiPh platform
  }
  core::SystemConfig cfg = base;
  spec.apply(cfg);
  const noc::PhotonicInterposer probe(cfg.photonic, cfg.tech.photonic);
  return probe.link_budget_feasible();
}

std::size_t ScenarioGrid::raw_size() const {
  const auto axis = [](std::size_t n) { return n == 0 ? std::size_t{1} : n; };
  std::size_t size = axis(models.empty() ? dnn::zoo::model_names().size()
                                         : models.size());
  size *= axis(architectures.size());
  size *= axis(batch_sizes.size());
  size *= axis(wavelengths.size());
  size *= axis(gateways_per_chiplet.size());
  size *= axis(modulations.size());
  size *= axis(fidelities.size());
  for (const auto& [name, values] : override_axes) {
    (void)name;
    size *= axis(values.size());
  }
  if (serving_mode()) {
    // `models` is replaced by the tenant-mix axis in serving mode.
    size /= axis(models.empty() ? dnn::zoo::model_names().size()
                                : models.size());
    size *= axis(tenant_mixes.size());
    size *= axis(arrival_rates_rps.size());
    size *= axis(batch_policies.size());
    size *= axis(pipeline_modes.size());
    size *= axis(arrival_sources.size());
    size *= axis(user_counts.size());
    size *= axis(admission_policies.size());
    size *= axis(prefill_token_counts.size());
    size *= axis(decode_token_counts.size());
    size *= axis(elastic_policies.size());
  }
  if (cluster_mode()) {
    size *= axis(package_counts.size());
    size *= axis(balancer_policies.size());
    size *= axis(replication_factors.size());
  }
  return size;
}

std::vector<ScenarioSpec> ScenarioGrid::expand(
    const core::SystemConfig& base) const {
  const bool serving = serving_mode();
  // In serving mode the "model" axis enumerates tenant mixes; every mix
  // component must still resolve in the zoo.
  const std::vector<std::string> model_axis =
      serving ? (tenant_mixes.empty()
                     ? std::vector<std::string>{serving_defaults.tenant_mix}
                     : tenant_mixes)
              : (models.empty() ? dnn::zoo::model_names() : models);
  for (const auto& name : model_axis) {
    for (const auto& component :
         serving ? serve::split_mix(name) : std::vector<std::string>{name}) {
      (void)dnn::zoo::by_name(component);  // fail fast on unknown models
    }
  }
  const std::vector<double> rate_axis =
      arrival_rates_rps.empty()
          ? std::vector<double>{serving_defaults.arrival_rps}
          : arrival_rates_rps;
  const std::vector<serve::BatchPolicy> policy_axis =
      batch_policies.empty()
          ? std::vector<serve::BatchPolicy>{serving_defaults.policy}
          : batch_policies;
  const std::vector<serve::PipelineMode> pipeline_axis =
      pipeline_modes.empty()
          ? std::vector<serve::PipelineMode>{serving_defaults.pipeline}
          : pipeline_modes;
  const std::vector<serve::ArrivalSource> source_axis =
      arrival_sources.empty()
          ? std::vector<serve::ArrivalSource>{serving_defaults.source}
          : arrival_sources;
  const std::vector<unsigned> users_axis =
      user_counts.empty() ? std::vector<unsigned>{serving_defaults.users}
                          : user_counts;
  const std::vector<serve::AdmissionPolicy> admission_axis =
      admission_policies.empty()
          ? std::vector<serve::AdmissionPolicy>{serving_defaults.admission}
          : admission_policies;
  const std::vector<std::uint32_t> prefill_axis =
      prefill_token_counts.empty()
          ? std::vector<std::uint32_t>{serving_defaults.prefill_tokens}
          : prefill_token_counts;
  const std::vector<std::uint32_t> decode_axis =
      decode_token_counts.empty()
          ? std::vector<std::uint32_t>{serving_defaults.decode_tokens}
          : decode_token_counts;
  // Parse the elastic-policy axis up front: an unparseable policy string
  // fails the whole expansion, not the Nth spec.
  std::vector<serve::ElasticSpec> elastic_axis{serving_defaults.elastic};
  if (!elastic_policies.empty()) {
    elastic_axis.clear();
    for (const std::string& policy : elastic_policies) {
      const std::optional<serve::ElasticSpec> parsed =
          serve::elastic_from_string(policy);
      OPTIPLET_REQUIRE(parsed.has_value(),
                       "unparseable elastic policy: " + policy);
      elastic_axis.push_back(*parsed);
    }
  }
  const std::vector<std::size_t> package_axis =
      package_counts.empty()
          ? std::vector<std::size_t>{cluster_defaults.packages}
          : package_counts;
  const std::vector<cluster::BalancerPolicy> balancer_axis =
      balancer_policies.empty()
          ? std::vector<cluster::BalancerPolicy>{cluster_defaults.balancer}
          : balancer_policies;
  const std::vector<std::size_t> replication_axis =
      replication_factors.empty()
          ? std::vector<std::size_t>{cluster_defaults.replication}
          : replication_factors;
  const std::vector<accel::Architecture> arch_axis =
      architectures.empty()
          ? std::vector<accel::Architecture>{accel::Architecture::kSiph2p5D}
          : architectures;
  const std::vector<unsigned> batch_axis =
      batch_sizes.empty() ? std::vector<unsigned>{base.batch_size}
                          : batch_sizes;
  const std::vector<std::size_t> wl_axis =
      wavelengths.empty()
          ? std::vector<std::size_t>{base.photonic.total_wavelengths}
          : wavelengths;
  const std::vector<std::size_t> gw_axis =
      gateways_per_chiplet.empty()
          ? std::vector<std::size_t>{base.photonic.gateways_per_chiplet}
          : gateways_per_chiplet;
  const std::vector<photonics::ModulationFormat> mod_axis =
      modulations.empty()
          ? std::vector<photonics::ModulationFormat>{base.photonic.modulation}
          : modulations;
  const std::vector<core::FidelitySpec> fid_axis =
      fidelities.empty() ? std::vector<core::FidelitySpec>{base.fidelity}
                         : fidelities;

  const auto keys = override_keys();
  for (std::size_t i = 0; i < override_axes.size(); ++i) {
    const auto& [name, values] = override_axes[i];
    OPTIPLET_REQUIRE(
        std::find(keys.begin(), keys.end(), name) != keys.end(),
        "unknown SystemConfig override key: " + name);
    OPTIPLET_REQUIRE(!values.empty(),
                     "empty override axis for key: " + name);
    for (std::size_t j = 0; j < i; ++j) {
      OPTIPLET_REQUIRE(override_axes[j].first != name,
                       "duplicate override axis for key: " + name);
    }
  }

  std::vector<ScenarioSpec> specs;
  // Recursive cartesian product over the override axes; the first-class
  // axes nest around it (see header for the documented order).
  std::vector<std::pair<std::string, double>> current_overrides;
  const std::function<void(std::size_t, const ScenarioSpec&)> expand_axis =
      [&](std::size_t axis_index, const ScenarioSpec& partial) {
        if (axis_index < override_axes.size()) {
          const auto& [name, values] = override_axes[axis_index];
          for (const double value : values) {
            current_overrides.emplace_back(name, value);
            expand_axis(axis_index + 1, partial);
            current_overrides.pop_back();
          }
          return;
        }
        // Feasibility depends only on the interposer shape (plus, for
        // SiPh, the applied overrides) — never on the model — so probe
        // once per shape, not once per (architecture, model).
        ScenarioSpec shape = partial;
        shape.overrides = current_overrides;
        const bool divisible =
            shape.gateways_per_chiplet != 0 &&
            shape.wavelengths % shape.gateways_per_chiplet == 0;
        bool siph_feasible = false;
        bool siph_probed = false;
        for (const auto arch : arch_axis) {
          bool shape_ok = divisible;
          if (shape_ok && arch == accel::Architecture::kSiph2p5D) {
            if (!siph_probed) {
              shape.arch = accel::Architecture::kSiph2p5D;
              siph_feasible = feasible(shape, base);
              siph_probed = true;
            }
            shape_ok = siph_feasible;
          }
          if (!shape_ok) {
            continue;
          }
          for (const auto& model : model_axis) {
            ScenarioSpec spec = partial;
            spec.model = model;
            spec.arch = arch;
            spec.overrides = current_overrides;
            if (spec.serving) {
              spec.serving->tenant_mix = model;
            }
            specs.push_back(std::move(spec));
          }
        }
      };

  for (const auto fid : fid_axis) {
    for (const std::size_t wl : wl_axis) {
      for (const std::size_t gw : gw_axis) {
        for (const auto mod : mod_axis) {
          for (const unsigned batch : batch_axis) {
            ScenarioSpec partial;
            partial.fidelity = fid;
            partial.wavelengths = wl;
            partial.gateways_per_chiplet = gw;
            partial.modulation = mod;
            partial.batch_size = batch;
            if (!serving) {
              expand_axis(0, partial);
              continue;
            }
            for (const double rate : rate_axis) {
              for (const serve::BatchPolicy policy : policy_axis) {
                for (const serve::PipelineMode pipeline : pipeline_axis) {
                  for (const serve::ArrivalSource source : source_axis) {
                    for (const unsigned users : users_axis) {
                      for (const serve::AdmissionPolicy admission :
                           admission_axis) {
                        for (const std::uint32_t prefill : prefill_axis) {
                          for (const std::uint32_t decode : decode_axis) {
                            for (const serve::ElasticSpec& elastic :
                                 elastic_axis) {
                              partial.serving = serving_defaults;
                              partial.serving->arrival_rps = rate;
                              partial.serving->policy = policy;
                              partial.serving->pipeline = pipeline;
                              partial.serving->source = source;
                              partial.serving->users = users;
                              partial.serving->admission = admission;
                              partial.serving->prefill_tokens = prefill;
                              partial.serving->decode_tokens = decode;
                              partial.serving->elastic = elastic;
                              if (!cluster_mode()) {
                                expand_axis(0, partial);
                                continue;
                              }
                              for (const std::size_t packages :
                                   package_axis) {
                                for (const auto balancer : balancer_axis) {
                                  for (const std::size_t replication :
                                       replication_axis) {
                                    partial.cluster = cluster_defaults;
                                    partial.cluster->packages = packages;
                                    partial.cluster->balancer = balancer;
                                    partial.cluster->replication =
                                        replication;
                                    expand_axis(0, partial);
                                  }
                                }
                              }
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

std::optional<accel::Architecture> architecture_from_string(
    std::string_view name) {
  if (name == "mono" || name == "crosslight" ||
      name == accel::to_string(accel::Architecture::kMonolithicCrossLight)) {
    return accel::Architecture::kMonolithicCrossLight;
  }
  if (name == "elec" ||
      name == accel::to_string(accel::Architecture::kElec2p5D)) {
    return accel::Architecture::kElec2p5D;
  }
  if (name == "siph" ||
      name == accel::to_string(accel::Architecture::kSiph2p5D)) {
    return accel::Architecture::kSiph2p5D;
  }
  return std::nullopt;
}

std::optional<photonics::ModulationFormat> modulation_from_string(
    std::string_view name) {
  if (name == "ook" || name == "OOK") {
    return photonics::ModulationFormat::kOok;
  }
  if (name == "pam4" || name == "PAM-4" || name == "PAM4") {
    return photonics::ModulationFormat::kPam4;
  }
  return std::nullopt;
}

}  // namespace optiplet::engine
