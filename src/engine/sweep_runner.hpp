#pragma once
/// \file sweep_runner.hpp
/// Parallel scenario-grid evaluation on a ThreadPool.
///
/// Guarantees:
///  * **Determinism** — results come back in submission order and each
///    scenario is a pure function of (base config, spec), so the output is
///    bit-identical for 1 or N worker threads.
///  * **Memoization** — evaluations are cached by ScenarioSpec::key();
///    repeated points (within a batch or across run() calls on the same
///    runner) are never re-simulated.
///  * **Exception safety** — a scenario that throws does not poison the
///    pool; run() rethrows the first failure in submission order after all
///    in-flight work has settled.

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include <optional>

#include "cluster/cluster_report.hpp"
#include "core/system_config.hpp"
#include "core/system_simulator.hpp"
#include "engine/scenario.hpp"
#include "serve/serving_report.hpp"

namespace optiplet::engine {

/// One evaluated scenario.
struct ScenarioResult {
  ScenarioSpec spec;
  /// Single-inference result — or, for serving scenarios, a summary view
  /// (latency = mean request latency, energy/power over the makespan).
  core::RunResult run;
  /// Request-level metrics; set exactly when spec.serving is set. For
  /// cluster scenarios this is the merged rack view.
  std::optional<serve::ServingMetrics> serving;
  /// Rack-level metrics; set exactly when spec.cluster is set.
  std::optional<cluster::ClusterMetrics> cluster;
  /// True when this result was served from the memo cache (either a
  /// duplicate inside the batch or a repeat from an earlier run() call).
  bool from_cache = false;
  /// Wall-clock seconds of the evaluation that produced this outcome (the
  /// original evaluation's cost when from_cache). Self-profiling only —
  /// NOT deterministic; never compare it across runs.
  double eval_wall_s = 0.0;
};

/// One per-scenario progress report (see SweepOptions::scenario_progress).
struct ScenarioProgress {
  std::size_t done = 0;   ///< scenarios resolved so far (riders included)
  std::size_t total = 0;  ///< batch size
  std::string key;        ///< ScenarioSpec::key() of the resolved scenario
  /// Wall-clock seconds the evaluation took; 0 for cache hits and for
  /// evaluations that threw.
  double wall_s = 0.0;
  bool from_cache = false;
};

struct SweepOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency.
  std::size_t threads = 0;
  /// Progress callback, invoked as `progress(done, total)` once per
  /// scenario of the current batch (cache hits report immediately).
  /// Calls are serialized by the runner; the callback itself need not be
  /// thread-safe, but it runs on worker threads — keep it cheap.
  std::function<void(std::size_t done, std::size_t total)> progress;
  /// Detailed progress: one call per resolved scenario key — upfront cache
  /// hits each report their own key (with wall_s = 0), live evaluations
  /// report the measured wall-clock once they land (in-batch duplicates
  /// ride along in `done` without their own call). Serialized with
  /// `progress`; both callbacks may be set independently.
  std::function<void(const ScenarioProgress&)> scenario_progress;
};

class SweepRunner {
 public:
  explicit SweepRunner(core::SystemConfig base, SweepOptions options = {});

  /// Evaluate the specs in parallel; results are in spec order.
  [[nodiscard]] std::vector<ScenarioResult> run(
      const std::vector<ScenarioSpec>& specs);

  /// Expand the grid against the base config and evaluate it.
  [[nodiscard]] std::vector<ScenarioResult> run(const ScenarioGrid& grid);

  /// Full outcome of one scenario evaluation (serving metrics attached
  /// when the spec carries a serving block).
  struct EvalOutcome {
    core::RunResult run;
    std::optional<serve::ServingMetrics> serving;
    std::optional<cluster::ClusterMetrics> cluster;
    /// Wall-clock seconds the evaluation took (self-profiling only; NOT
    /// deterministic).
    double wall_s = 0.0;
  };

  /// Evaluate one scenario synchronously (no cache, no pool): the
  /// reference semantics every parallel path must reproduce exactly.
  [[nodiscard]] static EvalOutcome evaluate_outcome(
      const core::SystemConfig& base, const ScenarioSpec& spec);

  /// Single-inference view of evaluate_outcome() (kept for callers that
  /// never sweep serving axes).
  [[nodiscard]] static core::RunResult evaluate(
      const core::SystemConfig& base, const ScenarioSpec& spec);

  [[nodiscard]] const core::SystemConfig& base() const { return base_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }
  /// Scenarios served from cache so far (across run() calls).
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  /// Distinct scenarios simulated so far.
  [[nodiscard]] std::size_t cache_entries() const { return cache_.size(); }

 private:
  /// evaluate_outcome() minus the wall-clock stamp.
  [[nodiscard]] static EvalOutcome evaluate_untimed(
      const core::SystemConfig& base, const ScenarioSpec& spec);

  core::SystemConfig base_;
  SweepOptions options_;
  std::size_t threads_ = 1;
  std::unordered_map<std::string, std::shared_ptr<const EvalOutcome>> cache_;
  std::size_t cache_hits_ = 0;
};

}  // namespace optiplet::engine
