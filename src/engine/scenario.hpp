#pragma once
/// \file scenario.hpp
/// Declarative scenario grids for the sweep engine.
///
/// A `ScenarioSpec` is one fully-resolved experiment point: a Table-2 model
/// on one architecture with a concrete photonic-interposer shape (wavelength
/// count, gateways per chiplet, modulation), a batch size, and an optional
/// set of named `SystemConfig` overrides (e.g. "resipi.epoch_s"). A
/// `ScenarioGrid` is the cartesian product of per-axis value lists; its
/// `expand()` resolves empty axes to the base configuration's values and
/// pre-filters combinations that are spectrally infeasible (paper §VII:
/// wavelengths must divide across a chiplet's gateways, and the per-gateway
/// MRG row must fit inside one microring FSR for the link budget to close).
///
/// Specs are value types with a canonical string key, which is what the
/// SweepRunner's memoization cache is keyed on: two specs with equal keys
/// are by construction the same simulation.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "accel/platform.hpp"
#include "cluster/cluster_spec.hpp"
#include "core/system_config.hpp"
#include "photonics/modulation.hpp"
#include "serve/serving_spec.hpp"

namespace optiplet::engine {

/// One fully-resolved experiment point.
struct ScenarioSpec {
  /// Table-2 name, resolved via dnn::zoo::by_name — or, for serving
  /// scenarios, the '+'-joined tenant mix (every component resolved).
  std::string model;
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  unsigned batch_size = 1;
  std::size_t wavelengths = 64;
  std::size_t gateways_per_chiplet = 4;
  photonics::ModulationFormat modulation =
      photonics::ModulationFormat::kOok;
  /// Interconnect fidelity: mode (analytical / cycle / sampled) plus the
  /// sampling knobs — see core/fidelity.hpp. Encoded in key() via
  /// core::to_string(FidelitySpec), so the pure modes keep their bare-enum
  /// spellings and sampled plans carry their knobs into the identity.
  core::FidelitySpec fidelity = core::Fidelity::kAnalytical;
  /// Named SystemConfig overrides, applied after the first-class fields.
  /// Keys must come from override_keys(); kept sorted by apply()/key().
  std::vector<std::pair<std::string, double>> overrides;
  /// Request-level serving block: when set, the scenario is evaluated by
  /// serve::simulate() (arrivals + batching + co-location) instead of a
  /// single inference, and `model` names the tenant mix.
  std::optional<serve::ServingSpec> serving;
  /// Rack scale-out block: when set (requires `serving`), the scenario is
  /// evaluated by cluster::simulate() — N packages behind a front-end
  /// load balancer — and the serving metrics become the merged rack view.
  std::optional<cluster::ClusterSpec> cluster;

  /// Imprint this spec onto a configuration (photonic shape, batch size,
  /// then named overrides). Throws std::invalid_argument on unknown
  /// override keys.
  void apply(core::SystemConfig& config) const;

  /// Canonical identity string: equal keys == identical simulation inputs
  /// (relative to a shared base config). Matches apply() semantics exactly:
  /// duplicate override keys collapse to the last occurrence (last write
  /// wins) before sorting, so two specs share a key only when they imprint
  /// the same configuration.
  [[nodiscard]] std::string key() const;

  /// FNV-1a digest of key() — a compact scenario id for logs and labels.
  /// The SweepRunner memo cache keys on the full key() string (collision
  /// proof); this is the short form of the same identity.
  [[nodiscard]] std::uint64_t hash() const;
};

/// Apply one named override to a configuration. Returns false when `name`
/// is not a registered override key.
bool apply_override(core::SystemConfig& config, const std::string& name,
                    double value);

/// The registered override key names, sorted.
[[nodiscard]] std::vector<std::string> override_keys();

/// True when the scenario can physically run on `base`: gateways divide the
/// wavelengths and, for the photonic architecture, the link budget closes
/// with the spec's shape applied.
[[nodiscard]] bool feasible(const ScenarioSpec& spec,
                            const core::SystemConfig& base);

/// Declarative cartesian grid. Every empty axis means "keep the base
/// configuration's value" (and, for `models`, "all five Table-2 models").
struct ScenarioGrid {
  /// Table-2 model names; empty = all five.
  std::vector<std::string> models;
  std::vector<accel::Architecture> architectures;
  std::vector<unsigned> batch_sizes;
  std::vector<std::size_t> wavelengths;
  std::vector<std::size_t> gateways_per_chiplet;
  std::vector<photonics::ModulationFormat> modulations;
  /// Fidelity axis; empty = the base configuration's fidelity.
  std::vector<core::FidelitySpec> fidelities;
  /// Extra sweep axes over named SystemConfig overrides
  /// (e.g. {"resipi.epoch_s", {5e-6, 10e-6, 20e-6}}).
  std::vector<std::pair<std::string, std::vector<double>>> override_axes;

  /// --- serving axes ---
  /// Any non-empty serving axis switches the grid to serving mode: every
  /// expanded spec carries a serve::ServingSpec and `models` is replaced by
  /// `tenant_mixes` (empty = the defaults' mix). Unswept serving fields
  /// (max_batch, requests, seed, ...) come from `serving_defaults`.
  std::vector<double> arrival_rates_rps;
  std::vector<serve::BatchPolicy> batch_policies;
  /// Batch-granular (blocked) vs layer-granular (pipelined) execution.
  std::vector<serve::PipelineMode> pipeline_modes;
  std::vector<std::string> tenant_mixes;
  /// Open-loop (Poisson/trace) vs closed-loop (client pool) arrivals.
  std::vector<serve::ArrivalSource> arrival_sources;
  /// Closed-loop users-per-tenant axis; only meaningful combined with
  /// serve::ArrivalSource::kClosedLoop (open-loop specs ignore it, and
  /// their keys collapse in the memo cache).
  std::vector<unsigned> user_counts;
  /// Admit-all baseline vs SLA-aware shedding.
  std::vector<serve::AdmissionPolicy> admission_policies;
  /// Transformer token-geometry axes (mean prompt / generated tokens).
  /// Only meaningful for mixes of transformer tenants; a zero prefill
  /// keeps the spec fixed-shape.
  std::vector<std::uint32_t> prefill_token_counts;
  std::vector<std::uint32_t> decode_token_counts;
  /// Elastic-policy axis as serve::elastic_from_string codec strings
  /// ("static", "shift=0.2/gate=1e-3:1e-4", ...). Expansion parses each
  /// entry; an unparseable policy throws std::invalid_argument.
  std::vector<std::string> elastic_policies;
  serve::ServingSpec serving_defaults;

  /// --- cluster axes ---
  /// Any non-empty cluster axis switches the grid to cluster mode (which
  /// implies serving mode): every expanded spec carries a
  /// cluster::ClusterSpec on top of its serving block. Unswept cluster
  /// fields (link geometry, replication mix, ...) come from
  /// `cluster_defaults`.
  std::vector<std::size_t> package_counts;
  std::vector<cluster::BalancerPolicy> balancer_policies;
  std::vector<std::size_t> replication_factors;
  cluster::ClusterSpec cluster_defaults;

  [[nodiscard]] bool cluster_mode() const {
    return !package_counts.empty() || !balancer_policies.empty() ||
           !replication_factors.empty();
  }

  [[nodiscard]] bool serving_mode() const {
    return cluster_mode() || !arrival_rates_rps.empty() ||
           !batch_policies.empty() || !pipeline_modes.empty() ||
           !tenant_mixes.empty() || !arrival_sources.empty() ||
           !user_counts.empty() || !admission_policies.empty() ||
           !prefill_token_counts.empty() || !decode_token_counts.empty() ||
           !elastic_policies.empty();
  }

  /// Grid size before feasibility filtering.
  [[nodiscard]] std::size_t raw_size() const;

  /// Expand to the feasible spec list. Nesting order (outer to inner):
  /// fidelity, wavelengths, gateways, modulation, batch, override axes,
  /// architecture, model — so a fixed interposer shape yields a contiguous
  /// (architecture-major, model-minor) block, the layout the benches
  /// consume. Throws std::invalid_argument for unknown override keys or
  /// unknown model names.
  [[nodiscard]] std::vector<ScenarioSpec> expand(
      const core::SystemConfig& base) const;
};

/// Parse helpers for CLIs: accept the canonical to_string() names plus the
/// short aliases "mono"/"crosslight", "elec", "siph" and "ook", "pam4".
/// (Fidelity parsing lives next to FidelitySpec:
/// core::fidelity_from_string.)
[[nodiscard]] std::optional<accel::Architecture> architecture_from_string(
    std::string_view name);
[[nodiscard]] std::optional<photonics::ModulationFormat>
modulation_from_string(std::string_view name);

}  // namespace optiplet::engine
