#pragma once
/// \file thread_pool.hpp
/// Fixed-size worker pool over std::thread — the concurrency substrate of
/// the sweep engine. Tasks are submitted as callables and return
/// std::future handles; exceptions thrown inside a task are captured by
/// the packaged_task and rethrown at future::get(), so a crashing scenario
/// never takes a worker (or the process) down with it.
///
/// The pool is deliberately simple: one shared FIFO queue, no work
/// stealing. Sweep tasks are coarse (one full-system simulation each), so
/// queue contention is negligible next to task runtime.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace optiplet::engine {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 selects std::thread::hardware_concurrency
  /// (with a floor of 1 when the runtime cannot report a count).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains nothing: outstanding tasks are completed before the workers
  /// join (submitted work is never dropped).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; the returned future yields its result or rethrows
  /// its exception.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& task) {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      tasks_.emplace([packaged] { (*packaged)(); });
    }
    wake_.notify_one();
    return future;
  }

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Resolve a requested thread count: 0 -> hardware_concurrency (>= 1).
  [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace optiplet::engine
