#pragma once
/// \file reference_platforms.hpp
/// Roofline models of the reference platforms in Table 3.
///
/// The paper quotes measured/published numbers for seven external platforms
/// (P100, Xeon 9282, Threadripper 3970X, Edge TPU, NullHop, DEAP-CNN,
/// HolyLight). We cannot run that hardware, so each platform is modeled as
/// a roofline (DESIGN.md §5 substitution table): per layer,
///   t_layer = max(macs / (peak_macs * utilization),
///               traffic / memory_bandwidth)
/// with weight re-streaming when the model exceeds on-chip memory
/// (the Edge TPU's 8 MiB SRAM is why its big-model latency explodes).
/// Constants come from each platform's public specifications; EXPERIMENTS.md
/// records how the resulting rows compare to the paper's.

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/graph.hpp"
#include "util/units.hpp"

namespace optiplet::baselines {

/// Roofline description of one reference platform.
struct ReferencePlatform {
  std::string name;
  /// Peak multiply-accumulate rate [MAC/s] at inference precision.
  double peak_macs_per_s = 1e12;
  /// Fraction of peak sustained on real DNN layers.
  double utilization = 0.3;
  /// Off-chip memory bandwidth [bit/s].
  double memory_bandwidth_bps = 100.0 * units::Gbps;
  /// On-chip weight memory [bits]; models larger than this re-stream
  /// weights per inference.
  std::uint64_t onchip_weight_bits = 8ULL * 1024 * 1024 * 8;
  /// Average board/chip power while running [W].
  double average_power_w = 100.0;
  /// Fixed per-inference overhead [s] (kernel launches, host I/O).
  double fixed_overhead_s = 50.0 * units::us;
};

/// Result of evaluating one model on one reference platform.
struct ReferenceResult {
  std::string platform;
  std::string model;
  double latency_s = 0.0;
  double energy_j = 0.0;
  double epb_j_per_bit = 0.0;
  std::uint64_t traffic_bits = 0;
};

/// Evaluate `model` on `platform` (8-bit traffic accounting to match the
/// accelerator simulations).
[[nodiscard]] ReferenceResult evaluate(const ReferencePlatform& platform,
                                       const dnn::Model& model);

/// The seven Table-3 reference platforms with public-spec constants.
[[nodiscard]] std::vector<ReferencePlatform> table3_reference_platforms();

}  // namespace optiplet::baselines
