#include "baselines/reference_platforms.hpp"

#include <algorithm>

#include "dnn/workload.hpp"
#include "util/require.hpp"

namespace optiplet::baselines {

ReferenceResult evaluate(const ReferencePlatform& platform,
                         const dnn::Model& model) {
  OPTIPLET_REQUIRE(platform.peak_macs_per_s > 0.0, "peak rate must be > 0");
  OPTIPLET_REQUIRE(platform.utilization > 0.0 && platform.utilization <= 1.0,
                   "utilization must be in (0,1]");
  const dnn::Workload w = dnn::compute_workload(model, 8);

  // Weights resident on chip when they fit; otherwise the full weight
  // volume streams across the memory interface every inference.
  const bool stream_weights =
      w.total_weight_bits > platform.onchip_weight_bits;

  double latency = platform.fixed_overhead_s;
  const double sustained =
      platform.peak_macs_per_s * platform.utilization;
  for (const auto& layer : w.layers) {
    const double compute_s = static_cast<double>(layer.macs) / sustained;
    const double comm_bits =
        (stream_weights ? static_cast<double>(layer.weight_bits) : 0.0) +
        0.5 * static_cast<double>(layer.input_bits + layer.output_bits);
    const double comm_s = comm_bits / platform.memory_bandwidth_bps;
    latency += std::max(compute_s, comm_s);
  }

  ReferenceResult r;
  r.platform = platform.name;
  r.model = model.name();
  r.latency_s = latency;
  r.energy_j = platform.average_power_w * latency;
  r.traffic_bits = w.total_traffic_bits();
  r.epb_j_per_bit = r.energy_j / static_cast<double>(r.traffic_bits);
  return r;
}

std::vector<ReferencePlatform> table3_reference_platforms() {
  std::vector<ReferencePlatform> platforms;

  // Nvidia P100: 21.2 TFLOPS FP16 (10.6 TMAC/s), 732 GB/s HBM2, 250 W TDP.
  // Batch-1 inference sustains a few percent of peak on small kernels.
  platforms.push_back(ReferencePlatform{
      .name = "Nvidia P100 GPU",
      .peak_macs_per_s = 10.6e12,
      .utilization = 0.04,
      .memory_bandwidth_bps = 5.86 * units::Tbps,
      .onchip_weight_bits = 4ULL * 1024 * 1024 * 8,  // L2: weights stream
      .average_power_w = 250.0,
      .fixed_overhead_s = 1.0 * units::ms,  // kernel launch train
  });

  // Intel Xeon Platinum 9282: 56 cores, AVX-512 FMA at ~2.6 GHz
  // (2.33 TMAC/s FP32 peak), 12-channel DDR4, 400 W platform power.
  platforms.push_back(ReferencePlatform{
      .name = "Intel 9282 CPU",
      .peak_macs_per_s = 2.33e12,
      .utilization = 0.022,
      .memory_bandwidth_bps = 2.25 * units::Tbps,
      .onchip_weight_bits = 77ULL * 1024 * 1024 * 8,  // LLC
      .average_power_w = 400.0,
      .fixed_overhead_s = 0.5 * units::ms,
  });

  // AMD Threadripper 3970X: 32 cores (1.9 TMAC/s FP32 peak), 4-ch DDR4,
  // 280 W TDP.
  platforms.push_back(ReferencePlatform{
      .name = "AMD 3970 CPU",
      .peak_macs_per_s = 1.9e12,
      .utilization = 0.017,
      .memory_bandwidth_bps = 0.82 * units::Tbps,
      .onchip_weight_bits = 144ULL * 1024 * 1024 * 8,
      .average_power_w = 280.0,
      .fixed_overhead_s = 0.5 * units::ms,
  });

  // Google Edge TPU: 4 TOPS int8 (2 TMAC/s), 8 MiB on-chip; models larger
  // than SRAM re-stream weights over the USB host link every inference,
  // which is what blows up its big-model latency in Table 3.
  platforms.push_back(ReferencePlatform{
      .name = "Edge TPU",
      .peak_macs_per_s = 2.0e12,
      .utilization = 0.25,
      .memory_bandwidth_bps = 0.24 * units::Gbps,
      .onchip_weight_bits = 8ULL * 1024 * 1024 * 8,
      .average_power_w = 2.0,
      .fixed_overhead_s = 100.0 * units::ms,
  });

  // NullHop (Zynq-class CNN accelerator, [42]): 128 MACs, sub-GHz clock,
  // DDR-limited; very low power, very high latency on large models.
  platforms.push_back(ReferencePlatform{
      .name = "Null Hop",
      .peak_macs_per_s = 5.6e9,
      .utilization = 0.10,
      .memory_bandwidth_bps = 25.6 * units::Gbps,
      .onchip_weight_bits = 2ULL * 1024 * 1024 * 8,
      .average_power_w = 2.3,
      .fixed_overhead_s = 1.0 * units::ms,
  });

  // DEAP-CNN [43]: digital-electronics + analog-photonics CNN engine;
  // modest parallelism, high optical bias power.
  platforms.push_back(ReferencePlatform{
      .name = "Deap_CNN",
      .peak_macs_per_s = 29.0e9,
      .utilization = 0.25,
      .memory_bandwidth_bps = 64.0 * units::Gbps,
      .onchip_weight_bits = 1ULL * 1024 * 1024 * 8,
      .average_power_w = 122.0,
      .fixed_overhead_s = 0.5 * units::ms,
  });

  // HolyLight [23]: microdisk-based nanophotonic accelerator.
  platforms.push_back(ReferencePlatform{
      .name = "HolyLight",
      .peak_macs_per_s = 208.0e9,
      .utilization = 0.25,
      .memory_bandwidth_bps = 256.0 * units::Gbps,
      .onchip_weight_bits = 4ULL * 1024 * 1024 * 8,
      .average_power_w = 66.5,
      .fixed_overhead_s = 0.2 * units::ms,
  });

  return platforms;
}

}  // namespace optiplet::baselines
