#pragma once
/// \file mapper.hpp
/// Layer-to-chiplet mapping (paper §V: "heterogeneous MAC unit sizes across
/// different chiplets to cater to the different kernel sizes").
///
/// Affinity rules:
///   * 3x3 convs and depthwise convs (9-element dots) -> 3x3 chiplets;
///   * 4x4/5x5 -> 5x5 chiplets; 6x6/7x7 and larger -> 7x7 chiplets;
///   * 1x1 (pointwise) convs and fully connected layers -> 100-unit dense
///     chiplets (their dot products are channel-length vectors);
///   * 2x2 -> 3x3 chiplets.
///
/// A layer is data-parallelized across every chiplet of its affinity group;
/// the replication factor (how many chiplets need the layer's operand
/// stream) is what the electrical interposer pays for and the photonic
/// broadcast gets for free.

#include <vector>

#include "accel/platform.hpp"
#include "dnn/workload.hpp"

namespace optiplet::accel {

/// Mapping decision for one compute layer.
struct LayerAssignment {
  std::size_t workload_index = 0;  ///< index into Workload::layers
  MacKind group = MacKind::kConv3;
  /// Chiplets of the group working on the layer.
  std::size_t chiplets_used = 1;
  /// Aggregate sustained throughput available to the layer [MAC/s].
  double macs_per_s = 0.0;
};

/// MAC-kind affinity of a layer.
[[nodiscard]] MacKind affinity(const dnn::LayerWork& layer);

/// Map every compute layer of `workload` onto `platform`.
[[nodiscard]] std::vector<LayerAssignment> map_layers(
    const dnn::Workload& workload, const Platform& platform);

}  // namespace optiplet::accel
