#include "accel/mapper.hpp"

#include "util/require.hpp"

namespace optiplet::accel {

MacKind affinity(const dnn::LayerWork& layer) {
  if (layer.kind == dnn::LayerKind::kDense ||
      layer.kind == dnn::LayerKind::kAttention ||
      layer.kind == dnn::LayerKind::kLinear) {
    // Dense-affine work (fully connected, attention scores/mixes,
    // token-wise linear): long channel-length dot products.
    return MacKind::kDense100;
  }
  if (layer.kind == dnn::LayerKind::kDepthwiseConv2d) {
    return MacKind::kConv3;  // 9-element dots
  }
  switch (layer.kernel) {
    case 1:
      return MacKind::kDense100;  // pointwise: channel-length dot products
    case 2:
    case 3:
      return MacKind::kConv3;
    case 4:
    case 5:
      return MacKind::kConv5;
    default:
      return MacKind::kConv7;  // 6x6, 7x7 and larger (decomposed)
  }
}

std::vector<LayerAssignment> map_layers(const dnn::Workload& workload,
                                        const Platform& platform) {
  std::vector<LayerAssignment> assignments;
  assignments.reserve(workload.layers.size());
  for (std::size_t i = 0; i < workload.layers.size(); ++i) {
    const dnn::LayerWork& lw = workload.layers[i];
    LayerAssignment a;
    a.workload_index = i;
    a.group = affinity(lw);
    const Platform::Group& g = platform.group_for(a.group);
    a.chiplets_used = g.chiplet_count;
    a.macs_per_s = platform.group_macs_per_s(a.group);
    OPTIPLET_ASSERT(a.macs_per_s > 0.0, "group with zero throughput");
    assignments.push_back(a);
  }
  return assignments;
}

}  // namespace optiplet::accel
