#pragma once
/// \file chiplet.hpp
/// Compute chiplet model: a set of photonic MAC units of one class organized
/// into broadcast-and-weight buses (one bus per gateway, Table 1's
/// "MACs per gateway"), with a device-level laser budget.
///
/// The laser budget is the scalability mechanism the paper leans on: every
/// unit on a bus taps optical power (10*log10(U) split), adds tap excess
/// loss, and lengthens the bus waveguide, so the per-wavelength laser power
/// grows quickly with units-per-bus and die span. Monolithic CrossLight
/// packs more units on longer buses on a bigger die, which is exactly why
/// its energy efficiency trails the chipletized version (paper §V).

#include <cstdint>

#include "accel/mac_unit.hpp"
#include "photonics/link_budget.hpp"
#include "photonics/photodetector.hpp"
#include "power/tech_params.hpp"
#include "util/units.hpp"

namespace optiplet::accel {

/// Physical/organizational design of one compute chiplet (or of one unit
/// group on a monolithic die — same model, different geometry).
struct ChipletDesign {
  MacKind kind = MacKind::kConv3;
  /// MAC units on the chiplet (Table 1: "Number of MACs per chiplet").
  std::uint32_t units = 44;
  /// Units sharing one broadcast bus = one gateway's units
  /// (Table 1: "Number of MACs per gateway").
  std::uint32_t units_per_bus = 11;
  /// Extra waveguide path from the coupler to the first unit [m]
  /// (die-span dependent; monolithic dies pay more).
  double extra_path_m = 2.0 * units::mm;
  /// Waveguide crossings on the worst-case bus path.
  std::uint32_t crossings = 4;
};

/// A compute chiplet (Fig. 3: "Chiplet 1..4"), or the monolithic die's unit
/// group when `ChipletDesign` carries monolithic geometry.
class ComputeChiplet {
 public:
  ComputeChiplet(const ChipletDesign& design, const power::TechParams& tech);

  [[nodiscard]] const ChipletDesign& design() const { return design_; }
  [[nodiscard]] MacKind kind() const { return design_.kind; }
  [[nodiscard]] std::uint32_t unit_count() const { return design_.units; }
  [[nodiscard]] std::uint32_t bus_count() const;

  /// Sustained MAC throughput [MAC/s] (peak * utilization).
  [[nodiscard]] double sustained_macs_per_s() const;

  /// Time to execute `macs` multiply-accumulates on this chiplet alone [s].
  [[nodiscard]] double compute_time_s(std::uint64_t macs) const;

  /// Optical link budget of one broadcast bus (laser output -> worst unit
  /// photodetector).
  [[nodiscard]] const photonics::LinkBudget& bus_budget() const {
    return bus_budget_;
  }

  /// Required laser optical power per wavelength per bus [W].
  [[nodiscard]] double laser_power_per_wavelength_w() const;

  /// Electrical laser power for the whole chiplet while computing [W]
  /// (all buses, S wavelengths each, wall-plug + TEC).
  [[nodiscard]] double laser_electrical_power_w() const;

  /// Static ring-tuning power: weight banks + the per-bus input banks [W].
  [[nodiscard]] double ring_tuning_power_w() const;

  /// Static electronics power (unit drivers/bias) [W].
  [[nodiscard]] double electronics_static_power_w() const;

  /// Total power while the chiplet executes a layer [W].
  [[nodiscard]] double active_power_w() const;

  /// Dynamic energy for `macs` MACs [J] (DAC/ADC/buffers; activation DACs
  /// amortized across the units of a bus).
  [[nodiscard]] double dynamic_energy_j(std::uint64_t macs) const;

  [[nodiscard]] const PhotonicMacUnit& unit() const { return unit_; }

 private:
  void build_bus_budget();

  ChipletDesign design_;
  power::TechParams tech_;
  PhotonicMacUnit unit_;
  photonics::LinkBudget bus_budget_;
};

}  // namespace optiplet::accel
