#pragma once
/// \file platform.hpp
/// Accelerator platform assembly: the Table-1 chiplet mix for the 2.5D
/// variants and the monolithic CrossLight configuration.
///
/// 2.5D platform (Table 1): 1 memory chiplet (HBM) + 8 compute chiplets:
///   2 chiplets x 4   100-unit dense MACs (1 MAC/gateway  -> 4 gateways)
///   1 chiplet  x 8   7x7 conv MACs       (2 MACs/gateway -> 4 gateways)
///   2 chiplets x 16  5x5 conv MACs       (4 MACs/gateway -> 4 gateways)
///   3 chiplets x 44  3x3 conv MACs       (11 MACs/gateway-> 4 gateways)
///
/// Monolithic CrossLight: one die carrying a quarter of the 2.5D unit
/// counts (reticle/yield-limited), with twice the units per bus (fewer
/// memory ports feed the die) and longer on-die waveguide paths — the
/// geometry that makes monolithic laser power scale poorly (§V).

#include <cstdint>
#include <vector>

#include "accel/chiplet.hpp"
#include "power/tech_params.hpp"

namespace optiplet::accel {

/// The three evaluated architectures (§VI).
enum class Architecture {
  kMonolithicCrossLight,
  kElec2p5D,
  kSiph2p5D,
};

[[nodiscard]] constexpr const char* to_string(Architecture a) {
  switch (a) {
    case Architecture::kMonolithicCrossLight: return "CrossLight";
    case Architecture::kElec2p5D: return "2.5D-CrossLight-Elec";
    case Architecture::kSiph2p5D: return "2.5D-CrossLight-SiPh";
  }
  return "?";
}

/// One homogeneous group of identical chiplets.
struct ChipletGroup {
  ChipletDesign chiplet{};
  std::size_t chiplet_count = 1;
};

/// Platform structural description.
struct PlatformSpec {
  std::vector<ChipletGroup> groups;
  /// Bandwidth between the memory system and the (single) on-die network
  /// port for the monolithic case [bit/s]; 2.5D variants use the interposer
  /// models instead.
  double monolithic_memory_bandwidth_bps = 512.0 * units::Gbps;
};

/// Table-1 compute complement (8 chiplets).
[[nodiscard]] PlatformSpec make_table1_spec();

/// Monolithic CrossLight: Table-1 unit counts scaled by 1/`scale_divisor`
/// on one die with monolithic bus geometry.
[[nodiscard]] PlatformSpec make_monolithic_spec(unsigned scale_divisor = 4);

/// An assembled platform: chiplet models per group with lookup by MAC kind.
class Platform {
 public:
  Platform(const PlatformSpec& spec, const power::TechParams& tech);

  struct Group {
    ComputeChiplet chiplet;
    std::size_t chiplet_count;
  };

  [[nodiscard]] const std::vector<Group>& groups() const { return groups_; }

  /// Group serving `kind`; every platform must provision all four kinds.
  [[nodiscard]] const Group& group_for(MacKind kind) const;

  /// Aggregate sustained throughput of the group serving `kind` [MAC/s].
  [[nodiscard]] double group_macs_per_s(MacKind kind) const;

  /// Total MAC units across the platform.
  [[nodiscard]] std::uint64_t total_units() const;

  /// Total compute chiplets (monolithic: 1 logical die counted per group).
  [[nodiscard]] std::size_t total_chiplets() const;

  /// Sum of active power across all chiplets (everything lit) [W].
  [[nodiscard]] double peak_compute_power_w() const;

  [[nodiscard]] const PlatformSpec& spec() const { return spec_; }

 private:
  PlatformSpec spec_;
  std::vector<Group> groups_;
};

}  // namespace optiplet::accel
