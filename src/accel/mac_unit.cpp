#include "accel/mac_unit.hpp"

#include "util/require.hpp"

namespace optiplet::accel {

PhotonicMacUnit::PhotonicMacUnit(MacKind kind, const power::ComputeTech& tech)
    : kind_(kind), tech_(tech) {
  OPTIPLET_REQUIRE(tech.mac_symbol_rate_hz > 0.0,
                   "symbol rate must be positive");
}

double PhotonicMacUnit::peak_macs_per_s() const {
  return static_cast<double>(size()) * tech_.mac_symbol_rate_hz;
}

double PhotonicMacUnit::energy_per_symbol_j(double weight_reuse) const {
  OPTIPLET_REQUIRE(weight_reuse >= 1.0, "weight reuse must be >= 1");
  const double s = static_cast<double>(size());
  const double weight_dacs =
      s * tech_.dac_energy_per_conversion_j / weight_reuse;
  const double adc = tech_.adc_energy_per_conversion_j;
  const double buffers = s * static_cast<double>(tech_.parameter_bits) *
                         tech_.buffer_energy_per_bit_j;
  return weight_dacs + adc + buffers;
}

double PhotonicMacUnit::static_power_w() const {
  return static_cast<double>(size()) * tech_.mac_static_per_element_w;
}

}  // namespace optiplet::accel
