#pragma once
/// \file mac_unit.hpp
/// Photonic multiply-accumulate unit (paper §V, Fig. 4).
///
/// A MAC unit of vector size S performs one S-element dot product per symbol
/// at the DAC-limited symbol rate, following the broadcast-and-weight
/// protocol [35]: activations are imprinted once per wavelength on the
/// chiplet's broadcast bus (shared by all units on the bus), each unit's
/// weight bank of S microrings applies per-element amplitude weighting, and
/// a photodetector sums the S wavelengths into one accumulated current.
///
/// Table 1 defines four unit classes: 3x3 / 5x5 / 7x7 convolution MACs
/// (S = 9 / 25 / 49) and 100-unit dense MACs (S = 100).

#include <cstdint>

#include "power/tech_params.hpp"

namespace optiplet::accel {

/// MAC-unit class (kernel affinity).
enum class MacKind { kDense100, kConv7, kConv5, kConv3 };

[[nodiscard]] constexpr const char* to_string(MacKind kind) {
  switch (kind) {
    case MacKind::kDense100: return "100-unit dense";
    case MacKind::kConv7: return "7x7 conv";
    case MacKind::kConv5: return "5x5 conv";
    case MacKind::kConv3: return "3x3 conv";
  }
  return "?";
}

/// Dot-product vector length of a unit class (kernel elements; 100 for the
/// dense unit).
[[nodiscard]] constexpr std::uint32_t vector_size(MacKind kind) {
  switch (kind) {
    case MacKind::kDense100: return 100;
    case MacKind::kConv7: return 49;
    case MacKind::kConv5: return 25;
    case MacKind::kConv3: return 9;
  }
  return 0;
}

/// One photonic MAC unit.
class PhotonicMacUnit {
 public:
  PhotonicMacUnit(MacKind kind, const power::ComputeTech& tech);

  [[nodiscard]] MacKind kind() const { return kind_; }
  [[nodiscard]] std::uint32_t size() const { return vector_size(kind_); }

  /// Peak multiply-accumulate throughput [MAC/s] = S * symbol rate.
  [[nodiscard]] double peak_macs_per_s() const;

  /// Microrings in the unit: S weight rings + S input-bank rings shared at
  /// the bus head are accounted at the chiplet level; per unit we count the
  /// weight bank only.
  [[nodiscard]] std::uint32_t ring_count() const { return size(); }

  /// Dynamic energy per symbol (one S-element dot product) [J]:
  /// S weight-DAC conversions amortized over weight reuse, one ADC sample,
  /// and buffer reads for the S activations.
  [[nodiscard]] double energy_per_symbol_j(double weight_reuse) const;

  /// Static electrical power of the unit's drivers and biasing [W]
  /// (excludes ring tuning, which the chiplet aggregates).
  [[nodiscard]] double static_power_w() const;

 private:
  MacKind kind_;
  power::ComputeTech tech_;
};

}  // namespace optiplet::accel
