#include "accel/platform.hpp"

#include "util/require.hpp"

namespace optiplet::accel {

PlatformSpec make_table1_spec() {
  PlatformSpec spec;

  ChipletDesign dense;
  dense.kind = MacKind::kDense100;
  dense.units = 4;
  dense.units_per_bus = 1;  // Table 1: 1 MAC per gateway
  spec.groups.push_back({dense, 2});

  ChipletDesign conv7;
  conv7.kind = MacKind::kConv7;
  conv7.units = 8;
  conv7.units_per_bus = 2;  // 2 MACs per gateway
  spec.groups.push_back({conv7, 1});

  ChipletDesign conv5;
  conv5.kind = MacKind::kConv5;
  conv5.units = 16;
  conv5.units_per_bus = 4;  // 4 MACs per gateway
  spec.groups.push_back({conv5, 2});

  ChipletDesign conv3;
  conv3.kind = MacKind::kConv3;
  conv3.units = 44;
  conv3.units_per_bus = 11;  // 11 MACs per gateway
  spec.groups.push_back({conv3, 3});

  return spec;
}

PlatformSpec make_monolithic_spec(unsigned scale_divisor) {
  OPTIPLET_REQUIRE(scale_divisor >= 1, "scale divisor must be >= 1");
  PlatformSpec spec = make_table1_spec();
  for (auto& group : spec.groups) {
    // Fold each group's chiplets into one on-die unit pool at 1/scale.
    const std::uint64_t total_units =
        static_cast<std::uint64_t>(group.chiplet.units) * group.chiplet_count;
    group.chiplet.units = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, total_units / scale_divisor));
    group.chiplet_count = 1;
    // Monolithic geometry: fewer memory ports feed the die, so buses carry
    // twice the units; the big die adds path length and crossings.
    group.chiplet.units_per_bus =
        std::min(group.chiplet.units, group.chiplet.units_per_bus * 2);
    group.chiplet.extra_path_m = 8.0 * units::mm;
    group.chiplet.crossings = 16;
  }
  return spec;
}

Platform::Platform(const PlatformSpec& spec, const power::TechParams& tech)
    : spec_(spec) {
  OPTIPLET_REQUIRE(!spec.groups.empty(), "platform needs chiplet groups");
  groups_.reserve(spec.groups.size());
  for (const auto& g : spec.groups) {
    OPTIPLET_REQUIRE(g.chiplet_count >= 1, "empty chiplet group");
    groups_.push_back(Group{ComputeChiplet(g.chiplet, tech), g.chiplet_count});
  }
  // Kinds are validated lazily by group_for(): a platform only needs the
  // MAC kinds its workloads map to, which lets serving tenants run on
  // partial chiplet partitions (serve::partition_pool).
}

const Platform::Group& Platform::group_for(MacKind kind) const {
  for (const auto& g : groups_) {
    if (g.chiplet.kind() == kind) {
      return g;
    }
  }
  OPTIPLET_REQUIRE(false, "platform has no chiplet group for MAC kind");
  return groups_.front();  // unreachable
}

double Platform::group_macs_per_s(MacKind kind) const {
  const Group& g = group_for(kind);
  return g.chiplet.sustained_macs_per_s() *
         static_cast<double>(g.chiplet_count);
}

std::uint64_t Platform::total_units() const {
  std::uint64_t n = 0;
  for (const auto& g : groups_) {
    n += static_cast<std::uint64_t>(g.chiplet.unit_count()) * g.chiplet_count;
  }
  return n;
}

std::size_t Platform::total_chiplets() const {
  std::size_t n = 0;
  for (const auto& g : groups_) {
    n += g.chiplet_count;
  }
  return n;
}

double Platform::peak_compute_power_w() const {
  double p = 0.0;
  for (const auto& g : groups_) {
    p += g.chiplet.active_power_w() * static_cast<double>(g.chiplet_count);
  }
  return p;
}

}  // namespace optiplet::accel
