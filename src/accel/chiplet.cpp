#include "accel/chiplet.hpp"

#include <cmath>

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::accel {

ComputeChiplet::ComputeChiplet(const ChipletDesign& design,
                               const power::TechParams& tech)
    : design_(design), tech_(tech), unit_(design.kind, tech.compute) {
  OPTIPLET_REQUIRE(design.units >= 1, "chiplet needs at least one MAC unit");
  OPTIPLET_REQUIRE(design.units_per_bus >= 1 &&
                       design.units_per_bus <= design.units,
                   "units per bus must be in [1, units]");
  build_bus_budget();
}

std::uint32_t ComputeChiplet::bus_count() const {
  return (design_.units + design_.units_per_bus - 1) / design_.units_per_bus;
}

double ComputeChiplet::sustained_macs_per_s() const {
  return static_cast<double>(design_.units) * unit_.peak_macs_per_s() *
         tech_.compute.mac_utilization;
}

double ComputeChiplet::compute_time_s(std::uint64_t macs) const {
  return static_cast<double>(macs) / sustained_macs_per_s();
}

void ComputeChiplet::build_bus_budget() {
  const auto& ct = tech_.compute;
  const double u = design_.units_per_bus;
  bus_budget_ = photonics::LinkBudget{};
  bus_budget_.add_loss("laser-to-chip coupler",
                       tech_.photonic.laser.coupling_loss_db);
  // Laser split across the chiplet's buses: a 1x2 splitter tree with per-
  // stage excess loss (the 1/N split itself is power conservation, not
  // loss: each bus gets its own per-wavelength requirement).
  const double split_stages =
      std::ceil(std::log2(std::max(1.0, static_cast<double>(bus_count()))));
  bus_budget_.add_loss("bus splitter tree excess",
                       split_stages * tech_.photonic.splitter_loss_db);
  bus_budget_.add_loss("input modulator bank",
                       ct.input_modulator_insertion_db);
  const double bus_length_m =
      design_.extra_path_m + u * ct.unit_bus_pitch_m;
  bus_budget_.add_loss("bus waveguide propagation",
                       bus_length_m * ct.chip_waveguide_loss_db_per_m);
  bus_budget_.add_loss("waveguide crossings",
                       static_cast<double>(design_.crossings) *
                           tech_.photonic.waveguide.crossing_loss_db);
  bus_budget_.add_loss("unit power taps excess",
                       u * ct.tap_excess_loss_db);
  bus_budget_.add_loss("broadcast split across units",
                       10.0 * std::log10(u));
  bus_budget_.add_loss("weight bank insertion",
                       ct.weight_bank_insertion_db);
}

double ComputeChiplet::laser_power_per_wavelength_w() const {
  const photonics::Photodetector pd(tech_.photonic.photodetector);
  // The PD integrates one symbol per dot product; its sensitivity is taken
  // at the symbol rate, plus the analog-precision penalty (multi-level
  // amplitudes need a cleaner eye than OOK).
  const double sensitivity_dbm =
      pd.sensitivity_dbm(tech_.compute.mac_symbol_rate_hz);
  return bus_budget_.required_laser_power_w(
      sensitivity_dbm + tech_.compute.analog_precision_penalty_db,
      /*crosstalk_penalty_db=*/0.5, tech_.compute.compute_margin_db);
}

double ComputeChiplet::laser_electrical_power_w() const {
  const double per_wavelength = laser_power_per_wavelength_w();
  const double optical = per_wavelength *
                         static_cast<double>(unit_.size()) *
                         static_cast<double>(bus_count());
  const auto& laser = tech_.photonic.laser;
  // The bus budget already charges the coupler loss, so `optical` is laser
  // output power; convert to wall-plug electrical with TEC overhead.
  return optical / laser.wall_plug_efficiency * laser.tec_overhead_factor;
}

double ComputeChiplet::ring_tuning_power_w() const {
  const auto& tuning = tech_.photonic.tuning;
  // Weight banks: S rings per unit. Input imprint banks: S rings per bus.
  const std::uint64_t rings =
      static_cast<std::uint64_t>(design_.units) * unit_.ring_count() +
      static_cast<std::uint64_t>(bus_count()) * unit_.size();
  const double trim_m = 0.4 * units::nm;  // process-variation hold
  const double thermal = std::max(0.0, trim_m - tuning.eo_range_m) /
                         tuning.to_efficiency_m_per_w;
  return static_cast<double>(rings) * (thermal + tuning.driver_static_w);
}

double ComputeChiplet::electronics_static_power_w() const {
  return static_cast<double>(design_.units) * unit_.static_power_w();
}

double ComputeChiplet::active_power_w() const {
  return laser_electrical_power_w() + ring_tuning_power_w() +
         electronics_static_power_w();
}

double ComputeChiplet::dynamic_energy_j(std::uint64_t macs) const {
  const double symbols =
      static_cast<double>(macs) / static_cast<double>(unit_.size());
  // Weight reuse: a conv kernel is held while the activation window slides;
  // charge one weight-DAC refresh per 64 symbols (output-tile reuse).
  const double per_symbol = unit_.energy_per_symbol_j(/*weight_reuse=*/64.0);
  // Activation DACs: S conversions per symbol per bus, shared by the
  // units_per_bus units -> amortized per unit.
  const double act_dac_per_symbol =
      static_cast<double>(unit_.size()) *
      tech_.compute.dac_energy_per_conversion_j /
      static_cast<double>(design_.units_per_bus);
  return symbols * (per_symbol + act_dac_per_symbol);
}

}  // namespace optiplet::accel
