#pragma once
/// \file tech_params.hpp
/// Technology parameter database.
///
/// Every constant the simulators consume lives here, with the literature
/// source it was taken from. The paper (§VI) states it employs "the power
/// model and power parameters used in [11] and [37]" — PROWAVES and
/// ReSiPI —
/// and the CrossLight [21] device stack for compute; this file encodes those
/// parameter sets. Changing an entry here is the intended way to re-run the
/// whole evaluation under a different technology assumption.

#include "photonics/laser.hpp"
#include "photonics/microring.hpp"
#include "photonics/mzi.hpp"
#include "photonics/pcm_coupler.hpp"
#include "photonics/photodetector.hpp"
#include "photonics/waveguide.hpp"
#include "util/units.hpp"

namespace optiplet::power {

/// Electrical technology constants (active interposer, 28–32 nm class,
/// values from the DeFT [40] / active-interposer literature).
struct ElectricalTech {
  /// Energy per bit per mm of interposer wire [J/bit/m]. 0.18 pJ/bit/mm.
  double wire_energy_per_bit_per_m = 0.18 * units::pJ / units::mm;
  /// Router energy per bit per hop (buffering + crossbar + arbitration).
  double router_energy_per_bit_j = 0.45 * units::pJ;
  /// Router leakage+clock static power per router [W].
  double router_static_w = 18.0 * units::mW;
  /// Router pipeline depth [cycles] (RC/VA/SA/ST).
  unsigned router_pipeline_cycles = 4;
  /// Link traversal latency per hop [cycles] — long interposer wires are
  /// pipelined at 2 cycles/hop at 2 GHz (~5 mm reach per cycle).
  unsigned link_cycles_per_hop = 2;
  /// SerDes/PHY energy at chiplet boundary crossings [J/bit].
  double phy_energy_per_bit_j = 0.35 * units::pJ;
};

/// Photonic interposer constants (PROWAVES [11] / ReSiPI [37] stack).
struct PhotonicTech {
  photonics::WaveguideTech waveguide{};
  photonics::MicroringDesign ring{};
  photonics::MicroringTuning tuning{};
  photonics::PhotodetectorDesign photodetector{};
  photonics::LaserDesign laser{};
  photonics::PcmCouplerDesign pcm{};
  photonics::MziDesign mzi{};
  /// Splitter excess loss per 1x2 stage [dB].
  double splitter_loss_db = 0.13;
  /// System power margin added to every link budget [dB].
  double system_margin_db = 3.0;
  /// Gateway digital back-end (buffering, flow control) energy [J/bit].
  double gateway_digital_energy_per_bit_j = 0.25 * units::pJ;
  /// Gateway static power when active [W]: the SerDes macro (16 lanes at
  /// 12 Gb/s), PLLs, and store-and-forward buffers.
  double gateway_static_w = 400.0 * units::mW;
  /// Serializer/driver energy on the transmit side [J/bit].
  double serializer_energy_per_bit_j = 0.12 * units::pJ;
  /// ReSiPI controller static power [W].
  double controller_static_w = 25.0 * units::mW;
};

/// CrossLight-style photonic MAC compute constants [21][22].
struct ComputeTech {
  /// Photonic vector-unit symbol rate [samples/s] — the rate at which a MAC
  /// unit completes one vector dot product. DAC-limited; the CrossLight
  /// device stack supports 1-10 GS/s, 4 GS/s is the calibrated midpoint.
  double mac_symbol_rate_hz = 4.0 * units::GHz;
  /// Fraction of peak MAC throughput sustained on real layers (pipeline
  /// fill, ragged tiling edges).
  double mac_utilization = 0.85;
  /// Extra received-power requirement for analog amplitude precision over
  /// plain OOK detection [dB]. Calibration constant: 8-bit amplitude
  /// resolution needs a cleaner eye than on/off detection.
  double analog_precision_penalty_db = 10.0;
  /// Chiplet-internal strip waveguide loss [dB/m] (1.5 dB/cm standard SOI).
  double chip_waveguide_loss_db_per_m = 150.0;
  /// Waveguide length added per MAC unit along a broadcast bus [m].
  double unit_bus_pitch_m = 0.4 * units::mm;
  /// Excess loss of each unit's power tap on the bus [dB].
  double tap_excess_loss_db = 0.05;
  /// Insertion loss of the input-imprinting modulator bank [dB].
  double input_modulator_insertion_db = 1.0;
  /// Insertion loss of a unit's weight bank at operating points [dB].
  double weight_bank_insertion_db = 1.5;
  /// Link margin inside compute chiplets [dB].
  double compute_margin_db = 3.0;
  /// DAC energy per conversion per parameter [J] (8-bit, 2 GS/s class).
  double dac_energy_per_conversion_j = 0.65 * units::pJ;
  /// ADC energy per conversion at the MAC output [J] (8-bit).
  double adc_energy_per_conversion_j = 1.1 * units::pJ;
  /// SRAM buffer access energy [J/bit].
  double buffer_energy_per_bit_j = 0.08 * units::pJ;
  /// Static power per MAC unit lane (drivers, bias) [W] excluding rings.
  double mac_static_per_element_w = 0.9 * units::mW;
  /// Weight of process-variation trim per ring folded into MRG model; the
  /// per-ring static tuning power itself comes from MicroringTuning.
  /// Parameter bit width (CrossLight quantizes to 8 bits).
  unsigned parameter_bits = 8;
  /// HBM access energy [J/bit] (HBM2 ~3.9 pJ/bit).
  double hbm_energy_per_bit_j = 3.9 * units::pJ;
  /// HBM internal bandwidth available to the memory chiplet [bit/s].
  double hbm_bandwidth_bps = 2.0 * units::Tbps;
  /// Static power of the memory chiplet PHY+controller [W].
  double hbm_static_w = 2.5 * units::W;
};

/// The full technology bundle used to build a platform.
struct TechParams {
  ElectricalTech electrical{};
  PhotonicTech photonic{};
  ComputeTech compute{};
};

/// Default technology: the parameter set described above. Defined in
/// tech_params.cpp so the defaults live in exactly one translation unit.
[[nodiscard]] TechParams default_tech();

}  // namespace optiplet::power
