#pragma once
/// \file energy_ledger.hpp
/// Hierarchical energy/power accounting.
///
/// Simulators charge energy (for events) and register static power (for the
/// duration of a run) against named categories like "laser", "mrg.tuning",
/// "noc.router". At the end of a run the ledger converts everything into the
/// three numbers the paper reports: average power, total energy, and — given
/// the bit volume — energy per bit.

#include <cstdint>
#include <map>
#include <string>

#include "util/require.hpp"

namespace optiplet::power {

/// Per-category breakdown entry.
struct EnergyEntry {
  double dynamic_energy_j = 0.0;
  double static_power_w = 0.0;
};

/// Energy/power ledger for one simulated run.
class EnergyLedger {
 public:
  /// Charge `joules` of dynamic energy to `category`.
  void charge_energy(const std::string& category, double joules) {
    OPTIPLET_REQUIRE(joules >= 0.0, "cannot charge negative energy");
    entries_[category].dynamic_energy_j += joules;
  }

  /// Register `watts` of static power in `category` (accumulates; call once
  /// per component).
  void add_static_power(const std::string& category, double watts) {
    OPTIPLET_REQUIRE(watts >= 0.0, "static power must be non-negative");
    entries_[category].static_power_w += watts;
  }

  /// Add energy directly computed as power*time for a *portion* of the run
  /// (used for duty-cycled components, e.g. gateways active only in some
  /// epochs).
  void charge_power_for(const std::string& category, double watts,
                        double seconds) {
    OPTIPLET_REQUIRE(watts >= 0.0 && seconds >= 0.0,
                     "power and duration must be non-negative");
    entries_[category].dynamic_energy_j += watts * seconds;
  }

  /// Total dynamic energy across categories [J].
  [[nodiscard]] double total_dynamic_energy_j() const;

  /// Total registered static power [W].
  [[nodiscard]] double total_static_power_w() const;

  /// Total energy over a run of `duration_s` seconds [J].
  [[nodiscard]] double total_energy_j(double duration_s) const;

  /// Average power over a run of `duration_s` seconds [W].
  [[nodiscard]] double average_power_w(double duration_s) const;

  /// Energy per bit for `bits` useful bits moved/processed [J/bit].
  [[nodiscard]] double energy_per_bit_j(double duration_s,
                                        std::uint64_t bits) const;

  [[nodiscard]] const std::map<std::string, EnergyEntry>& entries() const {
    return entries_;
  }

  /// Merge another ledger into this one (category-wise sums).
  void merge(const EnergyLedger& other);

  void reset() { entries_.clear(); }

 private:
  std::map<std::string, EnergyEntry> entries_;
};

}  // namespace optiplet::power
