#include "power/tech_params.hpp"

namespace optiplet::power {

TechParams default_tech() {
  TechParams t;
  // All nested structs carry their literature defaults in their own
  // headers; this hook exists so future experiments can override in one
  // place (e.g. an "aggressive photonics" tech for the DSE example).
  return t;
}

}  // namespace optiplet::power
