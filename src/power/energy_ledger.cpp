#include "power/energy_ledger.hpp"

namespace optiplet::power {

double EnergyLedger::total_dynamic_energy_j() const {
  double total = 0.0;
  for (const auto& [name, entry] : entries_) {
    total += entry.dynamic_energy_j;
  }
  return total;
}

double EnergyLedger::total_static_power_w() const {
  double total = 0.0;
  for (const auto& [name, entry] : entries_) {
    total += entry.static_power_w;
  }
  return total;
}

double EnergyLedger::total_energy_j(double duration_s) const {
  OPTIPLET_REQUIRE(duration_s >= 0.0, "duration must be non-negative");
  return total_dynamic_energy_j() + total_static_power_w() * duration_s;
}

double EnergyLedger::average_power_w(double duration_s) const {
  OPTIPLET_REQUIRE(duration_s > 0.0, "duration must be positive");
  return total_energy_j(duration_s) / duration_s;
}

double EnergyLedger::energy_per_bit_j(double duration_s,
                                      std::uint64_t bits) const {
  OPTIPLET_REQUIRE(bits > 0, "energy per bit needs a positive bit count");
  return total_energy_j(duration_s) / static_cast<double>(bits);
}

void EnergyLedger::merge(const EnergyLedger& other) {
  for (const auto& [name, entry] : other.entries_) {
    entries_[name].dynamic_energy_j += entry.dynamic_energy_j;
    entries_[name].static_power_w += entry.static_power_w;
  }
}

}  // namespace optiplet::power
