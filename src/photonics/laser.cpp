#include "photonics/laser.hpp"

#include <numeric>

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::photonics {

LaserSource::LaserSource(const LaserDesign& design, std::size_t channel_count)
    : design_(design), channels_(channel_count, 0.0) {
  OPTIPLET_REQUIRE(channel_count >= 1, "laser needs at least one channel");
  OPTIPLET_REQUIRE(design.wall_plug_efficiency > 0.0 &&
                       design.wall_plug_efficiency <= 1.0,
                   "wall plug efficiency must be in (0,1]");
  OPTIPLET_REQUIRE(design.coupling_loss_db >= 0.0,
                   "coupling loss must be non-negative");
}

void LaserSource::set_channel_power_w(std::size_t i, double delivered_power_w) {
  OPTIPLET_REQUIRE(i < channels_.size(), "laser channel out of range");
  OPTIPLET_REQUIRE(delivered_power_w >= 0.0, "power must be non-negative");
  const double coupling = design_.kind == LaserKind::kOffChipCombBank
                              ? util::from_db(design_.coupling_loss_db)
                              : 1.0;
  const double source_power = delivered_power_w * coupling;
  OPTIPLET_REQUIRE(source_power <= design_.max_power_per_channel_w,
                   "requested power exceeds laser channel capability");
  channels_[i] = delivered_power_w;
}

double LaserSource::channel_power_w(std::size_t i) const {
  OPTIPLET_REQUIRE(i < channels_.size(), "laser channel out of range");
  return channels_[i];
}

std::size_t LaserSource::active_channel_count() const {
  std::size_t n = 0;
  for (double p : channels_) {
    if (p > 0.0) {
      ++n;
    }
  }
  return n;
}

double LaserSource::total_optical_power_w() const {
  return std::accumulate(channels_.begin(), channels_.end(), 0.0);
}

double LaserSource::electrical_power_w() const {
  const double coupling = design_.kind == LaserKind::kOffChipCombBank
                              ? util::from_db(design_.coupling_loss_db)
                              : 1.0;
  const double source_optical = total_optical_power_w() * coupling;
  const double bias =
      active_channel_count() > 0 ? design_.bias_overhead_w : 0.0;
  return source_optical / design_.wall_plug_efficiency *
             design_.tec_overhead_factor +
         bias;
}

}  // namespace optiplet::photonics
