#pragma once
/// \file wavelength.hpp
/// Wavelength-division-multiplexing (WDM) channel grid.
///
/// The interposer network of the paper uses 64 wavelengths (Table 1) around
/// the C-band. A WdmGrid assigns channel center wavelengths on a uniform
/// spacing and answers geometry questions (spacing, neighbours) that the
/// microring filter and crosstalk models need.

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace optiplet::photonics {

/// Uniformly spaced WDM channel grid, channel 0 at the lowest wavelength.
class WdmGrid {
 public:
  /// \param channel_count number of channels (>= 1)
  /// \param center_wavelength_m grid center, e.g. 1550 nm
  /// \param channel_spacing_m  uniform spacing, e.g. 0.8 nm (100 GHz DWDM)
  WdmGrid(std::size_t channel_count, double center_wavelength_m,
          double channel_spacing_m);

  [[nodiscard]] std::size_t channel_count() const {
    return wavelengths_.size();
  }
  [[nodiscard]] double channel_spacing_m() const { return spacing_m_; }

  /// Center wavelength of channel `i` [m].
  [[nodiscard]] double wavelength_m(std::size_t i) const;

  /// All channel wavelengths, ascending [m].
  [[nodiscard]] const std::vector<double>& wavelengths() const {
    return wavelengths_;
  }

  /// Total optical band occupied by the grid [m] (first to last channel).
  [[nodiscard]] double band_span_m() const;

  /// Index of the channel whose center is nearest to `wavelength_m`.
  [[nodiscard]] std::size_t nearest_channel(double wavelength_m) const;

 private:
  std::vector<double> wavelengths_;
  double spacing_m_;
};

/// Default dense-WDM grid used across the library: 0.8 nm spacing (100 GHz)
/// centred at 1550 nm, per the DWDM assumptions of PROWAVES [11]/ReSiPI [37].
[[nodiscard]] WdmGrid make_cband_grid(std::size_t channel_count);

}  // namespace optiplet::photonics
