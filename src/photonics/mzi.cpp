#include "photonics/mzi.hpp"

#include <cmath>
#include <numbers>

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::photonics {

namespace {
constexpr double kPi = std::numbers::pi;
}

MachZehnderInterferometer::MachZehnderInterferometer(const MziDesign& design)
    : design_(design) {
  OPTIPLET_REQUIRE(design.insertion_loss_db >= 0.0,
                   "insertion loss must be non-negative");
  OPTIPLET_REQUIRE(design.to_p_pi_w > 0.0, "P_pi must be positive");
  OPTIPLET_REQUIRE(design.extinction_ratio_db > 0.0,
                   "extinction ratio must be positive");
}

void MachZehnderInterferometer::set_phase(double dphi_rad) {
  dphi_rad_ = std::remainder(dphi_rad, 2.0 * kPi);
}

double MachZehnderInterferometer::bar_transmission() const {
  const double s = std::sin(dphi_rad_ / 2.0);
  double t = s * s;
  // A real device cannot go darker than its extinction ratio allows.
  const double floor = util::from_db(-design_.extinction_ratio_db);
  t = std::max(t, floor);
  double loss_db = design_.insertion_loss_db;
  if (design_.shifter == PhaseShifterKind::kElectroOptic) {
    loss_db += design_.eo_excess_loss_db;
  }
  return t * util::from_db(-loss_db);
}

double MachZehnderInterferometer::cross_transmission() const {
  const double c = std::cos(dphi_rad_ / 2.0);
  double t = c * c;
  const double floor = util::from_db(-design_.extinction_ratio_db);
  t = std::max(t, floor);
  double loss_db = design_.insertion_loss_db;
  if (design_.shifter == PhaseShifterKind::kElectroOptic) {
    loss_db += design_.eo_excess_loss_db;
  }
  return t * util::from_db(-loss_db);
}

double MachZehnderInterferometer::static_power_w() const {
  if (design_.shifter == PhaseShifterKind::kElectroOptic) {
    return 0.0;  // carrier injection holds state with negligible static draw
  }
  return design_.to_p_pi_w * std::fabs(dphi_rad_) / kPi;
}

double MachZehnderInterferometer::switching_energy_j(
    double new_dphi_rad) const {
  if (design_.shifter != PhaseShifterKind::kElectroOptic) {
    return 0.0;
  }
  const double delta = std::fabs(
      std::remainder(new_dphi_rad - dphi_rad_, 2.0 * kPi));
  return design_.eo_switch_energy_j * delta / kPi;
}

}  // namespace optiplet::photonics
