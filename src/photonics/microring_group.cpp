#include "photonics/microring_group.hpp"

#include <cmath>

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::photonics {

MicroringGroup::MicroringGroup(const MicroringGroupConfig& config,
                               const WdmGrid& grid,
                               std::size_t channel_offset)
    : config_(config) {
  OPTIPLET_REQUIRE(config.wavelengths_per_row >= 1,
                   "MRG row needs at least one wavelength");
  OPTIPLET_REQUIRE(config.modulator_rows + config.filter_rows >= 1,
                   "MRG needs at least one row");
  OPTIPLET_REQUIRE(
      channel_offset + config.wavelengths_per_row <= grid.channel_count(),
      "MRG rows exceed the WDM grid");

  const std::size_t rows = config.modulator_rows + config.filter_rows;
  rings_.reserve(rows * config.wavelengths_per_row);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t w = 0; w < config.wavelengths_per_row; ++w) {
      rings_.emplace_back(config.ring_design, config.ring_tuning,
                          grid.wavelength_m(channel_offset + w));
    }
  }
}

std::size_t MicroringGroup::ring_count() const { return rings_.size(); }

std::size_t MicroringGroup::modulator_count() const {
  return config_.modulator_rows * config_.wavelengths_per_row;
}

std::size_t MicroringGroup::filter_count() const {
  return config_.filter_rows * config_.wavelengths_per_row;
}

double MicroringGroup::static_tuning_power_w() const {
  // Fabrication variation forces every ring to hold a trim offset; the
  // CrossLight/ReSiPI power models charge an average per-ring hold power.
  // We charge each ring its driver static power plus the heater power for a
  // representative 0.4 nm process-variation trim (Mirza et al. device data
  // used by CrossLight [21]).
  const double trim_m = 0.4 * units::nm;
  double total = 0.0;
  for (const auto& ring : rings_) {
    const double thermal_shift =
        std::max(0.0, trim_m - ring.tuning().eo_range_m);
    total += thermal_shift / ring.tuning().to_efficiency_m_per_w +
             ring.tuning().driver_static_w;
  }
  return total;
}

double MicroringGroup::modulation_energy_j(std::uint64_t bits) const {
  return rings_.empty() ? 0.0 : rings_.front().modulation_energy_j(bits);
}

double MicroringGroup::area_m2() const {
  return static_cast<double>(ring_count()) * config_.area_per_ring_m2;
}

double MicroringGroup::through_loss_db() const {
  // A foreign wavelength traversing one MRG row passes each ring at a
  // different spectral offset (the row's rings sit on consecutive WDM
  // channels). Sum the Lorentzian through-port losses at k-channel-spacing
  // detunes on both sides of the victim channel; the same-channel ring of a
  // non-addressed gateway is parked off-grid and contributes nothing.
  if (rings_.empty()) {
    return 0.0;
  }
  const auto& ring = rings_.front();
  const double spacing = 0.8 * units::nm;
  double loss_db = 0.0;
  const auto row = static_cast<long>(config_.wavelengths_per_row);
  for (long k = 1; k < row; ++k) {
    // Worst case: victim in the middle of the row; both sides populated.
    const double sides = (k <= row / 2) ? 2.0 : 1.0;
    const double t = ring.through_transmission(
        ring.resonance_m() + static_cast<double>(k) * spacing);
    loss_db += sides * -util::to_db(t);
  }
  return loss_db;
}

double MicroringGroup::drop_loss_db() const {
  if (rings_.empty()) {
    return 0.0;
  }
  const auto& ring = rings_.front();
  const double t = ring.drop_transmission(ring.resonance_m());
  return -util::to_db(t);
}

}  // namespace optiplet::photonics
