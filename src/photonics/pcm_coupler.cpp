#include "photonics/pcm_coupler.hpp"

#include <cmath>
#include <numbers>

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::photonics {

namespace {
constexpr double kPi = std::numbers::pi;
}

PcmCoupler::PcmCoupler(const PcmCouplerDesign& design) : design_(design) {
  OPTIPLET_REQUIRE(design.coupling_length_amorphous_m > 0.0,
                   "amorphous coupling length must be positive");
  OPTIPLET_REQUIRE(design.coupling_length_crystalline_m > 0.0,
                   "crystalline coupling length must be positive");
  OPTIPLET_REQUIRE(
      design.coupling_length_amorphous_m >
          design.coupling_length_crystalline_m,
      "PCM crystallization strengthens coupling: L_c^am > L_c^cr expected");
  OPTIPLET_REQUIRE(design.device_length_m > 0.0,
                   "device length must be positive");
}

double PcmCoupler::set_crystalline_fraction(double chi) {
  OPTIPLET_REQUIRE(chi >= 0.0 && chi <= 1.0,
                   "crystalline fraction must be in [0,1]");
  if (chi == chi_) {
    return 0.0;
  }
  chi_ = chi;
  ++writes_;
  write_energy_j_ += design_.write_energy_j;
  return design_.write_energy_j;
}

double PcmCoupler::set_state(PcmState state) {
  switch (state) {
    case PcmState::kCrystalline:
      return set_crystalline_fraction(1.0);
    case PcmState::kPartiallyCrystalline:
      return set_crystalline_fraction(0.5);
    case PcmState::kAmorphous:
      return set_crystalline_fraction(0.0);
  }
  return 0.0;
}

PcmState PcmCoupler::nearest_state() const {
  if (chi_ >= 0.75) {
    return PcmState::kCrystalline;
  }
  if (chi_ <= 0.25) {
    return PcmState::kAmorphous;
  }
  return PcmState::kPartiallyCrystalline;
}

double PcmCoupler::cross_fraction() const {
  // Coupled-mode theory: the coupling coefficient kappa scales as 1/L_c and
  // the PCM cell's crystalline fraction mixes the two material states, so
  //   1/L_c(chi) = (1-chi)/L_c^am + chi/L_c^cr
  //   P_cross    = sin^2( pi * L / (2 * L_c(chi)) ).
  const double inv_lc = (1.0 - chi_) / design_.coupling_length_amorphous_m +
                        chi_ / design_.coupling_length_crystalline_m;
  const double s = std::sin(kPi * design_.device_length_m * inv_lc / 2.0);
  return s * s;
}

double PcmCoupler::bar_fraction() const { return 1.0 - cross_fraction(); }

double PcmCoupler::cross_transmission() const {
  const double loss_db =
      util::lerp(design_.insertion_loss_amorphous_db,
                 design_.insertion_loss_crystalline_db, chi_);
  return cross_fraction() * util::from_db(-loss_db);
}

double PcmCoupler::bar_transmission() const {
  const double loss_db =
      util::lerp(design_.insertion_loss_amorphous_db,
                 design_.insertion_loss_crystalline_db, chi_);
  return bar_fraction() * util::from_db(-loss_db);
}

}  // namespace optiplet::photonics
