#include "photonics/link_budget.hpp"

#include <cmath>
#include <numeric>

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::photonics {

void LinkBudget::add_loss(std::string name, double loss_db) {
  OPTIPLET_REQUIRE(loss_db >= 0.0, "loss element must be non-negative");
  elements_.push_back(LossElement{std::move(name), loss_db});
}

double LinkBudget::total_loss_db() const {
  return std::accumulate(
      elements_.begin(), elements_.end(), 0.0,
      [](double acc, const LossElement& e) { return acc + e.loss_db; });
}

double LinkBudget::crosstalk_penalty_db(const MicroringResonator& filter,
                                        const WdmGrid& grid,
                                        std::size_t reader_channel,
                                        std::size_t active_channels) {
  OPTIPLET_REQUIRE(reader_channel < grid.channel_count(),
                   "reader channel out of range");
  OPTIPLET_REQUIRE(active_channels <= grid.channel_count(),
                   "more active channels than the grid has");
  if (active_channels <= 1) {
    return 0.0;
  }
  const double signal =
      filter.drop_transmission(grid.wavelength_m(reader_channel));
  double leaked = 0.0;
  // Treat the `active_channels` nearest channels as lit (worst case for the
  // victim: its closest spectral neighbours dominate the Lorentzian tails).
  std::size_t counted = 0;
  for (std::size_t offset = 1;
       counted + 1 < active_channels && offset < grid.channel_count();
       ++offset) {
    for (int sign : {-1, +1}) {
      const long idx = static_cast<long>(reader_channel) +
                       sign * static_cast<long>(offset);
      if (idx < 0 || idx >= static_cast<long>(grid.channel_count())) {
        continue;
      }
      if (counted + 1 >= active_channels) {
        break;
      }
      leaked += filter.drop_transmission(
          grid.wavelength_m(static_cast<std::size_t>(idx)));
      ++counted;
    }
  }
  const double xt_ratio = leaked / signal;  // crosstalk-to-signal ratio
  // Eye-closure penalty; saturate at 10 dB to keep pathological configs
  // finite (the caller should treat >3 dB as a design failure anyway).
  if (xt_ratio >= 0.9) {
    return 10.0;
  }
  return -util::to_db(1.0 - xt_ratio);
}

double LinkBudget::required_laser_power_dbm(double pd_sensitivity_dbm,
                                            double crosstalk_penalty_db,
                                            double system_margin_db) const {
  OPTIPLET_REQUIRE(crosstalk_penalty_db >= 0.0,
                   "crosstalk penalty must be non-negative");
  OPTIPLET_REQUIRE(system_margin_db >= 0.0, "margin must be non-negative");
  return pd_sensitivity_dbm + total_loss_db() + crosstalk_penalty_db +
         system_margin_db;
}

double LinkBudget::required_laser_power_w(double pd_sensitivity_dbm,
                                          double crosstalk_penalty_db,
                                          double system_margin_db) const {
  return util::dbm_to_watts(required_laser_power_dbm(
      pd_sensitivity_dbm, crosstalk_penalty_db, system_margin_db));
}

}  // namespace optiplet::photonics
