#pragma once
/// \file microring_group.hpp
/// Microring Resonator Group (MRG) — the interposer-side half of a gateway
/// (Fig. 3, Fig. 6).
///
/// An MRG is a 2-D arrangement of rings on the interposer:
///   * one *modulator row* (one MR modulator per used wavelength) to write
///     data onto the gateway's waveguide, and
///   * zero or more *filter rows* (one MR filter per used wavelength per
///     row) to receive data from other gateways' waveguides.
///
/// Per the paper's protocol split: a compute chiplet's MRG has 1 filter row
/// (it only receives from memory, SWMR) and 1 modulator row (SWSR back to
/// memory); the memory chiplet's MRG has one filter row per compute gateway
/// and 1 modulator row (its broadcast). The MRG aggregates ring counts,
/// tuning power, modulation energy, and area for the power model.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "photonics/microring.hpp"
#include "photonics/wavelength.hpp"

namespace optiplet::photonics {

struct MicroringGroupConfig {
  std::size_t wavelengths_per_row = 16;
  std::size_t modulator_rows = 1;
  std::size_t filter_rows = 1;
  MicroringDesign ring_design{};
  MicroringTuning ring_tuning{};
  /// Footprint per ring including drivers/pads [m^2]; ~0.0012 mm^2.
  double area_per_ring_m2 = 1.2e-9;
};

/// Aggregated MR bank on the interposer under one gateway.
class MicroringGroup {
 public:
  /// Rings are tuned to the first `wavelengths_per_row` channels of `grid`
  /// offset by `channel_offset` (gateways on one chiplet use disjoint
  /// channel sub-bands).
  MicroringGroup(const MicroringGroupConfig& config, const WdmGrid& grid,
                 std::size_t channel_offset);

  [[nodiscard]] std::size_t ring_count() const;
  [[nodiscard]] std::size_t modulator_count() const;
  [[nodiscard]] std::size_t filter_count() const;
  [[nodiscard]] std::size_t wavelengths_per_row() const {
    return config_.wavelengths_per_row;
  }

  /// Static tuning power to hold every ring on its channel [W]. Scales with
  /// the ring count; the dominant MRG overhead in ReSiPI's power model.
  [[nodiscard]] double static_tuning_power_w() const;

  /// Modulation energy for `bits` sent through the modulator row(s) [J].
  [[nodiscard]] double modulation_energy_j(std::uint64_t bits) const;

  /// Total interposer area of the MRG [m^2].
  [[nodiscard]] double area_m2() const;

  /// Worst-case through-loss a foreign wavelength suffers passing this MRG's
  /// rings on a shared waveguide [dB] (the off-resonance through loss of all
  /// rings in one row).
  [[nodiscard]] double through_loss_db() const;

  /// Drop loss experienced by the wavelength a filter ring extracts [dB].
  [[nodiscard]] double drop_loss_db() const;

  /// Representative ring (all rings share a design; exposed for tests and
  /// crosstalk computation).
  [[nodiscard]] const MicroringResonator& reference_ring() const {
    return rings_.front();
  }

  [[nodiscard]] const MicroringGroupConfig& config() const { return config_; }

 private:
  MicroringGroupConfig config_;
  std::vector<MicroringResonator> rings_;  // one per row-wavelength
};

}  // namespace optiplet::photonics
