#include "photonics/thermal.hpp"

#include <cmath>

#include "util/require.hpp"

namespace optiplet::photonics {

double thermal_drift_m(const ThermalModel& model, double temperature_k) {
  OPTIPLET_REQUIRE(temperature_k > 0.0, "absolute temperature must be > 0");
  return model.drift_m_per_k *
         (temperature_k - model.calibration_temperature_k);
}

double hold_power_w(const ThermalModel& model, const MicroringTuning& tuning,
                    double temperature_k) {
  const double drift = std::fabs(thermal_drift_m(model, temperature_k));
  const double thermal_shift = std::max(0.0, drift - tuning.eo_range_m);
  return thermal_shift / tuning.to_efficiency_m_per_w +
         tuning.driver_static_w;
}

double bank_hold_power_w(const ThermalModel& model,
                         const MicroringTuning& tuning,
                         double temperature_k, std::size_t ring_count) {
  OPTIPLET_REQUIRE(ring_count >= 1, "bank needs at least one ring");
  const double per_ring = hold_power_w(model, tuning, temperature_k);
  // Thermal crosstalk: a held ring receives heat from both neighbours
  // (coupling c), next-nearest (c*d), ... and must counter-tune the
  // induced drift, which leaks further heat in turn. To first order the
  // overhead multiplier is 1 / (1 - 2*c_total) with
  // c_total = c * (1 + d + d^2 + ...) = c / (1 - d), capped for safety.
  const double c_total =
      model.neighbour_coupling / (1.0 - model.coupling_decay);
  const double feedback = std::min(0.45, c_total);
  const double multiplier = 1.0 / (1.0 - 2.0 * feedback);
  // Edge rings have one neighbour; for banks of realistic size the bulk
  // term dominates and the closed form stays within a few percent.
  return per_ring * static_cast<double>(ring_count) * multiplier;
}

double channel_escape_temperature_k(const ThermalModel& model) {
  const double spacing = 0.8e-9;
  return model.calibration_temperature_k + spacing / model.drift_m_per_k;
}

}  // namespace optiplet::photonics
