#pragma once
/// \file thermal.hpp
/// Thermal effects on microring resonators.
///
/// Silicon's thermo-optic coefficient (dn/dT ~ 1.86e-4 /K) drags every
/// ring's resonance with temperature (~70-100 pm/K at 1550 nm). Two system
/// consequences, both central to CrossLight's cross-layer design [21]:
///
///  1. *Ambient drift*: a chiplet running hotter than the calibration
///     point shifts its whole comb; holding the WDM grid costs heater (or
///     carrier) power per ring, which this model quantifies.
///  2. *Thermal crosstalk*: one ring's heater warms its neighbours on the
///     same bus (coupling falls off with pitch), so dense MR banks pay a
///     correction overhead that grows with bank size.

#include <cstddef>

#include "photonics/microring.hpp"
#include "util/units.hpp"

namespace optiplet::photonics {

struct ThermalModel {
  /// Resonance shift per kelvin [m/K]: lambda * (dn/dT) / n_g.
  /// 1550 nm * 1.86e-4 / 4.2 ~ 69 pm/K.
  double drift_m_per_k = 69.0 * units::pm;
  /// Fraction of a heater's temperature rise felt by the adjacent ring
  /// (exponential decay with pitch; ~10% at 10 um pitch on SOI).
  double neighbour_coupling = 0.10;
  /// Decay factor per additional ring of separation.
  double coupling_decay = 0.35;
  /// Calibration (trimming) temperature [K].
  double calibration_temperature_k = 300.0;
};

/// Resonance drift of a free-running ring at `temperature_k` [m].
[[nodiscard]] double thermal_drift_m(const ThermalModel& model,
                                     double temperature_k);

/// Static tuning power for one ring to hold its channel at
/// `temperature_k`, given the tuning mechanism [W]. The controller
/// counter-shifts with the EO range first (free of static power), then the
/// heater covers the rest — heaters can only *heat*, so drift that needs
/// cooling must be pre-biased: the model charges the magnitude either way.
[[nodiscard]] double hold_power_w(const ThermalModel& model,
                                  const MicroringTuning& tuning,
                                  double temperature_k);

/// Aggregate correction overhead of an N-ring bank including thermal
/// crosstalk between neighbours [W]: each actively held ring leaks heat
/// into its neighbours, which must counter-tune in turn. The closed form
/// sums the geometric neighbour series (both sides).
[[nodiscard]] double bank_hold_power_w(const ThermalModel& model,
                                       const MicroringTuning& tuning,
                                       double temperature_k,
                                       std::size_t ring_count);

/// Temperature at which a ring drifts a full channel spacing (0.8 nm)
/// from its calibration point [K] — the hard ceiling for uncorrected
/// operation.
[[nodiscard]] double channel_escape_temperature_k(const ThermalModel& model);

}  // namespace optiplet::photonics
