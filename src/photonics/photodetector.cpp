#include "photonics/photodetector.hpp"

#include <cmath>

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::photonics {

Photodetector::Photodetector(const PhotodetectorDesign& design)
    : design_(design) {
  OPTIPLET_REQUIRE(design.responsivity_a_per_w > 0.0,
                   "responsivity must be positive");
  OPTIPLET_REQUIRE(design.reference_rate_bps > 0.0,
                   "reference rate must be positive");
  OPTIPLET_REQUIRE(design.bandwidth_hz > 0.0, "bandwidth must be positive");
}

double Photodetector::sensitivity_dbm(double data_rate_bps) const {
  OPTIPLET_REQUIRE(data_rate_bps > 0.0, "data rate must be positive");
  const double octaves =
      std::log2(data_rate_bps / design_.reference_rate_bps);
  return design_.sensitivity_dbm_at_ref +
         design_.sensitivity_slope_db_per_octave * octaves;
}

double Photodetector::sensitivity_w(double data_rate_bps) const {
  return util::dbm_to_watts(sensitivity_dbm(data_rate_bps));
}

double Photodetector::photocurrent_a(double optical_power_w) const {
  OPTIPLET_REQUIRE(optical_power_w >= 0.0, "optical power must be >= 0");
  return design_.responsivity_a_per_w * optical_power_w;
}

double Photodetector::accumulate_a(std::span<const double> powers_w) const {
  double total = 0.0;
  for (double p : powers_w) {
    total += photocurrent_a(p);
  }
  return total;
}

double Photodetector::receive_energy_j(std::uint64_t bits) const {
  return static_cast<double>(bits) * design_.receiver_energy_per_bit_j;
}

bool Photodetector::supports_rate(double data_rate_bps) const {
  return design_.bandwidth_hz >= 0.7 * data_rate_bps;
}

}  // namespace optiplet::photonics
