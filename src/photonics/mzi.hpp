#pragma once
/// \file mzi.hpp
/// Mach–Zehnder interferometer (MZI) 2x2 switch/modulator model (paper §II).
///
/// The device is two 3-dB directional couplers joined by two waveguide arms
/// with phase shifters. With differential arm phase `dphi`, the power
/// transfer of the ideal 2x2 MZI is
///     bar   = sin^2(dphi / 2)
///     cross = cos^2(dphi / 2)
/// Coherent accelerators (§III) imprint weights through exactly this
/// mechanism; here the MZI also serves as a comparison point against MR-based
/// switching (footprint/power trade-off noted in the paper).

#include "util/units.hpp"

namespace optiplet::photonics {

/// Phase-shifter actuation mechanism of an MZI arm.
enum class PhaseShifterKind {
  kThermoOptic,   ///< slow (us), ~mW static power, no optical excess loss
  kElectroOptic,  ///< fast (ns), fJ/switch, small carrier-induced loss
};

struct MziDesign {
  PhaseShifterKind shifter = PhaseShifterKind::kThermoOptic;
  /// Insertion loss of the whole device at either output [dB].
  double insertion_loss_db = 0.3;
  /// Extra loss when the EO shifter injects carriers [dB].
  double eo_excess_loss_db = 0.2;
  /// TO power for a pi phase shift [W] (P_pi).
  double to_p_pi_w = 20.0 * units::mW;
  /// EO energy per switching event [J].
  double eo_switch_energy_j = 100.0 * units::fJ;
  /// Finite extinction ratio of real couplers [dB]; bounds the off-state.
  double extinction_ratio_db = 25.0;
};

/// 2x2 MZI with a differential phase setting.
class MachZehnderInterferometer {
 public:
  explicit MachZehnderInterferometer(const MziDesign& design);

  /// Set the differential arm phase [rad]; any value accepted (wraps 2*pi).
  void set_phase(double dphi_rad);

  [[nodiscard]] double phase() const { return dphi_rad_; }

  /// Power fraction routed to the bar port (same side), including insertion
  /// loss and bounded by the extinction ratio.
  [[nodiscard]] double bar_transmission() const;

  /// Power fraction routed to the cross port (opposite side).
  [[nodiscard]] double cross_transmission() const;

  /// Static electrical power held by the phase shifter at the current
  /// setting [W]. TO shifters consume P_pi * |dphi|/pi; EO shifters ~0.
  [[nodiscard]] double static_power_w() const;

  /// Energy to move from the current phase to `new_dphi_rad` [J]
  /// (EO switching energy; TO devices modelled as settling without a
  /// distinct per-switch energy, their cost is the static power).
  [[nodiscard]] double switching_energy_j(double new_dphi_rad) const;

  [[nodiscard]] const MziDesign& design() const { return design_; }

 private:
  MziDesign design_;
  double dphi_rad_ = 0.0;
};

}  // namespace optiplet::photonics
