#pragma once
/// \file link_budget.hpp
/// Optical link budget solver.
///
/// Composes the loss elements along one writer→reader waveguide path
/// (Fig. 5) and answers the question that dominates photonic-network power:
/// *how much optical power must the laser deliver per wavelength so the
/// worst-case reader still detects correctly?*
///
///   P_laser[dBm] = PD sensitivity[dBm] + sum(losses[dB])
///                  + crosstalk penalty[dB] + system margin[dB]
///
/// The crosstalk penalty follows the standard Lorentzian-filter model: a
/// reader's MR filter passes a fraction of each neighbouring WDM channel
/// given by its lineshape at the channel offset; the aggregated leaked power
/// is converted to an eye-closure power penalty (Chittamuru et al. [41]).

#include <string>
#include <vector>

#include "photonics/microring.hpp"
#include "photonics/wavelength.hpp"

namespace optiplet::photonics {

/// One named loss contribution [dB]. Named so benches can print budgets.
struct LossElement {
  std::string name;
  double loss_db = 0.0;
};

/// Accumulates loss elements and solves for required laser power.
class LinkBudget {
 public:
  LinkBudget() = default;

  /// Add a named loss [dB >= 0].
  void add_loss(std::string name, double loss_db);

  /// Sum of all losses [dB].
  [[nodiscard]] double total_loss_db() const;

  /// All elements, in insertion order.
  [[nodiscard]] const std::vector<LossElement>& elements() const {
    return elements_;
  }

  /// Crosstalk power penalty [dB] for a reader using `filter` on a `grid`
  /// with `active_channels` simultaneously lit wavelengths. Computes the
  /// aggregate leakage of all other channels through the filter's Lorentzian
  /// response and converts the signal-to-crosstalk ratio into an eye-closure
  /// penalty: penalty = -10*log10(1 - XT_total).
  [[nodiscard]] static double crosstalk_penalty_db(
      const MicroringResonator& filter, const WdmGrid& grid,
      std::size_t reader_channel, std::size_t active_channels);

  /// Required per-wavelength power at the laser output (on-chip side) [dBm].
  [[nodiscard]] double required_laser_power_dbm(
      double pd_sensitivity_dbm, double crosstalk_penalty_db,
      double system_margin_db) const;

  /// Same, in watts.
  [[nodiscard]] double required_laser_power_w(double pd_sensitivity_dbm,
                                              double crosstalk_penalty_db,
                                              double system_margin_db) const;

 private:
  std::vector<LossElement> elements_;
};

}  // namespace optiplet::photonics
