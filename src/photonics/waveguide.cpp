#include "photonics/waveguide.hpp"

#include "util/require.hpp"

namespace optiplet::photonics {

Waveguide::Waveguide(double length_m, std::size_t bend_count,
                     std::size_t crossing_count, const WaveguideTech& tech)
    : length_m_(length_m),
      bends_(bend_count),
      crossings_(crossing_count),
      tech_(tech) {
  OPTIPLET_REQUIRE(length_m >= 0.0, "waveguide length must be non-negative");
  OPTIPLET_REQUIRE(tech.propagation_loss_db_per_m >= 0.0,
                   "propagation loss must be non-negative");
  OPTIPLET_REQUIRE(tech.group_index >= 1.0, "group index below vacuum");
}

double Waveguide::insertion_loss_db() const {
  return length_m_ * tech_.propagation_loss_db_per_m +
         static_cast<double>(bends_) * tech_.bend_loss_db +
         static_cast<double>(crossings_) * tech_.crossing_loss_db;
}

double Waveguide::time_of_flight_s() const {
  return length_m_ * tech_.group_index / units::c0;
}

}  // namespace optiplet::photonics
