#include "photonics/microring.hpp"

#include <cmath>
#include <numbers>

#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::photonics {

namespace {

constexpr double kPi = std::numbers::pi;

/// Power loss in dB/m -> amplitude transmission over length L:
/// a = 10^(-loss_db_per_m * L / 20).
double amplitude_from_loss(double loss_db_per_m, double length_m) {
  return std::pow(10.0, -loss_db_per_m * length_m / 20.0);
}

}  // namespace

MicroringResonator::MicroringResonator(const MicroringDesign& design,
                                       const MicroringTuning& tuning,
                                       double target_resonance_m)
    : design_(design),
      tuning_(tuning),
      fabricated_resonance_m_(target_resonance_m),
      resonance_m_(target_resonance_m) {
  OPTIPLET_REQUIRE(design.radius_m > 0.0, "ring radius must be positive");
  OPTIPLET_REQUIRE(design.self_coupling_in > 0.0 &&
                       design.self_coupling_in < 1.0,
                   "self coupling t1 must be in (0,1)");
  OPTIPLET_REQUIRE(design.self_coupling_drop > 0.0 &&
                       design.self_coupling_drop < 1.0,
                   "self coupling t2 must be in (0,1)");
  OPTIPLET_REQUIRE(design.group_index >= design.effective_index,
                   "group index must be >= effective index in SOI");
  OPTIPLET_REQUIRE(target_resonance_m > 0.0, "resonance must be positive");
}

double MicroringResonator::circumference_m() const {
  return 2.0 * kPi * design_.radius_m;
}

double MicroringResonator::round_trip_amplitude() const {
  return amplitude_from_loss(design_.ring_loss_db_per_m, circumference_m());
}

double MicroringResonator::round_trip_phase(double wavelength_m) const {
  // Pick the longitudinal mode order m that puts a resonance exactly at the
  // tuned resonance wavelength, then evaluate the phase with first-order
  // dispersion so the free spectral range matches FSR = lambda^2/(n_g L).
  const double L = circumference_m();
  const double m = std::round(design_.effective_index * L / resonance_m_);
  const double n_at_res = m * resonance_m_ / L;
  const double dn_dlambda =
      -(design_.group_index - n_at_res) / resonance_m_;
  const double n_eff =
      n_at_res + dn_dlambda * (wavelength_m - resonance_m_);
  return 2.0 * kPi * n_eff * L / wavelength_m;
}

double MicroringResonator::through_transmission(double wavelength_m) const {
  OPTIPLET_REQUIRE(wavelength_m > 0.0, "wavelength must be positive");
  const double t1 = design_.self_coupling_in;
  const double t2 = design_.self_coupling_drop;
  const double a = round_trip_amplitude();
  const double phi = round_trip_phase(wavelength_m);
  const double cos_phi = std::cos(phi);
  const double denom = 1.0 - 2.0 * t1 * t2 * a * cos_phi +
                       (t1 * t2 * a) * (t1 * t2 * a);
  const double numer =
      t2 * t2 * a * a - 2.0 * t1 * t2 * a * cos_phi + t1 * t1;
  return numer / denom;
}

double MicroringResonator::drop_transmission(double wavelength_m) const {
  OPTIPLET_REQUIRE(wavelength_m > 0.0, "wavelength must be positive");
  const double t1 = design_.self_coupling_in;
  const double t2 = design_.self_coupling_drop;
  const double a = round_trip_amplitude();
  const double phi = round_trip_phase(wavelength_m);
  const double denom = 1.0 - 2.0 * t1 * t2 * a * std::cos(phi) +
                       (t1 * t2 * a) * (t1 * t2 * a);
  // sqrt(a) — the dropped signal traverses half the ring on average; the
  // common simplification T_d = (1-t1^2)(1-t2^2) a / denom uses the full
  // round trip, which slightly overestimates loss. We keep the standard
  // form from Bogaerts et al. [34].
  const double numer = (1.0 - t1 * t1) * (1.0 - t2 * t2) * a;
  return numer / denom;
}

double MicroringResonator::fsr_m() const {
  const double L = circumference_m();
  return resonance_m_ * resonance_m_ / (design_.group_index * L);
}

double MicroringResonator::fwhm_m() const {
  const double t1 = design_.self_coupling_in;
  const double t2 = design_.self_coupling_drop;
  const double a = round_trip_amplitude();
  const double L = circumference_m();
  return (1.0 - t1 * t2 * a) * resonance_m_ * resonance_m_ /
         (kPi * design_.group_index * L * std::sqrt(t1 * t2 * a));
}

double MicroringResonator::quality_factor() const {
  return resonance_m_ / fwhm_m();
}

void MicroringResonator::retune(double new_resonance_m) {
  OPTIPLET_REQUIRE(new_resonance_m > 0.0, "resonance must be positive");
  resonance_m_ = new_resonance_m;
}

double MicroringResonator::thermal_tuning_power_w() const {
  // Hybrid tuning policy (CrossLight [21]): shifts within the fast EO range
  // cost only per-bit energy; anything larger is held by the heater.
  const double shift = std::fabs(resonance_m_ - fabricated_resonance_m_);
  const double thermal_shift = std::max(0.0, shift - tuning_.eo_range_m);
  return thermal_shift / tuning_.to_efficiency_m_per_w +
         tuning_.driver_static_w;
}

double MicroringResonator::modulation_energy_j(std::uint64_t bits) const {
  return static_cast<double>(bits) * tuning_.eo_energy_per_bit_j;
}

MicroringResonator make_microdisk(double target_resonance_m,
                                  const MicroringTuning& tuning) {
  MicroringDesign d;
  d.radius_m = 2.5 * units::um;       // microdisks are ~3x more compact [23]
  d.ring_loss_db_per_m = 1200.0;      // ...at the cost of higher loss (§II)
  d.self_coupling_in = 0.96;
  d.self_coupling_drop = 0.96;
  return MicroringResonator(d, tuning, target_resonance_m);
}

}  // namespace optiplet::photonics
