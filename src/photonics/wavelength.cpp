#include "photonics/wavelength.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace optiplet::photonics {

WdmGrid::WdmGrid(std::size_t channel_count, double center_wavelength_m,
                 double channel_spacing_m)
    : spacing_m_(channel_spacing_m) {
  OPTIPLET_REQUIRE(channel_count >= 1, "grid needs at least one channel");
  OPTIPLET_REQUIRE(center_wavelength_m > 0.0, "center wavelength must be > 0");
  OPTIPLET_REQUIRE(channel_spacing_m > 0.0, "channel spacing must be > 0");

  wavelengths_.resize(channel_count);
  // Center the grid: channel (N-1)/2 sits at the center wavelength.
  const double first = center_wavelength_m -
                       0.5 * static_cast<double>(channel_count - 1) *
                           channel_spacing_m;
  OPTIPLET_REQUIRE(first > 0.0, "grid extends below zero wavelength");
  for (std::size_t i = 0; i < channel_count; ++i) {
    wavelengths_[i] = first + static_cast<double>(i) * channel_spacing_m;
  }
}

double WdmGrid::wavelength_m(std::size_t i) const {
  OPTIPLET_REQUIRE(i < wavelengths_.size(), "channel index out of range");
  return wavelengths_[i];
}

double WdmGrid::band_span_m() const {
  return wavelengths_.back() - wavelengths_.front();
}

std::size_t WdmGrid::nearest_channel(double wavelength_m) const {
  const auto it = std::lower_bound(wavelengths_.begin(), wavelengths_.end(),
                                   wavelength_m);
  if (it == wavelengths_.begin()) {
    return 0;
  }
  if (it == wavelengths_.end()) {
    return wavelengths_.size() - 1;
  }
  const auto hi = static_cast<std::size_t>(it - wavelengths_.begin());
  const auto lo = hi - 1;
  return (wavelength_m - wavelengths_[lo] <= wavelengths_[hi] - wavelength_m)
             ? lo
             : hi;
}

WdmGrid make_cband_grid(std::size_t channel_count) {
  // 0.8 nm ≈ 100 GHz spacing at 1550 nm: the standard ITU dense-WDM grid.
  return WdmGrid(channel_count, 1550.0 * units::nm, 0.8 * units::nm);
}

}  // namespace optiplet::photonics
