#pragma once
/// \file waveguide.hpp
/// Silicon-on-insulator waveguide segment model (paper §II).
///
/// A waveguide path on the interposer is described by its physical length and
/// discrete loss events (bends, crossings, couplers). The model answers two
/// questions: total insertion loss [dB] and time of flight [s]. Loss numbers
/// default to the interposer-scale values used in the ReSiPI / PROWAVES
/// analyses (see power/tech_params.hpp for sources).

#include <cstddef>

#include "util/units.hpp"

namespace optiplet::photonics {

/// Per-technology waveguide characteristics.
struct WaveguideTech {
  /// Propagation loss [dB/m]. Defaults to 30 dB/m (0.3 dB/cm): interposer-
  /// grade low-loss waveguides as assumed by the PROWAVES/ReSiPI analyses.
  /// Chiplet-internal strip waveguides are lossier (~1.5 dB/cm); see
  /// power::ComputeTech::chip_waveguide_loss_db_per_m.
  double propagation_loss_db_per_m = 30.0;
  /// Loss per 90-degree bend [dB].
  double bend_loss_db = 0.005;
  /// Loss per waveguide crossing [dB].
  double crossing_loss_db = 0.05;
  /// Group index n_g of the guided mode (SOI strip, TE, ~1550 nm).
  double group_index = 4.2;
  /// Effective index n_eff (used for resonance phase computations).
  double effective_index = 2.4;
};

/// One routed waveguide path: straight length plus discrete loss events.
class Waveguide {
 public:
  Waveguide(double length_m, std::size_t bend_count, std::size_t crossing_count,
            const WaveguideTech& tech);

  /// Total insertion loss of the path [dB] (always >= 0).
  [[nodiscard]] double insertion_loss_db() const;

  /// Photon time of flight through the path [s] = L * n_g / c0.
  [[nodiscard]] double time_of_flight_s() const;

  [[nodiscard]] double length_m() const { return length_m_; }
  [[nodiscard]] std::size_t bend_count() const { return bends_; }
  [[nodiscard]] std::size_t crossing_count() const { return crossings_; }
  [[nodiscard]] const WaveguideTech& tech() const { return tech_; }

 private:
  double length_m_;
  std::size_t bends_;
  std::size_t crossings_;
  WaveguideTech tech_;
};

}  // namespace optiplet::photonics
