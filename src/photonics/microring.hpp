#pragma once
/// \file microring.hpp
/// Microring resonator (MR) model — Fig. 1 of the paper.
///
/// Implements the standard add-drop ring resonator transfer functions
/// (Bogaerts et al., "Silicon microring resonators", Laser & Photonics
/// Reviews 2012 — paper reference [34]):
///
///   through-port power:  T_t(phi) = (t2^2 a^2 - 2 t1 t2 a cos(phi) + t1^2)
///                                    / (1 - 2 t1 t2 a cos(phi) + (t1 t2 a)^2)
///   drop-port power:     T_d(phi) = ((1-t1^2)(1-t2^2) a)
///                                    / (1 - 2 t1 t2 a cos(phi) + (t1 t2 a)^2)
///
/// with t1, t2 the bus self-coupling coefficients, a the round-trip amplitude
/// transmission, and phi = 2*pi*n_eff*L/lambda the round-trip phase. From the
/// same geometry the model derives FSR, FWHM, and Q, and exposes resonance
/// tuning via thermo-optic (static heater power) and electro-optic (fast,
/// energy-per-bit) mechanisms as used by CrossLight [21].

#include <cstddef>

#include "util/units.hpp"

namespace optiplet::photonics {

/// Geometry + coupling design of one ring.
struct MicroringDesign {
  /// Ring radius [m]. 5–10 um is typical for C-band add-drop filters; the
  /// default 6.5 um gives FSR ~ 14 nm, sized so a 16-channel 0.8 nm-spaced
  /// gateway sub-band (12.8 nm) fits inside one FSR with guard band.
  double radius_m = 6.5 * units::um;
  /// Input-bus self-coupling coefficient t1 (0,1).
  double self_coupling_in = 0.98;
  /// Drop-bus self-coupling coefficient t2 (0,1).
  double self_coupling_drop = 0.98;
  /// Intrinsic waveguide power loss inside the ring [dB/m].
  double ring_loss_db_per_m = 400.0;
  /// Effective index of the ring waveguide mode.
  double effective_index = 2.4;
  /// Group index of the ring waveguide mode.
  double group_index = 4.2;
};

/// Resonance-tuning characteristics (CrossLight-style hybrid TO+EO tuning).
struct MicroringTuning {
  /// Thermo-optic efficiency: resonance shift per heater power [m/W].
  /// 0.25 nm/mW is representative of doped-silicon heaters.
  double to_efficiency_m_per_w = 0.25 * units::nm / units::mW;
  /// Electro-optic (carrier) tuning range [m]; beyond it TO must take over.
  double eo_range_m = 0.2 * units::nm;
  /// EO modulation/tuning energy [J/bit].
  double eo_energy_per_bit_j = 50.0 * units::fJ;
  /// Static driver + thermal-stabilization servo power per actively tuned
  /// ring [W] (CrossLight charges ~0.5 mW/ring for trimming electronics).
  double driver_static_w = 0.5 * units::mW;
};

/// Add-drop microring resonator.
///
/// The ring is configured to target one resonance wavelength; `retune()`
/// shifts the resonance (modelling heater/EO actuation), and the transfer
/// functions answer per-wavelength power splits used by filters, modulators
/// and the crosstalk analysis.
class MicroringResonator {
 public:
  MicroringResonator(const MicroringDesign& design,
                     const MicroringTuning& tuning,
                     double target_resonance_m);

  /// Power transmission to the through port at `wavelength_m` (0..1).
  [[nodiscard]] double through_transmission(double wavelength_m) const;

  /// Power transmission to the drop port at `wavelength_m` (0..1).
  [[nodiscard]] double drop_transmission(double wavelength_m) const;

  /// Free spectral range at the operating wavelength [m]:
  /// FSR = lambda^2 / (n_g * L_round_trip).
  [[nodiscard]] double fsr_m() const;

  /// Full width at half maximum of the drop resonance [m].
  [[nodiscard]] double fwhm_m() const;

  /// Loaded quality factor Q = lambda / FWHM.
  [[nodiscard]] double quality_factor() const;

  /// Round-trip circumference [m].
  [[nodiscard]] double circumference_m() const;

  /// Resonance wavelength the ring is currently tuned to [m].
  [[nodiscard]] double resonance_m() const { return resonance_m_; }

  /// Move the resonance to `new_resonance_m`. Shifts within the EO range are
  /// free of static power; larger shifts require heater power reported by
  /// `thermal_tuning_power_w()`.
  void retune(double new_resonance_m);

  /// Static heater power needed to hold the current resonance relative to
  /// the as-fabricated resonance [W].
  [[nodiscard]] double thermal_tuning_power_w() const;

  /// EO modulation energy for `bits` modulated bits [J].
  [[nodiscard]] double modulation_energy_j(std::uint64_t bits) const;

  [[nodiscard]] const MicroringDesign& design() const { return design_; }
  [[nodiscard]] const MicroringTuning& tuning() const { return tuning_; }

 private:
  /// Round-trip phase at a given wavelength, including the tuning-induced
  /// effective-index offset.
  [[nodiscard]] double round_trip_phase(double wavelength_m) const;
  /// Round-trip amplitude transmission a.
  [[nodiscard]] double round_trip_amplitude() const;

  MicroringDesign design_;
  MicroringTuning tuning_;
  double fabricated_resonance_m_;
  double resonance_m_;
};

/// Microdisk resonator (paper §II): more compact than an MR but with higher
/// operating loss. Modelled as a microring with smaller radius and higher
/// intrinsic loss; HolyLight [23] and ROBIN [25] build on these.
[[nodiscard]] MicroringResonator make_microdisk(double target_resonance_m,
                                                const MicroringTuning& tuning);

}  // namespace optiplet::photonics
