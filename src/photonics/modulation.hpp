#pragma once
/// \file modulation.hpp
/// Modulation formats for the photonic links (paper §II: MRs support OOK
/// and, with multiple same-wavelength MRs, PAM-4 multilevel signaling —
/// Thakkar et al. [44]).
///
/// PAM-4 doubles the bits per symbol on every wavelength but squeezes the
/// eye into three smaller openings: the receiver needs more optical power
/// (~4.8 dB for ideal equal spacing, ~6 dB with implementation penalty)
/// and the transmitter needs a second cascaded modulator ring per channel.

#include "util/units.hpp"

namespace optiplet::photonics {

enum class ModulationFormat {
  kOok,   ///< on-off keying: 1 bit/symbol
  kPam4,  ///< 4-level pulse-amplitude modulation: 2 bits/symbol
};

[[nodiscard]] constexpr const char* to_string(ModulationFormat f) {
  switch (f) {
    case ModulationFormat::kOok: return "OOK";
    case ModulationFormat::kPam4: return "PAM-4";
  }
  return "?";
}

/// Bits carried per symbol.
[[nodiscard]] constexpr unsigned bits_per_symbol(ModulationFormat f) {
  return f == ModulationFormat::kPam4 ? 2 : 1;
}

/// Receiver power penalty over OOK at the same symbol rate [dB].
/// PAM-4's smallest eye is 1/3 of the OOK eye (4.77 dB) plus ~1.2 dB of
/// level-misalignment/linearity implementation penalty [44].
[[nodiscard]] constexpr double receiver_penalty_db(ModulationFormat f) {
  return f == ModulationFormat::kPam4 ? 4.77 + 1.2 : 0.0;
}

/// Modulator rings required per wavelength channel (PAM-4 cascades two
/// same-wavelength MRs for consecutive amplitude modulation, paper §II).
[[nodiscard]] constexpr unsigned modulator_rings_per_channel(
    ModulationFormat f) {
  return f == ModulationFormat::kPam4 ? 2 : 1;
}

/// Effective line rate per wavelength [bit/s] for a given symbol rate.
[[nodiscard]] constexpr double line_rate_bps(ModulationFormat f,
                                             double symbol_rate_baud) {
  return symbol_rate_baud * bits_per_symbol(f);
}

}  // namespace optiplet::photonics
