#pragma once
/// \file photodetector.hpp
/// Photodetector (PD) model (paper §II).
///
/// A PD converts the optical signal back to the electrical domain. Two
/// properties matter at system level: (1) the *sensitivity* — the minimum
/// optical power needed to achieve the target bit-error rate at a given data
/// rate, which sets the laser power through the link budget; and (2) the
/// receiver energy per bit (PD + TIA + comparator). Sensitivity degrades
/// ~linearly in dB with log2 of data rate (shot/thermal noise grows with
/// bandwidth), which the model captures with a slope term.
///
/// High-bandwidth PDs also perform the *accumulation* step of photonic MACs
/// by summing photocurrent across wavelengths (paper §II, [32]): the model
/// exposes a multi-wavelength summation helper used by accel::PhotonicMacUnit.

#include <cstdint>
#include <span>

#include "util/units.hpp"

namespace optiplet::photonics {

struct PhotodetectorDesign {
  /// Responsivity [A/W] at 1550 nm (Ge-on-Si).
  double responsivity_a_per_w = 1.1;
  /// Sensitivity at the reference data rate [dBm] for BER 1e-12 (OOK).
  double sensitivity_dbm_at_ref = -26.0;
  /// Reference data rate for the sensitivity figure [bit/s].
  double reference_rate_bps = 10.0 * units::Gbps;
  /// Sensitivity penalty per doubling of data rate [dB].
  double sensitivity_slope_db_per_octave = 1.7;
  /// Receiver chain (PD+TIA+SA) energy [J/bit].
  double receiver_energy_per_bit_j = 180.0 * units::fJ;
  /// Dark current [A]; subtracted noise floor for the analog MAC sum.
  double dark_current_a = 40.0 * units::nW * 1.1;  // ~I_d of a Ge PD
  /// 3-dB opto-electrical bandwidth [Hz].
  double bandwidth_hz = 30.0 * units::GHz;
};

/// Photodetector with rate-dependent sensitivity.
class Photodetector {
 public:
  explicit Photodetector(const PhotodetectorDesign& design);

  /// Minimum received optical power for error-free detection at
  /// `data_rate_bps` [dBm].
  [[nodiscard]] double sensitivity_dbm(double data_rate_bps) const;

  /// Same, in watts.
  [[nodiscard]] double sensitivity_w(double data_rate_bps) const;

  /// Photocurrent produced by `optical_power_w` [A].
  [[nodiscard]] double photocurrent_a(double optical_power_w) const;

  /// Analog accumulation across wavelengths: total photocurrent from the
  /// per-wavelength optical powers (the PD is wavelength-insensitive inside
  /// its band, so currents sum linearly) [A].
  [[nodiscard]] double accumulate_a(std::span<const double> powers_w) const;

  /// Receiver energy for `bits` received bits [J].
  [[nodiscard]] double receive_energy_j(std::uint64_t bits) const;

  /// True when the PD bandwidth supports the requested data rate (OOK needs
  /// roughly 0.7 * bit rate of analog bandwidth).
  [[nodiscard]] bool supports_rate(double data_rate_bps) const;

  [[nodiscard]] const PhotodetectorDesign& design() const { return design_; }

 private:
  PhotodetectorDesign design_;
};

}  // namespace optiplet::photonics
