#pragma once
/// \file laser.hpp
/// Multi-wavelength laser source model (paper §II).
///
/// The interposer uses an off-chip comb/bank laser whose individual
/// wavelength channels can be enabled or disabled — PROWAVES [11] saves power
/// by deactivating unused wavelengths, and ReSiPI's controller scales laser
/// power with the active-gateway count. Off-chip lasers pay a fiber-to-chip
/// coupling loss but have better wall-plug efficiency than on-chip sources
/// (§II discussion).

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace optiplet::photonics {

enum class LaserKind {
  kOffChipCombBank,  ///< off-chip bank: good efficiency, pays coupling loss
  kOnChipVcselArray, ///< on-chip VCSELs: no coupling loss, poor efficiency
};

struct LaserDesign {
  LaserKind kind = LaserKind::kOffChipCombBank;
  /// Electrical-to-optical wall-plug efficiency (0,1]. ~8-10% for
  /// integrated multi-wavelength comb banks; ~25% for discrete VCSELs.
  double wall_plug_efficiency = 0.08;
  /// Thermal stabilization (TEC) overhead multiplier on laser electrical
  /// power; DWDM combs need active temperature control (PROWAVES charges
  /// laser + cooling).
  double tec_overhead_factor = 2.0;
  /// Fiber-to-chip coupling loss paid by off-chip sources [dB].
  double coupling_loss_db = 1.5;
  /// Maximum optical output per wavelength channel [W].
  double max_power_per_channel_w = 50.0 * units::mW;
  /// Fixed controller/bias overhead while any channel is lit [W].
  double bias_overhead_w = 50.0 * units::mW;
};

/// A bank of independently switchable wavelength channels.
class LaserSource {
 public:
  LaserSource(const LaserDesign& design, std::size_t channel_count);

  /// Set the *on-chip delivered* optical power for channel `i` [W];
  /// 0 disables the channel. Throws if the required source power exceeds
  /// max_power_per_channel_w.
  void set_channel_power_w(std::size_t i, double delivered_power_w);

  /// Delivered on-chip optical power of channel `i` [W].
  [[nodiscard]] double channel_power_w(std::size_t i) const;

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] std::size_t active_channel_count() const;

  /// Total optical power delivered on-chip across channels [W].
  [[nodiscard]] double total_optical_power_w() const;

  /// Total electrical (wall-plug) power drawn [W], including coupling loss
  /// and bias overhead (overhead only when >= 1 channel is active).
  [[nodiscard]] double electrical_power_w() const;

  [[nodiscard]] const LaserDesign& design() const { return design_; }

 private:
  LaserDesign design_;
  std::vector<double> channels_;  // delivered power per channel [W]
};

}  // namespace optiplet::photonics
