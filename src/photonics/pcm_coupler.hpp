#pragma once
/// \file pcm_coupler.hpp
/// Phase-change-material-based directional coupler (PCMC) — Fig. 2.
///
/// ReSiPI [37] activates/deactivates writer gateways by steering laser power
/// with a PCM coupler (design of Teo et al. [38]). The PCM cell sits on one
/// arm of a directional coupler; its crystalline fraction changes the
/// coupling strength:
///
///   crystalline (chi = 1)          -> light exits the Bar port,
///   amorphous  (chi = 0)           -> light exits the Cross port,
///   partially crystalline (0<chi<1)-> power split between the two.
///
/// The split is governed by the ratio of the coupling lengths of the two
/// material states, L_c^am / L_c^cr (paper §IV). PCM states are
/// *non-volatile*: holding a state costs no power; changing it costs a write
/// pulse energy.

#include "util/units.hpp"

namespace optiplet::photonics {

/// Nominal PCMC state names used by the ReSiPI controller.
enum class PcmState {
  kCrystalline,          ///< all power to Bar
  kPartiallyCrystalline, ///< split between Bar and Cross
  kAmorphous,            ///< all power to Cross
};

struct PcmCouplerDesign {
  /// Coupling length in the amorphous state [m] (L_c^am).
  double coupling_length_amorphous_m = 40.0 * units::um;
  /// Coupling length in the crystalline state [m] (L_c^cr).
  double coupling_length_crystalline_m = 10.0 * units::um;
  /// Physical interaction length of the coupler [m]; chosen so that the
  /// amorphous state transfers fully to Cross (L = L_c^am).
  double device_length_m = 40.0 * units::um;
  /// Insertion loss in the crystalline (most lossy) state [dB].
  double insertion_loss_crystalline_db = 0.45;
  /// Insertion loss in the amorphous state [dB].
  double insertion_loss_amorphous_db = 0.15;
  /// Energy to actuate one state change (laser/electrical write pulse) [J].
  double write_energy_j = 1.2 * units::nJ;
  /// Time to complete a state change [s] (amorphization + recrystallization
  /// pulses are sub-us; ReSiPI reconfigures on epoch boundaries).
  double write_time_s = 1.0 * units::us;
};

/// Three-state (continuously tunable) PCM directional coupler.
class PcmCoupler {
 public:
  explicit PcmCoupler(const PcmCouplerDesign& design);

  /// Set crystalline fraction chi in [0,1]; 1 = crystalline, 0 = amorphous.
  /// Returns the write energy spent (0 if chi is unchanged).
  double set_crystalline_fraction(double chi);

  /// Convenience setter for the three nominal states (partial = 0.5).
  double set_state(PcmState state);

  [[nodiscard]] double crystalline_fraction() const { return chi_; }
  [[nodiscard]] PcmState nearest_state() const;

  /// Power fraction delivered to the Cross port (0..1, before loss).
  [[nodiscard]] double cross_fraction() const;

  /// Power fraction delivered to the Bar port (0..1, before loss).
  [[nodiscard]] double bar_fraction() const;

  /// Power transmission including state-dependent insertion loss.
  [[nodiscard]] double cross_transmission() const;
  [[nodiscard]] double bar_transmission() const;

  /// Total write energy spent since construction [J].
  [[nodiscard]] double total_write_energy_j() const { return write_energy_j_; }

  /// Number of state changes performed.
  [[nodiscard]] std::uint64_t write_count() const { return writes_; }

  [[nodiscard]] const PcmCouplerDesign& design() const { return design_; }

 private:
  PcmCouplerDesign design_;
  double chi_ = 0.0;  // fabricated amorphous: pass-through to Cross
  double write_energy_j_ = 0.0;
  std::uint64_t writes_ = 0;
};

}  // namespace optiplet::photonics
