#include "cluster/cluster_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "dnn/workload.hpp"
#include "dnn/zoo.hpp"
#include "serve/colocation.hpp"
#include "util/require.hpp"

namespace optiplet::cluster {

bool Placement::hosts(std::size_t package, std::size_t tenant) const {
  return replica_index(tenant, package).has_value();
}

std::optional<std::size_t> Placement::replica_index(
    std::size_t tenant, std::size_t package) const {
  const auto& list = replicas[tenant];
  const auto it = std::find(list.begin(), list.end(), package);
  if (it == list.end()) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(it - list.begin());
}

Placement place_tenants(const ClusterSpec& spec,
                        const core::SystemConfig& system,
                        accel::Architecture arch,
                        const std::vector<std::string>& models,
                        const std::vector<double>& weights) {
  OPTIPLET_REQUIRE(spec.packages >= 1, "cluster needs at least one package");
  OPTIPLET_REQUIRE(!models.empty(), "cluster needs at least one tenant");
  OPTIPLET_REQUIRE(weights.size() == models.size(),
                   "one pool weight per tenant");

  const std::vector<std::size_t> factors = spec.replications(models.size());
  Placement placement;
  placement.packages = spec.packages;
  placement.replicas.resize(models.size());
  placement.package_tenants.resize(spec.packages);
  for (std::size_t t = 0; t < models.size(); ++t) {
    const std::size_t primary = t % spec.packages;
    for (std::size_t k = 0; k < factors[t]; ++k) {
      const std::size_t package = (primary + k) % spec.packages;
      placement.replicas[t].push_back(package);
      placement.package_tenants[package].push_back(t);
    }
  }
  for (auto& hosted : placement.package_tenants) {
    std::sort(hosted.begin(), hosted.end());
  }

  // Dry-run the per-package pool split so infeasible placements fail here
  // with package context. Only the 2.5D architectures partition a chiplet
  // pool; the monolithic die always time-shares.
  if (arch != accel::Architecture::kMonolithicCrossLight) {
    for (std::size_t p = 0; p < spec.packages; ++p) {
      const auto& hosted = placement.package_tenants[p];
      if (hosted.empty()) {
        continue;
      }
      std::vector<serve::TenantDemand> demands;
      demands.reserve(hosted.size());
      for (const std::size_t t : hosted) {
        serve::TenantDemand demand;
        demand.needed_kinds = serve::needed_kinds(dnn::compute_workload(
            dnn::zoo::by_name(models[t]), system.parameter_bits));
        demand.weight = weights[t];
        demands.push_back(std::move(demand));
      }
      try {
        (void)serve::partition_pool(system.compute_2p5d, demands,
                                    system.tech);
      } catch (const std::invalid_argument& error) {
        throw std::invalid_argument("package " + std::to_string(p) +
                                    " placement infeasible: " +
                                    error.what());
      }
    }
  }
  return placement;
}

}  // namespace optiplet::cluster
