#include "cluster/package_link.hpp"

#include "photonics/photodetector.hpp"
#include "photonics/waveguide.hpp"
#include "util/math.hpp"
#include "util/require.hpp"

namespace optiplet::cluster {

namespace {

noc::GatewayConfig make_gateway_config(const PackageLinkConfig& c) {
  noc::GatewayConfig g;
  g.wavelength_count = c.wavelengths;
  g.data_rate_per_wavelength_bps =
      photonics::line_rate_bps(c.modulation, c.data_rate_per_wavelength_bps);
  g.clock_hz = c.clock_hz;
  return g;
}

photonics::Waveguide board_path(const PackageLinkConfig& c,
                                const power::PhotonicTech& tech) {
  // Board routes cross nothing: each package pair gets its own
  // waveguide/fiber, so the only geometric terms are length and bends.
  return photonics::Waveguide(c.length_m, c.bends, /*crossings=*/0,
                              tech.waveguide);
}

}  // namespace

PackageLink::PackageLink(const PackageLinkConfig& config,
                         const power::PhotonicTech& tech)
    : config_(config),
      tech_(tech),
      grid_(photonics::make_cband_grid(config.wavelengths)),
      gateway_(make_gateway_config(config), tech, grid_, 0,
               photonics::modulator_rings_per_channel(config.modulation),
               /*filter_rows=*/1) {
  OPTIPLET_REQUIRE(config.wavelengths >= 1, "link needs wavelengths");
  OPTIPLET_REQUIRE(config.length_m > 0.0, "link length must be positive");

  // Writer package -> board waveguide -> reader package, mirroring the
  // interposer's SWSR stack with two extra facet couplers for the
  // off-package and on-package transitions.
  budget_ = photonics::LinkBudget{};
  budget_.add_loss("laser-to-chip coupler", tech_.laser.coupling_loss_db);
  budget_.add_loss("modulator insertion",
                   gateway_.mrg().drop_loss_db() * 0.5);
  budget_.add_loss("egress facet coupler", tech_.laser.coupling_loss_db);
  budget_.add_loss("board propagation",
                   board_path(config_, tech_).insertion_loss_db());
  budget_.add_loss("ingress facet coupler", tech_.laser.coupling_loss_db);
  budget_.add_loss("reader filter drop", gateway_.mrg().drop_loss_db());

  crosstalk_db_ = photonics::LinkBudget::crosstalk_penalty_db(
      gateway_.mrg().reference_ring(), grid_,
      /*reader_channel=*/grid_.channel_count() / 2,
      /*active_channels=*/grid_.channel_count());
}

double PackageLink::bandwidth_bps() const { return gateway_.bandwidth_bps(); }

double PackageLink::transfer_latency_s(std::uint64_t bits) const {
  return gateway_.store_forward_latency_s() +
         gateway_.serialization_time_s(bits) +
         board_path(config_, tech_).time_of_flight_s();
}

double PackageLink::laser_power_per_wavelength_w() const {
  const double sensitivity_dbm =
      photonics::Photodetector(tech_.photodetector)
          .sensitivity_dbm(config_.data_rate_per_wavelength_bps) +
      photonics::receiver_penalty_db(config_.modulation);
  return budget_.required_laser_power_w(sensitivity_dbm, crosstalk_db_,
                                        tech_.system_margin_db);
}

double PackageLink::laser_electrical_power_w() const {
  const double optical = static_cast<double>(config_.wavelengths) *
                         laser_power_per_wavelength_w();
  const double coupling = util::from_db(tech_.laser.coupling_loss_db);
  return optical * coupling / tech_.laser.wall_plug_efficiency +
         tech_.laser.bias_overhead_w;
}

double PackageLink::transfer_energy_j(std::uint64_t bits) const {
  return gateway_.transmit_energy_j(bits) + gateway_.receive_energy_j(bits) +
         laser_electrical_power_w() * gateway_.serialization_time_s(bits);
}

bool PackageLink::feasible(double max_loss_db) const {
  const auto& ring = gateway_.mrg().reference_ring();
  const double row_span =
      static_cast<double>(config_.wavelengths) * grid_.channel_spacing_m();
  if (row_span >= ring.fsr_m()) {
    return false;
  }
  return budget_.total_loss_db() + crosstalk_db_ <= max_loss_db;
}

PackageLink make_package_link(const ClusterSpec& spec,
                              const noc::PhotonicInterposerConfig& interposer,
                              const power::PhotonicTech& tech) {
  PackageLinkConfig config;
  config.length_m = spec.link_length_m;
  config.wavelengths = spec.link_wavelengths;
  config.data_rate_per_wavelength_bps =
      interposer.data_rate_per_wavelength_bps;
  config.clock_hz = interposer.gateway_clock_hz;
  config.modulation = interposer.modulation;
  return PackageLink(config, tech);
}

}  // namespace optiplet::cluster
