#include "cluster/cluster_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/load_balancer.hpp"
#include "cluster/package_link.hpp"
#include "dnn/workload.hpp"
#include "dnn/zoo.hpp"
#include "engine/thread_pool.hpp"
#include "obs/recorder.hpp"
#include "serve/arrivals.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace optiplet::cluster {

namespace {

/// Seed offset between replicas of one closed-loop tenant, so replica
/// think-time streams are independent while replica 0 keeps the exact
/// single-package stream (N=1 degeneracy).
constexpr std::uint64_t kReplicaSeedStride = 7919;

/// One arrival of the merged cluster-wide stream.
struct ArrivalEvent {
  double time_s = 0.0;
  std::size_t tenant = 0;
  std::uint64_t seq = 0;
  /// Token geometry assigned at the front end (variable-length tenants
  /// only): the shape must follow the request to whichever replica serves
  /// it, and a 1-package rack must reproduce the lone simulator's draw
  /// stream bit-for-bit.
  serve::RequestShape shape;
};

/// Per-tenant solo batch-1 service times — the balancer's expected-work
/// weights — computed through the exact partition + oracle path the
/// simulator uses, memoized per distinct model.
std::vector<double> service_weights(const ClusterConfig& config,
                                    const serve::ServingConfig& whole) {
  std::map<std::string, double> by_model;
  std::vector<double> weights;
  weights.reserve(whole.tenants.size());
  for (const auto& tenant : whole.tenants) {
    auto it = by_model.find(tenant.model);
    if (it == by_model.end()) {
      serve::ColocatedSetup solo = serve::make_colocated_setup(
          config.system, config.arch, {tenant.model});
      serve::ServiceTimeOracle oracle(std::move(solo.oracle_tenants),
                                      config.arch);
      it = by_model.emplace(tenant.model, oracle.batch_run(0, 1).latency_s)
               .first;
    }
    weights.push_back(it->second);
  }
  return weights;
}

}  // namespace

ClusterReport simulate(const ClusterConfig& config) {
  const ClusterSpec& spec = config.cluster;
  const std::size_t packages = spec.packages;
  OPTIPLET_REQUIRE(packages >= 1, "cluster needs at least one package");

  // Resolve the cluster-wide tenant list exactly as a lone simulator
  // would (names, load split, seeds, trace partitioning) — the front end
  // then shards these authoritative streams.
  const serve::ServingConfig whole =
      serve::make_serving_config(config.system, config.arch, config.serving);
  const std::size_t n = whole.tenants.size();

  std::vector<std::string> models;
  std::vector<double> pool_weights;
  for (const auto& tenant : whole.tenants) {
    models.push_back(tenant.model);
    pool_weights.push_back(tenant.weight);
  }
  Placement placement =
      place_tenants(spec, config.system, config.arch, models, pool_weights);

  const PackageLink link = make_package_link(spec, config.system.photonic,
                                             config.system.tech.photonic);
  // Payload of one request/response crossing a link: the model's first
  // layer consumes the request tensor, the last layer emits the response.
  std::vector<std::uint64_t> request_bits(n, 0);
  std::vector<std::uint64_t> response_bits(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    const dnn::Workload workload = dnn::compute_workload(
        dnn::zoo::by_name(models[t]), config.system.parameter_bits);
    request_bits[t] = workload.layers.front().input_bits;
    response_bits[t] = workload.layers.back().output_bits;
  }

  LoadBalancer balancer(spec.balancer, placement,
                        service_weights(config, whole));

  ClusterReport out;
  ClusterMetrics& metrics = out.metrics;
  metrics.packages = packages;

  const bool closed =
      whole.tenants.front().source == serve::ArrivalSource::kClosedLoop;

  // Frontend observability: inter-package hops live on their own
  // pseudo-process, one pid past the last package, so package pids keep
  // matching package indices.
  obs::Recorder* const rec = config.recorder;
  const int frontend_pid = static_cast<int>(packages);
  std::uint64_t frontend_track = 0;
  if (rec != nullptr && rec->tracing()) {
    rec->trace().set_process_name(frontend_pid, "frontend");
    frontend_track = rec->trace().track(frontend_pid, "links");
  }

  // --- front-end dispatch (deterministic, pre-simulation) ---
  const auto charge_transfer = [&](std::size_t tenant, std::uint64_t count) {
    metrics.transfers += count;
    metrics.transfer_latency_s +=
        static_cast<double>(count) *
        (link.transfer_latency_s(request_bits[tenant]) +
         link.transfer_latency_s(response_bits[tenant]));
    metrics.transfer_energy_j +=
        static_cast<double>(count) *
        (link.transfer_energy_j(request_bits[tenant]) +
         link.transfer_energy_j(response_bits[tenant]));
    if (rec != nullptr && rec->metering()) {
      rec->metrics().add("cluster.transfers", static_cast<double>(count));
      rec->metrics().add(
          "cluster.transfer_bytes",
          static_cast<double>(count) *
              static_cast<double>(request_bits[tenant] +
                                  response_bits[tenant]) /
              8.0);
    }
  };

  // Open loop: per-(package, tenant) routed arrivals, each time paired
  // with its request shape so sorting by service time keeps the two
  // aligned.
  using RoutedArrival = std::pair<double, serve::RequestShape>;
  std::vector<std::vector<std::vector<RoutedArrival>>> arrivals(
      packages, std::vector<std::vector<RoutedArrival>>(n));
  // Closed loop: per-(package, tenant) user counts / issue budgets.
  std::vector<std::vector<unsigned>> users(packages,
                                           std::vector<unsigned>(n, 0));
  std::vector<std::vector<std::uint64_t>> budgets(
      packages, std::vector<std::uint64_t>(n, 0));
  std::vector<std::vector<std::uint64_t>> remote_users(
      packages, std::vector<std::uint64_t>(n, 0));

  if (!closed) {
    std::vector<ArrivalEvent> events;
    for (std::size_t t = 0; t < n; ++t) {
      const auto& setup = whole.tenants[t];
      const std::vector<double> stream =
          setup.replay_trace
              ? setup.trace_arrivals
              : serve::poisson_arrivals(setup.arrival_rps, setup.requests,
                                        setup.seed);
      // The front end fixes each request's token geometry before routing:
      // replayed shapes verbatim, otherwise the same seeded draw stream
      // the lone simulator would produce (see serve::draw_request_shape).
      const bool var = setup.prefill_tokens > 0;
      util::Xoshiro256 shape_rng(setup.seed ^ 0x746f6b656eULL);
      for (std::uint64_t k = 0; k < stream.size(); ++k) {
        serve::RequestShape shape;
        if (!setup.trace_shapes.empty()) {
          shape = setup.trace_shapes[k];
        } else if (var) {
          shape = serve::draw_request_shape(setup.prefill_tokens,
                                            setup.decode_tokens,
                                            setup.token_spread, shape_rng);
        }
        events.push_back({stream[k], t, k, shape});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const ArrivalEvent& a, const ArrivalEvent& b) {
                return std::tie(a.time_s, a.tenant, a.seq) <
                       std::tie(b.time_s, b.tenant, b.seq);
              });
    std::uint64_t port = 0;
    for (const ArrivalEvent& event : events) {
      const std::size_t ingress = port++ % packages;
      const std::size_t package = balancer.route(event.tenant, ingress);
      double at = event.time_s;
      if (package != ingress) {
        // The request rides the photonic link to its replica; the
        // response rides back. Only the forward hop delays service.
        at += link.transfer_latency_s(request_bits[event.tenant]);
        charge_transfer(event.tenant, 1);
        if (rec != nullptr && rec->tracing()) {
          rec->trace().add_complete(
              "transfer", "cluster", event.time_s, at, frontend_pid,
              frontend_track,
              {obs::arg("tenant",
                        whole.tenants[event.tenant].name.empty()
                            ? whole.tenants[event.tenant].model
                            : whole.tenants[event.tenant].name),
               obs::arg("from_package",
                        static_cast<std::uint64_t>(ingress)),
               obs::arg("to_package",
                        static_cast<std::uint64_t>(package))});
        }
      }
      arrivals[package][event.tenant].push_back({at, event.shape});
    }
    for (auto& package : arrivals) {
      for (auto& stream : package) {
        // Stable: link-delayed ties keep their dispatch order, and each
        // shape rides with its arrival time.
        std::stable_sort(stream.begin(), stream.end(),
                         [](const RoutedArrival& a, const RoutedArrival& b) {
                           return a.first < b.first;
                         });
      }
    }
  } else {
    // Closed loop: the front end pins each user to one replica for its
    // whole session; per-user issue budgets follow the user.
    std::uint64_t port = 0;
    for (std::size_t t = 0; t < n; ++t) {
      const auto& setup = whole.tenants[t];
      const auto user_count = static_cast<std::uint64_t>(setup.users);
      for (std::uint64_t u = 0; u < user_count; ++u) {
        const std::size_t ingress = port++ % packages;
        const std::size_t package = balancer.route(t, ingress);
        users[package][t] += 1;
        if (package != ingress) {
          remote_users[package][t] += 1;
        }
        budgets[package][t] +=
            setup.requests / user_count +
            (u < setup.requests % user_count ? 1 : 0);
      }
    }
  }

  // --- per-package serving configs ---
  std::vector<std::optional<serve::ServingConfig>> configs(packages);
  // One child recorder per active package: written only by that package's
  // worker, merged below (in package order) after the workers join. A
  // single-package rack keeps the lone simulator's pid (0) and an empty
  // series prefix, so its trace and metrics match a lone run exactly.
  std::vector<std::unique_ptr<obs::Recorder>> children(packages);
  for (std::size_t p = 0; p < packages; ++p) {
    const auto& hosted = placement.package_tenants[p];
    if (hosted.empty()) {
      continue;
    }
    serve::ServingConfig package;
    package.system = whole.system;
    package.arch = whole.arch;
    package.pipeline = whole.pipeline;
    // Every package runs the same elastic policy; faults are delivered
    // only to the package they name (package < 0 hits all of them).
    package.elastic = whole.elastic;
    package.elastic.faults.clear();
    for (const serve::FaultSpec& fault : whole.elastic.faults) {
      if (fault.package < 0 || fault.package == static_cast<int>(p)) {
        package.elastic.faults.push_back(fault);
      }
    }
    if (rec != nullptr) {
      obs::RecorderOptions child_options = rec->options();
      child_options.pid = static_cast<int>(p);
      child_options.process_name = "package" + std::to_string(p);
      child_options.series_prefix =
          packages > 1 ? "p" + std::to_string(p) + "." : "";
      children[p] = std::make_unique<obs::Recorder>(child_options);
      package.recorder = children[p].get();
    }
    for (const std::size_t t : hosted) {
      serve::TenantSetup tenant = whole.tenants[t];
      if (closed) {
        // A replica the user split skipped still shapes the pool
        // partition; one idle user with a zero budget serves nothing.
        tenant.users = std::max(users[p][t], 1u);
        tenant.requests = budgets[p][t];
        tenant.seed = whole.tenants[t].seed +
                      kReplicaSeedStride * *placement.replica_index(t, p);
      } else {
        tenant.replay_trace = true;
        tenant.trace_arrivals.clear();
        tenant.trace_shapes.clear();
        const bool var = tenant.prefill_tokens > 0 ||
                         !whole.tenants[t].trace_shapes.empty();
        for (const RoutedArrival& routed : arrivals[p][t]) {
          tenant.trace_arrivals.push_back(routed.first);
          if (var) {
            tenant.trace_shapes.push_back(routed.second);
          }
        }
      }
      package.tenants.push_back(std::move(tenant));
    }
    configs[p] = std::move(package);
  }

  // --- run the packages in parallel, one per worker ---
  engine::ThreadPool pool(config.threads);
  std::vector<std::optional<std::future<serve::ServingReport>>> futures(
      packages);
  for (std::size_t p = 0; p < packages; ++p) {
    if (configs[p]) {
      futures[p] = pool.submit(
          [&config = *configs[p]] { return serve::simulate(config); });
    }
  }

  // --- merge per-package reports into the rack view ---
  out.placement = std::move(placement);
  out.packages.resize(packages);
  serve::ServingMetrics& rack = metrics.rack;
  double first_arrival = std::numeric_limits<double>::infinity();
  double last_completion = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t violations = 0;
  std::vector<double> all_latencies;
  std::map<unsigned, std::vector<double>> class_latencies;
  double util_sum = 0.0;
  metrics.util_min = std::numeric_limits<double>::infinity();
  metrics.util_max = 0.0;

  for (std::size_t p = 0; p < packages; ++p) {
    PackageBreakdown& breakdown = out.packages[p];
    breakdown.package = p;
    breakdown.dispatched = balancer.dispatched()[p];
    for (const std::size_t t : out.placement.package_tenants[p]) {
      breakdown.tenants.push_back(whole.tenants[t].name.empty()
                                      ? whole.tenants[t].model
                                      : whole.tenants[t].name);
    }
    double utilization = 0.0;
    if (futures[p]) {
      breakdown.report = futures[p]->get();
      breakdown.active = true;
      const serve::ServingMetrics& pm = breakdown.report.metrics;
      rack.offered += pm.offered;
      rack.completed += pm.completed;
      rack.shed += pm.shed;
      rack.energy_j += pm.energy_j;
      rack.resipi_conflicts += pm.resipi_conflicts;
      rack.resipi_wait_s += pm.resipi_wait_s;
      rack.shared_handoffs += pm.shared_handoffs;
      rack.handoff_resipi_s += pm.handoff_resipi_s;
      rack.service_cache_hits += pm.service_cache_hits;
      rack.service_cache_misses += pm.service_cache_misses;
      rack.sim_events += pm.sim_events;
      rack.sim_event_queue_peak =
          std::max(rack.sim_event_queue_peak, pm.sim_event_queue_peak);
      // Token-level rack view: generated throughput sums across packages;
      // KV peak and TTFT p99 take the worst package (raw TTFT samples are
      // not exported, so the pooled quantile is approximated by the max —
      // exact for a 1-package rack).
      rack.decode_tps += pm.decode_tps;
      rack.kv_peak_bytes = std::max(rack.kv_peak_bytes, pm.kv_peak_bytes);
      rack.ttft_p99_s = std::max(rack.ttft_p99_s, pm.ttft_p99_s);
      // Elastic counters sum across packages (each package runs its own
      // policy instance on its own pool).
      rack.abandoned += pm.abandoned;
      rack.retries += pm.retries;
      rack.repartitions += pm.repartitions;
      rack.repartition_resipi_s += pm.repartition_resipi_s;
      rack.gate_events += pm.gate_events;
      rack.gated_idle_s += pm.gated_idle_s;
      rack.faults_injected += pm.faults_injected;
      rack.carbon_g += pm.carbon_g;
      // Merge the package's day curve pointwise: buckets are indexed on
      // absolute time with a common width, so package curves align.
      const auto& curve = breakdown.report.day_curve;
      if (out.day_curve.size() < curve.size()) {
        const std::size_t old_size = out.day_curve.size();
        out.day_curve.resize(curve.size());
        for (std::size_t b = old_size; b < curve.size(); ++b) {
          out.day_curve[b].t0_s = curve[b].t0_s;
          out.day_curve[b].dt_s = curve[b].dt_s;
        }
      }
      for (std::size_t b = 0; b < curve.size(); ++b) {
        out.day_curve[b].offered += curve[b].offered;
        out.day_curve[b].completed += curve[b].completed;
        out.day_curve[b].energy_j += curve[b].energy_j;
        out.day_curve[b].carbon_g += curve[b].carbon_g;
      }
      utilization = pm.utilization;
      if (pm.offered > 0) {
        first_arrival = std::min(first_arrival, pm.first_arrival_abs_s);
        last_completion = std::max(last_completion, pm.last_completion_abs_s);
      }
      for (std::size_t i = 0; i < breakdown.report.tenants.size(); ++i) {
        const serve::TenantReport& tenant = breakdown.report.tenants[i];
        batches += tenant.batches;
        const auto& latencies = breakdown.report.tenant_latencies[i];
        all_latencies.insert(all_latencies.end(), latencies.begin(),
                             latencies.end());
        auto& cls = class_latencies[tenant.priority];
        cls.insert(cls.end(), latencies.begin(), latencies.end());
        for (const double latency : latencies) {
          violations += latency > tenant.sla_s ? 1 : 0;
        }
        if (closed) {
          // Users pinned off their ingress port pay the link per
          // completed request; charged as the user-share expectation.
          const std::size_t t = out.placement.package_tenants[p][i];
          if (remote_users[p][t] > 0 && users[p][t] > 0) {
            const auto remote = static_cast<std::uint64_t>(std::llround(
                static_cast<double>(tenant.completed) *
                static_cast<double>(remote_users[p][t]) /
                static_cast<double>(users[p][t])));
            charge_transfer(t, remote);
          }
        }
      }
    }
    util_sum += utilization;
    metrics.util_min = std::min(metrics.util_min, utilization);
    metrics.util_max = std::max(metrics.util_max, utilization);
  }

  if (rec != nullptr) {
    // Every future has been joined above; fold the per-package recorders
    // in package order (deterministic regardless of worker scheduling).
    for (std::size_t p = 0; p < packages; ++p) {
      if (children[p]) {
        rec->merge_child(*children[p]);
      }
    }
    if (rec->metering()) {
      // One rack-level snapshot closes the run: the frontend's transfer
      // counters only materialize as series here.
      rec->metrics().snapshot(last_completion);
    }
  }

  rack.first_arrival_abs_s =
      std::isfinite(first_arrival) ? first_arrival : last_completion;
  rack.last_completion_abs_s = last_completion;
  rack.makespan_s =
      std::max(last_completion - rack.first_arrival_abs_s, 0.0);
  rack.energy_j += metrics.transfer_energy_j;
  // Transfer energy is carbon-priced flat at the base intensity — the
  // front end has no time-resolved link schedule to price diurnally.
  rack.carbon_g +=
      metrics.transfer_energy_j / 3.6e6 * whole.elastic.carbon_base_gpkwh;
  for (serve::DayPoint& point : out.day_curve) {
    if (point.completed > 0) {
      point.energy_per_request_j =
          point.energy_j / static_cast<double>(point.completed);
    }
  }
  if (!all_latencies.empty()) {
    double sum = 0.0;
    for (const double latency : all_latencies) {
      sum += latency;
      rack.max_latency_s = std::max(rack.max_latency_s, latency);
    }
    rack.mean_latency_s = sum / static_cast<double>(all_latencies.size());
    rack.p50_s = serve::exact_quantile(all_latencies, 0.50);
    rack.p95_s = serve::exact_quantile(all_latencies, 0.95);
    rack.p99_s = serve::exact_quantile(all_latencies, 0.99);
    rack.sla_violation_rate = static_cast<double>(violations) /
                              static_cast<double>(all_latencies.size());
  }
  if (!class_latencies.empty()) {
    rack.p99_hi_s =
        serve::exact_quantile(class_latencies.begin()->second, 0.99);
    rack.p99_lo_s =
        serve::exact_quantile(class_latencies.rbegin()->second, 0.99);
  }
  if (rack.makespan_s > 0.0) {
    rack.throughput_rps =
        static_cast<double>(rack.completed) / rack.makespan_s;
    rack.goodput_rps =
        static_cast<double>(rack.completed - violations) / rack.makespan_s;
  }
  if (rack.completed > 0) {
    rack.energy_per_request_j =
        rack.energy_j / static_cast<double>(rack.completed);
    rack.mean_batch = static_cast<double>(rack.completed) /
                      static_cast<double>(std::max<std::uint64_t>(batches, 1));
  }
  // Idle packages count as utilization 0 — the rack average is honest
  // about unused capacity.
  rack.utilization = util_sum / static_cast<double>(packages);
  if (!std::isfinite(metrics.util_min)) {
    metrics.util_min = 0.0;
  }
  return out;
}

}  // namespace optiplet::cluster
