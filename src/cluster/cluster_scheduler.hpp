#pragma once
/// \file cluster_scheduler.hpp
/// Shards tenants across the rack's packages and replicates hot models.
///
/// Placement is deterministic: tenant t's primary package is t mod N and
/// its r replicas occupy the r consecutive packages starting there, so a
/// single-package rack degenerates to the lone simulator and replicated
/// tenants spread evenly. Every package's hosted set is validated against
/// the per-package chiplet pool with the same `partition_pool` feasibility
/// rules the serving simulator applies, so an infeasible placement fails
/// at schedule time with a package-qualified error instead of mid-run.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "accel/platform.hpp"
#include "cluster/cluster_spec.hpp"
#include "core/system_config.hpp"

namespace optiplet::cluster {

/// Where every tenant's replicas live.
struct Placement {
  std::size_t packages = 1;
  /// Per tenant: hosting package ids, primary first.
  std::vector<std::vector<std::size_t>> replicas;
  /// Per package: hosted tenant indices, ascending.
  std::vector<std::vector<std::size_t>> package_tenants;

  /// True when `package` hosts a replica of `tenant`.
  [[nodiscard]] bool hosts(std::size_t package, std::size_t tenant) const;
  /// Position of `package` in `tenant`'s replica list (nullopt if absent).
  [[nodiscard]] std::optional<std::size_t> replica_index(
      std::size_t tenant, std::size_t package) const;
};

/// Compute and validate the placement for `models` (Table-2 zoo names,
/// cluster tenant order) with per-tenant pool weights. Throws
/// std::invalid_argument when a package's hosted set cannot be partitioned
/// over the per-package pool.
[[nodiscard]] Placement place_tenants(const ClusterSpec& spec,
                                      const core::SystemConfig& system,
                                      accel::Architecture arch,
                                      const std::vector<std::string>& models,
                                      const std::vector<double>& weights);

}  // namespace optiplet::cluster
