#include "cluster/cluster_spec.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace optiplet::cluster {

std::optional<BalancerPolicy> balancer_policy_from_string(
    std::string_view name) {
  if (name == "rr" || name == "round-robin") {
    return BalancerPolicy::kRoundRobin;
  }
  if (name == "least" || name == "least-loaded") {
    return BalancerPolicy::kLeastLoaded;
  }
  if (name == "locality" || name == "locality-aware") {
    return BalancerPolicy::kLocalityAware;
  }
  return std::nullopt;
}

std::vector<std::size_t> ClusterSpec::replications(
    std::size_t tenant_count) const {
  if (packages < 1) {
    throw std::invalid_argument("cluster needs at least one package");
  }
  const auto clamp = [this](std::size_t factor) {
    return std::clamp<std::size_t>(factor, 1, packages);
  };
  if (replication_mix.empty()) {
    return std::vector<std::size_t>(tenant_count, clamp(replication));
  }
  const std::vector<std::string> parts = util::split(replication_mix, '+');
  if (parts.size() != tenant_count) {
    throw std::invalid_argument(
        "replication_mix \"" + replication_mix + "\" names " +
        std::to_string(parts.size()) + " factors for " +
        std::to_string(tenant_count) + " tenants");
  }
  std::vector<std::size_t> factors;
  factors.reserve(tenant_count);
  for (const auto& part : parts) {
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(part, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used != part.size() || part.empty() || value < 1) {
      throw std::invalid_argument("bad replication factor \"" + part +
                                  "\" in replication_mix");
    }
    factors.push_back(clamp(static_cast<std::size_t>(value)));
  }
  return factors;
}

}  // namespace optiplet::cluster
