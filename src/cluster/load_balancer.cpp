#include "cluster/load_balancer.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace optiplet::cluster {

LoadBalancer::LoadBalancer(BalancerPolicy policy, const Placement& placement,
                           std::vector<double> service_weights)
    : policy_(policy),
      placement_(placement),
      weights_(std::move(service_weights)),
      load_(placement.packages, 0.0),
      dispatched_(placement.packages, 0),
      rr_(placement.replicas.size(), 0) {
  OPTIPLET_REQUIRE(weights_.size() == placement_.replicas.size(),
                   "one service weight per tenant");
}

std::size_t LoadBalancer::least_loaded(
    const std::vector<std::size_t>& replicas) const {
  // Ties break toward the earlier replica in placement order, which keeps
  // the choice independent of package numbering quirks.
  std::size_t best = replicas.front();
  for (const std::size_t package : replicas) {
    if (load_[package] < load_[best]) {
      best = package;
    }
  }
  return best;
}

std::size_t LoadBalancer::route(std::size_t tenant, std::size_t ingress) {
  const auto& replicas = placement_.replicas[tenant];
  std::size_t package = replicas.front();
  switch (policy_) {
    case BalancerPolicy::kRoundRobin:
      package = replicas[rr_[tenant]++ % replicas.size()];
      break;
    case BalancerPolicy::kLeastLoaded:
      package = least_loaded(replicas);
      break;
    case BalancerPolicy::kLocalityAware:
      package = std::find(replicas.begin(), replicas.end(), ingress) !=
                        replicas.end()
                    ? ingress
                    : least_loaded(replicas);
      break;
  }
  load_[package] += weights_[tenant];
  ++dispatched_[package];
  return package;
}

}  // namespace optiplet::cluster
