#pragma once
/// \file cluster_report.hpp
/// Rack-level results: merged serving metrics, transfer charges, and
/// per-package breakdowns.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_scheduler.hpp"
#include "serve/serving_report.hpp"

namespace optiplet::cluster {

/// One package's slice of the rack.
struct PackageBreakdown {
  std::size_t package = 0;
  /// Hosted tenant names, cluster order.
  std::vector<std::string> tenants;
  /// Requests (open loop) or users (closed loop) routed here.
  std::uint64_t dispatched = 0;
  /// True when the package hosted tenants and ran a simulator.
  bool active = false;
  serve::ServingReport report;
};

/// The compact rack summary the sweep engine and CSVs carry.
struct ClusterMetrics {
  /// Merged rack-level serving metrics. Percentiles and goodput are exact:
  /// they are recomputed from the pooled per-tenant latency samples, not
  /// averaged across packages.
  serve::ServingMetrics rack;
  std::size_t packages = 0;
  /// Inter-package request/response transfers (pairs count once).
  std::uint64_t transfers = 0;
  /// Total photonic transfer latency charged, both directions [s].
  double transfer_latency_s = 0.0;
  /// Total photonic transfer energy charged, both directions [J].
  double transfer_energy_j = 0.0;
  /// Utilization spread across packages (idle packages count as 0).
  double util_min = 0.0;
  double util_max = 0.0;
};

struct ClusterReport {
  ClusterMetrics metrics;
  Placement placement;
  std::vector<PackageBreakdown> packages;
  /// Rack-level energy/carbon day curve: the per-package curves merged
  /// pointwise by bucket (buckets are absolute-time indexed, so package
  /// curves align). Empty unless ElasticSpec::curve_bucket_s > 0.
  std::vector<serve::DayPoint> day_curve;
};

}  // namespace optiplet::cluster
