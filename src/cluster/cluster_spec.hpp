#pragma once
/// \file cluster_spec.hpp
/// Rack-level scale-out knobs: package count, front-end balancing policy,
/// tenant replication, and the chip-to-chip photonic link geometry.
///
/// A cluster is a rack of N identical interposer packages (each a full
/// Table-1 chiplet pool wrapping its own serving simulator) joined by
/// board-level photonic links ("Chip-to-chip photonic connectivity in
/// multi-accelerator servers for ML", arXiv 2501.18169). This header is
/// intentionally light so `engine::ScenarioSpec` can embed a ClusterSpec
/// without pulling in the simulator stack.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace optiplet::cluster {

/// Front-end dispatch policy for the shared arrival stream.
enum class BalancerPolicy {
  kRoundRobin,     ///< cycle each tenant's replicas in order
  kLeastLoaded,    ///< replica with the least accumulated expected work
  kLocalityAware,  ///< serve on the ingress package when it hosts a replica
};

[[nodiscard]] constexpr const char* to_string(BalancerPolicy policy) {
  switch (policy) {
    case BalancerPolicy::kRoundRobin: return "rr";
    case BalancerPolicy::kLeastLoaded: return "least";
    case BalancerPolicy::kLocalityAware: return "locality";
  }
  return "?";
}

[[nodiscard]] std::optional<BalancerPolicy> balancer_policy_from_string(
    std::string_view name);

/// The rack: how many packages, how tenants spread over them, and the
/// geometry of the package-to-package photonic links.
struct ClusterSpec {
  /// Interposer packages in the rack (each a full per-package pool).
  std::size_t packages = 1;
  /// Front-end dispatch policy.
  BalancerPolicy balancer = BalancerPolicy::kLocalityAware;
  /// Default replicas per tenant (clamped to `packages`).
  std::size_t replication = 1;
  /// Optional '+'-joined per-tenant replication factors, aligned with the
  /// serving tenant mix ("2+1" = first tenant twice, second once). Empty
  /// means every tenant uses `replication`.
  std::string replication_mix;
  /// Board-level waveguide/fiber length between two packages [m].
  double link_length_m = 0.25;
  /// WDM channels per inter-package link direction.
  std::size_t link_wavelengths = 16;

  /// Per-tenant replica counts for `tenant_count` tenants, each clamped to
  /// [1, packages]. Throws std::invalid_argument on a malformed mix.
  [[nodiscard]] std::vector<std::size_t> replications(
      std::size_t tenant_count) const;
};

}  // namespace optiplet::cluster
