#pragma once
/// \file package_link.hpp
/// Chip-to-chip photonic link between two interposer packages.
///
/// Reuses the interposer's optical building blocks — gateway SerDes and
/// MRG modulator/filter rows, waveguide propagation, the Lorentzian
/// crosstalk model, PD sensitivity, and the laser wall-plug chain — to
/// price one board-level hop: a writer gateway on the source package
/// modulates its WDM band onto a board waveguide/fiber, and a reader
/// gateway on the destination package filters and detects. The solved
/// link budget yields the per-wavelength laser power, and from it the
/// per-transfer latency and energy the cluster charges whenever a request
/// is served off its ingress package.

#include <cstdint>

#include "cluster/cluster_spec.hpp"
#include "noc/photonic_gateway.hpp"
#include "noc/photonic_interposer.hpp"
#include "photonics/link_budget.hpp"
#include "photonics/modulation.hpp"
#include "photonics/wavelength.hpp"
#include "power/tech_params.hpp"

namespace optiplet::cluster {

/// Geometry + signalling of one package-to-package link direction.
struct PackageLinkConfig {
  /// Board waveguide/fiber length between the two packages [m].
  double length_m = 0.25;
  /// WDM channels per direction.
  std::size_t wavelengths = 16;
  /// Per-wavelength symbol rate [baud] (shared with the interposer).
  double data_rate_per_wavelength_bps = 12.0e9;
  /// Gateway digital clock [Hz].
  double clock_hz = 2.0e9;
  /// Modulation format (shared with the interposer network).
  photonics::ModulationFormat modulation =
      photonics::ModulationFormat::kOok;
  /// Waveguide bends along the board route.
  std::size_t bends = 4;
};

/// One direction of a package-to-package photonic link, with its solved
/// budget and derived transfer costs.
class PackageLink {
 public:
  PackageLink(const PackageLinkConfig& config,
              const power::PhotonicTech& tech);

  /// Aggregate serialization bandwidth [bit/s].
  [[nodiscard]] double bandwidth_bps() const;

  /// Latency to move `bits` across one hop [s]: gateway store-and-forward,
  /// serialization at the link rate, and waveguide time of flight.
  [[nodiscard]] double transfer_latency_s(std::uint64_t bits) const;

  /// Energy to move `bits` across one hop [J]: transmit + receive gateway
  /// dynamic energy plus the laser's electrical draw for the serialization
  /// window, all derived from the solved link budget.
  [[nodiscard]] double transfer_energy_j(std::uint64_t bits) const;

  /// Required per-wavelength laser power at the laser output [W].
  [[nodiscard]] double laser_power_per_wavelength_w() const;

  /// Laser electrical power while the link is lit [W] (wall-plug chain).
  [[nodiscard]] double laser_electrical_power_w() const;

  /// True when the worst-case reader closes the link at `max_loss_db`.
  [[nodiscard]] bool feasible(double max_loss_db = 45.0) const;

  /// The solved loss stack, for benches and tests.
  [[nodiscard]] const photonics::LinkBudget& budget() const {
    return budget_;
  }
  [[nodiscard]] double crosstalk_penalty_db() const { return crosstalk_db_; }
  [[nodiscard]] const PackageLinkConfig& config() const { return config_; }

 private:
  PackageLinkConfig config_;
  power::PhotonicTech tech_;
  photonics::WdmGrid grid_;
  noc::PhotonicGateway gateway_;
  photonics::LinkBudget budget_;
  double crosstalk_db_ = 0.0;
};

/// The link both the rack engine and the CLIs build: `spec` contributes the
/// geometry (length, channel count) and the system's interposer network
/// contributes the signalling (rate, clock, modulation).
[[nodiscard]] PackageLink make_package_link(
    const ClusterSpec& spec, const noc::PhotonicInterposerConfig& interposer,
    const power::PhotonicTech& tech);

}  // namespace optiplet::cluster
