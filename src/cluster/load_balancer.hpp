#pragma once
/// \file load_balancer.hpp
/// Front-end dispatch of the shared arrival stream onto tenant replicas.
///
/// The balancer is a pure, deterministic routing function: given the
/// tenant and the ingress package of one arrival (or one closed-loop
/// user), it picks the serving replica and updates its load book-keeping.
/// Load is the accumulated expected work — dispatch count times the
/// tenant's solo batch-1 service time — which keeps the policy free of
/// simulator feedback and therefore reproducible across rack thread
/// counts.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/cluster_scheduler.hpp"
#include "cluster/cluster_spec.hpp"

namespace optiplet::cluster {

class LoadBalancer {
 public:
  /// `service_weights[t]` is tenant t's expected per-request work [s].
  LoadBalancer(BalancerPolicy policy, const Placement& placement,
               std::vector<double> service_weights);

  /// Route one arrival of `tenant` entering the rack at `ingress`.
  /// Returns the serving package and charges the expected work to it.
  std::size_t route(std::size_t tenant, std::size_t ingress);

  /// Expected accumulated work per package [s].
  [[nodiscard]] const std::vector<double>& load() const { return load_; }

  /// Requests dispatched per package.
  [[nodiscard]] const std::vector<std::uint64_t>& dispatched() const {
    return dispatched_;
  }

 private:
  [[nodiscard]] std::size_t least_loaded(
      const std::vector<std::size_t>& replicas) const;

  BalancerPolicy policy_;
  const Placement& placement_;
  std::vector<double> weights_;
  std::vector<double> load_;
  std::vector<std::uint64_t> dispatched_;
  std::vector<std::uint64_t> rr_;
};

}  // namespace optiplet::cluster
