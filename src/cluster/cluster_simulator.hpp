#pragma once
/// \file cluster_simulator.hpp
/// The parallel rack engine: N interposer packages, each wrapping its own
/// serving simulator, fed from one shared arrival stream.
///
/// Dispatch is resolved deterministically *before* any package simulates:
/// the cluster-wide per-tenant arrival streams (the exact Poisson vectors,
/// replayed trace, or closed-loop user pools a lone simulator would see)
/// are merged in time order, each arrival enters the rack at a round-robin
/// ingress port, and the `LoadBalancer` picks the serving replica. A
/// request served off its ingress package pays the `PackageLink`
/// link-budget transfer cost: the forward hop delays its arrival at the
/// serving package, and both hops accrue into the rack's transfer
/// latency/energy totals. The per-package simulators then run in parallel
/// on `engine::ThreadPool` (one package per worker) and their reports
/// merge into a `ClusterReport` — percentiles and goodput recomputed from
/// the pooled latency samples, so a 1-package rack reproduces the lone
/// simulator bit for bit.

#include <cstddef>

#include "accel/platform.hpp"
#include "cluster/cluster_report.hpp"
#include "cluster/cluster_spec.hpp"
#include "core/system_config.hpp"
#include "serve/serving_spec.hpp"

namespace optiplet::obs {
class Recorder;
}  // namespace optiplet::obs

namespace optiplet::cluster {

struct ClusterConfig {
  /// Per-package base system (Table 1 by default).
  core::SystemConfig system;
  accel::Architecture arch = accel::Architecture::kSiph2p5D;
  /// Cluster-wide workload: the same sweepable spec a lone simulator
  /// takes; the front end shards its arrival stream across the rack.
  serve::ServingSpec serving;
  ClusterSpec cluster;
  /// Rack worker threads (one package per worker); 0 = hardware
  /// concurrency. The result is bit-identical for any thread count.
  std::size_t threads = 0;
  /// Observability sink. Each package gets a child recorder (pid = package
  /// index, written by that package's worker only); children merge into
  /// this recorder, in package order, after the workers join. Inter-package
  /// transfers land on a "frontend" pseudo-process (pid = package count).
  /// Null disables observability. Not owned; must outlive simulate().
  obs::Recorder* recorder = nullptr;
};

/// Run the rack to completion (every package drains its dispatched load).
[[nodiscard]] ClusterReport simulate(const ClusterConfig& config);

}  // namespace optiplet::cluster
