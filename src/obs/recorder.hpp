#pragma once
/// \file recorder.hpp
/// The observability sink threaded through the simulators.
///
/// A `Recorder*` hangs off ServingConfig / ClusterConfig /
/// PhotonicCycleNetConfig; nullptr (the default) disables observability and
/// must stay near-zero overhead — every instrumentation site is one
/// null-pointer branch on the hot path, and the sim_speed_sweep bench gates
/// the disabled-path cost in CI. Attaching a recorder never changes
/// simulation results: all hooks are read-only observers, and the snapshot
/// events the serving engine schedules for an attached recorder do not
/// touch engine state.
///
/// Threading model: one Recorder per simulated package, written by exactly
/// one thread. cluster::simulate gives each package replica a child
/// recorder (pid = package index) and merges them into the caller's
/// recorder after the worker pool joins.

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace optiplet::obs {

struct RecorderOptions {
  bool trace = true;    ///< collect trace-event spans
  bool metrics = true;  ///< collect metric samples
  /// Sim-time between metric snapshots; 0 picks ~64 snapshots across the
  /// run's arrival span automatically.
  double snapshot_period_s = 0.0;
  int pid = 0;  ///< trace process id (package index)
  /// Trace process name. The simulator that adopts the recorder emits the
  /// process_name metadata lazily (empty means the simulator's default,
  /// e.g. "serving"); metadata is first-wins, so the adopting simulator
  /// decides the label.
  std::string process_name;
  std::string series_prefix;  ///< metric series prefix (e.g. "p3.")
};

class Recorder {
 public:
  explicit Recorder(RecorderOptions options = {});

  [[nodiscard]] bool tracing() const { return options_.trace; }
  [[nodiscard]] bool metering() const { return options_.metrics; }
  [[nodiscard]] const RecorderOptions& options() const { return options_; }
  [[nodiscard]] int pid() const { return options_.pid; }

  [[nodiscard]] TraceBuffer& trace() { return trace_; }
  [[nodiscard]] const TraceBuffer& trace() const { return trace_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }

  /// Fold a per-package child recorder into this one (call after the
  /// child's writer thread has joined).
  void merge_child(const Recorder& child);

 private:
  RecorderOptions options_;
  TraceBuffer trace_;
  MetricsRegistry metrics_;
};

}  // namespace optiplet::obs
