#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace optiplet::obs {
namespace {

/// JSON string escaping (quotes, backslash, control characters).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_us(double us) {
  char buf[40];
  // Nanosecond resolution on a microsecond clock; trace-event readers
  // accept fractional timestamps.
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\":\"";
  out += escape(e.name);
  out += "\",\"ph\":\"";
  out += e.phase;
  out += "\",\"ts\":";
  out += format_us(e.ts_us);
  if (e.phase == 'X') {
    out += ",\"dur\":";
    out += format_us(e.dur_us);
  }
  out += ",\"pid\":";
  out += std::to_string(e.pid);
  out += ",\"tid\":";
  out += std::to_string(e.tid);
  if (!e.cat.empty()) {
    out += ",\"cat\":\"";
    out += escape(e.cat);
    out += "\"";
  }
  if (e.phase == 'i') {
    out += ",\"s\":\"t\"";  // instant scope: thread
  }
  if (!e.args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const TraceArg& a : e.args) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += escape(a.key);
      out += "\":";
      if (a.quoted) {
        out += '"';
        out += escape(a.value);
        out += '"';
      } else {
        out += a.value;
      }
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

TraceArg arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), true};
}

TraceArg arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, true};
}

TraceArg arg(std::string key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return TraceArg{std::move(key), buf, false};
}

TraceArg arg(std::string key, std::uint64_t value) {
  return TraceArg{std::move(key), std::to_string(value), false};
}

void TraceBuffer::set_process_name(int pid, const std::string& name) {
  for (const TraceEvent& m : metadata_) {
    if (m.phase == 'M' && m.name == "process_name" && m.pid == pid) {
      return;
    }
  }
  TraceEvent e;
  e.name = "process_name";
  e.phase = 'M';
  e.pid = pid;
  e.args.push_back(arg("name", name));
  metadata_.push_back(std::move(e));
}

std::uint64_t TraceBuffer::track(int pid, const std::string& name) {
  std::uint64_t next = 1;
  for (const auto& [key, tid] : tracks_) {
    if (key.first == pid) {
      if (key.second == name) {
        return tid;
      }
      ++next;
    }
  }
  tracks_.push_back({{pid, name}, next});
  TraceEvent e;
  e.name = "thread_name";
  e.phase = 'M';
  e.pid = pid;
  e.tid = next;
  e.args.push_back(arg("name", name));
  metadata_.push_back(std::move(e));
  return next;
}

void TraceBuffer::add_complete(std::string name, std::string cat,
                               double start_s, double end_s, int pid,
                               std::uint64_t tid,
                               std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.phase = 'X';
  e.ts_us = start_s * 1e6;
  e.dur_us = (end_s - start_s) * 1e6;
  if (e.dur_us < 0.0) {
    e.dur_us = 0.0;
  }
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceBuffer::add_instant(std::string name, std::string cat, double t_s,
                              int pid, std::uint64_t tid,
                              std::vector<TraceArg> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.phase = 'i';
  e.ts_us = t_s * 1e6;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void TraceBuffer::merge(const TraceBuffer& other) {
  metadata_.insert(metadata_.end(), other.metadata_.begin(),
                   other.metadata_.end());
  events_.insert(events_.end(), other.events_.begin(), other.events_.end());
  tracks_.insert(tracks_.end(), other.tracks_.begin(), other.tracks_.end());
}

std::string TraceBuffer::to_json() const {
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events_.size());
  for (const TraceEvent& e : events_) {
    ordered.push_back(&e);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts_us < b->ts_us;
                   });

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& m : metadata_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    append_event(out, m);
  }
  for (const TraceEvent* e : ordered) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    append_event(out, *e);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceBuffer::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  out << to_json();
  return out.good();
}

}  // namespace optiplet::obs
