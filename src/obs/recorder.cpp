#include "obs/recorder.hpp"

#include <utility>

namespace optiplet::obs {

Recorder::Recorder(RecorderOptions options)
    : options_(std::move(options)), metrics_(options_.series_prefix) {}

void Recorder::merge_child(const Recorder& child) {
  trace_.merge(child.trace_);
  metrics_.merge(child.metrics_);
}

}  // namespace optiplet::obs
