#include "obs/metrics.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

namespace optiplet::obs {
namespace {

/// Histogram layout shared by every metric histogram: 1e-7 s .. 100 s at
/// ~10 buckets/decade. Identical layout everywhere keeps per-package
/// histograms mergeable.
sim::LogHistogram make_histogram() {
  return sim::LogHistogram(1e-7, 100.0, 90);
}

}  // namespace

MetricsRegistry::MetricsRegistry(std::string series_prefix)
    : prefix_(std::move(series_prefix)) {}

void MetricsRegistry::add(const std::string& name, double delta) {
  counters_[name] += delta;
}

void MetricsRegistry::set(const std::string& name, double value) {
  gauges_[name] = value;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, make_histogram()).first;
  }
  it->second.add(value);
}

void MetricsRegistry::emit(double t_s, const std::string& name,
                           double value) {
  samples_.push_back(MetricSample{t_s, prefix_ + name, value});
}

void MetricsRegistry::snapshot(double t_s) {
  const double window_s = have_snapshot_ ? t_s - last_snapshot_t_s_ : t_s;
  for (const auto& [name, value] : counters_) {
    emit(t_s, name, value);
    const double prev = counters_at_last_snapshot_.count(name)
                            ? counters_at_last_snapshot_.at(name)
                            : 0.0;
    emit(t_s, name + ".rate",
         window_s > 0.0 ? (value - prev) / window_s : 0.0);
  }
  counters_at_last_snapshot_ = counters_;
  for (const auto& [name, value] : gauges_) {
    emit(t_s, name, value);
  }
  for (const auto& [name, hist] : histograms_) {
    emit(t_s, name + ".count", static_cast<double>(hist.stat().count()));
    emit(t_s, name + ".mean", hist.stat().mean());
    emit(t_s, name + ".p50", hist.quantile(0.50));
    emit(t_s, name + ".p99", hist.quantile(0.99));
  }
  last_snapshot_t_s_ = t_s;
  have_snapshot_ = true;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

std::size_t MetricsRegistry::series_count() const {
  std::map<std::string, bool> seen;
  for (const MetricSample& s : samples_) {
    seen[s.series] = true;
  }
  return seen.size();
}

double MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

bool MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  out << "t_s,series,value\n";
  char buf[80];
  for (const MetricSample& s : samples_) {
    std::snprintf(buf, sizeof buf, "%.9g,", s.t_s);
    out << buf << s.series;
    std::snprintf(buf, sizeof buf, ",%.9g\n", s.value);
    out << buf;
  }
  return out.good();
}

}  // namespace optiplet::obs
