#pragma once
/// \file metrics.hpp
/// Metrics registry: named counters, gauges, and log-scale histograms with
/// periodic sim-time snapshots exported as a long-format time-series CSV.
///
/// Counters are monotone; every snapshot emits both the cumulative value
/// (`<name>`) and the windowed rate since the previous snapshot
/// (`<name>.rate`, per sim-second). Gauges emit their current value.
/// Histograms emit `.mean`, `.p50`, `.p99`, and `.count` series, backed by
/// sim::LogHistogram so per-package registries merge exactly.
///
/// Series names are dot-delimited (`serve.shed`, `resipi.active_gateways`);
/// a registry-level prefix (e.g. `p3.`) namespaces per-package registries
/// inside a rack run. See docs/observability.md for the series catalog.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace optiplet::obs {

/// One row of the long-format export: (sim time, series name, value).
struct MetricSample {
  double t_s = 0.0;
  std::string series;
  double value = 0.0;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::string series_prefix = "");

  /// Increment the counter `name` by `delta` (counters are create-on-use).
  void add(const std::string& name, double delta = 1.0);

  /// Set the gauge `name` to `value`.
  void set(const std::string& name, double value);

  /// Observe `value` into the histogram `name`.
  void observe(const std::string& name, double value);

  /// Emit one sample row per live series at sim time `t_s`.
  void snapshot(double t_s);

  /// Append `other`'s emitted samples (its prefix is already baked into
  /// its series names). Live counter/gauge state is not merged — merging
  /// happens after the child registries have taken their final snapshots.
  void merge(const MetricsRegistry& other);

  [[nodiscard]] const std::vector<MetricSample>& samples() const {
    return samples_;
  }

  /// Number of distinct series names across all emitted samples.
  [[nodiscard]] std::size_t series_count() const;

  /// Cumulative value of counter `name` (0 if never incremented).
  [[nodiscard]] double counter(const std::string& name) const;

  /// Write samples as CSV (`t_s,series,value`); false on I/O failure.
  [[nodiscard]] bool write_csv(const std::string& path) const;

 private:
  void emit(double t_s, const std::string& name, double value);

  std::string prefix_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> counters_at_last_snapshot_;
  std::map<std::string, double> gauges_;
  std::map<std::string, sim::LogHistogram> histograms_;
  std::vector<MetricSample> samples_;
  double last_snapshot_t_s_ = 0.0;
  bool have_snapshot_ = false;
};

}  // namespace optiplet::obs
