#pragma once
/// \file trace.hpp
/// Request-lifecycle trace buffer emitting Chrome trace-event JSON.
///
/// Spans use *simulated* time as the clock (microseconds, the trace-event
/// unit), so a Perfetto / chrome://tracing load shows the simulated day,
/// not the wall-clock of the simulation. Processes (pid) map to packages,
/// threads (tid) to logical tracks within a package — tenants, chiplet
/// groups, the ReSiPI controller — named via metadata events.
///
/// The buffer is append-only and single-writer: each simulated package owns
/// one buffer (written from one worker thread), and a rack run merges the
/// per-package buffers after the workers join. See docs/observability.md
/// for the span taxonomy.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace optiplet::obs {

/// One key/value pair in a trace event's `args` object. `value` is
/// pre-rendered; `quoted` distinguishes JSON strings from bare numbers.
struct TraceArg {
  std::string key;
  std::string value;
  bool quoted = true;
};

[[nodiscard]] TraceArg arg(std::string key, std::string value);
[[nodiscard]] TraceArg arg(std::string key, const char* value);
[[nodiscard]] TraceArg arg(std::string key, double value);
[[nodiscard]] TraceArg arg(std::string key, std::uint64_t value);

/// One trace event. Phase 'X' = complete span, 'i' = instant, 'M' =
/// metadata (process/thread names).
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  double ts_us = 0.0;
  double dur_us = 0.0;  // complete spans only
  int pid = 0;
  std::uint64_t tid = 0;
  std::vector<TraceArg> args;
};

/// Append-only container of trace events with track bookkeeping and JSON
/// serialization.
class TraceBuffer {
 public:
  /// Name the process `pid` (idempotent; first name wins).
  void set_process_name(int pid, const std::string& name);

  /// Return the tid for the named track under `pid`, allocating it (and
  /// emitting the thread_name metadata event) on first use. Allocation is
  /// by call order, which is deterministic in a single-threaded simulation.
  std::uint64_t track(int pid, const std::string& name);

  /// Record a complete span [start_s, end_s] (sim seconds).
  void add_complete(std::string name, std::string cat, double start_s,
                    double end_s, int pid, std::uint64_t tid,
                    std::vector<TraceArg> args = {});

  /// Record an instant event at `t_s` (sim seconds).
  void add_instant(std::string name, std::string cat, double t_s, int pid,
                   std::uint64_t tid, std::vector<TraceArg> args = {});

  /// Append all of `other`'s events (metadata first). Used to fold
  /// per-package buffers into the rack buffer; pids are expected to be
  /// disjoint already.
  void merge(const TraceBuffer& other);

  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::vector<TraceEvent>& metadata() const {
    return metadata_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const {
    return events_.empty() && metadata_.empty();
  }

  /// Serialize as a Chrome trace-event JSON object. Metadata events come
  /// first; span/instant events are stably sorted by timestamp so ts is
  /// monotone within every (pid, tid) track.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; returns false on I/O failure.
  [[nodiscard]] bool write_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<TraceEvent> metadata_;
  // (pid, track name) -> tid, insertion-ordered per pid.
  std::vector<std::pair<std::pair<int, std::string>, std::uint64_t>> tracks_;
};

}  // namespace optiplet::obs
