#pragma once
/// \file workload.hpp
/// Converts a Model into the per-layer dataflow quantities the accelerator
/// schedules: MAC counts and the weight/activation traffic each compute
/// layer pushes across the interposer (paper §V: traffic type 1 = reads of
/// weights+inputs from memory, type 2 = writes of outputs to memory).

#include <cstdint>
#include <vector>

#include "dnn/graph.hpp"

namespace optiplet::dnn {

/// Dataflow summary for one *compute* layer (conv/depthwise/dense/
/// attention/linear).
struct LayerWork {
  std::size_t layer_index = 0;  ///< index into Model::layers()
  LayerKind kind = LayerKind::kConv2d;
  std::uint32_t kernel = 0;     ///< kernel size; 0 for dense layers
  std::uint64_t macs = 0;
  std::uint64_t weight_bits = 0;   ///< parameters streamed from memory
  /// Activations read from memory (includes any extra stream the layer
  /// declares, e.g. a decode-phase attention layer's KV-cache read).
  std::uint64_t input_bits = 0;
  std::uint64_t output_bits = 0;   ///< activations written back to memory
  /// Output vector length of one dot product on the MAC fabric
  /// (k*k*C_in for conv, fan-in for dense, k*k for depthwise).
  std::uint64_t dot_length = 0;
  /// Number of dot products the layer performs (macs / dot_length).
  std::uint64_t dot_count = 0;
};

/// Whole-model workload with precomputed totals.
struct Workload {
  std::vector<LayerWork> layers;
  std::uint64_t total_macs = 0;
  std::uint64_t total_weight_bits = 0;
  std::uint64_t total_activation_bits = 0;  ///< inputs + outputs

  /// Total interposer traffic for one inference [bits]: every compute layer
  /// reads weights + inputs and writes outputs through the memory chiplet
  /// (the paper's two traffic classes).
  [[nodiscard]] std::uint64_t total_traffic_bits() const {
    return total_weight_bits + total_activation_bits;
  }
};

/// Build the workload for `model` at `bits_per_value` fixed-point precision
/// (weights and activations share the precision; CrossLight uses 8 bits).
[[nodiscard]] Workload compute_workload(const Model& model,
                                        unsigned bits_per_value);

}  // namespace optiplet::dnn
