#pragma once
/// \file layer.hpp
/// DNN layer descriptor.
///
/// The accelerator never executes real arithmetic — it schedules
/// *dataflow* —
/// so a layer is fully described by its kind, geometry, parameter count and
/// MAC count. Parameter counts follow Keras "Total params" conventions
/// (batch-norm contributes 4 per channel: gamma, beta, moving mean/variance),
/// because that is what Table 2 of the paper reports.

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/tensor.hpp"

namespace optiplet::dnn {

enum class LayerKind {
  kInput,
  kConv2d,           ///< standard convolution (includes 1x1 "pointwise")
  kDepthwiseConv2d,  ///< per-channel convolution (MobileNetV2)
  kDense,            ///< fully connected
  kBatchNorm,
  kActivation,       ///< ReLU / ReLU6 / sigmoid — parameter free
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kAdd,              ///< residual addition
  kConcat,           ///< channel concatenation (DenseNet)
  kFlatten,
  kAttention,        ///< multi-head scaled dot-product attention
  kLinear,           ///< token-wise dense (weights shared across tokens)
  kLayerNorm,        ///< layer normalization — bookkeeping, not MAC fabric
};

[[nodiscard]] constexpr const char* to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kInput: return "Input";
    case LayerKind::kConv2d: return "Conv2D";
    case LayerKind::kDepthwiseConv2d: return "DepthwiseConv2D";
    case LayerKind::kDense: return "Dense";
    case LayerKind::kBatchNorm: return "BatchNorm";
    case LayerKind::kActivation: return "Activation";
    case LayerKind::kMaxPool: return "MaxPool";
    case LayerKind::kAvgPool: return "AvgPool";
    case LayerKind::kGlobalAvgPool: return "GlobalAvgPool";
    case LayerKind::kAdd: return "Add";
    case LayerKind::kConcat: return "Concat";
    case LayerKind::kFlatten: return "Flatten";
    case LayerKind::kAttention: return "Attention";
    case LayerKind::kLinear: return "Linear";
    case LayerKind::kLayerNorm: return "LayerNorm";
  }
  return "?";
}

/// One node of the model graph. Construction order is topological; `inputs`
/// holds indices of producer layers.
struct Layer {
  LayerKind kind = LayerKind::kInput;
  std::string name;
  std::vector<std::size_t> inputs;

  TensorShape input_shape;   ///< primary input (first producer)
  TensorShape output_shape;

  // Convolution / pooling geometry (unused fields stay at defaults).
  std::uint32_t kernel_h = 1;
  std::uint32_t kernel_w = 1;
  std::uint32_t stride = 1;
  Padding padding = Padding::kSame;
  bool has_bias = false;

  /// Attention head count (kAttention only; 1 elsewhere).
  std::uint32_t heads = 1;
  /// Values streamed from memory on top of the primary input activations
  /// (the KV-cache read of a decode-phase attention layer). Counted into
  /// the layer's input traffic at workload build time.
  std::uint64_t extra_stream_values = 0;

  /// Keras-style total parameter count (weights + bias (+ BN statistics)).
  std::uint64_t param_count = 0;
  /// Multiply-accumulate operations for one inference.
  std::uint64_t mac_count = 0;

  /// True for layers executed on the photonic MAC fabric
  /// (conv/dense/attention/linear); everything else is electronic
  /// post-processing.
  [[nodiscard]] bool is_compute() const {
    return kind == LayerKind::kConv2d ||
           kind == LayerKind::kDepthwiseConv2d ||
           kind == LayerKind::kDense || kind == LayerKind::kAttention ||
           kind == LayerKind::kLinear;
  }

  /// Kernel size used for MAC-unit affinity (dense-affine layers —
  /// dense, attention, token-wise linear — report 0).
  [[nodiscard]] std::uint32_t kernel_size() const {
    return kind == LayerKind::kDense || kind == LayerKind::kAttention ||
                   kind == LayerKind::kLinear
               ? 0
               : kernel_h;
  }
};

}  // namespace optiplet::dnn
