#include "dnn/zoo.hpp"

#include <array>

#include "dnn/registry.hpp"
#include "util/require.hpp"

namespace optiplet::dnn::zoo {

namespace {

/// Keras ResNet bottleneck block (v1: stride lives on the first 1x1 conv).
/// `filters` is the narrow width f; the block emits 4f channels.
TensorId bottleneck(GraphBuilder& g, TensorId in, std::uint32_t filters,
                    std::uint32_t stride, bool projection_shortcut) {
  TensorId shortcut = in;
  if (projection_shortcut) {
    shortcut = g.conv2d(in, 4 * filters, 1, stride, Padding::kValid, true);
    shortcut = g.batch_norm(shortcut);
  }
  TensorId x = g.conv2d(in, filters, 1, stride, Padding::kValid, true);
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.conv2d(x, filters, 3, 1, Padding::kSame, true);
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.conv2d(x, 4 * filters, 1, 1, Padding::kValid, true);
  x = g.batch_norm(x);
  x = g.add({x, shortcut});
  return g.relu(x);
}

/// DenseNet-BC composite layer: BN-ReLU-Conv1x1(4k)-BN-ReLU-Conv3x3(k).
TensorId dense_layer(GraphBuilder& g, TensorId in, std::uint32_t growth) {
  TensorId x = g.batch_norm(in);
  x = g.relu(x);
  x = g.conv2d(x, 4 * growth, 1, 1, Padding::kValid, false);
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.conv2d(x, growth, 3, 1, Padding::kSame, false);
  return g.concat({in, x});
}

/// DenseNet transition: BN-ReLU-Conv1x1(c/2)-AvgPool2.
TensorId transition(GraphBuilder& g, TensorId in) {
  const std::uint32_t channels = g.shape_of(in).c / 2;
  TensorId x = g.batch_norm(in);
  x = g.relu(x);
  x = g.conv2d(x, channels, 1, 1, Padding::kValid, false);
  return g.avg_pool(x, 2, 2, Padding::kValid);
}

/// MobileNetV2 inverted residual: expand(1x1, t*c_in) -> depthwise 3x3 ->
/// project(1x1, c_out), residual add when stride 1 and widths match.
TensorId inverted_residual(GraphBuilder& g, TensorId in,
                           std::uint32_t expansion, std::uint32_t out_c,
                           std::uint32_t stride) {
  const std::uint32_t in_c = g.shape_of(in).c;
  TensorId x = in;
  if (expansion != 1) {
    x = g.conv2d(x, in_c * expansion, 1, 1, Padding::kValid, false);
    x = g.batch_norm(x);
    x = g.relu(x);  // ReLU6; parameter-free either way
  }
  x = g.depthwise_conv2d(x, 3, stride, Padding::kSame, false);
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.conv2d(x, out_c, 1, 1, Padding::kValid, false);
  x = g.batch_norm(x);
  if (stride == 1 && in_c == out_c) {
    x = g.add({x, in});
  }
  return x;
}

/// VGG block: `convs` 3x3 convolutions at `filters`, then 2x2 max pool.
TensorId vgg_block(GraphBuilder& g, TensorId in, std::uint32_t filters,
                   int convs) {
  TensorId x = in;
  for (int i = 0; i < convs; ++i) {
    x = g.conv2d(x, filters, 3, 1, Padding::kSame, true);
    x = g.relu(x);
  }
  return g.max_pool(x, 2, 2, Padding::kValid);
}

}  // namespace

Model make_lenet5() {
  // Classic LeNet-5 with C5 realized as a 5x5 convolution (LeCun 1998). The
  // 62,006 total of Table 2 corresponds to the 3-channel 32x32 input variant
  // (e.g. CIFAR-10): the first conv carries (5*5*3+1)*6 = 456 parameters.
  GraphBuilder g("LeNet5", {32, 32, 3});
  TensorId x = g.conv2d(g.input_id(), 6, 5, 1, Padding::kValid, true, "C1");
  x = g.relu(x);
  x = g.avg_pool(x, 2, 2, Padding::kValid, "S2");
  x = g.conv2d(x, 16, 5, 1, Padding::kValid, true, "C3");
  x = g.relu(x);
  x = g.avg_pool(x, 2, 2, Padding::kValid, "S4");
  x = g.conv2d(x, 120, 5, 1, Padding::kValid, true, "C5");
  x = g.relu(x);
  x = g.flatten(x);
  x = g.dense(x, 84, true, "F6");
  x = g.relu(x);
  x = g.dense(x, 10, true, "output");
  return std::move(g).build();
}

Model make_resnet50() {
  GraphBuilder g("ResNet50", {224, 224, 3});
  TensorId x =
      g.conv2d(g.input_id(), 64, 7, 2, Padding::kSame, true, "conv1");
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.max_pool(x, 3, 2, Padding::kSame, "pool1");

  struct Stage {
    std::uint32_t filters;
    int blocks;
    std::uint32_t first_stride;
  };
  constexpr std::array<Stage, 4> stages{{{64, 3, 1},
                                         {128, 4, 2},
                                         {256, 6, 2},
                                         {512, 3, 2}}};
  for (const auto& stage : stages) {
    for (int b = 0; b < stage.blocks; ++b) {
      const bool first = b == 0;
      x = bottleneck(g, x, stage.filters, first ? stage.first_stride : 1,
                     first);
    }
  }
  x = g.global_avg_pool(x);
  x = g.dense(x, 1000, true, "fc1000");
  return std::move(g).build();
}

Model make_densenet121() {
  GraphBuilder g("DenseNet121", {224, 224, 3});
  TensorId x =
      g.conv2d(g.input_id(), 64, 7, 2, Padding::kSame, false, "conv1");
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.max_pool(x, 3, 2, Padding::kSame, "pool1");

  constexpr std::uint32_t kGrowth = 32;
  constexpr std::array<int, 4> kBlockSizes{6, 12, 24, 16};
  for (std::size_t stage = 0; stage < kBlockSizes.size(); ++stage) {
    for (int i = 0; i < kBlockSizes[stage]; ++i) {
      x = dense_layer(g, x, kGrowth);
    }
    if (stage + 1 < kBlockSizes.size()) {
      x = transition(g, x);
    }
  }
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.global_avg_pool(x);
  x = g.dense(x, 1000, true, "fc1000");
  return std::move(g).build();
}

Model make_vgg16() {
  GraphBuilder g("VGG16", {224, 224, 3});
  TensorId x = vgg_block(g, g.input_id(), 64, 2);
  x = vgg_block(g, x, 128, 2);
  x = vgg_block(g, x, 256, 3);
  x = vgg_block(g, x, 512, 3);
  x = vgg_block(g, x, 512, 3);
  x = g.flatten(x);
  x = g.dense(x, 4096, true, "fc1");
  x = g.relu(x);
  x = g.dense(x, 4096, true, "fc2");
  x = g.relu(x);
  x = g.dense(x, 1000, true, "predictions");
  return std::move(g).build();
}

Model make_mobilenetv2() {
  GraphBuilder g("MobileNetV2", {224, 224, 3});
  TensorId x =
      g.conv2d(g.input_id(), 32, 3, 2, Padding::kSame, false, "conv1");
  x = g.batch_norm(x);
  x = g.relu(x);

  struct BlockGroup {
    std::uint32_t expansion;
    std::uint32_t channels;
    int repeats;
    std::uint32_t stride;
  };
  constexpr std::array<BlockGroup, 7> groups{{{1, 16, 1, 1},
                                              {6, 24, 2, 2},
                                              {6, 32, 3, 2},
                                              {6, 64, 4, 2},
                                              {6, 96, 3, 1},
                                              {6, 160, 3, 2},
                                              {6, 320, 1, 1}}};
  for (const auto& grp : groups) {
    for (int i = 0; i < grp.repeats; ++i) {
      x = inverted_residual(g, x, grp.expansion, grp.channels,
                            i == 0 ? grp.stride : 1);
    }
  }
  x = g.conv2d(x, 1280, 1, 1, Padding::kValid, false, "conv_last");
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.global_avg_pool(x);
  x = g.dense(x, 1000, true, "predictions");
  return std::move(g).build();
}

std::vector<Model> all_models() {
  std::vector<Model> models;
  for (const ModelInfo& info : ModelRegistry::instance().models()) {
    if (info.family == ModelFamily::kCnn) {
      models.push_back(info.factory());
    }
  }
  return models;
}

Model by_name(const std::string& name) {
  return ModelRegistry::instance().at(name).factory();
}

std::vector<std::string> model_names() {
  return ModelRegistry::instance().names(ModelFamily::kCnn);
}

}  // namespace optiplet::dnn::zoo

namespace optiplet::dnn::detail {

void register_zoo_models(ModelRegistry& registry) {
  registry.add("LeNet5", ModelFamily::kCnn, zoo::make_lenet5);
  registry.add("ResNet50", ModelFamily::kCnn, zoo::make_resnet50);
  registry.add("DenseNet121", ModelFamily::kCnn, zoo::make_densenet121);
  registry.add("VGG16", ModelFamily::kCnn, zoo::make_vgg16);
  registry.add("MobileNetV2", ModelFamily::kCnn, zoo::make_mobilenetv2);
}

}  // namespace optiplet::dnn::detail
