#include "dnn/workload.hpp"

#include "util/require.hpp"

namespace optiplet::dnn {

Workload compute_workload(const Model& model, unsigned bits_per_value) {
  OPTIPLET_REQUIRE(bits_per_value >= 1 && bits_per_value <= 32,
                   "bits per value out of the supported 1..32 range");
  Workload w;
  for (std::size_t i = 0; i < model.layers().size(); ++i) {
    const Layer& l = model.layers()[i];
    if (!l.is_compute()) {
      continue;
    }
    LayerWork lw;
    lw.layer_index = i;
    lw.kind = l.kind;
    lw.kernel = l.kernel_size();
    lw.macs = l.mac_count;
    lw.weight_bits = l.param_count * bits_per_value;
    // extra_stream_values is the KV-cache read of a decode-phase attention
    // layer: activation traffic on top of the layer's own input tensor.
    lw.input_bits =
        (l.input_shape.elements() + l.extra_stream_values) * bits_per_value;
    lw.output_bits = l.output_shape.elements() * bits_per_value;

    switch (l.kind) {
      case LayerKind::kConv2d:
        lw.dot_length = static_cast<std::uint64_t>(l.kernel_h) * l.kernel_w *
                        l.input_shape.c;
        break;
      case LayerKind::kDepthwiseConv2d:
        lw.dot_length = static_cast<std::uint64_t>(l.kernel_h) * l.kernel_w;
        break;
      case LayerKind::kDense:
        lw.dot_length = l.input_shape.elements();
        break;
      case LayerKind::kAttention:
        // Per-head dot products: q_i . k_j over the head width.
        lw.dot_length = l.input_shape.c / l.heads;
        break;
      case LayerKind::kLinear:
        lw.dot_length = l.input_shape.c;
        break;
      default:
        break;
    }
    OPTIPLET_ASSERT(lw.dot_length > 0, "compute layer with empty dot product");
    lw.dot_count = lw.macs / lw.dot_length;

    w.total_macs += lw.macs;
    w.total_weight_bits += lw.weight_bits;
    w.total_activation_bits += lw.input_bits + lw.output_bits;
    w.layers.push_back(lw);
  }
  OPTIPLET_REQUIRE(!w.layers.empty(), "model has no compute layers");
  return w;
}

}  // namespace optiplet::dnn
