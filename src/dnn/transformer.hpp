#pragma once
/// \file transformer.hpp
/// GPT-style decoder-only transformer: the architectural spec, per-phase
/// graph builders, and KV-cache sizing.
///
/// Autoregressive inference has two phases with opposite bottlenecks:
///
///   * **prefill** — the prompt's S tokens run through every block at
///     once. MAC-heavy (every linear does S token-sized dot batches) and
///     batch-amortized: weights stream once per batch while compute
///     scales, exactly like a CNN batch.
///   * **decode** — one token per step. The MAC count per step is tiny
///     (one token through the blocks) but every step re-streams the full
///     weight set *and* reads the KV cache of all past tokens, so the
///     phase is bandwidth-bound — the broadcast-heavy traffic the
///     photonic interposer is built for.
///
/// Both phases are built as ordinary `dnn::Model` graphs (attention /
/// linear / layer-norm layers) so `compute_workload` and the full-system
/// simulator cost them at any fidelity with no special cases. Embedding
/// lookup and the weight-tied LM head are omitted: table lookups, not
/// MAC-fabric work.

#include <cstdint>

#include "dnn/graph.hpp"

namespace optiplet::dnn {

/// Architectural parameters of a decoder-only transformer.
struct TransformerSpec {
  std::uint32_t d_model = 512;
  std::uint32_t heads = 8;
  std::uint32_t blocks = 8;
  std::uint32_t d_ff = 2048;
  /// Hard context-window bound (prefill + decode tokens per request).
  std::uint32_t max_context = 2048;
  /// Sequence length the zoo's fixed-shape `Model` is built at.
  std::uint32_t default_context = 256;
};

/// The small GPT-style decoder registered in the model zoo ("TinyGPT"):
/// 8 blocks, d_model 512, 8 heads, d_ff 2048 — ~25M parameters.
[[nodiscard]] TransformerSpec tiny_gpt_spec();

/// Prefill-phase graph: `tokens` prompt tokens through every block, causal
/// attention over the prompt itself (empty KV cache).
[[nodiscard]] Model make_prefill_graph(const TransformerSpec& spec,
                                       std::uint32_t tokens);

/// Decode-step graph: one fresh token attending over a KV cache of
/// `kv_tokens` past tokens (so the step's total context is kv_tokens + 1).
[[nodiscard]] Model make_decode_graph(const TransformerSpec& spec,
                                      std::uint32_t kv_tokens);

/// KV-cache footprint of one sequence token: K and V vectors per block at
/// `bits_per_value` precision, in bytes.
[[nodiscard]] std::uint64_t kv_bytes_per_token(const TransformerSpec& spec,
                                               unsigned bits_per_value);

}  // namespace optiplet::dnn
