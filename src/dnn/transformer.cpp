#include "dnn/transformer.hpp"

#include <string>

#include "dnn/registry.hpp"
#include "util/require.hpp"

namespace optiplet::dnn {

namespace {

/// One pre-LN decoder block: LN -> Q/K/V projections -> causal attention
/// -> output projection -> residual, then LN -> FFN (d_ff, ReLU-ish) ->
/// residual. Parameter accounting matches Keras layer conventions.
TensorId decoder_block(GraphBuilder& g, TensorId x,
                       const TransformerSpec& spec,
                       std::uint32_t past_tokens, std::size_t index) {
  const std::string stem = "block" + std::to_string(index);
  TensorId ln1 = g.layer_norm(x, stem + "_ln1");
  TensorId q = g.linear(ln1, spec.d_model, true, stem + "_q");
  TensorId k = g.linear(ln1, spec.d_model, true, stem + "_k");
  TensorId v = g.linear(ln1, spec.d_model, true, stem + "_v");
  TensorId a =
      g.attention({q, k, v}, spec.heads, past_tokens, stem + "_attn");
  TensorId o = g.linear(a, spec.d_model, true, stem + "_proj");
  x = g.add({x, o}, stem + "_res1");
  TensorId ln2 = g.layer_norm(x, stem + "_ln2");
  TensorId h = g.linear(ln2, spec.d_ff, true, stem + "_ff1");
  h = g.relu(h, stem + "_gelu");
  h = g.linear(h, spec.d_model, true, stem + "_ff2");
  return g.add({x, h}, stem + "_res2");
}

Model make_graph(const TransformerSpec& spec, const std::string& name,
                 std::uint32_t tokens, std::uint32_t past_tokens) {
  OPTIPLET_REQUIRE(tokens >= 1, "transformer graph needs >= 1 token");
  OPTIPLET_REQUIRE(spec.blocks >= 1, "transformer needs >= 1 block");
  OPTIPLET_REQUIRE(
      static_cast<std::uint64_t>(tokens) + past_tokens <= spec.max_context,
      "sequence exceeds the transformer's context window");
  GraphBuilder g(name, {1, tokens, spec.d_model});
  TensorId x = g.input_id();
  for (std::size_t b = 0; b < spec.blocks; ++b) {
    x = decoder_block(g, x, spec, past_tokens, b);
  }
  (void)g.layer_norm(x, "ln_final");
  return std::move(g).build();
}

}  // namespace

TransformerSpec tiny_gpt_spec() { return TransformerSpec{}; }

Model make_prefill_graph(const TransformerSpec& spec, std::uint32_t tokens) {
  return make_graph(spec, "TinyGPT", tokens, 0);
}

Model make_decode_graph(const TransformerSpec& spec,
                        std::uint32_t kv_tokens) {
  return make_graph(spec, "TinyGPT.decode", 1, kv_tokens);
}

std::uint64_t kv_bytes_per_token(const TransformerSpec& spec,
                                 unsigned bits_per_value) {
  // K and V, one d_model vector each per block; bits rounded up to bytes.
  const std::uint64_t bits =
      2ULL * spec.blocks * spec.d_model * bits_per_value;
  return (bits + 7) / 8;
}

namespace detail {

void register_transformer_models(ModelRegistry& registry) {
  const TransformerSpec spec = tiny_gpt_spec();
  registry.add(
      "TinyGPT", ModelFamily::kTransformer,
      [spec] { return make_prefill_graph(spec, spec.default_context); },
      spec);
}

}  // namespace detail

}  // namespace optiplet::dnn
