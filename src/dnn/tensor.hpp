#pragma once
/// \file tensor.hpp
/// Activation tensor shapes (batch-free NHWC) used for DNN shape inference.

#include <cstdint>
#include <string>

#include "util/require.hpp"

namespace optiplet::dnn {

/// Spatial activation shape: height x width x channels. Fully connected
/// activations use h == w == 1.
struct TensorShape {
  std::uint32_t h = 1;
  std::uint32_t w = 1;
  std::uint32_t c = 1;

  [[nodiscard]] std::uint64_t elements() const {
    return static_cast<std::uint64_t>(h) * w * c;
  }

  [[nodiscard]] bool operator==(const TensorShape&) const = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(h) + "x" + std::to_string(w) + "x" +
           std::to_string(c);
  }
};

/// TensorFlow/Keras padding semantics.
enum class Padding {
  kSame,   ///< output spatial dim = ceil(input / stride)
  kValid,  ///< output spatial dim = floor((input - kernel) / stride) + 1
};

/// Spatial output size for one dimension under TF padding rules.
inline std::uint32_t conv_output_dim(std::uint32_t input, std::uint32_t kernel,
                                     std::uint32_t stride, Padding padding) {
  OPTIPLET_REQUIRE(stride >= 1, "stride must be >= 1");
  if (padding == Padding::kSame) {
    return (input + stride - 1) / stride;
  }
  OPTIPLET_REQUIRE(input >= kernel, "valid conv: kernel larger than input");
  return (input - kernel) / stride + 1;
}

}  // namespace optiplet::dnn
