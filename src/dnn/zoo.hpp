#pragma once
/// \file zoo.hpp
/// The five DNN models of Table 2, reconstructed layer-by-layer following the
/// Keras reference implementations (the paper's parameter counts match Keras
/// "Total params" exactly, which pins down every architectural choice,
/// including conv biases and batch-norm bookkeeping):
///
///   LeNet5        3 CONV  2 FC      62,006 params  (32x32x3 input)
///   ResNet50     53 CONV  1 FC  25,636,712 params
///   DenseNet121 120 CONV  1 FC   8,062,504 params
///   VGG16        13 CONV  3 FC 138,357,544 params
///   MobileNetV2  52 CONV  1 FC   3,538,984 params
///
/// CONV counts include 1x1 (pointwise), depthwise, and projection-shortcut
/// convolutions, which is the only accounting that reproduces the paper's
/// 53/120/52 numbers.
///
/// The zoo is a *view* of `dnn::ModelRegistry` (registry.hpp): the five
/// CNNs self-register there in paper order (next to the transformer
/// family), lookup goes through the registry, and the Table-2 helpers
/// below keep their historical CNN-only contract.

#include <string>
#include <vector>

#include "dnn/graph.hpp"

namespace optiplet::dnn::zoo {

[[nodiscard]] Model make_lenet5();
[[nodiscard]] Model make_resnet50();
[[nodiscard]] Model make_densenet121();
[[nodiscard]] Model make_vgg16();
[[nodiscard]] Model make_mobilenetv2();

/// All five Table-2 models, in the paper's row order.
[[nodiscard]] std::vector<Model> all_models();

/// Case-sensitive registry lookup by the names used in the paper
/// ("LeNet5", "ResNet50", "DenseNet121", "VGG16", "MobileNetV2") plus any
/// other registered model ("TinyGPT"). Throws std::invalid_argument for
/// unknown names.
[[nodiscard]] Model by_name(const std::string& name);

/// The Table-2 CNN names, in paper order (the transformer family is
/// listed by `ModelRegistry::names()`).
[[nodiscard]] std::vector<std::string> model_names();

}  // namespace optiplet::dnn::zoo
