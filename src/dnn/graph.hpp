#pragma once
/// \file graph.hpp
/// DNN model container and graph builder with Keras-compatible shape and
/// parameter inference.
///
/// GraphBuilder exposes one method per layer type; each returns a TensorId
/// handle so branching topologies (ResNet residuals, DenseNet concats,
/// MobileNetV2 inverted residuals) compose naturally:
///
///   GraphBuilder g("net", {224, 224, 3});
///   auto x = g.conv2d(g.input_id(), 64, 7, 2, Padding::kSame, true);
///   x = g.batch_norm(x);
///   x = g.relu(x);
///   auto skip = x;
///   ...
///   x = g.add({x, skip});
///   Model m = std::move(g).build();

#include <cstdint>
#include <string>
#include <vector>

#include "dnn/layer.hpp"

namespace optiplet::dnn {

/// Handle to a layer output inside GraphBuilder.
using TensorId = std::size_t;

/// Immutable trained-model description (topologically ordered layer list).
class Model {
 public:
  Model(std::string name, std::vector<Layer> layers);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

  /// Keras-style total parameter count (Table 2 column "Parameters").
  [[nodiscard]] std::uint64_t total_params() const;

  /// Number of convolution layers, counting 1x1 and depthwise convolutions
  /// (Table 2 column "CONV layers").
  [[nodiscard]] std::size_t conv_layer_count() const;

  /// Number of fully connected layers (Table 2 column "FC layers");
  /// token-wise linear layers count as fully connected.
  [[nodiscard]] std::size_t fc_layer_count() const;

  /// Total multiply-accumulate operations per inference.
  [[nodiscard]] std::uint64_t total_macs() const;

  /// Total weight traffic for one inference at `bits_per_param` [bits].
  [[nodiscard]] std::uint64_t weight_bits(unsigned bits_per_param) const;

  /// Layers that run on the photonic MAC fabric, in execution order.
  [[nodiscard]] std::vector<std::size_t> compute_layer_indices() const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
};

/// Builds a Model layer by layer with shape/parameter inference.
class GraphBuilder {
 public:
  GraphBuilder(std::string model_name, TensorShape input_shape);

  /// Id of the implicit input layer.
  [[nodiscard]] TensorId input_id() const { return 0; }

  TensorId conv2d(TensorId in, std::uint32_t filters, std::uint32_t kernel,
                  std::uint32_t stride, Padding padding, bool bias,
                  std::string name = {});
  TensorId depthwise_conv2d(TensorId in, std::uint32_t kernel,
                            std::uint32_t stride, Padding padding, bool bias,
                            std::string name = {});
  TensorId dense(TensorId in, std::uint32_t units, bool bias,
                 std::string name = {});
  TensorId batch_norm(TensorId in, std::string name = {});
  TensorId relu(TensorId in, std::string name = {});
  TensorId max_pool(TensorId in, std::uint32_t pool, std::uint32_t stride,
                    Padding padding, std::string name = {});
  TensorId avg_pool(TensorId in, std::uint32_t pool, std::uint32_t stride,
                    Padding padding, std::string name = {});
  TensorId global_avg_pool(TensorId in, std::string name = {});
  TensorId flatten(TensorId in, std::string name = {});
  /// Element-wise residual addition; all inputs must share one shape.
  TensorId add(const std::vector<TensorId>& ins, std::string name = {});
  /// Channel concatenation; inputs must share spatial dims.
  TensorId concat(const std::vector<TensorId>& ins, std::string name = {});

  // --- transformer layers (sequence tensors are laid out {1, tokens, d}) ---

  /// Token-wise dense: the same `units x c` weight matrix applied to every
  /// token of the sequence, so weights stream once while MACs scale with
  /// the token count.
  TensorId linear(TensorId in, std::uint32_t units, bool bias,
                  std::string name = {});
  /// Multi-head causal attention over {q, k, v} (all `{1, S, d}`).
  /// `past_tokens` is the KV-cache depth the fresh tokens additionally
  /// attend over; its K/V values are charged as an extra memory stream.
  /// Scores and mixes are parameter-free: QKV/output projections are
  /// separate linear layers.
  TensorId attention(const std::vector<TensorId>& qkv, std::uint32_t heads,
                     std::uint32_t past_tokens, std::string name = {});
  /// Layer normalization: gamma/beta bookkeeping, no MAC-fabric work.
  TensorId layer_norm(TensorId in, std::string name = {});

  /// Shape of a layer's output (usable mid-construction).
  [[nodiscard]] const TensorShape& shape_of(TensorId id) const;

  /// Finalize. The builder is left empty.
  [[nodiscard]] Model build() &&;

 private:
  TensorId push(Layer layer);
  [[nodiscard]] std::string auto_name(const char* stem);

  std::string model_name_;
  std::vector<Layer> layers_;
  std::size_t auto_name_counter_ = 0;
};

}  // namespace optiplet::dnn
