#pragma once
/// \file registry.hpp
/// The model registry: one named catalog every model ships itself into,
/// replacing the hand-enumerated zoo free-function list + string-switch
/// lookup.
///
/// Each model family self-registers at registry bootstrap through its
/// module hook (`detail::register_zoo_models`,
/// `detail::register_transformer_models` — defined next to the models
/// they register), so adding a model is one `add()` call in its own
/// module: lookup (`zoo::by_name`), enumeration (`optiplet_sweep
/// --list-models`), and CLI validation all derive from the registry
/// instead of parallel name lists. Registration order is the catalog
/// order: the five Table-2 CNNs first, in the paper's row order, then the
/// transformer family — so the historical CNN iteration order is
/// bit-identical.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dnn/graph.hpp"
#include "dnn/transformer.hpp"

namespace optiplet::dnn {

enum class ModelFamily {
  kCnn,          ///< fixed-shape Table-2 vision model
  kTransformer,  ///< autoregressive decoder (prefill/decode phases)
};

[[nodiscard]] constexpr const char* to_string(ModelFamily family) {
  switch (family) {
    case ModelFamily::kCnn:
      return "cnn";
    case ModelFamily::kTransformer:
      return "transformer";
  }
  return "?";
}

/// Catalog entry: identity plus the construction recipe. `input_shape`
/// and `params` are derived from one factory build at registration, so
/// they can never drift from the graph itself.
struct ModelInfo {
  std::string name;
  ModelFamily family = ModelFamily::kCnn;
  TensorShape input_shape;
  std::uint64_t params = 0;
  std::function<Model()> factory;
  /// Set for transformer-family models: the phase-graph parameters the
  /// serving oracle prices prefill/decode steps from.
  std::optional<TransformerSpec> transformer;
};

/// Process-wide model catalog. Thread-safe for lookups after bootstrap
/// (the instance is fully populated before first use; `add` is intended
/// for registration hooks and tests).
class ModelRegistry {
 public:
  /// The populated singleton.
  [[nodiscard]] static ModelRegistry& instance();

  /// Register a model. Derives `input_shape`/`params` by building once.
  /// Throws std::invalid_argument on duplicate names.
  void add(std::string name, ModelFamily family,
           std::function<Model()> factory,
           std::optional<TransformerSpec> transformer = std::nullopt);

  /// Lookup; nullptr when absent.
  [[nodiscard]] const ModelInfo* find(const std::string& name) const;

  /// Lookup; throws std::invalid_argument ("unknown model name: ...")
  /// listing the registered names.
  [[nodiscard]] const ModelInfo& at(const std::string& name) const;

  /// All entries, registration order.
  [[nodiscard]] const std::vector<ModelInfo>& models() const {
    return models_;
  }

  /// All names, registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Names of one family, registration order.
  [[nodiscard]] std::vector<std::string> names(ModelFamily family) const;

 private:
  ModelRegistry();

  std::vector<ModelInfo> models_;
  std::map<std::string, std::size_t> index_;
};

namespace detail {
/// Module registration hooks, called once at registry bootstrap. Each is
/// defined in the module that owns the models it registers.
void register_zoo_models(ModelRegistry& registry);
void register_transformer_models(ModelRegistry& registry);
}  // namespace detail

}  // namespace optiplet::dnn
