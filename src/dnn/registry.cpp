#include "dnn/registry.hpp"

#include <utility>

#include "util/require.hpp"

namespace optiplet::dnn {

ModelRegistry& ModelRegistry::instance() {
  static ModelRegistry registry;
  return registry;
}

ModelRegistry::ModelRegistry() {
  // Bootstrap order is catalog order: Table-2 CNNs first (paper row
  // order), then the transformer family.
  detail::register_zoo_models(*this);
  detail::register_transformer_models(*this);
}

void ModelRegistry::add(std::string name, ModelFamily family,
                        std::function<Model()> factory,
                        std::optional<TransformerSpec> transformer) {
  OPTIPLET_REQUIRE(!name.empty(), "model name must be non-empty");
  OPTIPLET_REQUIRE(index_.find(name) == index_.end(),
                   "duplicate model registration: " + name);
  ModelInfo info;
  info.name = std::move(name);
  info.family = family;
  info.factory = std::move(factory);
  info.transformer = std::move(transformer);
  // Derive identity facts from one build so they cannot drift from the
  // graph: the input layer's shape and the Keras-style parameter total.
  const Model built = info.factory();
  info.input_shape = built.layers().front().input_shape;
  info.params = built.total_params();
  index_.emplace(info.name, models_.size());
  models_.push_back(std::move(info));
}

const ModelInfo* ModelRegistry::find(const std::string& name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? nullptr : &models_[it->second];
}

const ModelInfo& ModelRegistry::at(const std::string& name) const {
  const ModelInfo* info = find(name);
  if (info == nullptr) {
    std::string known;
    for (const ModelInfo& m : models_) {
      known += known.empty() ? "" : ", ";
      known += m.name;
    }
    OPTIPLET_REQUIRE(false,
                     "unknown model name: " + name + " (known: " + known +
                         ")");
  }
  return *info;
}

std::vector<std::string> ModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const ModelInfo& m : models_) {
    out.push_back(m.name);
  }
  return out;
}

std::vector<std::string> ModelRegistry::names(ModelFamily family) const {
  std::vector<std::string> out;
  for (const ModelInfo& m : models_) {
    if (m.family == family) {
      out.push_back(m.name);
    }
  }
  return out;
}

}  // namespace optiplet::dnn
