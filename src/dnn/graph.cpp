#include "dnn/graph.hpp"

#include <utility>

#include "util/require.hpp"

namespace optiplet::dnn {

// ---------------------------------------------------------------- Model ---

Model::Model(std::string name, std::vector<Layer> layers)
    : name_(std::move(name)), layers_(std::move(layers)) {
  OPTIPLET_REQUIRE(!layers_.empty(), "model needs at least one layer");
  OPTIPLET_REQUIRE(layers_.front().kind == LayerKind::kInput,
                   "first layer must be the input");
}

std::uint64_t Model::total_params() const {
  std::uint64_t total = 0;
  for (const auto& l : layers_) {
    total += l.param_count;
  }
  return total;
}

std::size_t Model::conv_layer_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    if (l.kind == LayerKind::kConv2d ||
        l.kind == LayerKind::kDepthwiseConv2d) {
      ++n;
    }
  }
  return n;
}

std::size_t Model::fc_layer_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) {
    if (l.kind == LayerKind::kDense || l.kind == LayerKind::kLinear) {
      ++n;
    }
  }
  return n;
}

std::uint64_t Model::total_macs() const {
  std::uint64_t total = 0;
  for (const auto& l : layers_) {
    total += l.mac_count;
  }
  return total;
}

std::uint64_t Model::weight_bits(unsigned bits_per_param) const {
  return total_params() * bits_per_param;
}

std::vector<std::size_t> Model::compute_layer_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].is_compute()) {
      out.push_back(i);
    }
  }
  return out;
}

// --------------------------------------------------------- GraphBuilder ---

GraphBuilder::GraphBuilder(std::string model_name, TensorShape input_shape)
    : model_name_(std::move(model_name)) {
  OPTIPLET_REQUIRE(input_shape.elements() > 0, "empty input tensor");
  Layer input;
  input.kind = LayerKind::kInput;
  input.name = "input";
  input.input_shape = input_shape;
  input.output_shape = input_shape;
  layers_.push_back(std::move(input));
}

const TensorShape& GraphBuilder::shape_of(TensorId id) const {
  OPTIPLET_REQUIRE(id < layers_.size(), "tensor id out of range");
  return layers_[id].output_shape;
}

std::string GraphBuilder::auto_name(const char* stem) {
  return std::string(stem) + "_" + std::to_string(auto_name_counter_++);
}

TensorId GraphBuilder::push(Layer layer) {
  for (TensorId in : layer.inputs) {
    OPTIPLET_REQUIRE(in < layers_.size(), "input tensor id out of range");
  }
  layers_.push_back(std::move(layer));
  return layers_.size() - 1;
}

TensorId GraphBuilder::conv2d(TensorId in, std::uint32_t filters,
                              std::uint32_t kernel, std::uint32_t stride,
                              Padding padding, bool bias, std::string name) {
  OPTIPLET_REQUIRE(filters >= 1, "conv needs at least one filter");
  OPTIPLET_REQUIRE(kernel >= 1, "conv kernel must be >= 1");
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kConv2d;
  l.name = name.empty() ? auto_name("conv") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.kernel_h = l.kernel_w = kernel;
  l.stride = stride;
  l.padding = padding;
  l.has_bias = bias;
  l.output_shape = {conv_output_dim(s.h, kernel, stride, padding),
                    conv_output_dim(s.w, kernel, stride, padding), filters};
  const std::uint64_t weights =
      static_cast<std::uint64_t>(kernel) * kernel * s.c * filters;
  l.param_count = weights + (bias ? filters : 0);
  l.mac_count = static_cast<std::uint64_t>(l.output_shape.h) *
                l.output_shape.w * filters * kernel * kernel * s.c;
  return push(std::move(l));
}

TensorId GraphBuilder::depthwise_conv2d(TensorId in, std::uint32_t kernel,
                                        std::uint32_t stride, Padding padding,
                                        bool bias, std::string name) {
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kDepthwiseConv2d;
  l.name = name.empty() ? auto_name("dwconv") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.kernel_h = l.kernel_w = kernel;
  l.stride = stride;
  l.padding = padding;
  l.has_bias = bias;
  l.output_shape = {conv_output_dim(s.h, kernel, stride, padding),
                    conv_output_dim(s.w, kernel, stride, padding), s.c};
  const std::uint64_t weights =
      static_cast<std::uint64_t>(kernel) * kernel * s.c;
  l.param_count = weights + (bias ? s.c : 0);
  l.mac_count = static_cast<std::uint64_t>(l.output_shape.h) *
                l.output_shape.w * s.c * kernel * kernel;
  return push(std::move(l));
}

TensorId GraphBuilder::dense(TensorId in, std::uint32_t units, bool bias,
                             std::string name) {
  OPTIPLET_REQUIRE(units >= 1, "dense needs at least one unit");
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kDense;
  l.name = name.empty() ? auto_name("dense") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.has_bias = bias;
  l.output_shape = {1, 1, units};
  const std::uint64_t fan_in = s.elements();
  l.param_count = fan_in * units + (bias ? units : 0);
  l.mac_count = fan_in * units;
  return push(std::move(l));
}

TensorId GraphBuilder::batch_norm(TensorId in, std::string name) {
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kBatchNorm;
  l.name = name.empty() ? auto_name("bn") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.output_shape = s;
  // Keras counts gamma, beta, moving_mean, moving_variance: 4 per channel.
  l.param_count = 4ULL * s.c;
  // One multiply-add per element when executed unfused.
  l.mac_count = s.elements();
  return push(std::move(l));
}

TensorId GraphBuilder::relu(TensorId in, std::string name) {
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kActivation;
  l.name = name.empty() ? auto_name("relu") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.output_shape = s;
  return push(std::move(l));
}

TensorId GraphBuilder::max_pool(TensorId in, std::uint32_t pool,
                                std::uint32_t stride, Padding padding,
                                std::string name) {
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kMaxPool;
  l.name = name.empty() ? auto_name("maxpool") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.kernel_h = l.kernel_w = pool;
  l.stride = stride;
  l.padding = padding;
  l.output_shape = {conv_output_dim(s.h, pool, stride, padding),
                    conv_output_dim(s.w, pool, stride, padding), s.c};
  return push(std::move(l));
}

TensorId GraphBuilder::avg_pool(TensorId in, std::uint32_t pool,
                                std::uint32_t stride, Padding padding,
                                std::string name) {
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kAvgPool;
  l.name = name.empty() ? auto_name("avgpool") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.kernel_h = l.kernel_w = pool;
  l.stride = stride;
  l.padding = padding;
  l.output_shape = {conv_output_dim(s.h, pool, stride, padding),
                    conv_output_dim(s.w, pool, stride, padding), s.c};
  return push(std::move(l));
}

TensorId GraphBuilder::global_avg_pool(TensorId in, std::string name) {
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kGlobalAvgPool;
  l.name = name.empty() ? auto_name("gap") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.output_shape = {1, 1, s.c};
  return push(std::move(l));
}

TensorId GraphBuilder::flatten(TensorId in, std::string name) {
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kFlatten;
  l.name = name.empty() ? auto_name("flatten") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.output_shape = {1, 1, static_cast<std::uint32_t>(s.elements())};
  return push(std::move(l));
}

TensorId GraphBuilder::add(const std::vector<TensorId>& ins,
                           std::string name) {
  OPTIPLET_REQUIRE(ins.size() >= 2, "add needs at least two inputs");
  const TensorShape s = shape_of(ins[0]);
  for (TensorId id : ins) {
    OPTIPLET_REQUIRE(shape_of(id) == s, "add inputs must share one shape");
  }
  Layer l;
  l.kind = LayerKind::kAdd;
  l.name = name.empty() ? auto_name("add") : std::move(name);
  l.inputs = ins;
  l.input_shape = s;
  l.output_shape = s;
  return push(std::move(l));
}

TensorId GraphBuilder::concat(const std::vector<TensorId>& ins,
                              std::string name) {
  OPTIPLET_REQUIRE(ins.size() >= 2, "concat needs at least two inputs");
  const TensorShape first = shape_of(ins[0]);
  std::uint32_t channels = 0;
  for (TensorId id : ins) {
    const TensorShape s = shape_of(id);
    OPTIPLET_REQUIRE(s.h == first.h && s.w == first.w,
                     "concat inputs must share spatial dims");
    channels += s.c;
  }
  Layer l;
  l.kind = LayerKind::kConcat;
  l.name = name.empty() ? auto_name("concat") : std::move(name);
  l.inputs = ins;
  l.input_shape = first;
  l.output_shape = {first.h, first.w, channels};
  return push(std::move(l));
}

TensorId GraphBuilder::linear(TensorId in, std::uint32_t units, bool bias,
                              std::string name) {
  OPTIPLET_REQUIRE(units >= 1, "linear needs at least one unit");
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kLinear;
  l.name = name.empty() ? auto_name("linear") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.has_bias = bias;
  l.output_shape = {s.h, s.w, units};
  // One weight matrix shared across the h*w token positions: parameters
  // scale with c*units only, MACs with tokens * c * units.
  l.param_count = static_cast<std::uint64_t>(s.c) * units + (bias ? units : 0);
  l.mac_count = static_cast<std::uint64_t>(s.h) * s.w * s.c * units;
  return push(std::move(l));
}

TensorId GraphBuilder::attention(const std::vector<TensorId>& qkv,
                                 std::uint32_t heads,
                                 std::uint32_t past_tokens, std::string name) {
  OPTIPLET_REQUIRE(qkv.size() == 3, "attention takes {q, k, v}");
  const TensorShape s = shape_of(qkv[0]);
  for (TensorId id : qkv) {
    OPTIPLET_REQUIRE(shape_of(id) == s,
                     "attention q/k/v must share one shape");
  }
  OPTIPLET_REQUIRE(heads >= 1 && s.c % heads == 0,
                   "attention width must divide evenly into heads");
  Layer l;
  l.kind = LayerKind::kAttention;
  l.name = name.empty() ? auto_name("attn") : std::move(name);
  l.inputs = qkv;
  l.input_shape = s;
  l.output_shape = s;
  l.heads = heads;
  // Causal accounting: fresh token i (0-based) attends past_tokens + i + 1
  // positions; QK^T and AV each cost d MACs per attended position.
  const std::uint64_t tokens = static_cast<std::uint64_t>(s.h) * s.w;
  const std::uint64_t attended =
      tokens * past_tokens + tokens * (tokens + 1) / 2;
  l.mac_count = 2 * attended * s.c;
  // The cached keys and values of past tokens stream in from memory; the
  // fresh tokens' K/V are produced on-chip by the projection layers.
  l.extra_stream_values = 2ULL * past_tokens * s.c;
  return push(std::move(l));
}

TensorId GraphBuilder::layer_norm(TensorId in, std::string name) {
  const TensorShape s = shape_of(in);
  Layer l;
  l.kind = LayerKind::kLayerNorm;
  l.name = name.empty() ? auto_name("ln") : std::move(name);
  l.inputs = {in};
  l.input_shape = s;
  l.output_shape = s;
  // gamma and beta per channel.
  l.param_count = 2ULL * s.c;
  l.mac_count = s.elements();
  return push(std::move(l));
}

Model GraphBuilder::build() && {
  return Model(std::move(model_name_), std::move(layers_));
}

}  // namespace optiplet::dnn
