#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/require.hpp"

namespace optiplet::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OPTIPLET_REQUIRE(!header_.empty(), "table needs at least one column");
  aligns_.assign(header_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  OPTIPLET_REQUIRE(cells.size() == header_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

void TextTable::set_align(std::size_t column, Align align) {
  OPTIPLET_REQUIRE(column < aligns_.size(), "column out of range");
  aligns_[column] = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto hline = [&] {
    std::string s = "+";
    for (std::size_t w : widths) {
      s += std::string(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  }();

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ';
      if (aligns_[c] == Align::kLeft) {
        os << std::left;
      } else {
        os << std::right;
      }
      os << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << '\n';
    return os.str();
  };

  std::string out = hline;
  out += render_row(header_);
  out += hline;
  for (const auto& row : rows_) {
    out += row.empty() ? hline : render_row(row);
  }
  out += hline;
  return out;
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string format_general(double value, int significant) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*g", significant, value);
  return buf;
}

std::string format_si(double value) {
  const double mag = std::fabs(value);
  std::ostringstream os;
  if (value != 0.0 && (mag < 1e-3 || mag >= 1e6)) {
    os << std::scientific << std::setprecision(2) << value;
  } else if (mag >= 100.0) {
    os << std::fixed << std::setprecision(1) << value;
  } else if (mag >= 10.0) {
    os << std::fixed << std::setprecision(2) << value;
  } else {
    os << std::fixed << std::setprecision(3) << value;
  }
  return os.str();
}

std::string format_grouped(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out += ',';
    }
    out += *it;
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace optiplet::util
