#pragma once
/// \file math.hpp
/// Small numeric helpers shared across modules: dB/dBm conversions,
/// interpolation, integer ceil-division, and simple descriptive statistics.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "util/require.hpp"

namespace optiplet::util {

/// Convert a linear power ratio to decibels. `ratio` must be > 0.
inline double to_db(double ratio) {
  OPTIPLET_REQUIRE(ratio > 0.0, "dB of non-positive ratio");
  return 10.0 * std::log10(ratio);
}

/// Convert decibels to a linear power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Convert absolute power in watts to dBm.
inline double watts_to_dbm(double watts) {
  OPTIPLET_REQUIRE(watts > 0.0, "dBm of non-positive power");
  return 10.0 * std::log10(watts / 1e-3);
}

/// Convert dBm to absolute power in watts.
inline double dbm_to_watts(double dbm) {
  return 1e-3 * std::pow(10.0, dbm / 10.0);
}

/// Integer division rounding up; denominator must be positive.
template <typename T>
constexpr T ceil_div(T num, T den) {
  return (num + den - 1) / den;
}

/// Linear interpolation between a and b at t in [0,1].
inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Clamp helper kept for symmetry with lerp (std::clamp needs <algorithm>).
inline double clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

/// Arithmetic mean of a non-empty range.
inline double mean(std::span<const double> xs) {
  OPTIPLET_REQUIRE(!xs.empty(), "mean of empty range");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

/// Geometric mean of a non-empty range of positive values. Used for
/// normalized cross-model summaries (standard practice for ratios).
inline double geomean(std::span<const double> xs) {
  OPTIPLET_REQUIRE(!xs.empty(), "geomean of empty range");
  double log_sum = 0.0;
  for (double x : xs) {
    OPTIPLET_REQUIRE(x > 0.0, "geomean of non-positive value");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Population standard deviation of a non-empty range.
inline double stddev(std::span<const double> xs) {
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    acc += (x - mu) * (x - mu);
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

/// True when |a-b| <= tol * max(1,|a|,|b|): scale-aware approximate equality.
inline bool approx_equal(double a, double b, double tol = 1e-9) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace optiplet::util
