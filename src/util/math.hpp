#pragma once
/// \file math.hpp
/// Small numeric helpers shared across modules: dB/dBm conversions,
/// interpolation, integer ceil-division, and simple descriptive statistics.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "util/require.hpp"

namespace optiplet::util {

/// Convert a linear power ratio to decibels. `ratio` must be > 0.
inline double to_db(double ratio) {
  OPTIPLET_REQUIRE(ratio > 0.0, "dB of non-positive ratio");
  return 10.0 * std::log10(ratio);
}

/// Convert decibels to a linear power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Convert absolute power in watts to dBm.
inline double watts_to_dbm(double watts) {
  OPTIPLET_REQUIRE(watts > 0.0, "dBm of non-positive power");
  return 10.0 * std::log10(watts / 1e-3);
}

/// Convert dBm to absolute power in watts.
inline double dbm_to_watts(double dbm) {
  return 1e-3 * std::pow(10.0, dbm / 10.0);
}

/// Integer division rounding up; denominator must be positive.
template <typename T>
constexpr T ceil_div(T num, T den) {
  return (num + den - 1) / den;
}

/// Linear interpolation between a and b at t in [0,1].
inline double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Clamp helper kept for symmetry with lerp (std::clamp needs <algorithm>).
inline double clamp01(double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); }

/// Arithmetic mean of a non-empty range.
inline double mean(std::span<const double> xs) {
  OPTIPLET_REQUIRE(!xs.empty(), "mean of empty range");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

/// Geometric mean of a non-empty range of positive values. Used for
/// normalized cross-model summaries (standard practice for ratios).
inline double geomean(std::span<const double> xs) {
  OPTIPLET_REQUIRE(!xs.empty(), "geomean of empty range");
  double log_sum = 0.0;
  for (double x : xs) {
    OPTIPLET_REQUIRE(x > 0.0, "geomean of non-positive value");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Population standard deviation of a non-empty range.
inline double stddev(std::span<const double> xs) {
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    acc += (x - mu) * (x - mu);
  }
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

/// Inverse standard-normal CDF at p in (0,1) — the z-score such that
/// Phi(z) = p. Acklam's rational approximation (|relative error| <
/// 1.15e-9 over the whole domain), good far beyond what confidence-band
/// reporting needs.
inline double normal_quantile(double p) {
  OPTIPLET_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile needs p in (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

/// True when |a-b| <= tol * max(1,|a|,|b|): scale-aware approximate equality.
inline bool approx_equal(double a, double b, double tol = 1e-9) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace optiplet::util
