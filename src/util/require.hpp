#pragma once
/// \file require.hpp
/// Precondition checking for public APIs (CppCoreGuidelines I.5 / I.6).
///
/// OPTIPLET_REQUIRE is used at module boundaries to validate arguments and
/// configuration; violations are programmer errors and throw
/// std::invalid_argument with a message carrying the failed expression and
/// location. Internal invariants use OPTIPLET_ASSERT, which aborts.

#include <sstream>
#include <stdexcept>
#include <string>

namespace optiplet::util {

[[noreturn]] inline void throw_requirement_failure(const char* expr,
                                                   const char* file, int line,
                                                   const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw std::invalid_argument(os.str());
}

}  // namespace optiplet::util

/// Validate a precondition on a public API; throws std::invalid_argument.
#define OPTIPLET_REQUIRE(expr, msg)                                       \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::optiplet::util::throw_requirement_failure(#expr, __FILE__,        \
                                                  __LINE__, (msg));       \
    }                                                                     \
  } while (false)

/// Internal invariant; violations indicate a bug inside the library.
#define OPTIPLET_ASSERT(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::optiplet::util::throw_requirement_failure(#expr, __FILE__,        \
                                                  __LINE__, (msg));       \
    }                                                                     \
  } while (false)
