#pragma once
/// \file rng.hpp
/// Deterministic pseudo-random number generation.
///
/// All simulators take an explicit seed so every bench and test is
/// reproducible bit-for-bit. We use xoshiro256** (Blackman & Vigna, 2018),
/// seeded through SplitMix64 as its authors recommend; both are tiny,
/// allocation-free, and much faster than std::mt19937_64.

#include <array>
#include <cmath>
#include <cstdint>

namespace optiplet::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: general-purpose 64-bit PRNG, period 2^256 - 1.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) {
      return 0;
    }
    // Lemire's nearly-divisionless method would be overkill here; modulo
    // bias is < 2^-40 for the bounds used in traffic generation.
    return next() % bound;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  constexpr bool next_bool(double p) { return next_double() < p; }

  /// Exponential draw with the given mean (inverse CDF; next_double() < 1
  /// keeps the log finite). mean <= 0 returns 0.
  double next_exponential(double mean) {
    return mean > 0.0 ? -std::log(1.0 - next_double()) * mean : 0.0;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace optiplet::util
