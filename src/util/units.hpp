#pragma once
/// \file units.hpp
/// SI unit conventions and readable unit constants.
///
/// Library-wide conventions (see DESIGN.md §7):
///   time    — seconds   (double)
///   power   — watts     (double)
///   energy  — joules    (double)
///   length  — meters    (double)
///   rate    — bits/s or Hz (double)
///   data    — bits      (std::uint64_t unless noted)
///   optical power ratios — dB / dBm helpers in math.hpp
///
/// Constants are spelled as multipliers so call sites read naturally:
///   `12.0 * units::Gbps`, `2.0 * units::GHz`, `1.55 * units::um`.

#include <cstdint>

namespace optiplet::units {

// --- time ---
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// --- frequency / data rate ---
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;
inline constexpr double bps = 1.0;
inline constexpr double Kbps = 1e3;
inline constexpr double Mbps = 1e6;
inline constexpr double Gbps = 1e9;
inline constexpr double Tbps = 1e12;

// --- power / energy ---
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;
inline constexpr double uW = 1e-6;
inline constexpr double nW = 1e-9;
inline constexpr double J = 1.0;
inline constexpr double mJ = 1e-3;
inline constexpr double uJ = 1e-6;
inline constexpr double nJ = 1e-9;
inline constexpr double pJ = 1e-12;
inline constexpr double fJ = 1e-15;

// --- length ---
inline constexpr double m = 1.0;
inline constexpr double cm = 1e-2;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;
inline constexpr double pm = 1e-12;

// --- data volume ---
inline constexpr std::uint64_t bit = 1;
inline constexpr std::uint64_t Kb = 1000;
inline constexpr std::uint64_t Mb = 1000 * 1000;
inline constexpr std::uint64_t Gb = 1000ULL * 1000ULL * 1000ULL;
inline constexpr std::uint64_t Byte = 8;

// --- physical constants ---
/// Speed of light in vacuum [m/s].
inline constexpr double c0 = 299'792'458.0;

}  // namespace optiplet::units
