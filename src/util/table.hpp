#pragma once
/// \file table.hpp
/// Aligned ASCII table rendering for bench/example output.
///
/// Every bench binary prints its table/figure data through TextTable so the
/// output matches the row/column structure of the paper's artifacts.

#include <string>
#include <vector>

namespace optiplet::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Builds and renders a fixed-column text table.
///
/// Usage:
///   TextTable t({"Model", "Power (W)", "Latency (ms)"});
///   t.add_row({"ResNet50", "89.7", "1.21"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Insert a horizontal separator after the current last row.
  void add_separator();

  /// Set alignment for a column (default: kLeft for col 0, kRight otherwise).
  void set_align(std::size_t column, Align align);

  /// Render the full table, including header and borders.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
  std::vector<Align> aligns_;
};

/// Format a double with `digits` significant decimal places, trimming noise.
[[nodiscard]] std::string format_fixed(double value, int digits);

/// printf %g formatting with `significant` digits: compact, switches to
/// scientific where needed, keeps sub-picojoule metrics legible in CSVs
/// (17 significant digits round-trips a double exactly).
[[nodiscard]] std::string format_general(double value, int significant = 9);

/// Format a double choosing a sensible precision for table display
/// (3 significant figures, switching to scientific outside [1e-3, 1e6)).
[[nodiscard]] std::string format_si(double value);

/// Format a large integer with thousands separators ("25,636,712").
[[nodiscard]] std::string format_grouped(std::uint64_t value);

}  // namespace optiplet::util
