#include "util/csv.hpp"

#include <iterator>
#include <sstream>

namespace optiplet::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (out_) {
    write_row(header);
  }
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (out_) {
    write_row(cells);
  }
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      quoted += '"';
    }
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  // True once the current record holds any content (a field character, a
  // completed field, or an opening quote): distinguishes a lone "\n" (no
  // record) from "" followed by "\n" (one record of one empty field).
  bool record_started = false;

  const auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    record_started = true;
  };
  const auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
    record_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';  // doubled quote = literal quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;  // commas, CR, LF all literal inside quotes
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        record_started = true;
        break;
      case ',':
        end_field();
        break;
      case '\r':
        if (i + 1 < text.size() && text[i + 1] == '\n') {
          ++i;  // CRLF line ending
        }
        if (record_started || !record.empty()) {
          end_record();
        }
        break;
      case '\n':
        // A fully empty line holds no record (blank separators and the
        // trailing newline both land here).
        if (record_started || !record.empty()) {
          end_record();
        }
        break;
      default:
        field += c;
        record_started = true;
        break;
    }
  }
  // Final record without a trailing newline.
  if (record_started || !record.empty() || !field.empty()) {
    end_record();
  }
  return records;
}

std::optional<std::size_t> CsvDocument::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      return i;
    }
  }
  return std::nullopt;
}

std::optional<CsvDocument> read_csv_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream os;
  os << in.rdbuf();
  auto records = parse_csv(os.str());
  if (records.empty()) {
    return std::nullopt;
  }
  CsvDocument doc;
  doc.header = std::move(records.front());
  doc.rows.assign(std::make_move_iterator(records.begin() + 1),
                  std::make_move_iterator(records.end()));
  return doc;
}

}  // namespace optiplet::util
