#include "util/csv.hpp"

namespace optiplet::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (out_) {
    write_row(header);
  }
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (out_) {
    write_row(cells);
  }
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      quoted += '"';
    }
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace optiplet::util
