#pragma once
/// \file strings.hpp
/// Small string helpers shared by the CLIs and the serving spec parser.

#include <string>
#include <string_view>
#include <vector>

namespace optiplet::util {

/// Split `text` on `sep`. Adjacent separators and leading/trailing
/// separators yield empty elements; the result is never empty.
[[nodiscard]] inline std::vector<std::string> split(std::string_view text,
                                                    char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

/// Join `parts` with `sep` ("a", "b" -> "a<sep>b").
[[nodiscard]] inline std::string join(const std::vector<std::string>& parts,
                                      const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

}  // namespace optiplet::util
