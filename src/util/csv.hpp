#pragma once
/// \file csv.hpp
/// Minimal CSV writer used by benches to dump figure series for plotting,
/// plus the matching RFC 4180 parser the serving trace replayer and the
/// result-store round-trip tests consume.

#include <fstream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace optiplet::util {

/// Streams rows to a CSV file; quoting is applied when a cell contains a
/// comma, quote, or newline (RFC 4180).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True when the file opened successfully.
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Append one data row; width is not enforced (ragged rows are legal CSV)
  /// but benches are expected to keep widths consistent.
  void add_row(const std::vector<std::string>& cells);

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::ofstream out_;
};

/// Parse CSV text into records of fields (RFC 4180): quoted fields may
/// contain commas, doubled quotes, and newlines; unquoted CR before LF is
/// treated as a CRLF line ending; the final record may or may not end with
/// a newline. Fully empty trailing lines are not records.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    std::string_view text);

/// A parsed CSV file: the first record is the header, the rest are rows.
struct CsvDocument {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of `name` in the header; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> column(
      std::string_view name) const;
};

/// Read and parse `path`; nullopt when the file cannot be opened or holds
/// no header record.
[[nodiscard]] std::optional<CsvDocument> read_csv_file(
    const std::string& path);

}  // namespace optiplet::util
