#pragma once
/// \file csv.hpp
/// Minimal CSV writer used by benches to dump figure series for plotting.

#include <fstream>
#include <string>
#include <vector>

namespace optiplet::util {

/// Streams rows to a CSV file; quoting is applied when a cell contains a
/// comma, quote, or newline (RFC 4180).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// True when the file opened successfully.
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Append one data row; width is not enforced (ragged rows are legal CSV)
  /// but benches are expected to keep widths consistent.
  void add_row(const std::vector<std::string>& cells);

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  std::ofstream out_;
};

}  // namespace optiplet::util
