#pragma once
/// \file stats.hpp
/// Simulation statistics: running moments, histograms, and named counters.
///
/// These are the primitives every simulator in the library reports through;
/// keeping them allocation-light matters because the cycle-accurate NoC
/// updates them on every packet.

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/require.hpp"

namespace optiplet::sim {

/// Streaming mean/variance/min/max (Welford's algorithm): O(1) per sample,
/// numerically stable for the long runs the NoC simulator produces.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double min() const {
    return n_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : 0.0;
  }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Fold `other` into this stat (Chan et al. parallel variance update), so
  /// per-package or per-thread stats can be pooled without resampling.
  void merge(const RunningStat& other) {
    if (other.n_ == 0) {
      return;
    }
    if (n_ == 0) {
      *this = other;
      return;
    }
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * nb / (na + nb);
    m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
    n_ += other.n_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void reset() { *this = RunningStat{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin-width histogram with an overflow bucket; used for packet
/// latency distributions.
class Histogram {
 public:
  /// `bin_width` > 0; values >= bin_width*bin_count land in overflow.
  Histogram(double bin_width, std::size_t bin_count)
      : bin_width_(bin_width), bins_(bin_count, 0) {
    OPTIPLET_REQUIRE(bin_width > 0.0, "histogram bin width must be positive");
    OPTIPLET_REQUIRE(bin_count > 0, "histogram needs at least one bin");
  }

  void add(double x) {
    stat_.add(x);
    if (x < 0.0) {
      ++underflow_;
      return;
    }
    const auto idx = static_cast<std::size_t>(x / bin_width_);
    if (idx < bins_.size()) {
      ++bins_[idx];
    } else {
      ++overflow_;
    }
  }

  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] double bin_width() const { return bin_width_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] const RunningStat& stat() const { return stat_; }

  /// Value below which `q` (0..1] of samples fall, linearly interpolated
  /// within the containing bin. Overflowed samples pin the result to the
  /// histogram's upper edge.
  [[nodiscard]] double quantile(double q) const {
    OPTIPLET_REQUIRE(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
    const std::uint64_t total = stat_.count();
    if (total == 0) {
      return 0.0;
    }
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
    std::uint64_t seen = underflow_;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      seen += bins_[i];
      if (seen >= target) {
        const std::uint64_t into = bins_[i] - (seen - target);
        const double frac =
            bins_[i] ? static_cast<double>(into) / static_cast<double>(bins_[i])
                     : 0.0;
        return (static_cast<double>(i) + frac) * bin_width_;
      }
    }
    return bin_width_ * static_cast<double>(bins_.size());
  }

 private:
  double bin_width_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t overflow_ = 0;
  std::uint64_t underflow_ = 0;
  RunningStat stat_;
};

/// Geometric-bucket histogram spanning [lo, hi): bucket i covers
/// [lo*r^i, lo*r^(i+1)) with r chosen so `bucket_count` buckets tile the
/// range. Log-scale buckets give constant *relative* resolution, which is
/// what latency distributions spanning microseconds to seconds need; the
/// fixed layout makes histograms from different packages/threads mergeable
/// bucket-by-bucket.
class LogHistogram {
 public:
  LogHistogram(double lo, double hi, std::size_t bucket_count)
      : lo_(lo), hi_(hi), bins_(bucket_count, 0) {
    OPTIPLET_REQUIRE(lo > 0.0 && hi > lo, "log histogram needs 0 < lo < hi");
    OPTIPLET_REQUIRE(bucket_count > 0, "log histogram needs >= 1 bucket");
    log_lo_ = std::log(lo);
    inv_log_ratio_ =
        static_cast<double>(bucket_count) / (std::log(hi) - log_lo_);
  }

  void add(double x) {
    stat_.add(x);
    if (!(x >= lo_)) {  // negatives, zeros, and NaN all land below range
      ++underflow_;
      return;
    }
    if (x >= hi_) {
      ++overflow_;
      return;
    }
    auto idx =
        static_cast<std::size_t>((std::log(x) - log_lo_) * inv_log_ratio_);
    if (idx >= bins_.size()) {  // guard the hi edge against rounding
      idx = bins_.size() - 1;
    }
    ++bins_[idx];
  }

  /// Fold `other` (same layout required) into this histogram.
  void merge(const LogHistogram& other) {
    OPTIPLET_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
                         bins_.size() == other.bins_.size(),
                     "cannot merge log histograms with different layouts");
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      bins_[i] += other.bins_[i];
    }
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    stat_.merge(other.stat_);
  }

  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t bin_count() const { return bins_.size(); }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] const RunningStat& stat() const { return stat_; }

  /// Lower edge of bucket `i` (edge `bin_count()` is the histogram's hi).
  [[nodiscard]] double edge(std::size_t i) const {
    OPTIPLET_REQUIRE(i <= bins_.size(), "edge index out of range");
    return std::exp(log_lo_ + static_cast<double>(i) / inv_log_ratio_);
  }

  /// Value below which `q` (0..1] of samples fall, interpolated
  /// geometrically within the containing bucket. Underflow pins to lo,
  /// overflow pins to hi.
  [[nodiscard]] double quantile(double q) const {
    OPTIPLET_REQUIRE(q > 0.0 && q <= 1.0, "quantile must be in (0,1]");
    const std::uint64_t total = stat_.count();
    if (total == 0) {
      return 0.0;
    }
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
    std::uint64_t seen = underflow_;
    if (seen >= target) {
      return lo_;
    }
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      seen += bins_[i];
      if (seen >= target) {
        const std::uint64_t into = bins_[i] - (seen - target);
        const double frac =
            bins_[i] ? static_cast<double>(into) / static_cast<double>(bins_[i])
                     : 0.0;
        return std::exp(log_lo_ +
                        (static_cast<double>(i) + frac) / inv_log_ratio_);
      }
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  double log_lo_;
  double inv_log_ratio_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  RunningStat stat_;
};

/// Named monotonic counters grouped in one registry, so simulators can expose
/// "flits_routed", "packets_dropped", ... without bespoke member lists.
class CounterSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  [[nodiscard]] std::uint64_t get(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }

  void reset() { counters_.clear(); }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace optiplet::sim
