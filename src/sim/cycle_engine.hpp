#pragma once
/// \file cycle_engine.hpp
/// Cycle-driven simulation kernel for the cycle-accurate NoC (BookSim-style).
///
/// Components register with an engine bound to one clock domain and are
/// ticked in two phases per cycle:
///   1. `evaluate()` — read the state other components exposed last cycle and
///      compute this cycle's outputs (no externally visible writes);
///   2. `commit()`   — make the computed state visible.
/// The two-phase contract removes intra-cycle ordering dependencies between
/// routers, which is what makes the mesh simulation deterministic regardless
/// of registration order.

#include <cstdint>
#include <functional>
#include <vector>

#include "util/require.hpp"

namespace optiplet::sim {

/// Interface for cycle-driven components (routers, network interfaces, ...).
class CycleComponent {
 public:
  virtual ~CycleComponent() = default;

  /// Phase 1: compute next state from currently visible state.
  virtual void evaluate(std::uint64_t cycle) = 0;

  /// Phase 2: expose the state computed in evaluate().
  virtual void commit(std::uint64_t cycle) = 0;
};

/// Drives a set of CycleComponents in lock-step. The engine does not own the
/// components; the caller (e.g. noc::ElectricalMesh) keeps ownership so the
/// object graph stays explicit.
class CycleEngine {
 public:
  /// `frequency_hz` converts cycle counts to seconds for reporting.
  explicit CycleEngine(double frequency_hz) : frequency_hz_(frequency_hz) {
    OPTIPLET_REQUIRE(frequency_hz > 0.0, "clock frequency must be positive");
  }

  void register_component(CycleComponent& component) {
    components_.push_back(&component);
  }

  /// Advance one cycle (both phases across all components).
  void step() {
    for (auto* c : components_) {
      c->evaluate(cycle_);
    }
    for (auto* c : components_) {
      c->commit(cycle_);
    }
    ++cycle_;
  }

  /// Advance `n` cycles.
  void run(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) {
      step();
    }
  }

  /// Advance until `done()` returns true or `max_cycles` elapse; returns the
  /// number of cycles actually simulated.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles) {
    std::uint64_t n = 0;
    while (n < max_cycles && !done()) {
      step();
      ++n;
    }
    return n;
  }

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }
  [[nodiscard]] double frequency_hz() const { return frequency_hz_; }
  [[nodiscard]] double time_s() const {
    return static_cast<double>(cycle_) / frequency_hz_;
  }

 private:
  double frequency_hz_;
  std::uint64_t cycle_ = 0;
  std::vector<CycleComponent*> components_;
};

}  // namespace optiplet::sim
