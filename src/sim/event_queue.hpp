#pragma once
/// \file event_queue.hpp
/// Discrete-event kernel for the transaction-level system simulator.
///
/// Continuous time (seconds, double). Events scheduled at equal times fire in
/// insertion order (a monotone sequence number breaks ties), which keeps the
/// system simulator deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/require.hpp"

namespace optiplet::sim {

/// Min-heap of (time, seq) → callback. Not thread-safe by design: the
/// transaction simulator is single-threaded.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t` (seconds); t must not precede now().
  void schedule_at(double t, Callback cb) {
    OPTIPLET_REQUIRE(t >= now_, "cannot schedule in the past");
    heap_.push(Entry{t, next_seq_++, std::move(cb)});
    if (heap_.size() > peak_size_) {
      peak_size_ = heap_.size();
    }
  }

  /// Schedule `cb` `dt` seconds from now; dt must be non-negative.
  void schedule_in(double dt, Callback cb) {
    OPTIPLET_REQUIRE(dt >= 0.0, "negative delay");
    schedule_at(now_ + dt, std::move(cb));
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] double now() const { return now_; }

  /// Self-profiling: events executed so far and the deepest the heap has
  /// been. Both are deterministic (pure functions of the schedule), so they
  /// may surface in reports that determinism tests compare.
  [[nodiscard]] std::uint64_t processed() const { return processed_; }
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }

  /// Pop and run the earliest event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) {
      return false;
    }
    // Copy out before pop so the callback may schedule new events.
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.time;
    ++processed_;
    e.cb();
    return true;
  }

  /// Run until empty or `max_events` processed; returns events processed.
  std::uint64_t run(std::uint64_t max_events = ~0ULL) {
    std::uint64_t n = 0;
    while (n < max_events && step()) {
      ++n;
    }
    return n;
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Callback cb;

    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
  std::uint64_t processed_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace optiplet::sim
