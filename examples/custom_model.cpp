/// \file custom_model.cpp
/// Define a custom CNN with dnn::GraphBuilder and evaluate it on the 2.5D
/// photonic platform — the workflow a user follows for a network that is
/// not in the Table-2 zoo. The example builds a small VGG-style CIFAR
/// classifier with a residual block.

#include <cstdio>

#include "core/system_simulator.hpp"
#include "dnn/graph.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;
  using dnn::Padding;

  // --- Build: 32x32x3 input, three conv stages, one residual block. ---
  dnn::GraphBuilder g("TinyResNet-CIFAR", {32, 32, 3});
  auto x = g.conv2d(g.input_id(), 32, 3, 1, Padding::kSame, false, "stem");
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.max_pool(x, 2, 2, Padding::kValid);

  // Residual block at 16x16x32.
  auto skip = x;
  x = g.conv2d(x, 32, 3, 1, Padding::kSame, false);
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.conv2d(x, 32, 3, 1, Padding::kSame, false);
  x = g.batch_norm(x);
  x = g.add({x, skip});
  x = g.relu(x);

  x = g.conv2d(x, 64, 5, 2, Padding::kSame, false, "downsample5x5");
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.global_avg_pool(x);
  x = g.dense(x, 10, true, "classifier");
  const dnn::Model model = std::move(g).build();

  std::printf("%s: %zu conv layers, %zu fc layers, %s parameters, %.1f "
              "MMACs\n\n",
              model.name().c_str(), model.conv_layer_count(),
              model.fc_layer_count(),
              util::format_grouped(model.total_params()).c_str(),
              static_cast<double>(model.total_macs()) / 1e6);

  // --- Evaluate on all three architectures. ---
  const core::SystemSimulator simulator(core::default_system_config());
  util::TextTable t({"Architecture", "Latency (us)", "Power (W)",
                     "EPB (pJ/bit)"});
  for (const auto arch : {accel::Architecture::kMonolithicCrossLight,
                          accel::Architecture::kElec2p5D,
                          accel::Architecture::kSiph2p5D}) {
    const auto r = simulator.run(model, arch);
    t.add_row({accel::to_string(arch),
               util::format_fixed(r.latency_s * 1e6, 2),
               util::format_fixed(r.average_power_w, 2),
               util::format_fixed(r.epb_j_per_bit * 1e12, 1)});
  }
  std::fputs(t.render().c_str(), stdout);

  // --- Per-layer mapping report for the photonic platform. ---
  const auto r = simulator.run(model, accel::Architecture::kSiph2p5D);
  std::printf("\nPer-layer breakdown on 2.5D-CrossLight-SiPh:\n");
  util::TextTable layers({"Layer", "Mapped to", "Chiplets", "Compute (us)",
                          "Read (us)", "Total (us)", "Gateways"});
  for (const auto& l : r.layers) {
    layers.add_row({model.layers()[l.layer_index].name,
                    accel::to_string(l.group),
                    std::to_string(l.chiplets_used),
                    util::format_fixed(l.compute_s * 1e6, 3),
                    util::format_fixed(l.read_s * 1e6, 3),
                    util::format_fixed(l.total_s * 1e6, 3),
                    std::to_string(l.gateways_per_chiplet)});
  }
  std::fputs(layers.render().c_str(), stdout);
  std::printf(
      "\nNote how 3x3 convs land on the 3x3-MAC chiplets, the 5x5\n"
      "downsample on the 5x5 chiplets, and the classifier on the dense\n"
      "units — the paper's heterogeneous mapping (Section V).\n");
  return 0;
}
