/// \file interposer_reconfiguration_trace.cpp
/// Watch ReSiPI at work: per-layer trace of the active gateway count while
/// ResNet50 runs on the photonic interposer. The alternation between
/// 1x1-conv layers (dense-unit chiplets) and 3x3-conv layers (3x3 chiplets)
/// drives the controller's activations back and forth.

#include <cstdio>
#include <string>

#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;

  const core::SystemSimulator sim(core::default_system_config());
  const auto model = dnn::zoo::make_resnet50();
  const auto r = sim.run(model, accel::Architecture::kSiph2p5D);

  std::printf(
      "ReSiPI gateway-activation trace: %s on 2.5D-CrossLight-SiPh\n"
      "(first 40 compute layers; bar = gateways per assigned chiplet)\n\n",
      model.name().c_str());

  util::TextTable t({"#", "Layer", "Group", "Gateways", "Activity",
                     "Layer time (us)"});
  std::size_t shown = 0;
  for (std::size_t i = 0; i < r.layers.size() && shown < 40; ++i, ++shown) {
    const auto& l = r.layers[i];
    t.add_row({std::to_string(i), model.layers()[l.layer_index].name,
               accel::to_string(l.group),
               std::to_string(l.gateways_per_chiplet),
               std::string(l.gateways_per_chiplet, '#'),
               util::format_fixed(l.total_s * 1e6, 2)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nTotals: %llu PCM gateway reconfigurations, %.2f nJ of PCM write\n"
      "energy, %.1f mean active gateways across the platform (max 32).\n",
      static_cast<unsigned long long>(r.resipi_reconfigurations),
      r.resipi_energy_j * 1e9, r.mean_active_gateways);

  // Contrast with a small model: the controller stays at the floor.
  const auto lenet = sim.run(dnn::zoo::make_lenet5(),
                             accel::Architecture::kSiph2p5D);
  std::printf(
      "\nLeNet5 for contrast: %.1f mean active gateways, %llu "
      "reconfigurations\n— the Fig. 7(a) effect: ReSiPI parks the network "
      "for small models.\n",
      lenet.mean_active_gateways,
      static_cast<unsigned long long>(lenet.resipi_reconfigurations));
  return 0;
}
