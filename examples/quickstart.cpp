/// \file quickstart.cpp
/// Smallest end-to-end use of the library: build the default Table-1
/// platform, run ResNet50 on all three architectures, print the summary.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;

  // 1. The default configuration reproduces Table 1 of the paper.
  const core::SystemConfig config = core::default_system_config();
  const core::SystemSimulator simulator(config);

  // 2. Pick a workload from the Table-2 model zoo (or build your own with
  //    dnn::GraphBuilder — see examples/custom_model.cpp).
  const dnn::Model model = dnn::zoo::make_resnet50();
  std::printf("Model: %s — %zu conv, %zu fc, %s parameters\n\n",
              model.name().c_str(), model.conv_layer_count(),
              model.fc_layer_count(),
              util::format_grouped(model.total_params()).c_str());

  // 3. Run one inference on each architecture.
  util::TextTable t({"Architecture", "Latency (ms)", "Avg power (W)",
                     "Energy (mJ)", "EPB (pJ/bit)"});
  for (const auto arch : {accel::Architecture::kMonolithicCrossLight,
                          accel::Architecture::kElec2p5D,
                          accel::Architecture::kSiph2p5D}) {
    const core::RunResult r = simulator.run(model, arch);
    t.add_row({accel::to_string(arch),
               util::format_fixed(r.latency_s * 1e3, 3),
               util::format_fixed(r.average_power_w, 2),
               util::format_fixed(r.energy_j * 1e3, 2),
               util::format_fixed(r.epb_j_per_bit * 1e12, 1)});
  }
  std::fputs(t.render().c_str(), stdout);

  // 4. Inspect the energy breakdown of the photonic run.
  const core::RunResult siph =
      simulator.run(model, accel::Architecture::kSiph2p5D);
  std::printf("\n2.5D-SiPh energy breakdown:\n");
  for (const auto& [category, entry] : siph.ledger.entries()) {
    std::printf("  %-24s %8.3f mJ\n", category.c_str(),
                entry.dynamic_energy_j * 1e3);
  }
  std::printf("\nReSiPI: %llu gateway reconfigurations, %.1f active "
              "gateways on average (of %zu)\n",
              static_cast<unsigned long long>(siph.resipi_reconfigurations),
              siph.mean_active_gateways, std::size_t{32});
  return 0;
}
