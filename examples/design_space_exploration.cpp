/// \file design_space_exploration.cpp
/// The §VII open-challenge workflow, driven through the core::dse API:
/// sweep (wavelength count x gateways per chiplet x modulation format),
/// evaluate averages across the model zoo, and report the Pareto-efficient
/// photonic interposer configurations.

#include <cstdio>

#include "core/dse.hpp"
#include "util/table.hpp"

int main() {
  using namespace optiplet;

  core::DseOptions options;
  options.wavelengths = {16, 32, 64, 128};
  options.gateways_per_chiplet = {1, 2, 4, 8};
  options.modulations = {photonics::ModulationFormat::kOok,
                         photonics::ModulationFormat::kPam4};

  const auto points =
      core::explore(options, core::default_system_config());

  std::printf(
      "Design-space exploration of the photonic interposer\n"
      "(averages across the 5 Table-2 models; * = Pareto-efficient on\n"
      "latency/power; spectrally infeasible points are pre-filtered)\n\n");
  util::TextTable t({"Wavelengths", "Gateways/chiplet", "Modulation",
                     "Avg latency (ms)", "Avg power (W)",
                     "Avg EPB (pJ/bit)", "Pareto"});
  for (const auto& p : points) {
    t.add_row({std::to_string(p.wavelengths),
               std::to_string(p.gateways_per_chiplet),
               photonics::to_string(p.modulation),
               util::format_fixed(p.latency_s * 1e3, 3),
               util::format_fixed(p.power_w, 2),
               util::format_fixed(p.epb_j_per_bit * 1e12, 1),
               p.pareto ? "*" : ""});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nThe Table-1 design point (64 wavelengths, 4 gateways, OOK) sits\n"
      "on or near the Pareto front — the paper's configuration is a\n"
      "sensible balance. PAM-4 variants extend the frontier toward lower\n"
      "latency at visibly higher power (the §II multilevel option [44]),\n"
      "and configurations whose MRG rows exceed the ring FSR are excluded\n"
      "as physically unrealizable (open challenge 3 of Section VII).\n");
  return 0;
}
