/// \file photonic_link_budget.cpp
/// Device-level view: print the optical link budgets behind the system
/// numbers — the SWMR broadcast path, the SWSR write path, and a compute
/// chiplet's broadcast-and-weight bus — with the laser power each implies.
/// This is the bridge from Fig. 1/2/5 device physics to Table 3 watts.

#include <cstdio>

#include "accel/platform.hpp"
#include "core/system_config.hpp"
#include "noc/photonic_interposer.hpp"
#include "photonics/thermal.hpp"
#include "util/table.hpp"

namespace {

void print_budget(const char* title,
                  const optiplet::photonics::LinkBudget& budget) {
  using namespace optiplet;
  std::printf("%s\n", title);
  util::TextTable t({"Loss element", "dB"});
  for (const auto& e : budget.elements()) {
    t.add_row({e.name, util::format_fixed(e.loss_db, 2)});
  }
  t.add_separator();
  t.add_row({"TOTAL", util::format_fixed(budget.total_loss_db(), 2)});
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace optiplet;

  const core::SystemConfig cfg = core::default_system_config();
  const noc::PhotonicInterposer interposer(cfg.photonic, cfg.tech.photonic);

  print_budget("SWMR broadcast path (memory writer -> farthest reader):",
               interposer.swmr_budget());
  std::printf("  -> required laser power per wavelength: %.3f mW\n",
              interposer.swmr_laser_power_per_wavelength_w() * 1e3);
  std::printf("  -> electrical power, 64 wavelengths lit: %.2f W\n\n",
              interposer.laser_electrical_power_w(64, 0));

  print_budget("SWSR write path (compute writer -> memory filter row):",
               interposer.swsr_budget());
  std::printf("  -> required laser power per wavelength: %.3f mW\n\n",
              interposer.swsr_laser_power_per_wavelength_w() * 1e3);

  const accel::Platform platform(cfg.compute_2p5d, cfg.tech);
  for (const auto& group : platform.groups()) {
    std::printf("Compute bus, %s chiplet (%u units, %u per bus):\n",
                accel::to_string(group.chiplet.kind()),
                group.chiplet.unit_count(),
                group.chiplet.design().units_per_bus);
    print_budget("", group.chiplet.bus_budget());
    std::printf(
        "  -> %.3f mW per wavelength, %.2f W electrical per chiplet\n\n",
        group.chiplet.laser_power_per_wavelength_w() * 1e3,
        group.chiplet.laser_electrical_power_w());
  }

  const accel::Platform mono(accel::make_monolithic_spec(1), cfg.tech);
  std::printf(
      "Monolithic die comparison (same units, big-die geometry):\n");
  util::TextTable t({"Unit group", "2.5D laser (W)", "Monolithic laser (W)",
                     "Penalty"});
  for (std::size_t i = 0; i < platform.groups().size(); ++i) {
    const auto& p25 = platform.groups()[i];
    const auto& m = mono.groups()[i];
    const double w25 =
        p25.chiplet.laser_electrical_power_w() * p25.chiplet_count;
    const double wm = m.chiplet.laser_electrical_power_w();
    t.add_row({accel::to_string(p25.chiplet.kind()),
               util::format_fixed(w25, 2), util::format_fixed(wm, 2),
               util::format_fixed(wm / w25, 2) + "x"});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf(
      "\nThe monolithic penalty (longer buses, more units per bus, more\n"
      "crossings) is the §V scalability argument in device-level numbers.\n");

  // --- Thermal sensitivity: holding a 16-ring MRG row on its channels ---
  const photonics::ThermalModel thermal;
  std::printf(
      "\nThermal hold power of a 16-ring MRG row vs chip temperature\n"
      "(calibrated at 300 K; a ring escapes its channel at %.1f K):\n",
      photonics::channel_escape_temperature_k(thermal));
  util::TextTable th({"Temperature (K)", "Drift (pm)", "Per ring (mW)",
                      "16-ring bank w/ crosstalk (mW)"});
  for (const double temp : {300.0, 305.0, 310.0, 320.0, 330.0, 340.0}) {
    th.add_row(
        {util::format_fixed(temp, 0),
         util::format_fixed(
             photonics::thermal_drift_m(thermal, temp) * 1e12, 0),
         util::format_fixed(
             photonics::hold_power_w(thermal, cfg.tech.photonic.tuning,
                                     temp) *
                 1e3,
             3),
         util::format_fixed(
             photonics::bank_hold_power_w(
                 thermal, cfg.tech.photonic.tuning, temp, 16) *
                 1e3,
             2)});
  }
  std::fputs(th.render().c_str(), stdout);
  std::printf(
      "\nA chiplet running 40 K hot multiplies its ring-tuning power\n"
      "several-fold — the device-level driver behind CrossLight's\n"
      "thermal-aware tuning-circuit co-design [21].\n");
  return 0;
}
