#include "dnn/workload.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "dnn/zoo.hpp"

namespace optiplet::dnn {
namespace {

TEST(Workload, OnlyComputeLayersIncluded) {
  const Model m = zoo::make_lenet5();
  const Workload w = compute_workload(m, 8);
  EXPECT_EQ(w.layers.size(), 5u);  // 3 conv + 2 fc
}

TEST(Workload, TotalsMatchModel) {
  const Model m = zoo::make_resnet50();
  const Workload w = compute_workload(m, 8);
  std::uint64_t macs = 0;
  for (const auto& l : w.layers) {
    macs += l.macs;
  }
  EXPECT_EQ(macs, w.total_macs);
  // Compute-layer MACs dominate the model total (BN adds a small tail).
  EXPECT_GT(w.total_macs, m.total_macs() * 9 / 10);
}

TEST(Workload, WeightBitsScaleWithPrecision) {
  const Model m = zoo::make_lenet5();
  const Workload w8 = compute_workload(m, 8);
  const Workload w4 = compute_workload(m, 4);
  EXPECT_EQ(w8.total_weight_bits, 2 * w4.total_weight_bits);
}

TEST(Workload, DotLengthsMatchLayerKind) {
  const Model m = zoo::make_mobilenetv2();
  const Workload w = compute_workload(m, 8);
  for (const auto& l : w.layers) {
    switch (l.kind) {
      case LayerKind::kDepthwiseConv2d:
        EXPECT_EQ(l.dot_length, 9u);
        break;
      case LayerKind::kConv2d:
        EXPECT_EQ(l.dot_length % (l.kernel * l.kernel), 0u);
        break;
      case LayerKind::kDense:
        EXPECT_GT(l.dot_length, 0u);
        break;
      default:
        FAIL() << "non-compute layer in workload";
    }
    EXPECT_EQ(l.dot_count * l.dot_length, l.macs);
  }
}

TEST(Workload, TrafficIsWeightsPlusActivations) {
  const Model m = zoo::make_vgg16();
  const Workload w = compute_workload(m, 8);
  EXPECT_EQ(w.total_traffic_bits(),
            w.total_weight_bits + w.total_activation_bits);
  // VGG16 weights (8-bit) are ~1.1 Gb.
  EXPECT_NEAR(static_cast<double>(w.total_weight_bits), 1.107e9, 0.01e9);
}

TEST(Workload, ActivationTrafficNontrivialForMobileNet) {
  // MobileNetV2 is activation-dominated: its expansion layers blow up the
  // intermediate tensors while weights stay small.
  const Workload w = compute_workload(zoo::make_mobilenetv2(), 8);
  EXPECT_GT(w.total_activation_bits, 2 * w.total_weight_bits);
}

TEST(Workload, VggIsWeightDominated) {
  const Workload w = compute_workload(zoo::make_vgg16(), 8);
  EXPECT_GT(w.total_weight_bits, 2 * w.total_activation_bits);
}

TEST(Workload, RejectsBadPrecision) {
  const Model m = zoo::make_lenet5();
  EXPECT_THROW(compute_workload(m, 0), std::invalid_argument);
  EXPECT_THROW(compute_workload(m, 64), std::invalid_argument);
}

TEST(Workload, LayerIndicesPointIntoModel) {
  const Model m = zoo::make_densenet121();
  const Workload w = compute_workload(m, 8);
  for (const auto& l : w.layers) {
    ASSERT_LT(l.layer_index, m.layers().size());
    EXPECT_TRUE(m.layers()[l.layer_index].is_compute());
  }
}

/// Property sweep: for every zoo model, per-layer invariants hold.
class WorkloadModelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadModelSweep, PerLayerInvariants) {
  const Model m = zoo::by_name(GetParam());
  const Workload w = compute_workload(m, 8);
  for (const auto& l : w.layers) {
    ASSERT_GT(l.macs, 0u);
    ASSERT_GT(l.weight_bits, 0u);
    ASSERT_GT(l.input_bits, 0u);
    ASSERT_GT(l.output_bits, 0u);
    ASSERT_GT(l.dot_length, 0u);
    // A dot product cannot be longer than the work it contributes.
    ASSERT_LE(l.dot_length, l.macs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooModels, WorkloadModelSweep,
                         ::testing::Values("LeNet5", "ResNet50",
                                           "DenseNet121", "VGG16",
                                           "MobileNetV2"));

}  // namespace
}  // namespace optiplet::dnn
