#include "dnn/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "dnn/workload.hpp"
#include "dnn/zoo.hpp"

namespace optiplet::dnn {
namespace {

TEST(ModelRegistry, CatalogOrderIsPaperCnnsThenTransformer) {
  const auto& registry = ModelRegistry::instance();
  const std::vector<std::string> expected = {"LeNet5",      "ResNet50",
                                             "DenseNet121", "VGG16",
                                             "MobileNetV2", "TinyGPT"};
  EXPECT_EQ(registry.names(), expected);
  // The CNN view preserves the historical Table-2 iteration order.
  const std::vector<std::string> cnns = {"LeNet5", "ResNet50",
                                         "DenseNet121", "VGG16",
                                         "MobileNetV2"};
  EXPECT_EQ(registry.names(ModelFamily::kCnn), cnns);
  EXPECT_EQ(zoo::model_names(), cnns);
  EXPECT_EQ(registry.names(ModelFamily::kTransformer),
            std::vector<std::string>{"TinyGPT"});
}

TEST(ModelRegistry, CnnFactoriesMatchZooBuildersBitIdentically) {
  // The registry replaced the hand-enumerated make_*() switch; the graphs
  // it constructs must be indistinguishable from the zoo builders' —
  // layer for layer, parameter for parameter — so every downstream
  // workload and simulation result is unchanged.
  const auto& registry = ModelRegistry::instance();
  const std::vector<Model> direct = {
      zoo::make_lenet5(), zoo::make_resnet50(), zoo::make_densenet121(),
      zoo::make_vgg16(), zoo::make_mobilenetv2()};
  const auto names = registry.names(ModelFamily::kCnn);
  ASSERT_EQ(direct.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const Model from_registry = registry.at(names[i]).factory();
    const Model from_lookup = zoo::by_name(names[i]);
    const Model& reference = direct[i];
    ASSERT_EQ(from_registry.layers().size(), reference.layers().size())
        << names[i];
    for (std::size_t l = 0; l < reference.layers().size(); ++l) {
      const Layer& a = from_registry.layers()[l];
      const Layer& b = reference.layers()[l];
      EXPECT_EQ(a.kind, b.kind) << names[i] << " layer " << l;
      EXPECT_EQ(a.param_count, b.param_count) << names[i] << " layer " << l;
      EXPECT_EQ(a.mac_count, b.mac_count) << names[i] << " layer " << l;
      EXPECT_EQ(a.output_shape, b.output_shape)
          << names[i] << " layer " << l;
    }
    EXPECT_EQ(from_registry.total_params(), reference.total_params());
    EXPECT_EQ(from_lookup.total_params(), reference.total_params());
    // Same totals through the traffic accounting the simulator prices.
    const Workload wa = compute_workload(from_registry, 8);
    const Workload wb = compute_workload(reference, 8);
    EXPECT_EQ(wa.total_macs, wb.total_macs) << names[i];
    EXPECT_EQ(wa.total_traffic_bits(), wb.total_traffic_bits()) << names[i];
  }
}

TEST(ModelRegistry, MetadataIsDerivedFromOneBuild) {
  const auto& registry = ModelRegistry::instance();
  for (const ModelInfo& info : registry.models()) {
    const Model built = info.factory();
    EXPECT_EQ(info.params, built.total_params()) << info.name;
    EXPECT_EQ(info.input_shape,
              built.layers().front().input_shape)
        << info.name;
    const bool is_transformer = info.family == ModelFamily::kTransformer;
    EXPECT_EQ(info.transformer.has_value(), is_transformer) << info.name;
  }
}

TEST(ModelRegistry, FindAndAtAgreeAndUnknownNamesFailFast) {
  const auto& registry = ModelRegistry::instance();
  EXPECT_NE(registry.find("LeNet5"), nullptr);
  EXPECT_EQ(registry.find("lenet5"), nullptr);  // case-sensitive
  EXPECT_EQ(registry.find("NoSuchModel"), nullptr);
  try {
    (void)registry.at("NoSuchModel");
    FAIL() << "at() must throw for unknown names";
  } catch (const std::invalid_argument& e) {
    // The error lists the catalog so CLI users see their options.
    const std::string what = e.what();
    EXPECT_NE(what.find("NoSuchModel"), std::string::npos);
    EXPECT_NE(what.find("LeNet5"), std::string::npos);
    EXPECT_NE(what.find("TinyGPT"), std::string::npos);
  }
  EXPECT_THROW((void)zoo::by_name("NoSuchModel"), std::invalid_argument);
}

TEST(ModelRegistry, TransformerEntryCarriesPhaseSpec) {
  const ModelInfo& info = ModelRegistry::instance().at("TinyGPT");
  EXPECT_EQ(info.family, ModelFamily::kTransformer);
  ASSERT_TRUE(info.transformer.has_value());
  EXPECT_EQ(info.transformer->d_model, tiny_gpt_spec().d_model);
  EXPECT_EQ(info.transformer->default_context,
            tiny_gpt_spec().default_context);
  // The zoo's fixed-shape build is the prefill graph at default context.
  const Model fixed = info.factory();
  const Model prefill =
      make_prefill_graph(*info.transformer, info.transformer->default_context);
  EXPECT_EQ(fixed.total_params(), prefill.total_params());
  EXPECT_EQ(fixed.total_macs(), prefill.total_macs());
}

}  // namespace
}  // namespace optiplet::dnn
