#include "dnn/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::dnn {
namespace {

TEST(ShapeInference, SamePaddingCeilDivision) {
  EXPECT_EQ(conv_output_dim(224, 7, 2, Padding::kSame), 112u);
  EXPECT_EQ(conv_output_dim(112, 3, 2, Padding::kSame), 56u);
  EXPECT_EQ(conv_output_dim(7, 3, 1, Padding::kSame), 7u);
}

TEST(ShapeInference, ValidPadding) {
  EXPECT_EQ(conv_output_dim(32, 5, 1, Padding::kValid), 28u);
  EXPECT_EQ(conv_output_dim(28, 2, 2, Padding::kValid), 14u);
  EXPECT_EQ(conv_output_dim(5, 5, 1, Padding::kValid), 1u);
}

TEST(ShapeInference, ValidPaddingRejectsOversizedKernel) {
  EXPECT_THROW(conv_output_dim(3, 5, 1, Padding::kValid),
               std::invalid_argument);
}

TEST(GraphBuilder, ConvShapeAndParams) {
  GraphBuilder g("t", {32, 32, 3});
  const TensorId c = g.conv2d(g.input_id(), 6, 5, 1, Padding::kValid, true);
  EXPECT_EQ(g.shape_of(c), (TensorShape{28, 28, 6}));
  // (5*5*3 + 1) * 6 = 456 — the LeNet5 C1 layer of Table 2.
  Model m = std::move(g).build();
  EXPECT_EQ(m.layers().back().param_count, 456u);
  EXPECT_EQ(m.layers().back().mac_count,
            28ull * 28 * 6 * 5 * 5 * 3);
}

TEST(GraphBuilder, ConvWithoutBias) {
  GraphBuilder g("t", {8, 8, 4});
  g.conv2d(g.input_id(), 16, 3, 1, Padding::kSame, false);
  Model m = std::move(g).build();
  EXPECT_EQ(m.layers().back().param_count, 3ull * 3 * 4 * 16);
}

TEST(GraphBuilder, DepthwiseConvParamsAndMacs) {
  GraphBuilder g("t", {16, 16, 32});
  g.depthwise_conv2d(g.input_id(), 3, 1, Padding::kSame, false);
  Model m = std::move(g).build();
  const Layer& l = m.layers().back();
  EXPECT_EQ(l.param_count, 3ull * 3 * 32);
  EXPECT_EQ(l.mac_count, 16ull * 16 * 32 * 9);
  EXPECT_EQ(l.output_shape.c, 32u);
}

TEST(GraphBuilder, DenseParamsAndShape) {
  GraphBuilder g("t", {1, 1, 100});
  g.dense(g.input_id(), 10, true);
  Model m = std::move(g).build();
  EXPECT_EQ(m.layers().back().param_count, 1010u);
  EXPECT_EQ(m.layers().back().output_shape, (TensorShape{1, 1, 10}));
}

TEST(GraphBuilder, BatchNormCountsFourPerChannel) {
  GraphBuilder g("t", {8, 8, 64});
  g.batch_norm(g.input_id());
  Model m = std::move(g).build();
  EXPECT_EQ(m.layers().back().param_count, 256u);  // Keras "Total params"
}

TEST(GraphBuilder, PoolingShapes) {
  GraphBuilder g("t", {28, 28, 6});
  const TensorId p = g.max_pool(g.input_id(), 2, 2, Padding::kValid);
  EXPECT_EQ(g.shape_of(p), (TensorShape{14, 14, 6}));
  const TensorId q = g.avg_pool(p, 2, 2, Padding::kValid);
  EXPECT_EQ(g.shape_of(q), (TensorShape{7, 7, 6}));
  const TensorId r = g.global_avg_pool(q);
  EXPECT_EQ(g.shape_of(r), (TensorShape{1, 1, 6}));
}

TEST(GraphBuilder, FlattenPreservesElements) {
  GraphBuilder g("t", {5, 5, 16});
  const TensorId f = g.flatten(g.input_id());
  EXPECT_EQ(g.shape_of(f), (TensorShape{1, 1, 400}));
}

TEST(GraphBuilder, AddRequiresMatchingShapes) {
  GraphBuilder g("t", {8, 8, 16});
  const TensorId a = g.conv2d(g.input_id(), 16, 3, 1, Padding::kSame, true);
  const TensorId b = g.conv2d(g.input_id(), 16, 3, 1, Padding::kSame, true);
  const TensorId c = g.conv2d(g.input_id(), 8, 3, 1, Padding::kSame, true);
  EXPECT_NO_THROW(g.add({a, b}));
  EXPECT_THROW(g.add({a, c}), std::invalid_argument);
  EXPECT_THROW(g.add({a}), std::invalid_argument);
}

TEST(GraphBuilder, ConcatSumsChannels) {
  GraphBuilder g("t", {8, 8, 16});
  const TensorId a = g.conv2d(g.input_id(), 32, 1, 1, Padding::kValid, false);
  const TensorId c = g.concat({g.input_id(), a});
  EXPECT_EQ(g.shape_of(c), (TensorShape{8, 8, 48}));
}

TEST(GraphBuilder, ConcatRequiresMatchingSpatialDims) {
  GraphBuilder g("t", {8, 8, 16});
  const TensorId small = g.max_pool(g.input_id(), 2, 2, Padding::kValid);
  EXPECT_THROW(g.concat({g.input_id(), small}), std::invalid_argument);
}

TEST(GraphBuilder, ActivationIsParameterFree) {
  GraphBuilder g("t", {8, 8, 16});
  g.relu(g.input_id());
  Model m = std::move(g).build();
  EXPECT_EQ(m.layers().back().param_count, 0u);
  EXPECT_EQ(m.layers().back().mac_count, 0u);
}

TEST(Model, CountsComputeLayersOnly) {
  GraphBuilder g("t", {8, 8, 3});
  auto x = g.conv2d(g.input_id(), 4, 3, 1, Padding::kSame, true);
  x = g.batch_norm(x);
  x = g.relu(x);
  x = g.flatten(x);
  x = g.dense(x, 10, true);
  Model m = std::move(g).build();
  EXPECT_EQ(m.conv_layer_count(), 1u);
  EXPECT_EQ(m.fc_layer_count(), 1u);
  EXPECT_EQ(m.compute_layer_indices().size(), 2u);
}

TEST(Model, WeightBitsScaleWithPrecision) {
  GraphBuilder g("t", {1, 1, 10});
  g.dense(g.input_id(), 10, false);
  Model m = std::move(g).build();
  EXPECT_EQ(m.weight_bits(8), 800u);
  EXPECT_EQ(m.weight_bits(4), 400u);
}

TEST(Model, KernelSizeAccessor) {
  GraphBuilder g("t", {8, 8, 3});
  g.conv2d(g.input_id(), 4, 5, 1, Padding::kSame, true);
  g.dense(g.flatten(1), 10, true);
  Model m = std::move(g).build();
  EXPECT_EQ(m.layers()[1].kernel_size(), 5u);
  EXPECT_EQ(m.layers().back().kernel_size(), 0u);  // dense reports 0
}

TEST(GraphBuilder, RejectsInvalidIds) {
  GraphBuilder g("t", {8, 8, 3});
  EXPECT_THROW((void)g.shape_of(99), std::invalid_argument);
  EXPECT_THROW(g.conv2d(99, 4, 3, 1, Padding::kSame, true),
               std::invalid_argument);
}

TEST(GraphBuilder, RejectsDegenerateLayers) {
  GraphBuilder g("t", {8, 8, 3});
  EXPECT_THROW(g.conv2d(g.input_id(), 0, 3, 1, Padding::kSame, true),
               std::invalid_argument);
  EXPECT_THROW(g.dense(g.input_id(), 0, true), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::dnn
