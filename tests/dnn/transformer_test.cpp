#include "dnn/transformer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "dnn/workload.hpp"

namespace optiplet::dnn {
namespace {

/// Indices of the kAttention layers of `model`, execution order.
std::vector<const Layer*> attention_layers(const Model& model) {
  std::vector<const Layer*> out;
  for (const Layer& l : model.layers()) {
    if (l.kind == LayerKind::kAttention) {
      out.push_back(&l);
    }
  }
  return out;
}

TEST(Transformer, TinyGptParameterCountIsTokenIndependent) {
  // Hand-derived from the block structure (per block: 2 LayerNorms, four
  // d x d projections with bias, d x d_ff + d_ff x d FFN with bias; plus
  // the final LayerNorm): 8 * 3,152,384 + 1,024 = 25,220,096 — ~25.2M,
  // the "small GPT" scale. Weights are shared across tokens, so the count
  // must not depend on the sequence length the graph is built at.
  const TransformerSpec spec = tiny_gpt_spec();
  const Model at16 = make_prefill_graph(spec, 16);
  const Model at256 = make_prefill_graph(spec, 256);
  EXPECT_EQ(at16.total_params(), 25220096u);
  EXPECT_EQ(at256.total_params(), at16.total_params());
  // A decode step holds the same trained weights.
  EXPECT_EQ(make_decode_graph(spec, 64).total_params(),
            at16.total_params());
}

TEST(Transformer, CausalAttentionMacAccounting) {
  const TransformerSpec spec = tiny_gpt_spec();
  const std::uint64_t d = spec.d_model;
  // Prefill over S tokens with an empty KV cache: token i attends i + 1
  // positions, so attended = S(S+1)/2; QK^T and AV each cost d MACs per
  // attended position.
  const std::uint32_t S = 96;
  for (const Layer* attn : attention_layers(make_prefill_graph(spec, S))) {
    EXPECT_EQ(attn->mac_count,
              2ull * (static_cast<std::uint64_t>(S) * (S + 1) / 2) * d);
    EXPECT_EQ(attn->extra_stream_values, 0u);
    EXPECT_EQ(attn->heads, spec.heads);
  }
  // Decode: one fresh token over `kv` cached positions attends kv + 1.
  const std::uint32_t kv = 200;
  for (const Layer* attn : attention_layers(make_decode_graph(spec, kv))) {
    EXPECT_EQ(attn->mac_count, 2ull * (kv + 1) * d);
    // The cached K and V vectors stream in from memory.
    EXPECT_EQ(attn->extra_stream_values, 2ull * kv * d);
  }
}

TEST(Transformer, KvCacheReadLandsInWorkloadTraffic) {
  // The *only* difference between a decode step at kv and at 0 is the
  // cached-context attention: kv extra attended positions (2*kv*d MACs)
  // and the 2*kv*d-value KV read per block. Both must land in the
  // workload totals exactly — this is what makes decode bandwidth-bound
  // while its MAC count stays tiny.
  const TransformerSpec spec = tiny_gpt_spec();
  const unsigned bits = 8;
  const std::uint32_t kv = 512;
  const Workload cold = compute_workload(make_decode_graph(spec, 0), bits);
  const Workload warm = compute_workload(make_decode_graph(spec, kv), bits);
  const std::uint64_t per_block = 2ull * kv * spec.d_model;
  EXPECT_EQ(warm.total_macs - cold.total_macs, spec.blocks * per_block);
  EXPECT_EQ(warm.total_activation_bits - cold.total_activation_bits,
            spec.blocks * per_block * bits);
  // Weight traffic is identical: a decode step re-streams the same full
  // weight set no matter how long the context is.
  EXPECT_EQ(warm.total_weight_bits, cold.total_weight_bits);
}

TEST(Transformer, KvBytesPerToken) {
  const TransformerSpec spec = tiny_gpt_spec();
  // K and V, one d_model vector per block: 2 * 8 * 512 bytes at 8 bits.
  EXPECT_EQ(kv_bytes_per_token(spec, 8), 8192u);
  // Sub-byte precision rounds the footprint up to whole bytes.
  EXPECT_EQ(kv_bytes_per_token(spec, 4), 4096u);
  TransformerSpec odd = spec;
  odd.d_model = 3;
  odd.blocks = 1;
  EXPECT_EQ(kv_bytes_per_token(odd, 4), (2ull * 3 * 4 + 7) / 8);
}

TEST(Transformer, ContextWindowIsEnforced) {
  const TransformerSpec spec = tiny_gpt_spec();
  EXPECT_NO_THROW((void)make_prefill_graph(spec, spec.max_context));
  EXPECT_THROW((void)make_prefill_graph(spec, spec.max_context + 1),
               std::invalid_argument);
  // A decode step's total context is kv + 1.
  EXPECT_NO_THROW((void)make_decode_graph(spec, spec.max_context - 1));
  EXPECT_THROW((void)make_decode_graph(spec, spec.max_context),
               std::invalid_argument);
  EXPECT_THROW((void)make_prefill_graph(spec, 0), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::dnn
