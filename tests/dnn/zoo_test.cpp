#include "dnn/zoo.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

namespace optiplet::dnn::zoo {
namespace {

/// THE Table-2 reproduction test: model name -> (CONV layers, FC layers,
/// exact Keras "Total params"). These are the paper's numbers verbatim.
using Table2Row = std::tuple<const char*, std::size_t, std::size_t,
                             std::uint64_t>;

class Table2 : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2, ConvFcAndParameterCountsExact) {
  const auto& [name, convs, fcs, params] = GetParam();
  const Model m = by_name(name);
  EXPECT_EQ(m.conv_layer_count(), convs) << name;
  EXPECT_EQ(m.fc_layer_count(), fcs) << name;
  EXPECT_EQ(m.total_params(), params) << name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Table2,
    ::testing::Values(Table2Row{"LeNet5", 3, 2, 62'006},
                      Table2Row{"ResNet50", 53, 1, 25'636'712},
                      Table2Row{"DenseNet121", 120, 1, 8'062'504},
                      Table2Row{"VGG16", 13, 3, 138'357'544},
                      Table2Row{"MobileNetV2", 52, 1, 3'538'984}));

TEST(Zoo, AllModelsReturnsPaperOrder) {
  const auto models = all_models();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0].name(), "LeNet5");
  EXPECT_EQ(models[1].name(), "ResNet50");
  EXPECT_EQ(models[2].name(), "DenseNet121");
  EXPECT_EQ(models[3].name(), "VGG16");
  EXPECT_EQ(models[4].name(), "MobileNetV2");
}

TEST(Zoo, ByNameRejectsUnknown) {
  EXPECT_THROW(by_name("AlexNet"), std::invalid_argument);
  EXPECT_THROW(by_name("resnet50"), std::invalid_argument);  // case matters
}

TEST(Zoo, ModelNamesMatchesAllModels) {
  const auto names = model_names();
  const auto models = all_models();
  ASSERT_EQ(names.size(), models.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], models[i].name());
  }
}

// --- MAC counts against the published per-model compute volumes ---

TEST(ZooMacs, ResNet50AboutFourGigaMacs) {
  const auto m = make_resnet50();
  EXPECT_NEAR(static_cast<double>(m.total_macs()), 3.87e9, 0.15e9);
}

TEST(ZooMacs, Vgg16AboutFifteenGigaMacs) {
  const auto m = make_vgg16();
  EXPECT_NEAR(static_cast<double>(m.total_macs()), 15.47e9, 0.2e9);
}

TEST(ZooMacs, MobileNetV2AboutThreeHundredMegaMacs) {
  const auto m = make_mobilenetv2();
  EXPECT_NEAR(static_cast<double>(m.total_macs()), 3.07e8, 0.2e8);
}

TEST(ZooMacs, DenseNet121AboutThreeGigaMacs) {
  const auto m = make_densenet121();
  EXPECT_NEAR(static_cast<double>(m.total_macs()), 2.85e9, 0.15e9);
}

TEST(ZooMacs, LeNetUnderAMegaMac) {
  const auto m = make_lenet5();
  EXPECT_LT(m.total_macs(), 1'000'000u);
  EXPECT_GT(m.total_macs(), 400'000u);
}

// --- Architecture structure spot checks ---

TEST(ZooStructure, ResNet50EndsIn2048Features) {
  const auto m = make_resnet50();
  // The dense classifier's fan-in is the conv5 channel width.
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kDense) {
      EXPECT_EQ(l.input_shape.c, 2048u);
      EXPECT_EQ(l.output_shape.c, 1000u);
    }
  }
}

TEST(ZooStructure, DenseNet121EndsIn1024Features) {
  const auto m = make_densenet121();
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kDense) {
      EXPECT_EQ(l.input_shape.c, 1024u);
    }
  }
}

TEST(ZooStructure, Vgg16ClassifierDominatesParams) {
  const auto m = make_vgg16();
  std::uint64_t fc_params = 0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kDense) {
      fc_params += l.param_count;
    }
  }
  // The three FC layers hold ~89% of VGG16's parameters.
  EXPECT_GT(static_cast<double>(fc_params),
            0.85 * static_cast<double>(m.total_params()));
}

TEST(ZooStructure, MobileNetV2HasResidualAdds) {
  const auto m = make_mobilenetv2();
  std::size_t adds = 0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kAdd) {
      ++adds;
    }
  }
  // Inverted residual blocks with stride 1 and matching widths: 10 of 17.
  EXPECT_EQ(adds, 10u);
}

TEST(ZooStructure, DenseNetHasConcatPerDenseLayer) {
  const auto m = make_densenet121();
  std::size_t concats = 0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kConcat) {
      ++concats;
    }
  }
  EXPECT_EQ(concats, 6u + 12u + 24u + 16u);
}

TEST(ZooStructure, LeNetUsesCifarLikeInput) {
  // Table 2's 62,006 pins the 3-channel 32x32 input (DESIGN.md).
  const auto m = make_lenet5();
  EXPECT_EQ(m.layers().front().output_shape, (TensorShape{32, 32, 3}));
}

TEST(ZooStructure, MobileNetDepthwiseLayersCounted) {
  const auto m = make_mobilenetv2();
  std::size_t dw = 0;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kDepthwiseConv2d) {
      ++dw;
    }
  }
  EXPECT_EQ(dw, 17u);  // one per inverted-residual block
}

TEST(ZooStructure, ResNetSpatialPyramid) {
  // Input 224 -> conv1/2 -> 112 -> pool/2 -> 56 -> stages -> 7 before GAP.
  const auto m = make_resnet50();
  const Layer* last_conv = nullptr;
  for (const auto& l : m.layers()) {
    if (l.kind == LayerKind::kConv2d) {
      last_conv = &l;
    }
  }
  ASSERT_NE(last_conv, nullptr);
  EXPECT_EQ(last_conv->output_shape.h, 7u);
}

}  // namespace
}  // namespace optiplet::dnn::zoo
