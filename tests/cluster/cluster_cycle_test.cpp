#include "cluster/cluster_simulator.hpp"

#include <gtest/gtest.h>

#include "core/system_config.hpp"
#include "serve/serving_simulator.hpp"

namespace optiplet::cluster {
namespace {

/// Rack-on-cycle-fidelity coverage: every package's service-time oracle
/// drives the cycle-accurate photonic interposer. Labeled `slow` in CMake
/// (with the other cycle-accurate tests) so the sanitizer CI legs skip it.
TEST(ClusterCycleFidelity, RackIsDeterministicAcrossThreadsAtCycleFidelity) {
  ClusterConfig config;
  config.system = core::default_system_config();
  config.system.fidelity = core::Fidelity::kCycleAccurate;
  config.serving.tenant_mix = "LeNet5+MobileNetV2";
  config.serving.arrival_rps = 600.0;
  config.serving.requests = 120;
  config.cluster.packages = 2;
  config.cluster.balancer = BalancerPolicy::kLeastLoaded;
  config.cluster.replication = 2;

  config.threads = 1;
  const ClusterReport one = simulate(config);
  config.threads = 2;
  const ClusterReport two = simulate(config);

  EXPECT_EQ(one.metrics.rack.offered, 120u);
  EXPECT_EQ(one.metrics.rack.completed, 120u);
  EXPECT_EQ(one.metrics.rack.completed, two.metrics.rack.completed);
  EXPECT_EQ(one.metrics.rack.makespan_s, two.metrics.rack.makespan_s);
  EXPECT_EQ(one.metrics.rack.mean_latency_s,
            two.metrics.rack.mean_latency_s);
  EXPECT_EQ(one.metrics.rack.p99_s, two.metrics.rack.p99_s);
  EXPECT_EQ(one.metrics.rack.energy_j, two.metrics.rack.energy_j);
  EXPECT_EQ(one.metrics.transfers, two.metrics.transfers);
  EXPECT_EQ(one.metrics.transfer_energy_j, two.metrics.transfer_energy_j);

  // The cycle-fidelity rack still degenerates: one package, same config,
  // bit-identical to the lone cycle-accurate simulator.
  config.cluster.packages = 1;
  config.cluster.replication = 1;
  config.threads = 1;
  const ClusterReport rack = simulate(config);
  const serve::ServingReport lone = serve::simulate(serve::make_serving_config(
      config.system, config.arch, config.serving));
  EXPECT_EQ(rack.metrics.rack.completed, lone.metrics.completed);
  EXPECT_EQ(rack.metrics.rack.makespan_s, lone.metrics.makespan_s);
  EXPECT_EQ(rack.metrics.rack.p99_s, lone.metrics.p99_s);
  EXPECT_EQ(rack.metrics.rack.energy_j, lone.metrics.energy_j);
}

}  // namespace
}  // namespace optiplet::cluster
