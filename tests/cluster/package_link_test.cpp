#include "cluster/package_link.hpp"

#include <gtest/gtest.h>

#include "core/system_config.hpp"

namespace optiplet::cluster {
namespace {

PackageLink default_link(double length_m = 0.25,
                         std::size_t wavelengths = 16) {
  const core::SystemConfig base = core::default_system_config();
  ClusterSpec spec;
  spec.link_length_m = length_m;
  spec.link_wavelengths = wavelengths;
  return make_package_link(spec, base.photonic, base.tech.photonic);
}

TEST(PackageLink, BudgetClosesAtBoardScale) {
  const PackageLink link = default_link();
  EXPECT_TRUE(link.feasible());
  EXPECT_GT(link.budget().total_loss_db(), 0.0);
  EXPECT_GE(link.crosstalk_penalty_db(), 0.0);
  EXPECT_GT(link.laser_power_per_wavelength_w(), 0.0);
  // The wall-plug chain always costs more electrically than the optical
  // power it emits.
  EXPECT_GT(link.laser_electrical_power_w(),
            static_cast<double>(link.config().wavelengths) *
                link.laser_power_per_wavelength_w());
}

TEST(PackageLink, TransferCostsScaleWithPayload) {
  const PackageLink link = default_link();
  // Zero payload still pays the store-and-forward + time-of-flight floor.
  EXPECT_GT(link.transfer_latency_s(0), 0.0);
  const double small = link.transfer_latency_s(1 << 10);
  const double large = link.transfer_latency_s(1 << 20);
  EXPECT_GT(large, small);
  // The serialization term is linear: the payload delta costs exactly
  // its bits at the aggregate link bandwidth.
  const double delta_bits = static_cast<double>((1 << 20) - (1 << 10));
  EXPECT_NEAR(large - small, delta_bits / link.bandwidth_bps(),
              1e-9 * (large - small));
  EXPECT_GT(link.transfer_energy_j(1 << 20),
            link.transfer_energy_j(1 << 10));
}

TEST(PackageLink, LongerBoardRouteCostsMoreLossAndLatency) {
  const PackageLink near = default_link(0.05);
  const PackageLink far = default_link(0.50);
  EXPECT_GT(far.budget().total_loss_db(), near.budget().total_loss_db());
  EXPECT_GT(far.transfer_latency_s(1 << 10),
            near.transfer_latency_s(1 << 10));
  // More propagation loss means a hotter laser, so the same payload
  // costs more energy on the longer route.
  EXPECT_GT(far.transfer_energy_j(1 << 16),
            near.transfer_energy_j(1 << 16));
}

TEST(PackageLink, BandwidthTracksChannelCount) {
  const PackageLink narrow = default_link(0.25, 8);
  const PackageLink wide = default_link(0.25, 16);
  EXPECT_NEAR(wide.bandwidth_bps(), 2.0 * narrow.bandwidth_bps(),
              1e-6 * wide.bandwidth_bps());
}

}  // namespace
}  // namespace optiplet::cluster
