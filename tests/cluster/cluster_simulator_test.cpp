#include "cluster/cluster_simulator.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/system_config.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"

namespace optiplet::cluster {
namespace {

/// Solo batch-1 capacity of `model` through the exact partition + oracle
/// path the simulator serves with.
double solo_capacity_rps(const std::string& model) {
  serve::ColocatedSetup setup =
      serve::make_colocated_setup(core::default_system_config(),
                                  accel::Architecture::kSiph2p5D, {model});
  serve::ServiceTimeOracle oracle(std::move(setup.oracle_tenants),
                                  accel::Architecture::kSiph2p5D);
  return 1.0 / oracle.batch_run(0, 1).latency_s;
}

ClusterConfig make_cluster(const std::string& mix, double rate_rps,
                           std::uint64_t requests, std::size_t packages,
                           BalancerPolicy balancer,
                           std::size_t replication) {
  ClusterConfig config;
  config.system = core::default_system_config();
  config.serving.tenant_mix = mix;
  config.serving.arrival_rps = rate_rps;
  config.serving.requests = requests;
  config.cluster.packages = packages;
  config.cluster.balancer = balancer;
  config.cluster.replication = replication;
  config.threads = 1;
  return config;
}

void expect_rack_equals(const serve::ServingMetrics& a,
                        const serve::ServingMetrics& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_s, b.p50_s);
  EXPECT_EQ(a.p95_s, b.p95_s);
  EXPECT_EQ(a.p99_s, b.p99_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(a.sla_violation_rate, b.sla_violation_rate);
  EXPECT_EQ(a.mean_batch, b.mean_batch);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.energy_per_request_j, b.energy_per_request_j);
  EXPECT_EQ(a.p99_hi_s, b.p99_hi_s);
  EXPECT_EQ(a.p99_lo_s, b.p99_lo_s);
}

TEST(ClusterSimulator, SinglePackageReproducesLoneSimulatorBitForBit) {
  // A 1-package rack must be the lone serving simulator: same arrival
  // vectors, same config, and a merge that recomputes every metric in
  // the same arithmetic order.
  ClusterConfig config = make_cluster("ResNet50+LeNet5", 600.0, 160, 1,
                                      BalancerPolicy::kLocalityAware, 1);
  const ClusterReport rack = simulate(config);
  const serve::ServingReport lone = serve::simulate(serve::make_serving_config(
      config.system, config.arch, config.serving));
  expect_rack_equals(rack.metrics.rack, lone.metrics);
  EXPECT_EQ(rack.metrics.transfers, 0u);
  EXPECT_EQ(rack.metrics.transfer_latency_s, 0.0);
  EXPECT_EQ(rack.metrics.transfer_energy_j, 0.0);
  ASSERT_EQ(rack.packages.size(), 1u);
  EXPECT_TRUE(rack.packages[0].active);
  ASSERT_EQ(rack.packages[0].report.tenants.size(), lone.tenants.size());
  for (std::size_t t = 0; t < lone.tenants.size(); ++t) {
    EXPECT_EQ(rack.packages[0].report.tenants[t].completed,
              lone.tenants[t].completed);
    EXPECT_EQ(rack.packages[0].report.tenants[t].mean_latency_s,
              lone.tenants[t].mean_latency_s);
  }
}

TEST(ClusterSimulator, SinglePackageClosedLoopAlsoDegenerates) {
  ClusterConfig config = make_cluster("LeNet5", 0.0, 200, 1,
                                      BalancerPolicy::kRoundRobin, 1);
  config.serving.source = serve::ArrivalSource::kClosedLoop;
  config.serving.users = 8;
  config.serving.think_s = 2e-4;
  const ClusterReport rack = simulate(config);
  const serve::ServingReport lone = serve::simulate(serve::make_serving_config(
      config.system, config.arch, config.serving));
  expect_rack_equals(rack.metrics.rack, lone.metrics);
  EXPECT_EQ(rack.metrics.transfers, 0u);
}

TEST(ClusterSimulator, BitIdenticalAcrossRackThreadCounts) {
  ClusterConfig config = make_cluster("LeNet5+MobileNetV2", 800.0, 240, 4,
                                      BalancerPolicy::kLocalityAware, 2);
  config.threads = 1;
  const ClusterReport one = simulate(config);
  config.threads = 2;
  const ClusterReport two = simulate(config);
  config.threads = 0;  // hardware concurrency
  const ClusterReport hw = simulate(config);
  expect_rack_equals(one.metrics.rack, two.metrics.rack);
  expect_rack_equals(one.metrics.rack, hw.metrics.rack);
  EXPECT_EQ(one.metrics.transfers, two.metrics.transfers);
  EXPECT_EQ(one.metrics.transfer_latency_s, hw.metrics.transfer_latency_s);
  EXPECT_EQ(one.metrics.transfer_energy_j, hw.metrics.transfer_energy_j);
  ASSERT_EQ(one.packages.size(), hw.packages.size());
  for (std::size_t p = 0; p < one.packages.size(); ++p) {
    EXPECT_EQ(one.packages[p].dispatched, hw.packages[p].dispatched);
    EXPECT_EQ(one.packages[p].report.metrics.completed,
              hw.packages[p].report.metrics.completed);
    EXPECT_EQ(one.packages[p].report.metrics.energy_j,
              hw.packages[p].report.metrics.energy_j);
  }
}

TEST(ClusterSimulator, RemoteReplicasPayPhotonicTransfers) {
  // One replica behind four ingress ports: three quarters of the stream
  // enters off-package and must ride the board-level link both ways.
  const ClusterReport remote =
      simulate(make_cluster("LeNet5", 500.0, 200, 4,
                            BalancerPolicy::kRoundRobin, 1));
  EXPECT_GT(remote.metrics.transfers, 0u);
  EXPECT_GT(remote.metrics.transfer_latency_s, 0.0);
  EXPECT_GT(remote.metrics.transfer_energy_j, 0.0);
  EXPECT_EQ(remote.metrics.rack.completed, 200u);
  // Transfer energy is part of the rack's energy accounting.
  double package_energy = 0.0;
  for (const auto& p : remote.packages) {
    package_energy += p.report.metrics.energy_j;
  }
  EXPECT_GT(remote.metrics.rack.energy_j, package_energy);

  // Full replication under locality-aware dispatch serves every request
  // on its ingress package: no transfers at all.
  const ClusterReport local =
      simulate(make_cluster("LeNet5", 500.0, 200, 4,
                            BalancerPolicy::kLocalityAware, 4));
  EXPECT_EQ(local.metrics.transfers, 0u);
  EXPECT_EQ(local.metrics.transfer_energy_j, 0.0);
  EXPECT_EQ(local.metrics.rack.completed, 200u);
}

TEST(ClusterSimulator, ClosedLoopRemoteUsersChargeTransfers) {
  ClusterConfig config = make_cluster("LeNet5", 0.0, 200, 2,
                                      BalancerPolicy::kRoundRobin, 1);
  config.serving.source = serve::ArrivalSource::kClosedLoop;
  config.serving.users = 8;
  config.serving.think_s = 2e-4;
  const ClusterReport rack = simulate(config);
  EXPECT_EQ(rack.metrics.rack.completed, 200u);
  EXPECT_GT(rack.metrics.transfers, 0u);
  EXPECT_GT(rack.metrics.transfer_energy_j, 0.0);
}

TEST(ClusterSimulator, ReplicatedLocalityRackScalesThroughput) {
  // At 3x one package's capacity, a lone package saturates; a 4-package
  // locality-aware rack with a replica everywhere splits the stream
  // 4 ways locally and must sustain strictly more aggregate throughput.
  const double rate = 3.0 * solo_capacity_rps("LeNet5");
  const ClusterReport one =
      simulate(make_cluster("LeNet5", rate, 600, 1,
                            BalancerPolicy::kLocalityAware, 1));
  const ClusterReport four =
      simulate(make_cluster("LeNet5", rate, 600, 4,
                            BalancerPolicy::kLocalityAware, 4));
  EXPECT_GT(four.metrics.rack.throughput_rps,
            one.metrics.rack.throughput_rps);
  EXPECT_LT(four.metrics.rack.p99_s, one.metrics.rack.p99_s);
  // Every package carries load under full replication.
  EXPECT_GT(four.metrics.util_min, 0.0);
  EXPECT_LE(four.metrics.util_max, 1.0);
}

TEST(ClusterSimulator, LeastLoadedRoutesAroundTheHotPackage) {
  // ResNet50 is pinned to package 0 (replication 1); LeNet5 has replicas
  // on both packages (its list is [1, 0]). Round-robin alternates LeNet5
  // between them blindly; least-loaded sees ResNet50's accumulated work
  // on package 0 and keeps LeNet5 on package 1.
  ClusterConfig rr_config = make_cluster("ResNet50+LeNet5", 800.0, 200, 2,
                                         BalancerPolicy::kRoundRobin, 1);
  rr_config.cluster.replication_mix = "1+2";
  ClusterConfig least_config = rr_config;
  least_config.cluster.balancer = BalancerPolicy::kLeastLoaded;
  const ClusterReport rr = simulate(rr_config);
  const ClusterReport least = simulate(least_config);
  EXPECT_EQ(rr.metrics.rack.completed, 200u);
  EXPECT_EQ(least.metrics.rack.completed, 200u);
  // Package 1 only hosts LeNet5, so its dispatch count is the LeNet5
  // share: least-loaded must route strictly more of it there.
  ASSERT_EQ(rr.packages.size(), 2u);
  EXPECT_GT(least.packages[1].dispatched, rr.packages[1].dispatched);
  // Keeping LeNet5 off the ResNet50 package shortens its queueing.
  EXPECT_LT(least.metrics.rack.mean_latency_s,
            rr.metrics.rack.mean_latency_s);
}

TEST(ClusterSimulator, MalformedReplicationMixThrows) {
  ClusterConfig config = make_cluster("ResNet50+LeNet5", 400.0, 40, 2,
                                      BalancerPolicy::kRoundRobin, 1);
  config.cluster.replication_mix = "2";  // 1 factor for 2 tenants
  EXPECT_THROW((void)simulate(config), std::invalid_argument);
  config.cluster.replication_mix = "2+x";
  EXPECT_THROW((void)simulate(config), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::cluster
