#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>

#include "cluster/cluster_scheduler.hpp"
#include "cluster/cluster_spec.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"

namespace optiplet {
namespace {

TEST(ClusterSpec, ReplicationFactorsClampAndParse) {
  cluster::ClusterSpec spec;
  spec.packages = 4;
  spec.replication = 6;  // clamped to the rack size
  EXPECT_EQ(spec.replications(2),
            (std::vector<std::size_t>{4, 4}));
  spec.replication_mix = "1+3";
  EXPECT_EQ(spec.replications(2),
            (std::vector<std::size_t>{1, 3}));
  spec.replication_mix = "1+9";  // oversized factors clamp to the rack
  EXPECT_EQ(spec.replications(2),
            (std::vector<std::size_t>{1, 4}));
  spec.replication_mix = "0+2";  // zero replicas is malformed, not clamped
  EXPECT_THROW((void)spec.replications(2), std::invalid_argument);
  spec.replication_mix = "1+2+3";  // wrong arity for 2 tenants
  EXPECT_THROW((void)spec.replications(2), std::invalid_argument);
  spec.replication_mix = "2+x";
  EXPECT_THROW((void)spec.replications(2), std::invalid_argument);
}

TEST(ClusterSpec, BalancerPolicyNamesRoundTrip) {
  using cluster::BalancerPolicy;
  for (const auto policy :
       {BalancerPolicy::kRoundRobin, BalancerPolicy::kLeastLoaded,
        BalancerPolicy::kLocalityAware}) {
    const auto parsed =
        cluster::balancer_policy_from_string(cluster::to_string(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_EQ(cluster::balancer_policy_from_string("round-robin"),
            cluster::BalancerPolicy::kRoundRobin);
  EXPECT_EQ(cluster::balancer_policy_from_string("least-loaded"),
            cluster::BalancerPolicy::kLeastLoaded);
  EXPECT_EQ(cluster::balancer_policy_from_string("locality-aware"),
            cluster::BalancerPolicy::kLocalityAware);
  EXPECT_FALSE(cluster::balancer_policy_from_string("random").has_value());
}

TEST(ClusterScheduler, PlacementIsDeterministicAndAscending) {
  cluster::ClusterSpec spec;
  spec.packages = 3;
  spec.replication = 2;
  // Architecture kMonolithicCrossLight skips pool-partition validation,
  // so the structural properties are testable without a feasible pool
  // split for every hosted set.
  const cluster::Placement placement = cluster::place_tenants(
      spec, core::default_system_config(),
      accel::Architecture::kMonolithicCrossLight, {"LeNet5", "VGG16"},
      {1.0, 1.0});
  ASSERT_EQ(placement.replicas.size(), 2u);
  // Tenant t's primary is t mod N; replicas are consecutive.
  EXPECT_EQ(placement.replicas[0],
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(placement.replicas[1],
            (std::vector<std::size_t>{1, 2}));
  ASSERT_EQ(placement.package_tenants.size(), 3u);
  EXPECT_EQ(placement.package_tenants[0], (std::vector<std::size_t>{0}));
  EXPECT_EQ(placement.package_tenants[1],
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(placement.package_tenants[2], (std::vector<std::size_t>{1}));
  EXPECT_TRUE(placement.hosts(1, 0));
  EXPECT_FALSE(placement.hosts(2, 0));
  EXPECT_EQ(placement.replica_index(1, 2), std::size_t{1});
  EXPECT_EQ(placement.replica_index(0, 2), std::nullopt);
}

TEST(ScenarioSpec, KeyCarriesTheClusterBlock) {
  engine::ScenarioSpec spec;
  spec.model = "LeNet5";
  spec.serving.emplace();
  spec.serving->tenant_mix = "LeNet5";
  spec.cluster.emplace();
  spec.cluster->packages = 4;
  spec.cluster->balancer = cluster::BalancerPolicy::kLeastLoaded;
  spec.cluster->replication = 2;
  const std::string key = spec.key();
  EXPECT_NE(key.find("cluster.pkgs=4"), std::string::npos);
  EXPECT_NE(key.find("cluster.bal=least"), std::string::npos);
  EXPECT_NE(key.find("cluster.rep=2"), std::string::npos);

  // Different rack shapes must not collide in the memo cache.
  engine::ScenarioSpec other = spec;
  other.cluster->packages = 2;
  EXPECT_NE(spec.key(), other.key());
  engine::ScenarioSpec same = spec;
  EXPECT_EQ(spec.key(), same.key());

  // A serving spec without a cluster block keeps its pre-cluster key.
  engine::ScenarioSpec serving_only = spec;
  serving_only.cluster.reset();
  EXPECT_EQ(serving_only.key().find("cluster."), std::string::npos);
}

TEST(ScenarioGrid, ClusterAxesExpandTheCartesianProduct) {
  engine::ScenarioGrid grid;
  grid.tenant_mixes = {"LeNet5"};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.package_counts = {1, 2};
  grid.balancer_policies = {cluster::BalancerPolicy::kRoundRobin,
                            cluster::BalancerPolicy::kLocalityAware};
  grid.replication_factors = {2};
  grid.cluster_defaults.link_length_m = 0.4;
  EXPECT_TRUE(grid.cluster_mode());
  EXPECT_TRUE(grid.serving_mode());
  const auto specs = grid.expand(core::default_system_config());
  ASSERT_EQ(specs.size(), 4u);
  for (const auto& spec : specs) {
    ASSERT_TRUE(spec.serving.has_value());
    ASSERT_TRUE(spec.cluster.has_value());
    EXPECT_EQ(spec.cluster->replication, 2u);
    // Unswept knobs flow from cluster_defaults.
    EXPECT_EQ(spec.cluster->link_length_m, 0.4);
  }
  const auto count_packages = [&specs](std::size_t packages) {
    return std::count_if(specs.begin(), specs.end(),
                         [packages](const engine::ScenarioSpec& s) {
                           return s.cluster->packages == packages;
                         });
  };
  EXPECT_EQ(count_packages(1), 2);
  EXPECT_EQ(count_packages(2), 2);
}

TEST(ResultStore, ClusterRowsFillTheRackColumns) {
  const auto header = engine::ResultStore::csv_header();
  const auto column = [&header](const std::string& name) {
    const auto it = std::find(header.begin(), header.end(), name);
    EXPECT_NE(it, header.end()) << "missing column " << name;
    return static_cast<std::size_t>(it - header.begin());
  };

  engine::ScenarioResult result;
  result.spec.model = "LeNet5";
  result.spec.serving.emplace();
  result.spec.serving->tenant_mix = "LeNet5";
  result.spec.cluster.emplace();
  result.spec.cluster->packages = 4;
  result.spec.cluster->balancer = cluster::BalancerPolicy::kLocalityAware;
  result.spec.cluster->replication = 4;
  result.serving.emplace();
  result.cluster.emplace();
  result.cluster->transfers = 12;
  result.cluster->transfer_latency_s = 3e-6;
  result.cluster->transfer_energy_j = 4e-9;
  const auto row = engine::ResultStore::csv_row(result);
  ASSERT_EQ(row.size(), header.size());
  EXPECT_EQ(row[column("packages")], "4");
  EXPECT_EQ(row[column("balancer")], "locality");
  EXPECT_EQ(row[column("replication")], "4");
  EXPECT_EQ(row[column("transfers")], "12");

  // A replication mix overrides the scalar factor in the CSV.
  result.spec.cluster->replication_mix = "1+2";
  EXPECT_EQ(engine::ResultStore::csv_row(result)[column("replication")],
            "1+2");

  // Serving-only and single-inference rows pad the rack columns empty.
  engine::ScenarioResult serving_only = result;
  serving_only.spec.cluster.reset();
  serving_only.cluster.reset();
  const auto serving_row = engine::ResultStore::csv_row(serving_only);
  ASSERT_EQ(serving_row.size(), header.size());
  EXPECT_EQ(serving_row[column("packages")], "");
  engine::ScenarioResult single;
  single.spec.model = "LeNet5";
  const auto single_row = engine::ResultStore::csv_row(single);
  ASSERT_EQ(single_row.size(), header.size());
  EXPECT_EQ(single_row[column("serving")], "0");
  EXPECT_EQ(single_row[column("packages")], "");
}

TEST(SweepRunner, ClusterScenariosEvaluateAndMemoize) {
  engine::ScenarioGrid grid;
  grid.tenant_mixes = {"LeNet5"};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.package_counts = {2};
  grid.balancer_policies = {cluster::BalancerPolicy::kRoundRobin};
  grid.replication_factors = {1};
  grid.serving_defaults.requests = 80;
  engine::SweepRunner runner(core::default_system_config());
  const auto results = runner.run(grid);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].serving.has_value());
  ASSERT_TRUE(results[0].cluster.has_value());
  // The serving view is the merged rack view.
  EXPECT_EQ(results[0].serving->completed,
            results[0].cluster->rack.completed);
  EXPECT_EQ(results[0].cluster->packages, 2u);
  EXPECT_GT(results[0].cluster->transfers, 0u);
  EXPECT_EQ(results[0].run.latency_s, results[0].serving->mean_latency_s);
  // Repeats come from the memo cache.
  const auto again = runner.run(grid);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_TRUE(again[0].from_cache);
  EXPECT_EQ(again[0].cluster->transfer_energy_j,
            results[0].cluster->transfer_energy_j);
}

}  // namespace
}  // namespace optiplet
