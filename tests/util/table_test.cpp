#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"Model", "Params"});
  t.add_row({"LeNet5", "62,006"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("LeNet5"), std::string::npos);
  EXPECT_NE(out.find("62,006"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CountsRowsAndColumns) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.column_count(), 3u);
}

TEST(TextTable, SeparatorAddsHorizontalLine) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header line + top/bottom + separator = 4 horizontal rules.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(TextTable, ColumnsPadToWidestCell) {
  TextTable t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string out = t.render();
  EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
  // Every rendered row has the same length.
  std::size_t first_len = out.find('\n');
  for (std::size_t start = 0; start < out.size();) {
    const std::size_t end = out.find('\n', start);
    if (end == std::string::npos) {
      break;
    }
    EXPECT_EQ(end - start, first_len);
    start = end + 1;
  }
}

TEST(TextTable, SetAlignValidatesColumn) {
  TextTable t({"a"});
  EXPECT_THROW(t.set_align(3, Align::kLeft), std::invalid_argument);
}

TEST(FormatFixed, RespectsDigits) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
}

TEST(FormatSi, ChoosesSensiblePrecision) {
  EXPECT_EQ(format_si(123.456), "123.5");
  EXPECT_EQ(format_si(12.345), "12.35");
  EXPECT_EQ(format_si(1.2345), "1.234");
  EXPECT_EQ(format_si(0.0), "0.000");
}

TEST(FormatSi, ScientificOutsideRange) {
  EXPECT_NE(format_si(1e-6).find('e'), std::string::npos);
  EXPECT_NE(format_si(1e9).find('e'), std::string::npos);
}

TEST(FormatGrouped, InsertsThousandsSeparators) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1000), "1,000");
  EXPECT_EQ(format_grouped(25636712), "25,636,712");
  EXPECT_EQ(format_grouped(138357544), "138,357,544");
}

}  // namespace
}  // namespace optiplet::util
