#include "util/math.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace optiplet::util {
namespace {

TEST(MathDb, RoundTripsLinearRatios) {
  for (double ratio : {0.001, 0.5, 1.0, 2.0, 100.0, 1e6}) {
    EXPECT_NEAR(from_db(to_db(ratio)), ratio, 1e-9 * ratio);
  }
}

TEST(MathDb, KnownAnchors) {
  EXPECT_NEAR(to_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(to_db(100.0), 20.0, 1e-12);
  EXPECT_NEAR(to_db(2.0), 3.0103, 1e-4);
  EXPECT_NEAR(from_db(3.0), 1.9953, 1e-4);
}

TEST(MathDb, RejectsNonPositiveRatio) {
  EXPECT_THROW(to_db(0.0), std::invalid_argument);
  EXPECT_THROW(to_db(-1.0), std::invalid_argument);
}

TEST(MathDbm, OneMilliwattIsZeroDbm) {
  EXPECT_NEAR(watts_to_dbm(1e-3), 0.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);
}

TEST(MathDbm, TenDbmIsTenMilliwatt) {
  EXPECT_NEAR(dbm_to_watts(10.0), 10e-3, 1e-12);
  EXPECT_NEAR(watts_to_dbm(10e-3), 10.0, 1e-9);
}

TEST(MathDbm, NegativeDbmBelowMilliwatt) {
  EXPECT_NEAR(dbm_to_watts(-26.0), 2.512e-6, 1e-9);
}

TEST(MathCeilDiv, ExactAndInexact) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(MathLerp, Endpoints) {
  EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 1.0), 6.0);
  EXPECT_DOUBLE_EQ(lerp(2.0, 6.0, 0.5), 4.0);
}

TEST(MathClamp01, ClampsBothSides) {
  EXPECT_DOUBLE_EQ(clamp01(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(0.25), 0.25);
  EXPECT_DOUBLE_EQ(clamp01(1.5), 1.0);
}

TEST(MathMean, SimpleAverage) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(MathMean, ThrowsOnEmpty) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), std::invalid_argument);
}

TEST(MathGeomean, PowersOfTwo) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0};
  EXPECT_NEAR(geomean(xs), 2.8284, 1e-4);
}

TEST(MathGeomean, RejectsNonPositive) {
  const std::vector<double> xs{1.0, 0.0};
  EXPECT_THROW(geomean(xs), std::invalid_argument);
}

TEST(MathStddev, ConstantSequenceIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(MathApproxEqual, ScaleAware) {
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0, 1e-9));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-9));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

}  // namespace
}  // namespace optiplet::util
