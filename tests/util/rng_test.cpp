#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace optiplet::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(0xdeadbeef);
  Xoshiro256 b(0xdeadbeef);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextBelowZeroBoundReturnsZero) {
  Xoshiro256 rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro256, NextBelowCoversRange) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Xoshiro256, BernoulliRateApproximatesP) {
  Xoshiro256 rng(13);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.next_bool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Xoshiro256, SatisfiesUniformRandomBitGenerator) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == ~0ULL);
  Xoshiro256 rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace optiplet::util
