#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace optiplet::util {
namespace {

std::string path_helper() {
  return ::testing::TempDir() + "optiplet_csv_roundtrip.csv";
}

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "optiplet_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"model", "latency_ms"});
    ASSERT_TRUE(w.ok());
    w.add_row({"ResNet50", "1.21"});
  }
  EXPECT_EQ(read_all(path_), "model,latency_ms\nResNet50,1.21\n");
}

TEST_F(CsvTest, QuotesCellsWithCommas) {
  {
    CsvWriter w(path_, {"a"});
    w.add_row({"x,y"});
  }
  EXPECT_EQ(read_all(path_), "a\n\"x,y\"\n");
}

TEST_F(CsvTest, EscapesEmbeddedQuotes) {
  {
    CsvWriter w(path_, {"a"});
    w.add_row({"say \"hi\""});
  }
  EXPECT_EQ(read_all(path_), "a\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, QuotesNewlines) {
  {
    CsvWriter w(path_, {"a"});
    w.add_row({"line1\nline2"});
  }
  EXPECT_EQ(read_all(path_), "a\n\"line1\nline2\"\n");
}

TEST(CsvWriterBadPath, ReportsNotOk) {
  CsvWriter w("/nonexistent-dir-xyz/file.csv", {"a"});
  EXPECT_FALSE(w.ok());
  w.add_row({"ignored"});  // must not crash
}

// ---------------------------------------------------------------- parser

TEST(ParseCsv, PlainFieldsAndRecords) {
  const auto records = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(ParseCsv, MissingTrailingNewline) {
  const auto records = parse_csv("a,b\n1,2");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (std::vector<std::string>{"1", "2"}));
}

TEST(ParseCsv, CrlfLineEndings) {
  const auto records = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"1", "2"}));
}

TEST(ParseCsv, QuotedFieldWithEmbeddedComma) {
  const auto records = parse_csv("a\n\"x,y\"\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (std::vector<std::string>{"x,y"}));
}

TEST(ParseCsv, QuotedFieldWithEscapedQuotes) {
  const auto records = parse_csv("a\n\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (std::vector<std::string>{"say \"hi\""}));
}

TEST(ParseCsv, QuotedFieldWithEmbeddedNewline) {
  const auto records = parse_csv("a\n\"line1\nline2\",x\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (std::vector<std::string>{"line1\nline2", "x"}));
}

TEST(ParseCsv, EmptyFieldsSurvive) {
  const auto records = parse_csv("a,,c\n,,\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsv, EmptyInputAndLoneNewline) {
  EXPECT_TRUE(parse_csv("").empty());
  // A lone newline terminates no content: no record.
  EXPECT_TRUE(parse_csv("\n").empty());
  // But an explicitly quoted empty field is a record.
  const auto records = parse_csv("\"\"\n");
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], (std::vector<std::string>{""}));
}

TEST(ParseCsv, WriterOutputRoundTrips) {
  // Every writer escape case must come back verbatim through the parser.
  const std::vector<std::string> nasty = {"plain", "x,y", "say \"hi\"",
                                          "line1\nline2", ""};
  {
    CsvWriter w(path_helper(), {"a", "b", "c", "d", "e"});
    w.add_row(nasty);
  }
  const auto doc = read_csv_file(path_helper());
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->rows.size(), 1u);
  EXPECT_EQ(doc->rows[0], nasty);
  std::remove(path_helper().c_str());
}

TEST(ReadCsvFile, MissingFileIsNullopt) {
  EXPECT_FALSE(read_csv_file("/nonexistent-dir-xyz/file.csv").has_value());
}

TEST(CsvDocument, ColumnLookup) {
  CsvDocument doc;
  doc.header = {"arrival_s", "tenant"};
  EXPECT_EQ(doc.column("tenant"), std::optional<std::size_t>{1});
  EXPECT_FALSE(doc.column("missing").has_value());
}

}  // namespace
}  // namespace optiplet::util
