#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace optiplet::util {
namespace {

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "optiplet_csv_test.csv";
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_, {"model", "latency_ms"});
    ASSERT_TRUE(w.ok());
    w.add_row({"ResNet50", "1.21"});
  }
  EXPECT_EQ(read_all(path_), "model,latency_ms\nResNet50,1.21\n");
}

TEST_F(CsvTest, QuotesCellsWithCommas) {
  {
    CsvWriter w(path_, {"a"});
    w.add_row({"x,y"});
  }
  EXPECT_EQ(read_all(path_), "a\n\"x,y\"\n");
}

TEST_F(CsvTest, EscapesEmbeddedQuotes) {
  {
    CsvWriter w(path_, {"a"});
    w.add_row({"say \"hi\""});
  }
  EXPECT_EQ(read_all(path_), "a\n\"say \"\"hi\"\"\"\n");
}

TEST_F(CsvTest, QuotesNewlines) {
  {
    CsvWriter w(path_, {"a"});
    w.add_row({"line1\nline2"});
  }
  EXPECT_EQ(read_all(path_), "a\n\"line1\nline2\"\n");
}

TEST(CsvWriterBadPath, ReportsNotOk) {
  CsvWriter w("/nonexistent-dir-xyz/file.csv", {"a"});
  EXPECT_FALSE(w.ok());
  w.add_row({"ignored"});  // must not crash
}

}  // namespace
}  // namespace optiplet::util
