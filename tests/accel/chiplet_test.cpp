#include "accel/chiplet.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::accel {
namespace {

ChipletDesign conv3_design() {
  ChipletDesign d;
  d.kind = MacKind::kConv3;
  d.units = 44;
  d.units_per_bus = 11;
  return d;
}

TEST(Chiplet, BusCountFromUnitsPerBus) {
  const ComputeChiplet c(conv3_design(), power::default_tech());
  EXPECT_EQ(c.bus_count(), 4u);  // 44 units / 11 per gateway = 4 buses
}

TEST(Chiplet, SustainedThroughputIncludesUtilization) {
  const auto tech = power::default_tech();
  const ComputeChiplet c(conv3_design(), tech);
  EXPECT_NEAR(c.sustained_macs_per_s(),
              44.0 * 9.0 * tech.compute.mac_symbol_rate_hz *
                  tech.compute.mac_utilization,
              1.0);
}

TEST(Chiplet, ComputeTimeInverseOfThroughput) {
  const ComputeChiplet c(conv3_design(), power::default_tech());
  const double t = c.compute_time_s(1'000'000'000);
  EXPECT_NEAR(t * c.sustained_macs_per_s(), 1e9, 1.0);
}

TEST(Chiplet, BusBudgetHasExpectedStructure) {
  const ComputeChiplet c(conv3_design(), power::default_tech());
  const auto& budget = c.bus_budget();
  EXPECT_GE(budget.elements().size(), 7u);
  EXPECT_GT(budget.total_loss_db(), 5.0);
  EXPECT_LT(budget.total_loss_db(), 35.0);
}

TEST(Chiplet, MoreUnitsPerBusMoreLoss) {
  ChipletDesign dense_bus = conv3_design();
  dense_bus.units_per_bus = 22;
  const ComputeChiplet crowded(dense_bus, power::default_tech());
  const ComputeChiplet normal(conv3_design(), power::default_tech());
  EXPECT_GT(crowded.bus_budget().total_loss_db(),
            normal.bus_budget().total_loss_db());
  EXPECT_GT(crowded.laser_power_per_wavelength_w(),
            normal.laser_power_per_wavelength_w());
}

TEST(Chiplet, LongerPathsMoreLaserPower) {
  ChipletDesign far = conv3_design();
  far.extra_path_m = 10.0e-3;
  const ComputeChiplet c_far(far, power::default_tech());
  const ComputeChiplet c_near(conv3_design(), power::default_tech());
  EXPECT_GT(c_far.laser_electrical_power_w(),
            c_near.laser_electrical_power_w());
}

TEST(Chiplet, PowerComponentsPositiveAndPlausible) {
  const ComputeChiplet c(conv3_design(), power::default_tech());
  EXPECT_GT(c.laser_electrical_power_w(), 0.1);
  EXPECT_LT(c.laser_electrical_power_w(), 20.0);
  EXPECT_GT(c.ring_tuning_power_w(), 0.0);
  EXPECT_LT(c.ring_tuning_power_w(), 5.0);
  EXPECT_GT(c.electronics_static_power_w(), 0.0);
  EXPECT_NEAR(c.active_power_w(),
              c.laser_electrical_power_w() + c.ring_tuning_power_w() +
                  c.electronics_static_power_w(),
              1e-9);
}

TEST(Chiplet, RingTuningCountsWeightAndInputBanks) {
  const auto tech = power::default_tech();
  const ComputeChiplet c(conv3_design(), tech);
  // 44 units x 9 weight rings + 4 buses x 9 input rings = 432 rings.
  const double per_ring = c.ring_tuning_power_w() / 432.0;
  EXPECT_GT(per_ring, 0.1e-3);
  EXPECT_LT(per_ring, 3e-3);
}

TEST(Chiplet, DynamicEnergyScalesWithMacs) {
  const ComputeChiplet c(conv3_design(), power::default_tech());
  EXPECT_NEAR(c.dynamic_energy_j(2'000'000),
              2.0 * c.dynamic_energy_j(1'000'000), 1e-12);
  EXPECT_DOUBLE_EQ(c.dynamic_energy_j(0), 0.0);
}

TEST(Chiplet, AllTable1DesignsConstruct) {
  const auto tech = power::default_tech();
  for (auto [kind, units, per_bus] :
       {std::tuple{MacKind::kDense100, 4u, 1u},
        std::tuple{MacKind::kConv7, 8u, 2u},
        std::tuple{MacKind::kConv5, 16u, 4u},
        std::tuple{MacKind::kConv3, 44u, 11u}}) {
    ChipletDesign d;
    d.kind = kind;
    d.units = units;
    d.units_per_bus = per_bus;
    const ComputeChiplet c(d, tech);
    EXPECT_EQ(c.bus_count(), 4u) << to_string(kind);
    EXPECT_GT(c.active_power_w(), 0.0);
  }
}

TEST(Chiplet, Table1ChipletsHaveBalancedThroughput) {
  // Table 1's unit counts equalize per-chiplet MAC throughput (~800 GMAC/s
  // raw at 2 GS/s, scaled by the symbol rate): all four chiplet types land
  // within 2x of each other.
  const auto tech = power::default_tech();
  double min_tp = 1e30;
  double max_tp = 0.0;
  for (auto [kind, units, per_bus] :
       {std::tuple{MacKind::kDense100, 4u, 1u},
        std::tuple{MacKind::kConv7, 8u, 2u},
        std::tuple{MacKind::kConv5, 16u, 4u},
        std::tuple{MacKind::kConv3, 44u, 11u}}) {
    ChipletDesign d;
    d.kind = kind;
    d.units = units;
    d.units_per_bus = per_bus;
    const ComputeChiplet c(d, tech);
    min_tp = std::min(min_tp, c.sustained_macs_per_s());
    max_tp = std::max(max_tp, c.sustained_macs_per_s());
  }
  EXPECT_LT(max_tp / min_tp, 2.0);
}

TEST(Chiplet, RejectsInvalidDesigns) {
  const auto tech = power::default_tech();
  ChipletDesign bad = conv3_design();
  bad.units = 0;
  EXPECT_THROW(ComputeChiplet(bad, tech), std::invalid_argument);
  bad = conv3_design();
  bad.units_per_bus = 0;
  EXPECT_THROW(ComputeChiplet(bad, tech), std::invalid_argument);
  bad = conv3_design();
  bad.units_per_bus = 100;  // more than units
  EXPECT_THROW(ComputeChiplet(bad, tech), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::accel
