#include "accel/platform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::accel {
namespace {

TEST(PlatformSpec, Table1Complement) {
  const PlatformSpec spec = make_table1_spec();
  ASSERT_EQ(spec.groups.size(), 4u);
  // Table 1, row by row.
  EXPECT_EQ(spec.groups[0].chiplet.kind, MacKind::kDense100);
  EXPECT_EQ(spec.groups[0].chiplet_count, 2u);
  EXPECT_EQ(spec.groups[0].chiplet.units, 4u);
  EXPECT_EQ(spec.groups[0].chiplet.units_per_bus, 1u);

  EXPECT_EQ(spec.groups[1].chiplet.kind, MacKind::kConv7);
  EXPECT_EQ(spec.groups[1].chiplet_count, 1u);
  EXPECT_EQ(spec.groups[1].chiplet.units, 8u);
  EXPECT_EQ(spec.groups[1].chiplet.units_per_bus, 2u);

  EXPECT_EQ(spec.groups[2].chiplet.kind, MacKind::kConv5);
  EXPECT_EQ(spec.groups[2].chiplet_count, 2u);
  EXPECT_EQ(spec.groups[2].chiplet.units, 16u);
  EXPECT_EQ(spec.groups[2].chiplet.units_per_bus, 4u);

  EXPECT_EQ(spec.groups[3].chiplet.kind, MacKind::kConv3);
  EXPECT_EQ(spec.groups[3].chiplet_count, 3u);
  EXPECT_EQ(spec.groups[3].chiplet.units, 44u);
  EXPECT_EQ(spec.groups[3].chiplet.units_per_bus, 11u);
}

TEST(PlatformSpec, Table1HasEightComputeChiplets) {
  const Platform p(make_table1_spec(), power::default_tech());
  EXPECT_EQ(p.total_chiplets(), 8u);
  // 2x4 + 1x8 + 2x16 + 3x44 = 180 MAC units.
  EXPECT_EQ(p.total_units(), 180u);
}

TEST(PlatformSpec, MonolithicKeepsUnitComplement) {
  const Platform mono(make_monolithic_spec(1), power::default_tech());
  EXPECT_EQ(mono.total_units(), 180u);
  EXPECT_EQ(mono.total_chiplets(), 4u);  // one on-die pool per unit kind
}

TEST(PlatformSpec, MonolithicScaleDividesUnits) {
  const Platform mono(make_monolithic_spec(4), power::default_tech());
  // 2 dense + 2 conv7 + 8 conv5 + 33 conv3 = 45.
  EXPECT_EQ(mono.total_units(), 45u);
}

TEST(PlatformSpec, MonolithicBusesCarryMoreUnits) {
  const PlatformSpec mono = make_monolithic_spec(1);
  const PlatformSpec t1 = make_table1_spec();
  for (std::size_t g = 0; g < mono.groups.size(); ++g) {
    EXPECT_GE(mono.groups[g].chiplet.units_per_bus,
              t1.groups[g].chiplet.units_per_bus);
  }
}

TEST(PlatformSpec, MonolithicLaserCostlierPerUnit) {
  // The §V scalability argument in one assertion: the monolithic die pays
  // more laser power per MAC unit than the chipletized platform.
  const Platform mono(make_monolithic_spec(1), power::default_tech());
  const Platform p25(make_table1_spec(), power::default_tech());
  double mono_laser = 0.0;
  double p25_laser = 0.0;
  for (const auto& g : mono.groups()) {
    mono_laser +=
        g.chiplet.laser_electrical_power_w() * g.chiplet_count;
  }
  for (const auto& g : p25.groups()) {
    p25_laser += g.chiplet.laser_electrical_power_w() * g.chiplet_count;
  }
  EXPECT_GT(mono_laser / 180.0, p25_laser / 180.0);
}

TEST(Platform, GroupLookupByKind) {
  const Platform p(make_table1_spec(), power::default_tech());
  EXPECT_EQ(p.group_for(MacKind::kConv3).chiplet_count, 3u);
  EXPECT_EQ(p.group_for(MacKind::kDense100).chiplet_count, 2u);
}

TEST(Platform, GroupThroughputSumsChiplets) {
  const Platform p(make_table1_spec(), power::default_tech());
  const auto& g = p.group_for(MacKind::kConv3);
  EXPECT_NEAR(p.group_macs_per_s(MacKind::kConv3),
              3.0 * g.chiplet.sustained_macs_per_s(), 1.0);
}

TEST(Platform, GroupThroughputsRoughlyBalanced) {
  // The Table-1 design intent: each kind's aggregate throughput is within
  // ~3x of every other's.
  const Platform p(make_table1_spec(), power::default_tech());
  double min_tp = 1e30;
  double max_tp = 0.0;
  for (MacKind k : {MacKind::kDense100, MacKind::kConv7, MacKind::kConv5,
                    MacKind::kConv3}) {
    min_tp = std::min(min_tp, p.group_macs_per_s(k));
    max_tp = std::max(max_tp, p.group_macs_per_s(k));
  }
  EXPECT_LT(max_tp / min_tp, 3.5);
}

TEST(Platform, PeakComputePowerSumsGroups) {
  const Platform p(make_table1_spec(), power::default_tech());
  double manual = 0.0;
  for (const auto& g : p.groups()) {
    manual += g.chiplet.active_power_w() * g.chiplet_count;
  }
  EXPECT_NEAR(p.peak_compute_power_w(), manual, 1e-9);
  // The 8-chiplet complement must be tens of watts, not hundreds.
  EXPECT_GT(p.peak_compute_power_w(), 5.0);
  EXPECT_LT(p.peak_compute_power_w(), 100.0);
}

TEST(Platform, RejectsEmptySpec) {
  PlatformSpec empty;
  EXPECT_THROW(Platform(empty, power::default_tech()),
               std::invalid_argument);
}

TEST(Platform, PartialPlatformsServeOnlyTheirKinds) {
  // Serving tenants run on chiplet partitions that provision only the MAC
  // kinds their model uses; the missing kinds fail at lookup, not at
  // construction.
  PlatformSpec partial;
  ChipletDesign only_conv3;
  only_conv3.kind = MacKind::kConv3;
  only_conv3.units = 4;
  only_conv3.units_per_bus = 2;
  partial.groups.push_back({only_conv3, 1});
  const Platform p(partial, power::default_tech());
  EXPECT_EQ(p.group_for(MacKind::kConv3).chiplet_count, 1u);
  EXPECT_THROW((void)p.group_for(MacKind::kConv7), std::invalid_argument);
}

TEST(PlatformSpec, RejectsZeroScaleDivisor) {
  EXPECT_THROW(make_monolithic_spec(0), std::invalid_argument);
}

TEST(Architecture, NamesMatchPaper) {
  EXPECT_STREQ(to_string(Architecture::kMonolithicCrossLight), "CrossLight");
  EXPECT_STREQ(to_string(Architecture::kElec2p5D), "2.5D-CrossLight-Elec");
  EXPECT_STREQ(to_string(Architecture::kSiph2p5D), "2.5D-CrossLight-SiPh");
}

}  // namespace
}  // namespace optiplet::accel
