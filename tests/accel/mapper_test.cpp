#include "accel/mapper.hpp"

#include <gtest/gtest.h>

#include "dnn/zoo.hpp"

namespace optiplet::accel {
namespace {

dnn::LayerWork make_layer(dnn::LayerKind kind, std::uint32_t kernel) {
  dnn::LayerWork lw;
  lw.kind = kind;
  lw.kernel = kernel;
  lw.macs = 1000;
  lw.dot_length = 10;
  return lw;
}

TEST(Affinity, KernelSizesMapToMatchingUnits) {
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kConv2d, 3)),
            MacKind::kConv3);
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kConv2d, 5)),
            MacKind::kConv5);
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kConv2d, 7)),
            MacKind::kConv7);
}

TEST(Affinity, PointwiseConvGoesToDenseUnits) {
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kConv2d, 1)),
            MacKind::kDense100);
}

TEST(Affinity, DenseLayersGoToDenseUnits) {
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kDense, 0)),
            MacKind::kDense100);
}

TEST(Affinity, DepthwiseGoesToConv3) {
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kDepthwiseConv2d, 3)),
            MacKind::kConv3);
}

TEST(Affinity, IntermediateKernelsRoundUp) {
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kConv2d, 2)),
            MacKind::kConv3);
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kConv2d, 4)),
            MacKind::kConv5);
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kConv2d, 6)),
            MacKind::kConv7);
  EXPECT_EQ(affinity(make_layer(dnn::LayerKind::kConv2d, 11)),
            MacKind::kConv7);
}

TEST(Mapper, EveryComputeLayerGetsAssigned) {
  const auto model = dnn::zoo::make_resnet50();
  const auto workload = dnn::compute_workload(model, 8);
  const Platform platform(make_table1_spec(), power::default_tech());
  const auto assignments = map_layers(workload, platform);
  ASSERT_EQ(assignments.size(), workload.layers.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    EXPECT_EQ(assignments[i].workload_index, i);
    EXPECT_GT(assignments[i].macs_per_s, 0.0);
    EXPECT_GE(assignments[i].chiplets_used, 1u);
  }
}

TEST(Mapper, ResNetUsesDenseAndConvGroups) {
  const auto model = dnn::zoo::make_resnet50();
  const auto workload = dnn::compute_workload(model, 8);
  const Platform platform(make_table1_spec(), power::default_tech());
  const auto assignments = map_layers(workload, platform);
  bool saw_dense = false;
  bool saw_conv3 = false;
  bool saw_conv7 = false;
  for (const auto& a : assignments) {
    saw_dense |= a.group == MacKind::kDense100;   // 1x1 bottleneck convs
    saw_conv3 |= a.group == MacKind::kConv3;      // 3x3 convs
    saw_conv7 |= a.group == MacKind::kConv7;      // the 7x7 stem
  }
  EXPECT_TRUE(saw_dense);
  EXPECT_TRUE(saw_conv3);
  EXPECT_TRUE(saw_conv7);
}

TEST(Mapper, LeNetUsesConv5AndDense) {
  const auto model = dnn::zoo::make_lenet5();
  const auto workload = dnn::compute_workload(model, 8);
  const Platform platform(make_table1_spec(), power::default_tech());
  const auto assignments = map_layers(workload, platform);
  for (const auto& a : assignments) {
    EXPECT_TRUE(a.group == MacKind::kConv5 || a.group == MacKind::kDense100)
        << "LeNet layer mapped to " << to_string(a.group);
  }
}

TEST(Mapper, ChipletsUsedMatchesGroupSize) {
  const auto model = dnn::zoo::make_vgg16();
  const auto workload = dnn::compute_workload(model, 8);
  const Platform platform(make_table1_spec(), power::default_tech());
  const auto assignments = map_layers(workload, platform);
  for (const auto& a : assignments) {
    if (a.group == MacKind::kConv3) {
      EXPECT_EQ(a.chiplets_used, 3u);
    }
    if (a.group == MacKind::kDense100) {
      EXPECT_EQ(a.chiplets_used, 2u);
    }
  }
}

TEST(Mapper, AssignedThroughputMatchesPlatform) {
  const auto model = dnn::zoo::make_vgg16();
  const auto workload = dnn::compute_workload(model, 8);
  const Platform platform(make_table1_spec(), power::default_tech());
  const auto assignments = map_layers(workload, platform);
  for (const auto& a : assignments) {
    EXPECT_NEAR(a.macs_per_s, platform.group_macs_per_s(a.group), 1.0);
  }
}

}  // namespace
}  // namespace optiplet::accel
