#include "accel/mac_unit.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace optiplet::accel {
namespace {

TEST(MacUnit, VectorSizesMatchTable1Classes) {
  EXPECT_EQ(vector_size(MacKind::kDense100), 100u);
  EXPECT_EQ(vector_size(MacKind::kConv7), 49u);
  EXPECT_EQ(vector_size(MacKind::kConv5), 25u);
  EXPECT_EQ(vector_size(MacKind::kConv3), 9u);
}

TEST(MacUnit, ThroughputIsSizeTimesRate) {
  const power::ComputeTech tech;
  const PhotonicMacUnit unit(MacKind::kConv3, tech);
  EXPECT_NEAR(unit.peak_macs_per_s(), 9.0 * tech.mac_symbol_rate_hz, 1.0);
}

TEST(MacUnit, LargerUnitsHaveMoreThroughput) {
  const power::ComputeTech tech;
  EXPECT_GT(PhotonicMacUnit(MacKind::kDense100, tech).peak_macs_per_s(),
            PhotonicMacUnit(MacKind::kConv7, tech).peak_macs_per_s());
  EXPECT_GT(PhotonicMacUnit(MacKind::kConv7, tech).peak_macs_per_s(),
            PhotonicMacUnit(MacKind::kConv5, tech).peak_macs_per_s());
}

TEST(MacUnit, RingCountEqualsVectorSize) {
  const power::ComputeTech tech;
  EXPECT_EQ(PhotonicMacUnit(MacKind::kConv5, tech).ring_count(), 25u);
}

TEST(MacUnit, WeightReuseAmortizesDacEnergy) {
  const power::ComputeTech tech;
  const PhotonicMacUnit unit(MacKind::kConv3, tech);
  EXPECT_GT(unit.energy_per_symbol_j(1.0), unit.energy_per_symbol_j(64.0));
}

TEST(MacUnit, EnergyPerSymbolPicojouleClass) {
  const power::ComputeTech tech;
  const PhotonicMacUnit unit(MacKind::kConv3, tech);
  const double e = unit.energy_per_symbol_j(64.0);
  EXPECT_GT(e, 0.1e-12);
  EXPECT_LT(e, 50e-12);
}

TEST(MacUnit, EnergyPerMacBelowElectronicBaseline) {
  // The photonic MAC must beat ~1 pJ/MAC digital arithmetic, or the whole
  // premise collapses.
  const power::ComputeTech tech;
  const PhotonicMacUnit unit(MacKind::kDense100, tech);
  const double per_mac = unit.energy_per_symbol_j(64.0) / 100.0;
  EXPECT_LT(per_mac, 1e-12);
}

TEST(MacUnit, StaticPowerScalesWithSize) {
  const power::ComputeTech tech;
  EXPECT_GT(PhotonicMacUnit(MacKind::kDense100, tech).static_power_w(),
            PhotonicMacUnit(MacKind::kConv3, tech).static_power_w());
}

TEST(MacUnit, RejectsInvalidReuse) {
  const power::ComputeTech tech;
  const PhotonicMacUnit unit(MacKind::kConv3, tech);
  EXPECT_THROW(unit.energy_per_symbol_j(0.5), std::invalid_argument);
}

TEST(MacUnit, KindNamesAreStable) {
  EXPECT_STREQ(to_string(MacKind::kDense100), "100-unit dense");
  EXPECT_STREQ(to_string(MacKind::kConv3), "3x3 conv");
}

}  // namespace
}  // namespace optiplet::accel
