#include <gtest/gtest.h>

#include <algorithm>

#include "dnn/workload.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "serve/colocation.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"

namespace optiplet::serve {
namespace {

/// The batch-`batch` service time of `model` serving alone, computed
/// through the exact partition + oracle path the simulator uses.
double isolated_service_s(const std::string& model,
                          const core::SystemConfig& base,
                          unsigned batch = 1) {
  TenantDemand demand;
  demand.needed_kinds = needed_kinds(
      dnn::compute_workload(dnn::zoo::by_name(model), base.parameter_bits));
  const auto plan = partition_pool(base.compute_2p5d, {demand}, base.tech);
  core::SystemConfig config = base;
  config.compute_2p5d = plan.tenants[0].platform;
  ServiceTimeOracle oracle({{dnn::zoo::by_name(model), config}},
                           accel::Architecture::kSiph2p5D);
  return oracle.batch_run(0, batch).latency_s;
}

ServingConfig overloaded(const std::string& model, double overload,
                         AdmissionPolicy admission,
                         PipelineMode pipeline = PipelineMode::kBatchGranular,
                         std::uint64_t requests = 800) {
  const core::SystemConfig base = core::default_system_config();
  ServingSpec spec;
  spec.tenant_mix = model;
  spec.arrival_rps = overload / isolated_service_s(model, base);
  spec.requests = requests;
  spec.policy = BatchPolicy::kNone;
  spec.admission = admission;
  spec.pipeline = pipeline;
  return make_serving_config(base, accel::Architecture::kSiph2p5D, spec);
}

TEST(Admission, ShedAccountingIsExactInBothPipelineModes) {
  for (const PipelineMode pipeline :
       {PipelineMode::kBatchGranular, PipelineMode::kLayerGranular}) {
    // Layer-granular pipelining raises the capacity knee by the pipeline
    // depth, so it needs a deeper overload before the SLA becomes
    // unattainable and the shedder fires.
    const double overload =
        pipeline == PipelineMode::kBatchGranular ? 1.5 : 8.0;
    const auto report = simulate(
        overloaded("LeNet5", overload, AdmissionPolicy::kSlaShed, pipeline));
    const auto& m = report.metrics;
    // Every offered request is either completed or shed, exactly.
    EXPECT_EQ(m.offered, 800u);
    EXPECT_EQ(m.offered, m.completed + m.shed);
    EXPECT_GT(m.shed, 0u);  // 1.5x overload must actually shed
    EXPECT_LT(m.shed, m.offered);
    for (const auto& tenant : report.tenants) {
      EXPECT_EQ(tenant.offered, tenant.completed + tenant.shed);
    }
    // Goodput counts only SLA-met completions.
    EXPECT_LE(m.goodput_rps, m.throughput_rps * (1.0 + 1e-9));
    EXPECT_GT(m.goodput_rps, 0.0);
    // goodput * makespan recovers the SLA-met completion count.
    const double sla_met =
        static_cast<double>(m.completed) * (1.0 - m.sla_violation_rate);
    EXPECT_NEAR(m.goodput_rps * m.makespan_s, sla_met, 0.5);
  }
}

TEST(Admission, SheddingBoundsTheTailPastSaturation) {
  const auto all =
      simulate(overloaded("LeNet5", 1.5, AdmissionPolicy::kAdmitAll));
  const auto shed =
      simulate(overloaded("LeNet5", 1.5, AdmissionPolicy::kSlaShed));
  // Admit-all at 1.5x: the queue grows for the whole run, the tail
  // explodes, and most completions blow the SLA. Shedding keeps the
  // admitted queue within the deadline-feasible backlog.
  EXPECT_EQ(all.metrics.shed, 0u);
  EXPECT_GT(all.metrics.sla_violation_rate, 0.5);
  EXPECT_LT(shed.metrics.p99_s, 0.5 * all.metrics.p99_s);
  EXPECT_LT(shed.metrics.sla_violation_rate,
            0.2 * all.metrics.sla_violation_rate);
  EXPECT_GT(shed.metrics.goodput_rps, 2.0 * all.metrics.goodput_rps);
}

TEST(Admission, ShedIsInertBelowTheKnee) {
  // At 40% utilization every completion makes the (10x service) SLA with
  // room to spare: the shedder must not fire, and the run must be
  // bit-identical to admit-all.
  const auto all =
      simulate(overloaded("LeNet5", 0.4, AdmissionPolicy::kAdmitAll));
  const auto shed =
      simulate(overloaded("LeNet5", 0.4, AdmissionPolicy::kSlaShed));
  EXPECT_EQ(shed.metrics.shed, 0u);
  EXPECT_EQ(shed.metrics.completed, all.metrics.completed);
  EXPECT_EQ(shed.metrics.p99_s, all.metrics.p99_s);
  EXPECT_EQ(shed.metrics.makespan_s, all.metrics.makespan_s);
  EXPECT_EQ(shed.metrics.energy_j, all.metrics.energy_j);
}

TEST(Admission, DeadlineBatchingDoesNotFalseShedBelowTheKnee) {
  // Regression for the admission estimate's batching blind spot: the old
  // backlog formula priced every would-be admission at the *full*
  // max_batch service time, so a deadline-batched tenant whose SLA sits
  // between the batch-1 and batch-8 service times (ResNet50's batch-8
  // run costs ~6.7x its batch-1 run) shed its entire load even at ~30%
  // utilization. The estimate now models the deadline policy's fill
  // wait and the batch size it actually dispatches, so below the knee
  // nothing is shed and the run is bit-identical to admit-all.
  const core::SystemConfig base = core::default_system_config();
  const double service = isolated_service_s("ResNet50", base);
  ServingSpec spec;
  spec.tenant_mix = "ResNet50";
  spec.arrival_rps = 0.3 / service;
  spec.requests = 300;
  spec.policy = BatchPolicy::kDeadline;
  spec.max_batch = 8;
  spec.max_wait_s = 0.5 * service;
  spec.sla_s = 5.0 * service;
  // Precondition making the old estimator's verdict unambiguous: a full
  // batch-8 dispatch really does blow this SLA on its own.
  ASSERT_GT(isolated_service_s("ResNet50", base, 8), spec.sla_s);

  spec.admission = AdmissionPolicy::kSlaShed;
  const auto shed = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));
  EXPECT_EQ(shed.metrics.shed, 0u);
  EXPECT_EQ(shed.metrics.completed, 300u);
  // Nearly everything makes the SLA below the knee; a blanket shed (or a
  // blanket violation) trips this hard.
  EXPECT_LT(shed.metrics.sla_violation_rate, 0.05);

  spec.admission = AdmissionPolicy::kAdmitAll;
  const auto all = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));
  EXPECT_EQ(shed.metrics.p99_s, all.metrics.p99_s);
  EXPECT_EQ(shed.metrics.makespan_s, all.metrics.makespan_s);
  EXPECT_EQ(shed.metrics.energy_j, all.metrics.energy_j);
}

TEST(Admission, PriorityClassOrdersSharedGroupGrants) {
  // ResNet50 + DenseNet121 serialize on the single 7x7 chiplet. With
  // ResNet50 in class 0 and DenseNet121 in class 1, every contended
  // grant goes to ResNet50 first, so the low-priority tenant absorbs the
  // serialization wait.
  const core::SystemConfig base = core::default_system_config();
  ServingSpec spec;
  spec.tenant_mix = "ResNet50+DenseNet121";
  spec.priority_mix = "0+1";
  spec.arrival_rps = 600.0;  // past the fully-serialized mix capacity
  spec.requests = 80;
  spec.policy = BatchPolicy::kNone;
  const auto report = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));
  ASSERT_EQ(report.tenants.size(), 2u);
  const TenantReport& hi = report.tenants[0];
  const TenantReport& lo = report.tenants[1];
  EXPECT_EQ(hi.priority, 0u);
  EXPECT_EQ(lo.priority, 1u);
  EXPECT_GT(lo.shared_wait_s, hi.shared_wait_s);

  // Per-class aggregates: sorted ascending, counts partition the run.
  ASSERT_EQ(report.classes.size(), 2u);
  EXPECT_EQ(report.classes[0].priority, 0u);
  EXPECT_EQ(report.classes[1].priority, 1u);
  EXPECT_EQ(report.classes[0].offered + report.classes[1].offered,
            report.metrics.offered);
  EXPECT_EQ(report.classes[0].completed + report.classes[1].completed,
            report.metrics.completed);
  EXPECT_EQ(report.metrics.p99_hi_s, report.classes[0].p99_s);
  EXPECT_EQ(report.metrics.p99_lo_s, report.classes[1].p99_s);
  // The important class gets the better tail.
  EXPECT_LT(report.metrics.p99_hi_s, report.metrics.p99_lo_s);
}

TEST(Admission, ClassAwareShedEstimateSparesHighPriorityColocation) {
  // Regression for the admission estimate's priority blind spot: the old
  // backlog formula kept a single "shared pool free at" horizon, so a
  // saturated low-priority tenant's committed shared-serial windows were
  // charged against every high-priority admission too — and a class-0
  // stream running well below its own knee shed alongside its noisy
  // neighbor. The estimate now tracks the committed horizon per priority
  // class and charges an admission only with windows of classes at least
  // as important as its own, matching the grant order the executor
  // actually enforces. The below-knee class-0 stream must sail through
  // unshed while the class-1 stream keeps shedding.
  const core::SystemConfig base = core::default_system_config();
  ServingSpec spec;
  spec.tenant_mix = "ResNet50+DenseNet121";
  spec.priority_mix = "0+1";
  spec.policy = BatchPolicy::kNone;
  spec.admission = AdmissionPolicy::kSlaShed;
  spec.requests = 360;
  auto config = make_serving_config(base, accel::Architecture::kSiph2p5D, spec);
  ASSERT_EQ(config.tenants.size(), 2u);
  // Per-tenant rates (the spec splits one aggregate evenly): the class-0
  // stream idles far below its partitioned capacity; the class-1 stream
  // is pushed well past its own knee so the shedder must stay busy.
  config.tenants[0].arrival_rps =
      0.15 / isolated_service_s("ResNet50", base);
  config.tenants[0].requests = 120;
  config.tenants[1].arrival_rps =
      3.0 / isolated_service_s("DenseNet121", base);
  config.tenants[1].requests = 240;
  const auto report = simulate(config);
  ASSERT_EQ(report.tenants.size(), 2u);
  const TenantReport& hi = report.tenants[0];
  const TenantReport& lo = report.tenants[1];
  ASSERT_EQ(hi.priority, 0u);
  EXPECT_EQ(hi.offered, 120u);
  // The regression bite: no false sheds and a healthy SLA record for the
  // protected class...
  EXPECT_EQ(hi.shed, 0u);
  EXPECT_EQ(hi.completed, hi.offered);
  EXPECT_LT(hi.sla_violation_rate, 0.05);
  // ...in the same run where the saturated class really is shedding.
  EXPECT_GT(lo.shed, 0u);
}

TEST(Admission, SingleClassRunsMatchTheFifoBaseline) {
  // All-zero priorities must reproduce the historical FIFO grant order
  // bit-for-bit ("0+0" is the explicit spelling of the default).
  const core::SystemConfig base = core::default_system_config();
  ServingSpec spec;
  spec.tenant_mix = "ResNet50+DenseNet121";
  spec.arrival_rps = 400.0;
  spec.requests = 40;
  spec.policy = BatchPolicy::kNone;
  const auto fifo = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));
  spec.priority_mix = "0+0";
  const auto classed = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));
  EXPECT_EQ(fifo.metrics.p99_s, classed.metrics.p99_s);
  EXPECT_EQ(fifo.metrics.makespan_s, classed.metrics.makespan_s);
  EXPECT_EQ(fifo.metrics.energy_j, classed.metrics.energy_j);
  ASSERT_EQ(fifo.classes.size(), 1u);
  EXPECT_EQ(fifo.metrics.p99_hi_s, fifo.metrics.p99_lo_s);
}

TEST(Admission, PriorityMixValidation) {
  ServingSpec spec;
  spec.tenant_mix = "LeNet5";
  spec.priority_mix = "0+1";  // two classes for one tenant
  EXPECT_THROW((void)spec.priorities(), std::invalid_argument);
  spec.priority_mix = "zero";
  EXPECT_THROW((void)spec.priorities(), std::invalid_argument);
  spec.priority_mix = "2";
  EXPECT_EQ(spec.priorities(), std::vector<unsigned>{2u});
  spec.priority_mix.clear();
  EXPECT_EQ(spec.priorities(), std::vector<unsigned>{0u});
}

TEST(AdmissionScenarioKey, AdmissionAndPrioritySplitTheKey) {
  engine::ScenarioSpec a;
  a.model = "LeNet5";
  a.serving = ServingSpec{};
  a.serving->tenant_mix = "LeNet5";
  engine::ScenarioSpec b = a;
  b.serving->admission = AdmissionPolicy::kSlaShed;
  EXPECT_NE(a.key(), b.key());
  engine::ScenarioSpec c = a;
  c.serving->priority_mix = "1";
  EXPECT_NE(a.key(), c.key());
}

TEST(AdmissionGrid, AdmissionAxisExpandsAndReportsCsvColumns) {
  engine::ScenarioGrid grid;
  grid.tenant_mixes = {"LeNet5"};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.arrival_rates_rps = {40000.0};
  grid.admission_policies = {AdmissionPolicy::kAdmitAll,
                             AdmissionPolicy::kSlaShed};
  grid.serving_defaults.requests = 150;

  const core::SystemConfig base = core::default_system_config();
  const auto specs = grid.expand(base);
  ASSERT_EQ(specs.size(), 2u);
  engine::SweepRunner runner(base);
  const auto results = runner.run(specs);
  ASSERT_EQ(results.size(), 2u);

  const auto header = engine::ResultStore::csv_header();
  const auto column = [&header](const char* name) {
    return static_cast<std::size_t>(
        std::find(header.begin(), header.end(), name) - header.begin());
  };
  ASSERT_LT(column("admission"), header.size());
  const auto all_row = engine::ResultStore::csv_row(results[0]);
  const auto shed_row = engine::ResultStore::csv_row(results[1]);
  EXPECT_EQ(all_row[column("admission")], "all");
  EXPECT_EQ(shed_row[column("admission")], "shed");
  EXPECT_EQ(all_row[column("shed")], "0");
  // goodput/p99-class columns are populated numerics on serving rows.
  EXPECT_FALSE(shed_row[column("goodput_rps")].empty());
  EXPECT_FALSE(shed_row[column("p99_hi_s")].empty());
}

}  // namespace
}  // namespace optiplet::serve
