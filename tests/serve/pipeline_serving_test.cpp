/// \file pipeline_serving_test.cpp
/// Invariants of layer-granular (SET-style pipelined) serving:
///   * no chiplet group is ever double-booked — across tenants *and*
///     across a tenant's own in-flight batches;
///   * at saturating load on a co-located mix the pipelined pool runs at
///     strictly higher utilization (and shorter tails) than the blocked
///     batch-granular baseline;
///   * a lone batch in flight degenerates to the batch-granular result
///     bit-for-bit (the validated baseline stays authoritative);
///   * cross-tenant handoffs of the scarce shared group charge exactly
///     one ReSiPI retune window each.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"

namespace optiplet::serve {
namespace {

ServingConfig mix_config(const std::string& mix, double rate_rps,
                         std::uint64_t requests, PipelineMode pipeline) {
  ServingSpec spec;
  spec.tenant_mix = mix;
  spec.arrival_rps = rate_rps;
  spec.requests = requests;
  spec.policy = BatchPolicy::kNone;
  spec.pipeline = pipeline;
  return make_serving_config(core::default_system_config(),
                             accel::Architecture::kSiph2p5D, spec);
}

/// True when [a0,a1) and [b0,b1) overlap.
bool overlaps(double a0, double a1, double b0, double b1) {
  return a0 < b1 && b0 < a1;
}

TEST(LayerSchedule, DecomposesTheBatchRunConsistently) {
  // The schedule is the batch run, re-expressed: segment latencies come
  // from the per-layer breakdown, stages partition the layers into
  // maximal same-group runs, the last stage's end offset pins the chain
  // to the run latency *exactly*, and the totals echo the run.
  const core::SystemConfig base = core::default_system_config();
  ServiceTimeOracle oracle({{dnn::zoo::by_name("MobileNetV2"), base}},
                           accel::Architecture::kSiph2p5D);
  for (const unsigned batch : {1u, 4u}) {
    const core::RunResult& run = oracle.batch_run(0, batch);
    const LayerSchedule& schedule = oracle.layer_schedule(0, batch);
    EXPECT_EQ(schedule.total_latency_s, run.latency_s);
    EXPECT_EQ(schedule.total_energy_j, run.energy_j);
    ASSERT_EQ(schedule.layers.size(), run.layers.size());
    ASSERT_FALSE(schedule.stages.empty());
    EXPECT_GT(schedule.stages.size(), 1u);  // MobileNetV2 mixes groups
    EXPECT_EQ(schedule.stages.back().end_offset_s, run.latency_s);
    std::size_t covered = 0;
    double energy = 0.0;
    double prev_end = 0.0;
    for (const PipelineStage& stage : schedule.stages) {
      EXPECT_EQ(stage.first_layer, covered);
      EXPECT_EQ(stage.start_offset_s, prev_end);  // exact telescoping
      for (std::size_t i = 0; i < stage.layer_count; ++i) {
        EXPECT_EQ(schedule.layers[covered + i].group, stage.group);
      }
      covered += stage.layer_count;
      energy += stage.energy_j;
      prev_end = stage.end_offset_s;
    }
    EXPECT_EQ(covered, schedule.layers.size());
    EXPECT_NEAR(energy, schedule.total_energy_j,
                1e-9 * schedule.total_energy_j);
  }
}

TEST(PipelineServing, NeverDoubleBooksAnyChipletGroup) {
  // MobileNetV2 + ResNet50 under load, pipelined: stages of concurrent
  // batches — same tenant or not — must hold disjoint chiplets, and
  // cross-tenant ReSiPI windows must still serialize.
  auto config = mix_config("MobileNetV2+ResNet50", 800.0, 120,
                           PipelineMode::kLayerGranular);
  config.record_batches = true;
  const auto report = simulate(config);
  EXPECT_EQ(report.metrics.completed, 120u);
  ASSERT_FALSE(report.batches.empty());

  for (std::size_t i = 0; i < report.batches.size(); ++i) {
    for (std::size_t j = i + 1; j < report.batches.size(); ++j) {
      const auto& a = report.batches[i];
      const auto& b = report.batches[j];
      if (!overlaps(a.start_s, a.end_s, b.start_s, b.end_s)) {
        continue;
      }
      // Unlike the batch-granular audit, same-tenant pairs are checked
      // too: pipelined batches of one tenant overlap in time and must sit
      // on different chiplet groups.
      if (a.tenant != b.tenant || a.batch_id != b.batch_id) {
        for (const std::size_t c : a.chiplets) {
          EXPECT_EQ(std::find(b.chiplets.begin(), b.chiplets.end(), c),
                    b.chiplets.end())
              << "chiplet " << c << " double-booked";
        }
      }
      if (a.tenant != b.tenant && a.resipi_end_s > a.resipi_start_s &&
          b.resipi_end_s > b.resipi_start_s) {
        EXPECT_FALSE(overlaps(a.resipi_start_s, a.resipi_end_s,
                              b.resipi_start_s, b.resipi_end_s))
            << "cross-tenant ReSiPI windows overlap";
      }
    }
  }
}

TEST(PipelineServing, RaisesUtilizationAtSaturatingLoadOnColocatedMix) {
  // ResNet50 + DenseNet121 both need the single 7x7 chiplet. At 3000 r/s
  // (far past capacity) the batch-granular pool serializes whole batches
  // on the shared lock; layer-granular handoff overlaps everything else,
  // so utilization, throughput, and the tail must all improve strictly.
  const auto blocked = simulate(mix_config("ResNet50+DenseNet121", 3000.0,
                                           80, PipelineMode::kBatchGranular));
  const auto pipelined = simulate(mix_config(
      "ResNet50+DenseNet121", 3000.0, 80, PipelineMode::kLayerGranular));
  EXPECT_EQ(blocked.metrics.completed, 80u);
  EXPECT_EQ(pipelined.metrics.completed, 80u);
  EXPECT_GT(pipelined.metrics.utilization, blocked.metrics.utilization);
  EXPECT_GT(pipelined.metrics.throughput_rps,
            1.5 * blocked.metrics.throughput_rps);
  EXPECT_LT(pipelined.metrics.p99_s, blocked.metrics.p99_s);
  EXPECT_LT(pipelined.metrics.makespan_s, blocked.metrics.makespan_s);
  // The scarce group actually changed hands at layer boundaries.
  EXPECT_GT(pipelined.metrics.shared_handoffs, 0u);
  EXPECT_EQ(blocked.metrics.shared_handoffs, 0u);
}

TEST(PipelineServing, HandoffsChargeOneRetuneWindowEach) {
  const auto report = simulate(mix_config("ResNet50+DenseNet121", 3000.0, 40,
                                          PipelineMode::kLayerGranular));
  const auto& m = report.metrics;
  ASSERT_GT(m.shared_handoffs, 0u);
  const double write_s =
      core::default_system_config().tech.photonic.pcm.write_time_s;
  EXPECT_DOUBLE_EQ(m.handoff_resipi_s,
                   static_cast<double>(m.shared_handoffs) * write_s);
}

TEST(PipelineServing, SingleTenantPipelinesAcrossItsGroups) {
  // LeNet5 alternates conv and dense groups: past the no-batch capacity,
  // pipelining batch i's dense layers under batch i+1's convs sustains
  // strictly higher throughput at identical per-batch energy.
  const auto blocked = simulate(
      mix_config("LeNet5", 200000.0, 600, PipelineMode::kBatchGranular));
  const auto pipelined = simulate(
      mix_config("LeNet5", 200000.0, 600, PipelineMode::kLayerGranular));
  EXPECT_EQ(pipelined.metrics.completed, 600u);
  EXPECT_GT(pipelined.metrics.throughput_rps,
            1.2 * blocked.metrics.throughput_rps);
  EXPECT_LT(pipelined.metrics.p99_s, blocked.metrics.p99_s);
  EXPECT_NEAR(pipelined.metrics.energy_per_request_j,
              blocked.metrics.energy_per_request_j,
              0.02 * blocked.metrics.energy_per_request_j);
}

TEST(PipelineServing, LoneBatchDegeneratesToBatchGranularExactly) {
  // Arrivals spaced far beyond the service time: never more than one
  // batch in flight, so the layer-advance chain must telescope to the
  // batch-granular completion times bit-for-bit.
  const std::string path =
      ::testing::TempDir() + "pipeline_degenerate_trace.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "arrival_s\n0.000\n0.010\n0.020\n0.030\n";
  }
  ServingSpec spec;
  spec.tenant_mix = "LeNet5";
  spec.policy = BatchPolicy::kNone;
  spec.trace_path = path;
  const core::SystemConfig base = core::default_system_config();
  spec.pipeline = PipelineMode::kBatchGranular;
  const auto blocked = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));
  spec.pipeline = PipelineMode::kLayerGranular;
  const auto pipelined = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));
  std::remove(path.c_str());

  EXPECT_EQ(pipelined.metrics.completed, blocked.metrics.completed);
  EXPECT_EQ(pipelined.metrics.makespan_s, blocked.metrics.makespan_s);
  EXPECT_EQ(pipelined.metrics.mean_latency_s,
            blocked.metrics.mean_latency_s);
  EXPECT_EQ(pipelined.metrics.p50_s, blocked.metrics.p50_s);
  EXPECT_EQ(pipelined.metrics.p99_s, blocked.metrics.p99_s);
  EXPECT_EQ(pipelined.metrics.throughput_rps,
            blocked.metrics.throughput_rps);
  // Busy time is accumulated per stage instead of per batch, so energy
  // and utilization may differ by float-rounding ulps, nothing more.
  EXPECT_NEAR(pipelined.metrics.energy_j, blocked.metrics.energy_j,
              1e-9 * blocked.metrics.energy_j);
  EXPECT_NEAR(pipelined.metrics.utilization, blocked.metrics.utilization,
              1e-9);
}

TEST(PipelineServing, ModeSplitsScenarioKeyAndCsv) {
  engine::ScenarioSpec a;
  a.model = "LeNet5";
  a.serving = ServingSpec{};
  a.serving->tenant_mix = "LeNet5";
  engine::ScenarioSpec b = a;
  b.serving->pipeline = PipelineMode::kLayerGranular;
  EXPECT_NE(a.key(), b.key());

  engine::ScenarioGrid grid;
  grid.tenant_mixes = {"LeNet5"};
  grid.pipeline_modes = {PipelineMode::kBatchGranular,
                         PipelineMode::kLayerGranular};
  const auto specs = grid.expand(core::default_system_config());
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].serving->pipeline, PipelineMode::kBatchGranular);
  EXPECT_EQ(specs[1].serving->pipeline, PipelineMode::kLayerGranular);

  // The CSV face carries the mode in the "pipeline" column.
  const auto header = engine::ResultStore::csv_header();
  const auto it = std::find(header.begin(), header.end(), "pipeline");
  ASSERT_NE(it, header.end());
  engine::ScenarioResult result;
  result.spec = specs[1];
  result.serving = ServingMetrics{};
  const auto row = engine::ResultStore::csv_row(result);
  EXPECT_EQ(row[static_cast<std::size_t>(it - header.begin())], "layer");
}

}  // namespace
}  // namespace optiplet::serve
