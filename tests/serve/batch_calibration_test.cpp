/// \file batch_calibration_test.cpp
/// Batch-dimension calibration at cycle fidelity: the serving stack's
/// batched service-time oracle trusts the system models' batch scaling,
/// so batch-B cycle-accurate runs must track the analytical runs the way
/// photonic_calibration_test pins them at batch 1. Drift here would let
/// a serving sweep at analytical fidelity claim batching wins the cycle
/// model does not reproduce.

#include <gtest/gtest.h>

#include "core/system_config.hpp"
#include "core/system_simulator.hpp"
#include "dnn/zoo.hpp"

namespace optiplet::core {
namespace {

RunResult run_at(FidelitySpec fidelity, unsigned batch,
                 const std::string& model) {
  SystemConfig config = default_system_config();
  config.fidelity = fidelity;
  config.batch_size = batch;
  return SystemSimulator(config).run(dnn::zoo::by_name(model),
                                     accel::Architecture::kSiph2p5D);
}

TEST(BatchCalibration, CycleTracksAnalyticalAcrossBatchSizes) {
  // LeNet5 stays in minimum-gateway provisioning at every batch size, so
  // the batch-1 tolerance band (5%) must hold across the batch axis too.
  for (const unsigned batch : {2u, 4u, 8u}) {
    const RunResult a = run_at(Fidelity::kAnalytical, batch, "LeNet5");
    const RunResult c = run_at(Fidelity::kCycleAccurate, batch, "LeNet5");
    ASSERT_EQ(a.traffic_bits, c.traffic_bits) << "batch " << batch;
    EXPECT_GT(c.latency_s, a.latency_s * 0.95) << "batch " << batch;
    EXPECT_LT(c.latency_s, a.latency_s * 1.05) << "batch " << batch;
    EXPECT_GT(c.energy_j, a.energy_j * 0.95) << "batch " << batch;
    EXPECT_LT(c.energy_j, a.energy_j * 1.05) << "batch " << batch;
  }
}

TEST(BatchCalibration, BatchScalingCurveAgreesAcrossFidelities) {
  // The amortization curve D(B)/D(1) is what every batching policy trades
  // on: it must be sublinear (weights stream once per batch) and the two
  // fidelities must agree on it within 10% at every point.
  const RunResult a1 = run_at(Fidelity::kAnalytical, 1, "LeNet5");
  const RunResult c1 = run_at(Fidelity::kCycleAccurate, 1, "LeNet5");
  for (const unsigned batch : {2u, 4u, 8u}) {
    const RunResult a = run_at(Fidelity::kAnalytical, batch, "LeNet5");
    const RunResult c = run_at(Fidelity::kCycleAccurate, batch, "LeNet5");
    const double analytic_scale = a.latency_s / a1.latency_s;
    const double cycle_scale = c.latency_s / c1.latency_s;
    EXPECT_GT(analytic_scale, 1.0) << "batch " << batch;
    EXPECT_LT(analytic_scale, static_cast<double>(batch))
        << "batch " << batch;
    EXPECT_GT(cycle_scale, 1.0) << "batch " << batch;
    EXPECT_LT(cycle_scale, static_cast<double>(batch)) << "batch " << batch;
    EXPECT_NEAR(cycle_scale, analytic_scale, 0.1 * analytic_scale)
        << "batch " << batch;
  }
}

TEST(BatchCalibration, ReconfiguringModelStaysInBandAtBatch4) {
  // MobileNetV2 exercises ReSiPI up/down-provisioning, and batch 4
  // multiplies the activation traffic every reader gateway contends for:
  // the cycle model may only be *slower* than the contention-free
  // analytical bound, and the divergence is allowed to grow beyond the
  // batch-1 band (1.5x) but must stay bounded (< 2x latency, < 1.6x
  // energy) or the analytical batching wins are not grounded.
  const RunResult a = run_at(Fidelity::kAnalytical, 4, "MobileNetV2");
  const RunResult c = run_at(Fidelity::kCycleAccurate, 4, "MobileNetV2");
  ASSERT_EQ(a.traffic_bits, c.traffic_bits);
  EXPECT_GT(c.latency_s, a.latency_s * 0.9);
  EXPECT_LT(c.latency_s, a.latency_s * 2.0);
  EXPECT_GT(c.energy_j, a.energy_j * 0.9);
  EXPECT_LT(c.energy_j, a.energy_j * 1.6);
  EXPECT_GT(c.resipi_reconfigurations, 0u);
}

TEST(BatchCalibration, SampledStaysInsideTheCycleBandsAcrossBatchSizes) {
  // The sampled mode inherits the calibration contract it stitches from:
  // at the bench operating point (8 windows), corrected latencies and
  // energies must land within the same band of the cycle-accurate run
  // that the cycle run keeps against the analytical one — otherwise the
  // speedup is bought with accuracy the other tests promised.
  FidelitySpec sampled(Fidelity::kSampled);
  sampled.windows = 8;
  sampled.seed = 3;
  for (const unsigned batch : {1u, 4u, 8u}) {
    const RunResult s = run_at(sampled, batch, "MobileNetV2");
    const RunResult c =
        run_at(Fidelity::kCycleAccurate, batch, "MobileNetV2");
    ASSERT_EQ(s.traffic_bits, c.traffic_bits) << "batch " << batch;
    EXPECT_GT(s.latency_s, c.latency_s * 0.90) << "batch " << batch;
    EXPECT_LT(s.latency_s, c.latency_s * 1.10) << "batch " << batch;
    EXPECT_GT(s.energy_j, c.energy_j * 0.90) << "batch " << batch;
    EXPECT_LT(s.energy_j, c.energy_j * 1.10) << "batch " << batch;
    // The stitching telemetry must describe a genuinely partial run whose
    // calibration stayed near unity (the correction absorbs residual
    // serialization error, not a provisioning mismatch).
    EXPECT_GT(s.sampled_layers, 0u) << "batch " << batch;
    EXPECT_LT(s.sampled_layers, s.layers.size()) << "batch " << batch;
    EXPECT_GT(s.correction_factor, 0.7) << "batch " << batch;
    EXPECT_LT(s.correction_factor, 1.5) << "batch " << batch;
  }
}

}  // namespace
}  // namespace optiplet::core
