#include <gtest/gtest.h>

#include <algorithm>

#include "dnn/workload.hpp"
#include "dnn/zoo.hpp"
#include "engine/result_store.hpp"
#include "engine/scenario.hpp"
#include "serve/colocation.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"

namespace optiplet::serve {
namespace {

/// The batch-1 service time of `model` serving alone, computed through the
/// exact partition + oracle path the simulator uses.
double isolated_service_s(const std::string& model,
                          const core::SystemConfig& base) {
  TenantDemand demand;
  demand.needed_kinds = needed_kinds(
      dnn::compute_workload(dnn::zoo::by_name(model), base.parameter_bits));
  const auto plan = partition_pool(base.compute_2p5d, {demand}, base.tech);
  core::SystemConfig config = base;
  config.compute_2p5d = plan.tenants[0].platform;
  ServiceTimeOracle oracle({{dnn::zoo::by_name(model), config}},
                           accel::Architecture::kSiph2p5D);
  return oracle.batch_run(0, 1).latency_s;
}

ServingConfig closed_tenant(const std::string& model, unsigned users,
                            double think_s, std::uint64_t requests,
                            BatchPolicy policy = BatchPolicy::kNone) {
  ServingSpec spec;
  spec.tenant_mix = model;
  spec.source = ArrivalSource::kClosedLoop;
  spec.users = users;
  spec.think_s = think_s;
  spec.requests = requests;
  spec.policy = policy;
  return make_serving_config(core::default_system_config(),
                             accel::Architecture::kSiph2p5D, spec);
}

TEST(ClosedLoop, DeterministicAndCompletesTheBudget) {
  const core::SystemConfig base = core::default_system_config();
  const double service = isolated_service_s("LeNet5", base);
  const auto config = closed_tenant("LeNet5", 8, 20.0 * service, 400);
  const auto a = simulate(config);
  const auto b = simulate(config);
  // The budget is spent exactly: every issued request arrives and
  // completes (no shedding under the admit-all default).
  EXPECT_EQ(a.metrics.offered, 400u);
  EXPECT_EQ(a.metrics.completed, 400u);
  EXPECT_EQ(a.metrics.shed, 0u);
  // Bit-identical across runs: seeded think draws + deterministic events.
  EXPECT_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
  EXPECT_EQ(a.metrics.p99_s, b.metrics.p99_s);
  EXPECT_EQ(a.metrics.energy_j, b.metrics.energy_j);
  EXPECT_EQ(a.metrics.throughput_rps, b.metrics.throughput_rps);
}

TEST(ClosedLoop, OfferedLoadFlattensAtSaturation) {
  // The self-throttling property the source exists for: with a client
  // pool whose think-time bound is ~8x the executor's capacity, the
  // measured offered rate flattens at capacity (each user waits for its
  // response before reissuing) and latency stays bounded by the pool
  // size — while the equivalent open-loop stream at the same nominal
  // load blows its queue up for the whole run.
  const core::SystemConfig base = core::default_system_config();
  const double service = isolated_service_s("LeNet5", base);
  const double capacity_rps = 1.0 / service;
  const unsigned users = 32;
  const double think_s = 4.0 * service;  // bound = 32/(4D) = 8x capacity
  const double bound_rps = static_cast<double>(users) / think_s;
  ASSERT_GT(bound_rps, 4.0 * capacity_rps);

  const auto closed =
      simulate(closed_tenant("LeNet5", users, think_s, 1200));
  EXPECT_EQ(closed.metrics.completed, 1200u);
  const double offered_rate =
      static_cast<double>(closed.metrics.offered) /
      closed.metrics.makespan_s;
  // Offered load flattens at the service capacity, far below the
  // client-pool bound.
  EXPECT_LT(offered_rate, 1.05 * capacity_rps);
  EXPECT_LT(closed.metrics.throughput_rps, 1.05 * capacity_rps);
  // Latency is bounded by the pool: at most `users` requests can be in
  // the system, so no request waits behind more than the whole pool.
  EXPECT_LT(closed.metrics.max_latency_s,
            1.5 * static_cast<double>(users) * service);

  ServingSpec open_spec;
  open_spec.tenant_mix = "LeNet5";
  open_spec.arrival_rps = bound_rps;  // same nominal load, open loop
  open_spec.requests = 1200;
  open_spec.policy = BatchPolicy::kNone;
  const auto open = simulate(make_serving_config(
      base, accel::Architecture::kSiph2p5D, open_spec));
  // The open-loop queue grows for the whole run: its tail dwarfs the
  // self-throttled pool's.
  EXPECT_GT(open.metrics.p99_s, 3.0 * closed.metrics.p99_s);
  EXPECT_GT(open.metrics.mean_latency_s, closed.metrics.mean_latency_s);
}

TEST(ClosedLoop, ThroughputRespectsTheThinkTimeBound) {
  // Think-dominated regime: each user's cycle is think + response, so
  // throughput approaches users / think_s. The bound holds in
  // expectation only — the realized sum of ~150 exponential thinks per
  // user wobbles by a few percent — so it gets sampling slack; a
  // self-throttling regression would overshoot by the pool factor.
  const core::SystemConfig base = core::default_system_config();
  const double service = isolated_service_s("LeNet5", base);
  const unsigned users = 4;
  const double think_s = 100.0 * service;
  const auto report =
      simulate(closed_tenant("LeNet5", users, think_s, 600));
  const double bound_rps = static_cast<double>(users) / think_s;
  EXPECT_EQ(report.metrics.completed, 600u);
  EXPECT_LE(report.metrics.throughput_rps, bound_rps * 1.10);
  EXPECT_GT(report.metrics.throughput_rps, 0.8 * bound_rps);
  // Light load: requests barely queue, so latency sits near the service
  // time.
  EXPECT_LT(report.metrics.p50_s, 2.0 * service);
}

TEST(ClosedLoop, ComposesWithBatchingAndPipelining) {
  // The client pool rides the same queue/dispatch machinery as open-loop
  // arrivals, so batching policies and layer-granular execution compose.
  const core::SystemConfig base = core::default_system_config();
  const double service = isolated_service_s("LeNet5", base);
  ServingSpec spec;
  spec.tenant_mix = "LeNet5";
  spec.source = ArrivalSource::kClosedLoop;
  spec.users = 24;
  spec.think_s = 2.0 * service;
  spec.requests = 500;
  spec.policy = BatchPolicy::kDeadline;
  spec.max_batch = 8;
  spec.max_wait_s = 4.0 * service;
  spec.pipeline = PipelineMode::kLayerGranular;
  const auto report = simulate(make_serving_config(
      base, accel::Architecture::kSiph2p5D, spec));
  EXPECT_EQ(report.metrics.offered, 500u);
  EXPECT_EQ(report.metrics.completed, 500u);
  EXPECT_GT(report.metrics.mean_batch, 1.0);  // batching actually engaged
}

TEST(ClosedLoop, RejectsTraceReplayAndBadKnobs) {
  ServingSpec spec;
  spec.tenant_mix = "LeNet5";
  spec.source = ArrivalSource::kClosedLoop;
  spec.trace_path = "arrivals.csv";
  EXPECT_THROW((void)make_serving_config(core::default_system_config(),
                                         accel::Architecture::kSiph2p5D,
                                         spec),
               std::invalid_argument);
  ServingConfig config = closed_tenant("LeNet5", 4, 1e-3, 100);
  config.tenants[0].users = 0;
  EXPECT_THROW((void)simulate(config), std::invalid_argument);
  config.tenants[0].users = 4;
  config.tenants[0].think_s = -1.0;
  EXPECT_THROW((void)simulate(config), std::invalid_argument);
}

TEST(ClosedLoopScenarioKey, ClosedLoopKnobsDefineTheExperiment) {
  engine::ScenarioSpec open;
  open.model = "LeNet5";
  open.serving = ServingSpec{};
  open.serving->tenant_mix = "LeNet5";
  engine::ScenarioSpec closed = open;
  closed.serving->source = ArrivalSource::kClosedLoop;
  EXPECT_NE(open.key(), closed.key());

  // Users and think time split the key; the ignored open-loop rate must
  // not.
  engine::ScenarioSpec a = closed;
  engine::ScenarioSpec b = closed;
  b.serving->users += 1;
  EXPECT_NE(a.key(), b.key());
  b = closed;
  b.serving->think_s *= 2.0;
  EXPECT_NE(a.key(), b.key());
  b = closed;
  b.serving->arrival_rps += 1000.0;
  EXPECT_EQ(a.key(), b.key());
  // Open-loop specs ignore the closed-loop knobs symmetrically.
  engine::ScenarioSpec c = open;
  c.serving->users += 9;
  c.serving->think_s *= 3.0;
  EXPECT_EQ(open.key(), c.key());

  // Trace mode keeps the source in the key: trace + closed loop is
  // rejected at evaluation, so the invalid spec must never ride a valid
  // spec's cached result.
  engine::ScenarioSpec t1 = open;
  t1.serving->trace_path = "arrivals.csv";
  engine::ScenarioSpec t2 = t1;
  t2.serving->source = ArrivalSource::kClosedLoop;
  EXPECT_NE(t1.key(), t2.key());
}

TEST(ClosedLoopGrid, UserAxisExpandsAndReportsCsvColumns) {
  engine::ScenarioGrid grid;
  grid.tenant_mixes = {"LeNet5"};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.arrival_sources = {ArrivalSource::kClosedLoop};
  grid.user_counts = {2, 8};
  grid.serving_defaults.think_s = 1e-3;
  grid.serving_defaults.requests = 60;

  const core::SystemConfig base = core::default_system_config();
  const auto specs = grid.expand(base);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(grid.raw_size(), 2u);
  for (const auto& spec : specs) {
    ASSERT_TRUE(spec.serving.has_value());
    EXPECT_EQ(spec.serving->source, ArrivalSource::kClosedLoop);
  }
  EXPECT_EQ(specs[0].serving->users, 2u);
  EXPECT_EQ(specs[1].serving->users, 8u);

  engine::SweepRunner runner(base);
  const auto results = runner.run(specs);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].serving.has_value());
  EXPECT_EQ(results[0].serving->completed, 60u);

  const auto header = engine::ResultStore::csv_header();
  const auto column = [&header](const char* name) {
    return std::find(header.begin(), header.end(), name) - header.begin();
  };
  const auto row = engine::ResultStore::csv_row(results[0]);
  ASSERT_EQ(row.size(), header.size());
  EXPECT_EQ(row[static_cast<std::size_t>(column("arrival_source"))],
            "closed");
  EXPECT_EQ(row[static_cast<std::size_t>(column("users"))], "2");
  EXPECT_EQ(row[static_cast<std::size_t>(column("shed"))], "0");
}

}  // namespace
}  // namespace optiplet::serve
