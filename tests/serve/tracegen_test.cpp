#include "serve/tracegen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "serve/serving_simulator.hpp"

namespace optiplet::serve {
namespace {

/// Index of dispersion (variance/mean) of per-bin arrival counts: ~1 for
/// a homogeneous Poisson process, > 1 for bursty traffic.
double dispersion(const std::vector<TraceEvent>& events, double duration_s,
                  std::size_t bins) {
  std::vector<double> counts(bins, 0.0);
  for (const auto& e : events) {
    const auto bin = std::min(
        bins - 1, static_cast<std::size_t>(e.arrival_s / duration_s *
                                           static_cast<double>(bins)));
    counts[bin] += 1.0;
  }
  double mean = 0.0;
  for (const double c : counts) {
    mean += c;
  }
  mean /= static_cast<double>(bins);
  double variance = 0.0;
  for (const double c : counts) {
    variance += (c - mean) * (c - mean);
  }
  variance /= static_cast<double>(bins);
  return mean > 0.0 ? variance / mean : 0.0;
}

TEST(TraceGen, DeterministicSortedAndInRange) {
  TraceGenSpec spec;
  spec.profile = TraceProfile::kDiurnal;
  spec.base_rps = 20000.0;
  spec.duration_s = 0.1;
  spec.seed = 7;
  spec.tenants = {"LeNet5", "VGG16"};
  const auto a = generate_trace(spec);
  const auto b = generate_trace(spec);
  ASSERT_GT(a.size(), 500u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);  // bit-for-bit
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_GE(a[i].arrival_s, 0.0);
    EXPECT_LT(a[i].arrival_s, spec.duration_s);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    }
    EXPECT_TRUE(a[i].tenant == "LeNet5" || a[i].tenant == "VGG16");
  }
  // Both labels actually used (uniform assignment over ~500+ draws).
  const auto lenet = trace_arrivals_for(a, "LeNet5");
  EXPECT_GT(lenet.size(), a.size() / 4);
  EXPECT_LT(lenet.size(), 3 * a.size() / 4);
  // A different seed moves the draws.
  spec.seed = 8;
  const auto c = generate_trace(spec);
  EXPECT_NE(a.front().arrival_s, c.front().arrival_s);
}

TEST(TraceGen, DiurnalModulatesTheRate) {
  // One full sinusoid over the trace: the first half (sin >= 0) must
  // carry clearly more arrivals than the second (sin <= 0).
  TraceGenSpec spec;
  spec.profile = TraceProfile::kDiurnal;
  spec.base_rps = 40000.0;
  spec.duration_s = 0.1;
  spec.amplitude = 0.9;
  const auto events = generate_trace(spec);
  ASSERT_GT(events.size(), 1000u);
  std::size_t first_half = 0;
  for (const auto& e : events) {
    first_half += e.arrival_s < spec.duration_s / 2.0 ? 1 : 0;
  }
  const std::size_t second_half = events.size() - first_half;
  EXPECT_GT(first_half, 2 * second_half);
  // Mean rate stays near base (the sinusoid integrates to zero).
  const double mean_rps =
      static_cast<double>(events.size()) / spec.duration_s;
  EXPECT_NEAR(mean_rps, spec.base_rps, 0.15 * spec.base_rps);
}

TEST(TraceGen, BurstsAndMmppAreOverdispersed) {
  TraceGenSpec poissonish;
  poissonish.profile = TraceProfile::kDiurnal;
  poissonish.amplitude = 0.0;  // degenerate diurnal = plain Poisson
  poissonish.base_rps = 20000.0;
  poissonish.duration_s = 0.2;
  const auto flat = generate_trace(poissonish);
  EXPECT_LT(dispersion(flat, poissonish.duration_s, 40), 2.0);

  TraceGenSpec bursty = poissonish;
  bursty.profile = TraceProfile::kBursts;
  bursty.burst_multiplier = 10.0;
  const auto bursts = generate_trace(bursty);
  EXPECT_GT(bursts.size(), flat.size());  // episodes add load
  EXPECT_GT(dispersion(bursts, bursty.duration_s, 40), 2.0);

  TraceGenSpec mmpp = poissonish;
  mmpp.profile = TraceProfile::kMmpp;
  mmpp.on_rps = 40000.0;
  mmpp.off_rps = 0.0;  // silent off periods
  const auto onoff = generate_trace(mmpp);
  ASSERT_GT(onoff.size(), 100u);
  EXPECT_GT(dispersion(onoff, mmpp.duration_s, 40), 2.0);
}

TEST(TraceGen, ValidatesKnobs) {
  TraceGenSpec spec;
  spec.base_rps = 0.0;
  EXPECT_THROW((void)generate_trace(spec), std::invalid_argument);
  spec = TraceGenSpec{};
  spec.duration_s = -1.0;
  EXPECT_THROW((void)generate_trace(spec), std::invalid_argument);
  spec = TraceGenSpec{};
  spec.amplitude = 1.5;
  EXPECT_THROW((void)generate_trace(spec), std::invalid_argument);
  spec = TraceGenSpec{};
  spec.profile = TraceProfile::kBursts;
  spec.burst_multiplier = 0.5;
  EXPECT_THROW((void)generate_trace(spec), std::invalid_argument);
  spec = TraceGenSpec{};
  spec.profile = TraceProfile::kMmpp;
  spec.on_rps = -1.0;  // derives 2x base: fine
  EXPECT_NO_THROW((void)generate_trace(spec));
  // Exactly 0 is honored for either state, but not for both at once.
  spec.on_rps = 0.0;
  spec.off_rps = 30000.0;
  EXPECT_GT(generate_trace(spec).size(), 0u);
  spec.off_rps = 0.0;
  EXPECT_THROW((void)generate_trace(spec), std::invalid_argument);
}

TEST(TraceGen, FileRoundTripIsBitExact) {
  TraceGenSpec spec;
  spec.profile = TraceProfile::kMmpp;
  spec.base_rps = 10000.0;
  spec.duration_s = 0.05;
  spec.tenants = {"LeNet5", "VGG16"};
  const auto events = generate_trace(spec);
  ASSERT_FALSE(events.empty());

  const std::string path = ::testing::TempDir() + "tracegen_roundtrip.csv";
  ASSERT_TRUE(write_arrival_trace(path, events));
  const auto loaded = load_arrival_trace(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].arrival_s, events[i].arrival_s);  // bit-for-bit
    EXPECT_EQ(loaded[i].tenant, events[i].tenant);
  }
}

TEST(TraceGen, UnlabeledTracesOmitTheTenantColumn) {
  TraceGenSpec spec;
  spec.base_rps = 5000.0;
  spec.duration_s = 0.02;
  const auto events = generate_trace(spec);
  const std::string path = ::testing::TempDir() + "tracegen_unlabeled.csv";
  ASSERT_TRUE(write_arrival_trace(path, events));
  const auto loaded = load_arrival_trace(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), events.size());
  for (const auto& e : loaded) {
    EXPECT_TRUE(e.tenant.empty());  // feeds every tenant on replay
  }
}

TEST(TraceGen, GeneratedTracesReplayBitIdentically) {
  // The interchange contract: simulating from the written file must be
  // bit-identical to simulating from the in-memory events — the CSV adds
  // or loses nothing.
  TraceGenSpec gen;
  gen.profile = TraceProfile::kBursts;
  gen.base_rps = 20000.0;
  gen.duration_s = 0.02;
  gen.tenants = {"LeNet5", "VGG16"};
  const auto events = generate_trace(gen);
  ASSERT_GT(events.size(), 100u);
  const std::string path = ::testing::TempDir() + "tracegen_replay.csv";
  ASSERT_TRUE(write_arrival_trace(path, events));

  const core::SystemConfig base = core::default_system_config();
  ServingSpec spec;
  spec.tenant_mix = "LeNet5+VGG16";
  spec.policy = BatchPolicy::kDeadline;
  spec.trace_path = path;
  const auto from_file = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));

  ServingSpec direct = spec;
  direct.trace_path.clear();
  auto config =
      make_serving_config(base, accel::Architecture::kSiph2p5D, direct);
  for (auto& tenant : config.tenants) {
    tenant.replay_trace = true;
    tenant.trace_arrivals = trace_arrivals_for(events, tenant.name);
  }
  const auto from_memory = simulate(config);
  std::remove(path.c_str());

  EXPECT_EQ(from_file.metrics.offered, events.size());
  EXPECT_EQ(from_file.metrics.offered, from_memory.metrics.offered);
  EXPECT_EQ(from_file.metrics.completed, from_memory.metrics.completed);
  EXPECT_EQ(from_file.metrics.makespan_s, from_memory.metrics.makespan_s);
  EXPECT_EQ(from_file.metrics.p99_s, from_memory.metrics.p99_s);
  EXPECT_EQ(from_file.metrics.energy_j, from_memory.metrics.energy_j);
}

}  // namespace
}  // namespace optiplet::serve
