#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "serve/serving_simulator.hpp"
#include "serve/tracegen.hpp"

namespace optiplet::serve {
namespace {

/// The tracegen -> CSV -> replayer round trip at one fidelity: the
/// simulation fed from the written file must be bit-identical to the
/// simulation fed the in-memory events.
void expect_roundtrip_bit_identical(core::Fidelity fidelity) {
  TraceGenSpec gen;
  gen.profile = TraceProfile::kDiurnal;
  gen.base_rps = 4000.0;
  gen.duration_s = 0.01;  // ~40 arrivals: one cycle-accurate oracle run
  gen.tenants = {"LeNet5"};
  const auto events = generate_trace(gen);
  ASSERT_GT(events.size(), 10u);
  const std::string path = ::testing::TempDir() +
                           "trace_fidelity_" +
                           std::string(core::to_string(fidelity)) + ".csv";
  ASSERT_TRUE(write_arrival_trace(path, events));

  core::SystemConfig base = core::default_system_config();
  base.fidelity = fidelity;
  ServingSpec spec;
  spec.tenant_mix = "LeNet5";
  spec.policy = BatchPolicy::kNone;
  spec.trace_path = path;
  const auto from_file = simulate(
      make_serving_config(base, accel::Architecture::kSiph2p5D, spec));

  ServingSpec direct = spec;
  direct.trace_path.clear();
  auto config =
      make_serving_config(base, accel::Architecture::kSiph2p5D, direct);
  config.tenants[0].replay_trace = true;
  config.tenants[0].trace_arrivals = trace_arrivals_for(events, "LeNet5");
  const auto from_memory = simulate(config);
  std::remove(path.c_str());

  EXPECT_EQ(from_file.metrics.offered, events.size());
  EXPECT_EQ(from_file.metrics.completed, from_memory.metrics.completed);
  EXPECT_EQ(from_file.metrics.makespan_s, from_memory.metrics.makespan_s);
  EXPECT_EQ(from_file.metrics.p50_s, from_memory.metrics.p50_s);
  EXPECT_EQ(from_file.metrics.p99_s, from_memory.metrics.p99_s);
  EXPECT_EQ(from_file.metrics.energy_j, from_memory.metrics.energy_j);
  EXPECT_GT(from_file.metrics.p99_s, 0.0);
}

TEST(TraceReplayFidelity, AnalyticalRoundTrip) {
  expect_roundtrip_bit_identical(core::Fidelity::kAnalytical);
}

TEST(TraceReplayFidelity, CycleAccurateRoundTrip) {
  expect_roundtrip_bit_identical(core::Fidelity::kCycleAccurate);
}

}  // namespace
}  // namespace optiplet::serve
