#include "serve/serving_spec.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace optiplet::serve {
namespace {

TEST(ServingSpecCodecs, BatchPolicyRoundTripsAndListsChoices) {
  for (const BatchPolicy p :
       {BatchPolicy::kNone, BatchPolicy::kFixedSize, BatchPolicy::kDeadline,
        BatchPolicy::kContinuous}) {
    const auto back = batch_policy_from_string(to_string(p));
    ASSERT_TRUE(back.has_value()) << to_string(p);
    EXPECT_EQ(*back, p);
    // Every canonical spelling appears in the CLI choice list.
    EXPECT_NE(std::string(batch_policy_choices()).find(to_string(p)),
              std::string::npos);
  }
  // Aliases.
  EXPECT_EQ(batch_policy_from_string("fifo"), BatchPolicy::kNone);
  EXPECT_EQ(batch_policy_from_string("fixed"), BatchPolicy::kFixedSize);
  EXPECT_EQ(batch_policy_from_string("dynamic"), BatchPolicy::kDeadline);
  EXPECT_EQ(batch_policy_from_string("continuous"),
            BatchPolicy::kContinuous);
  EXPECT_FALSE(batch_policy_from_string("bogus").has_value());
  EXPECT_FALSE(batch_policy_from_string("").has_value());
}

TEST(ServingSpecCodecs, PipelineModeRoundTrips) {
  for (const PipelineMode m :
       {PipelineMode::kBatchGranular, PipelineMode::kLayerGranular}) {
    EXPECT_EQ(pipeline_mode_from_string(to_string(m)), m);
    EXPECT_NE(std::string(pipeline_mode_choices()).find(to_string(m)),
              std::string::npos);
  }
  EXPECT_EQ(pipeline_mode_from_string("blocked"),
            PipelineMode::kBatchGranular);
  EXPECT_EQ(pipeline_mode_from_string("pipelined"),
            PipelineMode::kLayerGranular);
  EXPECT_FALSE(pipeline_mode_from_string("bogus").has_value());
}

TEST(ServingSpecCodecs, ArrivalSourceRoundTrips) {
  for (const ArrivalSource s :
       {ArrivalSource::kOpenLoop, ArrivalSource::kClosedLoop}) {
    EXPECT_EQ(arrival_source_from_string(to_string(s)), s);
    EXPECT_NE(std::string(arrival_source_choices()).find(to_string(s)),
              std::string::npos);
  }
  EXPECT_EQ(arrival_source_from_string("poisson"),
            ArrivalSource::kOpenLoop);
  EXPECT_EQ(arrival_source_from_string("closed-loop"),
            ArrivalSource::kClosedLoop);
  EXPECT_FALSE(arrival_source_from_string("bogus").has_value());
}

TEST(ServingSpecCodecs, AdmissionPolicyRoundTrips) {
  for (const AdmissionPolicy p :
       {AdmissionPolicy::kAdmitAll, AdmissionPolicy::kSlaShed}) {
    EXPECT_EQ(admission_policy_from_string(to_string(p)), p);
    EXPECT_NE(std::string(admission_policy_choices()).find(to_string(p)),
              std::string::npos);
  }
  EXPECT_EQ(admission_policy_from_string("admit-all"),
            AdmissionPolicy::kAdmitAll);
  EXPECT_EQ(admission_policy_from_string("sla-shed"),
            AdmissionPolicy::kSlaShed);
  EXPECT_FALSE(admission_policy_from_string("bogus").has_value());
}

TEST(RequestShapeDraw, ZeroSpreadReturnsExactMeansWithoutConsumingRng) {
  util::Xoshiro256 a(7);
  util::Xoshiro256 b(7);
  const RequestShape shape = draw_request_shape(64, 16, 0.0, a);
  EXPECT_EQ(shape.prefill_tokens, 64u);
  EXPECT_EQ(shape.decode_tokens, 16u);
  // The RNG stream is untouched: both generators still agree.
  EXPECT_EQ(a.next_double(), b.next_double());
}

TEST(RequestShapeDraw, SpreadStaysInBandAndIsSeedDeterministic) {
  util::Xoshiro256 rng(42);
  util::Xoshiro256 replay(42);
  for (int i = 0; i < 200; ++i) {
    const RequestShape s = draw_request_shape(100, 20, 0.5, rng);
    // mean*(1 ± spread), rounded to the nearest token, floor 1.
    EXPECT_GE(s.prefill_tokens, 50u);
    EXPECT_LE(s.prefill_tokens, 150u);
    EXPECT_GE(s.decode_tokens, 10u);
    EXPECT_LE(s.decode_tokens, 30u);
    EXPECT_EQ(s, draw_request_shape(100, 20, 0.5, replay));
  }
  // A zero decode mean stays zero under spread (pure-prefill streams).
  util::Xoshiro256 rng2(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(draw_request_shape(100, 0, 0.5, rng2).decode_tokens, 0u);
  }
}

TEST(RequestShape, TotalAndVariableLength) {
  const RequestShape fixed{};
  EXPECT_FALSE(fixed.variable_length());
  EXPECT_EQ(fixed.total_tokens(), 0u);
  const RequestShape var{256, 32};
  EXPECT_TRUE(var.variable_length());
  EXPECT_EQ(var.total_tokens(), 288u);
}

}  // namespace
}  // namespace optiplet::serve
