/// \file elastic_test.cpp
/// Property / degeneracy harness of elastic operation
/// (docs/elastic-operation.md):
///   * an inert ElasticSpec — infinite shift threshold, gating off, no
///     armed faults, no retry — is bit-identical to the static run on
///     EVERY ServingMetrics field (sim_events included), on the lone
///     simulator and on an N>1 rack; a fault at t = inf is equally inert;
///   * the drain identity offered == completed + shed + abandoned holds
///     under every arrival source x batch policy x pipeline mode, and a
///     retry storm is bounded by the capped attempt budget;
///   * elastic + fault + gating runs are bit-identical across repeated
///     evaluations, sweep-thread counts, and rack worker counts, and the
///     fault/retry RNG streams never perturb the arrival or token draws
///     (spread-0 contract);
///   * every re-partition charges exactly one ReSiPI PCM-write window
///     (the repartition mirror of the one-retune-per-handoff invariant);
///   * power-gating removes measured idle energy from the ledger, and a
///     dead-chiplet fault mid-run leaves a degraded but serving pool.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "cluster/cluster_simulator.hpp"
#include "core/system_config.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "serve/elastic.hpp"
#include "serve/serving_simulator.hpp"

namespace optiplet::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ServingSpec base_spec(const std::string& mix, double rate_rps,
                      std::uint64_t requests) {
  ServingSpec spec;
  spec.tenant_mix = mix;
  spec.arrival_rps = rate_rps;
  spec.requests = requests;
  spec.policy = BatchPolicy::kDeadline;
  spec.admission = AdmissionPolicy::kSlaShed;
  return spec;
}

ServingReport run(const ServingSpec& spec,
                  accel::Architecture arch = accel::Architecture::kSiph2p5D) {
  return simulate(
      make_serving_config(core::default_system_config(), arch, spec));
}

/// Every field of ServingMetrics, compared bit-for-bit. Any new metric
/// must be added here or the degeneracy contract silently narrows.
void expect_metrics_identical(const ServingMetrics& a,
                              const ServingMetrics& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.throughput_rps, b.throughput_rps);
  EXPECT_EQ(a.goodput_rps, b.goodput_rps);
  EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
  EXPECT_EQ(a.p50_s, b.p50_s);
  EXPECT_EQ(a.p95_s, b.p95_s);
  EXPECT_EQ(a.p99_s, b.p99_s);
  EXPECT_EQ(a.max_latency_s, b.max_latency_s);
  EXPECT_EQ(a.sla_violation_rate, b.sla_violation_rate);
  EXPECT_EQ(a.mean_batch, b.mean_batch);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.energy_per_request_j, b.energy_per_request_j);
  EXPECT_EQ(a.resipi_conflicts, b.resipi_conflicts);
  EXPECT_EQ(a.resipi_wait_s, b.resipi_wait_s);
  EXPECT_EQ(a.shared_handoffs, b.shared_handoffs);
  EXPECT_EQ(a.handoff_resipi_s, b.handoff_resipi_s);
  EXPECT_EQ(a.service_cache_hits, b.service_cache_hits);
  EXPECT_EQ(a.service_cache_misses, b.service_cache_misses);
  EXPECT_EQ(a.p99_hi_s, b.p99_hi_s);
  EXPECT_EQ(a.p99_lo_s, b.p99_lo_s);
  EXPECT_EQ(a.first_arrival_abs_s, b.first_arrival_abs_s);
  EXPECT_EQ(a.last_completion_abs_s, b.last_completion_abs_s);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.sim_event_queue_peak, b.sim_event_queue_peak);
  EXPECT_EQ(a.ttft_p99_s, b.ttft_p99_s);
  EXPECT_EQ(a.decode_tps, b.decode_tps);
  EXPECT_EQ(a.kv_peak_bytes, b.kv_peak_bytes);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.repartitions, b.repartitions);
  EXPECT_EQ(a.repartition_resipi_s, b.repartition_resipi_s);
  EXPECT_EQ(a.gate_events, b.gate_events);
  EXPECT_EQ(a.gated_idle_s, b.gated_idle_s);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.carbon_g, b.carbon_g);
}

TEST(ElasticSpecCodec, RoundTripsAndRejectsGarbage) {
  EXPECT_EQ(to_string(ElasticSpec{}), "static");
  EXPECT_EQ(elastic_from_string("static"), ElasticSpec{});
  EXPECT_EQ(elastic_from_string(""), ElasticSpec{});

  ElasticSpec spec;
  spec.shift_threshold = 0.2;
  spec.ema_tau_s = 60.0;
  spec.cooldown_s = 600.0;
  spec.gate = true;
  spec.gate_after_s = 1.0e-3;
  spec.wake_s = 1.0e-4;
  spec.retry_max_attempts = 4;
  spec.retry_backoff_s = 2.0e-3;
  spec.curve_bucket_s = 3600.0;
  spec.carbon_amplitude = 0.5;
  spec.faults.push_back({3600.0, 2, 1.0, -1});
  spec.faults.push_back({7200.0, -1, 0.5, 1});
  const auto parsed = elastic_from_string(to_string(spec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, spec);

  EXPECT_FALSE(elastic_from_string("shift").has_value());
  EXPECT_FALSE(elastic_from_string("shift=a").has_value());
  EXPECT_FALSE(elastic_from_string("gate=1e-3").has_value());
  EXPECT_FALSE(elastic_from_string("fault=1:2:3").has_value());
  EXPECT_FALSE(elastic_from_string("bogus=1").has_value());

  // Arming semantics: the defaulted fault (t = inf) is unarmed, and so
  // is a finite-time no-op fault (no chiplet, no derate).
  EXPECT_FALSE(FaultSpec{}.armed());
  EXPECT_FALSE((FaultSpec{1.0, -1, 1.0, -1}).armed());
  EXPECT_TRUE((FaultSpec{1.0, 2, 1.0, -1}).armed());
  EXPECT_TRUE((FaultSpec{1.0, -1, 0.5, -1}).armed());
  EXPECT_FALSE(ElasticSpec{}.enabled());
  EXPECT_TRUE(spec.enabled());
}

TEST(ElasticDegeneracy, InertPolicyIsBitIdenticalToStatic) {
  // The inert spec arms everything at its no-op point: an infinite shift
  // threshold, gating off, zero retry attempts, and a fault at t = inf.
  // Every ServingMetrics field — the event count included — must match
  // the static run exactly, on both pipeline modes.
  for (const PipelineMode pipeline :
       {PipelineMode::kBatchGranular, PipelineMode::kLayerGranular}) {
    ServingSpec spec = base_spec("LeNet5+MobileNetV2", 3000.0, 400);
    spec.pipeline = pipeline;
    const ServingReport fixed = run(spec);

    spec.elastic.shift_threshold = kInf;
    spec.elastic.faults.push_back({kInf, 2, 0.5, -1});
    const ServingReport inert = run(spec);
    expect_metrics_identical(fixed.metrics, inert.metrics);
    EXPECT_EQ(inert.metrics.faults_injected, 0u);
    EXPECT_TRUE(inert.day_curve.empty());
    ASSERT_EQ(fixed.tenants.size(), inert.tenants.size());
    for (std::size_t t = 0; t < fixed.tenants.size(); ++t) {
      EXPECT_EQ(fixed.tenant_latencies[t], inert.tenant_latencies[t]);
    }
  }
}

TEST(ElasticDegeneracy, InertPolicyIsBitIdenticalOnTheRack) {
  cluster::ClusterConfig config;
  config.system = core::default_system_config();
  config.serving = base_spec("LeNet5+MobileNetV2", 4000.0, 400);
  config.cluster.packages = 2;
  config.threads = 1;
  const cluster::ClusterReport fixed = cluster::simulate(config);

  config.serving.elastic.shift_threshold = kInf;
  config.serving.elastic.faults.push_back({kInf, 0, 0.5, 1});
  const cluster::ClusterReport inert = cluster::simulate(config);
  expect_metrics_identical(fixed.metrics.rack, inert.metrics.rack);
  EXPECT_EQ(fixed.metrics.transfers, inert.metrics.transfers);
  EXPECT_TRUE(inert.day_curve.empty());
}

TEST(ElasticProperty, DrainIdentityHoldsAcrossTheFullPolicyGrid) {
  // offered == completed + shed + abandoned must survive every arrival
  // source x batch policy x pipeline mode with retry enabled, under an
  // SLA tight enough to actually shed. Retry storms stay bounded by the
  // capped budget: retries <= offered * max_attempts.
  constexpr unsigned kMaxAttempts = 3;
  for (const ArrivalSource source :
       {ArrivalSource::kOpenLoop, ArrivalSource::kClosedLoop}) {
    for (const BatchPolicy policy :
         {BatchPolicy::kNone, BatchPolicy::kFixedSize,
          BatchPolicy::kDeadline}) {
      for (const PipelineMode pipeline :
           {PipelineMode::kBatchGranular, PipelineMode::kLayerGranular}) {
        ServingSpec spec = base_spec("LeNet5", 20000.0, 200);
        spec.policy = policy;
        spec.pipeline = pipeline;
        spec.source = source;
        spec.users = 64;
        spec.think_s = 1.0e-5;
        spec.sla_s = 2.0e-4;  // tight: saturating load must shed
        spec.elastic.retry_max_attempts = kMaxAttempts;
        spec.elastic.retry_backoff_s = 1.0e-4;
        const ServingMetrics m = run(spec).metrics;
        const std::string label =
            std::string(to_string(source)) + "/" + to_string(policy) + "/" +
            to_string(pipeline);
        EXPECT_EQ(m.offered, m.completed + m.shed + m.abandoned) << label;
        EXPECT_GT(m.completed, 0u) << label;
        EXPECT_LE(m.retries, m.offered * kMaxAttempts) << label;
        // With retry enabled a rejected request is never counted shed —
        // it defers, and only its exhausted budget abandons it.
        EXPECT_EQ(m.shed, 0u) << label;
      }
    }
  }
}

TEST(ElasticProperty, RetryStormAbandonsAtTheCapAndDefersSomeIntoService) {
  // Saturate hard so admission rejects most arrivals. Deferral must both
  // abandon (budget exhausted) and rescue (a backoff slot opened).
  // 2000 requests at 50k rps = a 40 ms overload window, far longer than
  // the worst-case cumulative backoff (~2 ms), so early rejects exhaust
  // their budget inside the storm while late rejects defer past its end.
  ServingSpec shed_spec = base_spec("LeNet5", 50000.0, 2000);
  shed_spec.sla_s = 1.5e-4;
  const ServingMetrics fixed = run(shed_spec).metrics;
  ASSERT_GT(fixed.shed, 0u);

  ServingSpec retry_spec = shed_spec;
  retry_spec.elastic.retry_max_attempts = 4;
  retry_spec.elastic.retry_backoff_s = 1.0e-4;
  const ServingMetrics retried = run(retry_spec).metrics;
  EXPECT_EQ(retried.offered, fixed.offered);
  EXPECT_GT(retried.retries, 0u);
  EXPECT_GT(retried.abandoned, 0u);
  EXPECT_LE(retried.retries, retried.offered * 4);
  // Backoff rescues at least some rejected requests into completion.
  EXPECT_GT(retried.completed, fixed.completed);
  EXPECT_EQ(retried.offered,
            retried.completed + retried.shed + retried.abandoned);
}

/// The full-bore policy used by the determinism and accounting tests:
/// aggressive re-partitioning, gating, retry, a mid-run chiplet death,
/// and a bandwidth derate, all at once.
ServingSpec full_elastic_spec() {
  ServingSpec spec = base_spec("LeNet5+MobileNetV2", 3000.0, 500);
  spec.elastic.shift_threshold = 0.05;
  spec.elastic.ema_tau_s = 0.05;
  spec.elastic.cooldown_s = 0.1;
  spec.elastic.gate = true;
  spec.elastic.gate_after_s = 1.0e-4;
  spec.elastic.wake_s = 1.0e-5;
  spec.elastic.retry_max_attempts = 2;
  spec.elastic.retry_backoff_s = 1.0e-3;
  spec.elastic.curve_bucket_s = 0.05;
  spec.elastic.carbon_amplitude = 0.5;
  spec.elastic.carbon_period_s = 0.4;
  spec.elastic.faults.push_back({0.08, 2, 1.0, -1});   // dead chiplet
  spec.elastic.faults.push_back({0.12, -1, 0.8, -1});  // drifted microring
  return spec;
}

TEST(ElasticDeterminism, FullPolicyIsBitIdenticalAcrossRunsAndSweepThreads) {
  const ServingSpec spec = full_elastic_spec();
  const ServingReport a = run(spec);
  const ServingReport b = run(spec);
  expect_metrics_identical(a.metrics, b.metrics);
  ASSERT_FALSE(a.day_curve.empty());
  ASSERT_EQ(a.day_curve.size(), b.day_curve.size());
  for (std::size_t i = 0; i < a.day_curve.size(); ++i) {
    EXPECT_EQ(a.day_curve[i].energy_j, b.day_curve[i].energy_j);
    EXPECT_EQ(a.day_curve[i].carbon_g, b.day_curve[i].carbon_g);
    EXPECT_EQ(a.day_curve[i].offered, b.day_curve[i].offered);
    EXPECT_EQ(a.day_curve[i].completed, b.day_curve[i].completed);
  }

  // The sweep engine reproduces the direct runs bit-for-bit on 1 and 2
  // worker threads, through the elastic-policy axis and the memo key.
  engine::ScenarioGrid grid;
  grid.tenant_mixes = {spec.tenant_mix};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.arrival_rates_rps = {spec.arrival_rps};
  grid.batch_policies = {spec.policy};
  grid.admission_policies = {spec.admission};
  grid.elastic_policies = {"static", to_string(spec.elastic)};
  grid.serving_defaults = spec;
  const core::SystemConfig base = core::default_system_config();
  const auto specs = grid.expand(base);
  ASSERT_EQ(specs.size(), 2u);
  ASSERT_EQ(specs[0].serving->elastic, ElasticSpec{});
  ASSERT_EQ(specs[1].serving->elastic, spec.elastic);
  EXPECT_NE(specs[0].key(), specs[1].key());
  EXPECT_EQ(specs[0].key().find("serve.elastic"), std::string::npos);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    engine::SweepOptions options;
    options.threads = threads;
    engine::SweepRunner runner(base, options);
    const auto results = runner.run(specs);
    ASSERT_EQ(results.size(), 2u);
    ASSERT_TRUE(results[1].serving.has_value());
    expect_metrics_identical(*results[1].serving, a.metrics);
  }
}

TEST(ElasticDeterminism, RackIsBitIdenticalAcrossWorkerThreadCounts) {
  cluster::ClusterConfig config;
  config.system = core::default_system_config();
  config.serving = full_elastic_spec();
  config.serving.elastic.faults.clear();
  config.serving.elastic.faults.push_back({0.08, 2, 1.0, 0});
  config.serving.elastic.faults.push_back({0.12, -1, 0.8, 1});
  config.cluster.packages = 2;
  config.threads = 1;
  const cluster::ClusterReport serial = cluster::simulate(config);
  config.threads = 2;
  const cluster::ClusterReport parallel = cluster::simulate(config);
  expect_metrics_identical(serial.metrics.rack, parallel.metrics.rack);
  ASSERT_FALSE(serial.day_curve.empty());
  ASSERT_EQ(serial.day_curve.size(), parallel.day_curve.size());
  for (std::size_t i = 0; i < serial.day_curve.size(); ++i) {
    EXPECT_EQ(serial.day_curve[i].energy_j, parallel.day_curve[i].energy_j);
  }
  // Package targeting: the chiplet death fired on package 0 only and the
  // derate on package 1 only — two injections total, not 2 + 2.
  EXPECT_EQ(serial.metrics.rack.faults_injected, 2u);
  EXPECT_GT(serial.metrics.rack.completed, 0u);
}

TEST(ElasticDeterminism, FaultAndRetryRngNeverPerturbArrivalsOrTokens) {
  // Spread-0 contract: the elastic machinery draws from its own seeded
  // streams, so arrivals (count, window endpoints) and token geometry
  // (decode_tps * makespan == completed * decode_mean) match the static
  // run exactly even under faults + gating + retry.
  ServingSpec spec = base_spec("TinyGPT", 200.0, 150);
  spec.policy = BatchPolicy::kContinuous;
  spec.prefill_tokens = 64;
  spec.decode_tokens = 16;
  spec.token_spread = 0.0;
  const ServingMetrics fixed = run(spec).metrics;

  ServingSpec elastic = spec;
  elastic.elastic.gate = true;
  elastic.elastic.gate_after_s = 1.0e-4;
  elastic.elastic.wake_s = 1.0e-5;
  elastic.elastic.retry_max_attempts = 2;
  elastic.elastic.retry_backoff_s = 1.0e-3;
  elastic.elastic.faults.push_back({0.2, -1, 0.9, -1});
  const ServingMetrics faulted = run(elastic).metrics;

  EXPECT_EQ(faulted.offered, fixed.offered);
  EXPECT_EQ(faulted.first_arrival_abs_s, fixed.first_arrival_abs_s);
  EXPECT_EQ(faulted.faults_injected, 1u);
  const auto generated = [](const ServingMetrics& m) {
    return m.decode_tps * m.makespan_s;
  };
  EXPECT_NEAR(generated(faulted),
              static_cast<double>(faulted.completed) * 16.0,
              1.0e-6 * generated(faulted));
  EXPECT_NEAR(generated(fixed), static_cast<double>(fixed.completed) * 16.0,
              1.0e-6 * generated(fixed));
}

TEST(ElasticAccounting, EveryRepartitionChargesExactlyOneResipiWindow) {
  // The repartition mirror of PipelineServing.HandoffsChargeOneRetune-
  // WindowEach: N re-partitions == N PCM-write windows serialized on the
  // interposer, never more (a swap is one bulk rewrite, not one write
  // per gateway).
  const ServingReport report = run(full_elastic_spec());
  const ServingMetrics& m = report.metrics;
  ASSERT_GT(m.repartitions, 0u);
  const double write_s =
      core::default_system_config().tech.photonic.pcm.write_time_s;
  EXPECT_DOUBLE_EQ(m.repartition_resipi_s,
                   static_cast<double>(m.repartitions) * write_s);
  // The rewrite energy landed in its own ledger category, as an integral
  // number of gateway rewrites (a swap that moves no ownership boundary
  // rewrites zero gateways — the time window is still charged).
  const auto it = report.ledger.entries().find("serving.repartition");
  ASSERT_NE(it, report.ledger.entries().end());
  const double write_j =
      core::default_system_config().tech.photonic.pcm.write_energy_j;
  const double rewrites = it->second.dynamic_energy_j / write_j;
  EXPECT_DOUBLE_EQ(rewrites, std::round(rewrites));
}

TEST(ElasticGating, RemovesMeasuredIdleEnergyFromTheLedger) {
  ServingSpec spec = base_spec("LeNet5", 500.0, 300);  // sparse: idle gaps
  spec.sla_s = 0.01;  // roomier than the deadline wait: nothing sheds
  const ServingReport fixed = run(spec);

  ServingSpec gated_spec = spec;
  gated_spec.elastic.gate = true;
  gated_spec.elastic.gate_after_s = 1.0e-4;
  gated_spec.elastic.wake_s = 1.0e-5;
  const ServingReport gated = run(gated_spec);

  EXPECT_GT(gated.metrics.gate_events, 0u);
  EXPECT_GT(gated.metrics.gated_idle_s, 0.0);
  EXPECT_EQ(gated.metrics.completed, fixed.metrics.completed);
  const auto idle = [](const ServingReport& r) {
    const auto it = r.ledger.entries().find("serving.idle");
    return it == r.ledger.entries().end() ? 0.0
                                          : it->second.dynamic_energy_j;
  };
  EXPECT_LT(idle(gated), idle(fixed));
  EXPECT_LT(gated.metrics.energy_j, fixed.metrics.energy_j);
  // Wake latency is charged: gating can only slow requests down.
  EXPECT_GE(gated.metrics.mean_latency_s, fixed.metrics.mean_latency_s);
}

TEST(ElasticFaults, DeadChipletDegradesButKeepsServing) {
  ServingSpec spec = base_spec("LeNet5+MobileNetV2", 3000.0, 400);
  const ServingMetrics fixed = run(spec).metrics;

  ServingSpec faulted_spec = spec;
  faulted_spec.elastic.faults.push_back({0.05, 2, 1.0, -1});
  const ServingMetrics faulted = run(faulted_spec).metrics;
  EXPECT_EQ(faulted.faults_injected, 1u);
  EXPECT_GE(faulted.repartitions, 1u);  // the fault forced a re-partition
  EXPECT_EQ(faulted.offered, fixed.offered);
  EXPECT_GT(faulted.completed, 0u);  // degraded, still serving
  EXPECT_EQ(faulted.offered,
            faulted.completed + faulted.shed + faulted.abandoned);
}

TEST(ElasticFaults, MicroringDriftDeratesServiceTime) {
  ServingSpec spec = base_spec("LeNet5", 2000.0, 300);
  spec.sla_s = 0.01;  // roomier than the deadline wait: nothing sheds
  const ServingMetrics fixed = run(spec).metrics;

  ServingSpec drifted_spec = spec;
  drifted_spec.elastic.faults.push_back({0.0, -1, 0.5, -1});  // 2x slower
  const ServingMetrics drifted = run(drifted_spec).metrics;
  EXPECT_EQ(drifted.faults_injected, 1u);
  EXPECT_EQ(drifted.offered, fixed.offered);
  EXPECT_GT(drifted.mean_latency_s, fixed.mean_latency_s);
  EXPECT_LT(drifted.goodput_rps, fixed.goodput_rps);
  EXPECT_GT(drifted.completed + drifted.shed + drifted.abandoned, 0u);
}

TEST(ElasticValidation, RejectsInvalidSpecsLoudly) {
  // Pool-elastic operation needs batch-granular execution on a
  // partitioned (non-monolithic) pool; malformed knobs fail fast.
  ServingSpec repart = base_spec("LeNet5+MobileNetV2", 1000.0, 10);
  repart.elastic.shift_threshold = 0.1;
  repart.pipeline = PipelineMode::kLayerGranular;
  EXPECT_THROW(run(repart), std::invalid_argument);
  repart.pipeline = PipelineMode::kBatchGranular;
  EXPECT_THROW(run(repart, accel::Architecture::kMonolithicCrossLight),
               std::invalid_argument);

  ServingSpec bad_carbon = base_spec("LeNet5", 1000.0, 10);
  bad_carbon.elastic.carbon_amplitude = 1.5;
  EXPECT_THROW(run(bad_carbon), std::invalid_argument);

  ServingSpec bad_derate = base_spec("LeNet5", 1000.0, 10);
  bad_derate.elastic.faults.push_back({0.1, -1, 0.0, -1});
  EXPECT_THROW(run(bad_derate), std::invalid_argument);

  ServingSpec bad_chiplet = base_spec("LeNet5", 1000.0, 10);
  bad_chiplet.elastic.faults.push_back({0.1, 100000, 1.0, -1});
  EXPECT_THROW(run(bad_chiplet), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::serve
