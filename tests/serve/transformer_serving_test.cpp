#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <string>

#include "cluster/cluster_simulator.hpp"
#include "dnn/transformer.hpp"
#include "serve/arrivals.hpp"
#include "serve/serving_simulator.hpp"
#include "serve/tracegen.hpp"

namespace optiplet::serve {
namespace {

/// A single-TinyGPT serving spec with variable-length token geometry.
ServingSpec transformer_spec(std::uint32_t prefill, std::uint32_t decode,
                             BatchPolicy policy, double rate_rps,
                             std::uint64_t requests) {
  ServingSpec spec;
  spec.tenant_mix = "TinyGPT";
  spec.prefill_tokens = prefill;
  spec.decode_tokens = decode;
  spec.policy = policy;
  spec.arrival_rps = rate_rps;
  spec.requests = requests;
  return spec;
}

ServingConfig make_config(const ServingSpec& spec,
                          bool record_batches = false) {
  ServingConfig config =
      make_serving_config(core::default_system_config(),
                          accel::Architecture::kSiph2p5D, spec);
  config.record_batches = record_batches;
  return config;
}

TEST(TransformerServing, CompletesAndIsDeterministic) {
  const auto config = make_config(
      transformer_spec(64, 16, BatchPolicy::kContinuous, 120.0, 200));
  const auto a = simulate(config);
  const auto b = simulate(config);
  EXPECT_EQ(a.metrics.offered, 200u);
  EXPECT_EQ(a.metrics.completed, 200u);
  EXPECT_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
  EXPECT_EQ(a.metrics.p99_s, b.metrics.p99_s);
  EXPECT_EQ(a.metrics.energy_j, b.metrics.energy_j);
  EXPECT_EQ(a.metrics.ttft_p99_s, b.metrics.ttft_p99_s);
  EXPECT_EQ(a.metrics.decode_tps, b.metrics.decode_tps);
  EXPECT_EQ(a.metrics.kv_peak_bytes, b.metrics.kv_peak_bytes);
  // Variable-length metrics are live: every request produced a first
  // token and 16 generated tokens landed per completion.
  EXPECT_GT(a.metrics.ttft_p99_s, 0.0);
  EXPECT_NEAR(a.metrics.decode_tps * a.metrics.makespan_s, 200.0 * 16.0,
              1.0);
  EXPECT_GT(a.metrics.kv_peak_bytes, 0u);
}

TEST(TransformerServing, DecodeZeroPricesBitIdenticallyToFixedShape) {
  // Degeneracy: a variable-length request with decode_tokens == 0 and
  // prefill at the zoo's default context is *the* fixed-shape TinyGPT
  // request — the prefill graph at 256 tokens is the registered model.
  // The whole run must price bit-identically through the per-phase
  // oracle path, batched or not.
  const std::uint32_t context = dnn::tiny_gpt_spec().default_context;
  for (const BatchPolicy policy :
       {BatchPolicy::kNone, BatchPolicy::kFixedSize}) {
    ServingSpec var = transformer_spec(context, 0, policy, 60.0, 160);
    var.max_batch = 4;
    ServingSpec fixed = var;
    fixed.prefill_tokens = 0;  // fixed-shape: the zoo graph as-is
    fixed.decode_tokens = 0;
    const auto v = simulate(make_config(var));
    const auto f = simulate(make_config(fixed));
    EXPECT_EQ(v.metrics.completed, f.metrics.completed);
    EXPECT_EQ(v.metrics.makespan_s, f.metrics.makespan_s);
    EXPECT_EQ(v.metrics.mean_latency_s, f.metrics.mean_latency_s);
    EXPECT_EQ(v.metrics.p50_s, f.metrics.p50_s);
    EXPECT_EQ(v.metrics.p99_s, f.metrics.p99_s);
    EXPECT_EQ(v.metrics.energy_j, f.metrics.energy_j);
    EXPECT_EQ(v.metrics.mean_batch, f.metrics.mean_batch);
    // The variable-length run reports token metrics on top; pure prefill
    // generates nothing, so TTFT equals the completion tail.
    EXPECT_EQ(v.metrics.decode_tps, 0.0);
    EXPECT_EQ(v.metrics.ttft_p99_s, v.metrics.p99_s);
  }
}

TEST(TransformerServing, ContinuousSingleUserMatchesNoBatchExactly) {
  // Degeneracy: with one closed-loop user there is never a second request
  // to join the running batch, so iteration-level scheduling must reduce
  // to the no-batch path — identical completion times, bit for bit.
  ServingSpec base = transformer_spec(64, 16, BatchPolicy::kNone, 0.0, 50);
  base.source = ArrivalSource::kClosedLoop;
  base.users = 1;
  base.token_spread = 0.4;  // varied shapes: same seeded draws both runs
  ServingSpec cont = base;
  cont.policy = BatchPolicy::kContinuous;
  const auto none = simulate(make_config(base));
  const auto iter = simulate(make_config(cont));
  EXPECT_EQ(none.metrics.completed, iter.metrics.completed);
  EXPECT_EQ(none.metrics.makespan_s, iter.metrics.makespan_s);
  EXPECT_EQ(none.metrics.mean_latency_s, iter.metrics.mean_latency_s);
  EXPECT_EQ(none.metrics.p50_s, iter.metrics.p50_s);
  EXPECT_EQ(none.metrics.p99_s, iter.metrics.p99_s);
  EXPECT_EQ(none.metrics.ttft_p99_s, iter.metrics.ttft_p99_s);
  EXPECT_EQ(none.metrics.decode_tps, iter.metrics.decode_tps);
  EXPECT_EQ(none.metrics.energy_j, iter.metrics.energy_j);
}

TEST(TransformerServing, KvBudgetCapsConcurrentDecodeSlots) {
  // 8 MiB budget, 288-token final context at 8 KiB/token = 2.25 MiB per
  // request -> exactly 3 concurrent slots, however large max_batch is.
  ServingSpec spec =
      transformer_spec(256, 32, BatchPolicy::kContinuous, 300.0, 120);
  spec.max_batch = 8;
  spec.kv_cache_mb = 8.0;
  const std::uint64_t budget = 8ull << 20;
  const std::uint64_t per_request =
      288ull * dnn::kv_bytes_per_token(dnn::tiny_gpt_spec(), 8);
  ASSERT_EQ(budget / per_request, 3u);
  for (const BatchPolicy policy :
       {BatchPolicy::kContinuous, BatchPolicy::kFixedSize}) {
    spec.policy = policy;
    const auto report = simulate(make_config(spec, /*record_batches=*/true));
    EXPECT_EQ(report.metrics.completed, 120u);
    ASSERT_FALSE(report.batches.empty());
    for (const BatchTrace& b : report.batches) {
      EXPECT_LE(b.size, 3u) << to_string(policy);
    }
    EXPECT_GT(report.metrics.kv_peak_bytes, 0u);
    EXPECT_LE(report.metrics.kv_peak_bytes, budget);
  }
}

TEST(TransformerServing, ContinuousBeatsFixedBatchAtDecodeHeavyLoad) {
  // The paper-motivating result: at saturating decode-heavy load with
  // varied generation lengths, iteration-level batching keeps slots full
  // (completions free a slot at a token boundary; a waiting prefill takes
  // it immediately) while fixed-size batches pad every member to the
  // longest generation and make arrivals wait for whole-batch
  // completion. Continuous must win goodput *and* tail latency, and get
  // first tokens out sooner. (With spread == 0 the padding waste
  // vanishes and fixed batching's perfect prefill amortization wins —
  // the straggler spread is what continuous batching monetizes.)
  ServingSpec fixed =
      transformer_spec(32, 96, BatchPolicy::kFixedSize, 300.0, 250);
  fixed.max_batch = 8;
  fixed.token_spread = 0.6;
  ServingSpec cont = fixed;
  cont.policy = BatchPolicy::kContinuous;
  const auto f = simulate(make_config(fixed));
  const auto c = simulate(make_config(cont));
  EXPECT_EQ(f.metrics.completed, 250u);
  EXPECT_EQ(c.metrics.completed, 250u);
  EXPECT_GE(c.metrics.goodput_rps, f.metrics.goodput_rps);
  EXPECT_LE(c.metrics.p99_s, f.metrics.p99_s);
  EXPECT_LT(c.metrics.ttft_p99_s, f.metrics.ttft_p99_s);
}

TEST(TransformerServing, TraceTokenGeometryRoundTrips) {
  // tracegen -> CSV -> load -> simulate: shapes survive the interchange
  // format bit-exactly and drive the priced phases.
  TraceGenSpec gen;
  gen.profile = TraceProfile::kDiurnal;
  gen.base_rps = 150.0;
  gen.duration_s = 1.0;
  gen.tenants = {"TinyGPT"};
  gen.prefill_tokens = 64;
  gen.decode_tokens = 16;
  gen.token_spread = 0.5;
  const auto events = generate_trace(gen);
  ASSERT_FALSE(events.empty());
  const std::string path = testing::TempDir() + "tok_trace_roundtrip.csv";
  ASSERT_TRUE(write_arrival_trace(path, events));
  const auto loaded = load_arrival_trace(path);
  ASSERT_EQ(loaded.size(), events.size());
  bool any_spread = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i].arrival_s, events[i].arrival_s);
    EXPECT_EQ(loaded[i].shape, events[i].shape);
    EXPECT_TRUE(loaded[i].shape.variable_length());
    any_spread |= loaded[i].shape != events.front().shape;
  }
  EXPECT_TRUE(any_spread);  // the spread actually varied the draws

  ServingSpec spec =
      transformer_spec(64, 16, BatchPolicy::kContinuous, 0.0, 0);
  spec.trace_path = path;
  const auto report = simulate(make_config(spec));
  EXPECT_EQ(report.metrics.offered, events.size());
  EXPECT_EQ(report.metrics.completed, events.size());
  EXPECT_GT(report.metrics.decode_tps, 0.0);
  std::remove(path.c_str());
}

TEST(TransformerServing, SinglePackageRackReproducesLoneSimulator) {
  // The rack front end draws request shapes with the same seeded stream
  // the lone simulator would, so a 1-package rack is bit-identical.
  ServingSpec spec =
      transformer_spec(64, 16, BatchPolicy::kContinuous, 100.0, 120);
  cluster::ClusterConfig rack_config;
  rack_config.system = core::default_system_config();
  rack_config.serving = spec;
  rack_config.cluster.packages = 1;
  rack_config.threads = 1;
  const auto rack = cluster::simulate(rack_config);
  const auto lone = simulate(make_config(spec));
  EXPECT_EQ(rack.metrics.rack.completed, lone.metrics.completed);
  EXPECT_EQ(rack.metrics.rack.makespan_s, lone.metrics.makespan_s);
  EXPECT_EQ(rack.metrics.rack.p99_s, lone.metrics.p99_s);
  EXPECT_EQ(rack.metrics.rack.ttft_p99_s, lone.metrics.ttft_p99_s);
  EXPECT_EQ(rack.metrics.rack.decode_tps, lone.metrics.decode_tps);
  EXPECT_EQ(rack.metrics.rack.kv_peak_bytes, lone.metrics.kv_peak_bytes);
}

TEST(TransformerServing, TokenGeometryValidation) {
  // Fail-fast contracts: CNN tenants cannot take token geometry, decode
  // without prefill is rejected, spread must stay in [0, 1), and the
  // worst-case request must fit the context window.
  ServingSpec spec = transformer_spec(64, 16, BatchPolicy::kNone, 50.0, 20);
  spec.tenant_mix = "LeNet5";
  EXPECT_THROW((void)simulate(make_config(spec)), std::invalid_argument);

  spec = transformer_spec(0, 16, BatchPolicy::kNone, 50.0, 20);
  EXPECT_THROW((void)simulate(make_config(spec)), std::invalid_argument);

  spec = transformer_spec(64, 16, BatchPolicy::kNone, 50.0, 20);
  spec.token_spread = 1.0;
  EXPECT_THROW((void)simulate(make_config(spec)), std::invalid_argument);

  // kContinuous needs a variable-length tenant.
  spec = transformer_spec(0, 0, BatchPolicy::kContinuous, 50.0, 20);
  spec.tenant_mix = "LeNet5";
  EXPECT_THROW((void)simulate(make_config(spec)), std::invalid_argument);

  // 2048-token window: mean 2000 with 10% spread overflows it.
  spec = transformer_spec(2000, 100, BatchPolicy::kNone, 50.0, 20);
  EXPECT_THROW((void)simulate(make_config(spec)), std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::serve
