#include "serve/colocation.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "dnn/workload.hpp"
#include "dnn/zoo.hpp"

namespace optiplet::serve {
namespace {

TenantDemand demand_for(const std::string& model, double weight = 1.0) {
  TenantDemand d;
  d.needed_kinds = needed_kinds(
      dnn::compute_workload(dnn::zoo::by_name(model), 8));
  d.weight = weight;
  return d;
}

std::size_t pool_size(const accel::PlatformSpec& pool) {
  std::size_t n = 0;
  for (const auto& g : pool.groups) {
    n += g.chiplet_count;
  }
  return n;
}

/// Invariant: every chiplet is owned by at most one tenant, and owned and
/// shared sets never intersect.
void expect_no_double_booking(const ColocationPlan& plan,
                              std::size_t chiplets) {
  std::set<std::size_t> seen(plan.shared_chiplets.begin(),
                             plan.shared_chiplets.end());
  EXPECT_EQ(seen.size(), plan.shared_chiplets.size());
  for (const auto& tenant : plan.tenants) {
    for (const std::size_t c : tenant.owned_chiplets) {
      EXPECT_LT(c, chiplets);
      EXPECT_TRUE(seen.insert(c).second)
          << "chiplet " << c << " assigned twice";
    }
  }
}

TEST(NeededKinds, MatchModelStructure) {
  // VGG16: 3x3 convs + FC layers only.
  const auto vgg = demand_for("VGG16").needed_kinds;
  EXPECT_NE(std::find(vgg.begin(), vgg.end(), accel::MacKind::kConv3),
            vgg.end());
  EXPECT_NE(std::find(vgg.begin(), vgg.end(), accel::MacKind::kDense100),
            vgg.end());
  EXPECT_EQ(std::find(vgg.begin(), vgg.end(), accel::MacKind::kConv7),
            vgg.end());
  // ResNet50 opens with a 7x7 conv.
  const auto resnet = demand_for("ResNet50").needed_kinds;
  EXPECT_NE(std::find(resnet.begin(), resnet.end(), accel::MacKind::kConv7),
            resnet.end());
}

TEST(PartitionPool, SingleTenantOwnsItsKindsExclusively) {
  const auto pool = accel::make_table1_spec();
  const auto plan = partition_pool(pool, {demand_for("ResNet50")},
                                   power::default_tech());
  ASSERT_EQ(plan.tenants.size(), 1u);
  EXPECT_TRUE(plan.shared_chiplets.empty());
  EXPECT_TRUE(plan.tenants[0].shared_kinds.empty());
  // ResNet50 maps to dense (1x1/FC), conv7, and conv3 — never 5x5 — so it
  // owns those three groups outright (6 of the 8 chiplets) and the conv5
  // pair stays unassigned (idle, but still in the idle-power table).
  EXPECT_EQ(plan.tenants[0].owned_chiplets.size(), 6u);
  const bool has_conv5 = std::any_of(
      plan.tenants[0].platform.groups.begin(),
      plan.tenants[0].platform.groups.end(),
      [](const accel::ChipletGroup& g) {
        return g.chiplet.kind == accel::MacKind::kConv5;
      });
  EXPECT_FALSE(has_conv5);
  expect_no_double_booking(plan, pool_size(pool));
}

TEST(PartitionPool, TwoTenantsSplitDisjointly) {
  const auto pool = accel::make_table1_spec();
  // LeNet5 (conv5 + dense) and VGG16 (conv3 + dense): dense is contended
  // (2 chiplets, 2 tenants -> 1 each), conv5/conv3 are exclusive.
  const auto plan = partition_pool(
      pool, {demand_for("LeNet5"), demand_for("VGG16")},
      power::default_tech());
  expect_no_double_booking(plan, pool_size(pool));
  EXPECT_TRUE(plan.shared_chiplets.empty());
  for (const auto& tenant : plan.tenants) {
    EXPECT_FALSE(tenant.owned_chiplets.empty());
    EXPECT_TRUE(tenant.shared_kinds.empty());
    EXPECT_FALSE(tenant.platform.groups.empty());
  }
  // Each tenant's platform provisions exactly its needed kinds.
  const auto& lenet = plan.tenants[0].platform;
  EXPECT_EQ(lenet.groups.size(), 2u);  // conv5 + dense
  for (const auto& g : lenet.groups) {
    EXPECT_TRUE(g.chiplet.kind == accel::MacKind::kConv5 ||
                g.chiplet.kind == accel::MacKind::kDense100);
  }
}

TEST(PartitionPool, ScarceGroupBecomesSharedSerial) {
  const auto pool = accel::make_table1_spec();
  // ResNet50 and DenseNet121 both open with 7x7 convs; Table 1 has one
  // conv7 chiplet, so it must be shared-serial, never double-owned.
  const auto plan = partition_pool(
      pool, {demand_for("ResNet50"), demand_for("DenseNet121")},
      power::default_tech());
  expect_no_double_booking(plan, pool_size(pool));
  ASSERT_EQ(plan.shared_chiplets.size(), 1u);
  for (const auto& tenant : plan.tenants) {
    ASSERT_EQ(tenant.shared_kinds.size(), 1u);
    EXPECT_EQ(tenant.shared_kinds[0], accel::MacKind::kConv7);
    // The shared group still appears (at full strength) in the tenant's
    // simulated platform, because batches lock it exclusively.
    const bool has_conv7 = std::any_of(
        tenant.platform.groups.begin(), tenant.platform.groups.end(),
        [](const accel::ChipletGroup& g) {
          return g.chiplet.kind == accel::MacKind::kConv7;
        });
    EXPECT_TRUE(has_conv7);
  }
  // Occupancy of each tenant covers its owned set plus the shared pool.
  const auto occ = plan.occupancy(0);
  for (const std::size_t c : plan.shared_chiplets) {
    EXPECT_NE(std::find(occ.begin(), occ.end(), c), occ.end());
  }
}

TEST(PartitionPool, WeightsSkewTheContendedSplit) {
  const auto pool = accel::make_table1_spec();
  // Both tenants are VGG16-shaped (conv3 + dense). conv3 has 3 chiplets:
  // both get >= 1; the remainder goes to the heavier tenant.
  const auto plan = partition_pool(
      pool, {demand_for("VGG16", 3.0), demand_for("VGG16", 1.0)},
      power::default_tech());
  expect_no_double_booking(plan, pool_size(pool));
  EXPECT_GT(plan.tenants[0].owned_chiplets.size(),
            plan.tenants[1].owned_chiplets.size());
}

TEST(PartitionPool, DeterministicAcrossCalls) {
  const auto pool = accel::make_table1_spec();
  const std::vector<TenantDemand> demands = {demand_for("MobileNetV2"),
                                             demand_for("ResNet50")};
  const auto a = partition_pool(pool, demands, power::default_tech());
  const auto b = partition_pool(pool, demands, power::default_tech());
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].owned_chiplets, b.tenants[t].owned_chiplets);
    EXPECT_EQ(a.tenants[t].shared_kinds, b.tenants[t].shared_kinds);
  }
  EXPECT_EQ(a.shared_chiplets, b.shared_chiplets);
}

TEST(PartitionPool, ChipletPowerTableCoversThePool) {
  const auto pool = accel::make_table1_spec();
  const auto plan =
      partition_pool(pool, {demand_for("LeNet5")}, power::default_tech());
  ASSERT_EQ(plan.chiplet_active_power_w.size(), pool_size(pool));
  for (const double w : plan.chiplet_active_power_w) {
    EXPECT_GT(w, 0.0);
  }
}

TEST(PartitionPool, RejectsUnservableDemand) {
  accel::PlatformSpec pool;
  accel::ChipletDesign conv3;
  conv3.kind = accel::MacKind::kConv3;
  pool.groups.push_back({conv3, 2});
  EXPECT_THROW(partition_pool(pool, {demand_for("ResNet50")},
                              power::default_tech()),
               std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::serve
