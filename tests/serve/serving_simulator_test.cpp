#include "serve/serving_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "dnn/workload.hpp"
#include "dnn/zoo.hpp"
#include "engine/scenario.hpp"
#include "engine/sweep_runner.hpp"
#include "serve/colocation.hpp"
#include "serve/service_time.hpp"

namespace optiplet::serve {
namespace {

/// The batch-1 service time of `model` serving alone, computed through the
/// exact partition + oracle path the simulator uses.
double isolated_service_s(const std::string& model,
                          const core::SystemConfig& base) {
  TenantDemand demand;
  demand.needed_kinds = needed_kinds(
      dnn::compute_workload(dnn::zoo::by_name(model), base.parameter_bits));
  const auto plan =
      partition_pool(base.compute_2p5d, {demand}, base.tech);
  core::SystemConfig config = base;
  config.compute_2p5d = plan.tenants[0].platform;
  ServiceTimeOracle oracle({{dnn::zoo::by_name(model), config}},
                           accel::Architecture::kSiph2p5D);
  return oracle.batch_run(0, 1).latency_s;
}

ServingConfig single_tenant(const std::string& model, double rate_rps,
                            std::uint64_t requests, BatchPolicy policy,
                            unsigned max_batch = 8,
                            double max_wait_s = 2e-4) {
  ServingSpec spec;
  spec.tenant_mix = model;
  spec.arrival_rps = rate_rps;
  spec.requests = requests;
  spec.policy = policy;
  spec.max_batch = max_batch;
  spec.max_wait_s = max_wait_s;
  return make_serving_config(core::default_system_config(),
                             accel::Architecture::kSiph2p5D, spec);
}

TEST(ServingSimulator, CompletesEveryRequestAndIsDeterministic) {
  const auto config =
      single_tenant("LeNet5", 5000.0, 500, BatchPolicy::kDeadline);
  const auto a = simulate(config);
  const auto b = simulate(config);
  EXPECT_EQ(a.metrics.offered, 500u);
  EXPECT_EQ(a.metrics.completed, 500u);
  // Bit-identical across runs: seeded arrivals + deterministic events.
  EXPECT_EQ(a.metrics.makespan_s, b.metrics.makespan_s);
  EXPECT_EQ(a.metrics.p99_s, b.metrics.p99_s);
  EXPECT_EQ(a.metrics.energy_j, b.metrics.energy_j);
  EXPECT_EQ(a.metrics.mean_latency_s, b.metrics.mean_latency_s);
}

TEST(ServingSimulator, PolicyLatencyOrderingAtLowLoad) {
  // At 10% utilization, waiting for a batch only hurts latency:
  //   no-batch < deadline-bounded (caps the wait) < fixed-size (waits for
  //   a full batch regardless).
  const core::SystemConfig base = core::default_system_config();
  const double service = isolated_service_s("LeNet5", base);
  const double rate = 0.1 / service;
  const auto none =
      simulate(single_tenant("LeNet5", rate, 400, BatchPolicy::kNone));
  const auto deadline =
      simulate(single_tenant("LeNet5", rate, 400, BatchPolicy::kDeadline));
  const auto fixed =
      simulate(single_tenant("LeNet5", rate, 400, BatchPolicy::kFixedSize));
  EXPECT_LT(none.metrics.mean_latency_s, deadline.metrics.mean_latency_s);
  EXPECT_LT(deadline.metrics.mean_latency_s, fixed.metrics.mean_latency_s);
  EXPECT_LT(none.metrics.p99_s, deadline.metrics.p99_s);
  EXPECT_LE(deadline.metrics.p99_s, fixed.metrics.p99_s);
}

TEST(ServingSimulator, BatchingWinsAtSaturatingLoad) {
  // At 3x the no-batch capacity, batching amortizes weight traffic and
  // per-layer overheads: higher sustained throughput and a far shorter
  // tail than the saturated no-batch server.
  const core::SystemConfig base = core::default_system_config();
  const double service = isolated_service_s("LeNet5", base);
  const double rate = 3.0 / service;
  const auto none =
      simulate(single_tenant("LeNet5", rate, 1200, BatchPolicy::kNone));
  const auto fixed =
      simulate(single_tenant("LeNet5", rate, 1200, BatchPolicy::kFixedSize));
  EXPECT_GT(fixed.metrics.throughput_rps,
            1.5 * none.metrics.throughput_rps);
  EXPECT_GT(none.metrics.p99_s, fixed.metrics.p99_s);
  // Amortization shows in energy per request too.
  EXPECT_LT(fixed.metrics.energy_per_request_j,
            none.metrics.energy_per_request_j);
  EXPECT_GT(fixed.metrics.mean_batch, 2.0);
}

TEST(ServingSimulator, MD1MeanWaitSanityBand) {
  // Single tenant, no batching, deterministic service D, Poisson
  // arrivals: an M/D/1 queue. At utilization rho the mean queueing wait
  // is Wq = rho*D / (2*(1-rho)); the simulated mean must land in a band
  // around the closed form at low utilization.
  const core::SystemConfig base = core::default_system_config();
  const double service = isolated_service_s("LeNet5", base);
  const double rho = 0.3;
  const auto report = simulate(
      single_tenant("LeNet5", rho / service, 30000, BatchPolicy::kNone));
  EXPECT_EQ(report.metrics.completed, 30000u);
  const double wq_theory = rho * service / (2.0 * (1.0 - rho));
  const double wq_sim = report.metrics.mean_latency_s - service;
  EXPECT_GT(wq_sim, 0.0);
  EXPECT_NEAR(wq_sim, wq_theory, 0.2 * wq_theory);
}

TEST(ServingSimulator, ServiceTimeCacheCollapsesRepeatedBatches) {
  // Policy none: every dispatch asks for batch 1; the SLA derivation
  // pre-warms that same entry, so the whole run is 1 miss + N hits.
  const auto none =
      simulate(single_tenant("LeNet5", 5000.0, 300, BatchPolicy::kNone));
  EXPECT_EQ(none.metrics.service_cache_misses, 1u);
  EXPECT_EQ(none.metrics.service_cache_hits, 300u);

  // Fixed-size 4 over 300 requests: batch sizes {1 (SLA), 4} only.
  const auto fixed = simulate(
      single_tenant("LeNet5", 5000.0, 300, BatchPolicy::kFixedSize, 4));
  EXPECT_EQ(fixed.metrics.service_cache_misses, 2u);
  EXPECT_EQ(fixed.metrics.service_cache_hits, 74u);  // 75 batches - 1 miss
}

TEST(ServingSimulator, TraceReplayFidelity) {
  // Widely spaced arrivals at exact times: with no queueing, every
  // request's latency is exactly the batch-1 service time and the offered
  // counts match the per-tenant trace rows.
  const std::string path = ::testing::TempDir() + "serving_trace_test.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "arrival_s,tenant\n";
    out << "0.00,LeNet5\n0.01,LeNet5\n0.02,LeNet5\n";
    out << "0.005,VGG16\n0.015,VGG16\n";
  }
  ServingSpec spec;
  spec.tenant_mix = "LeNet5+VGG16";
  spec.policy = BatchPolicy::kNone;
  spec.trace_path = path;
  const auto config = make_serving_config(
      core::default_system_config(), accel::Architecture::kSiph2p5D, spec);
  ASSERT_EQ(config.tenants.size(), 2u);
  EXPECT_EQ(config.tenants[0].trace_arrivals.size(), 3u);
  EXPECT_EQ(config.tenants[1].trace_arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(config.tenants[1].trace_arrivals[0], 0.005);

  const auto report = simulate(config);
  std::remove(path.c_str());
  EXPECT_EQ(report.metrics.offered, 5u);
  EXPECT_EQ(report.metrics.completed, 5u);
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].completed, 3u);
  EXPECT_EQ(report.tenants[1].completed, 2u);
  // No queueing: per-tenant latency == isolated service time, exactly.
  const core::SystemConfig base = core::default_system_config();
  // VGG16 and LeNet5 contend for the dense group, so service times come
  // from the *co-located* partition, not the isolated one; just check the
  // spread is zero (deterministic service, no waits).
  for (const auto& tenant : report.tenants) {
    EXPECT_DOUBLE_EQ(tenant.p99_s, tenant.p50_s);
    EXPECT_DOUBLE_EQ(tenant.mean_latency_s, tenant.p50_s);
    EXPECT_GT(tenant.p50_s, 0.0);
  }
  (void)base;
}

TEST(ServingSimulator, MakespanStartsAtFirstArrivalForOffsetTraces) {
  // A replayed trace beginning at an arbitrary absolute time must not
  // count the lead-in as serving time (it would deflate throughput and
  // charge phantom idle energy).
  const std::string path =
      ::testing::TempDir() + "serving_offset_trace_test.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "arrival_s\n10.000\n10.002\n10.004\n";
  }
  ServingSpec spec;
  spec.tenant_mix = "LeNet5";
  spec.policy = BatchPolicy::kNone;
  spec.trace_path = path;
  const auto report = simulate(make_serving_config(
      core::default_system_config(), accel::Architecture::kSiph2p5D, spec));
  std::remove(path.c_str());
  EXPECT_EQ(report.metrics.completed, 3u);
  EXPECT_LT(report.metrics.makespan_s, 0.1);
  EXPECT_GT(report.metrics.throughput_rps, 100.0);
}

TEST(ServingSimulator, DuplicateModelTenantsGetAddressableNames) {
  ServingSpec spec;
  spec.tenant_mix = "LeNet5+LeNet5+VGG16";
  const auto config = make_serving_config(
      core::default_system_config(), accel::Architecture::kSiph2p5D, spec);
  ASSERT_EQ(config.tenants.size(), 3u);
  // Every duplicate gets its mix index; unique models keep the bare name,
  // so trace `tenant` labels can address each copy unambiguously.
  EXPECT_EQ(config.tenants[0].name, "LeNet5#0");
  EXPECT_EQ(config.tenants[1].name, "LeNet5#1");
  EXPECT_EQ(config.tenants[2].name, "VGG16");
}

TEST(ServingSimulator, TraceFeedingNoTenantFailsLoud) {
  // Rows labeled with the bare model name cannot address a duplicate mix
  // (the tenants are "LeNet5#0"/"LeNet5#1"): instead of silently serving
  // nothing — or worse, falling back to Poisson under a trace-shaped memo
  // key — configuration must fail with the expected names in the message.
  const std::string path =
      ::testing::TempDir() + "serving_unmatched_trace_test.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "arrival_s,tenant\n1e-3,LeNet5\n2e-3,LeNet5\n";
  }
  ServingSpec spec;
  spec.tenant_mix = "LeNet5+LeNet5";
  spec.trace_path = path;
  try {
    (void)make_serving_config(core::default_system_config(),
                              accel::Architecture::kSiph2p5D, spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("LeNet5#0"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("LeNet5#1"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(ServingSimulator, TraceTenantsNeverFallBackToPoisson) {
  // A tenant the trace does not feed serves nothing — replay is
  // authoritative, so partial traces must not be topped up with
  // synthetic arrivals.
  const std::string path =
      ::testing::TempDir() + "serving_partial_trace_test.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "arrival_s,tenant\n1e-3,LeNet5\n2e-3,LeNet5\n";
  }
  ServingSpec spec;
  spec.tenant_mix = "LeNet5+VGG16";
  spec.trace_path = path;
  spec.requests = 500;  // ignored in replay mode
  const auto report = simulate(make_serving_config(
      core::default_system_config(), accel::Architecture::kSiph2p5D, spec));
  std::remove(path.c_str());
  ASSERT_EQ(report.tenants.size(), 2u);
  EXPECT_EQ(report.tenants[0].completed, 2u);
  EXPECT_EQ(report.tenants[1].offered, 0u);
  EXPECT_EQ(report.tenants[1].completed, 0u);
  EXPECT_EQ(report.metrics.completed, 2u);
}

TEST(ServingScenarioKey, TraceModeIgnoresRateRequestsAndSeed) {
  // With a trace set, arrivals come entirely from the file: specs that
  // differ only in the ignored Poisson knobs must share one memo key.
  engine::ScenarioSpec a;
  a.model = "LeNet5";
  a.serving = ServingSpec{};
  a.serving->tenant_mix = "LeNet5";
  a.serving->trace_path = "arrivals.csv";
  engine::ScenarioSpec b = a;
  b.serving->arrival_rps = 99999.0;
  b.serving->requests = 7;
  b.serving->seed = 123;
  EXPECT_EQ(a.key(), b.key());
  // Without a trace those knobs define the experiment and must split it.
  engine::ScenarioSpec c = a;
  c.serving->trace_path.clear();
  engine::ScenarioSpec d = c;
  d.serving->arrival_rps += 1.0;
  EXPECT_NE(c.key(), d.key());
}

/// True when [a0,a1) and [b0,b1) overlap.
bool overlaps(double a0, double a1, double b0, double b1) {
  return a0 < b1 && b0 < a1;
}

TEST(ServingSimulator, ColocationNeverDoubleBooksChiplets) {
  // MobileNetV2 + ResNet50: disjoint ownership except dense/conv3 splits;
  // conv7/conv5 are ResNet-exclusive. Concurrent batches must never share
  // a chiplet, and cross-tenant ReSiPI windows must be serialized.
  ServingSpec spec;
  spec.tenant_mix = "MobileNetV2+ResNet50";
  spec.arrival_rps = 800.0;
  spec.requests = 120;
  spec.policy = BatchPolicy::kNone;
  auto config = make_serving_config(core::default_system_config(),
                                    accel::Architecture::kSiph2p5D, spec);
  config.record_batches = true;
  const auto report = simulate(config);
  EXPECT_EQ(report.metrics.completed, 120u);
  ASSERT_FALSE(report.batches.empty());

  for (std::size_t i = 0; i < report.batches.size(); ++i) {
    for (std::size_t j = i + 1; j < report.batches.size(); ++j) {
      const auto& a = report.batches[i];
      const auto& b = report.batches[j];
      if (a.tenant == b.tenant ||
          !overlaps(a.start_s, a.end_s, b.start_s, b.end_s)) {
        continue;
      }
      // Concurrent batches of different tenants: disjoint chiplets...
      for (const std::size_t c : a.chiplets) {
        EXPECT_EQ(std::find(b.chiplets.begin(), b.chiplets.end(), c),
                  b.chiplets.end())
            << "chiplet " << c << " double-booked";
      }
      // ...and non-overlapping reconfiguration windows.
      if (a.resipi_end_s > a.resipi_start_s &&
          b.resipi_end_s > b.resipi_start_s) {
        EXPECT_FALSE(overlaps(a.resipi_start_s, a.resipi_end_s,
                              b.resipi_start_s, b.resipi_end_s))
            << "cross-tenant ReSiPI windows overlap";
      }
    }
  }
  // Both models reconfigure on every batch, and the load keeps both
  // executors busy at once: serialization must actually have happened.
  EXPECT_GT(report.metrics.resipi_conflicts, 0u);
  EXPECT_GT(report.metrics.resipi_wait_s, 0.0);
}

TEST(ServingSimulator, SharedScarceGroupSerializesTenants) {
  // ResNet50 + DenseNet121 both need the single 7x7 chiplet: every batch
  // locks the shared group, so no two batches of different tenants may
  // overlap at all.
  ServingSpec spec;
  spec.tenant_mix = "ResNet50+DenseNet121";
  spec.arrival_rps = 300.0;
  spec.requests = 40;
  spec.policy = BatchPolicy::kNone;
  auto config = make_serving_config(core::default_system_config(),
                                    accel::Architecture::kSiph2p5D, spec);
  config.record_batches = true;
  const auto report = simulate(config);
  EXPECT_EQ(report.metrics.completed, 40u);
  double shared_wait = 0.0;
  for (const auto& tenant : report.tenants) {
    shared_wait += tenant.shared_wait_s;
  }
  EXPECT_GT(shared_wait, 0.0);  // contention actually exercised
  for (std::size_t i = 0; i < report.batches.size(); ++i) {
    for (std::size_t j = i + 1; j < report.batches.size(); ++j) {
      const auto& a = report.batches[i];
      const auto& b = report.batches[j];
      if (a.tenant != b.tenant) {
        EXPECT_FALSE(overlaps(a.start_s, a.end_s, b.start_s, b.end_s))
            << "shared-group batches overlap across tenants";
      }
    }
  }
}

TEST(ServingSimulator, SweepRunnerServesServingGridsInParallel) {
  engine::ScenarioGrid grid;
  grid.tenant_mixes = {"LeNet5"};
  grid.architectures = {accel::Architecture::kSiph2p5D};
  grid.arrival_rates_rps = {2000.0, 20000.0};
  grid.batch_policies = {BatchPolicy::kNone, BatchPolicy::kFixedSize};
  grid.serving_defaults.requests = 200;

  const core::SystemConfig base = core::default_system_config();
  const auto specs = grid.expand(base);
  ASSERT_EQ(specs.size(), 4u);

  engine::SweepOptions options;
  options.threads = 2;
  engine::SweepRunner runner(base, options);
  const auto results = runner.run(specs);
  ASSERT_EQ(results.size(), 4u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].serving.has_value());
    // Parallel evaluation reproduces the serial reference bit-for-bit.
    const auto reference =
        engine::SweepRunner::evaluate_outcome(base, specs[i]);
    ASSERT_TRUE(reference.serving.has_value());
    EXPECT_EQ(results[i].serving->p99_s, reference.serving->p99_s);
    EXPECT_EQ(results[i].serving->throughput_rps,
              reference.serving->throughput_rps);
    EXPECT_EQ(results[i].serving->energy_per_request_j,
              reference.serving->energy_per_request_j);
  }
  // Serving keys are distinct per (rate, policy) and cache-stable.
  const auto again = runner.run(specs);
  EXPECT_EQ(runner.cache_hits(), 4u);
  EXPECT_TRUE(again[0].from_cache);
}

TEST(ServingSimulator, MonolithicTenantsSerializeOnTheDie) {
  ServingSpec spec;
  spec.tenant_mix = "LeNet5+LeNet5";
  spec.arrival_rps = 2000.0;
  spec.requests = 60;
  spec.policy = BatchPolicy::kNone;
  auto config =
      make_serving_config(core::default_system_config(),
                          accel::Architecture::kMonolithicCrossLight, spec);
  config.record_batches = true;
  const auto report = simulate(config);
  EXPECT_EQ(report.metrics.completed, 60u);
  for (std::size_t i = 0; i < report.batches.size(); ++i) {
    for (std::size_t j = i + 1; j < report.batches.size(); ++j) {
      const auto& a = report.batches[i];
      const auto& b = report.batches[j];
      EXPECT_FALSE(overlaps(a.start_s, a.end_s, b.start_s, b.end_s))
          << "monolithic die executed two batches at once";
    }
  }
}

}  // namespace
}  // namespace optiplet::serve
