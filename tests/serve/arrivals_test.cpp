#include "serve/arrivals.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace optiplet::serve {
namespace {

TEST(PoissonArrivals, DeterministicUnderFixedSeed) {
  const auto a = poisson_arrivals(1000.0, 5000, 7);
  const auto b = poisson_arrivals(1000.0, 5000, 7);
  ASSERT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, b);  // bit-for-bit
}

TEST(PoissonArrivals, DifferentSeedsDiffer) {
  const auto a = poisson_arrivals(1000.0, 100, 7);
  const auto b = poisson_arrivals(1000.0, 100, 8);
  EXPECT_NE(a, b);
}

TEST(PoissonArrivals, StrictlyIncreasingFromZero) {
  const auto a = poisson_arrivals(500.0, 1000, 42);
  EXPECT_GT(a.front(), 0.0);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a[i], a[i - 1]);
  }
}

TEST(PoissonArrivals, MeanInterArrivalMatchesRate) {
  const double rate = 2000.0;
  const auto a = poisson_arrivals(rate, 50000, 1);
  const double mean = a.back() / static_cast<double>(a.size());
  // 50k exponential draws: the sample mean sits within a few percent.
  EXPECT_NEAR(mean, 1.0 / rate, 0.05 / rate);
}

TEST(PoissonArrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(poisson_arrivals(0.0, 10, 1), std::invalid_argument);
  EXPECT_THROW(poisson_arrivals(-5.0, 10, 1), std::invalid_argument);
}

class TraceFile : public ::testing::Test {
 protected:
  void write(const std::string& text) {
    std::ofstream out(path_, std::ios::binary);
    out << text;
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "optiplet_trace_test.csv";
};

TEST_F(TraceFile, LoadsSortedWithTenantColumn) {
  write("arrival_s,tenant\n2.5e-3,VGG16\n1e-3,LeNet5\n1e-3,VGG16\n");
  const auto events = load_arrival_trace(path_);
  ASSERT_EQ(events.size(), 3u);
  // Sorted by time, stable for equal times (file order preserved).
  EXPECT_DOUBLE_EQ(events[0].arrival_s, 1e-3);
  EXPECT_EQ(events[0].tenant, "LeNet5");
  EXPECT_EQ(events[1].tenant, "VGG16");
  EXPECT_DOUBLE_EQ(events[2].arrival_s, 2.5e-3);

  const auto lenet = trace_arrivals_for(events, "LeNet5");
  ASSERT_EQ(lenet.size(), 1u);
  EXPECT_DOUBLE_EQ(lenet[0], 1e-3);
  const auto vgg = trace_arrivals_for(events, "VGG16");
  EXPECT_EQ(vgg.size(), 2u);
}

TEST_F(TraceFile, NoTenantColumnFeedsEveryTenant) {
  write("arrival_s\n1e-3\n2e-3\n");
  const auto events = load_arrival_trace(path_);
  EXPECT_EQ(trace_arrivals_for(events, "anything").size(), 2u);
}

TEST_F(TraceFile, QuotedTenantNamesSurvive) {
  write("arrival_s,tenant\n1e-3,\"model, variant A\"\n");
  const auto events = load_arrival_trace(path_);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tenant, "model, variant A");
}

TEST_F(TraceFile, RejectsMissingColumnAndBadValues) {
  write("time\n1e-3\n");
  EXPECT_THROW(load_arrival_trace(path_), std::invalid_argument);
  write("arrival_s\nnot-a-number\n");
  EXPECT_THROW(load_arrival_trace(path_), std::invalid_argument);
  write("arrival_s\n-1.0\n");
  EXPECT_THROW(load_arrival_trace(path_), std::invalid_argument);
  EXPECT_THROW(load_arrival_trace("/no/such/trace.csv"),
               std::invalid_argument);
}

}  // namespace
}  // namespace optiplet::serve
