#include "serve/batching.hpp"

#include <gtest/gtest.h>

namespace optiplet::serve {
namespace {

Request req(std::uint64_t id, double t) { return Request{id, t}; }

TEST(BatchQueue, NoBatchDispatchesSingletonsFifo) {
  BatchQueue q(BatchingConfig{BatchPolicy::kNone, 8, 1e-3});
  EXPECT_FALSE(q.ready(0.0, false));
  q.push(req(0, 0.0));
  q.push(req(1, 0.1));
  EXPECT_TRUE(q.ready(0.1, false));
  const auto batch = q.take(false);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(q.size(), 1u);
}

TEST(BatchQueue, FixedSizeWaitsForExactlyK) {
  BatchQueue q(BatchingConfig{BatchPolicy::kFixedSize, 3, 0.0});
  q.push(req(0, 0.0));
  q.push(req(1, 0.0));
  EXPECT_FALSE(q.ready(100.0, false));  // time alone never triggers
  q.push(req(2, 0.0));
  EXPECT_TRUE(q.ready(0.0, false));
  EXPECT_EQ(q.take(false).size(), 3u);
}

TEST(BatchQueue, FixedSizeFlushesPartialBatchAtEndOfStream) {
  BatchQueue q(BatchingConfig{BatchPolicy::kFixedSize, 4, 0.0});
  q.push(req(0, 0.0));
  q.push(req(1, 0.0));
  EXPECT_FALSE(q.ready(0.0, false));
  EXPECT_TRUE(q.ready(0.0, true));
  EXPECT_EQ(q.take(true).size(), 2u);
}

TEST(BatchQueue, DeadlineDispatchesOnSizeOrTimeout) {
  BatchQueue q(BatchingConfig{BatchPolicy::kDeadline, 2, 1e-3});
  q.push(req(0, 0.0));
  EXPECT_FALSE(q.ready(0.5e-3, false));
  ASSERT_TRUE(q.next_deadline().has_value());
  EXPECT_DOUBLE_EQ(*q.next_deadline(), 1e-3);
  // Timeout path: the oldest request has waited long enough.
  EXPECT_TRUE(q.ready(1e-3, false));
  // Size path: a second arrival fills the batch before the deadline.
  q.push(req(1, 0.6e-3));
  EXPECT_TRUE(q.ready(0.7e-3, false));
  EXPECT_EQ(q.take(false).size(), 2u);
}

TEST(BatchQueue, DeadlineTimeoutTakesWhatIsQueuedUpToCap) {
  BatchQueue q(BatchingConfig{BatchPolicy::kDeadline, 8, 1e-3});
  q.push(req(0, 0.0));
  q.push(req(1, 0.2e-3));
  q.push(req(2, 0.4e-3));
  EXPECT_TRUE(q.ready(1e-3, false));
  EXPECT_EQ(q.take(false).size(), 3u);
}

TEST(BatchQueue, NoDeadlineTimerForOtherPolicies) {
  BatchQueue none(BatchingConfig{BatchPolicy::kNone, 8, 1e-3});
  none.push(req(0, 0.0));
  EXPECT_FALSE(none.next_deadline().has_value());
  BatchQueue fixed(BatchingConfig{BatchPolicy::kFixedSize, 8, 1e-3});
  fixed.push(req(0, 0.0));
  EXPECT_FALSE(fixed.next_deadline().has_value());
}

TEST(BatchQueue, RejectsDegenerateConfigs) {
  EXPECT_THROW(BatchQueue(BatchingConfig{BatchPolicy::kFixedSize, 0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(BatchQueue(BatchingConfig{BatchPolicy::kDeadline, 1, -1.0}),
               std::invalid_argument);
}

TEST(BatchPolicy, StringRoundTrip) {
  for (const BatchPolicy p : {BatchPolicy::kNone, BatchPolicy::kFixedSize,
                              BatchPolicy::kDeadline}) {
    const auto parsed = batch_policy_from_string(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(batch_policy_from_string("bogus").has_value());
}

}  // namespace
}  // namespace optiplet::serve
