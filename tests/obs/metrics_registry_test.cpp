#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>

namespace optiplet::obs {
namespace {

/// Samples of one snapshot keyed by series name.
std::map<std::string, double> at_time(const MetricsRegistry& registry,
                                      double t_s) {
  std::map<std::string, double> out;
  for (const auto& s : registry.samples()) {
    if (s.t_s == t_s) {
      out[s.series] = s.value;
    }
  }
  return out;
}

TEST(MetricsRegistry, CountersEmitCumulativeAndRate) {
  MetricsRegistry registry;
  registry.add("serve.offered", 10.0);
  registry.snapshot(2.0);
  registry.add("serve.offered", 30.0);
  registry.snapshot(4.0);

  const auto first = at_time(registry, 2.0);
  EXPECT_DOUBLE_EQ(first.at("serve.offered"), 10.0);
  EXPECT_DOUBLE_EQ(first.at("serve.offered.rate"), 5.0);  // 10 over [0,2]
  const auto second = at_time(registry, 4.0);
  EXPECT_DOUBLE_EQ(second.at("serve.offered"), 40.0);
  EXPECT_DOUBLE_EQ(second.at("serve.offered.rate"), 15.0);  // 30 over [2,4]
  EXPECT_DOUBLE_EQ(registry.counter("serve.offered"), 40.0);
}

TEST(MetricsRegistry, GaugesEmitCurrentValue) {
  MetricsRegistry registry;
  registry.set("serve.queue_depth", 7.0);
  registry.snapshot(1.0);
  registry.set("serve.queue_depth", 3.0);
  registry.snapshot(2.0);
  EXPECT_DOUBLE_EQ(at_time(registry, 1.0).at("serve.queue_depth"), 7.0);
  EXPECT_DOUBLE_EQ(at_time(registry, 2.0).at("serve.queue_depth"), 3.0);
}

TEST(MetricsRegistry, HistogramsEmitCountMeanAndQuantiles) {
  MetricsRegistry registry;
  for (int i = 0; i < 100; ++i) {
    registry.observe("serve.latency", 1e-3);
  }
  registry.observe("serve.latency", 50e-3);
  registry.snapshot(1.0);
  const auto snap = at_time(registry, 1.0);
  EXPECT_DOUBLE_EQ(snap.at("serve.latency.count"), 101.0);
  EXPECT_NEAR(snap.at("serve.latency.mean"), (100 * 1e-3 + 50e-3) / 101.0,
              1e-9);
  EXPECT_NEAR(snap.at("serve.latency.p50"), 1e-3, 0.2e-3);
  EXPECT_GT(snap.at("serve.latency.p99"), snap.at("serve.latency.p50"));
}

TEST(MetricsRegistry, PrefixNamespacesEverySeries) {
  MetricsRegistry registry("p3.");
  registry.add("serve.shed");
  registry.set("serve.queue_depth", 1.0);
  registry.snapshot(1.0);
  for (const auto& s : registry.samples()) {
    EXPECT_EQ(s.series.rfind("p3.", 0), 0u) << s.series;
  }
}

TEST(MetricsRegistry, MergeAppendsChildSamples) {
  MetricsRegistry parent;
  parent.add("cluster.transfers", 2.0);
  parent.snapshot(1.0);
  MetricsRegistry child("p0.");
  child.add("serve.offered", 5.0);
  child.snapshot(1.0);

  parent.merge(child);
  const auto snap = at_time(parent, 1.0);
  EXPECT_DOUBLE_EQ(snap.at("cluster.transfers"), 2.0);
  EXPECT_DOUBLE_EQ(snap.at("p0.serve.offered"), 5.0);
  EXPECT_EQ(parent.series_count(), 4u);  // two counters + two rates
}

TEST(MetricsRegistry, WriteCsvLongFormat) {
  MetricsRegistry registry;
  registry.add("serve.offered", 3.0);
  registry.snapshot(0.5);
  const std::string path = "metrics_registry_test_out.csv";
  ASSERT_TRUE(registry.write_csv(path));
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  char line[256];
  ASSERT_NE(std::fgets(line, sizeof line, file), nullptr);
  EXPECT_STREQ(line, "t_s,series,value\n");
  ASSERT_NE(std::fgets(line, sizeof line, file), nullptr);
  EXPECT_STREQ(line, "0.5,serve.offered,3\n");
  std::fclose(file);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace optiplet::obs
