/// Observability contract of the cycle-level NoC: ReSiPI epoch boundaries
/// become "epoch" spans on the noc process and noc.resipi.* metric
/// series, and attaching a recorder never changes the network's results.

#include <gtest/gtest.h>

#include <string>

#include "noc/photonic_cycle_net.hpp"
#include "obs/recorder.hpp"
#include "util/units.hpp"

namespace optiplet::obs {
namespace {

const std::string* find_arg(const TraceEvent& event, const std::string& key) {
  for (const TraceArg& a : event.args) {
    if (a.key == key) {
      return &a.value;
    }
  }
  return nullptr;
}

noc::PhotonicCycleNetConfig epoch_config(Recorder* recorder) {
  noc::PhotonicCycleNetConfig cfg;
  cfg.resipi.epoch_s = 1.0 * units::us;
  cfg.recorder = recorder;
  return cfg;
}

TEST(NocTrace, EpochBoundariesEmitSpansAndCounters) {
  Recorder recorder;
  noc::PhotonicCycleNet net(epoch_config(&recorder), power::PhotonicTech{});
  net.inject_read(0, 400'000);
  while (net.cycle() < 2 * net.epoch_cycles()) {
    net.step();
  }
  ASSERT_TRUE(net.run_until_drained(1'000'000));
  ASSERT_GE(net.stats().epochs, 2u);

  // The process is labeled "noc" (lazily, by the adopting simulator).
  bool named_noc = false;
  for (const TraceEvent& m : recorder.trace().metadata()) {
    if (m.name == "process_name") {
      ASSERT_FALSE(m.args.empty());
      EXPECT_EQ(m.args.front().value, "noc");
      named_noc = true;
    }
  }
  EXPECT_TRUE(named_noc);

  // One "epoch" span per committed boundary, covering exactly the epoch
  // window, tagged with the boundary's PCM writes and lit-gateway count.
  std::size_t spans = 0;
  double prev_end = 0.0;
  for (const TraceEvent& e : recorder.trace().events()) {
    ASSERT_EQ(e.name, "epoch");
    EXPECT_EQ(e.cat, "noc");
    EXPECT_NEAR(e.dur_us, 1.0, 1e-9);  // 1 us epochs
    EXPECT_NEAR(e.ts_us, prev_end, 1e-9);
    prev_end = e.ts_us + e.dur_us;
    EXPECT_NE(find_arg(e, "writes"), nullptr);
    EXPECT_NE(find_arg(e, "active_gateways"), nullptr);
    ++spans;
  }
  EXPECT_EQ(spans, net.stats().epochs);

  // Counters mirror the controller's own accounting, snapshotted once per
  // boundary.
  EXPECT_DOUBLE_EQ(recorder.metrics().counter("noc.resipi.epochs"),
                   static_cast<double>(net.stats().epochs));
  EXPECT_FALSE(recorder.metrics().samples().empty());
}

TEST(NocTrace, AttachingARecorderNeverChangesResults) {
  Recorder recorder;
  noc::PhotonicCycleNet with(epoch_config(&recorder), power::PhotonicTech{});
  noc::PhotonicCycleNet without(epoch_config(nullptr), power::PhotonicTech{});
  for (noc::PhotonicCycleNet* net : {&with, &without}) {
    net->inject_read(0, 400'000);
    net->inject_write(3, 100'000);
    ASSERT_TRUE(net->run_until_drained(1'000'000));
  }
  EXPECT_EQ(with.stats().reads_completed, without.stats().reads_completed);
  EXPECT_EQ(with.stats().writes_completed, without.stats().writes_completed);
  EXPECT_EQ(with.stats().epochs, without.stats().epochs);
  EXPECT_EQ(with.stats().stall_cycles, without.stats().stall_cycles);
  EXPECT_EQ(with.completed().size(), without.completed().size());
}

}  // namespace
}  // namespace optiplet::obs
