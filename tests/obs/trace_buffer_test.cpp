#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

namespace optiplet::obs {
namespace {

TEST(TraceBuffer, TracksAllocatePerPidInCallOrder) {
  TraceBuffer buffer;
  EXPECT_EQ(buffer.track(0, "tenant:a"), 1u);
  EXPECT_EQ(buffer.track(0, "tenant:b"), 2u);
  EXPECT_EQ(buffer.track(0, "tenant:a"), 1u);  // idempotent
  EXPECT_EQ(buffer.track(1, "tenant:a"), 1u);  // tids are per pid
  // One thread_name metadata event per distinct track.
  std::size_t thread_names = 0;
  for (const auto& e : buffer.metadata()) {
    thread_names += e.name == "thread_name" ? 1 : 0;
  }
  EXPECT_EQ(thread_names, 3u);
}

TEST(TraceBuffer, ProcessNameIsFirstWins) {
  TraceBuffer buffer;
  buffer.set_process_name(0, "serving");
  buffer.set_process_name(0, "other");
  std::size_t count = 0;
  for (const auto& e : buffer.metadata()) {
    if (e.name == "process_name") {
      ++count;
      ASSERT_FALSE(e.args.empty());
      EXPECT_EQ(e.args.front().value, "serving");
    }
  }
  EXPECT_EQ(count, 1u);
}

TEST(TraceBuffer, CompleteSpanConvertsToMicrosAndClampsDuration) {
  TraceBuffer buffer;
  const std::uint64_t tid = buffer.track(0, "t");
  buffer.add_complete("span", "serve", 1e-3, 2.5e-3, 0, tid);
  ASSERT_EQ(buffer.size(), 1u);
  const TraceEvent& e = buffer.events().front();
  EXPECT_EQ(e.phase, 'X');
  EXPECT_DOUBLE_EQ(e.ts_us, 1000.0);
  EXPECT_DOUBLE_EQ(e.dur_us, 1500.0);

  // Rounding jitter must never produce a negative duration.
  buffer.add_complete("tiny", "serve", 2.0, 2.0 - 1e-15, 0, tid);
  EXPECT_GE(buffer.events().back().dur_us, 0.0);
}

TEST(TraceBuffer, JsonIsWellFormedAndSortedByTimestamp) {
  TraceBuffer buffer;
  buffer.set_process_name(0, "serving");
  const std::uint64_t tid = buffer.track(0, "tenant:x");
  buffer.add_complete("late", "serve", 2.0, 3.0, 0, tid);
  buffer.add_complete("early", "serve", 0.5, 1.0, 0, tid,
                      {arg("tenant", "x"), arg("latency_s", 0.5),
                       arg("count", std::uint64_t{3})});
  buffer.add_instant("marker", "serve", 1.5, 0, tid);
  const std::string json = buffer.to_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Events are sorted: "early" precedes "marker" precedes "late".
  EXPECT_LT(json.find("\"early\""), json.find("\"marker\""));
  EXPECT_LT(json.find("\"marker\""), json.find("\"late\""));
  // Metadata precedes all spans.
  EXPECT_LT(json.find("process_name"), json.find("\"early\""));
  // Instants carry the scope field; string args are quoted, numbers bare.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"x\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
}

TEST(TraceBuffer, JsonEscapesControlCharacters) {
  TraceBuffer buffer;
  const std::uint64_t tid = buffer.track(0, "t");
  buffer.add_complete("quote\"back\\slash\nnewline", "serve", 0.0, 1.0, 0,
                      tid);
  const std::string json = buffer.to_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"),
            std::string::npos);
}

TEST(TraceBuffer, MergeAppendsEventsAndMetadata) {
  TraceBuffer parent;
  parent.set_process_name(0, "package0");
  parent.add_complete("a", "serve", 0.0, 1.0, 0, parent.track(0, "t"));

  TraceBuffer child;
  child.set_process_name(1, "package1");
  child.add_complete("b", "serve", 0.5, 1.5, 1, child.track(1, "t"));

  parent.merge(child);
  EXPECT_EQ(parent.size(), 2u);
  std::size_t process_names = 0;
  for (const auto& e : parent.metadata()) {
    process_names += e.name == "process_name" ? 1 : 0;
  }
  EXPECT_EQ(process_names, 2u);
}

}  // namespace
}  // namespace optiplet::obs
