/// End-to-end observability contract of the serving simulator: span
/// schema, request-span reconciliation against the report, nesting,
/// shed-reason tagging, rack/lone trace equivalence, and the guarantee
/// that attaching a recorder never changes results.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "cluster/cluster_simulator.hpp"
#include "core/system_config.hpp"
#include "obs/recorder.hpp"
#include "serve/service_time.hpp"
#include "serve/serving_simulator.hpp"

namespace optiplet::obs {
namespace {

serve::ServingSpec small_spec() {
  serve::ServingSpec spec;
  spec.tenant_mix = "LeNet5";
  spec.arrival_rps = 2000.0;
  spec.requests = 150;
  return spec;
}

serve::ServingReport run_with(const serve::ServingSpec& spec,
                              Recorder* recorder) {
  serve::ServingConfig config = serve::make_serving_config(
      core::default_system_config(), accel::Architecture::kSiph2p5D, spec);
  config.recorder = recorder;
  return serve::simulate(config);
}

const std::string* find_arg(const TraceEvent& event, const std::string& key) {
  for (const TraceArg& a : event.args) {
    if (a.key == key) {
      return &a.value;
    }
  }
  return nullptr;
}

TEST(ServingTrace, EventsCarryTheTraceEventSchema) {
  Recorder recorder;
  (void)run_with(small_spec(), &recorder);
  ASSERT_FALSE(recorder.trace().events().empty());
  for (const TraceEvent& e : recorder.trace().events()) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.cat.empty());
    EXPECT_TRUE(e.phase == 'X' || e.phase == 'i') << e.phase;
    EXPECT_GE(e.ts_us, 0.0);
    EXPECT_GE(e.dur_us, 0.0);
    EXPECT_EQ(e.pid, 0);
  }
  // Every track referenced by an event was named via metadata.
  std::map<std::uint64_t, bool> named;
  for (const TraceEvent& m : recorder.trace().metadata()) {
    if (m.name == "thread_name") {
      named[m.tid] = true;
    }
  }
  for (const TraceEvent& e : recorder.trace().events()) {
    EXPECT_TRUE(named[e.tid]) << "unnamed tid " << e.tid;
  }
}

TEST(ServingTrace, RequestSpansReconcileWithTheReport) {
  serve::ServingSpec spec = small_spec();
  // 1.5x the solo batch-1 capacity: past the knee, so shedding engages.
  serve::ColocatedSetup setup = serve::make_colocated_setup(
      core::default_system_config(), accel::Architecture::kSiph2p5D,
      {"LeNet5"});
  serve::ServiceTimeOracle oracle(std::move(setup.oracle_tenants),
                                  accel::Architecture::kSiph2p5D);
  spec.arrival_rps = 1.5 / oracle.batch_run(0, 1).latency_s;
  spec.requests = 600;
  spec.admission = serve::AdmissionPolicy::kSlaShed;
  Recorder recorder;
  const serve::ServingReport report = run_with(spec, &recorder);
  ASSERT_GT(report.metrics.shed, 0u);
  ASSERT_GT(report.metrics.completed, 0u);

  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  const TraceEvent* totals = nullptr;
  for (const TraceEvent& e : recorder.trace().events()) {
    if (e.name == "request") {
      const std::string* outcome = find_arg(e, "outcome");
      ASSERT_NE(outcome, nullptr);
      if (*outcome == "completed") {
        ++completed;
      } else if (*outcome == "shed") {
        ++shed;
        EXPECT_DOUBLE_EQ(e.dur_us, 0.0);
        const std::string* reason = find_arg(e, "shed_reason");
        ASSERT_NE(reason, nullptr);
        EXPECT_EQ(*reason, "predicted_sla_miss");
      } else {
        FAIL() << "unknown outcome " << *outcome;
      }
    } else if (e.name == "serving_totals") {
      totals = &e;
    }
  }
  EXPECT_EQ(completed, report.metrics.completed);
  EXPECT_EQ(shed, report.metrics.shed);
  EXPECT_EQ(completed + shed, report.metrics.offered);

  // The summary instant repeats the reconciliation inside the trace
  // itself — what tools/check_trace_json.py verifies offline.
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(*find_arg(*totals, "offered"),
            std::to_string(report.metrics.offered));
  EXPECT_EQ(*find_arg(*totals, "completed"),
            std::to_string(report.metrics.completed));
  EXPECT_EQ(*find_arg(*totals, "shed"), std::to_string(report.metrics.shed));
}

TEST(ServingTrace, QueueSpansNestWithinTheirRequestSpans) {
  Recorder recorder;
  (void)run_with(small_spec(), &recorder);

  // Request id -> [start, end] of its lifecycle span (microseconds).
  std::map<std::string, std::pair<double, double>> requests;
  for (const TraceEvent& e : recorder.trace().events()) {
    if (e.name == "request") {
      const std::string* id = find_arg(e, "request");
      ASSERT_NE(id, nullptr);
      requests[*id] = {e.ts_us, e.ts_us + e.dur_us};
    }
  }
  std::size_t queue_spans = 0;
  for (const TraceEvent& e : recorder.trace().events()) {
    if (e.name != "queue") {
      continue;
    }
    ++queue_spans;
    const std::string* id = find_arg(e, "request");
    ASSERT_NE(id, nullptr);
    const auto it = requests.find(*id);
    ASSERT_NE(it, requests.end()) << "queue span for unknown request " << *id;
    // Sub-microsecond rounding of the shared "%.3f" clock aside, the
    // wait must lie within the request's lifetime.
    EXPECT_GE(e.ts_us, it->second.first - 1e-3);
    EXPECT_LE(e.ts_us + e.dur_us, it->second.second + 1e-3);
  }
  EXPECT_GT(queue_spans, 0u);
}

TEST(ServingTrace, SinglePackageClusterTraceMatchesTheLoneSimulator) {
  cluster::ClusterConfig config;
  config.system = core::default_system_config();
  config.serving.tenant_mix = "LeNet5";
  config.serving.arrival_rps = 2000.0;
  config.serving.requests = 120;
  config.cluster.packages = 1;
  config.threads = 1;
  Recorder rack_recorder;
  config.recorder = &rack_recorder;
  (void)cluster::simulate(config);

  Recorder lone_recorder;
  serve::ServingConfig lone = serve::make_serving_config(
      config.system, config.arch, config.serving);
  lone.recorder = &lone_recorder;
  (void)serve::simulate(lone);

  // A 1-package rack routes nothing, so its merged trace is the lone
  // simulator's, event for event (pid 0 both sides; only the frontend
  // process-name metadata differs).
  const auto& rack = rack_recorder.trace().events();
  const auto& solo = lone_recorder.trace().events();
  ASSERT_EQ(rack.size(), solo.size());
  ASSERT_FALSE(solo.empty());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(rack[i].name, solo[i].name) << i;
    EXPECT_EQ(rack[i].cat, solo[i].cat) << i;
    EXPECT_EQ(rack[i].phase, solo[i].phase) << i;
    EXPECT_EQ(rack[i].ts_us, solo[i].ts_us) << i;
    EXPECT_EQ(rack[i].dur_us, solo[i].dur_us) << i;
    EXPECT_EQ(rack[i].pid, solo[i].pid) << i;
    EXPECT_EQ(rack[i].tid, solo[i].tid) << i;
    ASSERT_EQ(rack[i].args.size(), solo[i].args.size()) << i;
    for (std::size_t j = 0; j < solo[i].args.size(); ++j) {
      EXPECT_EQ(rack[i].args[j].key, solo[i].args[j].key) << i;
      EXPECT_EQ(rack[i].args[j].value, solo[i].args[j].value) << i;
    }
  }
}

TEST(ServingTrace, MetricsCoverTheAdvertisedSeries) {
  Recorder recorder;
  (void)run_with(small_spec(), &recorder);
  // The docs promise >= 10 series on any serving run (offered, completed,
  // batches, latency quantiles, gauges, ...).
  EXPECT_GE(recorder.metrics().series_count(), 10u);
  EXPECT_GT(recorder.metrics().samples().size(), 0u);
  EXPECT_DOUBLE_EQ(recorder.metrics().counter("serve.offered"), 150.0);
}

TEST(ServingTrace, AttachingARecorderNeverChangesResults) {
  const serve::ServingSpec spec = small_spec();
  Recorder recorder;
  const serve::ServingReport with = run_with(spec, &recorder);
  const serve::ServingReport without = run_with(spec, nullptr);
  EXPECT_EQ(with.metrics.offered, without.metrics.offered);
  EXPECT_EQ(with.metrics.completed, without.metrics.completed);
  EXPECT_EQ(with.metrics.shed, without.metrics.shed);
  EXPECT_EQ(with.metrics.makespan_s, without.metrics.makespan_s);
  EXPECT_EQ(with.metrics.throughput_rps, without.metrics.throughput_rps);
  EXPECT_EQ(with.metrics.mean_latency_s, without.metrics.mean_latency_s);
  EXPECT_EQ(with.metrics.p99_s, without.metrics.p99_s);
  EXPECT_EQ(with.metrics.energy_j, without.metrics.energy_j);
  EXPECT_EQ(with.metrics.mean_batch, without.metrics.mean_batch);
  // The snapshot timer is the one permitted event-count delta.
  EXPECT_GE(with.metrics.sim_events, without.metrics.sim_events);
}

}  // namespace
}  // namespace optiplet::obs
